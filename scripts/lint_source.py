#!/usr/bin/env python3
"""Determinism lint for the E-morphic sources (see docs/correctness.md).

The repo's results must be bit-reproducible across runs, machines, and
thread counts; this lint catches the three C++ patterns that historically
break that promise:

  unordered-iteration   Range-for over a std::unordered_map/set declared in
                        the same file. Hash-table iteration order is
                        unspecified and varies across libstdc++ versions and
                        ASLR runs, so it must never feed an output ordering —
                        either iterate a sorted view or waive the line with a
                        reason explaining why the order cannot escape
                        (order-independent accumulation, error-path-only, ...).

  nondeterministic-seed rand()/srand()/time()/std::random_device/
                        address-derived values used as seeds. All randomness
                        must flow from util/rng.hpp with an explicit seed.

  stdout-in-library     std::cout/printf in src/: library code reports
                        through return values and structured results, never
                        the process's stdout (the service daemon shares it).
                        Examples and benches are free to print.

Waiver syntax (same line or the line directly above):

    // lint:allow(<rule>) <reason>

The reason is mandatory: a waiver without one is itself a finding. Exit
status is 0 when clean, 1 when any finding survives.

Usage: scripts/lint_source.py [--root DIR]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

RULES = ("unordered-iteration", "nondeterministic-seed", "stdout-in-library")

WAIVER_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)\s*(.*)$")

# Greedy <...> so nested template arguments (e.g. std::vector<Var> values)
# stay inside the bracket match.
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*&?\s*"
    r"(\w+)\s*[;={(,)]"
)
RANGE_FOR_RE = re.compile(r"for\s*\(.*?:\s*([A-Za-z_]\w*(?:\.\w+|->\w+)?)\s*\)")

SEED_PATTERNS = (
    (re.compile(r"\bsrand\s*\("), "srand() seeds global state"),
    (re.compile(r"(?<!\w)rand\s*\(\s*\)"), "rand() is non-reproducible"),
    (re.compile(r"\bstd::time\s*\(|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "wall-clock used as a value"),
    (re.compile(r"\bstd::random_device\b"), "random_device is non-deterministic"),
    (re.compile(r"reinterpret_cast<\s*(?:std::)?u?int(?:ptr)?(?:64)?_t\s*>\s*\(\s*(?:this|&)"),
     "object address used as a value (ASLR-dependent)"),
)

STDOUT_PATTERNS = (
    (re.compile(r"\bstd::cout\b"), "std::cout in library code"),
    (re.compile(r"(?<![\w:.])printf\s*\("), "printf in library code"),
)


def strip_strings(line: str) -> str:
    """Blank out string/char literals so their contents cannot match rules."""
    out = []
    quote = None
    i = 0
    while i < len(line):
        c = line[i]
        if quote is None:
            if c in "\"'":
                quote = c
            out.append(c)
        else:
            if c == "\\":
                out.append("..")
                i += 2
                continue
            if c == quote:
                quote = None
                out.append(c)
            else:
                out.append(".")
        i += 1
    return "".join(out)


def code_part(line: str) -> str:
    """The line with string literals blanked and any // comment removed."""
    stripped = strip_strings(line)
    cut = stripped.find("//")
    return stripped[:cut] if cut >= 0 else stripped


class File:
    def __init__(self, path: pathlib.Path, root: pathlib.Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.lines = path.read_text(encoding="utf-8").splitlines()
        # Waivers indexed by the line they cover (their own and the next).
        self.waivers: dict[int, tuple[str, str, int]] = {}
        self.findings: list[tuple[int, str, str]] = []
        self.used_waivers: set[int] = set()
        for idx, line in enumerate(self.lines):
            m = WAIVER_RE.search(line)
            if m:
                rule, reason = m.group(1), m.group(2).strip()
                self.waivers[idx] = (rule, reason, idx)
                self.waivers[idx + 1] = (rule, reason, idx)

    def report(self, idx: int, rule: str, message: str) -> None:
        waiver = self.waivers.get(idx)
        if waiver is not None and waiver[0] == rule:
            if not waiver[1]:
                self.findings.append(
                    (waiver[2], "waiver-without-reason",
                     f"waiver for {rule} carries no reason"))
            self.used_waivers.add(waiver[2])
            return
        self.findings.append((idx, rule, message))


def unordered_names(lines: list[str]) -> set[str]:
    names = set()
    for line in lines:
        for m in UNORDERED_DECL_RE.finditer(code_part(line)):
            names.add(m.group(1))
    return names


def lint_file(f: File, names: set[str], check_stdout: bool) -> None:
    for idx, raw in enumerate(f.lines):
        line = code_part(raw)
        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(1)
            leaf = re.split(r"\.|->", expr)[-1]
            if leaf in names:
                f.report(idx, "unordered-iteration",
                         f"range-for over unordered container '{expr}' — "
                         "hash order must not feed output ordering "
                         "(sort first, or waive with the reason the order "
                         "cannot escape)")
        for pattern, why in SEED_PATTERNS:
            if pattern.search(line):
                f.report(idx, "nondeterministic-seed", why)
        if check_stdout:
            for pattern, why in STDOUT_PATTERNS:
                if pattern.search(line):
                    f.report(idx, "stdout-in-library", why)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    src = root / "src"
    if not src.is_dir():
        print(f"lint_source: no src/ under {root}", file=sys.stderr)
        return 2

    files = [File(path, root) for path in sorted(src.rglob("*"))
             if path.suffix in (".cpp", ".hpp", ".h", ".cc")]
    names_by_rel = {f.rel: {n for n in unordered_names(f.lines)
                            if len(n) >= 3}
                    for f in files}

    # A file's unordered names: its own declarations plus those of the src/
    # headers it directly #includes — members are declared in headers but
    # iterated in .cpp files, so file-local scoping would miss exactly the
    # interesting cases, while a global pool flags ordered locals that
    # happen to share a name with some unrelated file's hash map.
    include_re = re.compile(r'#include\s+"([^"]+)"')

    total = 0
    for f in files:
        names = set(names_by_rel[f.rel])
        for line in f.lines:
            m = include_re.match(line.strip())
            if m:
                names |= names_by_rel.get("src/" + m.group(1), set())
        lint_file(f, names, check_stdout=True)
        for idx in sorted(f.waivers[k][2] for k in f.waivers):
            if idx not in f.used_waivers and idx in f.waivers \
                    and f.waivers[idx][2] == idx:
                f.findings.append(
                    (idx, "unused-waiver",
                     f"waiver for {f.waivers[idx][0]} matches no finding"))
        # Deduplicate (a finding can register once per overlapping scan).
        seen = set()
        for idx, rule, message in sorted(f.findings):
            key = (idx, rule)
            if key in seen:
                continue
            seen.add(key)
            print(f"{f.rel}:{idx + 1}: [{rule}] {message}")
            total += 1

    if total:
        print(f"\nlint_source: {total} finding(s). See docs/correctness.md "
              "for the waiver syntax.", file=sys.stderr)
        return 1
    print("lint_source: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
