#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file for inline links/images and reference
definitions, resolves repo-relative and file-relative targets, and exits
nonzero listing any target that does not exist. External links (http/https/
mailto) and pure in-page anchors are ignored; anchors on intra-repo links
are checked against the target file's headings.

Usage: scripts/check_markdown_links.py [repo_root]
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (close enough for our headings)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in {".git", "build"} and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path: str) -> set:
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return set()
    return {slugify(h) for h in HEADING.findall(text)}


def check(root: str) -> int:
    errors = []
    for md_path in sorted(markdown_files(root)):
        with open(md_path, encoding="utf-8") as handle:
            text = handle.read()
        rel_md = os.path.relpath(md_path, root)
        targets = INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)
        own_anchors = None
        for target in targets:
            if target.startswith(EXTERNAL) or target.startswith("<"):
                continue
            target, _, anchor = target.partition("#")
            if not target:  # pure in-page anchor
                if own_anchors is None:
                    own_anchors = anchors_of(md_path)
                if anchor and slugify(anchor) not in own_anchors:
                    errors.append(f"{rel_md}: missing anchor '#{anchor}'")
                continue
            if target.startswith("/"):
                resolved = os.path.join(root, target.lstrip("/"))
            else:
                resolved = os.path.join(os.path.dirname(md_path), target)
            resolved = os.path.normpath(resolved)
            if not os.path.exists(resolved):
                errors.append(f"{rel_md}: broken link '{target}'")
            elif anchor and resolved.endswith(".md"):
                if slugify(anchor) not in anchors_of(resolved):
                    errors.append(
                        f"{rel_md}: missing anchor '{target}#{anchor}'")
    if errors:
        print(f"{len(errors)} broken markdown link(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else os.getcwd()))
