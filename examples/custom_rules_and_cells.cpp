// Extending E-morphic: user-defined rewrite rules and a custom cell
// library. This example adds a XOR-oriented rule set on top of the
// built-ins and maps against a user-written genlib with different
// area/delay trade-offs, showing both extension points end to end.
//
//   $ ./build/examples/custom_rules_and_cells

#include <cstdio>

#include "core/emorphic.hpp"

using namespace emorphic;

int main() {
  // --- 1. custom rewrite rules ---------------------------------------------
  // A rule the built-in set does not contain: XOR association, plus a
  // "XOR with complement" simplification.
  std::vector<Rewrite> rules = make_logic_rules();
  Pat a = Pat::v("a"), b = Pat::v("b"), c = Pat::v("c");
  rules.push_back(Rewrite::make("assoc-xor",
                                Pat::xor_(Pat::xor_(a, b), c),
                                Pat::xor_(a, Pat::xor_(b, c))));
  rules.push_back(Rewrite::make("xor-compl",
                                Pat::xor_(a, Pat::not_(a)), Pat::c1()));
  rules.push_back(Rewrite::make("xnor-fold",
                                Pat::not_(Pat::xor_(a, b)),
                                Pat::xor_(Pat::not_(a), b)));
  std::printf("rule set: %zu rules (%zu custom)\n", rules.size(), 3ul);

  // --- 2. custom cell library ----------------------------------------------
  // A fictitious low-power library: cheap XORs, expensive NANDs — the
  // opposite trade-off of the default ASAP7-like library. Note full-adder
  // cells are expressible too.
  const char* genlib = R"(
GATE lp_inv   0.05 Y=!A;            PIN * 11
GATE lp_nand2 0.20 Y=!(A*B);        PIN * 17
GATE lp_nor2  0.20 Y=!(A+B);        PIN * 19
GATE lp_and2  0.24 Y=A*B;           PIN * 24
GATE lp_or2   0.24 Y=A+B;           PIN * 26
GATE lp_xor2  0.15 Y=A^B;           PIN * 13
GATE lp_xnor2 0.15 Y=!(A^B);        PIN * 13
GATE lp_maj3  0.30 Y=(A*B)+(A*C)+(B*C); PIN * 28
GATE lp_aoi21 0.25 Y=!((A*B)+C);    PIN * 21
)";
  CellLibrary lib = parse_genlib(genlib);
  std::printf("library: %zu cells (XOR cheaper than NAND)\n\n", lib.size());

  // --- 3. run the pipeline manually with both ------------------------------
  Aig circuit = make_adder(12);  // XOR-rich: adders love cheap XORs
  Aig optimized = dch_substitute(sop_balance(strash(circuit)));

  CircuitEGraph ce = aig_to_egraph(optimized);
  RunnerLimits limits;
  limits.max_iterations = 4;
  limits.max_enodes = 25000;
  run_rewriting(ce.egraph, rules, limits);
  std::printf("e-graph after custom rules: %zu e-nodes, %zu classes\n",
              ce.egraph.num_enodes(), ce.egraph.num_classes());

  MapQorEvaluator evaluator(lib);
  SaParams sa;
  sa.num_threads = 2;
  sa.iterations = 3;
  sa.moves_per_iteration = 3;
  SaResult result = sa_extract(ce.egraph, ce.roots, ce.pi_names, evaluator, sa);
  Aig chosen = egraph_to_aig(ce, result.best);

  MappedNetlist netlist = map_to_cells(dch_substitute(chosen), lib);
  std::printf("mapped onto the custom library: %zu gates, %.2f um^2, %.1f ps\n",
              netlist.num_gates(), netlist.area(), netlist.delay());

  // Gate histogram: cheap XOR cells should dominate an adder.
  std::printf("\ngate usage:\n");
  std::vector<unsigned> histogram(lib.size(), 0);
  for (const MappedGate& g : netlist.gates()) ++histogram[g.cell];
  for (std::uint32_t i = 0; i < lib.size(); ++i) {
    if (histogram[i] > 0) {
      std::printf("  %-10s x %u\n", lib.cell(i).name.c_str(), histogram[i]);
    }
  }

  std::printf("\ncec(original, result): %s\n",
              cec_status_name(cec(circuit, chosen).status));
  return 0;
}
