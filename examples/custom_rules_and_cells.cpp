// Extending E-morphic: user-defined rewrite rules and a custom cell
// library. This example adds a XOR-oriented rule set on top of the
// built-ins and maps against a user-written genlib with different
// area/delay trade-offs, showing both extension points end to end.
//
//   $ ./build/examples/custom_rules_and_cells

#include <cstdio>

#include "core/emorphic.hpp"

using namespace emorphic;

int main() {
  // --- 1. custom rewrite rules ---------------------------------------------
  // A rule the built-in set does not contain: XOR association, plus a
  // "XOR with complement" simplification.
  std::vector<Rewrite> rules = make_logic_rules();
  Pat a = Pat::v("a"), b = Pat::v("b"), c = Pat::v("c");
  rules.push_back(Rewrite::make("assoc-xor",
                                Pat::xor_(Pat::xor_(a, b), c),
                                Pat::xor_(a, Pat::xor_(b, c))));
  rules.push_back(Rewrite::make("xor-compl",
                                Pat::xor_(a, Pat::not_(a)), Pat::c1()));
  rules.push_back(Rewrite::make("xnor-fold",
                                Pat::not_(Pat::xor_(a, b)),
                                Pat::xor_(Pat::not_(a), b)));
  std::printf("rule set: %zu rules (%zu custom)\n", rules.size(), 3ul);

  // --- 2. custom cell library ----------------------------------------------
  // A fictitious low-power library: cheap XORs, expensive NANDs — the
  // opposite trade-off of the default ASAP7-like library. Note full-adder
  // cells are expressible too.
  const char* genlib = R"(
GATE lp_inv   0.05 Y=!A;            PIN * 11
GATE lp_nand2 0.20 Y=!(A*B);        PIN * 17
GATE lp_nor2  0.20 Y=!(A+B);        PIN * 19
GATE lp_and2  0.24 Y=A*B;           PIN * 24
GATE lp_or2   0.24 Y=A+B;           PIN * 26
GATE lp_xor2  0.15 Y=A^B;           PIN * 13
GATE lp_xnor2 0.15 Y=!(A^B);        PIN * 13
GATE lp_maj3  0.30 Y=(A*B)+(A*C)+(B*C); PIN * 28
GATE lp_aoi21 0.25 Y=!((A*B)+C);    PIN * 21
)";
  CellLibrary lib = parse_genlib(genlib);
  std::printf("library: %zu cells (XOR cheaper than NAND)\n\n", lib.size());

  // --- 3. compose a custom pipeline with both ------------------------------
  // Both extension points plug straight into the Pipeline API: the custom
  // rule set rides in a RewriteStage, the custom library in
  // FlowParams.library (it steers the gated rounds, the SA cost model, and
  // the final mapping alike).
  Aig circuit = make_adder(12);  // XOR-rich: adders love cheap XORs

  FlowParams params;
  params.library = &lib;
  params.rounds = 1;
  params.rewrite.max_iterations = 4;
  params.rewrite.max_enodes = 25000;
  params.sa.num_threads = 2;
  params.sa.iterations = 3;
  params.sa.moves_per_iteration = 3;

  Pipeline pipeline;
  pipeline.add("ResynRounds")
      .add("EgraphConversion")                     // forward
      .add(StagePtr(new RewriteStage(rules)))      // the custom rule set
      .add("SaExtract")
      .add("EgraphConversion")                     // backward (SA winner)
      .add(StagePtr(new TechMapStage(/*resynth_gate=*/true)))
      .add("Cec");

  FlowResult result = pipeline.run(circuit, params);
  std::printf("e-graph after custom rules: %zu e-nodes, %zu classes\n",
              result.egraph_enodes, result.egraph_classes);

  const MappedNetlist& netlist = *result.netlist;
  std::printf("mapped onto the custom library: %zu gates, %.2f um^2, %.1f ps\n",
              netlist.num_gates(), netlist.area(), netlist.delay());

  // Gate histogram: cheap XOR cells should dominate an adder.
  std::printf("\ngate usage:\n");
  std::vector<unsigned> histogram(lib.size(), 0);
  for (const MappedGate& g : netlist.gates()) ++histogram[g.cell];
  for (std::uint32_t i = 0; i < lib.size(); ++i) {
    if (histogram[i] > 0) {
      std::printf("  %-10s x %u\n", lib.cell(i).name.c_str(), histogram[i]);
    }
  }

  std::printf("\ncec(original, result): %s\n",
              cec_status_name(result.verify_status));
  return 0;
}
