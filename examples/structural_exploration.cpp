// Structural exploration in slow motion: this example deliberately works
// BELOW the Pipeline API (see quickstart.cpp for that), calling the
// primitives each stage wraps. It converts an optimized multiplier into an
// e-graph, rewrites it, and then shows how *different extractions of the
// same e-graph* map to very different circuits — the structural-bias story
// of the paper's introduction, made concrete.
//
//   $ ./build/examples/structural_exploration

#include <cstdio>

#include "core/emorphic.hpp"
#include "util/rng.hpp"

using namespace emorphic;

int main() {
  Aig circuit = make_multiplier(8);
  const CellLibrary& lib = CellLibrary::asap7_like();

  // Conventional optimization first, as E-morphic does (Sec. III-A).
  Aig optimized = dch_substitute(sop_balance(strash(circuit)));
  MappedQor base = map_qor(optimized, lib);
  std::printf("conventionally optimized: %u ANDs, depth %u -> mapped "
              "%.2f um^2, %.1f ps\n\n",
              optimized.num_ands(), optimized.num_levels(), base.area,
              base.delay);

  // Direct DAG-to-DAG conversion + a few rewriting iterations.
  CircuitEGraph ce = aig_to_egraph(optimized);
  RunnerLimits limits;
  limits.max_iterations = 4;
  limits.max_enodes = 30000;
  RunnerReport report = run_rewriting(ce.egraph, make_logic_rules(), limits);
  std::printf("rewriting: %zu iterations, stop: %s\n",
              report.iterations.size(), stop_reason_name(report.stop_reason));
  std::printf("e-graph now holds %zu e-nodes in %zu classes "
              "(avg %.2f structural choices per class)\n\n",
              ce.egraph.num_enodes(), ce.egraph.num_classes(),
              static_cast<double>(ce.egraph.num_enodes()) /
                  static_cast<double>(ce.egraph.num_classes()));

  // The same e-graph, five different extractions.
  std::printf("%-26s %8s %7s %10s %10s\n", "extraction", "ANDs", "depth",
              "area(um2)", "delay(ps)");
  auto report_one = [&](const char* name, const Extraction& sol) {
    Aig aig = egraph_to_aig(ce, sol);
    MappedQor qor = map_qor(aig, lib);
    std::printf("%-26s %8u %7u %10.2f %10.1f\n", name, aig.num_ands(),
                aig.num_levels(), qor.area, qor.delay);
  };
  report_one("greedy, depth cost",
             greedy_extract(ce.egraph, CostModel{CostKind::kDepth}));
  report_one("greedy, sum cost",
             greedy_extract(ce.egraph, CostModel{CostKind::kSize}));
  Rng rng(7);
  report_one("random #1", random_extract(ce.egraph, rng));
  report_one("random #2", random_extract(ce.egraph, rng));

  // Simulated annealing with the exact (mapper) cost model.
  MapQorEvaluator evaluator(lib);
  SaParams sa;
  sa.num_threads = 4;
  sa.iterations = 3;
  sa.moves_per_iteration = 3;
  SaResult best = sa_extract(ce.egraph, ce.roots, ce.pi_names, evaluator, sa);
  report_one("simulated annealing", best.best);
  std::printf("\nSA explored %zu candidate structures across 4 threads "
              "(%zu cost evaluations, %.2f s)\n",
              best.trace.size(), best.evaluations, best.seconds);

  // Verify the SA winner.
  Aig winner = egraph_to_aig(ce, best.best);
  std::printf("cec(original, SA winner): %s\n",
              cec_status_name(cec(circuit, winner).status));
  return 0;
}
