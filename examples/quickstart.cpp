// Quickstart: build a circuit, run the full E-morphic flow, inspect the
// result, and verify equivalence — the five-minute tour of the public API.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/emorphic.hpp"

using namespace emorphic;

int main() {
  std::printf("%s\n\n", version());

  // 1. Build a circuit. Any AIG works; here, an 8-bit ripple-carry adder
  //    (you could also read_equations(...) or read_aiger(...)).
  Aig circuit = make_adder(8);
  std::printf("input:  %u PIs, %u POs, %u ANDs, depth %u\n",
              circuit.num_pis(), circuit.num_pos(), circuit.num_ands(),
              circuit.num_levels());

  // 2. Configure the flow. Defaults mirror the paper (Sec. IV-A); here we
  //    shrink limits so the example runs in a couple of seconds.
  EmorphicOptions options;
  options.mode = CostModelMode::kQualityPrioritized;
  options.flow.rounds = 2;
  options.flow.rewrite.max_iterations = 3;
  options.flow.rewrite.max_enodes = 20000;
  options.flow.sa.num_threads = 2;
  options.flow.sa.moves_per_iteration = 2;

  // 3. Optimize.
  EmorphicResult result = optimize(circuit, options);

  // 4. Inspect the results.
  std::printf("e-graph: %zu e-nodes grown from %zu (%zu classes)\n",
              result.egraph_enodes, result.initial_enodes,
              result.egraph_classes);
  std::printf("mapped:  area %.2f um^2, delay %.1f ps, %u levels, %.2f s\n",
              result.qor.area, result.qor.delay, result.qor.lev,
              result.qor.seconds);
  std::printf("verify:  %s (SAT-backed cec, as in the paper)\n",
              cec_status_name(result.verify_status));

  // 5. Export: the optimized AIG as equations, the mapped netlist as BLIF.
  std::string eq = write_equations(result.final_aig);
  std::printf("\nfirst lines of the optimized equation file:\n");
  std::printf("%s...\n", eq.substr(0, 200).c_str());
  if (result.netlist.has_value()) {
    std::string blif = result.netlist->to_blif("adder_emorphic");
    std::printf("\nfirst lines of the mapped BLIF:\n%s...\n",
                blif.substr(0, 200).c_str());
  }
  return 0;
}
