// Quickstart: build a circuit, assemble the E-morphic pipeline, watch it
// run through an observer, inspect the result, and verify equivalence —
// the five-minute tour of the public API.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/emorphic.hpp"

using namespace emorphic;

namespace {

/// Prints one line per finished pipeline stage — the simplest useful
/// FlowObserver.
class PrintingObserver : public FlowObserver {
 public:
  void on_stage_end(const Stage&, const StageTelemetry& stage,
                    const FlowContext&) override {
    std::printf("  [%zu] %-16s %6.3f s\n", stage.index, stage.name.c_str(),
                stage.seconds);
  }
};

}  // namespace

int main() {
  std::printf("%s\n\n", version());

  // 1. Build a circuit. Any AIG works; here, an 8-bit ripple-carry adder
  //    (you could also read_equations(...) or read_aiger(...)).
  Aig circuit = make_adder(8);
  std::printf("input:  %u PIs, %u POs, %u ANDs, depth %u\n",
              circuit.num_pis(), circuit.num_pos(), circuit.num_ands(),
              circuit.num_levels());

  // 2. Configure the flow. Defaults mirror the paper (Sec. IV-A); here we
  //    shrink limits so the example runs in a couple of seconds.
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 3;
  params.rewrite.max_enodes = 20000;
  params.sa.num_threads = 2;
  params.sa.moves_per_iteration = 2;

  // 3. Run the prebuilt E-morphic pipeline (Fig. 5) with an observer.
  //    Pipeline::emorphic() is ResynRounds -> EgraphConversion -> Rewrite ->
  //    SaExtract -> EgraphConversion -> TechMap -> Cec; you can also compose
  //    your own with Pipeline().add("..."), or call the one-line legacy
  //    facade optimize() / emorphic_flow() instead.
  std::printf("\nrunning Pipeline::emorphic():\n");
  PrintingObserver observer;
  FlowResult result = Pipeline::emorphic().run(circuit, params, &observer);

  // 4. Inspect the results.
  std::printf("\ne-graph: %zu e-nodes grown from %zu (%zu classes)\n",
              result.egraph_enodes, result.initial_enodes,
              result.egraph_classes);
  std::printf("mapped:  area %.2f um^2, delay %.1f ps, %u levels, %.2f s\n",
              result.qor.area, result.qor.delay, result.qor.lev,
              result.qor.seconds);
  std::printf("verify:  %s (SAT-backed cec, as in the paper)\n",
              cec_status_name(result.verify_status));

  // 5. Export: the optimized AIG as equations, the mapped netlist as BLIF.
  std::string eq = write_equations(result.final_aig);
  std::printf("\nfirst lines of the optimized equation file:\n");
  std::printf("%s...\n", eq.substr(0, 200).c_str());
  if (result.netlist.has_value()) {
    std::string blif = result.netlist->to_blif("adder_emorphic");
    std::printf("\nfirst lines of the mapped BLIF:\n%s...\n",
                blif.substr(0, 200).c_str());
  }
  return 0;
}
