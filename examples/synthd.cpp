// The synthesis daemon: serve E-morphic optimization jobs over a Unix or
// loopback-TCP socket, sharing one warm cache across all clients
// (src/service/server.hpp, protocol in docs/service.md).
//
//   $ ./build/examples/synthd --socket /tmp/synthd.sock &
//   $ ./build/examples/synthcli --socket /tmp/synthd.sock submit --gen adder:8
//   $ ./build/examples/synthcli --socket /tmp/synthd.sock shutdown
//
// The daemon exits when a client sends "shutdown" or on SIGINT/SIGTERM,
// draining already-accepted jobs either way.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "service/server.hpp"
#include "util/logger.hpp"

using namespace emorphic;
using namespace emorphic::service;

namespace {

volatile std::sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --tcp PORT) [options]\n"
               "  --workers N     worker threads (default 2)\n"
               "  --queue N       admission queue capacity (default 16)\n"
               "  --fast          laptop-scale flow parameters (CI/demo)\n"
               "  --paranoia      deep-validate every structure at each stage\n"
               "                  boundary (see docs/correctness.md)\n"
               "  --no-cache      disable the flow-result cache layer\n"
               "  --print-port    print the bound TCP port on stdout\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  bool print_port = false;
  bool have_endpoint = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--socket") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.unix_socket_path = v;
      have_endpoint = true;
    } else if (std::strcmp(arg, "--tcp") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.tcp_port = static_cast<std::uint16_t>(std::atoi(v));
      have_endpoint = true;
    } else if (std::strcmp(arg, "--workers") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.workers = static_cast<unsigned>(std::atoi(v));
    } else if (std::strcmp(arg, "--queue") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.queue_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if (std::strcmp(arg, "--fast") == 0) {
      // The quick-params profile the test suite uses: full pipeline shape,
      // small effort knobs — right for smoke tests and demos.
      config.base_params.rounds = 2;
      config.base_params.rewrite.max_iterations = 2;
      config.base_params.rewrite.max_enodes = 8000;
      config.base_params.sa.iterations = 2;
      config.base_params.sa.moves_per_iteration = 2;
      config.base_params.sa.num_threads = 2;
    } else if (std::strcmp(arg, "--paranoia") == 0) {
      config.base_params.paranoia = true;
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      config.cache_results = false;
    } else if (std::strcmp(arg, "--print-port") == 0) {
      print_port = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!have_endpoint) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  SynthServer server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "synthd: %s\n", e.what());
    return 1;
  }
  if (print_port) {
    std::printf("%u\n", static_cast<unsigned>(server.tcp_port()));
    std::fflush(stdout);
  }

  // Wake periodically so signals are noticed even with no client traffic.
  while (g_signalled == 0) {
    if (server.wait_for_shutdown_request(0.2)) break;
  }
  server.stop();

  ServerStats stats = server.stats();
  WarmCacheStats cache = server.warm_cache().stats();
  std::printf(
      "synthd: served %llu jobs (%llu completed, %llu cancelled, "
      "%llu failed), rejected %llu overloaded / %llu malformed, "
      "result cache %llu/%llu hits, qor memo %llu/%llu hits\n",
      static_cast<unsigned long long>(stats.jobs_accepted),
      static_cast<unsigned long long>(stats.jobs_completed),
      static_cast<unsigned long long>(stats.jobs_cancelled),
      static_cast<unsigned long long>(stats.jobs_failed),
      static_cast<unsigned long long>(stats.rejected_overloaded),
      static_cast<unsigned long long>(stats.rejected_malformed),
      static_cast<unsigned long long>(stats.result_cache_hits),
      static_cast<unsigned long long>(stats.jobs_completed),
      static_cast<unsigned long long>(cache.qor_hits),
      static_cast<unsigned long long>(cache.qor_hits + cache.qor_misses));
  return 0;
}
