// Command-line client for the synthesis daemon (examples/synthd.cpp).
//
//   $ synthcli --socket /tmp/synthd.sock submit --gen adder:8 --progress
//   $ synthcli --socket /tmp/synthd.sock submit --file circuit.aag
//   $ synthcli --socket /tmp/synthd.sock cancel-demo --gen mult:16
//   $ synthcli --socket /tmp/synthd.sock ping
//   $ synthcli --socket /tmp/synthd.sock shutdown
//
// Exit codes: 0 success (for cancel-demo, "the job was cancelled" IS the
// success); 2 the server rejected or failed the job (typed error frame);
// 3 the job was cancelled/deadline-expired (plain submit only).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "aig/aig_io.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "service/client.hpp"

using namespace emorphic;
using namespace emorphic::service;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --tcp-port PORT) COMMAND [options]\n"
      "commands:\n"
      "  submit       run one job and wait for its result\n"
      "  cancel-demo  submit, immediately cancel, expect 'cancelled'\n"
      "  ping         health check\n"
      "  shutdown     ask the daemon to drain and exit\n"
      "submit/cancel-demo options:\n"
      "  --gen NAME:BITS   generated circuit (adder, mult, square, arbiter)\n"
      "  --file PATH       circuit file (AIGER 'aag' or .eqn)\n"
      "  --flow NAME       flow to run (default emorphic)\n"
      "  --seed N          per-job seed (default 1)\n"
      "  --deadline S      end-to-end deadline in seconds\n"
      "  --params JSON     FlowParams overrides, e.g. '{\"rounds\":2}'\n"
      "  --id ID           job id (default job-1)\n"
      "  --progress        stream per-stage progress\n"
      "  --return-circuit  print the optimized AIGER to stdout\n",
      argv0);
  return 2;
}

bool make_generated(const std::string& spec, std::string* aiger) {
  auto colon = spec.find(':');
  if (colon == std::string::npos) return false;
  const std::string name = spec.substr(0, colon);
  const unsigned bits =
      static_cast<unsigned>(std::atoi(spec.c_str() + colon + 1));
  if (bits == 0) return false;
  Aig aig;
  if (name == "adder") {
    aig = make_adder(bits);
  } else if (name == "mult" || name == "multiplier") {
    aig = make_multiplier(bits);
  } else if (name == "square") {
    aig = make_square(bits);
  } else if (name == "arbiter") {
    aig = make_arbiter(bits);
  } else {
    return false;
  }
  *aiger = write_aiger(aig);
  return true;
}

void print_event(const Json& msg) {
  std::fprintf(stderr, "  %s\n", msg.dump().c_str());
}

int report_terminal(const Json& frame, bool cancel_expected,
                    bool return_circuit) {
  const std::string& type = frame.at("type").as_string();
  if (type == "result") {
    const Json& qor = frame.at("qor");
    std::fprintf(stderr,
                 "result: area=%.2f delay=%.2f lev=%lld opt_s=%.3f "
                 "wall_s=%.3f verify=%s cache_hit=%s stop_reason=%s\n",
                 qor.at("area").as_number(), qor.at("delay").as_number(),
                 static_cast<long long>(qor.at("lev").as_int()),
                 qor.at("seconds").as_number(),
                 frame.at("wall_s").as_number(),
                 frame.at("verify").as_string().c_str(),
                 frame.at("cache_hit").as_bool() ? "yes" : "no",
                 frame.at("stop_reason").as_string().c_str());
    if (return_circuit && frame.contains("circuit")) {
      std::fputs(frame.at("circuit").as_string().c_str(), stdout);
    }
    return cancel_expected ? 3 : 0;
  }
  if (type == "cancelled") {
    std::fprintf(stderr, "cancelled: reason=%s\n",
                 frame.at("reason").as_string().c_str());
    return cancel_expected ? 0 : 3;
  }
  std::fprintf(stderr, "error: %s: %s\n",
               frame.at("code").as_string().c_str(),
               frame.at("message").as_string().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::uint16_t tcp_port = 0;
  std::string command;
  JobRequest request;
  request.id = "job-1";
  std::string gen_spec, file_path, params_json;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--socket") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      socket_path = v;
    } else if (std::strcmp(arg, "--tcp-port") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      tcp_port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (std::strcmp(arg, "--gen") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gen_spec = v;
    } else if (std::strcmp(arg, "--file") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      file_path = v;
    } else if (std::strcmp(arg, "--flow") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      request.flow = v;
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      request.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(arg, "--deadline") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      request.deadline_s = std::atof(v);
    } else if (std::strcmp(arg, "--params") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      params_json = v;
    } else if (std::strcmp(arg, "--id") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      request.id = v;
    } else if (std::strcmp(arg, "--progress") == 0) {
      request.progress = true;
    } else if (std::strcmp(arg, "--return-circuit") == 0) {
      request.return_circuit = true;
    } else if (arg[0] != '-' && command.empty()) {
      command = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (command.empty() || (socket_path.empty() && tcp_port == 0)) {
    return usage(argv[0]);
  }

  try {
    SynthClient client = socket_path.empty()
                             ? SynthClient::connect_tcp("127.0.0.1", tcp_port)
                             : SynthClient::connect_unix(socket_path);

    if (command == "ping") {
      if (!client.ping()) {
        std::fprintf(stderr, "ping: no answer\n");
        return 2;
      }
      std::fprintf(stderr, "pong\n");
      return 0;
    }
    if (command == "shutdown") {
      client.shutdown_server();
      std::fprintf(stderr, "server is shutting down\n");
      return 0;
    }
    if (command != "submit" && command != "cancel-demo") {
      return usage(argv[0]);
    }

    if (!gen_spec.empty()) {
      if (!make_generated(gen_spec, &request.circuit)) {
        std::fprintf(stderr, "bad --gen spec '%s'\n", gen_spec.c_str());
        return 2;
      }
    } else if (!file_path.empty()) {
      std::ifstream in(file_path);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", file_path.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      request.circuit = buffer.str();
      if (file_path.size() > 4 &&
          file_path.compare(file_path.size() - 4, 4, ".eqn") == 0) {
        request.format = "eqn";
      }
    } else {
      std::fprintf(stderr, "submit needs --gen or --file\n");
      return 2;
    }
    if (!params_json.empty()) request.params = Json::parse(params_json);

    const bool cancel_demo = command == "cancel-demo";
    Json verdict = client.submit(request);
    if (verdict.at("type").as_string() == "error") {
      return report_terminal(verdict, cancel_demo, false);
    }
    std::fprintf(stderr, "accepted: id=%s\n", request.id.c_str());
    if (cancel_demo) client.cancel(request.id);
    Json terminal = client.await(
        request.id, request.progress ? print_event
                                     : std::function<void(const Json&)>());
    return report_terminal(terminal, cancel_demo, request.return_circuit);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "synthcli: %s\n", e.what());
    return 2;
  }
}
