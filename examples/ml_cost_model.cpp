// Runtime-prioritized E-morphic: train the ML cost model (the paper's
// HOGA substitute, Sec. III-C.1 / IV-D) on structural variants of a
// circuit family, then drive simulated-annealing extraction with
// predictions instead of exact mapping — and compare the two modes.
//
//   $ ./build/examples/ml_cost_model

#include <cstdio>

#include "core/emorphic.hpp"

using namespace emorphic;

int main() {
  const CellLibrary& lib = CellLibrary::asap7_like();

  // --- 1. build a training set (the OpenABC-D substitution) ----------------
  std::printf("generating labelled structural variants...\n");
  Dataset data;
  for (const char* name : {"sin", "square", "arbiter"}) {
    DatasetParams dp;
    dp.variants_per_circuit = 20;
    dp.rewrite.max_iterations = 3;
    dp.rewrite.max_enodes = 15000;
    dp.mapping.area_recovery = false;
    data.append(generate_variants(make_epfl(name), lib, dp));
  }
  Dataset train, test;
  split_dataset(data, 5, &train, &test);

  // --- 2. train and evaluate ------------------------------------------------
  MlpParams mp;
  mp.epochs = 200;
  MlCostModel model(mp);
  model.train(train.features, train.delays, train.areas);
  std::vector<double> pred;
  for (const auto& f : test.features) pred.push_back(model.predict_delay(f));
  std::printf("held-out: %zu samples, delay MAPE %.1f%%, Kendall tau %.2f\n\n",
              test.size(), mape(pred, test.delays),
              kendall_tau(pred, test.delays));

  // --- 3. the two cost-model modes, head to head ----------------------------
  Aig circuit = make_epfl("square");
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 3;
  params.rewrite.max_enodes = 20000;
  params.sa.iterations = 3;
  params.sa.moves_per_iteration = 3;
  params.verify = false;

  // Both modes run the same Pipeline::emorphic(); the cost model is the
  // FlowContext's evaluator, and timings come from pipeline telemetry.
  Pipeline pipeline = Pipeline::emorphic();

  params.sa.num_threads = 4;  // quality-prioritized: 4 threads (Sec. IV-A)
  FlowResult exact = pipeline.run(circuit, params);
  double exact_s = exact.telemetry.total_seconds;

  params.sa.num_threads = 6;  // runtime-prioritized: 6 threads
  FlowContext ml_ctx;
  ml_ctx.params = params;
  ml_ctx.input = circuit;
  ml_ctx.evaluator = &model;
  FlowResult ml = pipeline.run(ml_ctx);
  double ml_s = ml.telemetry.total_seconds;

  std::printf("%-26s %10s %10s %9s\n", "mode", "area(um2)", "delay(ps)",
              "time(s)");
  std::printf("%-26s %10.2f %10.1f %9.2f\n", "quality (exact mapping)",
              exact.qor.area, exact.qor.delay, exact_s);
  std::printf("%-26s %10.2f %10.1f %9.2f\n", "runtime (ML prediction)",
              ml.qor.area, ml.qor.delay, ml_s);
  std::printf("\nruntime saving from the ML model: %.1f%% (paper: ~28%%)\n",
              100.0 * (1.0 - ml_s / exact_s));

  std::printf("\nverification: exact-mode %s, ML-mode %s\n",
              cec_status_name(cec(circuit, exact.final_aig).status),
              cec_status_name(cec(circuit, ml.final_aig).status));
  return 0;
}
