#include "util/rng.hpp"

namespace emorphic {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (splitmix64 cannot produce four zeros from one
  // seed in practice, but be defensive).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation; bias is negligible for
  // our bounds (all far below 2^64).
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

}  // namespace emorphic
