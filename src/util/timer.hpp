#pragma once
// Wall-clock stopwatch used by the runner's time limits and by the
// benchmark harnesses that reproduce the paper's runtime columns.

#include <chrono>

namespace emorphic {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction / last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace emorphic
