#pragma once
// Fixed-size worker pool used for the multithreaded parallel SA extraction
// (Sec. III-B.3): several annealing chains run concurrently, each producing a
// candidate solution, and the best QoR wins.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace emorphic {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future resolves when it completes.
  /// Called from inside one of this pool's own workers, the task runs
  /// inline instead (the future returns already resolved): queueing and
  /// waiting from a worker can deadlock — every worker may end up blocked
  /// in get() with the queued work behind it in the queue.
  std::future<void> submit(std::function<void()> task);

  /// Run `fn(i)` for i in [0, n) across the pool and wait for all of them.
  /// From inside one of this pool's own workers the loop runs inline on the
  /// calling worker (same nested-invocation deadlock guard as submit; the
  /// nested path is exercised by tests/util/test_thread_pool.cpp).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace emorphic
