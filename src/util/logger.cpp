#include "util/logger.hpp"

#include <iostream>
#include <mutex>

namespace emorphic {
namespace {
std::mutex g_log_mutex;
// Guarded by g_log_mutex; nullptr means std::cerr.
std::ostream* g_sink = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

std::atomic<LogLevel>& Logger::threshold_ref() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_sink = sink;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(threshold())) return;
  // Compose the whole line first, then emit it with one guarded write:
  // concurrent loggers can interleave lines, never characters.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.flush();
}

}  // namespace emorphic
