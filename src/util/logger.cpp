#include "util/logger.hpp"

#include <iostream>
#include <mutex>

namespace emorphic {
namespace {
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel& Logger::threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(threshold())) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace emorphic
