#pragma once
// Thin RAII layer over POSIX stream sockets (Unix-domain and loopback TCP)
// plus the length-prefixed framing the synthesis service speaks.
//
// Frame format (docs/service.md):
//
//   +------+------+------+------+------+------+------+------+-- ... --+
//   | 'E'  | 'M'  | 'S'  | '1'  |  payload length, u32 LE   | payload |
//   +------+------+------+------+------+------+------+------+-- ... --+
//
// The 4-byte magic "EMS1" rejects stray protocols (and byte-order mistakes)
// immediately; the length is capped so a lying client cannot make the
// server allocate unboundedly. Payloads are UTF-8 JSON documents
// (src/service/protocol.hpp defines the messages).
//
// All writes use send(MSG_NOSIGNAL): a client that disconnects mid-response
// produces an error return, never a SIGPIPE that would kill the daemon.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace emorphic {

/// Largest accepted frame payload (64 MiB — a multi-million-gate AIGER
/// text fits; anything bigger is a protocol violation).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Move-only RAII wrapper of one socket file descriptor. Errors throw
/// std::runtime_error carrying errno text; clean peer EOF is reported by
/// return value where it is an expected outcome.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // --- factories ---------------------------------------------------------

  /// Bind + listen on a Unix-domain socket path (unlinks a stale file).
  static Socket listen_unix(const std::string& path, int backlog = 16);
  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral); the actually bound
  /// port is stored in *bound_port.
  static Socket listen_tcp_loopback(std::uint16_t port,
                                    std::uint16_t* bound_port,
                                    int backlog = 16);
  static Socket connect_unix(const std::string& path);
  static Socket connect_tcp(const std::string& host, std::uint16_t port);
  /// A connected AF_UNIX pair (for in-process protocol tests).
  static std::pair<Socket, Socket> pair();

  // --- operations --------------------------------------------------------

  /// Accept one connection. Returns an invalid Socket when the listener
  /// was shut down (the server's stop path); throws on other errors.
  Socket accept() const;

  /// shutdown(RDWR): unblocks accept()/recv() in other threads without
  /// closing the descriptor out from under them.
  void shutdown_both();

  void close();

  /// Read exactly `n` bytes. Returns false on clean EOF before the first
  /// byte; throws on errors or EOF mid-read.
  bool read_exact(void* buffer, std::size_t n) const;

  /// Write all `n` bytes (send with MSG_NOSIGNAL); throws on error.
  void write_all(const void* buffer, std::size_t n) const;

 private:
  int fd_ = -1;
};

/// Read one frame into *payload. Returns false on clean EOF between frames;
/// throws std::runtime_error on bad magic, an over-limit length, or EOF
/// mid-frame.
bool read_frame(const Socket& socket, std::string* payload,
                std::uint32_t max_bytes = kMaxFrameBytes);

/// Write one frame; throws on error (e.g. the peer vanished).
void write_frame(const Socket& socket, std::string_view payload);

}  // namespace emorphic
