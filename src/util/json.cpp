#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace emorphic {

const Json& Json::at(const std::string& key) const {
  if (!is_object()) throw JsonParseError("Json::at on non-object");
  auto it = object_->find(key);
  if (it == object_->end()) throw JsonParseError("missing key: " + key);
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && object_->count(key) > 0;
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) {
    type_ = Type::kObject;
    object_ = std::make_shared<JsonObject>();
  }
  return (*object_)[key];
}

void Json::push_back(Json value) {
  if (!is_array()) {
    type_ = Type::kArray;
    array_ = std::make_shared<JsonArray>();
  }
  array_->push_back(std::move(value));
}

namespace {

void escape_string(const std::string& in, std::string& out) {
  out += '"';
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

void append_number(double d, std::string& out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(number_, out);
      break;
    case Type::kString:
      escape_string(string_, out);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : *array_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_impl(out, indent, depth + 1);
      }
      if (!array_->empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : *object_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(key, out);
        out += indent < 0 ? ":" : ": ";
        value.dump_impl(out, indent, depth + 1);
      }
      if (!object_->empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw JsonParseError("JSON parse error at offset " + std::to_string(pos_) +
                         ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char get() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + "'");
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        expect_word("true");
        return Json(true);
      case 'f':
        expect_word("false");
        return Json(false);
      case 'n':
        expect_word("null");
        return Json();
      default:
        return parse_number();
    }
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = get();
      if (c == '"') return out;
      if (c == '\\') {
        char esc = get();
        switch (esc) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case '"':
          case '\\':
          case '/':
            out += esc;
            break;
          default:
            fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return Json(std::stod(text_.substr(start, pos_ - start)));
  }

  Json parse_array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      char c = get();
      if (c == ']') return Json(std::move(items));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = get();
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace emorphic
