#pragma once
// A small-size-optimized vector for trivially copyable element types.
//
// E-graph classes overwhelmingly hold one or two e-nodes (a fresh class holds
// exactly one until a merge hits it), so storing member lists in a
// std::vector wastes a heap allocation plus a cache miss per class. SmallVec
// keeps up to `N` elements inline inside the object and only spills to the
// heap when a class actually grows past that.

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace emorphic {

/// Vector with inline storage for the first `N` elements. Restricted to
/// trivially copyable `T` so growth and copies are plain memcpy.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable types");
  static_assert(N > 0, "inline capacity must be nonzero");

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { append(other.begin(), other.end()); }

  SmallVec(SmallVec&& other) noexcept { steal(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      append(other.begin(), other.end());
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  T* data() { return heap_ != nullptr ? heap_ : inline_ptr(); }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_ptr(); }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("SmallVec::at");
    return data()[i];
  }
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("SmallVec::at");
    return data()[i];
  }

  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      // `value` may alias an element of this vector, and grow() frees the
      // old heap block — copy it out first or the write below reads freed
      // memory (tests/util/test_small_vec.cpp pins this under ASan).
      T tmp = value;
      grow(size_ + 1);
      data()[size_++] = tmp;
      return;
    }
    data()[size_++] = value;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    // The temporary materialized here never aliases our storage, so this
    // stays safe regardless of how push_back handles aliasing.
    push_back(T(std::forward<Args>(args)...));
    return back();
  }

  /// Append [first, last); the range must not alias this vector's storage.
  void append(const T* first, const T* last) {
    std::size_t n = static_cast<std::size_t>(last - first);
    if (n == 0) return;
    if (size_ + n > capacity_) grow(size_ + n);
    std::memcpy(data() + size_, first, n * sizeof(T));
    size_ += n;
  }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  /// Drop the heap allocation when the contents fit inline again.
  void shrink_to_fit() {
    if (heap_ == nullptr || size_ > N) return;
    std::memcpy(inline_ptr(), heap_, size_ * sizeof(T));
    std::free(heap_);
    heap_ = nullptr;
    capacity_ = N;
  }

 private:
  T* inline_ptr() { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_ptr() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void grow(std::size_t min_capacity) {
    std::size_t next = std::max<std::size_t>(capacity_ * 2, min_capacity);
    T* fresh = static_cast<T*>(std::malloc(next * sizeof(T)));
    if (fresh == nullptr) throw std::bad_alloc();
    std::memcpy(fresh, data(), size_ * sizeof(T));
    if (heap_ != nullptr) std::free(heap_);
    heap_ = fresh;
    capacity_ = next;
  }

  void release() {
    if (heap_ != nullptr) std::free(heap_);
    heap_ = nullptr;
    capacity_ = N;
    size_ = 0;
  }

  void steal(SmallVec& other) {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      size_ = other.size_;
      std::memcpy(inline_ptr(), other.inline_ptr(), size_ * sizeof(T));
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace emorphic
