#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace emorphic {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

constexpr char kFrameMagic[4] = {'E', 'M', 'S', '1'};

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // a stale file from a dead server blocks bind
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(sock.fd(), backlog) != 0) throw_errno("listen(" + path + ")");
  return sock;
}

Socket Socket::listen_tcp_loopback(std::uint16_t port,
                                   std::uint16_t* bound_port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_INET)");
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind(127.0.0.1)");
  }
  if (::listen(sock.fd(), backlog) != 0) throw_errno("listen(tcp)");

  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Socket Socket::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_UNIX)");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect(" + path + ")");
  }
  return sock;
}

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("connect_tcp: not an IPv4 address: " + host);
  }

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_INET)");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect(" + host + ")");
  }
  return sock;
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

Socket Socket::accept() const {
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // shutdown_both() on the listener surfaces as EINVAL (Linux); a closed
    // descriptor as EBADF. Both mean "the server is stopping".
    if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED) {
      return Socket();
    }
    throw_errno("accept");
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::read_exact(void* buffer, std::size_t n) const {
  char* out = static_cast<char*>(buffer);
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF on a message boundary
      throw std::runtime_error("socket: EOF mid-read");
    }
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
  return true;
}

void Socket::write_all(const void* buffer, std::size_t n) const {
  const char* in = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE here instead of a
    // process-killing SIGPIPE.
    ssize_t w = ::send(fd_, in + sent, n - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("send");
  }
}

bool read_frame(const Socket& socket, std::string* payload,
                std::uint32_t max_bytes) {
  char header[8];
  if (!socket.read_exact(header, sizeof(header))) return false;
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw std::runtime_error("frame: bad magic (not an EMS1 stream)");
  }
  std::uint32_t length = 0;
  for (int b = 3; b >= 0; --b) {
    length = (length << 8) | static_cast<unsigned char>(header[4 + b]);
  }
  if (length > max_bytes) {
    throw std::runtime_error("frame: payload of " + std::to_string(length) +
                             " bytes exceeds the " +
                             std::to_string(max_bytes) + "-byte limit");
  }
  payload->resize(length);
  if (length > 0 && !socket.read_exact(payload->data(), length)) {
    throw std::runtime_error("frame: EOF mid-payload");
  }
  return true;
}

void write_frame(const Socket& socket, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("frame: payload too large to send");
  }
  char header[8];
  std::memcpy(header, kFrameMagic, sizeof(kFrameMagic));
  auto length = static_cast<std::uint32_t>(payload.size());
  for (int b = 0; b < 4; ++b) {
    header[4 + b] = static_cast<char>((length >> (8 * b)) & 0xff);
  }
  // One buffer, one send: keeps header+payload contiguous on the wire even
  // with concurrent writers serialized by the caller's session mutex.
  std::string frame;
  frame.reserve(sizeof(header) + payload.size());
  frame.append(header, sizeof(header));
  frame.append(payload);
  socket.write_all(frame.data(), frame.size());
}

}  // namespace emorphic
