#pragma once
// Tiny self-contained JSON value type with parser and printer.
//
// Used by the intermediate DSL of Fig. 7: the serialized e-graph format that
// makes direct DAG-to-DAG circuit/e-graph conversion possible is a JSON
// document mapping e-class ids to their e-nodes and parent lists.

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace emorphic {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys ordered so serialization is deterministic.
using JsonObject = std::map<std::string, Json>;

class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value: null, bool, number (double), string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                    // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}              // NOLINT
  Json(int i) : type_(Type::kNumber), number_(i) {}                 // NOLINT
  Json(std::int64_t i)                                              // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(std::uint64_t i)                                             // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}         // NOLINT
  Json(JsonArray a) : type_(Type::kArray) {                         // NOLINT
    array_ = std::make_shared<JsonArray>(std::move(a));
  }
  Json(JsonObject o) : type_(Type::kObject) {                       // NOLINT
    object_ = std::make_shared<JsonObject>(std::move(o));
  }

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  JsonArray& as_array() { return *array_; }
  const JsonArray& as_array() const { return *array_; }
  JsonObject& as_object() { return *object_; }
  const JsonObject& as_object() const { return *object_; }

  /// Object member access; throws if not an object or key missing.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  Json& operator[](const std::string& key);
  void push_back(Json value);

  /// Serialize; `indent` < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws JsonParseError on bad input.
  static Json parse(const std::string& text);

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

}  // namespace emorphic
