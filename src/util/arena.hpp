#pragma once
// The repo-wide bump/pool allocator layer behind the allocation-free hot
// loop (ROADMAP item 3).
//
// Three tiers, stacked:
//
//  * BumpArena — a block list with pointer-bump allocation. `reset()` is the
//    epoch boundary: it rewinds to empty while keeping the capacity, and
//    when the epoch spilled across several blocks it coalesces them into one
//    so the *next* epoch of the same size does zero mallocs. Allocations
//    never move or free individually; an arena's addresses are stable until
//    reset()/release().
//  * PoolAllocator<T> — a free list of fixed-size slots over a BumpArena,
//    for objects that are released one at a time instead of wholesale.
//  * ArenaSpan<T> / SpanStore<T> — the struct-of-arrays building block: a
//    trivially copyable {data, size, capacity} header (stored densely,
//    indexed by class/node id) whose element storage lives in a SpanStore's
//    arena. Grow-in-place is impossible in a bump arena, so growth allocates
//    a fresh region and retires the old one as tracked waste; compact()
//    copies the live spans into a fresh arena when the waste justifies it
//    (the e-graph does this at rebuild() — epoch reclaim).
//
// Instrumentation: under EMORPHIC_CHECKS every block malloc bumps a global
// counter (arena_block_allocs()), so tests and bench/micro_alloc.cpp can
// assert that a warmed-up flow stops touching the system allocator.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#ifdef EMORPHIC_CHECKS
#include <atomic>
#endif

namespace emorphic {

#ifdef EMORPHIC_CHECKS
namespace detail {
inline std::atomic<std::uint64_t>& arena_block_alloc_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}
}  // namespace detail
#endif

/// Number of arena block mallocs performed process-wide. Always 0 unless
/// EMORPHIC_CHECKS is compiled in; a steady-state assertion reads it before
/// and after the loop under test and requires the delta to be zero.
inline std::uint64_t arena_block_allocs() {
#ifdef EMORPHIC_CHECKS
  return detail::arena_block_alloc_counter().load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

/// Pointer-bump allocator over a list of malloc'd blocks.
class BumpArena {
 public:
  BumpArena() = default;

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  // Moving transfers block ownership; outstanding pointers stay valid.
  BumpArena(BumpArena&& other) noexcept { steal(other); }
  BumpArena& operator=(BumpArena&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~BumpArena() { release(); }

  /// Allocate `bytes` aligned to `align` (a power of two). The memory is
  /// uninitialized and lives until reset()/release().
  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      // Align the *address*, not the offset: malloc only guarantees
      // max_align_t, so an over-aligned request must pad relative to the
      // block base (tests/util/test_arena.cpp pins this with align=64).
      std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data);
      std::size_t at = offset_ + ((~(base + offset_) + 1) & (align - 1));
      if (at + bytes <= b.size) {
        offset_ = at + bytes;
        used_ += bytes;
        return b.data + at;
      }
      // Exhausted: move on (a later retained block may fit after a reset).
      ++cur_;
      offset_ = 0;
    }
    Block fresh = new_block(bytes + align);
    blocks_.push_back(fresh);
    cur_ = blocks_.size() - 1;
    // malloc returns max_align_t-aligned memory; pad only for over-aligned
    // requests.
    std::size_t at =
        (~reinterpret_cast<std::uintptr_t>(fresh.data) + 1) & (align - 1);
    offset_ = at + bytes;
    used_ += bytes;
    return fresh.data + at;
  }

  /// Typed allocation of `n` uninitialized elements.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "BumpArena hands out raw, memcpy-able storage");
    return static_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T)));
  }

  /// Epoch boundary: rewind to empty, keep the capacity. When the past
  /// epoch spilled into several blocks they are coalesced into one, so a
  /// same-sized next epoch allocates from a single warm block with zero
  /// mallocs. Invalidates everything previously handed out.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      for (Block& b : blocks_) std::free(b.data);
      blocks_.clear();
      blocks_.push_back(new_block(total));
    }
    cur_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Free every block (the arena returns to its just-constructed state).
  void release() {
    for (Block& b : blocks_) std::free(b.data);
    blocks_.clear();
    cur_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since the last reset (excluding alignment padding).
  std::size_t used() const { return used_; }

  /// Total bytes owned across blocks.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    unsigned char* data = nullptr;
    std::size_t size = 0;
  };

  static constexpr std::size_t kMinBlock = 4096;

  Block new_block(std::size_t at_least) {
    std::size_t size = kMinBlock;
    // Geometric growth keyed off the existing capacity bounds the number of
    // blocks (and thus coalescing copies) to O(log total).
    std::size_t have = capacity();
    if (have > size) size = have;
    if (at_least > size) size = at_least;
    unsigned char* data = static_cast<unsigned char*>(std::malloc(size));
    if (data == nullptr) throw std::bad_alloc();
#ifdef EMORPHIC_CHECKS
    detail::arena_block_alloc_counter().fetch_add(1, std::memory_order_relaxed);
#endif
    return Block{data, size};
  }

  void steal(BumpArena& other) {
    blocks_ = std::move(other.blocks_);
    cur_ = other.cur_;
    offset_ = other.offset_;
    used_ = other.used_;
    other.blocks_.clear();
    other.cur_ = 0;
    other.offset_ = 0;
    other.used_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;     // block currently bumped into
  std::size_t offset_ = 0;  // bump offset within blocks_[cur_]
  std::size_t used_ = 0;
};

/// Fixed-size-slot pool with a free list, for objects released one at a
/// time (arena epochs reclaim wholesale; the pool reclaims per object).
/// Slots come from the underlying BumpArena and are recycled forever.
template <typename T>
class PoolAllocator {
  static_assert(std::is_trivially_copyable_v<T>,
                "PoolAllocator slots are raw storage");

 public:
  /// Uninitialized slot; construct in place or assign into it.
  T* allocate() {
    if (free_ != nullptr) {
      FreeNode* slot = free_;
      free_ = slot->next;
      --free_count_;
      return reinterpret_cast<T*>(slot);
    }
    ++live_high_water_;
    return static_cast<T*>(arena_.alloc_bytes(kSlotSize, kSlotAlign));
  }

  /// Return a slot to the free list. The object is not destroyed (T is
  /// trivially copyable, there is nothing to destroy).
  void deallocate(T* ptr) {
    FreeNode* slot = reinterpret_cast<FreeNode*>(ptr);
    slot->next = free_;
    free_ = slot;
    ++free_count_;
  }

  /// Drop every slot at once (the free list and the arena rewind together).
  void reset() {
    free_ = nullptr;
    free_count_ = 0;
    live_high_water_ = 0;
    arena_.reset();
  }

  std::size_t free_count() const { return free_count_; }
  /// Slots ever bump-allocated (== peak live slots across the pool's life).
  std::size_t high_water() const { return live_high_water_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr std::size_t kSlotSize =
      sizeof(T) > sizeof(FreeNode*) ? sizeof(T) : sizeof(FreeNode*);
  static constexpr std::size_t kSlotAlign =
      alignof(T) > alignof(FreeNode*) ? alignof(T) : alignof(FreeNode*);

  BumpArena arena_;
  FreeNode* free_ = nullptr;
  std::size_t free_count_ = 0;
  std::size_t live_high_water_ = 0;
};

/// A {data, size, capacity} span header whose element storage lives in a
/// SpanStore's arena. Trivially copyable: headers are stored densely in
/// std::vectors indexed by id (the SoA layout), and copying a header is a
/// view copy — the elements are owned by the store, not the header.
template <typename T>
class ArenaSpan {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaSpan elements live in raw arena storage");

 public:
  ArenaSpan() = default;

  T* data() { return data_; }
  const T* data() const { return data_; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::reverse_iterator<T*> rbegin() { return std::reverse_iterator<T*>(end()); }
  std::reverse_iterator<T*> rend() { return std::reverse_iterator<T*>(begin()); }
  std::reverse_iterator<const T*> rbegin() const {
    return std::reverse_iterator<const T*>(end());
  }
  std::reverse_iterator<const T*> rend() const {
    return std::reverse_iterator<const T*>(begin());
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("ArenaSpan::at");
    return data_[i];
  }
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("ArenaSpan::at");
    return data_[i];
  }

  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  /// Forget the contents, keep the storage (mirrors vector::clear).
  void clear() { size_ = 0; }

  /// Drop the last element (storage stays with the span).
  void pop_back() { --size_; }

 private:
  template <typename U>
  friend class SpanStore;

  T* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = 0;
};

/// Owner of the element storage behind a family of ArenaSpan<T> headers.
/// All mutation of a span's *shape* (growth, assign, release) goes through
/// the store; reading and in-place element writes go through the span.
template <typename T>
class SpanStore {
 public:
  /// Append one element, growing the span's arena region if needed. Safe
  /// even when `value` aliases an element of `span` (the self-alias
  /// use-after-free class fixed in SmallVec::push_back — see
  /// tests/util/test_arena.cpp).
  void push_back(ArenaSpan<T>& span, const T& value) {
    if (span.size_ == span.capacity_) {
      T tmp = value;  // `value` may live in the region grow() retires
      grow(span, span.size_ + 1);
      span.data_[span.size_++] = tmp;
    } else {
      span.data_[span.size_++] = value;
    }
    ++live_;
  }

  /// Append [first, last); the range must not alias `span`'s storage
  /// (growth would memcpy from a retired region — same contract as
  /// SmallVec::append). Ranges in *other* spans of this store are fine:
  /// arena regions never move.
  void append(ArenaSpan<T>& span, const T* first, const T* last) {
    std::size_t n = static_cast<std::size_t>(last - first);
    if (n == 0) return;
    if (span.size_ + n > span.capacity_) grow(span, span.size_ + n);
    std::memcpy(span.data_ + span.size_, first, n * sizeof(T));
    span.size_ += static_cast<std::uint32_t>(n);
    live_ += n;
  }

  /// Replace the contents with [first, last) (no aliasing, as in append).
  void assign(ArenaSpan<T>& span, const T* first, const T* last) {
    live_ -= span.size_;
    span.size_ = 0;
    append(span, first, last);
  }

  /// Ensure capacity for `n` elements (exact-fit when growing from empty,
  /// so enumeration passes that know their count pay zero waste).
  void reserve(ArenaSpan<T>& span, std::size_t n) {
    if (n > span.capacity_) grow(span, n);
  }

  /// Retire the span's storage (tracked as waste until compact()) and zero
  /// the header.
  void release(ArenaSpan<T>& span) {
    waste_ += span.capacity_;
    live_ -= span.size_;
    span = ArenaSpan<T>{};
  }

  /// Copy every live span into the spare arena and swap — the epoch reclaim
  /// step. Headers in `spans` are rewritten (tight: capacity == size); any
  /// header NOT in `spans` becomes dangling, so callers pass every live
  /// header family they own.
  ///
  /// The two arenas ping-pong: the retired one is kept as the next
  /// compaction's target, so a steady-state loop (compact every rebuild,
  /// same sizes every epoch) runs with zero mallocs once both arenas have
  /// warmed up to the epoch size — retained memory traded for an
  /// allocation-free hot loop, the same deal reset() makes.
  void compact(std::vector<ArenaSpan<T>>& spans) {
    spare_.reset();
    std::size_t total = 0;
    for (const ArenaSpan<T>& s : spans) total += s.size();
    if (total > 0) {
      // One up-front region so the copy loop never mallocs mid-flight.
      static_cast<void>(spare_.alloc<T>(total));
      spare_.reset();
    }
    for (ArenaSpan<T>& s : spans) {
      if (s.size_ == 0) {
        s = ArenaSpan<T>{};
        continue;
      }
      T* data = spare_.alloc<T>(s.size_);
      std::memcpy(data, s.data_, s.size_ * sizeof(T));
      s.data_ = data;
      s.capacity_ = s.size_;
    }
    std::swap(arena_, spare_);
    waste_ = 0;
    live_ = total;  // resync (ArenaSpan::clear/pop_back bypass the store)
  }

  /// Drop every span at once (headers the caller holds become dangling and
  /// must be cleared/reassigned by the caller). Arena capacity is kept.
  void reset() {
    arena_.reset();
    waste_ = 0;
    live_ = 0;
  }

  /// Elements currently reachable through live spans.
  std::size_t live() const { return live_; }
  /// Elements' worth of storage retired by growth/release since the last
  /// compact()/reset().
  std::size_t waste() const { return waste_; }
  std::size_t arena_capacity_bytes() const { return arena_.capacity(); }

 private:
  void grow(ArenaSpan<T>& span, std::size_t min_capacity) {
    std::size_t next = span.capacity_ == 0
                           ? min_capacity
                           : std::size_t{span.capacity_} * 2;
    if (next < min_capacity) next = min_capacity;
    T* data = arena_.alloc<T>(next);
    if (span.size_ > 0) {
      std::memcpy(data, span.data_, span.size_ * sizeof(T));
    }
    waste_ += span.capacity_;
    span.data_ = data;
    span.capacity_ = static_cast<std::uint32_t>(next);
  }

  BumpArena arena_;
  BumpArena spare_;  // compact()'s ping-pong partner
  std::size_t waste_ = 0;
  std::size_t live_ = 0;
};

}  // namespace emorphic
