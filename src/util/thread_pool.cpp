#include "util/thread_pool.hpp"

namespace emorphic {

namespace {
// The pool (if any) whose worker_loop owns the calling thread. A thread
// belongs to at most one pool for its whole life, so a plain pointer is
// enough to detect re-entrant submit/parallel_for and run inline instead of
// deadlocking on a queue no free worker will ever drain.
thread_local ThreadPool* tl_owning_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const { return tl_owning_pool == this; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  if (on_worker_thread()) {
    // Nested submission from our own worker: run inline. Queueing would
    // risk deadlock once callers wait on the future while occupying the
    // worker slot the task needs.
    packaged();
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (on_worker_thread()) {
    // Nested parallel_for (e.g. CutManager::enumerate_parallel under a
    // pooled run_batch worker): the serial fallback keeps the result
    // identical and cannot deadlock.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  tl_owning_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace emorphic
