#pragma once
// Deterministic fast pseudo-random number generation (xoshiro256**).
//
// Every randomized component in E-morphic (simulated-annealing extraction,
// random extraction, dataset generation, random simulation) takes an
// explicit seed so experiments are reproducible run-to-run.

#include <cstdint>

namespace emorphic {

/// xoshiro256** 1.0 by Blackman & Vigna — small, fast, high quality.
/// Not cryptographic; perfectly adequate for stochastic search.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

 private:
  std::uint64_t s_[4];
};

}  // namespace emorphic
