#pragma once
// Minimal leveled logger, safe under concurrency. The benches print
// paper-style tables to stdout; the logger carries diagnostics on stderr by
// default and can be silenced globally (tests run with level = kError).
//
// Thread-safety contract (the synthesis daemon makes concurrent logging the
// common case):
//  * the threshold is an atomic — readers never race writers;
//  * each message is composed into one string and emitted with a single
//    guarded write, so concurrent run_batch workers / service sessions can
//    never interleave partial lines;
//  * the sink is injectable (set_sink) for daemons that log to a file and
//    for tests that assert on per-line atomicity.

#include <atomic>
#include <ostream>
#include <sstream>
#include <string>

namespace emorphic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel threshold() {
    return threshold_ref().load(std::memory_order_relaxed);
  }
  static void set_threshold(LogLevel level) {
    threshold_ref().store(level, std::memory_order_relaxed);
  }

  /// Redirect all log output to `sink` (nullptr restores stderr). The sink
  /// must outlive every subsequent log call; writes to it are serialized by
  /// the logger's internal mutex, but nothing stops other code from writing
  /// to the same stream unguarded — give the logger its own stream.
  static void set_sink(std::ostream* sink);

  /// Emit one line: "[LEVEL] message\n", written atomically.
  static void log(LogLevel level, const std::string& message);

 private:
  static std::atomic<LogLevel>& threshold_ref();
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::log(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace emorphic
