#pragma once
// Minimal leveled logger. The benches print paper-style tables to stdout;
// the logger carries diagnostics on stderr and can be silenced globally
// (tests run with level = kError).

#include <sstream>
#include <string>

namespace emorphic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel& threshold();
  static void set_threshold(LogLevel level) { threshold() = level; }
  static void log(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::log(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace emorphic
