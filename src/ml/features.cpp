#include "ml/features.hpp"

#include <algorithm>
#include <cmath>

namespace emorphic {

namespace {
constexpr const char* kFeatureNames[kNumFeatures] = {
    "log_num_ands",    "log_num_pis",      "log_num_pos",
    "log_levels",      "ands_per_pi",      "ands_per_level",
    "avg_fanout",      "max_fanout_norm",  "frac_compl_edges",
    "frac_po_compl",   "levels_per_log2n", "hist0",
    "hist1",           "hist2",            "hist3",
    "hist4",           "hist5",            "bias",
};
}  // namespace

const char* feature_name(unsigned index) { return kFeatureNames[index]; }

FeatureVector extract_features(const Aig& aig) {
  FeatureVector f{};
  const double n_ands = std::max<double>(1.0, aig.num_ands());
  const double n_pis = std::max<double>(1.0, aig.num_pis());
  const double n_pos = std::max<double>(1.0, aig.num_pos());
  auto levels = aig.levels();
  const double depth = std::max<double>(1.0, aig.num_levels());

  f[0] = std::log2(n_ands);
  f[1] = std::log2(n_pis);
  f[2] = std::log2(n_pos);
  f[3] = std::log2(depth);
  f[4] = n_ands / n_pis;
  f[5] = n_ands / depth;

  auto fanout = aig.fanout_counts();
  double fanout_sum = 0.0, fanout_max = 0.0;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    fanout_sum += fanout[v];
    fanout_max = std::max<double>(fanout_max, fanout[v]);
  }
  double num_nodes = std::max<double>(1.0, aig.num_nodes() - 1);
  f[6] = fanout_sum / num_nodes;
  f[7] = fanout_max / std::max(1.0, fanout_sum / num_nodes) / 64.0;

  double compl_edges = 0.0, total_edges = 0.0;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    total_edges += 2.0;
    compl_edges += lit_is_compl(aig.fanin0(v)) ? 1.0 : 0.0;
    compl_edges += lit_is_compl(aig.fanin1(v)) ? 1.0 : 0.0;
  }
  f[8] = total_edges > 0 ? compl_edges / total_edges : 0.0;

  double po_compl = 0.0;
  for (Lit po : aig.pos()) po_compl += lit_is_compl(po) ? 1.0 : 0.0;
  f[9] = po_compl / n_pos;
  f[10] = depth / std::max(1.0, std::log2(n_ands + 1.0));

  // Level histogram: how the AND nodes distribute across 6 depth buckets.
  std::array<double, 6> hist{};
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    unsigned bucket = static_cast<unsigned>(
        std::min(5.0, 6.0 * static_cast<double>(levels[v]) / (depth + 1.0)));
    hist[bucket] += 1.0;
  }
  for (unsigned i = 0; i < 6; ++i) f[11 + i] = hist[i] / n_ands;

  f[17] = 1.0;  // bias
  return f;
}

}  // namespace emorphic
