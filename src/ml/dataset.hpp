#pragma once
// Training-set generation for the ML cost model — the OpenABC-D substitute
// (Sec. IV-D): the paper samples 100 structural variants per design module
// and labels them by mapping with the ASAP7 library. Here, variants come
// from random e-graph extraction after a short rewriting run (genuinely
// diverse *structures* of the same function), labelled by our own mapper.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "egraph/runner.hpp"
#include "mapper/tech_mapper.hpp"
#include "ml/features.hpp"

namespace emorphic {

struct DatasetParams {
  unsigned variants_per_circuit = 40;
  RunnerLimits rewrite;     // short rewriting run to open up the space
  MapperParams mapping;     // labelling effort
  std::uint64_t seed = 11;
};

struct Dataset {
  std::vector<FeatureVector> features;
  std::vector<double> delays;  // ps, from the exact mapper
  std::vector<double> areas;   // µm²

  std::size_t size() const { return features.size(); }
  void append(const Dataset& other);
};

/// Generate labelled structural variants of one circuit.
Dataset generate_variants(const Aig& circuit, const CellLibrary& library,
                          const DatasetParams& params);

/// Split into train/test by deterministic interleaving (every k-th sample
/// goes to test).
void split_dataset(const Dataset& all, unsigned test_every, Dataset* train,
                   Dataset* test);

}  // namespace emorphic
