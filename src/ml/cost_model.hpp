#pragma once
// The runtime-prioritized cost model (Sec. III-C.1): an ML regressor that
// predicts the post-mapping delay (and area) of a candidate AIG from graph
// features, standing in for the HOGA model the paper fine-tunes on
// OpenABC-D. Training data comes from dataset.hpp: random structural
// variants of the benchmark circuits labelled by the exact mapper.

#include <memory>

#include "extract/sa_extractor.hpp"
#include "ml/features.hpp"
#include "ml/mlp.hpp"

namespace emorphic {

class MlCostModel : public QorEvaluator {
 public:
  explicit MlCostModel(const MlpParams& params = {});

  /// Train the delay (and area) heads on labelled samples.
  void train(const std::vector<FeatureVector>& features,
             const std::vector<double>& delays,
             const std::vector<double>& areas);

  /// Predict from features directly (no mapping performed).
  double predict_delay(const FeatureVector& f) const;
  double predict_area(const FeatureVector& f) const;

  bool trained() const { return delay_model_->trained(); }

  // QorEvaluator: feature extraction + two regressions; no mapping at all.
  Qor evaluate(const Aig& candidate) const override;

 private:
  std::unique_ptr<Mlp> delay_model_;
  std::unique_ptr<Mlp> area_model_;
};

}  // namespace emorphic
