#pragma once
// Graph feature extraction for the ML cost model. The paper feeds a HOGA
// GNN [24] with "node type, AIG topo, node depth, edge list" (Fig. 5); this
// reproduction condenses the same information into a fixed-length vector:
// size/depth counts, fanout statistics, edge-polarity mix, and a normalized
// level histogram capturing the depth profile.

#include <array>
#include <vector>

#include "aig/aig.hpp"

namespace emorphic {

inline constexpr unsigned kNumFeatures = 18;
using FeatureVector = std::array<double, kNumFeatures>;

/// Extract features from an AIG. All entries are size-normalized or
/// log-scaled so one model generalizes across circuits.
FeatureVector extract_features(const Aig& aig);

/// Feature names (for documentation / debugging), parallel to the vector.
const char* feature_name(unsigned index);

}  // namespace emorphic
