#include "ml/dataset.hpp"

#include "egraph/rules.hpp"
#include "extract/extractor.hpp"
#include "flow/conversion.hpp"
#include "util/rng.hpp"

namespace emorphic {

void Dataset::append(const Dataset& other) {
  features.insert(features.end(), other.features.begin(), other.features.end());
  delays.insert(delays.end(), other.delays.begin(), other.delays.end());
  areas.insert(areas.end(), other.areas.begin(), other.areas.end());
}

Dataset generate_variants(const Aig& circuit, const CellLibrary& library,
                          const DatasetParams& params) {
  Dataset out;
  CircuitEGraph ce = aig_to_egraph(circuit);
  static const std::vector<Rewrite> rules = make_logic_rules();
  run_rewriting(ce.egraph, rules, params.rewrite);

  Rng rng(params.seed ^ (circuit.num_ands() * 0x9e3779b97f4a7c15ull));
  for (unsigned k = 0; k < params.variants_per_circuit; ++k) {
    Extraction solution = k == 0
                              ? greedy_extract(ce.egraph, CostModel{CostKind::kDepth})
                              : random_extract(ce.egraph, rng);
    Aig variant = egraph_to_aig(ce, solution);
    MappedQor qor = map_qor(variant, library, params.mapping);
    out.features.push_back(extract_features(variant));
    out.delays.push_back(qor.delay);
    out.areas.push_back(qor.area);
  }
  return out;
}

void split_dataset(const Dataset& all, unsigned test_every, Dataset* train,
                   Dataset* test) {
  for (std::size_t i = 0; i < all.size(); ++i) {
    Dataset* dst = (test_every > 0 && i % test_every == test_every - 1)
                       ? test
                       : train;
    dst->features.push_back(all.features[i]);
    dst->delays.push_back(all.delays[i]);
    dst->areas.push_back(all.areas[i]);
  }
}

}  // namespace emorphic
