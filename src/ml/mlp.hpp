#pragma once
// A small multi-layer perceptron regressor with one hidden layer, trained
// with mini-batch SGD + momentum. Stands in for the HOGA model [24] in the
// runtime-prioritized cost mode (Sec. III-C.1): accuracy is traded for
// evaluation speed, exactly the trade the paper makes.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace emorphic {

struct MlpParams {
  unsigned hidden = 24;
  unsigned epochs = 200;
  double learning_rate = 0.01;
  double momentum = 0.9;
  unsigned batch_size = 16;
  std::uint64_t seed = 7;
};

class Mlp {
 public:
  Mlp(unsigned num_inputs, const MlpParams& params);

  /// Train on (X, y); features and targets are standardized internally.
  /// Returns the final training loss (MSE in standardized units).
  double train(const std::vector<std::vector<double>>& inputs,
               const std::vector<double>& targets);

  /// Predict a target for one feature vector (de-standardized).
  double predict(const std::vector<double>& input) const;

  bool trained() const { return trained_; }

 private:
  std::vector<double> forward(const std::vector<double>& x,
                              std::vector<double>* hidden_out) const;
  void standardize(std::vector<double>& x) const;

  unsigned num_inputs_;
  MlpParams params_;
  // weights: hidden x inputs (+bias), output: hidden (+bias)
  std::vector<double> w1_, b1_, w2_;
  double b2_ = 0.0;
  std::vector<double> feat_mean_, feat_std_;
  double target_mean_ = 0.0, target_std_ = 1.0;
  bool trained_ = false;
};

// --- Evaluation metrics reported in Sec. IV-D ------------------------------

/// Mean absolute percentage error (%).
double mape(const std::vector<double>& predicted,
            const std::vector<double>& actual);

/// Kendall rank-correlation coefficient (tau-a).
double kendall_tau(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace emorphic
