#include "ml/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace emorphic {

Mlp::Mlp(unsigned num_inputs, const MlpParams& params)
    : num_inputs_(num_inputs), params_(params) {
  Rng rng(params_.seed);
  auto init = [&] {
    // Xavier-ish initialization in [-r, r].
    double r = std::sqrt(6.0 / (num_inputs_ + params_.hidden));
    return (rng.next_double() * 2.0 - 1.0) * r;
  };
  w1_.resize(static_cast<std::size_t>(params_.hidden) * num_inputs_);
  for (auto& w : w1_) w = init();
  b1_.assign(params_.hidden, 0.0);
  w2_.resize(params_.hidden);
  for (auto& w : w2_) w = init();
}

void Mlp::standardize(std::vector<double>& x) const {
  for (unsigned i = 0; i < num_inputs_; ++i) {
    x[i] = (x[i] - feat_mean_[i]) / feat_std_[i];
  }
}

std::vector<double> Mlp::forward(const std::vector<double>& x,
                                 std::vector<double>* hidden_out) const {
  std::vector<double> h(params_.hidden);
  for (unsigned j = 0; j < params_.hidden; ++j) {
    double acc = b1_[j];
    const double* row = &w1_[static_cast<std::size_t>(j) * num_inputs_];
    for (unsigned i = 0; i < num_inputs_; ++i) acc += row[i] * x[i];
    h[j] = std::tanh(acc);
  }
  if (hidden_out != nullptr) *hidden_out = h;
  return h;
}

double Mlp::train(const std::vector<std::vector<double>>& inputs,
                  const std::vector<double>& targets) {
  assert(inputs.size() == targets.size() && !inputs.empty());
  const std::size_t n = inputs.size();

  // Standardization statistics.
  feat_mean_.assign(num_inputs_, 0.0);
  feat_std_.assign(num_inputs_, 0.0);
  for (const auto& x : inputs) {
    for (unsigned i = 0; i < num_inputs_; ++i) feat_mean_[i] += x[i];
  }
  for (auto& m : feat_mean_) m /= static_cast<double>(n);
  for (const auto& x : inputs) {
    for (unsigned i = 0; i < num_inputs_; ++i) {
      double d = x[i] - feat_mean_[i];
      feat_std_[i] += d * d;
    }
  }
  for (auto& s : feat_std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-9) s = 1.0;
  }
  target_mean_ = 0.0;
  for (double t : targets) target_mean_ += t;
  target_mean_ /= static_cast<double>(n);
  target_std_ = 0.0;
  for (double t : targets) {
    target_std_ += (t - target_mean_) * (t - target_mean_);
  }
  target_std_ = std::sqrt(target_std_ / static_cast<double>(n));
  if (target_std_ < 1e-9) target_std_ = 1.0;

  std::vector<std::vector<double>> X(n);
  std::vector<double> Y(n);
  for (std::size_t k = 0; k < n; ++k) {
    X[k] = inputs[k];
    standardize(X[k]);
    Y[k] = (targets[k] - target_mean_) / target_std_;
  }

  // SGD with momentum.
  std::vector<double> vw1(w1_.size(), 0.0), vb1(b1_.size(), 0.0),
      vw2(w2_.size(), 0.0);
  double vb2 = 0.0;
  Rng rng(params_.seed ^ 0x5bd1e995u);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  double last_loss = 0.0;
  for (unsigned epoch = 0; epoch < params_.epochs; ++epoch) {
    // Fisher-Yates shuffle.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    double loss = 0.0;
    for (std::size_t start = 0; start < n; start += params_.batch_size) {
      std::size_t end = std::min(n, start + params_.batch_size);
      std::vector<double> gw1(w1_.size(), 0.0), gb1(b1_.size(), 0.0),
          gw2(w2_.size(), 0.0);
      double gb2 = 0.0;
      for (std::size_t k = start; k < end; ++k) {
        const auto& x = X[order[k]];
        double y = Y[order[k]];
        std::vector<double> h;
        forward(x, &h);
        double out = b2_;
        for (unsigned j = 0; j < params_.hidden; ++j) out += w2_[j] * h[j];
        double err = out - y;
        loss += err * err;
        gb2 += err;
        for (unsigned j = 0; j < params_.hidden; ++j) {
          gw2[j] += err * h[j];
          double dh = err * w2_[j] * (1.0 - h[j] * h[j]);
          gb1[j] += dh;
          double* grow = &gw1[static_cast<std::size_t>(j) * num_inputs_];
          for (unsigned i = 0; i < num_inputs_; ++i) grow[i] += dh * x[i];
        }
      }
      double scale = params_.learning_rate / static_cast<double>(end - start);
      for (std::size_t i = 0; i < w1_.size(); ++i) {
        vw1[i] = params_.momentum * vw1[i] - scale * gw1[i];
        w1_[i] += vw1[i];
      }
      for (std::size_t i = 0; i < b1_.size(); ++i) {
        vb1[i] = params_.momentum * vb1[i] - scale * gb1[i];
        b1_[i] += vb1[i];
      }
      for (std::size_t i = 0; i < w2_.size(); ++i) {
        vw2[i] = params_.momentum * vw2[i] - scale * gw2[i];
        w2_[i] += vw2[i];
      }
      vb2 = params_.momentum * vb2 - scale * gb2;
      b2_ += vb2;
    }
    last_loss = loss / static_cast<double>(n);
  }
  trained_ = true;
  return last_loss;
}

double Mlp::predict(const std::vector<double>& input) const {
  std::vector<double> x = input;
  standardize(x);
  std::vector<double> h = forward(x, nullptr);
  double out = b2_;
  for (unsigned j = 0; j < params_.hidden; ++j) out += w2_[j] * h[j];
  return out * target_std_ + target_mean_;
}

double mape(const std::vector<double>& predicted,
            const std::vector<double>& actual) {
  assert(predicted.size() == actual.size() && !actual.empty());
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < 1e-12) continue;
    total += std::abs((predicted[i] - actual[i]) / actual[i]);
    ++counted;
  }
  return counted == 0 ? 0.0 : 100.0 * total / static_cast<double>(counted);
}

double kendall_tau(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  std::int64_t concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      double prod = da * db;
      if (prod > 0) {
        ++concordant;
      } else if (prod < 0) {
        ++discordant;
      }
    }
  }
  double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return (concordant - discordant) / pairs;
}

}  // namespace emorphic
