#include "ml/cost_model.hpp"

#include <stdexcept>

namespace emorphic {

namespace {
std::vector<double> to_vec(const FeatureVector& f) {
  return std::vector<double>(f.begin(), f.end());
}
}  // namespace

MlCostModel::MlCostModel(const MlpParams& params)
    : delay_model_(std::make_unique<Mlp>(kNumFeatures, params)),
      area_model_(std::make_unique<Mlp>(kNumFeatures, params)) {}

void MlCostModel::train(const std::vector<FeatureVector>& features,
                        const std::vector<double>& delays,
                        const std::vector<double>& areas) {
  if (features.size() != delays.size() || features.size() != areas.size()) {
    throw std::invalid_argument("MlCostModel::train: size mismatch");
  }
  std::vector<std::vector<double>> X;
  X.reserve(features.size());
  for (const auto& f : features) X.push_back(to_vec(f));
  delay_model_->train(X, delays);
  area_model_->train(X, areas);
}

double MlCostModel::predict_delay(const FeatureVector& f) const {
  return delay_model_->predict(to_vec(f));
}

double MlCostModel::predict_area(const FeatureVector& f) const {
  return area_model_->predict(to_vec(f));
}

Qor MlCostModel::evaluate(const Aig& candidate) const {
  if (!trained()) {
    throw std::logic_error("MlCostModel used before training");
  }
  FeatureVector f = extract_features(candidate);
  return Qor{predict_area(f), predict_delay(f)};
}

}  // namespace emorphic
