#include "sat/cnf.hpp"

#include <cassert>
#include <stdexcept>

namespace emorphic::sat {

namespace {

std::vector<SatVar> encode_with_pis(Solver& solver, const Aig& aig,
                                    const std::vector<SatVar>& pi_vars) {
  std::vector<SatVar> map(aig.num_nodes());
  map[0] = solver.new_vars();
  solver.add_unit(sat_lit(map[0], true));  // constant node is 0

  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_pi(v)) {
      map[v] = pi_vars[aig.pi_index(v)];
      continue;
    }
    SatVar out = solver.new_vars();
    map[v] = out;
    SatLit y = sat_lit(out);
    SatLit a = lit_to_sat(map, aig.fanin0(v));
    SatLit b = lit_to_sat(map, aig.fanin1(v));
    // y <-> a & b
    solver.add_binary(sat_neg(y), a);
    solver.add_binary(sat_neg(y), b);
    solver.add_ternary(y, sat_neg(a), sat_neg(b));
  }
  return map;
}

}  // namespace

std::vector<SatVar> encode_aig(Solver& solver, const Aig& aig) {
  std::vector<SatVar> pi_vars(aig.num_pis());
  for (auto& v : pi_vars) v = solver.new_vars();
  return encode_with_pis(solver, aig, pi_vars);
}

SatLit encode_miter(Solver& solver, const Aig& a, const Aig& b) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument("miter: interface mismatch");
  }
  std::vector<SatVar> pi_vars(a.num_pis());
  for (auto& v : pi_vars) v = solver.new_vars();
  auto map_a = encode_with_pis(solver, a, pi_vars);
  auto map_b = encode_with_pis(solver, b, pi_vars);

  // xor_i = po_a_i ^ po_b_i ; miter = OR(xor_i)
  std::vector<SatLit> xors;
  xors.reserve(a.num_pos());
  for (std::uint32_t i = 0; i < a.num_pos(); ++i) {
    SatLit pa = lit_to_sat(map_a, a.po(i));
    SatLit pb = lit_to_sat(map_b, b.po(i));
    SatLit x = sat_lit(solver.new_vars());
    // x <-> pa ^ pb
    solver.add_ternary(sat_neg(x), pa, pb);
    solver.add_ternary(sat_neg(x), sat_neg(pa), sat_neg(pb));
    solver.add_ternary(x, sat_neg(pa), pb);
    solver.add_ternary(x, pa, sat_neg(pb));
    xors.push_back(x);
  }
  SatLit miter = sat_lit(solver.new_vars());
  // miter -> OR(xors); and each xor -> miter.
  std::vector<SatLit> clause{sat_neg(miter)};
  for (SatLit x : xors) {
    clause.push_back(x);
    solver.add_binary(sat_neg(x), miter);
  }
  solver.add_clause(std::move(clause));
  return miter;
}

}  // namespace emorphic::sat
