#pragma once
// Tseitin encoding of AIGs into CNF and miter construction for
// combinational equivalence checking.

#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace emorphic::sat {

/// Encode `aig` into `solver`; returns, per AIG variable, its SAT variable.
/// The constant node is encoded as a variable forced to 0.
std::vector<SatVar> encode_aig(Solver& solver, const Aig& aig);

/// Translate an AIG literal through the encoding map.
inline SatLit lit_to_sat(const std::vector<SatVar>& map, Lit lit) {
  return sat_lit(map[lit_var(lit)], lit_is_compl(lit));
}

/// Build the standard miter over two AIGs with identical interfaces inside
/// one solver (shared PI variables): returns one SAT literal that is
/// satisfiable iff some output pair differs.
SatLit encode_miter(Solver& solver, const Aig& a, const Aig& b);

}  // namespace emorphic::sat
