#pragma once
// A compact CDCL SAT solver: two-watched-literal propagation, first-UIP
// conflict analysis with clause learning, VSIDS-style activities, phase
// saving and Luby restarts. It backs the combinational equivalence checker
// (`cec`) that validates every E-morphic result, as the paper does with
// ABC's `cec` (Sec. IV-A).

#include <cstdint>
#include <vector>

namespace emorphic::sat {

using SatVar = std::uint32_t;
/// Literal encoding mirrors the AIG: 2*var + sign.
using SatLit = std::uint32_t;

inline constexpr SatLit sat_lit(SatVar v, bool negated = false) {
  return (v << 1) | static_cast<SatLit>(negated);
}
inline constexpr SatVar sat_var(SatLit l) { return l >> 1; }
inline constexpr bool sat_sign(SatLit l) { return (l & 1) != 0; }
inline constexpr SatLit sat_neg(SatLit l) { return l ^ 1; }

enum class SatResult { kSat, kUnsat, kUndecided };

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;
};

class Solver {
 public:
  /// Create `n` fresh variables; returns the first.
  SatVar new_vars(std::uint32_t n = 1);
  std::uint32_t num_vars() const { return static_cast<std::uint32_t>(assign_.size()); }

  /// Add a clause (empty clause makes the instance trivially UNSAT). The
  /// literals are copied; the range must not alias solver-internal storage.
  void add_clause(const SatLit* first, const SatLit* last);
  void add_clause(const std::vector<SatLit>& lits) {
    add_clause(lits.data(), lits.data() + lits.size());
  }
  void add_unit(SatLit a) { add_clause(&a, &a + 1); }
  void add_binary(SatLit a, SatLit b) {
    const SatLit lits[2] = {a, b};
    add_clause(lits, lits + 2);
  }
  void add_ternary(SatLit a, SatLit b, SatLit c) {
    const SatLit lits[3] = {a, b, c};
    add_clause(lits, lits + 3);
  }

  /// Solve under optional assumptions. `conflict_limit` 0 = no limit;
  /// exceeding it within this call returns kUndecided (the cec/fraig effort
  /// knob — the budget is per query, not per solver lifetime). A positive
  /// `time_limit_s` bounds wall-clock time the same way.
  ///
  /// The solver is incremental: clauses may be added between calls and the
  /// learnt-clause database carries over, so repeated queries over one CNF
  /// (the fraig/cec pattern) get cheaper as the solver warms up. A kUnsat
  /// caused by the assumptions does not poison the solver — dropping the
  /// offending assumption makes the instance solvable again; only a kUnsat
  /// with no assumptions involved is permanent (see ok()).
  SatResult solve(const std::vector<SatLit>& assumptions = {},
                  std::uint64_t conflict_limit = 0,
                  double time_limit_s = 0.0);

  /// False once the clause database itself is contradictory (UNSAT without
  /// any assumptions): every further solve() returns kUnsat immediately.
  /// Stays true after an assumptions-only kUnsat.
  bool ok() const { return !unsat_; }

  /// After solve() returned kUnsat *because of the assumptions*: the subset
  /// of the assumption literals the refutation actually used (MiniSat's
  /// final conflict analysis). Empty when the database is unsat outright.
  const std::vector<SatLit>& failed_assumptions() const { return failed_; }

  /// Model access after kSat.
  bool model_value(SatVar v) const { return model_[v]; }

  const SolverStats& stats() const { return stats_; }

 private:
  enum : std::uint8_t { kUndef = 2 };

  /// Clause header: the literals live as a contiguous run inside the shared
  /// `lit_store_` arena (MiniSat's clause-arena layout) instead of one heap
  /// vector per clause — adding, propagating over and deleting clauses does
  /// no per-clause allocator traffic, and propagation walks one flat array.
  struct Clause {
    std::uint32_t offset = 0;  // first literal's index into lit_store_
    std::uint32_t size = 0;    // number of literals
    bool learned = false;
    bool deleted = false;
    std::uint32_t lbd = 0;  // glue: #decision levels in the clause at learn time
  };
  struct Watch {
    std::uint32_t clause;
    SatLit blocker;
  };

  bool enqueue(SatLit lit, std::int32_t reason);
  void analyze_final(SatLit p);
  void reduce_learnt_db();
  std::int32_t propagate();  // returns conflicting clause index or -1
  void analyze(std::int32_t conflict, std::vector<SatLit>& learnt,
               std::uint32_t& backtrack_level);

  SatLit* clause_lits(const Clause& c) { return lit_store_.data() + c.offset; }
  const SatLit* clause_lits_const(const Clause& c) const {
    return lit_store_.data() + c.offset;
  }
  /// Append a clause header + literals to the arena and return its index.
  std::uint32_t alloc_clause(const SatLit* first, std::size_t n, bool learned);
  void backtrack(std::uint32_t level);
  SatLit pick_branch();
  void bump(SatVar v);
  void decay() { var_inc_ /= 0.95; }
  std::uint8_t value(SatLit l) const {
    std::uint8_t a = assign_[sat_var(l)];
    if (a == kUndef) return kUndef;
    return static_cast<std::uint8_t>(a ^ (l & 1));
  }
  void attach(std::uint32_t ci);

  std::vector<Clause> clauses_;
  std::vector<SatLit> lit_store_;  // every clause's literals, contiguous
  std::vector<std::vector<Watch>> watches_;  // indexed by literal
  std::vector<std::uint8_t> assign_;         // per var: 0/1/kUndef
  std::vector<std::uint8_t> saved_phase_;
  std::vector<std::int32_t> reason_;         // clause index or -1
  std::vector<std::uint32_t> level_;
  std::vector<SatLit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<bool> model_;
  std::vector<SatLit> failed_;  // see failed_assumptions()
  bool unsat_ = false;
  SolverStats stats_;

  // Reused scratch (cleared, never reallocated per call) so the conflict
  // loop — the solver's hot path — does no allocator traffic once warm:
  std::vector<std::uint8_t> seen_;      // per-var mark for analyze()
  std::vector<SatVar> seen_touched_;    // vars marked, to unmark afterwards
  std::vector<SatLit> learnt_scratch_;  // the clause under construction
  std::vector<SatLit> add_scratch_;     // add_clause normalization buffer
  std::vector<std::uint32_t> lbd_marks_;  // per-level stamp for LBD counting
  std::uint32_t lbd_stamp_ = 0;
  std::vector<std::uint8_t> reason_mark_;   // reduce_learnt_db: is-a-reason
  std::vector<std::uint32_t> reduce_order_;  // reduce_learnt_db: sort buffer

  // Indexed max-heap over variable activities (MiniSat's order heap):
  // decisions pop the most active unassigned variable in O(log n).
  std::vector<SatVar> heap_;            // heap of variables
  std::vector<std::int32_t> heap_pos_;  // var -> index in heap_, -1 if absent
  void heap_insert(SatVar v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  SatVar heap_pop();
};

}  // namespace emorphic::sat
