#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "util/timer.hpp"

namespace emorphic::sat {

namespace {

/// Luby restart sequence (1,1,2,1,1,2,4,...) — MiniSat's formulation.
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ull << seq;
}

}  // namespace

SatVar Solver::new_vars(std::uint32_t n) {
  SatVar first = num_vars();
  for (std::uint32_t i = 0; i < n; ++i) {
    assign_.push_back(kUndef);
    saved_phase_.push_back(1);  // default phase: false (lit negated true)
    reason_.push_back(-1);
    level_.push_back(0);
    activity_.push_back(0.0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_pos_.push_back(-1);
    heap_insert(first + i);
  }
  return first;
}

void Solver::heap_sift_up(std::size_t i) {
  SatVar v = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  SatVar v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_insert(SatVar v) {
  if (heap_pos_[v] >= 0) return;
  heap_.push_back(v);
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size() - 1);
  heap_sift_up(heap_.size() - 1);
}

SatVar Solver::heap_pop() {
  SatVar top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::add_clause(std::vector<SatLit> lits) {
  if (unsat_) return;
  // Normalize: drop duplicates and satisfied-at-level-0 literals.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<SatLit> kept;
  for (SatLit l : lits) {
    if (std::binary_search(lits.begin(), lits.end(), sat_neg(l))) return;  // tautology
    std::uint8_t v = value(l);
    if (v == 1 && level_[sat_var(l)] == 0) return;  // already satisfied
    if (v == 0 && level_[sat_var(l)] == 0) continue;  // falsified forever
    kept.push_back(l);
  }
  if (kept.empty()) {
    unsat_ = true;
    return;
  }
  if (kept.size() == 1) {
    if (!enqueue(kept[0], -1)) unsat_ = true;
    if (propagate() >= 0) unsat_ = true;
    return;
  }
  clauses_.push_back(Clause{std::move(kept), false});
  attach(static_cast<std::uint32_t>(clauses_.size() - 1));
}

void Solver::attach(std::uint32_t ci) {
  const Clause& c = clauses_[ci];
  watches_[sat_neg(c.lits[0])].push_back(Watch{ci, c.lits[1]});
  watches_[sat_neg(c.lits[1])].push_back(Watch{ci, c.lits[0]});
}

bool Solver::enqueue(SatLit lit, std::int32_t reason) {
  std::uint8_t v = value(lit);
  if (v == 0) return false;
  if (v == 1) return true;
  SatVar var = sat_var(lit);
  assign_[var] = static_cast<std::uint8_t>(1 ^ (lit & 1));
  reason_[var] = reason;
  level_[var] = static_cast<std::uint32_t>(trail_lim_.size());
  trail_.push_back(lit);
  return true;
}

std::int32_t Solver::propagate() {
  while (qhead_ < trail_.size()) {
    SatLit lit = trail_[qhead_++];
    ++stats_.propagations;
    auto& watch_list = watches_[lit];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      Watch w = watch_list[i];
      if (value(w.blocker) == 1) {
        watch_list[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      // Ensure the falsified literal is lits[1].
      SatLit falsified = sat_neg(lit);
      if (c.lits[0] == falsified) std::swap(c.lits[0], c.lits[1]);
      if (value(c.lits[0]) == 1) {
        watch_list[keep++] = Watch{w.clause, c.lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[sat_neg(c.lits[1])].push_back(Watch{w.clause, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = w;
      if (!enqueue(c.lits[0], static_cast<std::int32_t>(w.clause))) {
        // Conflict: keep the remaining watches and report.
        for (std::size_t k = i + 1; k < watch_list.size(); ++k) {
          watch_list[keep++] = watch_list[k];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return static_cast<std::int32_t>(w.clause);
      }
    }
    watch_list.resize(keep);
  }
  return -1;
}

void Solver::bump(SatVar v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    // Rescaling preserves the ordering, so the heap stays valid.
  }
  if (heap_pos_[v] >= 0) heap_sift_up(static_cast<std::size_t>(heap_pos_[v]));
}

void Solver::analyze(std::int32_t conflict, std::vector<SatLit>& learnt,
                     std::uint32_t& backtrack_level) {
  learnt.clear();
  learnt.push_back(0);  // slot for the asserting literal
  std::vector<bool> seen(num_vars(), false);
  std::uint32_t counter = 0;
  SatLit p = 0;
  bool have_p = false;
  std::size_t index = trail_.size();
  std::uint32_t current_level = static_cast<std::uint32_t>(trail_lim_.size());

  std::int32_t reason_clause = conflict;
  for (;;) {
    assert(reason_clause >= 0);
    const Clause& c = clauses_[reason_clause];
    for (std::size_t j = 0; j < c.lits.size(); ++j) {
      SatLit q = c.lits[j];
      if (have_p && q == p) continue;  // skip the implied literal itself
      SatVar v = sat_var(q);
      if (seen[v] || level_[v] == 0) continue;
      seen[v] = true;
      bump(v);
      if (level_[v] >= current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Select the next literal from the trail. `seen` stays set for the
    // whole analysis so a variable can never re-enter the learnt clause
    // through a later reason (the clause must stay asserting).
    while (!seen[sat_var(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    have_p = true;
    reason_clause = reason_[sat_var(p)];
    if (--counter == 0) break;
  }
  learnt[0] = sat_neg(p);

  backtrack_level = 0;
  if (learnt.size() > 1) {
    // Second-highest decision level in the clause; move it to position 1.
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[sat_var(learnt[i])] > level_[sat_var(learnt[max_i])]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[sat_var(learnt[1])];
  }
}

void Solver::backtrack(std::uint32_t target) {
  if (trail_lim_.size() <= target) return;
  std::uint32_t boundary = trail_lim_[target];
  for (std::size_t i = trail_.size(); i > boundary; --i) {
    SatVar v = sat_var(trail_[i - 1]);
    saved_phase_[v] = assign_[v];
    assign_[v] = kUndef;
    reason_[v] = -1;
    heap_insert(v);
  }
  trail_.resize(boundary);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
}

void Solver::reduce_learnt_db() {
  // Glue-based reduction at decision level 0: drop the worse half of the
  // learnt clauses (high LBD, then long), keeping anything that is
  // currently a reason. Watches are rebuilt from scratch afterwards —
  // simple and safe, and reduction is rare enough that it's cheap.
  assert(trail_lim_.empty());
  std::unordered_set<std::int32_t> reasons;
  for (SatLit lit : trail_) {
    std::int32_t r = reason_[sat_var(lit)];
    if (r >= 0) reasons.insert(r);
  }
  std::vector<std::uint32_t> learnt;
  for (std::uint32_t ci = 0; ci < clauses_.size(); ++ci) {
    const Clause& c = clauses_[ci];
    if (c.learned && !c.deleted && c.lits.size() > 2 &&
        !reasons.count(static_cast<std::int32_t>(ci))) {
      learnt.push_back(ci);
    }
  }
  std::sort(learnt.begin(), learnt.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (clauses_[a].lbd != clauses_[b].lbd) {
      return clauses_[a].lbd > clauses_[b].lbd;
    }
    return clauses_[a].lits.size() > clauses_[b].lits.size();
  });
  std::size_t to_delete = learnt.size() / 2;
  for (std::size_t i = 0; i < to_delete; ++i) {
    Clause& c = clauses_[learnt[i]];
    c.deleted = true;
    c.lits.clear();
    c.lits.shrink_to_fit();
  }
  // Rebuild every watch list.
  for (auto& w : watches_) w.clear();
  for (std::uint32_t ci = 0; ci < clauses_.size(); ++ci) {
    if (!clauses_[ci].deleted && clauses_[ci].lits.size() >= 2) attach(ci);
  }
}

SatLit Solver::pick_branch() {
  SatVar best = 0;
  while (!heap_.empty()) {
    best = heap_pop();
    if (assign_[best] == kUndef) break;
  }
  // saved_phase_ holds the assigned value (0/1); pick the same polarity.
  return sat_lit(best, saved_phase_[best] != 1);
}

void Solver::analyze_final(SatLit p) {
  // `p` is an assumption found falsified by the current (assumption-level)
  // trail. Walk the implication graph of ~p back to the assumptions that
  // forced it: those, plus p itself, are the failed set.
  failed_.clear();
  failed_.push_back(p);
  if (trail_lim_.empty()) return;  // implied at level 0: {p} alone suffices
  std::vector<bool> seen(num_vars(), false);
  seen[sat_var(p)] = true;
  for (std::size_t i = trail_.size(); i-- > trail_lim_[0];) {
    SatVar v = sat_var(trail_[i]);
    if (!seen[v]) continue;
    std::int32_t r = reason_[v];
    if (r < 0) {
      // A decision above level 0 during assumption re-establishment is
      // always an assumed literal.
      if (trail_[i] != p) failed_.push_back(trail_[i]);
    } else {
      for (SatLit l : clauses_[r].lits) {
        if (level_[sat_var(l)] > 0) seen[sat_var(l)] = true;
      }
    }
  }
}

SatResult Solver::solve(const std::vector<SatLit>& assumptions,
                        std::uint64_t conflict_limit, double time_limit_s) {
  failed_.clear();
  if (unsat_) return SatResult::kUnsat;
  backtrack(0);
  if (propagate() >= 0) {
    unsat_ = true;
    return SatResult::kUnsat;
  }

  Timer timer;
  std::uint64_t conflicts_call = 0;  // conflict_limit is per solve() call
  std::uint64_t conflicts_here = 0;
  std::uint64_t restart_index = 0;
  std::uint64_t restart_budget = 64 * luby(restart_index);
  std::uint64_t live_learnt = 0;
  std::uint64_t max_learnt = 8000;

  for (;;) {
    std::int32_t conflict = propagate();
    if (conflict >= 0) {
      ++stats_.conflicts;
      ++conflicts_call;
      ++conflicts_here;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return SatResult::kUnsat;
      }
      std::vector<SatLit> learnt;
      std::uint32_t bt_level = 0;
      analyze(conflict, learnt, bt_level);
      // Backtrack to the asserting level even when that unassigns
      // assumptions — the decision loop below re-establishes them, and an
      // assumption the learnt clause now falsifies surfaces there as an
      // assumptions-only kUnsat. (Clamping to the assumption prefix instead
      // would try to assert a literal that is already falsified at that
      // level and misreport the conflict as a permanent one.)
      backtrack(bt_level);
      if (learnt.size() == 1) {
        backtrack(0);
        if (!enqueue(learnt[0], -1)) {
          unsat_ = true;
          return SatResult::kUnsat;
        }
        // Re-assert assumptions on the next loop iterations.
      } else {
        Clause clause{learnt, true, false, 0};
        // LBD ("glue"): number of distinct decision levels in the clause.
        std::unordered_set<std::uint32_t> levels;
        for (SatLit l : learnt) levels.insert(level_[sat_var(l)]);
        clause.lbd = static_cast<std::uint32_t>(levels.size());
        clauses_.push_back(std::move(clause));
        ++stats_.learned;
        ++live_learnt;
        attach(static_cast<std::uint32_t>(clauses_.size() - 1));
        if (!enqueue(learnt[0], static_cast<std::int32_t>(clauses_.size() - 1))) {
          unsat_ = true;
          return SatResult::kUnsat;
        }
      }
      decay();
      if (conflict_limit > 0 && conflicts_call >= conflict_limit) {
        return SatResult::kUndecided;
      }
      if (time_limit_s > 0.0 && (conflicts_call & 0x3ff) == 0 &&
          timer.seconds() > time_limit_s) {
        return SatResult::kUndecided;
      }
      if (conflicts_here >= restart_budget) {
        ++stats_.restarts;
        conflicts_here = 0;
        restart_budget = 64 * luby(++restart_index);
        backtrack(0);
        if (live_learnt > max_learnt) {
          reduce_learnt_db();
          live_learnt /= 2;
          max_learnt = max_learnt + max_learnt / 3;
        }
      }
      continue;
    }

    // Re-establish assumptions that a backtrack/restart dropped.
    if (trail_lim_.size() < assumptions.size()) {
      SatLit a = assumptions[trail_lim_.size()];
      std::uint8_t v = value(a);
      if (v == 0) {
        // UNSAT under the assumptions only: record which of them the
        // refutation used and leave the solver reusable (ok() stays true).
        analyze_final(a);
        backtrack(0);
        return SatResult::kUnsat;
      }
      trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      if (v == kUndef) {
        enqueue(a, -1);
      }
      continue;
    }

    // All variables assigned? (the trail holds exactly the assigned vars)
    if (trail_.size() == num_vars()) {
      model_.assign(num_vars(), false);
      for (SatVar v = 0; v < num_vars(); ++v) model_[v] = assign_[v] == 1;
      backtrack(0);
      return SatResult::kSat;
    }

    ++stats_.decisions;
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(pick_branch(), -1);
  }
}

}  // namespace emorphic::sat
