#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/timer.hpp"

namespace emorphic::sat {

namespace {

/// Luby restart sequence (1,1,2,1,1,2,4,...) — MiniSat's formulation.
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ull << seq;
}

}  // namespace

SatVar Solver::new_vars(std::uint32_t n) {
  SatVar first = num_vars();
  for (std::uint32_t i = 0; i < n; ++i) {
    assign_.push_back(kUndef);
    saved_phase_.push_back(1);  // default phase: false (lit negated true)
    reason_.push_back(-1);
    level_.push_back(0);
    activity_.push_back(0.0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_pos_.push_back(-1);
    heap_insert(first + i);
    seen_.push_back(0);
  }
  // Decision levels range over [0, num_vars]; size the LBD stamp array once
  // here so the conflict loop never allocates.
  lbd_marks_.resize(num_vars() + 1, 0);
  return first;
}

void Solver::heap_sift_up(std::size_t i) {
  SatVar v = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  SatVar v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_insert(SatVar v) {
  if (heap_pos_[v] >= 0) return;
  heap_.push_back(v);
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size() - 1);
  heap_sift_up(heap_.size() - 1);
}

SatVar Solver::heap_pop() {
  SatVar top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

std::uint32_t Solver::alloc_clause(const SatLit* first, std::size_t n,
                                   bool learned) {
  Clause c;
  c.offset = static_cast<std::uint32_t>(lit_store_.size());
  c.size = static_cast<std::uint32_t>(n);
  c.learned = learned;
  lit_store_.insert(lit_store_.end(), first, first + n);
  clauses_.push_back(c);
  return static_cast<std::uint32_t>(clauses_.size() - 1);
}

void Solver::add_clause(const SatLit* first, const SatLit* last) {
  if (unsat_) return;
  // Normalize in reused scratch: drop duplicates and satisfied-at-level-0
  // literals (the caller's range is copied, so no aliasing hazards).
  add_scratch_.assign(first, last);
  std::sort(add_scratch_.begin(), add_scratch_.end());
  add_scratch_.erase(std::unique(add_scratch_.begin(), add_scratch_.end()),
                     add_scratch_.end());
  // Tautology: l and sat_neg(l) are numerically adjacent (2v, 2v+1), so
  // after sort+unique a complementary pair sits next to each other.
  for (std::size_t i = 0; i + 1 < add_scratch_.size(); ++i) {
    if (sat_neg(add_scratch_[i]) == add_scratch_[i + 1]) return;
  }
  std::size_t kept = 0;
  for (SatLit l : add_scratch_) {
    std::uint8_t v = value(l);
    if (v == 1 && level_[sat_var(l)] == 0) return;  // already satisfied
    if (v == 0 && level_[sat_var(l)] == 0) continue;  // falsified forever
    add_scratch_[kept++] = l;
  }
  if (kept == 0) {
    unsat_ = true;
    return;
  }
  if (kept == 1) {
    if (!enqueue(add_scratch_[0], -1)) unsat_ = true;
    if (propagate() >= 0) unsat_ = true;
    return;
  }
  attach(alloc_clause(add_scratch_.data(), kept, false));
}

void Solver::attach(std::uint32_t ci) {
  const SatLit* cl = clause_lits_const(clauses_[ci]);
  watches_[sat_neg(cl[0])].push_back(Watch{ci, cl[1]});
  watches_[sat_neg(cl[1])].push_back(Watch{ci, cl[0]});
}

bool Solver::enqueue(SatLit lit, std::int32_t reason) {
  std::uint8_t v = value(lit);
  if (v == 0) return false;
  if (v == 1) return true;
  SatVar var = sat_var(lit);
  assign_[var] = static_cast<std::uint8_t>(1 ^ (lit & 1));
  reason_[var] = reason;
  level_[var] = static_cast<std::uint32_t>(trail_lim_.size());
  trail_.push_back(lit);
  return true;
}

std::int32_t Solver::propagate() {
  while (qhead_ < trail_.size()) {
    SatLit lit = trail_[qhead_++];
    ++stats_.propagations;
    auto& watch_list = watches_[lit];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      Watch w = watch_list[i];
      if (value(w.blocker) == 1) {
        watch_list[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      SatLit* cl = clause_lits(c);
      // Ensure the falsified literal is cl[1].
      SatLit falsified = sat_neg(lit);
      if (cl[0] == falsified) std::swap(cl[0], cl[1]);
      if (value(cl[0]) == 1) {
        watch_list[keep++] = Watch{w.clause, cl[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size; ++k) {
        if (value(cl[k]) != 0) {
          std::swap(cl[1], cl[k]);
          watches_[sat_neg(cl[1])].push_back(Watch{w.clause, cl[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = w;
      if (!enqueue(cl[0], static_cast<std::int32_t>(w.clause))) {
        // Conflict: keep the remaining watches and report.
        for (std::size_t k = i + 1; k < watch_list.size(); ++k) {
          watch_list[keep++] = watch_list[k];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return static_cast<std::int32_t>(w.clause);
      }
    }
    watch_list.resize(keep);
  }
  return -1;
}

void Solver::bump(SatVar v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    // Rescaling preserves the ordering, so the heap stays valid.
  }
  if (heap_pos_[v] >= 0) heap_sift_up(static_cast<std::size_t>(heap_pos_[v]));
}

void Solver::analyze(std::int32_t conflict, std::vector<SatLit>& learnt,
                     std::uint32_t& backtrack_level) {
  learnt.clear();
  learnt.push_back(0);  // slot for the asserting literal
  // `seen_` is a member: zeroed vars are recorded in seen_touched_ and
  // unmarked at the end, so the per-conflict cost is O(marked), not
  // O(num_vars) worth of allocation + memset.
  seen_touched_.clear();
  std::uint32_t counter = 0;
  SatLit p = 0;
  bool have_p = false;
  std::size_t index = trail_.size();
  std::uint32_t current_level = static_cast<std::uint32_t>(trail_lim_.size());

  std::int32_t reason_clause = conflict;
  for (;;) {
    assert(reason_clause >= 0);
    const Clause& c = clauses_[reason_clause];
    const SatLit* cl = clause_lits_const(c);
    for (std::size_t j = 0; j < c.size; ++j) {
      SatLit q = cl[j];
      if (have_p && q == p) continue;  // skip the implied literal itself
      SatVar v = sat_var(q);
      if (seen_[v] != 0 || level_[v] == 0) continue;
      seen_[v] = 1;
      seen_touched_.push_back(v);
      bump(v);
      if (level_[v] >= current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Select the next literal from the trail. `seen_` stays set for the
    // whole analysis so a variable can never re-enter the learnt clause
    // through a later reason (the clause must stay asserting).
    while (seen_[sat_var(trail_[index - 1])] == 0) --index;
    --index;
    p = trail_[index];
    have_p = true;
    reason_clause = reason_[sat_var(p)];
    if (--counter == 0) break;
  }
  learnt[0] = sat_neg(p);
  for (SatVar v : seen_touched_) seen_[v] = 0;

  backtrack_level = 0;
  if (learnt.size() > 1) {
    // Second-highest decision level in the clause; move it to position 1.
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[sat_var(learnt[i])] > level_[sat_var(learnt[max_i])]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[sat_var(learnt[1])];
  }
}

void Solver::backtrack(std::uint32_t target) {
  if (trail_lim_.size() <= target) return;
  std::uint32_t boundary = trail_lim_[target];
  for (std::size_t i = trail_.size(); i > boundary; --i) {
    SatVar v = sat_var(trail_[i - 1]);
    saved_phase_[v] = assign_[v];
    assign_[v] = kUndef;
    reason_[v] = -1;
    heap_insert(v);
  }
  trail_.resize(boundary);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
}

void Solver::reduce_learnt_db() {
  // Glue-based reduction at decision level 0: drop the worse half of the
  // learnt clauses (high LBD, then long), keeping anything that is
  // currently a reason. Watches are rebuilt from scratch afterwards —
  // simple and safe, and reduction is rare enough that it's cheap.
  assert(trail_lim_.empty());
  reason_mark_.assign(clauses_.size(), 0);
  for (SatLit lit : trail_) {
    std::int32_t r = reason_[sat_var(lit)];
    if (r >= 0) reason_mark_[static_cast<std::size_t>(r)] = 1;
  }
  reduce_order_.clear();
  for (std::uint32_t ci = 0; ci < clauses_.size(); ++ci) {
    const Clause& c = clauses_[ci];
    if (c.learned && !c.deleted && c.size > 2 && reason_mark_[ci] == 0) {
      reduce_order_.push_back(ci);
    }
  }
  std::sort(reduce_order_.begin(), reduce_order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (clauses_[a].lbd != clauses_[b].lbd) {
                return clauses_[a].lbd > clauses_[b].lbd;
              }
              return clauses_[a].size > clauses_[b].size;
            });
  std::size_t to_delete = reduce_order_.size() / 2;
  for (std::size_t i = 0; i < to_delete; ++i) {
    Clause& c = clauses_[reduce_order_[i]];
    c.deleted = true;
    c.size = 0;
  }
  // Compact the literal arena in place: clauses_ is in ascending-offset
  // order (offsets are handed out monotonically and never reassigned), so
  // a single forward pass slides every surviving clause's literals over the
  // holes the deleted ones left. Clause *indices* are untouched — reason_
  // entries and watch payloads stay valid.
  std::size_t write = 0;
  for (Clause& c : clauses_) {
    if (c.deleted || c.size == 0) continue;
    std::memmove(lit_store_.data() + write, lit_store_.data() + c.offset,
                 c.size * sizeof(SatLit));
    c.offset = static_cast<std::uint32_t>(write);
    write += c.size;
  }
  lit_store_.resize(write);
  // Rebuild every watch list.
  for (auto& w : watches_) w.clear();
  for (std::uint32_t ci = 0; ci < clauses_.size(); ++ci) {
    if (!clauses_[ci].deleted && clauses_[ci].size >= 2) attach(ci);
  }
}

SatLit Solver::pick_branch() {
  SatVar best = 0;
  while (!heap_.empty()) {
    best = heap_pop();
    if (assign_[best] == kUndef) break;
  }
  // saved_phase_ holds the assigned value (0/1); pick the same polarity.
  return sat_lit(best, saved_phase_[best] != 1);
}

void Solver::analyze_final(SatLit p) {
  // `p` is an assumption found falsified by the current (assumption-level)
  // trail. Walk the implication graph of ~p back to the assumptions that
  // forced it: those, plus p itself, are the failed set.
  failed_.clear();
  failed_.push_back(p);
  if (trail_lim_.empty()) return;  // implied at level 0: {p} alone suffices
  seen_touched_.clear();
  seen_[sat_var(p)] = 1;
  seen_touched_.push_back(sat_var(p));
  for (std::size_t i = trail_.size(); i-- > trail_lim_[0];) {
    SatVar v = sat_var(trail_[i]);
    if (seen_[v] == 0) continue;
    std::int32_t r = reason_[v];
    if (r < 0) {
      // A decision above level 0 during assumption re-establishment is
      // always an assumed literal.
      if (trail_[i] != p) failed_.push_back(trail_[i]);
    } else {
      const Clause& c = clauses_[r];
      const SatLit* cl = clause_lits_const(c);
      for (std::size_t j = 0; j < c.size; ++j) {
        SatVar lv = sat_var(cl[j]);
        if (level_[lv] > 0 && seen_[lv] == 0) {
          seen_[lv] = 1;
          seen_touched_.push_back(lv);
        }
      }
    }
  }
  for (SatVar v : seen_touched_) seen_[v] = 0;
}

SatResult Solver::solve(const std::vector<SatLit>& assumptions,
                        std::uint64_t conflict_limit, double time_limit_s) {
  failed_.clear();
  if (unsat_) return SatResult::kUnsat;
  backtrack(0);
  if (propagate() >= 0) {
    unsat_ = true;
    return SatResult::kUnsat;
  }

  Timer timer;
  std::uint64_t conflicts_call = 0;  // conflict_limit is per solve() call
  std::uint64_t conflicts_here = 0;
  std::uint64_t restart_index = 0;
  std::uint64_t restart_budget = 64 * luby(restart_index);
  std::uint64_t live_learnt = 0;
  std::uint64_t max_learnt = 8000;

  for (;;) {
    std::int32_t conflict = propagate();
    if (conflict >= 0) {
      ++stats_.conflicts;
      ++conflicts_call;
      ++conflicts_here;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return SatResult::kUnsat;
      }
      std::vector<SatLit>& learnt = learnt_scratch_;
      std::uint32_t bt_level = 0;
      analyze(conflict, learnt, bt_level);
      // Backtrack to the asserting level even when that unassigns
      // assumptions — the decision loop below re-establishes them, and an
      // assumption the learnt clause now falsifies surfaces there as an
      // assumptions-only kUnsat. (Clamping to the assumption prefix instead
      // would try to assert a literal that is already falsified at that
      // level and misreport the conflict as a permanent one.)
      backtrack(bt_level);
      if (learnt.size() == 1) {
        backtrack(0);
        if (!enqueue(learnt[0], -1)) {
          unsat_ = true;
          return SatResult::kUnsat;
        }
        // Re-assert assumptions on the next loop iterations.
      } else {
        std::uint32_t ci = alloc_clause(learnt.data(), learnt.size(), true);
        // LBD ("glue"): number of distinct decision levels in the clause,
        // counted with a stamped per-level mark array — no per-conflict
        // hash set.
        ++lbd_stamp_;
        std::uint32_t distinct = 0;
        for (SatLit l : learnt) {
          std::uint32_t lvl = level_[sat_var(l)];
          if (lbd_marks_[lvl] != lbd_stamp_) {
            lbd_marks_[lvl] = lbd_stamp_;
            ++distinct;
          }
        }
        clauses_[ci].lbd = distinct;
        ++stats_.learned;
        ++live_learnt;
        attach(ci);
        if (!enqueue(learnt[0], static_cast<std::int32_t>(ci))) {
          unsat_ = true;
          return SatResult::kUnsat;
        }
      }
      decay();
      if (conflict_limit > 0 && conflicts_call >= conflict_limit) {
        return SatResult::kUndecided;
      }
      if (time_limit_s > 0.0 && (conflicts_call & 0x3ff) == 0 &&
          timer.seconds() > time_limit_s) {
        return SatResult::kUndecided;
      }
      if (conflicts_here >= restart_budget) {
        ++stats_.restarts;
        conflicts_here = 0;
        restart_budget = 64 * luby(++restart_index);
        backtrack(0);
        if (live_learnt > max_learnt) {
          reduce_learnt_db();
          live_learnt /= 2;
          max_learnt = max_learnt + max_learnt / 3;
        }
      }
      continue;
    }

    // Re-establish assumptions that a backtrack/restart dropped.
    if (trail_lim_.size() < assumptions.size()) {
      SatLit a = assumptions[trail_lim_.size()];
      std::uint8_t v = value(a);
      if (v == 0) {
        // UNSAT under the assumptions only: record which of them the
        // refutation used and leave the solver reusable (ok() stays true).
        analyze_final(a);
        backtrack(0);
        return SatResult::kUnsat;
      }
      trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      if (v == kUndef) {
        enqueue(a, -1);
      }
      continue;
    }

    // All variables assigned? (the trail holds exactly the assigned vars)
    if (trail_.size() == num_vars()) {
      model_.assign(num_vars(), false);
      for (SatVar v = 0; v < num_vars(); ++v) model_[v] = assign_[v] == 1;
      backtrack(0);
      return SatResult::kSat;
    }

    ++stats_.decisions;
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(pick_branch(), -1);
  }
}

}  // namespace emorphic::sat
