#pragma once
// Wire protocol of the synthesis service (docs/service.md).
//
// Every frame (util/socket.hpp framing) carries one JSON message typed by
// its "type" field. Client -> server: "submit", "cancel", "ping",
// "shutdown". Server -> client: "accepted", "progress", "result",
// "cancelled", "cancel_ack", "error", "pong", "shutting_down".
//
// The server guarantees per-session ordering: a job's "accepted" frame is
// written before any of its "progress"/"result"/"cancelled" frames, so a
// client that reads sequentially never sees a job finish it was not told
// was admitted.

#include <cstdint>
#include <string>

#include "flow/pipeline.hpp"
#include "util/json.hpp"

namespace emorphic::service {

/// Typed rejection/failure codes carried by "error" frames. Stable protocol
/// strings (to_string) — clients dispatch on these, not on messages.
enum class ErrorCode {
  kOverloaded,        // admission queue full; retry later
  kMalformedRequest,  // frame was not a valid protocol message
  kMalformedCircuit,  // circuit text failed to parse
  kBadParams,         // params override rejected (unknown key / bad type)
  kUnknownFlow,       // no registered flow under the requested name
  kShuttingDown,      // server is draining; no new work accepted
  kInternal,          // unexpected server-side failure
};

const char* to_string(ErrorCode code);

/// One synthesis job as submitted by a client.
struct JobRequest {
  /// Client-chosen identifier, unique among the session's in-flight jobs;
  /// echoed on every frame concerning this job.
  std::string id;
  std::string format = "aiger";    // circuit encoding: "aiger" | "eqn"
  std::string circuit;             // the circuit text itself
  std::string flow = "emorphic";   // registered flow name
  /// Per-job seed for stochastic stages (FlowContext::seed; 0 keeps the
  /// pipeline default).
  std::uint64_t seed = 1;
  /// End-to-end deadline in seconds, *including* queue wait; 0 = none.
  /// Expiry yields a "cancelled" frame with reason "deadline".
  double deadline_s = 0.0;
  /// Ship the optimized network back as AIGER text in the result frame.
  bool return_circuit = false;
  /// Stream per-stage "progress" frames while the job runs.
  bool progress = false;
  /// FlowParams overrides applied on top of the server's base parameters
  /// (see apply_flow_params for the accepted keys).
  Json params = Json::object();

  Json to_json() const;
  /// Parse a "submit" message; throws std::invalid_argument on missing or
  /// ill-typed fields and on unknown keys (strict protocol v1).
  static JobRequest from_json(const Json& msg);
};

/// Apply a params-override object onto `params`. Accepted keys:
///   rounds, area_weight, verify, fraig_pre, fraig_post, use_choicemap,
///   use_lutmap, lut_size
///   sa:      {iterations, moves_per_iteration, num_threads,
///             initial_temperature}
///   rewrite: {max_iterations, max_enodes, time_limit_s, match_threads}
///   mapping: {cut_size, num_cuts, area_recovery}
/// Throws std::invalid_argument on an unknown key, an ill-typed value, or
/// an out-of-range lut_size (the LUT backend's [2, kMaxCutSize] contract),
/// naming the offender — the server maps this to ErrorCode::kBadParams.
/// Any accepted key lands in the params fingerprint via the overrides
/// object itself, so e.g. a use_lutmap job can never alias a cell-mapped
/// job in the flow-result cache.
void apply_flow_params(FlowParams* params, const Json& overrides);

/// Fingerprint of everything besides (input, seed) that shapes a job's
/// result: the flow name and the override object's canonical serialization
/// (JsonObject is a std::map, so dump() is deterministic). Feeds
/// WarmCache::flow_key.
std::uint64_t params_fingerprint(const std::string& flow,
                                 const Json& overrides);

// --- frame builders ---------------------------------------------------------

Json make_error(ErrorCode code, const std::string& message,
                const std::string& job_id = "");

}  // namespace emorphic::service
