#pragma once
// Bounded MPMC admission queue for the synthesis server.
//
// Admission is non-blocking by design: a full queue rejects immediately
// (try_push -> false), which the server maps to a typed OVERLOADED error —
// backpressure is explicit on the wire, never an unbounded in-memory queue
// or a silently blocked session thread. close() implements the server's
// drain-on-shutdown: admission stops, but pop() keeps delivering what was
// already accepted until the queue is empty.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace emorphic::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue unless the queue is full or closed. Never blocks.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeue the oldest item, blocking while the queue is empty and open.
  /// Returns false only when the queue is closed AND drained.
  bool pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stop admission; consumers drain the remainder, then pop returns false.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace emorphic::service
