#pragma once
// The synthesis daemon: a persistent server dispatching optimization jobs
// onto a worker pool that shares one warm cache substrate
// (flow/warm_cache.hpp), so the second request for a circuit — or for a
// structure any earlier job visited — is cheaper than the first.
//
// Lifecycle (docs/service.md):
//
//   accept -> one session thread per connection, reading frames
//   submit -> parse + validate; resolve FlowParams; try_push onto the
//             bounded queue (full -> typed OVERLOADED, never blocking)
//   worker -> deadline check; flow-result cache probe; run the pipeline
//             with the job's cancel flag + remaining deadline wired into
//             FlowContext; respond "result" or "cancelled"
//   stop   -> admission closes, queued jobs still run to completion and
//             their responses are delivered, then sessions are torn down
//
// Robustness contract (the abuse suite in tests/service/test_server.cpp):
// malformed frames/messages/circuits get typed errors and never kill the
// server; a disconnected client auto-cancels its in-flight jobs; every
// send failure is contained to the one session.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "flow/pipeline.hpp"
#include "flow/warm_cache.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"
#include "util/socket.hpp"

namespace emorphic::service {

struct ServerConfig {
  /// Non-empty: listen on this Unix-domain socket path. Empty: listen on
  /// TCP 127.0.0.1:tcp_port (0 = ephemeral; read the bound port back with
  /// SynthServer::tcp_port()).
  std::string unix_socket_path;
  std::uint16_t tcp_port = 0;
  /// Worker threads running flows (each flow may itself use
  /// params.sa.num_threads SA chains).
  unsigned workers = 2;
  /// Admission queue bound; a full queue rejects with OVERLOADED.
  std::size_t queue_capacity = 16;
  /// Defaults every job starts from; requests override via "params".
  FlowParams base_params;
  /// Serve repeated (circuit, seed, params) requests from the flow-result
  /// cache instead of re-running the flow.
  bool cache_results = true;
  /// Per-frame payload cap for this server's sessions.
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

/// Monotonic counters since start() (stats() takes a consistent snapshot).
struct ServerStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_completed = 0;   // "result" frames sent (incl. cache hits)
  std::uint64_t jobs_cancelled = 0;   // "cancelled" frames (flag or deadline)
  std::uint64_t jobs_failed = 0;      // INTERNAL errors from running flows
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_malformed = 0;  // any non-OVERLOADED typed rejection
  std::uint64_t result_cache_hits = 0;
};

/// A pipeline recipe: builds the Pipeline a job runs, given the job's
/// resolved parameters (so param-dependent stage lists — fraig_pre,
/// use_choicemap — take effect per request).
using FlowFactory = std::function<Pipeline(const FlowParams&)>;

class SynthServer {
  friend class ProgressObserver;  // streams FlowObserver hooks onto the wire

 public:
  /// `cache` lets several servers (or a server and an in-process batch
  /// driver) share one substrate; null means the server owns a private one
  /// over config.base_params.library.
  explicit SynthServer(ServerConfig config, WarmCache* cache = nullptr);
  ~SynthServer();

  SynthServer(const SynthServer&) = delete;
  SynthServer& operator=(const SynthServer&) = delete;

  /// Register a flow under `name` ("emorphic" and "baseline" are
  /// pre-registered). Call before start().
  void add_flow(const std::string& name, FlowFactory factory);

  /// Bind, listen, and spin up workers. Throws std::runtime_error when the
  /// socket cannot be bound.
  void start();

  /// Drain and shut down: admission closes immediately (new submits get
  /// SHUTTING_DOWN), queued jobs run to completion and their responses are
  /// delivered, then sessions and threads are torn down. Idempotent.
  void stop();

  bool running() const { return running_.load(); }

  /// The bound TCP port (after start(); 0 for Unix-domain servers).
  std::uint16_t tcp_port() const { return bound_port_; }

  /// Arm the flag wait_for_shutdown_request() watches. Called by the
  /// "shutdown" protocol message; safe from any thread. The caller of
  /// wait_for_shutdown_request is responsible for then calling stop() —
  /// a session thread cannot join itself.
  void request_shutdown();

  /// Block until request_shutdown() (true) or `timeout_s` elapsed (false).
  /// Negative timeout waits forever.
  bool wait_for_shutdown_request(double timeout_s = -1.0);

  ServerStats stats() const;
  WarmCache& warm_cache() { return *cache_; }
  const ServerConfig& config() const { return config_; }

 private:
  struct Session {
    explicit Session(Socket sock_in) : sock(std::move(sock_in)) {}
    Socket sock;
    /// Serializes all frames to this client. Admission holds it across
    /// {try_push, send "accepted"} so a fast worker's result frame (which
    /// also needs it) can never overtake the accepted frame.
    std::mutex write_mutex;
    /// Cleared on read EOF or the first failed send; workers skip writing
    /// to dead sessions.
    std::atomic<bool> alive{true};
    std::atomic<bool> done{false};  // session thread finished (reaping)
  };

  struct Job {
    JobRequest request;
    std::shared_ptr<Session> session;
    Aig input;
    FlowParams params;         // base_params + request overrides, resolved
    Pipeline pipeline;         // built from the flow factory at admission
    std::atomic<bool> cancel{false};
    Timer admitted;            // deadline_s counts from admission
    std::uint64_t cache_key = 0;
    bool cache_eligible = false;
  };

  void listener_loop();
  void session_loop(std::shared_ptr<Session> session);
  void handle_message(const std::shared_ptr<Session>& session,
                      const Json& msg);
  void handle_submit(const std::shared_ptr<Session>& session, const Json& msg);
  void handle_cancel(const std::shared_ptr<Session>& session, const Json& msg);
  void worker_loop();
  /// Run one job on this worker's long-lived FlowContext (see worker_loop:
  /// reusing the context keeps the mapper workspaces' arenas warm across
  /// jobs).
  void process(std::shared_ptr<Job> job, FlowContext& ctx);
  void finish(const std::shared_ptr<Job>& job, const Json& frame);

  /// Write one frame under the session lock; a failure marks the session
  /// dead (and is otherwise swallowed — the job bookkeeping still runs).
  void send(const std::shared_ptr<Session>& session, const Json& frame);
  /// Same, with session->write_mutex already held by the caller.
  void send_locked(Session& session, const Json& frame);

  void register_job(const std::shared_ptr<Job>& job);
  void unregister_job(const Job& job);
  std::shared_ptr<Job> find_job(const Session& session, const std::string& id);
  void cancel_session_jobs(const Session& session);

  ServerConfig config_;
  std::unique_ptr<WarmCache> owned_cache_;
  WarmCache* cache_;

  std::map<std::string, FlowFactory> flows_;

  Socket listener_;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  BoundedQueue<std::shared_ptr<Job>> queue_;
  std::thread listener_thread_;
  std::vector<std::thread> worker_threads_;

  std::mutex sessions_mutex_;
  std::vector<std::pair<std::shared_ptr<Session>, std::thread>> sessions_;

  /// In-flight jobs per (session, id) — the cancel path and the
  /// dead-session sweep look jobs up here.
  std::mutex jobs_mutex_;
  std::map<std::pair<const Session*, std::string>, std::shared_ptr<Job>>
      jobs_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  // stats (relaxed atomics; stats() snapshots)
  std::atomic<std::uint64_t> stat_sessions_{0};
  std::atomic<std::uint64_t> stat_accepted_{0};
  std::atomic<std::uint64_t> stat_completed_{0};
  std::atomic<std::uint64_t> stat_cancelled_{0};
  std::atomic<std::uint64_t> stat_failed_{0};
  std::atomic<std::uint64_t> stat_overloaded_{0};
  std::atomic<std::uint64_t> stat_malformed_{0};
  std::atomic<std::uint64_t> stat_cache_hits_{0};
};

}  // namespace emorphic::service
