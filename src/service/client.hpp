#pragma once
// Thin synchronous client for the synthesis service: frames JSON messages
// (service/protocol.hpp) over one connection and offers the small amount of
// sequencing sugar — submit-and-wait-for-admission, await-terminal-frame —
// that every caller (synthcli, the micro bench, the tests) would otherwise
// reimplement. One client == one connection == one frame stream; run several
// clients for concurrency.

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.hpp"
#include "util/socket.hpp"

namespace emorphic::service {

class SynthClient {
 public:
  static SynthClient connect_unix(const std::string& path) {
    return SynthClient(Socket::connect_unix(path));
  }
  static SynthClient connect_tcp(const std::string& host, std::uint16_t port) {
    return SynthClient(Socket::connect_tcp(host, port));
  }

  SynthClient(SynthClient&&) = default;
  SynthClient& operator=(SynthClient&&) = default;

  /// Send one raw protocol message.
  void send(const Json& msg);

  /// Receive one message; false on server-side EOF. Throws on frame
  /// corruption.
  bool recv(Json* msg);

  /// Submit a job and wait for its admission verdict: the returned frame is
  /// either {"type":"accepted",...} or {"type":"error",...} (e.g.
  /// OVERLOADED). Throws std::runtime_error if the connection drops first.
  Json submit(const JobRequest& request);

  /// Read frames until the terminal frame for `id` arrives — "result",
  /// "cancelled", or an "error" carrying this id — and return it.
  /// Every other frame seen on the way (progress, cancel_ack, unrelated
  /// jobs) goes to `on_event` when provided. Throws std::runtime_error on
  /// EOF before the terminal frame.
  Json await(const std::string& id,
             const std::function<void(const Json&)>& on_event = nullptr);

  /// Request cancellation of an in-flight job (fire-and-forget; the
  /// cancel_ack and the job's terminal frame arrive via await/recv).
  void cancel(const std::string& id);

  /// Round-trip a ping; false when the server did not answer.
  bool ping();

  /// Ask the daemon to shut down; returns once it acknowledges.
  void shutdown_server();

 private:
  explicit SynthClient(Socket sock) : sock_(std::move(sock)) {}

  Socket sock_;
};

}  // namespace emorphic::service
