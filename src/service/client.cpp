#include "service/client.hpp"

#include <stdexcept>

namespace emorphic::service {

namespace {

bool is_type(const Json& msg, const char* type) {
  return msg.is_object() && msg.contains("type") &&
         msg.at("type").is_string() && msg.at("type").as_string() == type;
}

std::string frame_id(const Json& msg) {
  if (msg.is_object() && msg.contains("id") && msg.at("id").is_string()) {
    return msg.at("id").as_string();
  }
  return {};
}

}  // namespace

void SynthClient::send(const Json& msg) { write_frame(sock_, msg.dump()); }

bool SynthClient::recv(Json* msg) {
  std::string payload;
  if (!read_frame(sock_, &payload)) return false;
  *msg = Json::parse(payload);
  return true;
}

Json SynthClient::submit(const JobRequest& request) {
  send(request.to_json());
  Json msg;
  while (recv(&msg)) {
    // Ordering guarantee: the admission verdict is the next frame that
    // concerns this job; anything before it belongs to earlier traffic.
    if (is_type(msg, "accepted") && frame_id(msg) == request.id) return msg;
    if (is_type(msg, "error")) return msg;
  }
  throw std::runtime_error("connection closed while awaiting admission of '" +
                           request.id + "'");
}

Json SynthClient::await(const std::string& id,
                        const std::function<void(const Json&)>& on_event) {
  Json msg;
  while (recv(&msg)) {
    const bool mine = frame_id(msg) == id;
    if (mine && (is_type(msg, "result") || is_type(msg, "cancelled") ||
                 is_type(msg, "error"))) {
      return msg;
    }
    if (on_event) on_event(msg);
  }
  throw std::runtime_error("connection closed while awaiting job '" + id +
                           "'");
}

void SynthClient::cancel(const std::string& id) {
  Json msg = Json::object();
  msg["type"] = "cancel";
  msg["id"] = id;
  send(msg);
}

bool SynthClient::ping() {
  Json msg = Json::object();
  msg["type"] = "ping";
  send(msg);
  Json reply;
  while (recv(&reply)) {
    if (is_type(reply, "pong")) return true;
  }
  return false;
}

void SynthClient::shutdown_server() {
  Json msg = Json::object();
  msg["type"] = "shutdown";
  send(msg);
  Json reply;
  while (recv(&reply)) {
    if (is_type(reply, "shutting_down")) return;
  }
}

}  // namespace emorphic::service
