#include "service/protocol.hpp"

#include <stdexcept>

#include "aig/cut.hpp"

namespace emorphic::service {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument(message);
}

double expect_number(const Json& value, const std::string& key) {
  if (!value.is_number()) bad("field '" + key + "' must be a number");
  return value.as_number();
}

unsigned expect_unsigned(const Json& value, const std::string& key) {
  double n = expect_number(value, key);
  if (n < 0) bad("field '" + key + "' must be non-negative");
  return static_cast<unsigned>(n);
}

bool expect_bool(const Json& value, const std::string& key) {
  if (value.type() != Json::Type::kBool) {
    bad("field '" + key + "' must be a boolean");
  }
  return value.as_bool();
}

std::string expect_string(const Json& value, const std::string& key) {
  if (!value.is_string()) bad("field '" + key + "' must be a string");
  return value.as_string();
}

/// FNV-1a over a byte string — stable across platforms, good enough to
/// fingerprint canonical JSON text.
std::uint64_t fnv1a(const std::string& text, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded: return "OVERLOADED";
    case ErrorCode::kMalformedRequest: return "MALFORMED_REQUEST";
    case ErrorCode::kMalformedCircuit: return "MALFORMED_CIRCUIT";
    case ErrorCode::kBadParams: return "BAD_PARAMS";
    case ErrorCode::kUnknownFlow: return "UNKNOWN_FLOW";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "INTERNAL";
}

Json JobRequest::to_json() const {
  Json msg = Json::object();
  msg["type"] = "submit";
  msg["id"] = id;
  msg["format"] = format;
  msg["circuit"] = circuit;
  msg["flow"] = flow;
  msg["seed"] = seed;
  msg["deadline_s"] = deadline_s;
  msg["return_circuit"] = return_circuit;
  msg["progress"] = progress;
  msg["params"] = params;
  return msg;
}

JobRequest JobRequest::from_json(const Json& msg) {
  if (!msg.is_object()) bad("submit message must be a JSON object");
  JobRequest req;
  bool saw_id = false, saw_circuit = false;
  for (const auto& [key, value] : msg.as_object()) {
    if (key == "type") {
      if (expect_string(value, key) != "submit") bad("not a submit message");
    } else if (key == "id") {
      req.id = expect_string(value, key);
      saw_id = true;
    } else if (key == "format") {
      req.format = expect_string(value, key);
      if (req.format != "aiger" && req.format != "eqn") {
        bad("field 'format' must be \"aiger\" or \"eqn\"");
      }
    } else if (key == "circuit") {
      req.circuit = expect_string(value, key);
      saw_circuit = true;
    } else if (key == "flow") {
      req.flow = expect_string(value, key);
    } else if (key == "seed") {
      req.seed = static_cast<std::uint64_t>(expect_number(value, key));
    } else if (key == "deadline_s") {
      req.deadline_s = expect_number(value, key);
      if (req.deadline_s < 0) bad("field 'deadline_s' must be non-negative");
    } else if (key == "return_circuit") {
      req.return_circuit = expect_bool(value, key);
    } else if (key == "progress") {
      req.progress = expect_bool(value, key);
    } else if (key == "params") {
      if (!value.is_object()) bad("field 'params' must be an object");
      req.params = value;
    } else {
      bad("unknown submit field '" + key + "'");
    }
  }
  if (!saw_id || req.id.empty()) bad("field 'id' is required and non-empty");
  if (!saw_circuit || req.circuit.empty()) {
    bad("field 'circuit' is required and non-empty");
  }
  return req;
}

void apply_flow_params(FlowParams* params, const Json& overrides) {
  if (!overrides.is_object()) {
    bad("params override must be a JSON object");
  }
  for (const auto& [key, value] : overrides.as_object()) {
    if (key == "rounds") {
      params->rounds = expect_unsigned(value, key);
    } else if (key == "area_weight") {
      params->area_weight = expect_number(value, key);
    } else if (key == "verify") {
      params->verify = expect_bool(value, key);
    } else if (key == "fraig_pre") {
      params->fraig_pre = expect_bool(value, key);
    } else if (key == "fraig_post") {
      params->fraig_post = expect_bool(value, key);
    } else if (key == "use_choicemap") {
      params->use_choicemap = expect_bool(value, key);
    } else if (key == "use_lutmap") {
      params->use_lutmap = expect_bool(value, key);
    } else if (key == "lut_size") {
      unsigned k = expect_unsigned(value, key);
      // Validated here so a bad request dies as a typed BAD_PARAMS at
      // submit time instead of an internal error mid-flow; the range is
      // map_to_luts' contract (mapper/lut_mapper.hpp).
      if (k < 2 || k > kMaxCutSize) {
        bad("field 'lut_size' must be in [2, " + std::to_string(kMaxCutSize) +
            "]");
      }
      params->lut_size = k;
    } else if (key == "partition") {
      // Windowed saturation (opt/partition.hpp) for circuits too large for
      // whole-circuit conversion. checkpoint_path is deliberately NOT
      // exposed: clients must not name server-side filesystem paths.
      params->partition = expect_bool(value, key);
    } else if (key == "window_size") {
      unsigned w = expect_unsigned(value, key);
      if (w < 1) bad("field 'window_size' must be >= 1");
      params->window_size = w;
    } else if (key == "paranoia") {
      // Stage-boundary deep validation (FlowParams::paranoia): a client can
      // turn it on per job, e.g. when reducing a miscompare.
      params->paranoia = expect_bool(value, key);
    } else if (key == "sa") {
      if (!value.is_object()) bad("'sa' must be an object");
      for (const auto& [skey, sval] : value.as_object()) {
        const std::string path = "sa." + skey;
        if (skey == "iterations") {
          params->sa.iterations = expect_unsigned(sval, path);
        } else if (skey == "moves_per_iteration") {
          params->sa.moves_per_iteration = expect_unsigned(sval, path);
        } else if (skey == "num_threads") {
          params->sa.num_threads = expect_unsigned(sval, path);
        } else if (skey == "initial_temperature") {
          params->sa.initial_temperature = expect_number(sval, path);
        } else {
          bad("unknown params key '" + path + "'");
        }
      }
    } else if (key == "rewrite") {
      if (!value.is_object()) bad("'rewrite' must be an object");
      for (const auto& [rkey, rval] : value.as_object()) {
        const std::string path = "rewrite." + rkey;
        if (rkey == "max_iterations") {
          params->rewrite.max_iterations = expect_unsigned(rval, path);
        } else if (rkey == "max_enodes") {
          params->rewrite.max_enodes = expect_unsigned(rval, path);
        } else if (rkey == "time_limit_s") {
          params->rewrite.time_limit_s = expect_number(rval, path);
        } else if (rkey == "match_threads") {
          params->rewrite.match_threads = expect_unsigned(rval, path);
        } else {
          bad("unknown params key '" + path + "'");
        }
      }
    } else if (key == "mapping") {
      if (!value.is_object()) bad("'mapping' must be an object");
      for (const auto& [mkey, mval] : value.as_object()) {
        const std::string path = "mapping." + mkey;
        if (mkey == "cut_size") {
          params->mapping.cut_size = expect_unsigned(mval, path);
        } else if (mkey == "num_cuts") {
          params->mapping.num_cuts = expect_unsigned(mval, path);
        } else if (mkey == "area_recovery") {
          params->mapping.area_recovery = expect_bool(mval, path);
        } else {
          bad("unknown params key '" + path + "'");
        }
      }
    } else {
      bad("unknown params key '" + key + "'");
    }
  }
}

std::uint64_t params_fingerprint(const std::string& flow,
                                 const Json& overrides) {
  std::uint64_t h = fnv1a(flow, 0);
  return fnv1a(overrides.dump(), h);
}

Json make_error(ErrorCode code, const std::string& message,
                const std::string& job_id) {
  Json msg = Json::object();
  msg["type"] = "error";
  msg["code"] = to_string(code);
  msg["message"] = message;
  if (!job_id.empty()) msg["id"] = job_id;
  return msg;
}

}  // namespace emorphic::service
