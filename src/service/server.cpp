#include "service/server.hpp"

#include <unistd.h>

#include <chrono>
#include <exception>
#include <stdexcept>

#include "aig/aig_io.hpp"
#include "cec/cec.hpp"
#include "util/logger.hpp"

namespace emorphic::service {

/// Adapts FlowObserver stage hooks onto the wire as "progress" frames.
/// Installed only when the job asked for progress streaming. A dead client
/// turns progress into cancellation: there is no one left to pay for the
/// rest of the flow.
class ProgressObserver : public FlowObserver {
 public:
  ProgressObserver(SynthServer* server,
                   std::shared_ptr<SynthServer::Job> job)
      : server_(server), job_(std::move(job)) {}

  void on_stage_begin(const Stage& stage, const FlowContext&) override {
    emit(stage.name(), "begin", 0.0);
  }
  void on_stage_end(const Stage& stage, const StageTelemetry& telemetry,
                    const FlowContext&) override {
    emit(stage.name(), "end", telemetry.seconds);
  }

 private:
  void emit(const char* stage, const char* event, double seconds) {
    if (!job_->session->alive.load(std::memory_order_relaxed)) {
      job_->cancel.store(true, std::memory_order_relaxed);
      return;
    }
    Json frame = Json::object();
    frame["type"] = "progress";
    frame["id"] = job_->request.id;
    frame["stage"] = stage;
    frame["event"] = event;
    if (seconds > 0.0) frame["seconds"] = seconds;
    server_->send(job_->session, frame);
  }

  SynthServer* server_;
  std::shared_ptr<SynthServer::Job> job_;
};

SynthServer::SynthServer(ServerConfig config, WarmCache* cache)
    : config_(std::move(config)),
      owned_cache_(cache == nullptr
                       ? std::make_unique<WarmCache>(*config_.base_params.library)
                       : nullptr),
      cache_(cache != nullptr ? cache : owned_cache_.get()),
      queue_(config_.queue_capacity) {
  flows_["emorphic"] = [](const FlowParams& p) { return Pipeline::emorphic(p); };
  flows_["baseline"] = [](const FlowParams& p) { return Pipeline::baseline(p); };
}

SynthServer::~SynthServer() { stop(); }

void SynthServer::add_flow(const std::string& name, FlowFactory factory) {
  flows_[name] = std::move(factory);
}

void SynthServer::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("SynthServer::start called twice");
  }
  if (!config_.unix_socket_path.empty()) {
    listener_ = Socket::listen_unix(config_.unix_socket_path);
    log_info() << "synth server listening on " << config_.unix_socket_path;
  } else {
    listener_ = Socket::listen_tcp_loopback(config_.tcp_port, &bound_port_);
    log_info() << "synth server listening on 127.0.0.1:" << bound_port_;
  }
  unsigned workers = config_.workers == 0 ? 1 : config_.workers;
  for (unsigned w = 0; w < workers; ++w) {
    worker_threads_.emplace_back(&SynthServer::worker_loop, this);
  }
  listener_thread_ = std::thread(&SynthServer::listener_loop, this);
}

void SynthServer::stop() {
  if (stopping_.exchange(true)) return;  // idempotent (the dtor calls stop)
  if (!running_.load()) {
    queue_.close();
    return;
  }
  // 1. Stop admitting: new submits now answer SHUTTING_DOWN, and the
  //    listener unblocks out of accept().
  listener_.shutdown_both();
  if (listener_thread_.joinable()) listener_thread_.join();
  // 2. Drain: close the queue — workers run every already-admitted job to
  //    completion and deliver its response, then exit.
  queue_.close();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  // 3. Tear sessions down (all responses are already on the wire).
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [session, thread] : sessions_) {
      session->alive.store(false);
      session->sock.shutdown_both();
    }
  }
  // The listener (the only other toucher of sessions_) is joined; join the
  // session threads without holding the lock they never take anyway.
  for (auto& [session, thread] : sessions_) {
    if (thread.joinable()) thread.join();
  }
  sessions_.clear();
  listener_.close();
  if (!config_.unix_socket_path.empty()) {
    ::unlink(config_.unix_socket_path.c_str());
  }
  running_.store(false);
  shutdown_cv_.notify_all();
  log_info() << "synth server stopped";
}

void SynthServer::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool SynthServer::wait_for_shutdown_request(double timeout_s) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  auto requested = [&] { return shutdown_requested_ || stopping_.load(); };
  if (timeout_s < 0.0) {
    shutdown_cv_.wait(lock, requested);
    return true;
  }
  return shutdown_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s), requested);
}

ServerStats SynthServer::stats() const {
  ServerStats s;
  s.sessions_opened = stat_sessions_.load();
  s.jobs_accepted = stat_accepted_.load();
  s.jobs_completed = stat_completed_.load();
  s.jobs_cancelled = stat_cancelled_.load();
  s.jobs_failed = stat_failed_.load();
  s.rejected_overloaded = stat_overloaded_.load();
  s.rejected_malformed = stat_malformed_.load();
  s.result_cache_hits = stat_cache_hits_.load();
  return s;
}

// --- listener / sessions ----------------------------------------------------

void SynthServer::listener_loop() {
  while (!stopping_.load()) {
    Socket conn = listener_.accept();
    if (!conn.valid()) break;  // listener was shut down
    auto session = std::make_shared<Session>(std::move(conn));
    stat_sessions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    // Reap finished sessions so a long-running daemon does not accumulate
    // one joinable thread per past connection.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->first->done.load()) {
        it->second.join();
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    sessions_.emplace_back(
        session, std::thread(&SynthServer::session_loop, this, session));
  }
}

void SynthServer::session_loop(std::shared_ptr<Session> session) {
  std::string payload;
  while (true) {
    bool got = false;
    try {
      got = read_frame(session->sock, &payload, config_.max_frame_bytes);
    } catch (const std::exception& e) {
      // Bad magic / oversized length / truncation: the stream cannot be
      // resynchronized, so answer once and hang up.
      stat_malformed_.fetch_add(1, std::memory_order_relaxed);
      send(session, make_error(ErrorCode::kMalformedRequest, e.what()));
      break;
    }
    if (!got) break;  // client hung up cleanly
    Json msg;
    try {
      msg = Json::parse(payload);
    } catch (const std::exception& e) {
      // Framing is still aligned — reject the one message, keep serving.
      stat_malformed_.fetch_add(1, std::memory_order_relaxed);
      send(session, make_error(ErrorCode::kMalformedRequest,
                               std::string("invalid JSON: ") + e.what()));
      continue;
    }
    try {
      handle_message(session, msg);
    } catch (const std::exception& e) {
      stat_failed_.fetch_add(1, std::memory_order_relaxed);
      send(session, make_error(ErrorCode::kInternal, e.what()));
    }
  }
  // A vanished client must not keep burning workers: flag every job this
  // session still has in flight.
  session->alive.store(false);
  cancel_session_jobs(*session);
  session->sock.shutdown_both();
  session->done.store(true);
}

void SynthServer::handle_message(const std::shared_ptr<Session>& session,
                                 const Json& msg) {
  if (!msg.is_object() || !msg.contains("type") ||
      !msg.at("type").is_string()) {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send(session, make_error(ErrorCode::kMalformedRequest,
                             "message must be an object with a string "
                             "'type' field"));
    return;
  }
  const std::string& type = msg.at("type").as_string();
  if (type == "submit") {
    handle_submit(session, msg);
  } else if (type == "cancel") {
    handle_cancel(session, msg);
  } else if (type == "ping") {
    Json pong = Json::object();
    pong["type"] = "pong";
    send(session, pong);
  } else if (type == "shutdown") {
    Json ack = Json::object();
    ack["type"] = "shutting_down";
    send(session, ack);
    // stop() must come from outside a session thread (it joins them);
    // whoever called start() watches wait_for_shutdown_request().
    request_shutdown();
  } else {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send(session, make_error(ErrorCode::kMalformedRequest,
                             "unknown message type '" + type + "'"));
  }
}

void SynthServer::handle_submit(const std::shared_ptr<Session>& session,
                                const Json& msg) {
  // Best-effort id for error frames before the request parses.
  std::string raw_id;
  if (msg.contains("id") && msg.at("id").is_string()) {
    raw_id = msg.at("id").as_string();
  }

  JobRequest request;
  try {
    request = JobRequest::from_json(msg);
  } catch (const std::invalid_argument& e) {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send(session,
         make_error(ErrorCode::kMalformedRequest, e.what(), raw_id));
    return;
  }

  Aig input;
  try {
    input = request.format == "eqn" ? read_equations(request.circuit)
                                    : read_aiger(request.circuit);
  } catch (const std::exception& e) {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send(session,
         make_error(ErrorCode::kMalformedCircuit, e.what(), request.id));
    return;
  }

  auto flow_it = flows_.find(request.flow);
  if (flow_it == flows_.end()) {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send(session, make_error(ErrorCode::kUnknownFlow,
                             "no flow registered as '" + request.flow + "'",
                             request.id));
    return;
  }

  FlowParams params = config_.base_params;
  try {
    apply_flow_params(&params, request.params);
  } catch (const std::invalid_argument& e) {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send(session, make_error(ErrorCode::kBadParams, e.what(), request.id));
    return;
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->session = session;
  job->input = std::move(input);
  job->params = params;
  job->pipeline = flow_it->second(params);
  if (config_.cache_results) {
    job->cache_eligible = true;
    job->cache_key = WarmCache::flow_key(
        job->input, job->request.seed,
        params_fingerprint(job->request.flow, job->request.params));
  }
  job->admitted.restart();

  // Admission and the "accepted" frame happen under the session write lock:
  // a worker that finishes instantly needs that same lock to send the
  // result, so accepted-before-result ordering is structural.
  std::lock_guard<std::mutex> wlock(session->write_mutex);
  if (stopping_.load()) {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send_locked(*session, make_error(ErrorCode::kShuttingDown,
                                     "server is draining", job->request.id));
    return;
  }
  if (find_job(*session, job->request.id) != nullptr) {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send_locked(*session,
                make_error(ErrorCode::kMalformedRequest,
                           "duplicate in-flight job id '" + job->request.id +
                               "'",
                           job->request.id));
    return;
  }
  register_job(job);
  if (!queue_.try_push(job)) {
    unregister_job(*job);
    stat_overloaded_.fetch_add(1, std::memory_order_relaxed);
    send_locked(*session,
                make_error(stopping_.load() ? ErrorCode::kShuttingDown
                                            : ErrorCode::kOverloaded,
                           "admission queue is full", job->request.id));
    return;
  }
  stat_accepted_.fetch_add(1, std::memory_order_relaxed);
  Json accepted = Json::object();
  accepted["type"] = "accepted";
  accepted["id"] = job->request.id;
  accepted["queue_depth"] = static_cast<std::uint64_t>(queue_.size());
  send_locked(*session, accepted);
}

void SynthServer::handle_cancel(const std::shared_ptr<Session>& session,
                                const Json& msg) {
  if (!msg.contains("id") || !msg.at("id").is_string()) {
    stat_malformed_.fetch_add(1, std::memory_order_relaxed);
    send(session, make_error(ErrorCode::kMalformedRequest,
                             "cancel requires a string 'id'"));
    return;
  }
  const std::string& id = msg.at("id").as_string();
  std::shared_ptr<Job> job = find_job(*session, id);
  if (job != nullptr) job->cancel.store(true, std::memory_order_relaxed);
  // Always an ack, never an error: a cancel racing the job's completion is
  // normal, and an error frame here could be mistaken for the job failing.
  Json ack = Json::object();
  ack["type"] = "cancel_ack";
  ack["id"] = id;
  ack["found"] = job != nullptr;
  send(session, ack);
}

// --- workers ----------------------------------------------------------------

void SynthServer::worker_loop() {
  // One FlowContext per worker, reused across every job this thread runs:
  // Pipeline::run re-initializes the working state, and the context's
  // mapper/LUT workspaces (cut arenas, DP state) plus the shared matcher
  // survive between jobs, so a warm worker serves the steady state without
  // allocator traffic (the BENCH_alloc gate and
  // tests/service/test_warm_cache.cpp pin this).
  FlowContext ctx;
  std::shared_ptr<Job> job;
  while (queue_.pop(&job)) {
    process(std::move(job), ctx);
    job.reset();
  }
}

namespace {

Json make_cancelled(const std::string& id, FlowStopReason reason) {
  Json frame = Json::object();
  frame["type"] = "cancelled";
  frame["id"] = id;
  // A run can stop early with the reason still unset only in pathological
  // interleavings; report it as a plain cancellation.
  frame["reason"] = reason == FlowStopReason::kNone
                        ? to_string(FlowStopReason::kCancelled)
                        : to_string(reason);
  return frame;
}

}  // namespace

void SynthServer::process(std::shared_ptr<Job> job, FlowContext& ctx) {
  // Drop the previous job's pointers immediately: observer and cancel
  // referred to state owned by that job (and a stack frame of this
  // function), and the early-return paths below bail out before the
  // per-job rebind.
  ctx.observer = nullptr;
  ctx.cancel = nullptr;

  // The deadline covers queue wait too: a job that aged out while queued is
  // answered without running anything.
  double remaining = 0.0;
  if (job->request.deadline_s > 0.0) {
    remaining = job->request.deadline_s - job->admitted.seconds();
    if (remaining <= 0.0) {
      stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
      finish(job, make_cancelled(job->request.id, FlowStopReason::kDeadline));
      return;
    }
  }
  if (job->cancel.load(std::memory_order_relaxed)) {
    stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
    finish(job, make_cancelled(job->request.id, FlowStopReason::kCancelled));
    return;
  }

  auto make_result = [&](const FlowQor& qor, const Aig& final_aig,
                         CecStatus verify, FlowStopReason stop_reason,
                         bool cache_hit) {
    Json frame = Json::object();
    frame["type"] = "result";
    frame["id"] = job->request.id;
    frame["stop_reason"] = to_string(stop_reason);
    Json q = Json::object();
    q["area"] = qor.area;
    q["delay"] = qor.delay;
    q["lev"] = static_cast<std::uint64_t>(qor.lev);
    q["seconds"] = qor.seconds;
    frame["qor"] = q;
    frame["verify"] = cec_status_name(verify);
    frame["cache_hit"] = cache_hit;
    frame["wall_s"] = job->admitted.seconds();
    if (job->request.return_circuit) frame["circuit"] = write_aiger(final_aig);
    return frame;
  };

  if (job->cache_eligible) {
    CachedFlow hit;
    if (cache_->lookup_flow(job->cache_key, &hit)) {
      stat_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      stat_completed_.fetch_add(1, std::memory_order_relaxed);
      finish(job, make_result(hit.qor, hit.final_aig, hit.verify_status,
                              FlowStopReason::kNone, true));
      return;
    }
  }

  // Rebind the worker's long-lived context to this job. Every per-job
  // pointer is (re)assigned here — observer and cancel point at job-local
  // state and must never leak into the next job on this worker.
  ctx.params = job->params;
  cache_->prepare(ctx);
  ctx.input = job->input;
  ctx.seed = job->request.seed;
  ctx.cancel = &job->cancel;
  ctx.time_budget_s = remaining;
  ProgressObserver progress(this, job);
  ctx.observer = job->request.progress ? &progress : nullptr;

  FlowResult result;
  try {
    result = job->pipeline.run(ctx);
  } catch (const std::exception& e) {
    stat_failed_.fetch_add(1, std::memory_order_relaxed);
    log_error() << "service: flow for job '" << job->request.id
                << "' threw: " << e.what();
    finish(job,
           make_error(ErrorCode::kInternal, e.what(), job->request.id));
    return;
  }

  if (result.cancelled) {
    stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
    finish(job, make_cancelled(job->request.id, result.stop_reason));
    return;
  }
  // Cache only untainted completions: a run whose budget fired inside the
  // final stage (stop_reason without cancelled) still answered, but is not
  // a canonical result worth serving to others.
  if (job->cache_eligible && result.stop_reason == FlowStopReason::kNone) {
    cache_->insert_flow(job->cache_key,
                        CachedFlow{result.qor, result.final_aig,
                                   result.verify_status});
  }
  stat_completed_.fetch_add(1, std::memory_order_relaxed);
  finish(job, make_result(result.qor, result.final_aig, result.verify_status,
                          result.stop_reason, false));
}

void SynthServer::finish(const std::shared_ptr<Job>& job, const Json& frame) {
  send(job->session, frame);
  unregister_job(*job);
}

// --- plumbing ---------------------------------------------------------------

void SynthServer::send(const std::shared_ptr<Session>& session,
                       const Json& frame) {
  std::lock_guard<std::mutex> lock(session->write_mutex);
  send_locked(*session, frame);
}

void SynthServer::send_locked(Session& session, const Json& frame) {
  if (!session.alive.load(std::memory_order_relaxed)) return;
  try {
    write_frame(session.sock, frame.dump());
  } catch (const std::exception& e) {
    session.alive.store(false);
    log_warn() << "service: send failed, dropping session: " << e.what();
  }
}

void SynthServer::register_job(const std::shared_ptr<Job>& job) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  jobs_.emplace(std::make_pair(job->session.get(), job->request.id), job);
}

void SynthServer::unregister_job(const Job& job) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  jobs_.erase(std::make_pair(job.session.get(), job.request.id));
}

std::shared_ptr<SynthServer::Job> SynthServer::find_job(
    const Session& session, const std::string& id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(std::make_pair(&session, id));
  return it == jobs_.end() ? nullptr : it->second;
}

void SynthServer::cancel_session_jobs(const Session& session) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  for (auto& [key, job] : jobs_) {
    if (key.first == &session) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
}

}  // namespace emorphic::service
