#include "flow/pipeline.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "aig/signature.hpp"
#include "check/check.hpp"
#include "check/validators.hpp"
#include "egraph/rules.hpp"
#include "egraph/snapshot.hpp"

namespace emorphic {

namespace {

double flow_cost(const FlowParams& params, double delay, double area) {
  return delay + params.area_weight * area;
}

/// One "(st; if -g)(st; dch; ...)" tech-independent round. Alternating the
/// pass order across rounds explores different structures, mirroring how
/// ABC's choice-based rounds see multiple networks.
Aig optimize_round(const Aig& aig, const FlowParams& params, unsigned round) {
  Aig cur = strash(aig);
  if (round % 2 == 0) {
    cur = sop_balance(strash(dch_substitute(cur)), params.sop_balance);
  } else {
    cur = dch_substitute(strash(sop_balance(cur, params.sop_balance)));
  }
  return cur;
}

}  // namespace

const char* to_string(FlowStopReason reason) {
  switch (reason) {
    case FlowStopReason::kNone:
      return "none";
    case FlowStopReason::kCancelled:
      return "cancelled";
    case FlowStopReason::kDeadline:
      return "deadline";
  }
  return "?";
}

FlowResult FlowContext::take_result() {
  FlowResult result;
  result.qor = qor;
  result.final_aig = std::move(current);
  result.netlist = std::move(netlist);
  result.lut_netlist = std::move(lut_netlist);
  result.telemetry = std::move(telemetry);
  result.rewrite_report = std::move(rewrite_report);
  result.sa = std::move(sa);
  result.fraig_stats = fraig_stats;
  result.choice_stats = choice_stats;
  result.partition_stats = partition_stats;
  result.egraph_classes = egraph_classes;
  result.egraph_enodes = egraph_enodes;
  result.initial_enodes = initial_enodes;
  result.verify_status = verify_status;
  result.cancelled = stopped_early;
  result.stop_reason = stop_signal.load(std::memory_order_relaxed);
  return result;
}

// --- ResynRounds ------------------------------------------------------------

void ResynRoundsStage::run(FlowContext& ctx) const {
  const FlowParams& params = ctx.params;
  unsigned rounds = params.rounds;
  if (policy_ == Rounds::kAllButLast && rounds > 0) rounds -= 1;

  // ABC's script tolerates per-round regressions because `dch` keeps the
  // previous structure alive as choices; without choices, gating plays that
  // role and keeps this a monotone, competitive delay flow.
  const Matcher& matcher = *ctx.shared_matcher();
  Aig best = strash(ctx.current);
  MappedNetlist best_netlist =
      map_to_cells(best, matcher, params.mapping, &ctx.mapper_workspace);
  double best_delay = best_netlist.delay();
  double best_area = best_netlist.area();

  Aig cur = best;
  for (unsigned round = 0; round < rounds; ++round) {
    if (ctx.should_stop()) break;
    cur = optimize_round(cur, params, round);
    MappedNetlist mapped =
        map_to_cells(cur, matcher, params.mapping, &ctx.mapper_workspace);
    double delay = mapped.delay();
    double area = mapped.area();
    if (flow_cost(params, delay, area) <
        flow_cost(params, best_delay, best_area)) {
      best = cur;
      best_netlist = std::move(mapped);
      best_delay = delay;
      best_area = area;
    }
  }

  ctx.current = std::move(best);
  ctx.netlist = std::move(best_netlist);
  ctx.netlist_is_current = true;
}

// --- EgraphConversion -------------------------------------------------------

void EgraphConversionStage::run(FlowContext& ctx) const {
  if (!ctx.egraph.has_value()) {
    ctx.egraph.emplace(aig_to_egraph(ctx.current));
    ctx.initial_enodes = ctx.egraph->egraph.num_enodes();
    return;
  }
  if (ctx.sa_valid) {
    ctx.current = egraph_to_aig(*ctx.egraph, ctx.sa.best);
  } else {
    ctx.current = egraph_to_aig_greedy(*ctx.egraph, CostKind::kDepth);
  }
  ctx.netlist.reset();
  ctx.netlist_is_current = false;
}

// --- Rewrite ----------------------------------------------------------------

namespace {

// Mid-saturation checkpointing ("EMCK"): after every saturation iteration
// the Rewrite stage snapshots the (clean, just-rebuilt) e-graph to
// FlowParams::checkpoint_path. A later run with the same circuit and
// parameters restores the snapshot and runs only the remaining iterations;
// because the runner's iterations are deterministic functions of the
// e-graph state, the resumed trajectory is bit-identical to the
// uninterrupted one (tests/flow/test_checkpoint.cpp). The file is written
// to a sibling ".tmp" and renamed into place, so a kill mid-write leaves
// the previous complete checkpoint, never a torn one.

constexpr char kRewriteCkptMagic[4] = {'E', 'M', 'C', 'K'};
constexpr std::uint64_t kRewriteCkptVersion = 1;

std::uint64_t mix_u64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Everything the saturation trajectory depends on. A checkpoint whose
/// fingerprint disagrees was taken under a different run and throws
/// (restoring it would silently splice two unrelated saturations).
std::uint64_t rewrite_ckpt_fingerprint(const FlowContext& ctx) {
  std::uint64_t h = structural_signature(ctx.current);
  auto fold = [&h](std::uint64_t v) { h = mix_u64(h ^ mix_u64(v)); };
  fold(ctx.params.rewrite.max_iterations);
  fold(ctx.params.rewrite.max_enodes);
  fold(ctx.params.rewrite.max_matches_per_rule);
  fold(ctx.seed);
  return h;
}

/// Restore a checkpoint into `egraph`; returns iterations already done
/// (0 when no checkpoint file exists). Throws SnapshotError on any
/// mismatch or corruption.
std::uint64_t load_rewrite_ckpt(const std::string& path,
                                std::uint64_t fingerprint, EGraph& egraph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::string data(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>{});
  if (data.empty()) return 0;
  SnapshotReader r(data);
  r.expect_magic(kRewriteCkptMagic, "rewrite checkpoint");
  std::uint64_t version = r.varint("version");
  if (version != kRewriteCkptVersion) {
    throw SnapshotError("unsupported rewrite checkpoint version " +
                        std::to_string(version));
  }
  if (r.varint("fingerprint") != fingerprint) {
    throw SnapshotError(
        "rewrite checkpoint was taken for a different circuit or "
        "configuration (fingerprint mismatch) — delete it to start over");
  }
  std::uint64_t iterations = r.varint("iterations done");
  std::uint64_t len = r.varint("snapshot length");
  std::string snapshot = r.bytes(len, "e-graph snapshot");
  r.expect_end("rewrite checkpoint");
  egraph = snapshot_to_egraph(snapshot);
  return iterations;
}

void save_rewrite_ckpt(const std::string& path, std::uint64_t fingerprint,
                       std::uint64_t iterations, const EGraph& egraph) {
  SnapshotWriter w;
  w.magic(kRewriteCkptMagic);
  w.varint(kRewriteCkptVersion);
  w.varint(fingerprint);
  w.varint(iterations);
  std::string snapshot = egraph_to_snapshot(egraph);
  w.varint(snapshot.size());
  w.bytes(snapshot);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(w.str().data(), static_cast<std::streamsize>(w.str().size()));
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

void RewriteStage::run(FlowContext& ctx) const {
  if (!ctx.egraph.has_value()) {
    throw std::runtime_error(
        "Rewrite stage needs an e-graph: add EgraphConversion first");
  }
  const std::vector<Rewrite>* rules = &rules_;
  if (rules->empty()) {
    static const std::vector<Rewrite> default_rules = make_logic_rules();
    rules = &default_rules;
  }

  // Saturation checkpointing is the whole-circuit mode's resume path; the
  // partitioned flow checkpoints at window granularity instead and owns
  // the file.
  const bool checkpointing =
      !ctx.params.checkpoint_path.empty() && !ctx.params.partition;
  RunnerParams rewrite = ctx.params.rewrite;
  std::uint64_t fingerprint = 0;
  std::uint64_t iterations_done = 0;
  if (checkpointing) {
    fingerprint = rewrite_ckpt_fingerprint(ctx);
    iterations_done = load_rewrite_ckpt(ctx.params.checkpoint_path,
                                        fingerprint, ctx.egraph->egraph);
    if (iterations_done >= rewrite.max_iterations) {
      rewrite.max_iterations = 0;  // everything already done: restore only
    } else {
      rewrite.max_iterations -= static_cast<unsigned>(iterations_done);
    }
  }

  RunnerHooks hooks;
  std::uint64_t iteration_counter = iterations_done;
  hooks.on_iteration = [&](const IterationStats& stats) {
    // Checkpoint before the cancel poll: a run killed at iteration k can
    // then resume from k, not k-1.
    if (checkpointing) {
      save_rewrite_ckpt(ctx.params.checkpoint_path, fingerprint,
                        ++iteration_counter, ctx.egraph->egraph);
    }
    if (ctx.observer != nullptr) ctx.observer->on_rewrite_iteration(stats, ctx);
    return !ctx.should_stop();
  };
  ctx.rewrite_report =
      run_rewriting(ctx.egraph->egraph, *rules, rewrite, hooks);
  ctx.egraph_classes = ctx.egraph->egraph.num_classes();
  ctx.egraph_enodes = ctx.egraph->egraph.num_enodes();
}

// --- SaExtract --------------------------------------------------------------

void SaExtractStage::run(FlowContext& ctx) const {
  if (!ctx.egraph.has_value()) {
    throw std::runtime_error(
        "SaExtract stage needs an e-graph: add EgraphConversion first");
  }
  const FlowParams& params = ctx.params;
  // The default evaluator shares the context's matcher: SA chains then hit
  // a warm match cache instead of re-canonizing the library per evaluation.
  // Built only when no custom evaluator overrides it.
  std::optional<MapQorEvaluator> default_evaluator;
  const QorEvaluator* evaluator = ctx.evaluator;
  if (evaluator == nullptr) {
    default_evaluator.emplace(ctx.shared_matcher(), params.area_weight);
    evaluator = &*default_evaluator;
  }

  SaParams sa_params = params.sa;
  if (ctx.seed != 0) sa_params.seed = ctx.seed;

  SaHooks hooks;
  hooks.stop = [&ctx] { return ctx.should_stop(); };
  // Cross-run QoR memo (WarmCache): only safe with the default evaluator —
  // the memo caches one evaluator's output per structural signature, and a
  // custom evaluator would poison / be poisoned by it.
  if (ctx.evaluator == nullptr) hooks.qor_memo = ctx.qor_memo;
  if (ctx.observer != nullptr) {
    hooks.on_move = [&ctx](const SaTracePoint& point) {
      ctx.observer->on_sa_move(point, ctx);
    };
  }
  ctx.sa = sa_extract(ctx.egraph->egraph, ctx.egraph->roots,
                      ctx.egraph->pi_names, *evaluator, sa_params, hooks);
  ctx.sa_valid = true;
}

// --- TechMap ----------------------------------------------------------------

void TechMapStage::run(FlowContext& ctx) const {
  const FlowParams& params = ctx.params;
  const Matcher& matcher = *ctx.shared_matcher();
  if (resynth_gate_) {
    // The E-morphic final round: SA already optimized the mapped delay of
    // ctx.current, so one more resynthesis is gated like the earlier rounds.
    Aig chosen_st = strash(ctx.current);
    MappedNetlist mapped =
        map_to_cells(chosen_st, matcher, params.mapping, &ctx.mapper_workspace);
    Aig final_aig = chosen_st;
    Aig resynth = dch_substitute(chosen_st);
    MappedNetlist remapped =
        map_to_cells(resynth, matcher, params.mapping, &ctx.mapper_workspace);
    if (flow_cost(params, remapped.delay(), remapped.area()) <
        flow_cost(params, mapped.delay(), mapped.area())) {
      mapped = std::move(remapped);
      final_aig = std::move(resynth);
    }
    ctx.current = std::move(final_aig);
    ctx.netlist = std::move(mapped);
    ctx.netlist_is_current = true;
  } else if (!ctx.netlist.has_value() || !ctx.netlist_is_current) {
    ctx.current = strash(ctx.current);
    ctx.netlist = map_to_cells(ctx.current, matcher, params.mapping,
                               &ctx.mapper_workspace);
    ctx.netlist_is_current = true;
  }
  ctx.qor.area = ctx.netlist->area();
  ctx.qor.delay = ctx.netlist->delay();
  ctx.qor.lev = ctx.current.num_levels();
}

// --- Cec --------------------------------------------------------------------

void CecStage::run(FlowContext& ctx) const {
  if (!ctx.params.verify) return;
  ctx.verify_status = cec(ctx.input, ctx.current, ctx.params.cec_params).status;
}

// --- fraig ------------------------------------------------------------------

void FraigStage::run(FlowContext& ctx) const {
  FraigParams params = ctx.params.fraig;
  // Fold the per-run seed in so batch circuits draw distinct simulation
  // patterns. run_batch derives ctx.seed deterministically per circuit, so
  // batch results stay reproducible; under a finite conflict budget the
  // seed can affect which borderline pairs prove in time (never soundness).
  if (ctx.seed != 0) params.seed ^= ctx.seed;
  ctx.current = fraig(ctx.current, params, &ctx.fraig_stats);
  ctx.netlist.reset();
  ctx.netlist_is_current = false;
}

// --- choicemap --------------------------------------------------------------

void ChoiceMapStage::run(FlowContext& ctx) const {
  if (!ctx.egraph.has_value()) {
    throw std::runtime_error(
        "choicemap stage needs an e-graph: add EgraphConversion first");
  }
  const FlowParams& params = ctx.params;
  // The committed extraction defines the representative cone; the rings
  // carry everything else the saturation discovered.
  Extraction solution =
      ctx.sa_valid
          ? ctx.sa.best
          : greedy_extract(ctx.egraph->egraph, CostModel{CostKind::kDepth});
  ChoiceAig choice_aig = egraph_to_choice_aig(*ctx.egraph, solution,
                                              params.choice_export,
                                              &ctx.choice_stats);
  // ctx.current is the plain extraction (what verification and downstream
  // stages see); the netlist maps the same function across all variants,
  // Pareto-gated so the rings can only improve the cover, never hurt it.
  ctx.current = egraph_to_aig(*ctx.egraph, solution);
  const Matcher& matcher = *ctx.shared_matcher();
  ChoiceMapOutcome outcome = map_with_choices_gated(
      choice_aig, matcher, params.mapping, &ctx.mapper_workspace);
  ctx.netlist = std::move(outcome.netlist);
  ctx.netlist_is_current = true;
  ctx.qor.area = ctx.netlist->area();
  ctx.qor.delay = ctx.netlist->delay();
  ctx.qor.lev = ctx.current.num_levels();
}

// --- lutmap -----------------------------------------------------------------

void LutMapStage::run(FlowContext& ctx) const {
  const FlowParams& params = ctx.params;
  LutMapperParams lut_params;
  lut_params.lut_size = params.lut_size;
  if (params.use_choicemap && ctx.egraph.has_value()) {
    // Choice-aware tail, mirroring ChoiceMapStage: lower the committed
    // extraction plus the verified rings and LUT-map across all variants,
    // Pareto-gated so the rings can only improve the cover.
    Extraction solution =
        ctx.sa_valid
            ? ctx.sa.best
            : greedy_extract(ctx.egraph->egraph, CostModel{CostKind::kDepth});
    ChoiceAig choice_aig = egraph_to_choice_aig(*ctx.egraph, solution,
                                                params.choice_export,
                                                &ctx.choice_stats);
    ctx.current = egraph_to_aig(*ctx.egraph, solution);
    LutChoiceOutcome outcome = map_luts_with_choices_gated(
        choice_aig, lut_params, &ctx.lut_workspace, ctx.pool);
    ctx.lut_netlist = std::move(outcome.network);
  } else {
    ctx.current = strash(ctx.current);
    ctx.lut_netlist =
        map_to_luts(ctx.current, lut_params, &ctx.lut_workspace, ctx.pool);
  }
  // The two backends are mutually exclusive outputs of one run: a stale
  // cell netlist would misreport the flow that actually ran.
  ctx.netlist.reset();
  ctx.netlist_is_current = false;
  ctx.qor.area = ctx.lut_netlist->area();  // LUT count
  ctx.qor.delay = static_cast<double>(ctx.lut_netlist->depth());  // LUT levels
  ctx.qor.lev = ctx.current.num_levels();
}

// --- partition --------------------------------------------------------------

void PartitionStage::run(FlowContext& ctx) const {
  PartitionParams pp;
  pp.window_size = ctx.params.window_size;
  pp.seed = ctx.seed != 0 ? ctx.seed : ctx.params.sa.seed;
  pp.rewrite = ctx.params.rewrite;
  pp.window_fraig = ctx.params.fraig_post;
  pp.fraig = ctx.params.fraig;
  pp.window_cec = ctx.params.cec_params;
  pp.checkpoint_path = ctx.params.checkpoint_path;
  pp.cancel = ctx.cancel;
  PartitionResult result = partition_optimize(ctx.current, pp);
  ctx.partition_stats = result.stats;
  if (!result.stats.completed) {
    // Cancelled between chunks: the checkpoint holds the progress; leave
    // the working network untouched so downstream stages (and the caller)
    // see a consistent circuit.
    ctx.note_stop(FlowStopReason::kCancelled);
    return;
  }
  ctx.current = std::move(result.optimized);
  ctx.netlist.reset();
  ctx.netlist_is_current = false;
  ctx.qor.lev = ctx.current.num_levels();
}

// --- stage registry ---------------------------------------------------------

namespace {

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, StageFactory>& registry() {
  // Built-ins are seeded on first access so registration order cannot race
  // with static initialization in other translation units.
  static std::map<std::string, StageFactory> stages = [] {
    std::map<std::string, StageFactory> map;
    map["ResynRounds"] = [] { return StagePtr(new ResynRoundsStage()); };
    map["EgraphConversion"] = [] {
      return StagePtr(new EgraphConversionStage());
    };
    map["Rewrite"] = [] { return StagePtr(new RewriteStage()); };
    map["SaExtract"] = [] { return StagePtr(new SaExtractStage()); };
    map["TechMap"] = [] { return StagePtr(new TechMapStage()); };
    map["Cec"] = [] { return StagePtr(new CecStage()); };
    map["fraig"] = [] { return StagePtr(new FraigStage()); };
    map["choicemap"] = [] { return StagePtr(new ChoiceMapStage()); };
    map["lutmap"] = [] { return StagePtr(new LutMapStage()); };
    map["partition"] = [] { return StagePtr(new PartitionStage()); };
    return map;
  }();
  return stages;
}

}  // namespace

bool register_stage(const std::string& name, StageFactory factory) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return registry().insert_or_assign(name, std::move(factory)).second;
}

StagePtr make_stage(const std::string& name) {
  StageFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    auto it = registry().find(name);
    if (it != registry().end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : registered_stage_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown stage '" + name +
                                "' (registered: " + known + ")");
  }
  return factory();
}

std::vector<std::string> registered_stage_names() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

// --- Pipeline ---------------------------------------------------------------

Pipeline& Pipeline::add(StagePtr stage) {
  stages_.emplace_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::add(const std::string& registered_name) {
  return add(make_stage(registered_name));
}

std::vector<std::string> Pipeline::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& stage : stages_) names.emplace_back(stage->name());
  return names;
}

FlowResult Pipeline::run(FlowContext& ctx) const {
  // Re-initialize all working state from the configuration members: a
  // context can be reused for several runs (take_result only moves the
  // previous run's results out).
  ctx.stopwatch.restart();
  ctx.current = ctx.input;
  ctx.egraph.reset();
  ctx.netlist.reset();
  ctx.lut_netlist.reset();
  ctx.netlist_is_current = false;
  ctx.sa_valid = false;
  ctx.qor = FlowQor{};
  ctx.rewrite_report = RunnerReport{};
  ctx.sa = SaResult{};
  ctx.fraig_stats = FraigStats{};
  ctx.choice_stats = ChoiceExportStats{};
  ctx.partition_stats = PartitionStats{};
  ctx.egraph_classes = 0;
  ctx.egraph_enodes = 0;
  ctx.initial_enodes = 0;
  ctx.verify_status = CecStatus::kUndecided;
  ctx.telemetry = FlowTelemetry{};
  ctx.stopped_early = false;
  ctx.stop_signal.store(FlowStopReason::kNone, std::memory_order_relaxed);
  if (ctx.observer != nullptr) ctx.observer->on_flow_begin(ctx);

  // Paranoia mode: deep-validate every live structure at each stage
  // boundary, in any build. A corrupt structure then fails at the stage
  // that produced it instead of passes later, with the violation named.
  auto validate = [&ctx](const std::string& boundary) {
    if (!ctx.params.paranoia) return;
    auto require = [&boundary](std::string why, const char* structure) {
      if (why.empty()) return;
      throw check::CheckError("paranoia: " + boundary + ": " + structure +
                              ": " + std::move(why));
    };
    require(check::check_aig(ctx.current), "working AIG");
    if (ctx.egraph.has_value()) {
      require(check::check_egraph(ctx.egraph->egraph), "e-graph");
    }
    if (ctx.lut_netlist.has_value()) {
      require(check::check_lut_network(*ctx.lut_netlist), "LUT network");
    }
  };
  validate("flow input");

  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (ctx.should_stop()) {
      ctx.stopped_early = true;
      break;
    }
    const Stage& stage = *stages_[i];
    if (ctx.observer != nullptr) ctx.observer->on_stage_begin(stage, ctx);
    Timer stage_timer;
    stage.run(ctx);
    StageTelemetry telemetry{stage.name(), i, stage_timer.seconds()};
    ctx.telemetry.stages.push_back(telemetry);
    if (ctx.observer != nullptr) {
      ctx.observer->on_stage_end(stage, telemetry, ctx);
    }
    validate("after stage " + std::string(stage.name()));
  }

  // FlowQor::seconds is the optimization time: every stage except the
  // verification, matching the legacy flows (which stamped the total before
  // running cec).
  double optimization = 0.0;
  for (const StageTelemetry& s : ctx.telemetry.stages) {
    if (s.name != std::string_view("Cec")) optimization += s.seconds;
  }
  ctx.qor.seconds = optimization;
  ctx.telemetry.total_seconds = ctx.stopwatch.seconds();

  if (ctx.observer != nullptr) ctx.observer->on_flow_end(ctx);
  return ctx.take_result();
}

FlowResult Pipeline::run(const Aig& input, const FlowParams& params,
                         FlowObserver* observer) const {
  FlowContext ctx;
  ctx.params = params;
  ctx.input = input;
  ctx.observer = observer;
  return run(ctx);
}

Pipeline Pipeline::baseline() { return baseline(FlowParams{}); }

Pipeline Pipeline::emorphic() { return emorphic(FlowParams{}); }

Pipeline Pipeline::baseline(const FlowParams& params) {
  Pipeline pipeline;
  if (params.fraig_pre) pipeline.add(StagePtr(new FraigStage()));
  pipeline.add(StagePtr(new ResynRoundsStage(ResynRoundsStage::Rounds::kAll)));
  if (params.fraig_post) pipeline.add(StagePtr(new FraigStage()));
  if (params.use_lutmap) {
    pipeline.add(StagePtr(new LutMapStage()));
  } else {
    pipeline.add(StagePtr(new TechMapStage(/*resynth_gate=*/false)));
  }
  return pipeline;
}

Pipeline Pipeline::emorphic(const FlowParams& params) {
  if (params.partition) {
    // The scaling mode: the whole-circuit conversion/rewrite/extract body
    // cannot hold a million-gate design in one e-graph, so the partition
    // stage runs the same saturation per window and stitches. The final
    // Cec stage (gated by params.verify, like every flow) proves the
    // stitched circuit against the input end to end.
    Pipeline pipeline;
    if (params.fraig_pre) pipeline.add(StagePtr(new FraigStage()));
    pipeline.add(StagePtr(new PartitionStage()));
    pipeline.add(StagePtr(new CecStage()));
    return pipeline;
  }
  Pipeline pipeline;
  if (params.fraig_pre) pipeline.add(StagePtr(new FraigStage()));
  pipeline.add(
      StagePtr(new ResynRoundsStage(ResynRoundsStage::Rounds::kAllButLast)));
  pipeline.add(StagePtr(new EgraphConversionStage()));  // forward
  pipeline.add(StagePtr(new RewriteStage()));
  pipeline.add(StagePtr(new SaExtractStage()));
  if (params.use_choicemap) {
    // Choice-aware tail: one stage lowers the SA winner plus the verified
    // alternative rings and maps across all of them. fraig_post has no
    // network to sweep here (the stage rebuilds ctx.current from the
    // e-graph), so it is ignored in this configuration. With use_lutmap
    // the same shape holds, with LUTs as the backend.
    pipeline.add(params.use_lutmap ? StagePtr(new LutMapStage())
                                   : StagePtr(new ChoiceMapStage()));
  } else {
    pipeline.add(StagePtr(new EgraphConversionStage()));  // backward
    if (params.fraig_post) pipeline.add(StagePtr(new FraigStage()));
    if (params.use_lutmap) {
      pipeline.add(StagePtr(new LutMapStage()));
    } else {
      pipeline.add(StagePtr(new TechMapStage(/*resynth_gate=*/true)));
    }
  }
  pipeline.add(StagePtr(new CecStage()));
  return pipeline;
}

}  // namespace emorphic
