#include "flow/batch.hpp"

#include <algorithm>
#include <thread>

namespace emorphic {

namespace {

/// splitmix64 (Vigna): decorrelates consecutive indices into independent
/// seeds, so circuit i's SA chains never overlap circuit i+1's.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t circuit_seed(std::uint64_t base_seed, std::size_t index) {
  std::uint64_t seed = splitmix64(base_seed ^ splitmix64(index + 1));
  // 0 means "no override" to the pipeline; keep derived seeds nonzero.
  if (seed == 0) seed = 0x9e3779b97f4a7c15ull;
  return seed;
}

}  // namespace

BatchResult run_batch(std::span<const Aig> inputs, const Pipeline& pipeline,
                      const FlowParams& params, const BatchParams& batch,
                      FlowObserver* observer) {
  Timer timer;
  BatchResult result;
  result.results.resize(inputs.size());
  if (inputs.empty()) {
    result.seconds = timer.seconds();
    return result;
  }

  FlowParams shared = params;
  if (batch.sa_threads > 0) shared.sa.num_threads = batch.sa_threads;
  if (batch.match_threads > 0) {
    shared.rewrite.match_threads = batch.match_threads;
  }

  // One thread-safe matcher serves every worker: the library is canonized
  // once per batch and the match cache warms across circuits. With a
  // WarmCache it is canonized once per *process* instead, and the QoR memo
  // carries over between batches too.
  std::shared_ptr<const Matcher> matcher =
      batch.warm_cache != nullptr
          ? batch.warm_cache->matcher_for(*shared.library)
          : std::make_shared<const Matcher>(*shared.library);

  unsigned workers = batch.num_threads;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, inputs.size()));

  ThreadPool pool(workers);
  pool.parallel_for(inputs.size(), [&](std::size_t i) {
    FlowContext ctx;
    ctx.params = shared;
    ctx.matcher = matcher;
    if (batch.warm_cache != nullptr) batch.warm_cache->prepare(ctx);
    ctx.input = inputs[i];
    ctx.seed = circuit_seed(batch.base_seed, i);
    ctx.observer = observer;
    ctx.cancel = batch.cancel;
    ctx.time_budget_s = batch.time_budget_s;
    ctx.batch_index = i;
    result.results[i] = pipeline.run(ctx);
  });

  result.seconds = timer.seconds();
  return result;
}

}  // namespace emorphic
