#include "flow/conversion.hpp"

namespace emorphic {

CircuitEGraph aig_to_egraph(const Aig& aig) {
  CircuitEGraph ce;
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    ce.pi_names.push_back(aig.pi_name(i));
  }

  // class_of[v]: e-class of the *uncomplemented* AIG variable. Complemented
  // edges materialize as (hash-consed) NOT e-nodes on demand, so each
  // polarity exists at most once — the conversion stays one-to-one.
  std::vector<EClassId> class_of(aig.num_nodes(), kNoEClass);
  class_of[0] = ce.egraph.add_const0();

  auto lit_class = [&](Lit lit) {
    EClassId base = class_of[lit_var(lit)];
    return lit_is_compl(lit) ? ce.egraph.add_not(base) : base;
  };

  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_pi(v)) {
      class_of[v] = ce.egraph.add_var(aig.pi_index(v));
    } else {
      class_of[v] =
          ce.egraph.add_and(lit_class(aig.fanin0(v)), lit_class(aig.fanin1(v)));
    }
  }

  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    Lit po = aig.po(i);
    SerializedRoot root;
    root.id = class_of[lit_var(po)];
    root.complemented = lit_is_compl(po);
    root.name = aig.po_name(i);
    ce.roots.push_back(std::move(root));
  }
  return ce;
}

Aig egraph_to_aig(const CircuitEGraph& ce, const Extraction& solution) {
  return extraction_to_aig(ce.egraph, solution, ce.roots, ce.pi_names)
      .cleanup();
}

Aig egraph_to_aig_greedy(const CircuitEGraph& ce, CostKind kind) {
  Extraction solution = greedy_extract(ce.egraph, CostModel{kind});
  return egraph_to_aig(ce, solution);
}

CircuitEGraph dsl_to_circuit_egraph(const std::string& text) {
  DeserializedEGraph de = dsl_to_egraph(text);
  CircuitEGraph ce;
  ce.egraph = std::move(de.egraph);
  ce.roots = std::move(de.roots);
  ce.pi_names = std::move(de.var_names);
  return ce;
}

}  // namespace emorphic
