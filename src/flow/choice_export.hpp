#pragma once
// E-graph -> choice-annotated AIG export: the lossless-synthesis bridge
// between equality saturation and technology mapping.
//
// Extraction commits to ONE e-node per e-class; every other structural
// variant the saturation discovered would normally be thrown away before
// `map_to_cells` ever runs. This export keeps them: the chosen extraction
// is lowered as usual (its nodes become the choice-class representatives
// that carry all fanout), and then, class by class, a capped number of the
// *other* member e-nodes (egraph/choices.hpp) are lowered as alternative
// cones over the same child representatives. Each alternative is
// complement-normalized against its representative — fraig-style, phase on
// the literal — and recorded in an AigChoices ring (aig/choice.hpp).
//
// Every ring member is then SAT-verified against its representative over
// one incremental CNF of the whole network (two assumption-only queries
// per member, the fraig pattern): a member the solver cannot prove
// equivalent — including an *inequivalent* member injected by an unsound
// e-graph merge — is rejected and its cone is dropped when the network is
// compacted. Mapping across choices therefore never has to trust the
// e-graph: the exported annotation is proven, and the stage-equivalence
// gate checks the mapped result end to end on top of that.

#include <cstddef>
#include <cstdint>

#include "aig/choice.hpp"
#include "extract/extractor.hpp"
#include "flow/conversion.hpp"
#include "mapper/lut_mapper.hpp"
#include "mapper/tech_mapper.hpp"

namespace emorphic {

/// Knobs of the e-graph -> choice-AIG export.
struct ChoiceExportParams {
  /// Maximum alternatives attempted per e-class (the choice ring cap).
  /// Larger rings expose more variants to the mapper at the price of more
  /// cut merging and more verification queries.
  std::uint32_t ring_cap = 4;
  /// SAT-verify every ring member against its representative before it may
  /// join the annotation. Keep this on unless the e-graph is trusted by
  /// construction AND mapped results are verified downstream anyway.
  bool verify = true;
  /// Conflict budget per verification query; 0 = prove unboundedly. A
  /// member whose proof exceeds the budget is rejected (soundness over
  /// choice count).
  std::uint64_t verify_conflict_limit = 100000;
};

/// What one export did (diagnostics / bench reporting).
struct ChoiceExportStats {
  std::size_t cone_classes = 0;        // e-classes lowered from the e-graph
  std::size_t classes_with_choices = 0;  // representatives with >= 1 member
  std::size_t alts_kept = 0;           // members in the final annotation
  std::size_t alts_strashed = 0;       // lowered onto an existing identical node
  std::size_t alts_conflicting = 0;    // would overlap another ring/rep role
  std::size_t alts_unbuildable = 0;    // child class outside the lowered cone
  std::size_t alts_rejected = 0;       // SAT verification failed / over budget
  std::size_t alts_dropped_cyclic = 0; // scheduling dropped (mutual choice refs)
  std::size_t verify_sat_calls = 0;    // individual solver queries
};

/// Export `ce` under `solution` (which must cover the cone of the roots,
/// e.g. the SA winner or a greedy extraction) as a choice-annotated AIG.
/// The result's plain PO cones equal `egraph_to_aig(ce, solution)` up to
/// structural hashing; the rings carry the verified alternatives. The
/// returned annotation is finalized and check()-clean.
ChoiceAig egraph_to_choice_aig(const CircuitEGraph& ce,
                               const Extraction& solution,
                               const ChoiceExportParams& params = {},
                               ChoiceExportStats* stats = nullptr);

/// Result of one gated choice-aware mapping (map_with_choices_gated).
struct ChoiceMapOutcome {
  /// The adopted cover: the choice-aware one, or the plain fallback.
  MappedNetlist netlist;
  /// QoR of the plain mapping of the representative cone alone.
  MappedQor plain;
  /// QoR of the raw choice-aware mapping across all ring variants.
  MappedQor choice;
  /// True when the choice-aware cover was adopted.
  bool adopted_choice = false;
};

/// Map `caig` across its choice rings AND map its representative cone
/// plainly, then adopt the choice-aware cover only when it is no worse in
/// BOTH mapped area and mapped delay (a Pareto gate). Mapping is
/// delay-first, so extra choices can tighten the delay target at an area
/// price; the gate makes the choicemap stage monotone — choices can only
/// help, never hurt — the same role gating plays for the resynthesis
/// rounds. Both runs share the matcher, workspace, reference estimates and
/// tie-breaking, so the comparison isolates the rings themselves.
ChoiceMapOutcome map_with_choices_gated(const ChoiceAig& caig,
                                        const Matcher& matcher,
                                        const MapperParams& params = {},
                                        MapperWorkspace* workspace = nullptr);

/// Result of one gated choice-aware LUT mapping (map_luts_with_choices_gated).
struct LutChoiceOutcome {
  /// The adopted cover: the choice-aware one, or the plain fallback.
  LutNetwork network;
  /// QoR of the plain LUT mapping of the representative cone alone.
  LutQor plain;
  /// QoR of the raw choice-aware LUT mapping across all ring variants.
  LutQor choice;
  /// True when the choice-aware cover was adopted.
  bool adopted_choice = false;
};

/// LUT-backend counterpart of map_with_choices_gated: map `caig` across its
/// choice rings AND map its representative cone plainly, then adopt the
/// choice-aware cover only when it is no worse in BOTH LUT count and LUT
/// depth (the same Pareto gate, on exact integer costs). Both runs share
/// the workspace and the identical selection DP, so the comparison
/// isolates the rings themselves. The optional pool parallelizes cut
/// enumeration only (bit-identical results, see aig/cut.hpp).
LutChoiceOutcome map_luts_with_choices_gated(const ChoiceAig& caig,
                                             const LutMapperParams& params = {},
                                             LutWorkspace* workspace = nullptr,
                                             ThreadPool* pool = nullptr);

}  // namespace emorphic
