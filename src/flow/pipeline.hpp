#pragma once
// Composable flow pipeline — the public seam every E-morphic flow hangs off.
//
// The paper's Fig. 5 flow (tech-independent optimization -> direct DAG-to-DAG
// conversion -> equality saturation -> parallel SA extraction -> mapping ->
// CEC) is expressed as a sequence of `Stage` objects threaded through a
// shared `FlowContext`. A `Pipeline` is an ordered list of stages; running it
// produces a `FlowResult` with per-stage telemetry. A `FlowObserver` receives
// begin/end events for the flow and each stage, plus fine-grained progress
// from the rewriting runner (per iteration) and the SA extractor (per move) —
// this subsumes the old hand-inserted timers behind `EmorphicBreakdown`.
//
// Stages are stateless and re-entrant: all mutable state lives in the
// FlowContext, so one Pipeline instance can drive many circuits concurrently
// (see flow/batch.hpp). Custom stages register under a name in the stage
// registry (`register_stage`) and can then be assembled by name.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cec/cec.hpp"
#include "egraph/runner.hpp"
#include "extract/sa_extractor.hpp"
#include "flow/choice_export.hpp"
#include "flow/conversion.hpp"
#include "mapper/tech_mapper.hpp"
#include "opt/fraig.hpp"
#include "opt/partition.hpp"
#include "opt/resyn.hpp"
#include "opt/sop_balance.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace emorphic {

/// Quality-prioritized cost model (Sec. III-C.2): a fast, rough technology
/// mapping; the mapped delay is the SA cost, area breaks ties.
///
/// The matcher (NPN canonization tables + match cache) is built once and
/// shared — it is thread-safe, so one evaluator instance serves all SA
/// chains concurrently; each calling thread maps through its own reusable
/// workspace, so steady-state evaluations perform no mapper allocation.
class MapQorEvaluator : public QorEvaluator {
 public:
  explicit MapQorEvaluator(const CellLibrary& library, double area_weight = 0.5)
      : MapQorEvaluator(std::make_shared<const Matcher>(library),
                        area_weight) {}

  /// Share a prebuilt matcher (e.g. FlowContext::shared_matcher(), or
  /// run_batch's per-batch instance) instead of canonizing the library anew.
  explicit MapQorEvaluator(std::shared_ptr<const Matcher> matcher,
                           double area_weight = 0.5)
      : QorEvaluator(area_weight), matcher_(std::move(matcher)) {
    // Reduced effort relative to the final map: fewer priority cuts and no
    // area recovery, trading accuracy for evaluation speed.
    params_.num_cuts = 4;
    params_.area_recovery = false;
  }

  Qor evaluate(const Aig& candidate) const override {
    thread_local MapperWorkspace workspace;
    MappedQor q = map_qor(candidate, *matcher_, params_, &workspace);
    return Qor{q.area, q.delay};
  }

  const CellLibrary& library() const { return matcher_->library(); }

 private:
  std::shared_ptr<const Matcher> matcher_;
  MapperParams params_;
};

/// Shared configuration for one flow run; defaults mirror the paper's
/// Sec. IV-A settings at laptop scale.
struct FlowParams {
  /// Standard-cell library used by mapping stages and the default SA
  /// cost model.
  const CellLibrary* library = &CellLibrary::asap7_like();
  unsigned rounds = 4;            // total optimization rounds
  /// Area term in the scalar flow cost (delay + weight*area): delay stays
  /// the primary objective, area breaks near-ties (see QorEvaluator::cost).
  double area_weight = 0.5;
  SopBalanceParams sop_balance;   // K=6, C=8
  MapperParams mapping;           // final map effort
  /// E-graph rewriting configuration (iteration/node caps, rule indexing,
  /// match_threads for the parallel match phase).
  RunnerParams rewrite;
  SaParams sa;                    // SA extraction parameters
  bool verify = true;             // cec the result against the input
  CecParams cec_params;
  /// SAT-sweeping configuration for the "fraig" stage (sim rounds, conflict
  /// limit, max class size, threads — see opt/fraig.hpp).
  FraigParams fraig;
  /// Opt-in fraig placement for the prebuilt flows: `fraig_pre` sweeps the
  /// input before any optimization, `fraig_post` sweeps the optimized
  /// network right before the final mapping. Honored by the
  /// `Pipeline::baseline(params)` / `Pipeline::emorphic(params)` factories
  /// (and therefore by `baseline_flow`/`emorphic_flow` and any `run_batch`
  /// over those pipelines); the no-argument factories keep the historical
  /// stage lists.
  bool fraig_pre = false;
  bool fraig_post = false;
  /// Choice export configuration for the "choicemap" stage: ring cap and
  /// SAT verification of every exported ring member (see
  /// flow/choice_export.hpp).
  ChoiceExportParams choice_export;
  /// Opt into choice-aware mapping in `Pipeline::emorphic(params)`: the
  /// backward EgraphConversion + final TechMap pair is replaced by the
  /// "choicemap" stage, which lowers the whole e-graph — the SA winner
  /// plus a ring of verified alternatives per class — and maps across all
  /// variants. `fraig_post` is ignored in this configuration (the network
  /// it would sweep is rebuilt from the e-graph inside the stage).
  bool use_choicemap = false;
  /// Opt into the k-LUT mapping backend (mapper/lut_mapper.hpp): the
  /// `baseline(params)`/`emorphic(params)` factories then end in the
  /// "lutmap" stage instead of the final cell mapping, and the flow's QoR
  /// reads LUT count (area) and LUT depth (delay). Combined with
  /// `use_choicemap`, lutmap consumes the e-graph directly and maps
  /// choice-aware across the verified rings (Pareto-gated, like
  /// choicemap).
  bool use_lutmap = false;
  /// LUT input cap K for the lutmap stage; must lie in [2, kMaxCutSize]
  /// — the stage (via map_to_luts) throws std::invalid_argument outside
  /// that range, and the service rejects it as BAD_PARAMS at submit time.
  unsigned lut_size = 6;
  /// Paranoia mode: re-validate every live structure (working AIG, e-graph,
  /// LUT network) with the deep validators of check/validators.hpp at every
  /// stage boundary — at *runtime*, in any build, unlike the
  /// EMORPHIC_CHECKS-gated internal call sites. A violation aborts the flow
  /// with a check::CheckError naming the stage and the offending
  /// node/class. Costs one full structure walk per stage; off by default.
  bool paranoia = false;
  /// Opt into windowed (partitioned) saturation in `Pipeline::emorphic
  /// (params)`: the whole-circuit conversion/rewrite/extract body is
  /// replaced by the "partition" stage (opt/partition.hpp), which
  /// decomposes the circuit into bounded fanin-cone windows, saturates
  /// each on the batch workers, CEC-gates every adopted window and
  /// stitches them back. The scaling mode for circuits too large for one
  /// e-graph. `fraig_post` becomes the per-window SAT sweep; mapping
  /// stages are skipped (the partitioned flow reports structure QoR).
  bool partition = false;
  /// Maximum AND nodes per window for the partition stage.
  std::uint32_t window_size = 1000;
  /// Checkpoint file for crash-safe resume; empty disables checkpointing.
  /// With `partition`, holds per-chunk window results ("EMPC"); otherwise
  /// the Rewrite stage snapshots the e-graph after every saturation
  /// iteration ("EMCK") and resumes from it bit-identically. CLI/test
  /// surface only — the synthesis service deliberately does not expose it
  /// (clients must not name server-side paths).
  std::string checkpoint_path;
};

/// Quality-of-result summary of a finished flow.
struct FlowQor {
  double area = 0.0;       // µm²
  double delay = 0.0;      // ps
  std::uint32_t lev = 0;   // AIG levels before the final mapping
  double seconds = 0.0;    // optimization runtime (verification excluded)
};

/// Wall-clock record of one executed stage.
struct StageTelemetry {
  std::string name;        // Stage::name() of the stage that ran
  std::size_t index = 0;   // position in the pipeline
  double seconds = 0.0;
};

/// Per-stage wall-clock telemetry of one pipeline run.
struct FlowTelemetry {
  std::vector<StageTelemetry> stages;  // in execution order
  double total_seconds = 0.0;          // whole pipeline, including observers

  /// Total seconds of every executed stage with this name (a stage class can
  /// appear several times, e.g. EgraphConversion forward + backward).
  double seconds_for(std::string_view name) const {
    double sum = 0.0;
    for (const StageTelemetry& s : stages) {
      if (s.name == name) sum += s.seconds;
    }
    return sum;
  }
};

/// Which external stop signal a flow run observed (pipeline.hpp keeps the
/// name distinct from the saturation runner's StopReason). The service layer
/// reports this verbatim so clients can tell a client-driven cancellation
/// from an expired deadline.
enum class FlowStopReason {
  kNone = 0,    // no stop signal observed
  kCancelled,   // the external cancel flag was set
  kDeadline,    // the wall-clock time budget expired
};

const char* to_string(FlowStopReason reason);

/// Everything a finished pipeline produced. Fields that a pipeline's stages
/// never touch keep their defaults (e.g. `sa` for the baseline pipeline).
struct FlowResult {
  FlowQor qor;
  Aig final_aig;
  std::optional<MappedNetlist> netlist;
  /// The k-LUT cover when a "lutmap" stage ran (cell-mapping flows leave
  /// it empty, LUT flows leave `netlist` empty).
  std::optional<LutNetwork> lut_netlist;
  FlowTelemetry telemetry;
  RunnerReport rewrite_report;
  SaResult sa;
  /// Counters of the last executed "fraig" stage (all-zero otherwise).
  FraigStats fraig_stats;
  /// Counters of the last executed "choicemap" stage (all-zero otherwise).
  ChoiceExportStats choice_stats;
  /// Counters of the last executed "partition" stage (all-zero otherwise).
  PartitionStats partition_stats;
  std::size_t egraph_classes = 0;
  std::size_t egraph_enodes = 0;
  std::size_t initial_enodes = 0;
  CecStatus verify_status = CecStatus::kUndecided;
  /// True when stages were skipped (cancellation flag or time budget fired
  /// between stages). See `stop_reason` for which signal it was.
  bool cancelled = false;
  /// Which stop signal fired during the run, recorded at the first poll
  /// that observed it — including polls *inside* the final stage, so a run
  /// whose budget expired mid-TechMap reports kDeadline even though
  /// `cancelled` stays false (no stage was skipped, but the result may have
  /// been computed under a fired budget and should be treated accordingly).
  FlowStopReason stop_reason = FlowStopReason::kNone;
};

class Stage;
struct FlowContext;
class QorMemo;  // extract/qor_memo.hpp

/// Callback interface for flow progress. All methods have empty default
/// bodies — override what you need. When a pipeline runs inside run_batch,
/// one observer instance sees events from several circuits concurrently
/// (disambiguate with FlowContext::batch_index) and must be thread-safe.
class FlowObserver {
 public:
  virtual ~FlowObserver() = default;

  virtual void on_flow_begin(const FlowContext& /*ctx*/) {}
  virtual void on_stage_begin(const Stage& /*stage*/,
                              const FlowContext& /*ctx*/) {}
  virtual void on_stage_end(const Stage& /*stage*/,
                            const StageTelemetry& /*telemetry*/,
                            const FlowContext& /*ctx*/) {}
  /// One equality-saturation iteration finished (Rewrite stage).
  virtual void on_rewrite_iteration(const IterationStats& /*stats*/,
                                    const FlowContext& /*ctx*/) {}
  /// One annealing move was evaluated (SaExtract stage). Serialized by an
  /// internal mutex, but chains interleave nondeterministically.
  virtual void on_sa_move(const SaTracePoint& /*point*/,
                          const FlowContext& /*ctx*/) {}
  virtual void on_flow_end(const FlowContext& /*ctx*/) {}
};

/// Shared state threaded through the stages of one pipeline run. Configure
/// the members under "configuration", hand it to Pipeline::run(ctx), and
/// read the results back (or use the FlowResult returned by run).
struct FlowContext {
  // --- configuration -------------------------------------------------------
  FlowParams params;
  /// Per-run seed override for stochastic stages; 0 keeps params.sa.seed.
  /// run_batch derives a deterministic nonzero seed per circuit from it.
  std::uint64_t seed = 0;
  /// Cost-model override for SaExtract; null uses MapQorEvaluator over
  /// params.library (the paper's quality-prioritized mode).
  const QorEvaluator* evaluator = nullptr;
  FlowObserver* observer = nullptr;
  /// Shared worker pool, reserved for stages that fan work out. The batch
  /// driver keeps this null for its own pool: stages must not block on the
  /// pool that is running the pipeline itself.
  ThreadPool* pool = nullptr;
  /// External cancellation flag, polled between stages, between rewrite
  /// iterations, and between SA moves.
  std::atomic<bool>* cancel = nullptr;
  /// Optional shared QoR memo for the SA evaluator (extract/qor_memo.hpp),
  /// keyed by structural signature: repeated structures across runs skip
  /// technology mapping. Install one per cell library and per evaluator —
  /// the memo caches raw evaluator output, so mixing evaluators (or
  /// libraries) in one memo would serve wrong answers. `WarmCache::prepare`
  /// wires this for the batch driver and the synthesis service.
  QorMemo* qor_memo = nullptr;
  /// Wall-clock budget for the whole run; 0 = unlimited.
  double time_budget_s = 0.0;
  /// Index of this circuit within a run_batch call (0 otherwise).
  std::size_t batch_index = 0;
  /// Shared NPN matcher over params.library, used by every mapping stage
  /// and the default SA evaluator. Lazily built by shared_matcher();
  /// run_batch pre-seeds it so all workers share one instance (the matcher
  /// is thread-safe). Survives Pipeline::run's working-state reset — it is
  /// configuration-derived, and rebuilt only when the library changes.
  std::shared_ptr<const Matcher> matcher;
  /// Reusable mapper scratch for this context's stages (stages run on one
  /// thread; SA chains use their own thread-local workspaces).
  MapperWorkspace mapper_workspace;
  /// Reusable LUT-mapper scratch for the "lutmap" stage.
  LutWorkspace lut_workspace;

  /// The shared matcher for params.library, building (or replacing) it if
  /// needed.
  const std::shared_ptr<const Matcher>& shared_matcher() {
    if (matcher == nullptr || &matcher->library() != params.library) {
      matcher = std::make_shared<const Matcher>(*params.library);
    }
    return matcher;
  }

  // --- working state (stage inputs/outputs) --------------------------------
  Aig input;    // original circuit, kept pristine for verification
  Aig current;  // the network being transformed
  std::optional<CircuitEGraph> egraph;
  std::optional<MappedNetlist> netlist;
  /// Output of the "lutmap" stage (see FlowResult::lut_netlist).
  std::optional<LutNetwork> lut_netlist;
  /// True while `netlist` corresponds to `current` (stages that change
  /// `current` clear it, so TechMap knows when a remap is needed).
  bool netlist_is_current = false;
  /// True once SaExtract populated `sa` (EgraphConversion's backward pass
  /// falls back to greedy extraction otherwise).
  bool sa_valid = false;

  // --- results -------------------------------------------------------------
  FlowQor qor;
  RunnerReport rewrite_report;
  SaResult sa;
  FraigStats fraig_stats;
  ChoiceExportStats choice_stats;
  PartitionStats partition_stats;
  std::size_t egraph_classes = 0;
  std::size_t egraph_enodes = 0;
  std::size_t initial_enodes = 0;
  CecStatus verify_status = CecStatus::kUndecided;
  FlowTelemetry telemetry;
  /// Set by Pipeline::run when it skipped stages (cancellation flag or time
  /// budget fired between stages). A run whose every stage completed is not
  /// "cancelled" — but `stop_signal` still records a budget that expired
  /// during the final stage (FlowResult::stop_reason).
  bool stopped_early = false;
  /// First stop signal observed by any should_stop() poll this run —
  /// including polls inside stages (SA moves, rewrite iterations), so a
  /// deadline that fires during the final stage is still reported. Atomic:
  /// SA chains poll concurrently; the first recorded reason wins.
  mutable std::atomic<FlowStopReason> stop_signal{FlowStopReason::kNone};

  /// Restarted by Pipeline::run; the reference point for time_budget_s.
  Timer stopwatch;

  bool should_stop() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      note_stop(FlowStopReason::kCancelled);
      return true;
    }
    if (time_budget_s > 0.0 && stopwatch.seconds() > time_budget_s) {
      note_stop(FlowStopReason::kDeadline);
      return true;
    }
    return false;
  }

  /// Record the first observed stop signal (later signals are ignored:
  /// once one fired, every subsequent poll reports a stop anyway).
  void note_stop(FlowStopReason reason) const {
    FlowStopReason expected = FlowStopReason::kNone;
    stop_signal.compare_exchange_strong(expected, reason,
                                        std::memory_order_relaxed);
  }

  /// Move the result fields out. Pipeline::run re-initializes all working
  /// state from the configuration members, so a context can be reused for
  /// further runs after this.
  FlowResult take_result();
};

/// One step of a flow. Implementations must be stateless/re-entrant: run()
/// is const and may execute concurrently on different contexts.
class Stage {
 public:
  virtual ~Stage() = default;
  /// Stable display/registry name (also the telemetry key).
  virtual const char* name() const = 0;
  /// Execute the stage: read/write ctx's working state and result fields.
  virtual void run(FlowContext& ctx) const = 0;
};

using StagePtr = std::unique_ptr<Stage>;

// --- built-in stages (registry names match the class stem) ------------------

/// Gated ABC-style "(st; if -g)(st; dch; map)" rounds: a candidate round is
/// adopted only when its mapped cost improves on the incumbent. Leaves the
/// best network in ctx.current and its mapping in ctx.netlist.
class ResynRoundsStage : public Stage {
 public:
  enum class Rounds {
    kAll,         // run params.rounds rounds (the baseline flow)
    kAllButLast,  // leave the last round to a resynth-gated TechMap
  };
  explicit ResynRoundsStage(Rounds policy = Rounds::kAll) : policy_(policy) {}
  const char* name() const override { return "ResynRounds"; }
  void run(FlowContext& ctx) const override;

 private:
  Rounds policy_;
};

/// Direction-aware DAG-to-DAG conversion (Sec. III-D.1): forward
/// (ctx.current -> ctx.egraph) when no e-graph exists yet, backward
/// (ctx.egraph -> ctx.current) afterwards, using the SA winner when
/// SaExtract ran and greedy depth-cost extraction otherwise.
class EgraphConversionStage : public Stage {
 public:
  const char* name() const override { return "EgraphConversion"; }
  void run(FlowContext& ctx) const override;
};

/// A few equality-saturation iterations over ctx.egraph. An empty rule set
/// means the built-in make_logic_rules().
class RewriteStage : public Stage {
 public:
  RewriteStage() = default;
  explicit RewriteStage(std::vector<Rewrite> rules) : rules_(std::move(rules)) {}
  const char* name() const override { return "Rewrite"; }
  void run(FlowContext& ctx) const override;

 private:
  std::vector<Rewrite> rules_;
};

/// Parallel simulated-annealing extraction under ctx.evaluator (or the
/// default MapQorEvaluator). Stores the winner in ctx.sa; the circuit is
/// materialized by the following EgraphConversion (backward) stage.
class SaExtractStage : public Stage {
 public:
  const char* name() const override { return "SaExtract"; }
  void run(FlowContext& ctx) const override;
};

/// Final technology mapping. Reuses ctx.netlist when it is still current
/// (the gated rounds already mapped the winner); with `resynth_gate` it also
/// tries one dch-substitute resynthesis of ctx.current and keeps whichever
/// maps better (the E-morphic flow's final "(st; dch; map)" round).
class TechMapStage : public Stage {
 public:
  explicit TechMapStage(bool resynth_gate = false)
      : resynth_gate_(resynth_gate) {}
  const char* name() const override { return "TechMap"; }
  void run(FlowContext& ctx) const override;

 private:
  bool resynth_gate_;
};

/// SAT-backed combinational equivalence check of ctx.current against
/// ctx.input (no-op unless params.verify). Its runtime is excluded from
/// FlowQor::seconds, matching the legacy flows.
class CecStage : public Stage {
 public:
  const char* name() const override { return "Cec"; }
  void run(FlowContext& ctx) const override;
};

/// SAT sweeping of ctx.current (see opt/fraig.hpp): merges
/// proven-equivalent nodes, invalidating any mapped netlist. Configured by
/// FlowParams::fraig; stats land in FlowResult::fraig_stats. Registered
/// under the ABC-style lowercase name "fraig".
class FraigStage : public Stage {
 public:
  const char* name() const override { return "fraig"; }
  void run(FlowContext& ctx) const override;
};

/// Choice-aware technology mapping of ctx.egraph (Sec. I, insight 1 pushed
/// into the mapper): exports the e-graph as a choice-annotated AIG under
/// the SA winner (greedy depth extraction when SaExtract did not run),
/// with a SAT-verified ring of alternative structures per class, and maps
/// across all variants (flow/choice_export.hpp, choice-aware
/// map_to_cells). The cross-variant cover is Pareto-gated against the
/// plain mapping of the committed extraction (map_with_choices_gated), so
/// the stage is monotone: choices can only improve the netlist. Subsumes
/// the backward EgraphConversion *and* the final TechMap: ctx.current
/// becomes the plain extraction, ctx.netlist the gated choice-aware
/// mapping of it. Configured by FlowParams::choice_export; stats land in
/// FlowResult::choice_stats. Registered as "choicemap".
class ChoiceMapStage : public Stage {
 public:
  const char* name() const override { return "choicemap"; }
  void run(FlowContext& ctx) const override;
};

/// k-LUT technology mapping of ctx.current (mapper/lut_mapper.hpp): the
/// FPGA-flavored final stage. The cover lands in ctx.lut_netlist and the
/// flow QoR becomes LUT count (area) and LUT depth (delay); any cell
/// netlist is cleared (the two backends are mutually exclusive outputs of
/// one run). When ctx.egraph exists and params.use_choicemap is set, the
/// stage subsumes the backward conversion like choicemap does: ctx.current
/// becomes the committed extraction and the cover is the Pareto-gated
/// choice-aware LUT mapping across the verified rings
/// (map_luts_with_choices_gated). Configured by FlowParams::lut_size;
/// registered as "lutmap". Every cover is CEC-proven against the stage
/// input by the stage-equivalence gate
/// (tests/integration/test_stage_equivalence.cpp).
class LutMapStage : public Stage {
 public:
  const char* name() const override { return "lutmap"; }
  void run(FlowContext& ctx) const override;
};

/// Windowed saturation of ctx.current (opt/partition.hpp): decompose into
/// bounded fanin-cone windows, saturate/extract each window on a nested
/// run_batch, SAT-gate every adopted window, stitch the results back.
/// Configured by FlowParams::{window_size, checkpoint_path}; the per-window
/// flow inherits params.rewrite, params.fraig (placed by fraig_post) and
/// params.cec_params for the window gate. Stats land in
/// FlowResult::partition_stats. When the external cancel flag stops the
/// nested batch between chunks, ctx.current is left untouched (progress
/// persists in the checkpoint file, not the context). Registered as
/// "partition".
class PartitionStage : public Stage {
 public:
  const char* name() const override { return "partition"; }
  void run(FlowContext& ctx) const override;
};

// --- stage registry ---------------------------------------------------------

using StageFactory = std::function<StagePtr()>;

/// Register a factory under `name` (overwrites an existing entry); returns
/// true when the name was new. The built-in stages are pre-registered.
bool register_stage(const std::string& name, StageFactory factory);

/// Instantiate a registered stage; throws std::invalid_argument (listing the
/// known names) when `name` is unknown.
StagePtr make_stage(const std::string& name);

std::vector<std::string> registered_stage_names();

// --- the pipeline -----------------------------------------------------------

/// An ordered list of stages; cheap to copy, safe to run concurrently on
/// different contexts (stages are stateless by contract).
class Pipeline {
 public:
  Pipeline() = default;

  /// Append a stage instance; returns *this for chaining.
  Pipeline& add(StagePtr stage);
  /// Append a stage by registry name (see register_stage).
  Pipeline& add(const std::string& registered_name);

  /// Number of stages.
  std::size_t size() const { return stages_.size(); }
  /// The stages, in execution order.
  const std::vector<std::shared_ptr<const Stage>>& stages() const {
    return stages_;
  }
  /// Stage::name() of every stage, in execution order.
  std::vector<std::string> stage_names() const;

  /// Run every stage in order on a caller-prepared context (full control:
  /// seed, evaluator, observer, cancellation, time budget). Stops early when
  /// ctx.should_stop() fires between stages.
  FlowResult run(FlowContext& ctx) const;

  /// Convenience wrapper over a fresh context.
  FlowResult run(const Aig& input, const FlowParams& params = {},
                 FlowObserver* observer = nullptr) const;

  /// The conventional delay-oriented flow of [22]:
  /// ResynRounds; TechMap.
  static Pipeline baseline();

  /// The paper's Fig. 5 flow: ResynRounds (all but the last round);
  /// EgraphConversion (fwd); Rewrite; SaExtract; EgraphConversion (bwd);
  /// TechMap (resynth-gated final round); Cec.
  static Pipeline emorphic();

  /// baseline()/emorphic() with the opt-in placements applied:
  /// `params.fraig_pre` inserts a "fraig" stage before everything,
  /// `params.fraig_post` right before the final TechMap, and
  /// `params.use_choicemap` (emorphic only) swaps the backward
  /// EgraphConversion + TechMap pair for the choice-aware "choicemap"
  /// stage. `params.use_lutmap` swaps the final cell mapping for the
  /// "lutmap" stage (combined with use_choicemap, one lutmap stage
  /// consumes the e-graph choice-aware). With all flags false these
  /// return the plain pipelines.
  static Pipeline baseline(const FlowParams& params);
  static Pipeline emorphic(const FlowParams& params);

 private:
  // Shared (not unique) so a Pipeline is cheap to copy and one instance can
  // serve concurrent run() calls; stages are stateless by contract.
  std::vector<std::shared_ptr<const Stage>> stages_;
};

}  // namespace emorphic
