#pragma once
// Batched multi-circuit driver: fan a set of circuits out over a worker
// pool, running the same Pipeline on each with a deterministic per-circuit
// seed. This is the serving seam for the production north star — one
// pipeline definition, many circuits, reproducible results regardless of
// how many workers happen to be available.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "flow/pipeline.hpp"
#include "flow/warm_cache.hpp"

namespace emorphic {

struct BatchParams {
  /// Worker threads fanning circuits out; 0 = hardware concurrency. Inner
  /// SA threads multiply with this, so batches of many circuits usually
  /// pair num_threads = cores with sa_threads = 1.
  unsigned num_threads = 0;
  /// Per-circuit seeds are derived deterministically from this (splitmix64
  /// of base_seed and the circuit index), so the same batch always produces
  /// the same FlowQor per circuit, whatever the worker count.
  std::uint64_t base_seed = 1;
  /// Override of FlowParams.sa.num_threads per circuit; 0 keeps the
  /// pipeline's setting. This is the explicit home of the thread bump the
  /// optimize() facade used to apply silently in runtime-prioritized mode.
  unsigned sa_threads = 0;
  /// Override of FlowParams.rewrite.match_threads per circuit; 0 keeps the
  /// pipeline's setting. Like SA threads, inner match threads multiply with
  /// num_threads, so large batches usually keep this at 1.
  unsigned match_threads = 0;
  /// Wall-clock budget per circuit; 0 = unlimited. Over-budget circuits
  /// stop between stages and report FlowResult::cancelled.
  double time_budget_s = 0.0;
  /// Shared cancellation flag for the whole batch (polled per stage/move).
  std::atomic<bool>* cancel = nullptr;
  /// Optional long-lived cache substrate (flow/warm_cache.hpp). When set,
  /// the batch reuses its shared matcher and cross-run QoR memo instead of
  /// building per-batch state, so consecutive batches (and the synthesis
  /// service, which shares the same object) start warm. Results are
  /// unchanged — see warm_cache.hpp for why sharing is sound. The batch
  /// driver never consults the flow-result cache layer.
  WarmCache* warm_cache = nullptr;
};

struct BatchResult {
  std::vector<FlowResult> results;  // one per input, in input order
  double seconds = 0.0;             // wall clock for the whole batch
};

/// Run `pipeline` on every circuit in `inputs` with shared `params`. The
/// observer (optional) receives events from all circuits concurrently and
/// must be thread-safe; FlowContext::batch_index identifies the circuit.
BatchResult run_batch(std::span<const Aig> inputs, const Pipeline& pipeline,
                      const FlowParams& params, const BatchParams& batch = {},
                      FlowObserver* observer = nullptr);

}  // namespace emorphic
