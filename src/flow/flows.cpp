#include "flow/flows.hpp"

#include "egraph/rules.hpp"
#include "util/timer.hpp"

namespace emorphic {

namespace {

/// One "(st; if -g)(st; dch; ...)" tech-independent round. Alternating the
/// pass order across rounds explores different structures, mirroring how
/// ABC's choice-based rounds see multiple networks.
Aig optimize_round(const Aig& aig, const FlowParams& params, unsigned round) {
  Aig cur = strash(aig);
  if (round % 2 == 0) {
    cur = sop_balance(strash(dch_substitute(cur)), params.sop_balance);
  } else {
    cur = dch_substitute(strash(sop_balance(cur, params.sop_balance)));
  }
  return cur;
}

/// Gated round loop: a candidate is adopted only when its mapped delay
/// (area as tie-break) improves on the incumbent. ABC's script tolerates
/// per-round regressions because `dch` keeps the previous structure alive
/// as choices; without choices, gating plays that role and keeps the
/// baseline a monotone, competitive delay flow (DESIGN.md, Substitutions).
struct GatedFlowState {
  Aig best_aig;
  std::optional<MappedNetlist> best_netlist;
  double best_delay = 0.0;
  double best_area = 0.0;
};

GatedFlowState run_gated_rounds(const Aig& input, const FlowParams& params) {
  GatedFlowState state;
  state.best_aig = strash(input);
  state.best_netlist =
      map_to_cells(state.best_aig, *params.library, params.mapping);
  state.best_delay = state.best_netlist->delay();
  state.best_area = state.best_netlist->area();

  auto cost = [&](double delay, double area) {
    return delay + params.area_weight * area;
  };
  Aig cur = state.best_aig;
  for (unsigned round = 0; round < params.rounds; ++round) {
    cur = optimize_round(cur, params, round);
    MappedNetlist netlist = map_to_cells(cur, *params.library, params.mapping);
    double delay = netlist.delay();
    double area = netlist.area();
    if (cost(delay, area) < cost(state.best_delay, state.best_area)) {
      state.best_aig = cur;
      state.best_netlist = std::move(netlist);
      state.best_delay = delay;
      state.best_area = area;
    }
  }
  return state;
}

}  // namespace

BaselineResult baseline_flow(const Aig& input, const FlowParams& params) {
  Timer timer;
  GatedFlowState state = run_gated_rounds(input, params);
  BaselineResult result{FlowQor{}, state.best_aig, std::move(state.best_netlist)};
  result.qor.area = state.best_area;
  result.qor.delay = state.best_delay;
  result.qor.lev = result.final_aig.num_levels();
  result.qor.seconds = timer.seconds();
  return result;
}

EmorphicResult emorphic_flow(const Aig& input, const FlowParams& params,
                             const QorEvaluator* evaluator) {
  MapQorEvaluator default_evaluator(*params.library, params.area_weight);
  if (evaluator == nullptr) evaluator = &default_evaluator;

  Timer total;
  EmorphicResult result;
  Timer stage;

  // Rounds 1..N-1 of the conventional flow (gated, as in baseline_flow).
  FlowParams pre_params = params;
  pre_params.rounds = params.rounds > 0 ? params.rounds - 1 : 0;
  GatedFlowState pre = run_gated_rounds(input, pre_params);
  Aig cur = pre.best_aig;
  result.breakdown.flow_seconds += stage.seconds();

  // Direct DAG-to-DAG conversion (forward).
  stage.restart();
  CircuitEGraph ce = aig_to_egraph(cur);
  result.initial_enodes = ce.egraph.num_enodes();
  result.breakdown.conversion_seconds += stage.seconds();

  // Few iterations of equality saturation (Sec. I insight 1: a handful of
  // non-destructive rounds already yields a rich choice space).
  stage.restart();
  static const std::vector<Rewrite> rules = make_logic_rules();
  result.rewrite_report = run_rewriting(ce.egraph, rules, params.rewrite);
  result.egraph_classes = ce.egraph.num_classes();
  result.egraph_enodes = ce.egraph.num_enodes();
  result.breakdown.rewrite_seconds += stage.seconds();

  // Parallel SA extraction under the QoR cost model.
  stage.restart();
  result.sa = sa_extract(ce.egraph, ce.roots, ce.pi_names, *evaluator,
                         params.sa);
  result.breakdown.sa_seconds += stage.seconds();

  // Backward conversion of the winning solution.
  stage.restart();
  Aig chosen = egraph_to_aig(ce, result.sa.best);
  result.breakdown.conversion_seconds += stage.seconds();

  // Final (st; dch; map) round on the chosen structure. SA already
  // optimized the mapped delay of `chosen`, so the resynthesis is gated the
  // same way the earlier rounds are.
  stage.restart();
  Aig chosen_st = strash(chosen);
  MappedNetlist netlist =
      map_to_cells(chosen_st, *params.library, params.mapping);
  Aig final_aig = chosen_st;
  Aig resynth = dch_substitute(chosen_st);
  MappedNetlist netlist2 =
      map_to_cells(resynth, *params.library, params.mapping);
  if (netlist2.delay() + params.area_weight * netlist2.area() <
      netlist.delay() + params.area_weight * netlist.area()) {
    netlist = std::move(netlist2);
    final_aig = resynth;
  }
  result.breakdown.flow_seconds += stage.seconds();

  result.final_aig = final_aig;
  result.qor.area = netlist.area();
  result.qor.delay = netlist.delay();
  result.qor.lev = final_aig.num_levels();
  result.netlist = std::move(netlist);
  result.qor.seconds = total.seconds();

  if (params.verify) {
    result.verify_status = cec(input, final_aig, params.cec_params).status;
  }
  return result;
}

}  // namespace emorphic
