#include "flow/flows.hpp"

namespace emorphic {

EmorphicBreakdown breakdown_from(const FlowTelemetry& telemetry) {
  EmorphicBreakdown breakdown;
  breakdown.flow_seconds =
      telemetry.seconds_for("ResynRounds") + telemetry.seconds_for("TechMap");
  breakdown.conversion_seconds = telemetry.seconds_for("EgraphConversion");
  breakdown.rewrite_seconds = telemetry.seconds_for("Rewrite");
  breakdown.sa_seconds = telemetry.seconds_for("SaExtract");
  return breakdown;
}

BaselineResult baseline_flow(const Aig& input, const FlowParams& params) {
  FlowResult flow = Pipeline::baseline(params).run(input, params);
  BaselineResult result;
  result.qor = flow.qor;
  result.final_aig = std::move(flow.final_aig);
  result.netlist = std::move(flow.netlist);
  return result;
}

EmorphicResult emorphic_flow(const Aig& input, const FlowParams& params,
                             const QorEvaluator* evaluator) {
  FlowContext ctx;
  ctx.params = params;
  ctx.input = input;
  ctx.evaluator = evaluator;
  FlowResult flow = Pipeline::emorphic(params).run(ctx);

  EmorphicResult result;
  result.qor = flow.qor;
  result.final_aig = std::move(flow.final_aig);
  result.netlist = std::move(flow.netlist);
  result.breakdown = breakdown_from(flow.telemetry);
  result.rewrite_report = std::move(flow.rewrite_report);
  result.egraph_classes = flow.egraph_classes;
  result.egraph_enodes = flow.egraph_enodes;
  result.initial_enodes = flow.initial_enodes;
  result.verify_status = flow.verify_status;
  result.sa = std::move(flow.sa);
  return result;
}

}  // namespace emorphic
