#pragma once
// Legacy end-to-end flow entry points (Sec. IV-C), kept for back-compat as
// thin shims over the composable pipeline API in flow/pipeline.hpp:
//
//  baseline: [(st; if -g -K 6 -C 8)(st; dch; map)] x 4
//            — the competitive delay-oriented flow of [22] the paper
//              compares against; equivalent to Pipeline::baseline().
//  E-morphic: the same for 3 rounds, then e-graph resynthesis (direct
//            conversion -> few rewriting iterations -> parallel SA
//            extraction under a QoR cost model) feeding the final
//            (st; dch; map) round; equivalent to Pipeline::emorphic().
//
// New code should prefer Pipeline directly: it exposes per-stage telemetry,
// observers, cancellation, time budgets, and batching (flow/batch.hpp).
// FlowParams, FlowQor, and MapQorEvaluator live in pipeline.hpp now; this
// header re-exports them by inclusion.

#include <optional>

#include "flow/pipeline.hpp"

namespace emorphic {

struct BaselineResult {
  FlowQor qor;
  Aig final_aig;  // tech-independent network entering the final map
  std::optional<MappedNetlist> netlist;
};

/// Fig. 9's runtime decomposition. Derived from FlowTelemetry these days —
/// see breakdown_from() — and kept because the benches and older callers
/// speak this shape.
struct EmorphicBreakdown {
  double flow_seconds = 0.0;        // conventional optimization + mapping
  double conversion_seconds = 0.0;  // DAG-to-DAG conversion (fwd + bwd)
  double rewrite_seconds = 0.0;     // equality saturation
  double sa_seconds = 0.0;          // SA extraction incl. QoR evaluations
};

/// Fold per-stage telemetry into the Fig. 9 buckets: ResynRounds + TechMap
/// count as the conventional flow, both EgraphConversion runs as conversion,
/// Rewrite and SaExtract as themselves; Cec is excluded.
EmorphicBreakdown breakdown_from(const FlowTelemetry& telemetry);

struct EmorphicResult {
  FlowQor qor;
  Aig final_aig;
  std::optional<MappedNetlist> netlist;
  EmorphicBreakdown breakdown;
  RunnerReport rewrite_report;
  std::size_t egraph_classes = 0;
  std::size_t egraph_enodes = 0;
  std::size_t initial_enodes = 0;
  CecStatus verify_status = CecStatus::kUndecided;
  SaResult sa;
};

/// The conventional delay-oriented flow of [22].
BaselineResult baseline_flow(const Aig& input, const FlowParams& params);

/// The E-morphic flow with a caller-supplied cost model (exact mapper or
/// ML); when `evaluator` is null a MapQorEvaluator over params.library is
/// used (the paper's quality-prioritized mode).
EmorphicResult emorphic_flow(const Aig& input, const FlowParams& params,
                             const QorEvaluator* evaluator = nullptr);

}  // namespace emorphic
