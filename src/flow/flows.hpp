#pragma once
// End-to-end synthesis flows (Sec. IV-C):
//
//  baseline: [(st; if -g -K 6 -C 8)(st; dch; map)] x 4
//            — the competitive delay-oriented flow of [22] the paper
//              compares against;
//  E-morphic: the same for 3 rounds, then e-graph resynthesis (direct
//            conversion -> few rewriting iterations -> parallel SA
//            extraction under a QoR cost model) feeding the final
//            (st; dch; map) round.

#include <optional>

#include "cec/cec.hpp"
#include "egraph/runner.hpp"
#include "extract/sa_extractor.hpp"
#include "flow/conversion.hpp"
#include "mapper/tech_mapper.hpp"
#include "opt/resyn.hpp"
#include "opt/sop_balance.hpp"

namespace emorphic {

/// Quality-prioritized cost model (Sec. III-C.2): a fast, rough technology
/// mapping; the mapped delay is the SA cost, area breaks ties.
class MapQorEvaluator : public QorEvaluator {
 public:
  explicit MapQorEvaluator(const CellLibrary& library, double area_weight = 0.5)
      : QorEvaluator(area_weight), library_(&library) {
    // Reduced effort relative to the final map: fewer priority cuts and no
    // area recovery, trading accuracy for evaluation speed.
    params_.num_cuts = 4;
    params_.area_recovery = false;
  }

  Qor evaluate(const Aig& candidate) const override {
    MappedQor q = map_qor(candidate, *library_, params_);
    return Qor{q.area, q.delay};
  }

 private:
  const CellLibrary* library_;
  MapperParams params_;
};

struct FlowParams {
  const CellLibrary* library = &CellLibrary::asap7_like();
  unsigned rounds = 4;            // total optimization rounds
  /// Area term in the scalar flow cost (delay + weight*area): delay stays
  /// the primary objective, area breaks near-ties (see QorEvaluator::cost).
  double area_weight = 0.5;
  SopBalanceParams sop_balance;   // K=6, C=8
  MapperParams mapping;           // final map effort
  RunnerLimits rewrite;           // e-graph rewriting limits (5 iterations)
  SaParams sa;                    // SA extraction parameters
  bool verify = true;             // cec the result against the input
  CecParams cec_params;
};

struct FlowQor {
  double area = 0.0;       // µm²
  double delay = 0.0;      // ps
  std::uint32_t lev = 0;   // AIG levels before the final mapping
  double seconds = 0.0;    // total runtime
};

struct BaselineResult {
  FlowQor qor;
  Aig final_aig;  // tech-independent network entering the final map
  std::optional<MappedNetlist> netlist;
};

/// Fig. 9's runtime decomposition.
struct EmorphicBreakdown {
  double flow_seconds = 0.0;        // conventional optimization + mapping
  double conversion_seconds = 0.0;  // DAG-to-DAG conversion (fwd + bwd)
  double rewrite_seconds = 0.0;     // equality saturation
  double sa_seconds = 0.0;          // SA extraction incl. QoR evaluations
};

struct EmorphicResult {
  FlowQor qor;
  Aig final_aig;
  std::optional<MappedNetlist> netlist;
  EmorphicBreakdown breakdown;
  RunnerReport rewrite_report;
  std::size_t egraph_classes = 0;
  std::size_t egraph_enodes = 0;
  std::size_t initial_enodes = 0;
  CecStatus verify_status = CecStatus::kUndecided;
  SaResult sa;
};

/// The conventional delay-oriented flow of [22].
BaselineResult baseline_flow(const Aig& input, const FlowParams& params);

/// The E-morphic flow with a caller-supplied cost model (exact mapper or
/// ML); when `evaluator` is null a MapQorEvaluator over params.library is
/// used (the paper's quality-prioritized mode).
EmorphicResult emorphic_flow(const Aig& input, const FlowParams& params,
                             const QorEvaluator* evaluator = nullptr);

}  // namespace emorphic
