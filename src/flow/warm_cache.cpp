#include "flow/warm_cache.hpp"

#include "aig/signature.hpp"

namespace emorphic {

namespace {

/// splitmix64 (Vigna) — the same mixer the batch driver derives per-circuit
/// seeds with; here it decorrelates the key components so (input, seed,
/// params) triples spread uniformly.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::shared_ptr<const Matcher> WarmCache::matcher_for(
    const CellLibrary& library) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [lib, matcher] : matchers_) {
      if (lib == &library) return matcher;
    }
  }
  // Canonize outside the lock: a Matcher build is the expensive part, and
  // two racers building the same library both produce correct instances —
  // the first insert wins and the loser's build is dropped.
  auto built = std::make_shared<const Matcher>(library);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [lib, matcher] : matchers_) {
    if (lib == &library) return matcher;
  }
  matchers_.emplace_back(&library, built);
  return built;
}

void WarmCache::prepare(FlowContext& ctx) {
  ctx.matcher = matcher_for(*ctx.params.library);
  if (ctx.params.library == library_ && ctx.evaluator == nullptr) {
    ctx.qor_memo = &qor_memo_;
  }
}

std::uint64_t WarmCache::flow_key(const Aig& input, std::uint64_t seed,
                                  std::uint64_t params_fingerprint) {
  std::uint64_t key = splitmix64(structural_signature(input));
  key = splitmix64(key ^ splitmix64(seed));
  key = splitmix64(key ^ splitmix64(params_fingerprint));
  return key;
}

bool WarmCache::lookup_flow(std::uint64_t key, CachedFlow* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    ++flow_misses_;
    return false;
  }
  ++flow_hits_;
  *out = it->second;
  return true;
}

void WarmCache::insert_flow(std::uint64_t key, CachedFlow cached) {
  std::lock_guard<std::mutex> lock(mutex_);
  flows_.emplace(key, std::move(cached));
}

WarmCacheStats WarmCache::stats() const {
  WarmCacheStats stats;
  stats.qor_hits = qor_memo_.hits();
  stats.qor_misses = qor_memo_.misses();
  stats.qor_entries = qor_memo_.size();
  std::lock_guard<std::mutex> lock(mutex_);
  stats.result_hits = flow_hits_;
  stats.result_misses = flow_misses_;
  stats.result_entries = flows_.size();
  stats.matchers = matchers_.size();
  return stats;
}

void WarmCache::clear() {
  qor_memo_.clear();
  std::lock_guard<std::mutex> lock(mutex_);
  matchers_.clear();
  flows_.clear();
  flow_hits_ = 0;
  flow_misses_ = 0;
}

}  // namespace emorphic
