#pragma once
// The warm-cache substrate a long-running synthesis process keeps alive
// across flow runs — extracted from what run_batch used to pre-seed inline
// (one shared NPN matcher per batch), so the CLI batch driver and the
// synthesis service (src/service/) now share one implementation.
//
// Three layers, coldest to warmest:
//
//  1. matcher_for(library): NPN canonization tables + match cache for a cell
//     library, built once and shared (the Matcher is immutable-after-ctor
//     and thread-safe since PR 3). The match cache itself warms as flows
//     run, so even *distinct* circuits benefit.
//  2. qor_memo(): evaluator results keyed by structural signature
//     (extract/qor_memo.hpp), shared across every SA extraction. Repeated
//     structures — identical circuits, or different circuits converging on
//     the same substructures — skip technology mapping entirely.
//  3. the flow-result cache: complete FlowQor + final AIG keyed by
//     (input signature, seed, params fingerprint). A repeated request is
//     answered without running the flow at all. Opt-in per lookup — the
//     service uses it; run_batch deliberately does not (a batch is usually
//     distinct circuits, and callers expect fresh telemetry).
//
// Sharing any layer never changes results: the matcher is a pure function
// of the library, the QoR memo caches a deterministic evaluator's own
// answers, and the result cache is keyed by everything a deterministic flow
// depends on. The determinism gate in tests/service/test_warm_cache.cpp
// holds N concurrent flows through one WarmCache bit-identical to serial.
//
// One WarmCache serves ONE cell library's QoR memo (the structural
// signature does not encode the library). prepare() installs the memo only
// when the context's library matches and no custom evaluator overrides the
// default MapQorEvaluator; the matcher layer is per-library and always
// installed.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "extract/qor_memo.hpp"
#include "flow/pipeline.hpp"

namespace emorphic {

/// Telemetry snapshot (BENCH_service.json reports these as hit rates).
struct WarmCacheStats {
  std::uint64_t qor_hits = 0;
  std::uint64_t qor_misses = 0;
  std::uint64_t result_hits = 0;
  std::uint64_t result_misses = 0;
  std::size_t qor_entries = 0;
  std::size_t result_entries = 0;
  std::size_t matchers = 0;  // distinct libraries canonized
};

/// What the flow-result cache stores: enough to answer a service request
/// (QoR, the optimized network, the verification verdict) without the
/// mapped netlist (responses ship the AIG as AIGER text).
struct CachedFlow {
  FlowQor qor;
  Aig final_aig;
  CecStatus verify_status = CecStatus::kUndecided;
};

class WarmCache {
 public:
  explicit WarmCache(const CellLibrary& library = CellLibrary::asap7_like())
      : library_(&library) {}

  WarmCache(const WarmCache&) = delete;
  WarmCache& operator=(const WarmCache&) = delete;

  /// The library whose QoR memo this cache owns.
  const CellLibrary& library() const { return *library_; }

  /// The shared matcher for `library`, canonizing it on first use. Safe to
  /// call concurrently; all callers get the same instance.
  std::shared_ptr<const Matcher> matcher_for(const CellLibrary& library);

  /// The shared cross-run QoR memo (see sharing discipline above).
  QorMemo& qor_memo() { return qor_memo_; }

  /// Install the warm layers into a flow context: the shared matcher
  /// always; the QoR memo only when ctx uses this cache's library and the
  /// default evaluator (a custom evaluator's answers must not mix in).
  void prepare(FlowContext& ctx);

  // --- flow-result cache -----------------------------------------------

  /// Cache key of a deterministic flow run: the input's structural
  /// signature, the seed, and a caller-provided fingerprint of everything
  /// else that shapes the result (params + pipeline identity).
  static std::uint64_t flow_key(const Aig& input, std::uint64_t seed,
                                std::uint64_t params_fingerprint);

  /// Look a finished flow up; counts hits/misses.
  bool lookup_flow(std::uint64_t key, CachedFlow* out);

  /// Store a finished flow (first writer wins on duplicate keys — both
  /// wrote the same deterministic result anyway).
  void insert_flow(std::uint64_t key, CachedFlow cached);

  WarmCacheStats stats() const;

  /// Drop every layer (matchers, QoR memo, results) and reset counters.
  void clear();

 private:
  const CellLibrary* library_;

  mutable std::mutex mutex_;
  // A handful of libraries at most: linear scan beats hashing pointers.
  std::vector<std::pair<const CellLibrary*, std::shared_ptr<const Matcher>>>
      matchers_;
  std::unordered_map<std::uint64_t, CachedFlow> flows_;
  std::uint64_t flow_hits_ = 0;
  std::uint64_t flow_misses_ = 0;

  QorMemo qor_memo_;
};

}  // namespace emorphic
