#pragma once
// Direct DAG-to-DAG conversion between circuits and e-graphs (Sec. III-D.1,
// Fig. 8): every AIG node becomes exactly one e-node referenced by id, so
// conversion is linear in circuit size — no S-expression flattening, no
// duplication of shared logic. This is the enabling step that lets
// E-morphic apply equality saturation to 10^5-node circuits (Table III).

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "egraph/egraph.hpp"
#include "egraph/serialize.hpp"
#include "extract/extractor.hpp"

namespace emorphic {

/// An e-graph bound to a circuit interface: designated root classes (one
/// per PO, with complement flags) and PI names indexed by kVar symbol.
struct CircuitEGraph {
  EGraph egraph;
  std::vector<SerializedRoot> roots;
  std::vector<std::string> pi_names;

  /// Serialize to the Fig. 7 intermediate DSL.
  std::string to_dsl() const { return egraph_to_dsl(egraph, roots, pi_names); }
};

/// Forward conversion (circuit -> e-graph), linear time.
CircuitEGraph aig_to_egraph(const Aig& aig);

/// Backward conversion (e-graph -> circuit) under a given extraction.
Aig egraph_to_aig(const CircuitEGraph& ce, const Extraction& solution);

/// Convenience backward conversion with greedy extraction.
Aig egraph_to_aig_greedy(const CircuitEGraph& ce,
                         CostKind kind = CostKind::kSize);

/// Rebuild a CircuitEGraph from the Fig. 7 DSL text.
CircuitEGraph dsl_to_circuit_egraph(const std::string& text);

}  // namespace emorphic
