#include "flow/choice_export.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "egraph/choices.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"

namespace emorphic {

namespace {

/// Lower one e-node over already-built child literals. NOT and the leaves
/// lower to existing literals (no new structure); binary operators build.
Lit lower_node(Aig& aig, const ENode& n, const std::vector<Lit>& built,
               const EGraph& egraph, const std::vector<Var>& pis) {
  auto child = [&](unsigned k) { return built[egraph.find(n.children[k])]; };
  switch (n.op) {
    case Op::kConst0:
      return kLitFalse;
    case Op::kConst1:
      return kLitTrue;
    case Op::kVar:
      return make_lit(pis[n.symbol]);
    case Op::kNot:
      return lit_not(child(0));
    case Op::kAnd:
      return aig.make_and(child(0), child(1));
    case Op::kOr:
      return aig.make_or(child(0), child(1));
    case Op::kXor:
      return aig.make_xor(child(0), child(1));
  }
  return kLitFalse;
}

/// A tentative ring member awaiting verification.
struct PendingAlt {
  Var rep = 0;
  Var member = 0;
  bool phase = false;
};

}  // namespace

ChoiceAig egraph_to_choice_aig(const CircuitEGraph& ce,
                               const Extraction& solution,
                               const ChoiceExportParams& params,
                               ChoiceExportStats* stats) {
  const EGraph& egraph = ce.egraph;
  ChoiceExportStats local_stats;
  ChoiceExportStats& st = stats != nullptr ? *stats : local_stats;
  st = ChoiceExportStats{};

  // --- Phase 1: lower the chosen extraction (the representative cone) ------
  // Same traversal as extraction_to_aig, but the per-class literals and the
  // completion (topological) order of the classes are kept: phase 2 lowers
  // alternatives over exactly these literals, so every alternative cone
  // hangs off representatives — never off another alternative.
  Aig aig;
  for (const auto& name : ce.pi_names) aig.add_pi(name);

  const std::size_t slots = egraph.num_classes_created();
  std::vector<Lit> built(slots, kLitFalse);
  std::vector<std::uint8_t> done(slots, 0);
  std::vector<EClassId> class_order;

  std::vector<EClassId> stack;
  for (const SerializedRoot& r : ce.roots) stack.push_back(egraph.find(r.id));
  while (!stack.empty()) {
    EClassId c = egraph.find(stack.back());
    if (done[c]) {
      stack.pop_back();
      continue;
    }
    if (!solution.has(c)) {
      throw std::invalid_argument(
          "egraph_to_choice_aig: extraction does not cover the output cone");
    }
    const ENode& n = egraph.eclass(c).nodes[solution.choice(c)];
    bool pending = false;
    for (unsigned k = 0; k < n.arity(); ++k) {
      EClassId child = egraph.find(n.children[k]);
      if (!done[child]) {
        stack.push_back(child);
        pending = true;
      }
    }
    if (pending) continue;
    built[c] = lower_node(aig, n, built, egraph, aig.pis());
    done[c] = 1;
    class_order.push_back(c);
    stack.pop_back();
  }
  for (const SerializedRoot& r : ce.roots) {
    Lit lit = built[egraph.find(r.id)];
    aig.add_po(lit_notcond(lit, r.complemented), r.name);
  }
  st.cone_classes = class_order.size();

  // --- Phase 2: lower alternative members over the representatives ---------
  // Role bookkeeping keeps rings disjoint: a variable is a representative,
  // an alternative of exactly one representative, or plain. Two classes may
  // legitimately share a representative variable (a class and its NOT-image
  // lower to the same node in opposite phases); their members join the same
  // ring with the phase difference folded into the member literal.
  enum : std::uint8_t { kPlain = 0, kRep = 1, kAlt = 2 };
  std::vector<std::uint8_t> role(aig.num_nodes(), kPlain);
  auto role_of = [&](Var v) -> std::uint8_t& {
    if (v >= role.size()) role.resize(aig.num_nodes(), kPlain);
    return role[v];
  };
  for (EClassId c : class_order) {
    Var rep = lit_var(built[c]);
    if (aig.is_and(rep)) role_of(rep) = kRep;
  }

  std::vector<PendingAlt> pending_alts;
  for (EClassId c : class_order) {
    Lit rep_lit = built[c];
    Var rep = lit_var(rep_lit);
    if (!aig.is_and(rep)) continue;  // constant / PI classes have no choices
    for (std::uint32_t i :
         choice_candidates(egraph, c, solution.choice(c), params.ring_cap)) {
      const ENode& n = egraph.eclass(c).nodes[i];
      bool unbuildable = false;
      for (unsigned k = 0; k < n.arity(); ++k) {
        if (!done[egraph.find(n.children[k])]) unbuildable = true;
      }
      if (unbuildable) {
        // A member may reference classes the chosen cone never lowered;
        // materializing those cones could drag in an unbounded slice of
        // the e-graph, so such members are skipped.
        ++st.alts_unbuildable;
        continue;
      }
      Lit alt_lit = lower_node(aig, n, built, egraph, aig.pis());
      Var alt = lit_var(alt_lit);
      if (alt == rep || !aig.is_and(alt)) {
        // Structural hashing recognized the member as the representative
        // itself (or it degenerated to a constant/PI): no new structure.
        ++st.alts_strashed;
        continue;
      }
      if (role_of(alt) != kPlain) {
        ++st.alts_conflicting;
        continue;
      }
      role_of(alt) = kAlt;
      pending_alts.push_back(PendingAlt{
          rep, alt,
          lit_is_compl(alt_lit) != lit_is_compl(rep_lit)});
    }
  }

  // --- Phase 3: SAT-verify every tentative member ---------------------------
  // One Tseitin encoding of the whole network (alternative cones included),
  // then two assumption-only queries per member — exactly fraig's proving
  // pattern, on a warm incremental solver.
  std::vector<PendingAlt> accepted;
  if (!params.verify) {
    accepted = std::move(pending_alts);
  } else if (!pending_alts.empty()) {
    sat::Solver solver;
    std::vector<sat::SatVar> sat_map = sat::encode_aig(solver, aig);
    for (const PendingAlt& alt : pending_alts) {
      sat::SatLit a = sat::sat_lit(sat_map[alt.rep], false);
      sat::SatLit b = sat::sat_lit(sat_map[alt.member], alt.phase);
      ++st.verify_sat_calls;
      sat::SatResult r1 = solver.solve({a, sat::sat_neg(b)},
                                       params.verify_conflict_limit);
      if (r1 != sat::SatResult::kUnsat) {
        ++st.alts_rejected;
        continue;
      }
      ++st.verify_sat_calls;
      sat::SatResult r2 = solver.solve({sat::sat_neg(a), b},
                                       params.verify_conflict_limit);
      if (r2 != sat::SatResult::kUnsat) {
        ++st.alts_rejected;
        continue;
      }
      accepted.push_back(alt);
    }
  }

  // --- Phase 4: compact ------------------------------------------------------
  // Rebuild keeping only the PO cones and the accepted alternative cones:
  // rejected members (and candidate scaffolding that strashed away) leave
  // no dead logic behind. The copy is injective on the kept nodes, so the
  // ring structure transfers one-to-one.
  std::vector<std::uint8_t> keep = aig.po_reachable();
  for (const PendingAlt& alt : accepted) aig.mark_cone(alt.member, keep);

  ChoiceAig result;
  std::vector<Lit> remap(aig.num_nodes(), kLitFalse);
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    remap[aig.pis()[i]] = make_lit(result.aig.add_pi(aig.pi_name(i)));
  }
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!keep[v] || !aig.is_and(v)) continue;
    Lit f0 = aig.fanin0(v);
    Lit f1 = aig.fanin1(v);
    remap[v] = result.aig.make_and(lit_notcond(remap[lit_var(f0)], lit_is_compl(f0)),
                                   lit_notcond(remap[lit_var(f1)], lit_is_compl(f1)));
  }
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    Lit po = aig.po(i);
    result.aig.add_po(lit_notcond(remap[lit_var(po)], lit_is_compl(po)),
                      aig.po_name(i));
  }

  result.choices = AigChoices(result.aig.num_nodes());
  std::size_t ring_members = 0;
  for (const PendingAlt& alt : accepted) {
    Lit rep_new = remap[alt.rep];
    Lit alt_new = remap[alt.member];
    assert(!lit_is_compl(rep_new) && !lit_is_compl(alt_new) &&
           "compaction must preserve node polarity");
    if (lit_var(rep_new) == lit_var(alt_new)) {
      ++st.alts_strashed;  // defensive: cannot happen on an injective copy
      continue;
    }
    result.choices.add_member(lit_var(rep_new), lit_var(alt_new), alt.phase);
    ++ring_members;
  }
  st.alts_dropped_cyclic = result.choices.finalize(result.aig);
  st.alts_kept = ring_members - st.alts_dropped_cyclic;
  st.classes_with_choices = result.choices.num_rings();
  assert(result.choices.check(result.aig).empty());
  return result;
}

ChoiceMapOutcome map_with_choices_gated(const ChoiceAig& caig,
                                        const Matcher& matcher,
                                        const MapperParams& params,
                                        MapperWorkspace* workspace) {
  MappedNetlist choice = map_to_cells(caig, matcher, params, workspace);
  // The plain baseline maps the identical network through the identical
  // kernel without the rings: the alternative cones are then invisible
  // (no PO-reachable fanout, so they influence neither the reference
  // estimate nor the cover), making this exactly the pre-choicemap
  // mapping of the committed extraction. The baseline does pay cut
  // enumeration over the dead alternative cones; stripping them first is
  // not safe-by-index (an alternative may strash onto a base-cone
  // intermediate), and this is the once-per-flow final mapping, not the
  // SA hot path.
  MappedNetlist plain = map_to_cells(caig.aig, matcher, params, workspace);

  MappedQor plain_qor{plain.area(), plain.delay()};
  MappedQor choice_qor{choice.area(), choice.delay()};
  const double eps = 1e-9;
  bool adopt = choice_qor.area <= plain_qor.area + eps &&
               choice_qor.delay <= plain_qor.delay + eps;
  return ChoiceMapOutcome{adopt ? std::move(choice) : std::move(plain),
                          plain_qor, choice_qor, adopt};
}

LutChoiceOutcome map_luts_with_choices_gated(const ChoiceAig& caig,
                                             const LutMapperParams& params,
                                             LutWorkspace* workspace,
                                             ThreadPool* pool) {
  LutNetwork choice = map_to_luts(caig, params, workspace, pool);
  // Same baseline rationale as the cell version: mapping caig.aig without
  // the rings is exactly the plain mapping of the committed extraction —
  // alternative cones carry no PO-reachable fanout, so they affect neither
  // the reference estimate nor the cover.
  LutNetwork plain = map_to_luts(caig.aig, params, workspace, pool);

  LutQor plain_qor = lut_qor(plain);
  LutQor choice_qor = lut_qor(choice);
  // Unit costs are exact integers; no epsilon needed.
  bool adopt = choice_qor.area <= plain_qor.area &&
               choice_qor.depth <= plain_qor.depth;
  return LutChoiceOutcome{adopt ? std::move(choice) : std::move(plain),
                          plain_qor, choice_qor, adopt};
}

}  // namespace emorphic
