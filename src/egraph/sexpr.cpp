#include "egraph/sexpr.hpp"

#include <cctype>
#include <map>
#include <unordered_map>

#include "util/timer.hpp"

namespace emorphic {

namespace {

class Budget {
 public:
  explicit Budget(const SExprLimits& limits) : limits_(limits) {}

  void charge(std::size_t chars, std::size_t total_chars) {
    work_ += chars;
    if (total_chars > limits_.max_chars) {
      throw SExprLimitError(SExprLimitError::Kind::kMemory,
                            "s-expression exceeded memory budget");
    }
    if (++checks_ >= 1024) {
      checks_ = 0;
      if (timer_.seconds() > limits_.time_limit_s) {
        throw SExprLimitError(SExprLimitError::Kind::kTimeout,
                              "s-expression conversion timed out");
      }
    }
  }

 private:
  const SExprLimits& limits_;
  Timer timer_;
  std::size_t work_ = 0;
  std::size_t checks_ = 0;
};

void flatten_lit(const Aig& aig, Lit lit, std::string& out, Budget& budget) {
  budget.charge(8, out.size());
  Var v = lit_var(lit);
  if (lit_is_compl(lit)) {
    out += "(not ";
    flatten_lit(aig, lit_not(lit), out, budget);
    out += ')';
    return;
  }
  if (aig.is_const0(v)) {
    out += "false";
  } else if (aig.is_pi(v)) {
    out += aig.pi_name(aig.pi_index(v));
  } else {
    out += "(and ";
    flatten_lit(aig, aig.fanin0(v), out, budget);
    out += ' ';
    flatten_lit(aig, aig.fanin1(v), out, budget);
    out += ')';
  }
}

}  // namespace

std::string aig_to_sexpr(const Aig& aig, const SExprLimits& limits) {
  Budget budget(limits);
  std::string out = "(outputs";
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    out += " (";
    out += aig.po_name(i);
    out += ' ';
    flatten_lit(aig, aig.po(i), out, budget);
    out += ')';
  }
  out += ')';
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

struct SExprToken {
  enum class Kind { kLParen, kRParen, kAtom } kind;
  std::string atom;
};

class SExprParser {
 public:
  SExprParser(const std::string& text, const SExprLimits& limits)
      : text_(text), budget_(limits) {}

  // Generic callbacks build either an e-graph or an AIG.
  template <typename Builder>
  void parse_document(Builder& builder) {
    skip_ws();
    expect('(');
    expect_atom("outputs");
    while (skip_ws(), peek() != ')') {
      expect('(');
      std::string name = parse_atom();
      auto value = parse_expr(builder);
      builder.add_output(name, value);
      skip_ws();
      expect(')');
    }
    expect(')');
  }

  template <typename Builder>
  typename Builder::Value parse_expr(Builder& builder) {
    budget_.charge(4, pos_);
    skip_ws();
    if (peek() != '(') {
      std::string atom = parse_atom();
      if (atom == "false") return builder.make_const(false);
      if (atom == "true") return builder.make_const(true);
      return builder.make_leaf(atom);
    }
    expect('(');
    std::string op = parse_atom();
    if (op == "not") {
      auto a = parse_expr(builder);
      skip_ws();
      expect(')');
      return builder.make_not(a);
    }
    auto a = parse_expr(builder);
    auto b = parse_expr(builder);
    skip_ws();
    expect(')');
    if (op == "and") return builder.make_and(a, b);
    if (op == "or") return builder.make_or(a, b);
    if (op == "xor") return builder.make_xor(a, b);
    throw std::runtime_error("s-expression: unknown operator " + op);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("s-expression: unexpected end");
    }
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("s-expression: expected '") + c +
                               "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }
  std::string parse_atom() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("s-expression: expected atom");
    return text_.substr(start, pos_ - start);
  }
  void expect_atom(const std::string& atom) {
    if (parse_atom() != atom) {
      throw std::runtime_error("s-expression: expected '" + atom + "'");
    }
  }

  const std::string& text_;
  Budget budget_;
  std::size_t pos_ = 0;
};

struct EGraphBuilder {
  using Value = EClassId;
  SExprEGraph& out;
  std::unordered_map<std::string, std::uint32_t> symbols;

  Value make_const(bool one) {
    return one ? out.egraph.add_const1() : out.egraph.add_const0();
  }
  Value make_leaf(const std::string& name) {
    auto it = symbols.find(name);
    std::uint32_t sym;
    if (it == symbols.end()) {
      sym = static_cast<std::uint32_t>(out.var_names.size());
      out.var_names.push_back(name);
      symbols.emplace(name, sym);
    } else {
      sym = it->second;
    }
    return out.egraph.add_var(sym);
  }
  Value make_not(Value a) { return out.egraph.add_not(a); }
  Value make_and(Value a, Value b) { return out.egraph.add_and(a, b); }
  Value make_or(Value a, Value b) { return out.egraph.add_or(a, b); }
  Value make_xor(Value a, Value b) { return out.egraph.add_xor(a, b); }
  void add_output(const std::string& name, Value v) {
    out.roots.push_back(SerializedRoot{v, false, name});
  }
};

struct AigBuilder {
  using Value = Lit;
  Aig& aig;
  std::unordered_map<std::string, Lit> leaves;
  std::vector<std::pair<std::string, Lit>> outputs;

  Value make_const(bool one) { return one ? kLitTrue : kLitFalse; }
  Value make_leaf(const std::string& name) {
    auto it = leaves.find(name);
    if (it != leaves.end()) return it->second;
    Lit lit = make_lit(aig.add_pi(name));
    leaves.emplace(name, lit);
    return lit;
  }
  Value make_not(Value a) { return lit_not(a); }
  Value make_and(Value a, Value b) { return aig.make_and(a, b); }
  Value make_or(Value a, Value b) { return aig.make_or(a, b); }
  Value make_xor(Value a, Value b) { return aig.make_xor(a, b); }
  void add_output(const std::string& name, Value v) {
    outputs.emplace_back(name, v);
  }
};

}  // namespace

SExprEGraph sexpr_to_egraph(const std::string& text, const SExprLimits& limits) {
  SExprEGraph out;
  EGraphBuilder builder{out, {}};
  SExprParser parser(text, limits);
  parser.parse_document(builder);
  out.egraph.rebuild();
  return out;
}

Aig sexpr_to_aig(const std::string& text, const SExprLimits& limits) {
  Aig aig;
  AigBuilder builder{aig, {}, {}};
  SExprParser parser(text, limits);
  parser.parse_document(builder);
  for (auto& [name, lit] : builder.outputs) aig.add_po(lit, name);
  return aig;
}

namespace {

void print_class(const EGraph& egraph, EClassId cls,
                 const std::vector<std::uint32_t>& choice,
                 const std::vector<std::string>& var_names, std::string& out,
                 Budget& budget) {
  budget.charge(8, out.size());
  cls = egraph.find(cls);
  const ENode& n = egraph.eclass(cls).nodes.at(choice[cls]);
  switch (n.op) {
    case Op::kConst0:
      out += "false";
      break;
    case Op::kConst1:
      out += "true";
      break;
    case Op::kVar:
      out += var_names.at(n.symbol);
      break;
    case Op::kNot:
      out += "(not ";
      print_class(egraph, n.children[0], choice, var_names, out, budget);
      out += ')';
      break;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      out += n.op == Op::kAnd ? "(and " : n.op == Op::kOr ? "(or " : "(xor ";
      print_class(egraph, n.children[0], choice, var_names, out, budget);
      out += ' ';
      print_class(egraph, n.children[1], choice, var_names, out, budget);
      out += ')';
      break;
  }
}

}  // namespace

std::string egraph_to_sexpr(const EGraph& egraph,
                            const std::vector<SerializedRoot>& roots,
                            const std::vector<std::string>& var_names,
                            const std::vector<std::uint32_t>& choice,
                            const SExprLimits& limits) {
  Budget budget(limits);
  std::string out = "(outputs";
  for (const SerializedRoot& r : roots) {
    out += " (";
    out += r.name;
    out += ' ';
    if (r.complemented) {
      out += "(not ";
      print_class(egraph, r.id, choice, var_names, out, budget);
      out += ')';
    } else {
      print_class(egraph, r.id, choice, var_names, out, budget);
    }
    out += ')';
  }
  out += ')';
  return out;
}

}  // namespace emorphic
