#pragma once
// The S-expression conversion path of E-Syn [12] — reimplemented here as the
// *baseline* for the Table III conversion experiment.
//
// S-expressions are flattened abstract syntax trees: every shared node of
// the circuit DAG must be duplicated once per reference, so reconvergent
// circuits (carry chains, multipliers) blow up exponentially. All entry
// points therefore take explicit work budgets and throw SExprLimitError
// (timeout / out-of-memory) exactly like the paper's 3600 s / 8 GB guards.

#include <stdexcept>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "egraph/serialize.hpp"

namespace emorphic {

struct SExprLimits {
  /// Abort once the produced text exceeds this many characters ("MO").
  std::size_t max_chars = 1u << 26;  // 64 MiB of text
  /// Abort once this much wall-clock time is spent ("TO").
  double time_limit_s = 10.0;
};

class SExprLimitError : public std::runtime_error {
 public:
  enum class Kind { kTimeout, kMemory };
  SExprLimitError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Flatten an AIG into one S-expression per output:
///   (outputs (po_name expr) ...) with expr over (and a b), (or a b), (not a).
/// Shared nodes are duplicated — the E-Syn bottleneck under reproduction.
std::string aig_to_sexpr(const Aig& aig, const SExprLimits& limits);

struct SExprEGraph {
  EGraph egraph;
  std::vector<SerializedRoot> roots;
  std::vector<std::string> var_names;
};

/// Parse an S-expression document into a fresh e-graph.
SExprEGraph sexpr_to_egraph(const std::string& text, const SExprLimits& limits);

/// Print a chosen term per root as an S-expression (duplicating shared
/// subterms). `choice[class]` indexes the selected e-node of each class.
std::string egraph_to_sexpr(const EGraph& egraph,
                            const std::vector<SerializedRoot>& roots,
                            const std::vector<std::string>& var_names,
                            const std::vector<std::uint32_t>& choice,
                            const SExprLimits& limits);

/// Parse an S-expression document back into an AIG (the E-Syn "backward"
/// conversion). PI names come from the document's leaves.
Aig sexpr_to_aig(const std::string& text, const SExprLimits& limits);

}  // namespace emorphic
