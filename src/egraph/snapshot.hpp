#pragma once
// Binary e-graph snapshots: a byte-exact serialization of a *clean*
// (rebuilt) e-graph, built for mid-saturation checkpoint/restore.
//
// The Fig. 7 JSON DSL (serialize.hpp) captures an e-graph up to
// equivalence — good for interchange, but it re-numbers classes and drops
// cyclic node forms, so a restored e-graph continues a saturation run on a
// *different* trajectory. Checkpointing needs more: the restored e-graph
// must be observationally identical — same class ids, same member order,
// same union-find shape and ranks — so that resuming iteration k+1 from a
// snapshot taken after iteration k reproduces the uninterrupted run bit
// for bit (the runner's match order walks class ids and member lists in
// storage order, and merge decisions read the union-find ranks).
//
// The format ("EMSS", versioned) therefore serializes the raw internals:
// the union-find arrays plus every root class's node and parent-edge
// spans, verbatim. The hashcons is NOT stored: on a clean e-graph it is
// exactly the set of live canonical e-nodes (check_invariants enforces the
// bijection), so restore re-interns them — every lookup resolves through
// find() anyway, making the root-valued rebuild observationally identical.
//
// All integers are LEB128 varints; every count is bounds-checked against
// the remaining input before any allocation, so a corrupted or truncated
// snapshot throws SnapshotError and never crashes or over-allocates.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "egraph/egraph.hpp"

namespace emorphic {

/// Typed error for every malformed-snapshot condition: wrong magic,
/// unsupported version, truncation, out-of-range ids, trailing garbage.
/// A subclass of std::runtime_error so generic handlers still catch it.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

/// Serialize a clean e-graph ("EMSS" format). Throws SnapshotError when the
/// e-graph has pending merges (snapshots are taken between iterations, where
/// rebuild() has restored the invariants).
std::string egraph_to_snapshot(const EGraph& egraph);

/// Restore an e-graph from egraph_to_snapshot bytes. The result is
/// observationally identical to the snapshotted e-graph: same class ids,
/// same member/parent order, same union-find, re-interned hashcons. Throws
/// SnapshotError on any malformed input.
EGraph snapshot_to_egraph(const std::string& bytes);

// --- shared binary primitives -----------------------------------------------
// Reused by the checkpoint file formats (flow/pipeline.cpp's saturation
// checkpoints, opt/partition.cpp's window-result checkpoints).

/// Append-only byte-buffer writer with LEB128 varints.
class SnapshotWriter {
 public:
  void magic(const char tag[4]) { out_.append(tag, 4); }
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<char>(v));
  }
  void bytes(const std::string& data) { out_.append(data); }
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a byte string; every underrun or malformed
/// varint throws SnapshotError naming the failing field.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::string& data) : data_(data) {}

  /// Consume and check a 4-byte magic tag.
  void expect_magic(const char tag[4], const char* format_name);
  std::uint8_t u8(const char* field);
  std::uint64_t varint(const char* field);
  /// Consume `n` raw bytes.
  std::string bytes(std::uint64_t n, const char* field);
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  /// Throw unless the input was consumed exactly.
  void expect_end(const char* format_name);

 private:
  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace emorphic
