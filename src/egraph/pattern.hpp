#pragma once
// Syntactic patterns over the Boolean language and the e-matching procedure
// that finds all their instances inside an e-graph — the "search" half of a
// rewrite rule. The "apply" half instantiates the right-hand side under the
// discovered substitution and merges it with the matched class.
//
// Commutative operators are stored child-sorted in the e-graph (see
// EGraph::canonicalize), so the matcher tries both child orders for
// AND/OR/XOR patterns instead of relying on explicit commutativity rules.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "egraph/egraph.hpp"

namespace emorphic {

/// Builder for pattern trees, e.g. Pat::and_(Pat::v("a"), Pat::not_(Pat::v("b"))).
class Pat {
 public:
  static Pat v(const std::string& name);  // pattern variable
  static Pat c0();
  static Pat c1();
  static Pat not_(Pat a);
  static Pat and_(Pat a, Pat b);
  static Pat or_(Pat a, Pat b);
  static Pat xor_(Pat a, Pat b);

  struct Node {
    bool is_pattern_var = false;
    std::string var_name;
    Op op = Op::kConst0;
    std::vector<Pat> children;
  };

  const Node& node() const { return *node_; }

  /// Internal: wrap an already-built node (used by the static builders).
  explicit Pat(std::shared_ptr<Node> node) : node_(std::move(node)) {}

 private:
  std::shared_ptr<Node> node_;
};

/// A pattern compiled to a flat array with numbered pattern variables.
class Pattern {
 public:
  struct Node {
    bool is_var = false;
    std::uint32_t var = 0;          // pattern-variable index
    Op op = Op::kConst0;
    std::array<std::int32_t, 2> children{{-1, -1}};  // indices into nodes_
  };

  /// Compile a Pat tree. `var_names` collects/receives the variable
  /// numbering; share one vector between the LHS and RHS of a rule so that
  /// substitutions line up.
  static Pattern compile(const Pat& pat, std::vector<std::string>& var_names);

  const std::vector<Node>& nodes() const { return nodes_; }
  std::int32_t root() const { return root_; }
  std::uint32_t num_vars() const { return num_vars_; }
  std::string to_string(const std::vector<std::string>& var_names) const;

 private:
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::uint32_t num_vars_ = 0;
};

/// A substitution: pattern-variable index -> e-class id (kNoEClass = unbound).
using Subst = std::vector<EClassId>;

/// Find up to `limit` substitutions that make `pattern` equal to a term in
/// class `root`. Appends to `out`.
void match_in_class(const EGraph& egraph, const Pattern& pattern, EClassId root,
                    std::vector<Subst>& out, std::size_t limit);

/// Instantiate `pattern` under `subst` by adding e-nodes; returns the class.
EClassId instantiate(EGraph& egraph, const Pattern& pattern, const Subst& subst);

/// A rewrite rule: lhs => rhs sharing one pattern-variable numbering.
struct Rewrite {
  std::string name;
  Pattern lhs;
  Pattern rhs;
  std::vector<std::string> var_names;

  static Rewrite make(const std::string& name, const Pat& lhs, const Pat& rhs);
};

}  // namespace emorphic
