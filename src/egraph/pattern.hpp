#pragma once
// Syntactic patterns over the Boolean language and the e-matching procedure
// that finds all their instances inside an e-graph — the "search" half of a
// rewrite rule. The "apply" half instantiates the right-hand side under the
// discovered substitution and merges it with the matched class.
//
// Commutative operators are stored child-sorted in the e-graph (see
// EGraph::canonicalize), so the matcher tries both child orders for
// AND/OR/XOR patterns instead of relying on explicit commutativity rules.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "egraph/egraph.hpp"

namespace emorphic {

/// Builder for pattern trees, e.g. Pat::and_(Pat::v("a"), Pat::not_(Pat::v("b"))).
class Pat {
 public:
  /// A pattern variable: matches any e-class and binds it under `name`.
  static Pat v(const std::string& name);
  /// The constant-false leaf.
  static Pat c0();
  /// The constant-true leaf.
  static Pat c1();
  /// Negation of a subpattern.
  static Pat not_(Pat a);
  /// Conjunction of two subpatterns (matched in both child orders).
  static Pat and_(Pat a, Pat b);
  /// Disjunction of two subpatterns (matched in both child orders).
  static Pat or_(Pat a, Pat b);
  /// Exclusive-or of two subpatterns (matched in both child orders).
  static Pat xor_(Pat a, Pat b);

  struct Node {
    bool is_pattern_var = false;
    std::string var_name;
    Op op = Op::kConst0;
    std::vector<Pat> children;
  };

  const Node& node() const { return *node_; }

  /// Internal: wrap an already-built node (used by the static builders).
  explicit Pat(std::shared_ptr<Node> node) : node_(std::move(node)) {}

 private:
  std::shared_ptr<Node> node_;
};

/// A pattern compiled to a flat array with numbered pattern variables.
class Pattern {
 public:
  /// One flattened pattern node (children are emitted before their parent).
  struct Node {
    bool is_var = false;
    std::uint32_t var = 0;          // pattern-variable index
    Op op = Op::kConst0;
    std::array<std::int32_t, 2> children{{-1, -1}};  // indices into nodes_
    /// Number of operator nodes in this subtree (0 for a bare variable).
    /// The matcher explores the more structured child of a binary node
    /// first: structure binds variables through cheap equality constraints,
    /// which turns the shallow sibling into a filter instead of a fan-out.
    std::uint16_t structure = 0;
  };

  /// Compile a Pat tree. `var_names` collects/receives the variable
  /// numbering; share one vector between the LHS and RHS of a rule so that
  /// substitutions line up.
  static Pattern compile(const Pat& pat, std::vector<std::string>& var_names);

  /// The flattened nodes, children-first.
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Index of the root node within nodes().
  std::int32_t root() const { return root_; }
  /// Number of distinct pattern variables.
  std::uint32_t num_vars() const { return num_vars_; }
  /// Render the pattern using `var_names` for the variables.
  std::string to_string(const std::vector<std::string>& var_names) const;

  /// Head operator of the pattern, or nullopt when the root is a bare
  /// pattern variable (which matches every e-class). The runner's rule index
  /// uses this to restrict matching to classes containing the operator.
  std::optional<Op> root_op() const {
    const Node& n = nodes_[root_];
    if (n.is_var) return std::nullopt;
    return n.op;
  }

 private:
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::uint32_t num_vars_ = 0;
};

/// A substitution: pattern-variable index -> e-class id (kNoEClass = unbound).
using Subst = std::vector<EClassId>;

/// Per-class operator statistics: how many e-nodes with each operator a
/// class holds. The matcher uses it two ways:
///  - feasibility pruning: reject a pattern subtree in O(1) when its class
///    provably holds no e-node with the required operator — without this, a
///    deep pattern like the consensus rule enumerates every
///    operator-compatible e-node at each level only to fail near the leaves;
///  - join ordering: explore the binary-pattern child with the smaller
///    candidate fanout first, so its bindings filter the expensive sibling
///    (the classic smallest-relation-first plan).
/// Build once per frozen e-graph state (the runner rebuilds it every
/// iteration); entries are keyed by canonical class id and stale after any
/// merge.
class OpPresence {
 public:
  /// Populate from a clean e-graph; `ids` must be its canonical class ids.
  void build(const EGraph& egraph, const std::vector<EClassId>& ids);

  /// Number of e-nodes with operator `op` in class `id` (canonical),
  /// saturated at 65535.
  std::uint16_t count(EClassId id, Op op) const {
    return counts_[id][op_index(op)];
  }

  /// May class `id` (canonical) contain an e-node with operator `op`?
  bool may_contain(EClassId id, Op op) const { return count(id, op) != 0; }

 private:
  std::vector<std::array<std::uint16_t, kNumOps>> counts_;
};

/// Find up to `limit` substitutions that make `pattern` equal to a term in
/// class `root`. Appends to `out`. `presence` (optional) enables O(1)
/// feasibility pruning and fanout-based join ordering at every pattern
/// depth. It never changes the *complete* match set; it can however change
/// the order matches are emitted in (the join order differs from the
/// presence-less estimate), so callers that compare `limit`-truncated
/// prefixes must pass the same `presence` on both sides — the runner always
/// passes one, whatever its index/threading configuration.
void match_in_class(const EGraph& egraph, const Pattern& pattern, EClassId root,
                    std::vector<Subst>& out, std::size_t limit,
                    const OpPresence* presence = nullptr);

/// Instantiate `pattern` under `subst` by adding e-nodes; returns the class.
EClassId instantiate(EGraph& egraph, const Pattern& pattern, const Subst& subst);

/// A rewrite rule: lhs => rhs sharing one pattern-variable numbering.
struct Rewrite {
  std::string name;
  Pattern lhs;
  Pattern rhs;
  /// Variable numbering shared by lhs and rhs (index -> display name).
  std::vector<std::string> var_names;

  /// Compile both sides of a rule against one shared variable numbering.
  static Rewrite make(const std::string& name, const Pat& lhs, const Pat& rhs);
};

}  // namespace emorphic
