#include "egraph/pattern.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace emorphic {

Pat Pat::v(const std::string& name) {
  auto node = std::make_shared<Node>();
  node->is_pattern_var = true;
  node->var_name = name;
  return Pat(std::move(node));
}

namespace {
Pat make_op(Op op, std::vector<Pat> children) {
  auto node = std::make_shared<Pat::Node>();
  node->op = op;
  node->children = std::move(children);
  return Pat(std::move(node));
}
}  // namespace

Pat Pat::c0() { return make_op(Op::kConst0, {}); }
Pat Pat::c1() { return make_op(Op::kConst1, {}); }
Pat Pat::not_(Pat a) { return make_op(Op::kNot, {std::move(a)}); }
Pat Pat::and_(Pat a, Pat b) { return make_op(Op::kAnd, {std::move(a), std::move(b)}); }
Pat Pat::or_(Pat a, Pat b) { return make_op(Op::kOr, {std::move(a), std::move(b)}); }
Pat Pat::xor_(Pat a, Pat b) { return make_op(Op::kXor, {std::move(a), std::move(b)}); }

Pattern Pattern::compile(const Pat& pat, std::vector<std::string>& var_names) {
  Pattern out;
  // Depth-first flattening; children are emitted before their parent.
  struct Rec {
    Pattern& out;
    std::vector<std::string>& var_names;
    std::int32_t operator()(const Pat& p) {
      const Pat::Node& n = p.node();
      Node flat;
      if (n.is_pattern_var) {
        flat.is_var = true;
        auto it = std::find(var_names.begin(), var_names.end(), n.var_name);
        if (it == var_names.end()) {
          flat.var = static_cast<std::uint32_t>(var_names.size());
          var_names.push_back(n.var_name);
        } else {
          flat.var = static_cast<std::uint32_t>(it - var_names.begin());
        }
      } else {
        flat.op = n.op;
        flat.structure = 1;
        for (std::size_t i = 0; i < n.children.size(); ++i) {
          flat.children[i] = (*this)(n.children[i]);
          flat.structure = static_cast<std::uint16_t>(
              flat.structure + out.nodes_[flat.children[i]].structure);
        }
      }
      out.nodes_.push_back(flat);
      return static_cast<std::int32_t>(out.nodes_.size() - 1);
    }
  };
  out.root_ = Rec{out, var_names}(pat);
  out.num_vars_ = static_cast<std::uint32_t>(var_names.size());
  return out;
}

std::string Pattern::to_string(const std::vector<std::string>& var_names) const {
  struct Rec {
    const Pattern& p;
    const std::vector<std::string>& names;
    std::string operator()(std::int32_t i) const {
      const Node& n = p.nodes()[i];
      if (n.is_var) return names[n.var];
      switch (op_arity(n.op)) {
        case 0:
          return op_name(n.op);
        case 1:
          return std::string(op_name(n.op)) + (*this)(n.children[0]);
        default:
          return "(" + (*this)(n.children[0]) + " " + op_name(n.op) + " " +
                 (*this)(n.children[1]) + ")";
      }
    }
  };
  return Rec{*this, var_names}(root_);
}

void OpPresence::build(const EGraph& egraph, const std::vector<EClassId>& ids) {
  counts_.assign(egraph.num_classes_created(), {});
  for (EClassId id : ids) {
    std::array<std::uint16_t, kNumOps>& counts = counts_[id];
    for (const ENode& n : egraph.eclass(id).nodes) {
      std::uint16_t& slot = counts[op_index(n.op)];
      if (slot != 0xffff) ++slot;
    }
  }
}

namespace {

class Matcher {
 public:
  Matcher(const EGraph& egraph, const Pattern& pattern, std::vector<Subst>& out,
          std::size_t limit, const OpPresence* presence)
      : egraph_(egraph),
        pattern_(pattern),
        out_(out),
        limit_(limit),
        presence_(presence) {}

  void run(EClassId root) {
    Subst subst(pattern_.num_vars(), kNoEClass);
    match(pattern_.root(), root, subst);
  }

 private:
  bool full() const { return out_.size() >= limit_; }

  /// Try to match pattern node `pi` against class `cls` under `subst`;
  /// emits every consistent completed substitution into out_ (via cont_
  /// stack). Uses explicit recursion with copy-on-branch substitutions:
  /// match counts are capped, so the copies stay cheap.
  void match(std::int32_t pi, EClassId cls, Subst& subst) {
    if (full()) return;
    cls = egraph_.find(cls);
    const Pattern::Node& pn = pattern_.nodes()[pi];
    // Feasibility pruning: bail before touching the class's node list when
    // it provably holds no e-node with the required operator. Applies at
    // every recursion depth, which is what tames deep patterns.
    if (!pn.is_var && presence_ != nullptr &&
        !presence_->may_contain(cls, pn.op)) {
      return;
    }
    if (pn.is_var) {
      if (subst[pn.var] == kNoEClass) {
        subst[pn.var] = cls;
        emit_or_continue(subst);
        subst[pn.var] = kNoEClass;
      } else if (subst[pn.var] == cls) {
        emit_or_continue(subst);
      }
      return;
    }
    // Push-time feasibility: a (pattern child, class) obligation is doomed
    // when the class lacks the child's operator, or the child is a variable
    // already bound to a different class. (Bindings made by an ancestor stay
    // fixed for the whole subtree, so checking at push time is sound.)
    auto feasible = [&](std::int32_t p, EClassId m) {
      const Pattern::Node& child = pattern_.nodes()[p];
      if (child.is_var) {
        return subst[child.var] == kNoEClass || subst[child.var] == m;
      }
      return presence_ == nullptr || presence_->may_contain(m, child.op);
    };
    // Estimated branching factor of matching pattern child `p` against class
    // `m`: variables bind or filter without branching; operator children
    // branch once per matching e-node.
    auto fanout = [&](std::int32_t p, EClassId m) -> std::size_t {
      const Pattern::Node& child = pattern_.nodes()[p];
      if (child.is_var) return 0;
      if (presence_ != nullptr) return presence_->count(m, child.op);
      return egraph_.eclass(m).nodes.size();
    };

    for (const ENode& enode : egraph_.eclass(cls).nodes) {
      if (full()) return;
      if (enode.op != pn.op) continue;
      switch (op_arity(pn.op)) {
        case 0:
          emit_or_continue(subst);
          break;
        case 1: {
          EClassId c0 = egraph_.find(enode.children[0]);
          if (!feasible(pn.children[0], c0)) break;
          frames_.push_back({pn.children[0], c0});
          descend(subst);
          frames_.pop_back();
          break;
        }
        case 2: {
          bool commutative = op_is_commutative(pn.op);
          EClassId c0 = egraph_.find(enode.children[0]);
          EClassId c1 = egraph_.find(enode.children[1]);
          std::int32_t p0 = pn.children[0];
          std::int32_t p1 = pn.children[1];
          auto explore = [&](EClassId m0, EClassId m1) {
            if (!feasible(p0, m0) || !feasible(p1, m1)) return;
            // Join ordering: explore the child with the smaller branching
            // factor first, so its bindings filter the expensive sibling.
            // Ties go to the more structured pattern child, which binds its
            // variables through structural constraints. The order depends
            // only on the pattern and the frozen e-graph state, so match
            // emission order stays deterministic.
            std::size_t w0 = fanout(p0, m0);
            std::size_t w1 = fanout(p1, m1);
            bool first0 = w0 != w1 ? w0 < w1
                                   : pattern_.nodes()[p0].structure >=
                                         pattern_.nodes()[p1].structure;
            // Frames pop LIFO: push the second obligation first.
            if (first0) {
              frames_.push_back({p1, m1});
              frames_.push_back({p0, m0});
            } else {
              frames_.push_back({p0, m0});
              frames_.push_back({p1, m1});
            }
            descend(subst);
            frames_.pop_back();
            frames_.pop_back();
          };
          explore(c0, c1);
          if (commutative && c0 != c1) explore(c1, c0);
          break;
        }
      }
    }
  }

  // Pending (pattern node, class) obligations; matching proceeds when all
  // obligations are discharged.
  struct Frame {
    std::int32_t pattern_node;
    EClassId cls;
  };

  void descend(Subst& subst) {
    if (frames_.empty()) {
      out_.push_back(subst);
      return;
    }
    Frame f = frames_.back();
    frames_.pop_back();
    match(f.pattern_node, f.cls, subst);
    frames_.push_back(f);
  }

  void emit_or_continue(Subst& subst) { descend(subst); }

  const EGraph& egraph_;
  const Pattern& pattern_;
  std::vector<Subst>& out_;
  std::size_t limit_;
  const OpPresence* presence_;
  std::vector<Frame> frames_;
};

}  // namespace

void match_in_class(const EGraph& egraph, const Pattern& pattern, EClassId root,
                    std::vector<Subst>& out, std::size_t limit,
                    const OpPresence* presence) {
  Matcher(egraph, pattern, out, limit, presence).run(root);
}

EClassId instantiate(EGraph& egraph, const Pattern& pattern, const Subst& subst) {
  std::vector<EClassId> result(pattern.nodes().size(), kNoEClass);
  for (std::size_t i = 0; i < pattern.nodes().size(); ++i) {
    const Pattern::Node& n = pattern.nodes()[i];
    if (n.is_var) {
      assert(subst[n.var] != kNoEClass);
      result[i] = subst[n.var];
      continue;
    }
    ENode enode;
    enode.op = n.op;
    for (unsigned c = 0; c < op_arity(n.op); ++c) {
      enode.children[c] = result[n.children[c]];
    }
    result[i] = egraph.add(enode);
  }
  return result[pattern.root()];
}

Rewrite Rewrite::make(const std::string& name, const Pat& lhs, const Pat& rhs) {
  Rewrite rw;
  rw.name = name;
  rw.lhs = Pattern::compile(lhs, rw.var_names);
  rw.rhs = Pattern::compile(rhs, rw.var_names);
  return rw;
}

}  // namespace emorphic
