#include "egraph/serialize.hpp"

#include <stdexcept>
#include <unordered_map>

#include "util/json.hpp"

namespace emorphic {

namespace {

const char* op_key(Op op) {
  switch (op) {
    case Op::kConst0:
      return "Const0";
    case Op::kConst1:
      return "Const1";
    case Op::kVar:
      return "Symbol";
    case Op::kNot:
      return "NOT";
    case Op::kAnd:
      return "AND";
    case Op::kOr:
      return "OR";
    case Op::kXor:
      return "XOR";
  }
  return "?";
}

}  // namespace

std::string egraph_to_dsl(const EGraph& egraph,
                          const std::vector<SerializedRoot>& roots,
                          const std::vector<std::string>& var_names) {
  Json doc = Json::object();
  Json classes = Json::object();

  for (EClassId id : egraph.class_ids()) {
    Json entry = Json::object();
    entry["id"] = static_cast<std::uint64_t>(id);
    Json nodes = Json::array();
    for (const ENode& n : egraph.eclass(id).nodes) {
      Json node = Json::object();
      if (n.op == Op::kVar) {
        node[op_key(n.op)] = var_names.at(n.symbol);
      } else if (op_arity(n.op) == 0) {
        node[op_key(n.op)] = Json::array();
      } else {
        Json children = Json::array();
        for (unsigned i = 0; i < n.arity(); ++i) {
          children.push_back(static_cast<std::uint64_t>(egraph.find(n.children[i])));
        }
        node[op_key(n.op)] = std::move(children);
      }
      nodes.push_back(std::move(node));
    }
    entry["nodes"] = std::move(nodes);
    Json parents = Json::array();
    for (const auto& [pnode, pclass] : egraph.eclass(id).parents) {
      (void)pnode;
      parents.push_back(static_cast<std::uint64_t>(egraph.find(pclass)));
    }
    entry["parents"] = std::move(parents);
    classes[std::to_string(id)] = std::move(entry);
  }
  doc["egraph"] = std::move(classes);

  Json jroots = Json::array();
  for (const SerializedRoot& r : roots) {
    Json jr = Json::object();
    jr["id"] = static_cast<std::uint64_t>(egraph.find(r.id));
    jr["compl"] = Json(r.complemented);
    jr["name"] = r.name;
    jroots.push_back(std::move(jr));
  }
  doc["roots"] = std::move(jroots);

  Json jvars = Json::array();
  for (const auto& name : var_names) jvars.push_back(name);
  doc["inputs"] = std::move(jvars);
  return doc.dump();
}

DeserializedEGraph dsl_to_egraph(const std::string& text) {
  Json doc = Json::parse(text);
  DeserializedEGraph out;
  for (const Json& v : doc.at("inputs").as_array()) {
    out.var_names.push_back(v.as_string());
  }
  std::unordered_map<std::string, std::uint32_t> symbol_of;
  for (std::uint32_t i = 0; i < out.var_names.size(); ++i) {
    symbol_of[out.var_names[i]] = i;
  }

  const JsonObject& classes = doc.at("egraph").as_object();

  // Two-pass construction: first create a placeholder class per old id by
  // adding one representative node once its children exist (topological via
  // worklist), then merge in the remaining nodes of each class.
  std::unordered_map<std::int64_t, EClassId> id_map;

  struct PendingNode {
    std::int64_t cls;
    Op op;
    std::uint32_t symbol = 0;
    std::vector<std::int64_t> children;
  };
  std::vector<PendingNode> pending;
  for (const auto& [key, entry] : classes) {
    std::int64_t old_id = std::stoll(key);
    for (const Json& jnode : entry.at("nodes").as_array()) {
      const JsonObject& obj = jnode.as_object();
      if (obj.size() != 1) throw std::runtime_error("dsl: bad node object");
      const auto& [op_str, payload] = *obj.begin();
      PendingNode p;
      p.cls = old_id;
      if (op_str == "Symbol") {
        p.op = Op::kVar;
        auto it = symbol_of.find(payload.as_string());
        if (it == symbol_of.end()) {
          throw std::runtime_error("dsl: unknown symbol " + payload.as_string());
        }
        p.symbol = it->second;
      } else if (op_str == "Const0") {
        p.op = Op::kConst0;
      } else if (op_str == "Const1") {
        p.op = Op::kConst1;
      } else if (op_str == "NOT" || op_str == "AND" || op_str == "OR" ||
                 op_str == "XOR") {
        p.op = op_str == "NOT"  ? Op::kNot
               : op_str == "AND" ? Op::kAnd
               : op_str == "OR"  ? Op::kOr
                                 : Op::kXor;
        for (const Json& c : payload.as_array()) p.children.push_back(c.as_int());
      } else {
        throw std::runtime_error("dsl: unknown operator " + op_str);
      }
      pending.push_back(std::move(p));
    }
  }

  // Worklist until all nodes are placed (child classes must exist first).
  std::size_t placed_last_round = 1;
  std::vector<bool> done(pending.size(), false);
  std::size_t remaining = pending.size();
  while (remaining > 0 && placed_last_round > 0) {
    placed_last_round = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (done[i]) continue;
      const PendingNode& p = pending[i];
      bool ready = true;
      for (std::int64_t c : p.children) {
        if (!id_map.count(c)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      ENode node;
      node.op = p.op;
      node.symbol = p.symbol;
      for (std::size_t c = 0; c < p.children.size(); ++c) {
        node.children[c] = id_map.at(p.children[c]);
      }
      EClassId cls = out.egraph.add(node);
      auto it = id_map.find(p.cls);
      if (it == id_map.end()) {
        id_map.emplace(p.cls, cls);
      } else {
        out.egraph.merge(it->second, cls);
      }
      done[i] = true;
      --remaining;
      ++placed_last_round;
    }
  }
  if (remaining > 0) {
    // Saturated e-graphs may contain cyclic equivalences (e.g. the class of
    // `a` containing AND(a, a|b)); nodes whose cycle prevents placement are
    // redundant *equivalent* forms, so dropping them is sound as long as
    // every class kept at least one representative.
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (!done[i] && !id_map.count(pending[i].cls)) {
        throw std::runtime_error("dsl: class has no acyclic representative");
      }
    }
  }
  out.egraph.rebuild();

  for (const Json& jr : doc.at("roots").as_array()) {
    SerializedRoot r;
    r.id = out.egraph.find(id_map.at(jr.at("id").as_int()));
    r.complemented = jr.at("compl").as_bool();
    r.name = jr.at("name").as_string();
    out.roots.push_back(std::move(r));
  }
  return out;
}

}  // namespace emorphic
