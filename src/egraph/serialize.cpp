#include "egraph/serialize.hpp"

#include <stdexcept>
#include <unordered_map>

#include "util/json.hpp"

namespace emorphic {

namespace {

// Typed accessors for the deserializer: the Json value class crashes (null
// shared_ptr deref) on as_array()/as_object() against the wrong type and
// silently coerces on as_string()/as_bool()/as_int(), so every read of
// client-supplied text goes through these, which throw std::runtime_error
// naming the offending location instead.
const JsonArray& expect_array(const Json& v, const std::string& where) {
  if (!v.is_array()) throw std::runtime_error("dsl: " + where + " is not an array");
  return v.as_array();
}

const JsonObject& expect_object(const Json& v, const std::string& where) {
  if (!v.is_object()) {
    throw std::runtime_error("dsl: " + where + " is not an object");
  }
  return v.as_object();
}

const std::string& expect_string(const Json& v, const std::string& where) {
  if (!v.is_string()) {
    throw std::runtime_error("dsl: " + where + " is not a string");
  }
  return v.as_string();
}

bool expect_bool(const Json& v, const std::string& where) {
  if (v.type() != Json::Type::kBool) {
    throw std::runtime_error("dsl: " + where + " is not a boolean");
  }
  return v.as_bool();
}

std::int64_t expect_id(const Json& v, const std::string& where) {
  if (!v.is_number()) {
    throw std::runtime_error("dsl: " + where + " is not a number");
  }
  double d = v.as_number();
  if (d < 0 || d != static_cast<double>(static_cast<std::int64_t>(d))) {
    throw std::runtime_error("dsl: " + where + " is not a non-negative integer");
  }
  return static_cast<std::int64_t>(d);
}

// Class keys must be whole non-negative decimal tokens: std::stoll would
// accept "12abc", leading whitespace, and signs, silently renaming classes.
std::int64_t parse_class_key(const std::string& key) {
  if (key.empty() || key.size() > 18) {
    throw std::runtime_error("dsl: malformed class id '" + key + "'");
  }
  std::int64_t value = 0;
  for (char c : key) {
    if (c < '0' || c > '9') {
      throw std::runtime_error("dsl: malformed class id '" + key + "'");
    }
    value = value * 10 + (c - '0');
  }
  return value;
}

const char* op_key(Op op) {
  switch (op) {
    case Op::kConst0:
      return "Const0";
    case Op::kConst1:
      return "Const1";
    case Op::kVar:
      return "Symbol";
    case Op::kNot:
      return "NOT";
    case Op::kAnd:
      return "AND";
    case Op::kOr:
      return "OR";
    case Op::kXor:
      return "XOR";
  }
  return "?";
}

}  // namespace

std::string egraph_to_dsl(const EGraph& egraph,
                          const std::vector<SerializedRoot>& roots,
                          const std::vector<std::string>& var_names) {
  Json doc = Json::object();
  Json classes = Json::object();

  for (EClassId id : egraph.class_ids()) {
    Json entry = Json::object();
    entry["id"] = static_cast<std::uint64_t>(id);
    Json nodes = Json::array();
    for (const ENode& n : egraph.eclass(id).nodes) {
      Json node = Json::object();
      if (n.op == Op::kVar) {
        node[op_key(n.op)] = var_names.at(n.symbol);
      } else if (op_arity(n.op) == 0) {
        node[op_key(n.op)] = Json::array();
      } else {
        Json children = Json::array();
        for (unsigned i = 0; i < n.arity(); ++i) {
          children.push_back(static_cast<std::uint64_t>(egraph.find(n.children[i])));
        }
        node[op_key(n.op)] = std::move(children);
      }
      nodes.push_back(std::move(node));
    }
    entry["nodes"] = std::move(nodes);
    Json parents = Json::array();
    for (const auto& [pnode, pclass] : egraph.eclass(id).parents) {
      (void)pnode;
      parents.push_back(static_cast<std::uint64_t>(egraph.find(pclass)));
    }
    entry["parents"] = std::move(parents);
    classes[std::to_string(id)] = std::move(entry);
  }
  doc["egraph"] = std::move(classes);

  Json jroots = Json::array();
  for (const SerializedRoot& r : roots) {
    Json jr = Json::object();
    jr["id"] = static_cast<std::uint64_t>(egraph.find(r.id));
    jr["compl"] = Json(r.complemented);
    jr["name"] = r.name;
    jroots.push_back(std::move(jr));
  }
  doc["roots"] = std::move(jroots);

  Json jvars = Json::array();
  for (const auto& name : var_names) jvars.push_back(name);
  doc["inputs"] = std::move(jvars);
  return doc.dump();
}

DeserializedEGraph dsl_to_egraph(const std::string& text) {
  Json doc = Json::parse(text);
  DeserializedEGraph out;
  for (const Json& v : expect_array(doc.at("inputs"), "inputs")) {
    out.var_names.push_back(expect_string(v, "input name"));
  }
  std::unordered_map<std::string, std::uint32_t> symbol_of;
  for (std::uint32_t i = 0; i < out.var_names.size(); ++i) {
    if (!symbol_of.emplace(out.var_names[i], i).second) {
      throw std::runtime_error("dsl: duplicate input name " + out.var_names[i]);
    }
  }

  const JsonObject& classes = expect_object(doc.at("egraph"), "egraph");

  // Two-pass construction: first create a placeholder class per old id by
  // adding one representative node once its children exist (topological via
  // worklist), then merge in the remaining nodes of each class.
  std::unordered_map<std::int64_t, EClassId> id_map;

  struct PendingNode {
    std::int64_t cls;
    Op op;
    std::uint32_t symbol = 0;
    std::vector<std::int64_t> children;
  };
  std::unordered_map<std::int64_t, bool> declared;  // old id -> seen
  for (const auto& [key, entry] : classes) {
    (void)entry;
    declared.emplace(parse_class_key(key), true);
  }

  std::vector<PendingNode> pending;
  for (const auto& [key, entry] : classes) {
    std::int64_t old_id = parse_class_key(key);
    const std::string where = "class " + key;
    for (const Json& jnode :
         expect_array(entry.at("nodes"), where + " nodes")) {
      const JsonObject& obj = expect_object(jnode, where + " node");
      if (obj.size() != 1) {
        throw std::runtime_error("dsl: " + where +
                                 " node is not a single-operator object");
      }
      const auto& [op_str, payload] = *obj.begin();
      PendingNode p;
      p.cls = old_id;
      if (op_str == "Symbol") {
        p.op = Op::kVar;
        const std::string& sym = expect_string(payload, where + " Symbol");
        auto it = symbol_of.find(sym);
        if (it == symbol_of.end()) {
          throw std::runtime_error("dsl: unknown symbol " + sym);
        }
        p.symbol = it->second;
      } else if (op_str == "Const0" || op_str == "Const1") {
        p.op = op_str == "Const0" ? Op::kConst0 : Op::kConst1;
        if (!expect_array(payload, where + ' ' + op_str).empty()) {
          throw std::runtime_error("dsl: " + where + ' ' + op_str +
                                   " takes no children");
        }
      } else if (op_str == "NOT" || op_str == "AND" || op_str == "OR" ||
                 op_str == "XOR") {
        p.op = op_str == "NOT"  ? Op::kNot
               : op_str == "AND" ? Op::kAnd
               : op_str == "OR"  ? Op::kOr
                                 : Op::kXor;
        for (const Json& c : expect_array(payload, where + ' ' + op_str)) {
          std::int64_t child = expect_id(c, where + ' ' + op_str + " child");
          if (!declared.count(child)) {
            throw std::runtime_error("dsl: " + where +
                                     " references undefined class " +
                                     std::to_string(child));
          }
          p.children.push_back(child);
        }
      } else {
        throw std::runtime_error("dsl: unknown operator " + op_str);
      }
      if (p.children.size() != op_arity(p.op)) {
        // The OOB guard: an oversized child list would otherwise write past
        // the ENode's two-slot children array.
        throw std::runtime_error(
            "dsl: " + where + ' ' + op_str + " has " +
            std::to_string(p.children.size()) + " children (expected " +
            std::to_string(op_arity(p.op)) + ")");
      }
      pending.push_back(std::move(p));
    }
  }

  // Worklist until all nodes are placed (child classes must exist first).
  std::size_t placed_last_round = 1;
  std::vector<bool> done(pending.size(), false);
  std::size_t remaining = pending.size();
  while (remaining > 0 && placed_last_round > 0) {
    placed_last_round = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (done[i]) continue;
      const PendingNode& p = pending[i];
      bool ready = true;
      for (std::int64_t c : p.children) {
        if (!id_map.count(c)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      ENode node;
      node.op = p.op;
      node.symbol = p.symbol;
      for (std::size_t c = 0; c < p.children.size(); ++c) {
        node.children[c] = id_map.at(p.children[c]);
      }
      EClassId cls = out.egraph.add(node);
      auto it = id_map.find(p.cls);
      if (it == id_map.end()) {
        id_map.emplace(p.cls, cls);
      } else {
        out.egraph.merge(it->second, cls);
      }
      done[i] = true;
      --remaining;
      ++placed_last_round;
    }
  }
  if (remaining > 0) {
    // Saturated e-graphs may contain cyclic equivalences (e.g. the class of
    // `a` containing AND(a, a|b)); nodes whose cycle prevents placement are
    // redundant *equivalent* forms, so dropping them is sound as long as
    // every class kept at least one representative.
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (!done[i] && !id_map.count(pending[i].cls)) {
        throw std::runtime_error("dsl: class has no acyclic representative");
      }
    }
  }
  out.egraph.rebuild();

  for (const Json& jr : expect_array(doc.at("roots"), "roots")) {
    expect_object(jr, "root");
    SerializedRoot r;
    std::int64_t old_id = expect_id(jr.at("id"), "root id");
    auto it = id_map.find(old_id);
    if (it == id_map.end()) {
      throw std::runtime_error("dsl: root references undefined class " +
                               std::to_string(old_id));
    }
    r.id = out.egraph.find(it->second);
    r.complemented = expect_bool(jr.at("compl"), "root compl");
    r.name = expect_string(jr.at("name"), "root name");
    out.roots.push_back(std::move(r));
  }
  return out;
}

}  // namespace emorphic
