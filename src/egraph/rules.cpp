#include "egraph/rules.hpp"

namespace emorphic {

namespace {

std::vector<Rewrite> associativity_rules() {
  Pat a = Pat::v("a"), b = Pat::v("b"), c = Pat::v("c");
  return {
      Rewrite::make("assoc-and", Pat::and_(Pat::and_(a, b), c),
                    Pat::and_(a, Pat::and_(b, c))),
      Rewrite::make("assoc-and-rev", Pat::and_(a, Pat::and_(b, c)),
                    Pat::and_(Pat::and_(a, b), c)),
      Rewrite::make("assoc-or", Pat::or_(Pat::or_(a, b), c),
                    Pat::or_(a, Pat::or_(b, c))),
      Rewrite::make("assoc-or-rev", Pat::or_(a, Pat::or_(b, c)),
                    Pat::or_(Pat::or_(a, b), c)),
  };
}

std::vector<Rewrite> distributivity_rules() {
  Pat a = Pat::v("a"), b = Pat::v("b"), c = Pat::v("c");
  return {
      // a*(b+c) <-> a*b + a*c
      Rewrite::make("dist-and-over-or",
                    Pat::and_(a, Pat::or_(b, c)),
                    Pat::or_(Pat::and_(a, b), Pat::and_(a, c))),
      Rewrite::make("factor-and",
                    Pat::or_(Pat::and_(a, b), Pat::and_(a, c)),
                    Pat::and_(a, Pat::or_(b, c))),
      // (a+b)*(a+c) <-> a + b*c
      Rewrite::make("dist-or-over-and",
                    Pat::or_(a, Pat::and_(b, c)),
                    Pat::and_(Pat::or_(a, b), Pat::or_(a, c))),
      Rewrite::make("factor-or",
                    Pat::and_(Pat::or_(a, b), Pat::or_(a, c)),
                    Pat::or_(a, Pat::and_(b, c))),
  };
}

std::vector<Rewrite> consensus_rules() {
  Pat a = Pat::v("a"), b = Pat::v("b"), c = Pat::v("c");
  // (a*b) + ((!a)*c) + (b*c) -> (a*b) + (!a)*c      [redundant term removal]
  // The ternary sums appear as binary trees; associativity generates the
  // other associations so one canonical shape per direction suffices.
  return {
      Rewrite::make(
          "consensus-or",
          Pat::or_(Pat::or_(Pat::and_(a, b), Pat::and_(Pat::not_(a), c)),
                   Pat::and_(b, c)),
          Pat::or_(Pat::and_(a, b), Pat::and_(Pat::not_(a), c))),
      Rewrite::make(
          "consensus-and",
          Pat::and_(Pat::and_(Pat::or_(a, b), Pat::or_(Pat::not_(a), c)),
                    Pat::or_(b, c)),
          Pat::and_(Pat::or_(a, b), Pat::or_(Pat::not_(a), c))),
  };
}

std::vector<Rewrite> demorgan_rules() {
  Pat a = Pat::v("a"), b = Pat::v("b");
  return {
      Rewrite::make("demorgan-and", Pat::not_(Pat::and_(a, b)),
                    Pat::or_(Pat::not_(a), Pat::not_(b))),
      Rewrite::make("demorgan-and-rev", Pat::or_(Pat::not_(a), Pat::not_(b)),
                    Pat::not_(Pat::and_(a, b))),
      Rewrite::make("demorgan-or", Pat::not_(Pat::or_(a, b)),
                    Pat::and_(Pat::not_(a), Pat::not_(b))),
      Rewrite::make("demorgan-or-rev", Pat::and_(Pat::not_(a), Pat::not_(b)),
                    Pat::not_(Pat::or_(a, b))),
  };
}

std::vector<Rewrite> covering_rules() {
  // The covering rules shown in Fig. 5: a*(a+b) -> a, a + a*b -> a.
  Pat a = Pat::v("a"), b = Pat::v("b");
  return {
      Rewrite::make("absorb-and", Pat::and_(a, Pat::or_(a, b)), a),
      Rewrite::make("absorb-or", Pat::or_(a, Pat::and_(a, b)), a),
      Rewrite::make("idem-and", Pat::and_(a, a), a),
      Rewrite::make("idem-or", Pat::or_(a, a), a),
  };
}

std::vector<Rewrite> constant_rules() {
  Pat a = Pat::v("a");
  return {
      Rewrite::make("and-true", Pat::and_(a, Pat::c1()), a),
      Rewrite::make("and-false", Pat::and_(a, Pat::c0()), Pat::c0()),
      Rewrite::make("or-false", Pat::or_(a, Pat::c0()), a),
      Rewrite::make("or-true", Pat::or_(a, Pat::c1()), Pat::c1()),
      Rewrite::make("and-compl", Pat::and_(a, Pat::not_(a)), Pat::c0()),
      Rewrite::make("or-compl", Pat::or_(a, Pat::not_(a)), Pat::c1()),
      Rewrite::make("double-neg", Pat::not_(Pat::not_(a)), a),
      Rewrite::make("not-0", Pat::not_(Pat::c0()), Pat::c1()),
      Rewrite::make("not-1", Pat::not_(Pat::c1()), Pat::c0()),
  };
}

std::vector<Rewrite> xor_rules() {
  Pat a = Pat::v("a"), b = Pat::v("b");
  return {
      Rewrite::make("xor-def",
                    Pat::or_(Pat::and_(a, Pat::not_(b)),
                             Pat::and_(Pat::not_(a), b)),
                    Pat::xor_(a, b)),
      Rewrite::make("xor-expand", Pat::xor_(a, b),
                    Pat::or_(Pat::and_(a, Pat::not_(b)),
                             Pat::and_(Pat::not_(a), b))),
      Rewrite::make("xor-zero", Pat::xor_(a, Pat::c0()), a),
      Rewrite::make("xor-one", Pat::xor_(a, Pat::c1()), Pat::not_(a)),
      Rewrite::make("xor-self", Pat::xor_(a, a), Pat::c0()),
  };
}

void append(std::vector<Rewrite>& into, std::vector<Rewrite> from) {
  for (auto& r : from) into.push_back(std::move(r));
}

}  // namespace

std::vector<Rewrite> make_logic_rules() {
  std::vector<Rewrite> rules;
  append(rules, associativity_rules());
  append(rules, distributivity_rules());
  append(rules, consensus_rules());
  append(rules, demorgan_rules());
  append(rules, covering_rules());
  append(rules, constant_rules());
  append(rules, xor_rules());
  return rules;
}

std::vector<Rewrite> make_reduction_rules() {
  std::vector<Rewrite> rules;
  append(rules, covering_rules());
  append(rules, constant_rules());
  return rules;
}

std::vector<RuleClass> make_rule_classes() {
  std::vector<RuleClass> classes;
  classes.push_back({"Associativity", associativity_rules()});
  classes.push_back({"Distributivity", distributivity_rules()});
  classes.push_back({"Consensus", consensus_rules()});
  classes.push_back({"De-Morgan", demorgan_rules()});
  classes.push_back({"Covering", covering_rules()});
  classes.push_back({"Constants", constant_rules()});
  classes.push_back({"Xor", xor_rules()});
  return classes;
}

}  // namespace emorphic
