#pragma once
// Per-class choice export: which member e-nodes of an e-class are worth
// materializing as *alternative structures* next to the one an extraction
// committed to, and in what order.
//
// After a few saturation iterations an e-class typically holds several
// e-nodes — the AND form, the De-Morgan OR form, re-associated variants,
// an XOR recognition… Extraction keeps exactly one; everything else is the
// structural diversity the paper credits equality saturation for
// (Sec. I, insight 1). The choice export (flow/choice_export.hpp) lowers a
// capped, deterministically ordered subset of those extra members into a
// choice-annotated AIG (aig/choice.hpp) so technology mapping can select
// matches across all variants instead of the single extracted structure.
//
// Only binary operators are candidates: kNot lowers to a complemented edge
// and kVar/kConst to existing literals, so they contribute no alternative
// structure. The order is stable under e-graph rebuilds (operator index,
// then canonical child ids), which keeps the exported choice AIG — and
// therefore mapping results — reproducible run to run.

#include <cstdint>
#include <vector>

#include "egraph/egraph.hpp"

namespace emorphic {

/// Indices (into `egraph.eclass(cls).nodes`) of the member e-nodes of `cls`
/// to attempt as choice alternatives, excluding `chosen_index` (the member
/// the extraction selected), in deterministic order, at most `cap` entries.
/// Binary-operator members only; `cls` may be any id (it is canonicalized).
std::vector<std::uint32_t> choice_candidates(const EGraph& egraph,
                                             EClassId cls,
                                             std::uint32_t chosen_index,
                                             std::uint32_t cap);

/// Total number of binary-operator e-nodes beyond the first per class —
/// an upper bound on how many alternatives an export over `egraph` could
/// ever materialize (diagnostics / bench reporting).
std::size_t choice_potential(const EGraph& egraph);

}  // namespace emorphic
