#pragma once
// The e-graph: a congruence-closed union of equivalence classes of terms,
// following egg's design [16]: hash-consed e-nodes, a union-find over
// e-class ids, and deferred invariant restoration (`rebuild`).
//
// Non-destructive rewriting over this structure is what lets E-morphic keep
// *every* intermediate structure of the circuit alive simultaneously, in
// contrast to ABC's destructive local rewriting (Sec. I, insight 1).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "egraph/language.hpp"

namespace emorphic {

/// One equivalence class: the e-nodes it contains plus parent back-edges
/// used for congruence repair.
struct EClass {
  std::vector<ENode> nodes;
  /// (parent e-node as it was added, class the parent lives in)
  std::vector<std::pair<ENode, EClassId>> parents;
};

class EGraph {
 public:
  EGraph() = default;

  /// Add an e-node (children must be existing class ids); returns its class.
  /// Hash-consing makes this idempotent.
  EClassId add(ENode node);

  // Convenience builders.
  EClassId add_const0() { return add(ENode::const0()); }
  EClassId add_const1() { return add(ENode::const1()); }
  EClassId add_var(std::uint32_t symbol) { return add(ENode::var(symbol)); }
  EClassId add_not(EClassId a) { return add(ENode::not_of(a)); }
  EClassId add_and(EClassId a, EClassId b) { return add(ENode::and_of(a, b)); }
  EClassId add_or(EClassId a, EClassId b) { return add(ENode::or_of(a, b)); }
  EClassId add_xor(EClassId a, EClassId b) { return add(ENode::xor_of(a, b)); }

  /// Assert two classes equal; returns the surviving root id.
  /// Invariants are restored lazily by rebuild().
  EClassId merge(EClassId a, EClassId b);

  /// Restore hash-consing and congruence after a batch of merges
  /// (egg's deferred rebuild). Returns the number of congruence-induced
  /// merges performed.
  std::size_t rebuild();

  /// Canonical id of a class.
  EClassId find(EClassId id) const;

  /// Is this id its own canonical representative (a live class)?
  bool is_root(EClassId id) const { return find(id) == id; }

  const EClass& eclass(EClassId id) const { return classes_[find(id)]; }

  /// Look up an e-node; returns kNoEClass when absent. Children are
  /// canonicalized first. Valid only when the e-graph is clean (rebuilt).
  EClassId lookup(ENode node) const;

  /// Total number of e-classes ever created (== e-nodes ever added, since
  /// every add() that misses the hash-cons creates exactly one class with
  /// one node). O(1) upper bound on num_enodes(), used for growth limits.
  std::size_t num_classes_created() const { return classes_.size(); }

  /// Total number of live (canonical) e-classes.
  std::size_t num_classes() const;
  /// Total number of e-nodes across live classes.
  std::size_t num_enodes() const;

  /// All canonical class ids (stable order).
  std::vector<EClassId> class_ids() const;

  /// True if there are pending merges not yet rebuilt.
  bool is_dirty() const { return !worklist_.empty(); }

  /// Canonicalize an e-node's children in place and return it.
  ENode canonicalize(ENode node) const;

  /// Verify the congruence/hash-consing invariants of a *clean* (rebuilt)
  /// e-graph; on failure, describes the violation in `why`. Used by tests
  /// and fuzzing — O(total e-nodes).
  bool check_invariants(std::string* why = nullptr) const;

 private:
  EClassId make_class(ENode node);
  void repair(EClassId id);

  std::vector<EClassId> parent_;        // union-find
  std::vector<std::uint32_t> rank_;
  std::vector<EClass> classes_;         // dense, indexed by id; only roots live
  std::unordered_map<ENode, EClassId, ENodeHash> hashcons_;
  std::vector<EClassId> worklist_;      // classes needing repair
};

}  // namespace emorphic
