#pragma once
// The e-graph: a congruence-closed union of equivalence classes of terms,
// following egg's design [16]: hash-consed e-nodes, a union-find over
// e-class ids, and deferred invariant restoration (`rebuild`).
//
// Non-destructive rewriting over this structure is what lets E-morphic keep
// *every* intermediate structure of the circuit alive simultaneously, in
// contrast to ABC's destructive local rewriting (Sec. I, insight 1).
//
// Performance notes (see docs/egraph-internals.md for the full story):
//  - E-nodes are interned in a flat open-addressing table (HashCons) instead
//    of std::unordered_map: probing walks contiguous arrays, not heap nodes.
//  - Class member/parent lists are struct-of-arrays: dense vectors of
//    ArenaSpan headers indexed by class id, with the element storage in two
//    SpanStore bump arenas. Growing a class bumps an arena pointer instead
//    of calling malloc, and rebuild() reclaims the waste merges leave
//    behind by compacting the arenas (epoch reclaim) — so a warmed-up
//    saturation loop runs allocation-free (bench/micro_alloc.cpp holds
//    this via exit code).
//  - The union-find uses path halving, and rebuild() finishes with a full
//    compression pass so that on a *clean* e-graph every parent pointer aims
//    directly at its root. find() on a clean graph is therefore one load and
//    never writes — which is what makes the read-only parallel match phase
//    of the runner data-race free.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "egraph/hashcons.hpp"
#include "egraph/language.hpp"
#include "util/arena.hpp"

namespace emorphic {

namespace check {
struct CheckProbe;  // corruption-seeding seam for validator tests
}  // namespace check

struct SnapshotAccess;  // binary checkpoint/restore seam (egraph/snapshot.cpp)

/// Back-edge from a child class to an e-node that references it.
/// `node` is the parent e-node as it was last canonicalized; `cls` is the
/// class that e-node belongs to.
struct ParentEdge {
  ENode node;
  EClassId cls = kNoEClass;
};

/// One equivalence class, as a *view* into the e-graph's struct-of-arrays
/// storage: the e-nodes it contains plus parent back-edges used for
/// congruence repair. Returned by value from EGraph::eclass(); the
/// reference members alias the e-graph's persistent span headers, so
/// `const auto& nodes = egraph.eclass(c).nodes;` stays valid for as long
/// as the underlying storage does (i.e. until the next mutation).
struct EClass {
  /// Member e-nodes, canonical and duplicate-free on a clean e-graph.
  const ArenaSpan<ENode>& nodes;
  /// Parent back-edges consumed by EGraph::rebuild's congruence repair.
  const ArenaSpan<ParentEdge>& parents;
};

/// A congruence-closed e-graph over the Boolean language of language.hpp.
///
/// Mutations (`add`, `merge`) may leave the invariants temporarily broken;
/// `rebuild()` restores them. Queries (`find`, `eclass`, `lookup`, the
/// counters) are const and never mutate shared state, so concurrent reads of
/// a clean e-graph are safe.
class EGraph {
 public:
  EGraph() = default;

  // Move-only: the arena-backed span stores own raw storage that the span
  // headers point into; moving transfers the arenas wholesale (addresses
  // are stable), but a copy would need a deep re-layout nothing requires.
  EGraph(EGraph&&) noexcept = default;
  EGraph& operator=(EGraph&&) noexcept = default;
  EGraph(const EGraph&) = delete;
  EGraph& operator=(const EGraph&) = delete;

  /// Add an e-node (children must be existing class ids); returns its class.
  /// Hash-consing makes this idempotent.
  EClassId add(ENode node);

  /// Forget everything, keep every allocation (arena blocks, hashcons
  /// table, vector capacities) — the reuse path for running many
  /// saturations through one e-graph without allocator churn.
  void clear();

  // Convenience builders.
  EClassId add_const0() { return add(ENode::const0()); }
  EClassId add_const1() { return add(ENode::const1()); }
  EClassId add_var(std::uint32_t symbol) { return add(ENode::var(symbol)); }
  EClassId add_not(EClassId a) { return add(ENode::not_of(a)); }
  EClassId add_and(EClassId a, EClassId b) { return add(ENode::and_of(a, b)); }
  EClassId add_or(EClassId a, EClassId b) { return add(ENode::or_of(a, b)); }
  EClassId add_xor(EClassId a, EClassId b) { return add(ENode::xor_of(a, b)); }

  /// Assert two classes equal; returns the surviving root id.
  /// Invariants are restored lazily by rebuild().
  EClassId merge(EClassId a, EClassId b);

  /// Restore hash-consing and congruence after a batch of merges
  /// (egg's deferred rebuild). Returns the number of congruence-induced
  /// merges performed. Finishes by fully compressing the union-find, so a
  /// clean e-graph answers find() in one load.
  std::size_t rebuild();

  /// Canonical id of a class. Non-mutating: on a clean (rebuilt) e-graph
  /// this is a single load; while merges are pending it follows the
  /// (rank-bounded) parent chain.
  EClassId find(EClassId id) const {
    while (parent_[id] != id) id = parent_[id];
    return id;
  }

  /// Is this id its own canonical representative (a live class)?
  bool is_root(EClassId id) const { return find(id) == id; }

  /// The class `id` currently belongs to (follows the union-find).
  EClass eclass(EClassId id) const {
    EClassId root = find(id);
    return EClass{class_nodes_[root], class_parents_[root]};
  }

  /// Look up an e-node; returns kNoEClass when absent. Children are
  /// canonicalized first. Valid only when the e-graph is clean (rebuilt).
  EClassId lookup(ENode node) const;

  /// Total number of e-classes ever created (== e-nodes ever added, since
  /// every add() that misses the hash-cons creates exactly one class with
  /// one node). O(1) upper bound on num_enodes(), used for growth limits.
  std::size_t num_classes_created() const { return class_nodes_.size(); }

  /// Total number of live (canonical) e-classes.
  std::size_t num_classes() const;
  /// Total number of e-nodes across live classes.
  std::size_t num_enodes() const;

  /// All canonical class ids (stable order).
  std::vector<EClassId> class_ids() const;

  /// True if there are pending merges not yet rebuilt.
  bool is_dirty() const { return !worklist_.empty(); }

  /// Canonicalize an e-node's children in place (commutative operators also
  /// get a canonical child order) and return it.
  ENode canonicalize(ENode node) const;

  /// Verify the congruence/hash-consing invariants of a *clean* (rebuilt)
  /// e-graph; on failure, describes the violation in `why`. Used by tests
  /// and fuzzing — O(total e-nodes).
  bool check_invariants(std::string* why = nullptr) const;

 private:
  friend struct check::CheckProbe;
  friend struct SnapshotAccess;

  EClassId make_class(ENode node);
  /// Path-halving find; used on the mutating paths where writes are safe.
  EClassId find_mut(EClassId id);
  void repair(EClassId id);
  /// Re-canonicalize and deduplicate one class's node list.
  void dedup_nodes(EClassId root);

  std::vector<EClassId> parent_;        // union-find (compressed when clean)
  std::vector<std::uint32_t> rank_;
  // Struct-of-arrays class storage: span headers dense by class id (only
  // roots hold live spans), elements in the two bump-arena stores below.
  std::vector<ArenaSpan<ENode>> class_nodes_;
  std::vector<ArenaSpan<ParentEdge>> class_parents_;
  SpanStore<ENode> node_store_;
  SpanStore<ParentEdge> parent_store_;
  HashCons hashcons_;                   // canonical e-node -> class id
  std::vector<EClassId> worklist_;      // classes needing congruence repair
  std::vector<EClassId> sweeplist_;     // parent classes possibly left stale
  // Reused scratch for repair()/dedup_nodes(): cleared (capacity kept)
  // instead of reallocated per call, so congruence repair stops being the
  // dominant allocation site of a saturation run.
  HashCons repair_seen_;
  std::vector<ParentEdge> repair_old_;
  std::vector<ParentEdge> repair_dedup_;
  HashCons dedup_uniq_;
  std::vector<ENode> dedup_scratch_;
  std::vector<EClassId> rebuild_todo_;  // rebuild(): worklist double-buffer
  std::vector<ENode> stranded_;         // rebuild(): stranded-key sweep
};

}  // namespace emorphic
