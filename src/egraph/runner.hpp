#pragma once
// The equality-saturation runner (egg's `Runner` [16]): repeatedly searches
// all rules, applies the matches, and restores congruence, until the e-graph
// saturates or a resource limit fires.
//
// E-morphic deliberately runs *few* iterations (5 in the paper, Sec. IV-A):
// a handful of non-destructive rounds already multiplies the number of
// equivalence classes far beyond what ABC's `dch` choices record, while
// keeping node counts and runtime in check (Sec. I, insight 1).

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "egraph/pattern.hpp"

namespace emorphic {

struct RunnerLimits {
  std::size_t max_iterations = 5;
  std::size_t max_enodes = 250000;
  double time_limit_s = 30.0;
  /// Cap on matches gathered per rule per iteration: keeps pathological
  /// rules (associativity on deep chains) from starving the others.
  std::size_t max_matches_per_rule = 20000;
};

enum class StopReason {
  kSaturated,
  kIterLimit,
  kNodeLimit,
  kTimeLimit,
  kCancelled,  // an iteration hook asked to stop (see RunnerHooks)
};

const char* stop_reason_name(StopReason reason);

struct IterationStats {
  std::size_t matches = 0;       // substitutions found
  std::size_t applied = 0;       // merges that changed the e-graph
  std::size_t enodes_after = 0;
  std::size_t classes_after = 0;
  double seconds = 0.0;
};

struct RunnerReport {
  StopReason stop_reason = StopReason::kSaturated;
  std::vector<IterationStats> iterations;
  double total_seconds = 0.0;
  /// Per-rule totals across all iterations (parallel to the rule vector).
  std::vector<std::size_t> rule_matches;
  std::vector<std::size_t> rule_applications;
};

/// Progress callbacks for a rewriting run (all optional).
struct RunnerHooks {
  /// Called after every completed iteration with its stats; return false to
  /// stop early (reported as StopReason::kCancelled). This is how the flow
  /// pipeline forwards iteration telemetry to FlowObserver and implements
  /// cancellation / time budgets.
  std::function<bool(const IterationStats&)> on_iteration;
};

/// Run equality saturation over `egraph` with the given rules and limits.
RunnerReport run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                           const RunnerLimits& limits);

/// Overload with progress hooks.
RunnerReport run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                           const RunnerLimits& limits,
                           const RunnerHooks& hooks);

}  // namespace emorphic
