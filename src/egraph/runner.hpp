#pragma once
// The equality-saturation runner (egg's `Runner` [16]): repeatedly searches
// all rules, applies the matches, and restores congruence, until the e-graph
// saturates or a resource limit fires.
//
// E-morphic deliberately runs *few* iterations (5 in the paper, Sec. IV-A):
// a handful of non-destructive rounds already multiplies the number of
// equivalence classes far beyond what ABC's `dch` choices record, while
// keeping node counts and runtime in check (Sec. I, insight 1).
//
// Each iteration is three phases:
//   1. search — e-matching against a frozen e-graph. Rules are indexed by
//      their head operator, so a rule only visits classes that contain at
//      least one e-node with that operator; the search is read-only and can
//      be threaded across e-classes (`RunnerParams::match_threads`).
//   2. apply — all collected matches are instantiated and merged serially.
//   3. rebuild — one deferred congruence restoration for the whole batch.
// The match lists are identical whatever the thread count and whether the
// index is on, so saturation results are bit-for-bit reproducible.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "egraph/pattern.hpp"

namespace emorphic {

/// Resource limits and search configuration for one saturation run.
struct RunnerParams {
  /// Upper bound on search/apply/rebuild iterations.
  std::size_t max_iterations = 5;
  /// Stop once the e-graph holds this many e-nodes (the paper's memory cap).
  std::size_t max_enodes = 250000;
  /// Wall-clock budget for the whole run, in seconds. Polled between
  /// iterations (an over-budget iteration finishes first), so hitting it
  /// does not perturb the per-iteration results.
  double time_limit_s = 30.0;
  /// Cap on matches gathered per rule per iteration: keeps pathological
  /// rules (associativity on deep chains) from starving the others.
  std::size_t max_matches_per_rule = 20000;
  /// Worker threads for the read-only match phase: 1 = serial (default),
  /// 0 = hardware concurrency. Results are independent of this setting.
  unsigned match_threads = 1;
  /// Consult the head-operator rule index so each rule only visits candidate
  /// classes. Off = scan every class per rule (the pre-index behavior; kept
  /// as a correctness oracle for tests and benches).
  bool use_rule_index = true;
};

/// Historical name of RunnerParams (the struct originally carried only the
/// resource limits).
using RunnerLimits = RunnerParams;

/// Why a saturation run ended.
enum class StopReason {
  kSaturated,
  kIterLimit,
  kNodeLimit,
  kTimeLimit,
  kCancelled,  // an iteration hook asked to stop (see RunnerHooks)
};

/// Printable name of a StopReason.
const char* stop_reason_name(StopReason reason);

/// Per-iteration statistics reported to RunnerHooks::on_iteration.
struct IterationStats {
  std::size_t matches = 0;       // substitutions found
  std::size_t applied = 0;       // merges that changed the e-graph
  std::size_t enodes_after = 0;
  std::size_t classes_after = 0;
  double seconds = 0.0;
};

/// Everything a finished saturation run reports.
struct RunnerReport {
  StopReason stop_reason = StopReason::kSaturated;
  std::vector<IterationStats> iterations;
  double total_seconds = 0.0;
  /// Per-rule totals across all iterations (parallel to the rule vector).
  std::vector<std::size_t> rule_matches;
  std::vector<std::size_t> rule_applications;
};

/// Progress callbacks for a rewriting run (all optional).
struct RunnerHooks {
  /// Called after every completed iteration with its stats; return false to
  /// stop early (reported as StopReason::kCancelled). This is how the flow
  /// pipeline forwards iteration telemetry to FlowObserver and implements
  /// cancellation / time budgets.
  std::function<bool(const IterationStats&)> on_iteration;
};

/// Run equality saturation over `egraph` with the given rules and limits.
RunnerReport run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                           const RunnerParams& params);

/// Overload with progress hooks.
RunnerReport run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                           const RunnerParams& params,
                           const RunnerHooks& hooks);

}  // namespace emorphic
