#pragma once
// Flat open-addressing hashcons: the ENode -> EClassId interning table at the
// heart of the e-graph.
//
// The seed implementation used std::unordered_map<ENode, EClassId>, which
// pays one heap node plus at least one dependent pointer chase per probe.
// Adds and congruence repairs hammer this table (every instantiate() during
// rule application is one or more probes), so it is stored flat instead:
// keys, values, and slot states live in three contiguous parallel arrays and
// probing is a linear scan over adjacent cache lines. Erasure (needed when
// repair re-keys a parent e-node) leaves a tombstone; tombstones are
// reclaimed wholesale by the periodic rehash that growth triggers anyway.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "egraph/language.hpp"

namespace emorphic {

/// Open-addressing hash table from canonical e-nodes to e-class ids.
/// Power-of-two capacity, linear probing, tombstone deletion.
class HashCons {
 public:
  HashCons() = default;

  /// Number of live (non-tombstone) entries.
  std::size_t size() const { return size_; }

  /// Pre-size the table so that inserting `n` entries triggers no rehash.
  /// try_emplace grows when (used_+1)*8 >= slots*7, i.e. the n-th insert
  /// (used_ == n-1) rehashes when n*8 >= cap*7 — so the boundary case
  /// cap*7 == n*8 must keep doubling too (`<=`, not `<`; the old `<` made
  /// reserve(14) produce 16 slots and the 14th insert rehash anyway —
  /// pinned by tests/util/test_arena.cpp's no-rehash-after-reserve test).
  void reserve(std::size_t n) {
    if (n == 0) return;
    std::size_t cap = kMinCapacity;
    while (cap * 7 <= n * 8) cap *= 2;  // keep load factor under 7/8
    if (cap > slots()) rehash(cap);
  }

  /// Slot count (the allocated table width); stable across clear().
  std::size_t capacity() const { return slots(); }

  /// Forget every entry, keep the allocation — the reuse path for scratch
  /// tables (EGraph::repair) and reusable e-graphs (EGraph::clear).
  void clear() {
    if (size_ == 0 && used_ == 0) return;
    std::fill(state_.begin(), state_.end(), static_cast<std::uint8_t>(kEmpty));
    size_ = 0;
    used_ = 0;
  }

  /// Pointer to the class id mapped to `node`, or nullptr when absent.
  const EClassId* find(const ENode& node) const {
    if (slots() == 0) return nullptr;
    std::size_t i = ENodeHash{}(node) & mask_;
    while (true) {
      switch (state_[i]) {
        case kEmpty:
          return nullptr;
        case kFull:
          if (keys_[i] == node) return &vals_[i];
          break;
        default:  // tombstone: keep probing
          break;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Insert `node -> cls` if absent. Returns the mapped value slot and
  /// whether an insertion happened (false = the node was already interned).
  std::pair<EClassId*, bool> try_emplace(const ENode& node, EClassId cls) {
    if ((used_ + 1) * 8 >= slots() * 7) grow();
    std::size_t i = ENodeHash{}(node) & mask_;
    std::size_t insert_at = kNoSlot;
    while (true) {
      if (state_[i] == kEmpty) {
        if (insert_at == kNoSlot) insert_at = i;
        break;
      }
      if (state_[i] == kFull) {
        if (keys_[i] == node) return {&vals_[i], false};
      } else if (insert_at == kNoSlot) {
        insert_at = i;  // reuse the first tombstone on the probe path
      }
      i = (i + 1) & mask_;
    }
    if (state_[insert_at] == kEmpty) ++used_;
    state_[insert_at] = kFull;
    keys_[insert_at] = node;
    vals_[insert_at] = cls;
    ++size_;
    return {&vals_[insert_at], true};
  }

  /// Map `node` to `cls`, overwriting any existing mapping.
  void insert(const ENode& node, EClassId cls) {
    auto [slot, inserted] = try_emplace(node, cls);
    if (!inserted) *slot = cls;
  }

  /// Visit every live entry as fn(const ENode&, EClassId), in slot order.
  /// The slot order is an implementation detail — callers must not let it
  /// reach any output ordering (the invariant checker only aggregates).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull) fn(keys_[i], vals_[i]);
    }
  }

  /// Remove `node` if present (tombstones the slot).
  void erase(const ENode& node) {
    if (slots() == 0) return;
    std::size_t i = ENodeHash{}(node) & mask_;
    while (state_[i] != kEmpty) {
      if (state_[i] == kFull && keys_[i] == node) {
        state_[i] = kTombstone;
        --size_;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  std::size_t slots() const { return state_.size(); }

  void grow() {
    // Rehash in place-count terms: doubling also flushes tombstones, so a
    // table that mostly re-keys (repair-heavy workloads) stays compact.
    std::size_t cap = slots() == 0 ? kMinCapacity : slots();
    if (size_ * 4 >= cap * 2) cap *= 2;  // at least half full of live keys
    rehash(cap);
  }

  void rehash(std::size_t cap) {
    // Double-buffer through member scratch instead of moving into locals:
    // the buffers swapped out here come back as the target of the *next*
    // rehash, so a steady-state tombstone flush (same capacity every time)
    // reuses warm storage instead of paying three allocations per flush.
    old_keys_.swap(keys_);
    old_vals_.swap(vals_);
    old_state_.swap(state_);
    std::vector<ENode>& old_keys = old_keys_;
    std::vector<EClassId>& old_vals = old_vals_;
    std::vector<std::uint8_t>& old_state = old_state_;
    keys_.assign(cap, ENode{});
    vals_.assign(cap, kNoEClass);
    state_.assign(cap, kEmpty);
    mask_ = cap - 1;
    used_ = size_;
    for (std::size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j = ENodeHash{}(old_keys[i]) & mask_;
      while (state_[j] == kFull) j = (j + 1) & mask_;
      state_[j] = kFull;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<ENode> keys_;          // contiguous interned e-node storage
  std::vector<EClassId> vals_;
  std::vector<std::uint8_t> state_;  // kEmpty / kFull / kTombstone per slot
  // Rehash double buffers (see rehash()); sized like the table itself.
  std::vector<ENode> old_keys_;
  std::vector<EClassId> old_vals_;
  std::vector<std::uint8_t> old_state_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live entries + tombstones
};

}  // namespace emorphic
