#include "egraph/runner.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <thread>
#include <utility>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace emorphic {

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kSaturated:
      return "saturated";
    case StopReason::kIterLimit:
      return "iteration-limit";
    case StopReason::kNodeLimit:
      return "node-limit";
    case StopReason::kTimeLimit:
      return "time-limit";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

RunnerReport run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                           const RunnerParams& params) {
  return run_rewriting(egraph, rules, params, RunnerHooks{});
}

namespace {

/// One rule's matches for one iteration: (matched class, substitution).
using MatchList = std::vector<std::pair<EClassId, Subst>>;

/// Head-operator index: for each operator, the canonical classes containing
/// at least one e-node with that operator, plus the per-class presence masks
/// the matcher prunes with. Built once per iteration in one O(total e-nodes)
/// pass; rules whose LHS root is an operator then only visit their candidate
/// bucket instead of every class.
struct RuleIndex {
  std::array<std::vector<EClassId>, kNumOps> by_op;

  void build(const OpPresence& presence, const std::vector<EClassId>& ids) {
    for (auto& bucket : by_op) bucket.clear();
    for (EClassId id : ids) {
      for (std::size_t op = 0; op < kNumOps; ++op) {
        if (presence.count(id, static_cast<Op>(op)) != 0) {
          by_op[op].push_back(id);
        }
      }
    }
  }
};

/// Serial reference path: match `pattern` against `candidates` in order,
/// stopping once `limit` substitutions are collected.
void match_serial(const EGraph& egraph, const Pattern& pattern,
                  const std::vector<EClassId>& candidates, std::size_t limit,
                  const OpPresence* presence, MatchList& out) {
  std::vector<Subst> substs;
  for (EClassId id : candidates) {
    substs.clear();
    match_in_class(egraph, pattern, id, substs, limit - out.size(), presence);
    for (Subst& s : substs) out.emplace_back(id, std::move(s));
    if (out.size() >= limit) break;
  }
}

}  // namespace

RunnerReport run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                           const RunnerParams& params,
                           const RunnerHooks& hooks) {
  RunnerReport report;
  report.rule_matches.assign(rules.size(), 0);
  report.rule_applications.assign(rules.size(), 0);
  Timer total;

  // The match phase requires a clean e-graph (read-only concurrent finds);
  // a no-op when the caller already rebuilt.
  egraph.rebuild();

  unsigned threads = params.match_threads != 0
                         ? params.match_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  RuleIndex index;

  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    Timer iter_timer;
    IterationStats stats;
    std::size_t enodes_before = egraph.num_enodes();
    std::size_t classes_before = egraph.num_classes();

    // Phase 1: search. Matches are gathered against a frozen e-graph so the
    // rule application order cannot influence what is found (the
    // phase-ordering freedom equality saturation is prized for). The match
    // list per rule is the first `max_matches_per_rule` substitutions in
    // class order — identical for the serial and threaded paths.
    // The per-class operator statistics serve the matcher's pruning and join
    // ordering in *both* modes (so emission order — and thereby the capped
    // match prefix — is identical); use_rule_index only controls whether
    // rules restrict their root candidates to the per-operator buckets.
    std::vector<EClassId> ids = egraph.class_ids();
    OpPresence op_stats;
    op_stats.build(egraph, ids);
    const OpPresence* presence = &op_stats;
    if (params.use_rule_index) index.build(op_stats, ids);

    auto candidates_for = [&](const Pattern& lhs) -> const std::vector<EClassId>& {
      if (params.use_rule_index) {
        if (std::optional<Op> op = lhs.root_op()) {
          return index.by_op[op_index(*op)];
        }
      }
      return ids;
    };

    // The time limit is polled between iterations only (never mid-search):
    // both the serial and the threaded path always gather the full capped
    // match set, which is what keeps results independent of match_threads.
    std::vector<MatchList> all_matches(rules.size());
    if (!pool.has_value()) {
      for (std::size_t r = 0; r < rules.size(); ++r) {
        match_serial(egraph, rules[r].lhs, candidates_for(rules[r].lhs),
                     params.max_matches_per_rule, presence, all_matches[r]);
      }
    } else {
      // Fan (rule, class-range) shards over the pool. Shard results are
      // concatenated in candidate order and truncated to the per-rule cap,
      // reproducing the serial prefix exactly.
      struct Shard {
        std::size_t rule;
        std::size_t begin;
        std::size_t end;
        MatchList matches;
      };
      std::vector<Shard> shards;
      for (std::size_t r = 0; r < rules.size(); ++r) {
        const std::vector<EClassId>& candidates =
            candidates_for(rules[r].lhs);
        std::size_t span =
            (candidates.size() + threads - 1) / threads;  // >= 1 per shard
        for (std::size_t begin = 0; begin < candidates.size(); begin += span) {
          shards.push_back(
              {r, begin, std::min(begin + span, candidates.size()), {}});
        }
      }
      pool->parallel_for(shards.size(), [&](std::size_t i) {
        Shard& shard = shards[i];
        const Pattern& lhs = rules[shard.rule].lhs;
        const std::vector<EClassId>& candidates = candidates_for(lhs);
        std::vector<Subst> substs;
        for (std::size_t c = shard.begin; c < shard.end; ++c) {
          substs.clear();
          match_in_class(egraph, lhs, candidates[c], substs,
                         params.max_matches_per_rule - shard.matches.size(),
                         presence);
          for (Subst& s : substs) {
            shard.matches.emplace_back(candidates[c], std::move(s));
          }
          if (shard.matches.size() >= params.max_matches_per_rule) break;
        }
      });
      for (Shard& shard : shards) {
        MatchList& into = all_matches[shard.rule];
        for (auto& match : shard.matches) {
          if (into.size() >= params.max_matches_per_rule) break;
          into.push_back(std::move(match));
        }
      }
    }
    for (std::size_t r = 0; r < rules.size(); ++r) {
      stats.matches += all_matches[r].size();
      report.rule_matches[r] += all_matches[r].size();
    }

    // Phase 2: apply. Instantiating the RHS only ever adds information.
    for (std::size_t r = 0; r < rules.size(); ++r) {
      for (auto& [cls, subst] : all_matches[r]) {
        EClassId rhs = instantiate(egraph, rules[r].rhs, subst);
        if (egraph.find(cls) != egraph.find(rhs)) {
          egraph.merge(cls, rhs);
          ++stats.applied;
          ++report.rule_applications[r];
        }
        if (egraph.num_classes_created() > params.max_enodes) break;
      }
      if (egraph.num_classes_created() > params.max_enodes) break;
    }

    // Phase 3: rebuild (one deferred congruence restoration per iteration).
    egraph.rebuild();

    stats.enodes_after = egraph.num_enodes();
    stats.classes_after = egraph.num_classes();
    stats.seconds = iter_timer.seconds();
    report.iterations.push_back(stats);

    if (hooks.on_iteration && !hooks.on_iteration(stats)) {
      report.stop_reason = StopReason::kCancelled;
      break;
    }
    if (stats.enodes_after >= params.max_enodes) {
      report.stop_reason = StopReason::kNodeLimit;
      break;
    }
    if (total.seconds() > params.time_limit_s) {
      report.stop_reason = StopReason::kTimeLimit;
      break;
    }
    if (stats.enodes_after == enodes_before &&
        stats.classes_after == classes_before) {
      report.stop_reason = StopReason::kSaturated;
      break;
    }
    report.stop_reason = StopReason::kIterLimit;
  }

  report.total_seconds = total.seconds();
  return report;
}

}  // namespace emorphic
