#include "egraph/runner.hpp"

#include "util/timer.hpp"

namespace emorphic {

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kSaturated:
      return "saturated";
    case StopReason::kIterLimit:
      return "iteration-limit";
    case StopReason::kNodeLimit:
      return "node-limit";
    case StopReason::kTimeLimit:
      return "time-limit";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

RunnerReport run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                           const RunnerLimits& limits) {
  return run_rewriting(egraph, rules, limits, RunnerHooks{});
}

RunnerReport run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                           const RunnerLimits& limits,
                           const RunnerHooks& hooks) {
  RunnerReport report;
  report.rule_matches.assign(rules.size(), 0);
  report.rule_applications.assign(rules.size(), 0);
  Timer total;

  for (std::size_t iter = 0; iter < limits.max_iterations; ++iter) {
    Timer iter_timer;
    IterationStats stats;
    std::size_t enodes_before = egraph.num_enodes();
    std::size_t classes_before = egraph.num_classes();

    // Phase 1: search. Matches are gathered against a frozen e-graph so the
    // rule application order cannot influence what is found (the
    // phase-ordering freedom equality saturation is prized for).
    std::vector<EClassId> ids = egraph.class_ids();
    std::vector<std::vector<std::pair<EClassId, Subst>>> all_matches(rules.size());
    for (std::size_t r = 0; r < rules.size(); ++r) {
      std::vector<Subst> substs;
      for (EClassId id : ids) {
        substs.clear();
        match_in_class(egraph, rules[r].lhs, id, substs,
                       limits.max_matches_per_rule -
                           std::min(limits.max_matches_per_rule,
                                    all_matches[r].size()));
        for (auto& s : substs) all_matches[r].emplace_back(id, std::move(s));
        if (all_matches[r].size() >= limits.max_matches_per_rule) break;
      }
      stats.matches += all_matches[r].size();
      report.rule_matches[r] += all_matches[r].size();
      if (total.seconds() > limits.time_limit_s) break;
    }

    // Phase 2: apply. Instantiating the RHS only ever adds information.
    for (std::size_t r = 0; r < rules.size(); ++r) {
      for (auto& [cls, subst] : all_matches[r]) {
        EClassId rhs = instantiate(egraph, rules[r].rhs, subst);
        if (egraph.find(cls) != egraph.find(rhs)) {
          egraph.merge(cls, rhs);
          ++stats.applied;
          ++report.rule_applications[r];
        }
        if (egraph.num_classes_created() > limits.max_enodes) break;
      }
      if (egraph.num_classes_created() > limits.max_enodes) break;
    }

    // Phase 3: rebuild (deferred congruence restoration).
    egraph.rebuild();

    stats.enodes_after = egraph.num_enodes();
    stats.classes_after = egraph.num_classes();
    stats.seconds = iter_timer.seconds();
    report.iterations.push_back(stats);

    if (hooks.on_iteration && !hooks.on_iteration(stats)) {
      report.stop_reason = StopReason::kCancelled;
      break;
    }
    if (stats.enodes_after >= limits.max_enodes) {
      report.stop_reason = StopReason::kNodeLimit;
      break;
    }
    if (total.seconds() > limits.time_limit_s) {
      report.stop_reason = StopReason::kTimeLimit;
      break;
    }
    if (stats.enodes_after == enodes_before &&
        stats.classes_after == classes_before) {
      report.stop_reason = StopReason::kSaturated;
      break;
    }
    report.stop_reason = StopReason::kIterLimit;
  }

  report.total_seconds = total.seconds();
  return report;
}

}  // namespace emorphic
