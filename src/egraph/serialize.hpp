#pragma once
// The intermediate DSL of Fig. 7: a JSON serialization of the e-graph in
// which every e-class is referred to by a unique id and lists its e-nodes
// and parents. Because ids give a one-to-one correspondence between circuit
// elements and e-graph nodes, shared logic is never duplicated — this is
// what makes direct DAG-to-DAG conversion (Fig. 8) linear instead of the
// exponential S-expression flattening of E-Syn.

#include <string>
#include <vector>

#include "egraph/egraph.hpp"

namespace emorphic {

/// A designated output of the serialized graph (a PO of the circuit).
struct SerializedRoot {
  EClassId id = kNoEClass;
  bool complemented = false;
  std::string name;
};

/// Serialize to the Fig. 7 format. `var_names[symbol]` names each kVar leaf.
std::string egraph_to_dsl(const EGraph& egraph,
                          const std::vector<SerializedRoot>& roots,
                          const std::vector<std::string>& var_names);

struct DeserializedEGraph {
  EGraph egraph;
  std::vector<SerializedRoot> roots;
  std::vector<std::string> var_names;
};

/// Parse the Fig. 7 format back into a fresh e-graph (ids are renumbered;
/// roots are remapped accordingly). Throws std::runtime_error on bad input.
DeserializedEGraph dsl_to_egraph(const std::string& text);

}  // namespace emorphic
