#include "egraph/egraph.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_set>

namespace emorphic {

EClassId EGraph::find(EClassId id) const {
  // Path halving without mutation of logical state; parent_ is mutable
  // in spirit but we keep the method const-friendly by local iteration.
  while (parent_[id] != id) {
    const_cast<EGraph*>(this)->parent_[id] = parent_[parent_[id]];
    id = parent_[id];
  }
  return id;
}

ENode EGraph::canonicalize(ENode node) const {
  for (unsigned i = 0; i < node.arity(); ++i) {
    node.children[i] = find(node.children[i]);
  }
  // Commutative operators get a canonical child order so that hash-consing
  // identifies AND(a,b) with AND(b,a) structurally. The commutativity
  // rewrite rules are still sound — they simply find the node already there.
  if ((node.op == Op::kAnd || node.op == Op::kOr || node.op == Op::kXor) &&
      node.children[0] > node.children[1]) {
    std::swap(node.children[0], node.children[1]);
  }
  return node;
}

EClassId EGraph::make_class(ENode node) {
  EClassId id = static_cast<EClassId>(classes_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  classes_.emplace_back();
  classes_[id].nodes.push_back(node);
  return id;
}

EClassId EGraph::add(ENode node) {
  node = canonicalize(node);
  auto it = hashcons_.find(node);
  if (it != hashcons_.end()) return find(it->second);
  EClassId id = make_class(node);
  hashcons_.emplace(node, id);
  for (unsigned i = 0; i < node.arity(); ++i) {
    classes_[node.children[i]].parents.emplace_back(node, id);
  }
  return id;
}

EClassId EGraph::lookup(ENode node) const {
  node = canonicalize(node);
  auto it = hashcons_.find(node);
  return it == hashcons_.end() ? kNoEClass : find(it->second);
}

EClassId EGraph::merge(EClassId a, EClassId b) {
  a = find(a);
  b = find(b);
  if (a == b) return a;
  // Union by rank; the loser's contents move into the winner.
  if (rank_[a] < rank_[b]) std::swap(a, b);
  if (rank_[a] == rank_[b]) ++rank_[a];
  parent_[b] = a;

  auto& wa = classes_[a];
  auto& wb = classes_[b];
  wa.nodes.insert(wa.nodes.end(), wb.nodes.begin(), wb.nodes.end());
  wa.parents.insert(wa.parents.end(), wb.parents.begin(), wb.parents.end());
  wb.nodes.clear();
  wb.nodes.shrink_to_fit();
  wb.parents.clear();
  wb.parents.shrink_to_fit();

  worklist_.push_back(a);
  return a;
}

void EGraph::repair(EClassId id) {
  id = find(id);
  EClass& cls = classes_[id];

  // Re-canonicalize parents: hashcons entries keyed on stale child ids are
  // replaced, and congruent parents (now structurally identical) merged.
  std::vector<std::pair<ENode, EClassId>> old_parents;
  old_parents.swap(cls.parents);

  std::unordered_map<ENode, EClassId, ENodeHash> seen;
  seen.reserve(old_parents.size());
  for (auto& [pnode, pclass] : old_parents) {
    hashcons_.erase(pnode);  // erase under old key (no-op if already gone)
    ENode canon = canonicalize(pnode);
    EClassId pcanon = find(pclass);
    auto it = seen.find(canon);
    if (it != seen.end()) {
      // Congruence: two parents became identical -> their classes merge.
      EClassId merged = merge(it->second, pcanon);
      it->second = find(merged);
    } else {
      seen.emplace(canon, pcanon);
    }
  }
  EClass& cls2 = classes_[find(id)];
  for (auto& [canon, pclass] : seen) {
    hashcons_[canon] = find(pclass);
    cls2.parents.emplace_back(canon, find(pclass));
  }

  // Deduplicate the node list under canonical children.
  EClass& cls3 = classes_[find(id)];
  std::unordered_set<ENode, ENodeHash> uniq;
  uniq.reserve(cls3.nodes.size());
  std::vector<ENode> deduped;
  deduped.reserve(cls3.nodes.size());
  for (ENode& n : cls3.nodes) {
    ENode canon = canonicalize(n);
    if (uniq.insert(canon).second) deduped.push_back(canon);
  }
  cls3.nodes = std::move(deduped);
}

std::size_t EGraph::rebuild() {
  std::size_t merges = 0;
  bool repaired_any = !worklist_.empty();
  while (!worklist_.empty()) {
    std::vector<EClassId> todo;
    todo.swap(worklist_);
    std::unordered_set<EClassId> deduped;
    for (EClassId id : todo) deduped.insert(find(id));
    for (EClassId id : deduped) {
      std::size_t before = worklist_.size();
      repair(id);
      merges += worklist_.size() - before;
    }
  }
  // Final sweep: merges re-point child ids, so e-nodes stored in *parent*
  // classes may hold stale children (and thereby duplicates). Repair only
  // touched the merged classes; canonicalize everyone so that node lists,
  // node counts, and the extractors all see one canonical copy per e-node.
  if (repaired_any) {
    for (EClassId id = 0; id < classes_.size(); ++id) {
      if (find(id) != id) continue;
      EClass& cls = classes_[id];
      bool stale = false;
      for (const ENode& n : cls.nodes) {
        if (!(canonicalize(n) == n)) {
          stale = true;
          break;
        }
      }
      if (!stale) continue;
      std::unordered_set<ENode, ENodeHash> uniq;
      uniq.reserve(cls.nodes.size());
      std::vector<ENode> deduped_nodes;
      deduped_nodes.reserve(cls.nodes.size());
      for (const ENode& n : cls.nodes) {
        ENode canon = canonicalize(n);
        if (uniq.insert(canon).second) deduped_nodes.push_back(canon);
      }
      cls.nodes = std::move(deduped_nodes);
    }
  }
  return merges;
}

std::size_t EGraph::num_classes() const {
  std::size_t count = 0;
  for (EClassId id = 0; id < classes_.size(); ++id) {
    if (find(id) == id) ++count;
  }
  return count;
}

std::size_t EGraph::num_enodes() const {
  std::size_t count = 0;
  for (EClassId id = 0; id < classes_.size(); ++id) {
    if (find(id) == id) count += classes_[id].nodes.size();
  }
  return count;
}

bool EGraph::check_invariants(std::string* why) const {
  auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (is_dirty()) return fail("e-graph has pending merges (not rebuilt)");

  std::unordered_map<ENode, EClassId, ENodeHash> seen;
  for (EClassId id = 0; id < classes_.size(); ++id) {
    if (find(id) != id) continue;  // non-root: contents were moved out
    for (const ENode& n : classes_[id].nodes) {
      ENode canon = canonicalize(n);
      // 1. Stored nodes must already be canonical.
      if (!(canon == n)) {
        return fail("class " + std::to_string(id) + " holds a stale e-node");
      }
      // 2. Congruence: structurally identical nodes live in one class.
      auto [it, inserted] = seen.emplace(canon, id);
      if (!inserted && it->second != id) {
        return fail("congruence violation: identical e-nodes in classes " +
                    std::to_string(it->second) + " and " + std::to_string(id));
      }
      // 3. The hash-cons must resolve every stored node to its class.
      auto hc = hashcons_.find(canon);
      if (hc == hashcons_.end()) {
        return fail("e-node missing from hashcons in class " + std::to_string(id));
      }
      if (find(hc->second) != id) {
        return fail("hashcons maps an e-node of class " + std::to_string(id) +
                    " to class " + std::to_string(find(hc->second)));
      }
    }
  }
  return true;
}

std::vector<EClassId> EGraph::class_ids() const {
  std::vector<EClassId> ids;
  ids.reserve(classes_.size());
  for (EClassId id = 0; id < classes_.size(); ++id) {
    if (find(id) == id) ids.push_back(id);
  }
  return ids;
}

}  // namespace emorphic
