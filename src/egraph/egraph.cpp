#include "egraph/egraph.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "check/check.hpp"

namespace emorphic {

EClassId EGraph::find_mut(EClassId id) {
  // Path halving: every probed link is re-pointed at its grandparent, so
  // repeated finds flatten the tree even between rebuilds.
  while (parent_[id] != id) {
    parent_[id] = parent_[parent_[id]];
    id = parent_[id];
  }
  return id;
}

namespace {

// Commutative operators get a canonical child order so that hash-consing
// identifies AND(a,b) with AND(b,a) structurally. The commutativity
// rewrite rules are still sound — they simply find the node already there.
void sort_commutative_children(ENode& node) {
  if (op_is_commutative(node.op) && node.children[0] > node.children[1]) {
    std::swap(node.children[0], node.children[1]);
  }
}

}  // namespace

ENode EGraph::canonicalize(ENode node) const {
  for (unsigned i = 0; i < node.arity(); ++i) {
    node.children[i] = find(node.children[i]);
  }
  sort_commutative_children(node);
  return node;
}

void EGraph::clear() {
  parent_.clear();
  rank_.clear();
  class_nodes_.clear();
  class_parents_.clear();
  node_store_.reset();
  parent_store_.reset();
  hashcons_.clear();
  worklist_.clear();
  sweeplist_.clear();
}

EClassId EGraph::make_class(ENode node) {
  EClassId id = static_cast<EClassId>(class_nodes_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  class_nodes_.emplace_back();
  class_parents_.emplace_back();
  node_store_.push_back(class_nodes_[id], node);
  return id;
}

EClassId EGraph::add(ENode node) {
  // Canonicalize with the mutating find: add() is a write operation anyway,
  // and the halving keeps chains short during long apply phases.
  for (unsigned i = 0; i < node.arity(); ++i) {
    node.children[i] = find_mut(node.children[i]);
  }
  sort_commutative_children(node);
  EClassId prospective = static_cast<EClassId>(class_nodes_.size());
  auto [slot, inserted] = hashcons_.try_emplace(node, prospective);
  if (!inserted) return find_mut(*slot);
  EClassId id = make_class(node);
  for (unsigned i = 0; i < node.arity(); ++i) {
    parent_store_.push_back(class_parents_[node.children[i]], {node, id});
  }
  return id;
}

EClassId EGraph::lookup(ENode node) const {
  node = canonicalize(node);
  const EClassId* cls = hashcons_.find(node);
  return cls == nullptr ? kNoEClass : find(*cls);
}

EClassId EGraph::merge(EClassId a, EClassId b) {
  a = find_mut(a);
  b = find_mut(b);
  if (a == b) return a;
  // Union by rank; the loser's contents move into the winner.
  if (rank_[a] < rank_[b]) std::swap(a, b);
  if (rank_[a] == rank_[b]) ++rank_[a];
  parent_[b] = a;

  // Arena regions never move, so appending from the loser's span is safe
  // even when the winner's span grows mid-append (the source stays put).
  node_store_.append(class_nodes_[a], class_nodes_[b].begin(),
                     class_nodes_[b].end());
  parent_store_.append(class_parents_[a], class_parents_[b].begin(),
                       class_parents_[b].end());
  node_store_.release(class_nodes_[b]);
  parent_store_.release(class_parents_[b]);

  worklist_.push_back(a);
  return a;
}

void EGraph::repair(EClassId id) {
  id = find_mut(id);

  // Re-canonicalize parents: hashcons entries keyed on stale child ids are
  // replaced, and congruent parents (now structurally identical) merged.
  // The parent list is copied into member scratch (capacity reused across
  // calls) because the merges below may relocate/release this very span.
  repair_old_.assign(class_parents_[id].begin(), class_parents_[id].end());
  parent_store_.release(class_parents_[id]);

  // `repair_seen_` maps each canonical parent e-node to its slot in
  // `repair_dedup_` (the surviving parent list); HashCons doubles as the
  // scratch table, cleared in place so its slots are reused call to call.
  repair_seen_.clear();
  repair_seen_.reserve(repair_old_.size());
  repair_dedup_.clear();
  for (const ParentEdge& edge : repair_old_) {
    hashcons_.erase(edge.node);  // erase under old key (no-op if already gone)
    ENode canon = canonicalize(edge.node);
    EClassId pcanon = find_mut(edge.cls);
    auto [slot, inserted] = repair_seen_.try_emplace(
        canon, static_cast<EClassId>(repair_dedup_.size()));
    if (inserted) {
      repair_dedup_.push_back({canon, pcanon});
    } else {
      // Congruence: two parents became identical -> their classes merge.
      EClassId merged = merge(repair_dedup_[*slot].cls, pcanon);
      repair_dedup_[*slot].cls = find_mut(merged);
    }
  }
  ArenaSpan<ParentEdge>& parents = class_parents_[find_mut(id)];
  for (const ParentEdge& edge : repair_dedup_) {
    EClassId pc = find_mut(edge.cls);
    hashcons_.insert(edge.node, pc);
    parent_store_.push_back(parents, {edge.node, pc});
    // The parent e-node's stored copy (in class `pc`'s node list) may still
    // hold the pre-merge child id; queue that class for the rebuild sweep.
    sweeplist_.push_back(pc);
  }

  // Deduplicate the node list under canonical children.
  dedup_nodes(find_mut(id));
}

void EGraph::dedup_nodes(EClassId root) {
  // Identical canonical copies can only appear via re-pointed child ids
  // (hash-consing rules out duplicates among already-canonical nodes), so a
  // class whose nodes are all canonical needs no work.
  ArenaSpan<ENode>& nodes = class_nodes_[root];
  bool stale = false;
  for (const ENode& n : nodes) {
    if (!(canonicalize(n) == n)) {
      stale = true;
      break;
    }
  }
  if (!stale) return;
  dedup_scratch_.clear();
  if (nodes.size() <= 16) {
    // Small class: a quadratic scan beats hashing.
    for (const ENode& n : nodes) {
      ENode canon = canonicalize(n);
      bool dup = false;
      for (const ENode& kept : dedup_scratch_) {
        if (kept == canon) {
          dup = true;
          break;
        }
      }
      if (!dup) dedup_scratch_.push_back(canon);
    }
  } else {
    dedup_uniq_.clear();
    dedup_uniq_.reserve(nodes.size());
    for (const ENode& n : nodes) {
      ENode canon = canonicalize(n);
      if (dedup_uniq_.try_emplace(canon, 0).second) {
        dedup_scratch_.push_back(canon);
      }
    }
  }
  node_store_.assign(nodes, dedup_scratch_.data(),
                     dedup_scratch_.data() + dedup_scratch_.size());
}

std::size_t EGraph::rebuild() {
  std::size_t merges = 0;
  bool repaired_any = !worklist_.empty();
  while (!worklist_.empty()) {
    // Swap through member scratch (not a local) so both buffers stay warm
    // across passes and rebuilds — the swap-with-a-local idiom donates the
    // worklist's capacity to a vector that dies at the end of the pass,
    // forcing the next pass to regrow from zero.
    rebuild_todo_.clear();
    rebuild_todo_.swap(worklist_);
    std::vector<EClassId>& todo = rebuild_todo_;
    for (EClassId& id : todo) id = find_mut(id);
    std::sort(todo.begin(), todo.end());
    todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
    for (EClassId id : todo) {
      std::size_t before = worklist_.size();
      repair(id);
      merges += worklist_.size() - before;
    }
  }
  if (repaired_any) {
    // Canonical-id cache refresh: point every union-find entry directly at
    // its root so find() on the now-clean e-graph is a single load (and, in
    // particular, never writes — concurrent readers are safe).
    for (EClassId id = 0; id < parent_.size(); ++id) {
      parent_[id] = find(id);
    }
    // Targeted sweep: merges re-point child ids, so e-nodes stored in
    // *parent* classes may hold stale children (and thereby duplicates).
    // repair() queued exactly those classes, so only they are re-checked —
    // not the whole e-graph.
    for (EClassId& id : sweeplist_) id = find_mut(id);
    std::sort(sweeplist_.begin(), sweeplist_.end());
    sweeplist_.erase(std::unique(sweeplist_.begin(), sweeplist_.end()),
                     sweeplist_.end());
    for (EClassId id : sweeplist_) {
      dedup_nodes(id);
    }
    sweeplist_.clear();
    // Purge stranded hash-cons keys. repair() erases an entry only when the
    // merged child's parent list still records that exact key — but a key
    // re-inserted by an earlier repair is known to that one class only, so
    // a later merge of a *different* child of the same e-node strands it.
    // Stranded keys hold a non-root child id, which no canonicalized lookup
    // can produce, so they are unreachable — but without this sweep they
    // accumulate without bound across a long saturation run. Collect first
    // (into member scratch, capacity reused), erase after: HashCons
    // iteration does not survive mutation.
    stranded_.clear();
    hashcons_.for_each([&](const ENode& node, EClassId) {
      for (unsigned i = 0; i < node.arity(); ++i) {
        if (find(node.children[i]) != node.children[i]) {
          stranded_.push_back(node);
          break;
        }
      }
    });
    for (const ENode& node : stranded_) hashcons_.erase(node);
    // Epoch reclaim: merges and repairs retire arena regions (grown spans,
    // released losers). Once the waste outweighs the live data, copy the
    // live spans into a fresh arena — rebuild() is the one point where no
    // outstanding span pointers exist outside the headers rewritten here.
    if (node_store_.waste() > node_store_.live()) {
      node_store_.compact(class_nodes_);
    }
    if (parent_store_.waste() > parent_store_.live()) {
      parent_store_.compact(class_parents_);
    }
  }
  EM_CHECK_EXPENSIVE([&] {
    std::string why;
    return check_invariants(&why) ? std::string() : why;
  }());
  return merges;
}

std::size_t EGraph::num_classes() const {
  std::size_t count = 0;
  for (EClassId id = 0; id < class_nodes_.size(); ++id) {
    if (find(id) == id) ++count;
  }
  return count;
}

std::size_t EGraph::num_enodes() const {
  std::size_t count = 0;
  for (EClassId id = 0; id < class_nodes_.size(); ++id) {
    if (find(id) == id) count += class_nodes_[id].size();
  }
  return count;
}

bool EGraph::check_invariants(std::string* why) const {
  auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (is_dirty()) return fail("e-graph has pending merges (not rebuilt)");

  std::unordered_map<ENode, EClassId, ENodeHash> seen;
  for (EClassId id = 0; id < class_nodes_.size(); ++id) {
    if (find(id) != id) continue;  // non-root: contents were moved out
    for (const ENode& n : class_nodes_[id]) {
      ENode canon = canonicalize(n);
      // 1. Stored nodes must already be canonical.
      if (!(canon == n)) {
        return fail("class " + std::to_string(id) + " holds a stale e-node");
      }
      // 2. Congruence: structurally identical nodes live in one class.
      auto [it, inserted] = seen.emplace(canon, id);
      if (!inserted && it->second != id) {
        return fail("congruence violation: identical e-nodes in classes " +
                    std::to_string(it->second) + " and " + std::to_string(id));
      }
      // 3. The hash-cons must resolve every stored node to its class.
      const EClassId* hc = hashcons_.find(canon);
      if (hc == nullptr) {
        return fail("e-node missing from hashcons in class " + std::to_string(id));
      }
      if (find(*hc) != id) {
        return fail("hashcons maps an e-node of class " + std::to_string(id) +
                    " to class " + std::to_string(find(*hc)));
      }
    }
  }
  // 4. On a clean e-graph the union-find must be fully compressed (the
  // canonical-id cache the parallel matcher relies on).
  for (EClassId id = 0; id < parent_.size(); ++id) {
    if (parent_[parent_[id]] != parent_[id]) {
      return fail("union-find not compressed at id " + std::to_string(id));
    }
  }
  // 5. The hashcons must be an exact bijection with the live e-nodes: check
  // 3 covered missing entries, this covers *stale* ones — an interned
  // e-node no live class holds anymore. Counts suffice to detect (every
  // live node is interned by 3, duplicates are impossible by 2), and the
  // sweep only runs to name the offender.
  if (hashcons_.size() != seen.size()) {
    std::string stale = "hashcons holds " + std::to_string(hashcons_.size()) +
                        " entries for " + std::to_string(seen.size()) +
                        " live e-nodes";
    hashcons_.for_each([&](const ENode& node, EClassId cls) {
      if (seen.count(node) == 0) {
        stale += "; stale entry aims at class " + std::to_string(cls);
      }
    });
    return fail(stale);
  }
  return true;
}

std::vector<EClassId> EGraph::class_ids() const {
  std::vector<EClassId> ids;
  ids.reserve(class_nodes_.size());
  for (EClassId id = 0; id < class_nodes_.size(); ++id) {
    if (find(id) == id) ids.push_back(id);
  }
  return ids;
}

}  // namespace emorphic
