#pragma once
// The Boolean term language that e-graphs speak in E-morphic.
//
// Circuits enter the e-graph as AND/NOT terms (the AIG primitives); the
// rewrite rules of Table I introduce OR (De-Morgan) and richer structure;
// extraction lowers everything back onto AND/NOT when rebuilding an AIG.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace emorphic {

using EClassId = std::uint32_t;
inline constexpr EClassId kNoEClass = 0xffffffffu;

/// Operators of the Boolean term language.
enum class Op : std::uint8_t {
  kConst0,
  kConst1,
  kVar,   // leaf; `symbol` is the primary-input index
  kNot,   // 1 child
  kAnd,   // 2 children
  kOr,    // 2 children
  kXor,   // 2 children
};

/// Number of distinct operators (for dense per-operator tables, e.g. the
/// runner's head-operator rule index).
inline constexpr std::size_t kNumOps = 7;

/// Dense index of an operator in [0, kNumOps).
inline constexpr std::size_t op_index(Op op) {
  return static_cast<std::size_t>(op);
}

/// Arity (number of children) of an operator.
inline constexpr unsigned op_arity(Op op) {
  switch (op) {
    case Op::kConst0:
    case Op::kConst1:
    case Op::kVar:
      return 0;
    case Op::kNot:
      return 1;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      return 2;
  }
  return 0;
}

/// Is the operator commutative? Commutative e-nodes are stored child-sorted
/// (EGraph::canonicalize) and the matcher tries both child orders.
inline constexpr bool op_is_commutative(Op op) {
  return op == Op::kAnd || op == Op::kOr || op == Op::kXor;
}

/// Printable name of an operator (used by pattern/DSL printers).
inline const char* op_name(Op op) {
  switch (op) {
    case Op::kConst0:
      return "0";
    case Op::kConst1:
      return "1";
    case Op::kVar:
      return "var";
    case Op::kNot:
      return "!";
    case Op::kAnd:
      return "&";
    case Op::kOr:
      return "|";
    case Op::kXor:
      return "^";
  }
  return "?";
}

/// An e-node: an operator applied to e-class ids.
struct ENode {
  Op op = Op::kConst0;
  std::uint32_t symbol = 0;  // only meaningful for kVar
  std::array<EClassId, 2> children{{kNoEClass, kNoEClass}};

  /// Number of children actually used (unused slots hold kNoEClass).
  unsigned arity() const { return op_arity(op); }

  // Leaf and operator builders.
  static ENode const0() { return ENode{Op::kConst0, 0, {kNoEClass, kNoEClass}}; }
  static ENode const1() { return ENode{Op::kConst1, 0, {kNoEClass, kNoEClass}}; }
  static ENode var(std::uint32_t symbol) {
    return ENode{Op::kVar, symbol, {kNoEClass, kNoEClass}};
  }
  static ENode not_of(EClassId a) { return ENode{Op::kNot, 0, {a, kNoEClass}}; }
  static ENode and_of(EClassId a, EClassId b) { return ENode{Op::kAnd, 0, {a, b}}; }
  static ENode or_of(EClassId a, EClassId b) { return ENode{Op::kOr, 0, {a, b}}; }
  static ENode xor_of(EClassId a, EClassId b) { return ENode{Op::kXor, 0, {a, b}}; }

  /// Structural equality (operator, symbol, child class ids).
  bool operator==(const ENode& other) const {
    return op == other.op && symbol == other.symbol &&
           children == other.children;
  }
};

/// Mixing hash over an e-node's full structural identity; shared by the
/// e-graph hashcons and every scratch table keyed on e-nodes.
struct ENodeHash {
  std::size_t operator()(const ENode& n) const {
    std::uint64_t h = static_cast<std::uint64_t>(n.op) * 0x9e3779b97f4a7c15ull;
    h ^= (static_cast<std::uint64_t>(n.symbol) + 0x165667b19e3779f9ull) * 0xff51afd7ed558ccdull;
    h ^= (static_cast<std::uint64_t>(n.children[0]) << 32 | n.children[1]) *
         0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace emorphic
