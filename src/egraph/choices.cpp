#include "egraph/choices.hpp"

#include <algorithm>

namespace emorphic {

std::vector<std::uint32_t> choice_candidates(const EGraph& egraph,
                                             EClassId cls,
                                             std::uint32_t chosen_index,
                                             std::uint32_t cap) {
  const EClass& eclass = egraph.eclass(cls);
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t i = 0; i < eclass.nodes.size(); ++i) {
    if (i == chosen_index) continue;
    if (eclass.nodes[i].arity() != 2) continue;  // only ops that build structure
    candidates.push_back(i);
  }
  // Stable, rebuild-independent order: operator first (AND before OR before
  // XOR — cheaper lowerings first), then canonical child ids.
  std::sort(candidates.begin(), candidates.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const ENode& na = eclass.nodes[a];
              const ENode& nb = eclass.nodes[b];
              if (na.op != nb.op) return op_index(na.op) < op_index(nb.op);
              EClassId a0 = egraph.find(na.children[0]);
              EClassId b0 = egraph.find(nb.children[0]);
              if (a0 != b0) return a0 < b0;
              EClassId a1 = egraph.find(na.children[1]);
              EClassId b1 = egraph.find(nb.children[1]);
              if (a1 != b1) return a1 < b1;
              return a < b;
            });
  if (candidates.size() > cap) candidates.resize(cap);
  return candidates;
}

std::size_t choice_potential(const EGraph& egraph) {
  std::size_t total = 0;
  for (EClassId c : egraph.class_ids()) {
    std::size_t binary = 0;
    for (const ENode& n : egraph.eclass(c).nodes) {
      if (n.arity() == 2) ++binary;
    }
    if (binary > 1) total += binary - 1;
  }
  return total;
}

}  // namespace emorphic
