#include "egraph/snapshot.hpp"

#include <cstring>

namespace emorphic {

// Private-member access seam for the snapshot codec (friend of EGraph).
// Snapshots must reproduce the raw storage — public accessors expose the
// contents but not the union-find ranks or the span stores needed to
// rebuild them verbatim.
struct SnapshotAccess {
  static const std::vector<EClassId>& parent(const EGraph& g) {
    return g.parent_;
  }
  static const std::vector<std::uint32_t>& rank(const EGraph& g) {
    return g.rank_;
  }
  static const ArenaSpan<ENode>& nodes(const EGraph& g, EClassId id) {
    return g.class_nodes_[id];
  }
  static const ArenaSpan<ParentEdge>& parents(const EGraph& g, EClassId id) {
    return g.class_parents_[id];
  }

  static void restore_skeleton(EGraph& g, std::vector<EClassId> parent,
                               std::vector<std::uint32_t> rank) {
    g.parent_ = std::move(parent);
    g.rank_ = std::move(rank);
    g.class_nodes_.resize(g.parent_.size());
    g.class_parents_.resize(g.parent_.size());
  }
  static void push_node(EGraph& g, EClassId id, const ENode& node) {
    g.node_store_.push_back(g.class_nodes_[id], node);
  }
  static void push_parent(EGraph& g, EClassId id, const ParentEdge& edge) {
    g.parent_store_.push_back(g.class_parents_[id], edge);
  }
  static void reserve_hashcons(EGraph& g, std::size_t n) {
    g.hashcons_.reserve(n);
  }
  static void intern(EGraph& g, const ENode& node, EClassId id) {
    g.hashcons_.insert(node, id);
  }
};

namespace {

constexpr char kSnapshotMagic[4] = {'E', 'M', 'S', 'S'};
constexpr std::uint64_t kSnapshotVersion = 1;

void write_enode(SnapshotWriter& w, const ENode& node) {
  w.u8(static_cast<std::uint8_t>(node.op));
  w.varint(node.symbol);
  w.varint(node.children[0]);
  w.varint(node.children[1]);
}

// An e-node needs at least 4 bytes (op + three 1-byte varints): the bound
// used to reject fabricated counts before any allocation happens.
constexpr std::size_t kMinENodeBytes = 4;

ENode read_enode(SnapshotReader& r, std::uint64_t num_classes) {
  std::uint8_t op = r.u8("e-node op");
  if (op >= kNumOps) {
    throw SnapshotError("e-node has unknown operator tag " +
                        std::to_string(op));
  }
  ENode node;
  node.op = static_cast<Op>(op);
  std::uint64_t symbol = r.varint("e-node symbol");
  if (symbol > 0xffffffffull) {
    throw SnapshotError("e-node symbol out of range");
  }
  node.symbol = static_cast<std::uint32_t>(symbol);
  for (unsigned i = 0; i < 2; ++i) {
    std::uint64_t child = r.varint("e-node child");
    if (i < node.arity()) {
      if (child >= num_classes) {
        throw SnapshotError("e-node child " + std::to_string(child) +
                            " out of range (" + std::to_string(num_classes) +
                            " classes)");
      }
    } else if (child != kNoEClass) {
      throw SnapshotError("unused e-node child slot holds " +
                          std::to_string(child) + " instead of the sentinel");
    }
    node.children[i] = static_cast<EClassId>(child);
  }
  return node;
}

}  // namespace

// --- SnapshotReader ---------------------------------------------------------

void SnapshotReader::expect_magic(const char tag[4], const char* format_name) {
  if (remaining() < 4) {
    throw SnapshotError(std::string(format_name) + ": truncated before magic");
  }
  if (std::memcmp(data_.data() + pos_, tag, 4) != 0) {
    throw SnapshotError(std::string(format_name) + ": wrong magic");
  }
  pos_ += 4;
}

std::uint8_t SnapshotReader::u8(const char* field) {
  if (remaining() < 1) {
    throw SnapshotError(std::string("truncated at ") + field);
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint64_t SnapshotReader::varint(const char* field) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (remaining() < 1) {
      throw SnapshotError(std::string("truncated varint at ") + field);
    }
    std::uint8_t byte = static_cast<std::uint8_t>(data_[pos_++]);
    if (shift == 63 && (byte & 0x7e) != 0) {
      throw SnapshotError(std::string("varint overflow at ") + field);
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) {
      throw SnapshotError(std::string("varint overflow at ") + field);
    }
  }
}

std::string SnapshotReader::bytes(std::uint64_t n, const char* field) {
  if (n > remaining()) {
    throw SnapshotError(std::string("truncated at ") + field + " (" +
                        std::to_string(n) + " bytes declared, " +
                        std::to_string(remaining()) + " left)");
  }
  std::string out = data_.substr(pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

void SnapshotReader::expect_end(const char* format_name) {
  if (!at_end()) {
    throw SnapshotError(std::string(format_name) + ": " +
                        std::to_string(remaining()) +
                        " trailing bytes after the end of the document");
  }
}

// --- e-graph snapshot codec -------------------------------------------------

std::string egraph_to_snapshot(const EGraph& egraph) {
  if (egraph.is_dirty()) {
    throw SnapshotError(
        "e-graph has pending merges — rebuild() before snapshotting");
  }
  const std::vector<EClassId>& parent = SnapshotAccess::parent(egraph);
  const std::vector<std::uint32_t>& rank = SnapshotAccess::rank(egraph);

  SnapshotWriter w;
  w.magic(kSnapshotMagic);
  w.varint(kSnapshotVersion);
  w.varint(parent.size());
  for (EClassId p : parent) w.varint(p);
  for (std::uint32_t r : rank) w.varint(r);
  for (EClassId id = 0; id < parent.size(); ++id) {
    if (parent[id] != id) continue;  // non-root: contents were moved out
    const ArenaSpan<ENode>& nodes = SnapshotAccess::nodes(egraph, id);
    const ArenaSpan<ParentEdge>& parents = SnapshotAccess::parents(egraph, id);
    w.varint(nodes.size());
    for (const ENode& n : nodes) write_enode(w, n);
    w.varint(parents.size());
    for (const ParentEdge& e : parents) {
      write_enode(w, e.node);
      w.varint(e.cls);
    }
  }
  return w.take();
}

EGraph snapshot_to_egraph(const std::string& bytes) {
  SnapshotReader r(bytes);
  r.expect_magic(kSnapshotMagic, "e-graph snapshot");
  std::uint64_t version = r.varint("version");
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported e-graph snapshot version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  std::uint64_t n = r.varint("class count");
  // Each class contributes at least one varint byte to the parent array, so
  // counts beyond the input size are fabricated — reject before sizing any
  // allocation off them.
  if (n > bytes.size()) {
    throw SnapshotError("declared class count exceeds input size");
  }
  std::vector<EClassId> parent(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> rank(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t p = r.varint("parent entry");
    if (p >= n) {
      throw SnapshotError("union-find parent " + std::to_string(p) +
                          " out of range");
    }
    parent[static_cast<std::size_t>(i)] = static_cast<EClassId>(p);
  }
  // Snapshots are taken on clean e-graphs, whose union-find is fully
  // compressed; checking it here doubles as the acyclicity proof (every
  // chain terminates after one hop), so restore cannot loop on bad input.
  for (std::uint64_t i = 0; i < n; ++i) {
    if (parent[parent[static_cast<std::size_t>(i)]] !=
        parent[static_cast<std::size_t>(i)]) {
      throw SnapshotError("union-find not compressed at id " +
                          std::to_string(i));
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t rk = r.varint("rank entry");
    if (rk > 0xffffffffull) throw SnapshotError("rank out of range");
    rank[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(rk);
  }

  EGraph g;
  SnapshotAccess::restore_skeleton(g, std::move(parent), std::move(rank));
  const std::vector<EClassId>& par = SnapshotAccess::parent(g);

  std::size_t total_nodes = 0;
  for (EClassId id = 0; id < par.size(); ++id) {
    if (par[id] != id) continue;
    std::uint64_t node_count = r.varint("node count");
    if (node_count > r.remaining() / kMinENodeBytes + 1) {
      throw SnapshotError("declared node count exceeds input size");
    }
    if (node_count == 0) {
      throw SnapshotError("root class " + std::to_string(id) +
                          " has no e-nodes");
    }
    for (std::uint64_t k = 0; k < node_count; ++k) {
      SnapshotAccess::push_node(g, id, read_enode(r, n));
    }
    total_nodes += static_cast<std::size_t>(node_count);
    std::uint64_t parent_count = r.varint("parent-edge count");
    if (parent_count > r.remaining() / (kMinENodeBytes + 1) + 1) {
      throw SnapshotError("declared parent-edge count exceeds input size");
    }
    for (std::uint64_t k = 0; k < parent_count; ++k) {
      ParentEdge edge;
      edge.node = read_enode(r, n);
      std::uint64_t cls = r.varint("parent-edge class");
      if (cls >= n) {
        throw SnapshotError("parent-edge class " + std::to_string(cls) +
                            " out of range");
      }
      edge.cls = static_cast<EClassId>(cls);
      SnapshotAccess::push_parent(g, id, edge);
    }
  }
  r.expect_end("e-graph snapshot");

  // Re-intern the live nodes. On a clean e-graph the hashcons is exactly
  // this set (check_invariants' bijection), and every lookup resolves the
  // stored value through find(), so root-valued entries are equivalent to
  // whatever mix of root/stale values the original table held.
  SnapshotAccess::reserve_hashcons(g, total_nodes);
  for (EClassId id = 0; id < par.size(); ++id) {
    if (par[id] != id) continue;
    for (const ENode& node : SnapshotAccess::nodes(g, id)) {
      SnapshotAccess::intern(g, node, id);
    }
  }
  return g;
}

}  // namespace emorphic
