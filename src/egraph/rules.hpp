#pragma once
// The Boolean rewrite-rule set of Table I plus the supporting identities
// shown in Fig. 5 (covering/absorption, De-Morgan, ...).
//
// Commutativity is listed in Table I but is absorbed structurally in this
// implementation: the e-graph stores commutative operators child-sorted and
// the matcher tries both child orders, so explicit commutativity rules would
// only ever merge a class with itself.

#include <vector>

#include "egraph/pattern.hpp"

namespace emorphic {

/// The full rule set used by E-morphic's rewriting phase.
std::vector<Rewrite> make_logic_rules();

/// A smaller, strictly size-reducing subset (absorption, identities,
/// complements, double negation); useful for tests and quick cleanups.
std::vector<Rewrite> make_reduction_rules();

/// Rules grouped the way Table I groups them, for the Table I bench.
struct RuleClass {
  const char* class_name;
  std::vector<Rewrite> rules;
};
std::vector<RuleClass> make_rule_classes();

}  // namespace emorphic
