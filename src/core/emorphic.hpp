#pragma once
// E-morphic public facade: one call that runs the whole pipeline of Fig. 5 —
// technology-independent optimization, direct DAG-to-DAG e-graph conversion,
// a few equality-saturation iterations, parallel simulated-annealing
// extraction under a pluggable cost model, final mapping, and equivalence
// checking.
//
// This header is also the library umbrella: including it pulls in every
// public subsystem.

#include "aig/aig.hpp"
#include "aig/aig_io.hpp"
#include "aig/signature.hpp"
#include "aig/sim.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "benchgen/epfl.hpp"
#include "cec/cec.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "egraph/serialize.hpp"
#include "extract/sa_extractor.hpp"
#include "flow/batch.hpp"
#include "flow/conversion.hpp"
#include "flow/flows.hpp"
#include "flow/pipeline.hpp"
#include "mapper/genlib.hpp"
#include "mapper/tech_mapper.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "opt/resyn.hpp"

namespace emorphic {

/// Which cost model scores candidate extractions (Sec. III-C).
enum class CostModelMode {
  kQualityPrioritized,  // fast rough technology mapping (exact metric)
  kRuntimePrioritized,  // ML prediction (fast, approximate)
};

struct EmorphicOptions {
  FlowParams flow;
  CostModelMode mode = CostModelMode::kQualityPrioritized;
  /// Pre-trained model for runtime-prioritized mode. When null, a model is
  /// trained on the fly from structural variants of the input circuit
  /// (a miniature of the paper's OpenABC-D fine-tuning).
  const MlCostModel* ml_model = nullptr;
  /// SA thread count for runtime-prioritized mode; 0 honors
  /// flow.sa.num_threads. The paper compensates the weaker cost signal with
  /// 6 threads instead of 4 (Sec. IV-A) — set 6 here to reproduce that.
  /// (Earlier versions bumped to 6 silently; batch callers have the same
  /// knob as BatchParams::sa_threads.)
  unsigned runtime_sa_threads = 0;
};

/// Run the full E-morphic flow on `input`.
EmorphicResult optimize(const Aig& input, const EmorphicOptions& options = {});

/// Library version string.
const char* version();

}  // namespace emorphic
