#include "core/emorphic.hpp"

namespace emorphic {

namespace {

/// Self-training for runtime-prioritized mode without a supplied model:
/// sample structural variants of the input, label them with the exact
/// mapper, and fit the MLP — the single-circuit analogue of Sec. IV-D's
/// OpenABC-D fine-tuning.
MlCostModel train_on_input(const Aig& input, const FlowParams& flow) {
  DatasetParams dp;
  dp.variants_per_circuit = 48;
  dp.rewrite.max_iterations = 3;
  dp.rewrite.max_enodes = 40000;
  dp.rewrite.time_limit_s = 5.0;
  dp.mapping.area_recovery = false;
  dp.mapping.num_cuts = 4;
  Dataset data = generate_variants(input, *flow.library, dp);

  MlpParams mp;
  mp.epochs = 120;
  MlCostModel model(mp);
  model.train(data.features, data.delays, data.areas);
  return model;
}

}  // namespace

EmorphicResult optimize(const Aig& input, const EmorphicOptions& options) {
  // emorphic_flow is itself a shim over Pipeline::emorphic(); this facade
  // only picks the cost model and thread budget.
  FlowParams flow = options.flow;
  if (options.mode == CostModelMode::kQualityPrioritized) {
    return emorphic_flow(input, flow);
  }
  if (options.runtime_sa_threads > 0) {
    flow.sa.num_threads = options.runtime_sa_threads;
  }
  if (options.ml_model != nullptr) {
    return emorphic_flow(input, flow, options.ml_model);
  }
  MlCostModel model = train_on_input(input, flow);
  return emorphic_flow(input, flow, &model);
}

const char* version() { return "emorphic 1.0.0 (DAC'25 reproduction)"; }

}  // namespace emorphic
