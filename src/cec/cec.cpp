#include "cec/cec.hpp"

#include "aig/sim.hpp"
#include "sat/cnf.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace emorphic {

const char* cec_status_name(CecStatus status) {
  switch (status) {
    case CecStatus::kEquivalent:
      return "equivalent";
    case CecStatus::kNotEquivalent:
      return "NOT-equivalent";
    case CecStatus::kUndecided:
      return "undecided";
  }
  return "?";
}

CecResult cec(const Aig& a, const Aig& b, const CecParams& params) {
  CecResult result;
  Timer timer;
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    result.status = CecStatus::kNotEquivalent;
    result.seconds = timer.seconds();
    return result;
  }

  // Phase 1: random simulation. Finding any differing word refutes
  // equivalence; extract a concrete counterexample bit.
  Rng rng(params.seed);
  std::vector<std::uint64_t> pi_words(a.num_pis());
  for (unsigned w = 0; w < params.sim_words; ++w) {
    for (auto& word : pi_words) word = rng.next();
    auto va = simulate_words(a, pi_words);
    auto vb = simulate_words(b, pi_words);
    for (std::uint32_t i = 0; i < a.num_pos(); ++i) {
      std::uint64_t wa =
          va[lit_var(a.po(i))] ^ (lit_is_compl(a.po(i)) ? ~0ull : 0ull);
      std::uint64_t wb =
          vb[lit_var(b.po(i))] ^ (lit_is_compl(b.po(i)) ? ~0ull : 0ull);
      std::uint64_t diff = wa ^ wb;
      if (diff != 0) {
        unsigned bit = 0;
        while (((diff >> bit) & 1ull) == 0) ++bit;
        result.status = CecStatus::kNotEquivalent;
        result.counterexample.resize(a.num_pis());
        for (std::uint32_t k = 0; k < a.num_pis(); ++k) {
          result.counterexample[k] = ((pi_words[k] >> bit) & 1ull) != 0;
        }
        result.seconds = timer.seconds();
        return result;
      }
    }
  }

  // Phase 2: SAT proof on the miter.
  sat::Solver solver;
  sat::SatLit miter = sat::encode_miter(solver, a, b);
  solver.add_unit(miter);
  sat::SatResult sat_result =
      solver.solve({}, params.conflict_limit, params.time_limit_s);
  result.sat_conflicts = solver.stats().conflicts;
  switch (sat_result) {
    case sat::SatResult::kUnsat:
      result.status = CecStatus::kEquivalent;
      break;
    case sat::SatResult::kSat: {
      result.status = CecStatus::kNotEquivalent;
      result.counterexample.resize(a.num_pis());
      // PI variables are the first ones created by encode_miter.
      for (std::uint32_t k = 0; k < a.num_pis(); ++k) {
        result.counterexample[k] = solver.model_value(k);
      }
      break;
    }
    case sat::SatResult::kUndecided:
      result.status = CecStatus::kUndecided;
      break;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace emorphic
