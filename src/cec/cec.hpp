#pragma once
// Combinational equivalence checking, the role ABC's `cec` plays in the
// paper (every E-morphic output is verified, Sec. IV-A):
//  1. bit-parallel random simulation hunts for a quick counterexample,
//  2. a SAT miter proves equivalence (bounded by a conflict budget, so the
//     caller can trade effort for certainty on very large designs).

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace emorphic {

enum class CecStatus { kEquivalent, kNotEquivalent, kUndecided };

struct CecResult {
  CecStatus status = CecStatus::kUndecided;
  /// On kNotEquivalent: one distinguishing input assignment (per PI).
  std::vector<bool> counterexample;
  std::uint64_t sat_conflicts = 0;
  double seconds = 0.0;
};

struct CecParams {
  unsigned sim_words = 16;            // 16*64 random patterns first
  std::uint64_t conflict_limit = 200000;  // 0 = prove unboundedly
  std::uint64_t seed = 0xc0ffee;
  /// Wall-clock budget for the SAT proof; 0 = unbounded. Arithmetic miters
  /// (multipliers!) can be genuinely hard, so large-design flows should
  /// bound the effort and accept kUndecided.
  double time_limit_s = 20.0;
};

/// Check functional equivalence of two AIGs with identical interfaces.
CecResult cec(const Aig& a, const Aig& b, const CecParams& params = {});

const char* cec_status_name(CecStatus status);

}  // namespace emorphic
