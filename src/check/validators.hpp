#pragma once
// Deep structural validators for every core structure — the EM_CHECK_EXPENSIVE
// tier of the invariant subsystem (check/check.hpp, docs/correctness.md).
//
// Each validator walks the whole structure and returns an empty string when
// it is consistent, else a description of the *first* violation naming the
// offending node/class/LUT — the same convention as EGraph::check_invariants
// and AigChoices::check, which they subsume. They are always compiled (the
// pipeline's paranoia mode calls them at stage boundaries in release builds);
// the EMORPHIC_CHECKS option only gates the internal call sites at
// merge/rebuild points.
//
// Seeded-corruption coverage for every validator lives in
// tests/check/test_validators.cpp, which plants defects through the
// check::CheckProbe seam (check/probe.hpp) and asserts each one is caught.

#include <string>

namespace emorphic {

class Aig;
class AigChoices;
class CutManager;
class EGraph;
class LutNetwork;

namespace check {

/// AIG structural invariants: exactly one constant node (variable 0), PI
/// back-indices consistent with pis(), AND fanins topologically ordered
/// (acyclicity) and in canonical strash order, no AND over a constant or a
/// single variable, no structurally duplicate ANDs, num_ands() consistent,
/// every PO literal over a live variable.
std::string check_aig(const Aig& aig);

/// E-graph congruence/hash-consing invariants of a *clean* (rebuilt)
/// e-graph: union-find fully compressed, stored e-nodes canonical and
/// deduplicated, congruence closed (structurally identical e-nodes share a
/// class), and the hashcons in exact bijection with the live e-nodes — a
/// stale entry that resolves to no live node is reported, not just a
/// missing one. Wraps EGraph::check_invariants.
std::string check_egraph(const EGraph& egraph);

/// Choice-annotation invariants against its AIG: sizes match, rings
/// disjoint with consistent repr literals and phases, and the finalized
/// schedule a permutation that respects every fanin and ring edge. Wraps
/// AigChoices::check.
std::string check_choices(const Aig& aig, const AigChoices& choices);

/// Cut-set invariants for every node of an enumerated CutManager: leaves
/// sorted, deduplicated and in range, the trivial cut last, truth tables
/// confined to their 2^size minterms and *matching a simulation of the cone
/// they cover* (for a choice-class representative, the cone of the ring
/// member the cut was imported from, phase-adjusted), no exact-duplicate
/// cuts, and — for nodes without choice rings, where enumeration guarantees
/// it — no dominated cuts.
std::string check_cuts(const CutManager& cuts);

/// LUT-network invariants: nets in range and driven exactly once (by a PI
/// declaration, a constant tie, or one LUT), LUT inputs within the 6-input
/// truth-table domain and defined before use (topological emission order),
/// truth tables confined to their inputs' minterms, and every PO driven by
/// a defined net.
std::string check_lut_network(const LutNetwork& network);

}  // namespace check
}  // namespace emorphic
