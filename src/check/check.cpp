#include "check/check.hpp"

namespace emorphic::check {

void fail(const char* file, int line, const std::string& what) {
  throw CheckError(std::string(file) + ":" + std::to_string(line) +
                   ": invariant violated: " + what);
}

}  // namespace emorphic::check
