#include "check/validators.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "aig/choice.hpp"
#include "aig/cut.hpp"
#include "aig/truth.hpp"
#include "egraph/egraph.hpp"
#include "mapper/lut_mapper.hpp"

namespace emorphic::check {

namespace {

std::string node_str(Var v) { return "node " + std::to_string(v); }

/// Deterministic word mixer for pseudo-random simulation patterns
/// (splitmix64 finalizer). Seeded from fixed constants only, so the
/// validator's verdict is reproducible run to run.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Bit-parallel simulation of the whole AIG over its primary inputs:
/// `num_words` 64-bit patterns per node. Exhaustive over all 2^pis input
/// combinations when the PI count allows (<= 6 + log2(num_words)),
/// pseudo-random but deterministic beyond that.
std::vector<std::vector<Tt>> simulate(const Aig& aig, unsigned num_words,
                                      bool exhaustive) {
  const std::uint32_t n = aig.num_nodes();
  std::vector<std::vector<Tt>> value(n, std::vector<Tt>(num_words, 0));
  for (Var v = 1; v < n; ++v) {
    if (aig.is_pi(v)) {
      const std::uint32_t i = aig.pi_index(v);
      for (unsigned w = 0; w < num_words; ++w) {
        if (exhaustive) {
          // Global minterm g = w*64 + bit; PI i carries bit i of g.
          value[v][w] = i < 6 ? tt_var(i, 6)
                              : (((w >> (i - 6)) & 1u) != 0 ? ~0ull : 0ull);
        } else {
          value[v][w] = mix64((static_cast<std::uint64_t>(v) << 32) | w);
        }
      }
      continue;
    }
    const Lit f0 = aig.fanin0(v);
    const Lit f1 = aig.fanin1(v);
    for (unsigned w = 0; w < num_words; ++w) {
      Tt a = value[lit_var(f0)][w];
      Tt b = value[lit_var(f1)][w];
      if (lit_is_compl(f0)) a = ~a;
      if (lit_is_compl(f1)) b = ~b;
      value[v][w] = a & b;
    }
  }
  return value;
}

/// Evaluate `cut`'s truth table on the simulated leaf words: output bit p
/// is tt[minterm assembled from the leaves' bits p]. The cut is
/// functionally correct iff this equals the root's own simulated word —
/// a property that holds for choice-merged cuts too (ring members agree
/// with their representative as functions of the PIs), where no single
/// structural cone walk could verify the table.
Tt eval_cut_word(const Cut& cut, const std::vector<std::vector<Tt>>& value,
                 unsigned w) {
  Tt out = 0;
  for (unsigned p = 0; p < 64; ++p) {
    unsigned idx = 0;
    for (unsigned i = 0; i < cut.size; ++i) {
      idx |= static_cast<unsigned>((value[cut.leaves[i]][w] >> p) & 1ull) << i;
    }
    out |= ((cut.tt >> idx) & 1ull) << p;
  }
  return out;
}

}  // namespace

std::string check_aig(const Aig& aig) {
  const std::uint32_t n = aig.num_nodes();
  if (n == 0 || !aig.is_const0(0) || aig.type(0) != Aig::NodeType::kConst0) {
    return "variable 0 is not the constant-0 node";
  }
  std::uint32_t num_ands = 0;
  std::unordered_map<std::uint64_t, Var> strash;
  strash.reserve(n);
  for (Var v = 1; v < n; ++v) {
    switch (aig.type(v)) {
      case Aig::NodeType::kConst0:
        return node_str(v) + ": duplicate constant node";
      case Aig::NodeType::kPi: {
        std::uint32_t index = aig.pi_index(v);
        if (index >= aig.num_pis() || aig.pis()[index] != v) {
          return node_str(v) + ": PI back-index " + std::to_string(index) +
                 " does not map back to the node";
        }
        break;
      }
      case Aig::NodeType::kAnd: {
        ++num_ands;
        Lit f0 = aig.fanin0(v);
        Lit f1 = aig.fanin1(v);
        if (lit_var(f0) >= v || lit_var(f1) >= v) {
          return node_str(v) + ": fanin " +
                 std::to_string(std::max(lit_var(f0), lit_var(f1))) +
                 " breaks topological order (cycle or dangling reference)";
        }
        if (lit_var(f0) == 0 || lit_var(f1) == 0) {
          return node_str(v) +
                 ": AND over a constant survived constant propagation";
        }
        if (lit_var(f0) == lit_var(f1)) {
          return node_str(v) + ": AND over a single variable (" +
                 std::to_string(lit_var(f0)) + ") survived strashing";
        }
        if (f0 > f1) {
          return node_str(v) + ": fanins not in canonical strash order";
        }
        std::uint64_t key = (static_cast<std::uint64_t>(f0) << 32) | f1;
        auto [it, inserted] = strash.emplace(key, v);
        if (!inserted) {
          return "nodes " + std::to_string(it->second) + " and " +
                 std::to_string(v) + ": structurally duplicate ANDs";
        }
        break;
      }
    }
  }
  if (num_ands != aig.num_ands()) {
    return "num_ands() reports " + std::to_string(aig.num_ands()) + " but " +
           std::to_string(num_ands) + " AND nodes exist";
  }
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    if (lit_var(aig.po(i)) >= n) {
      return "PO " + std::to_string(i) + ": literal over dead variable " +
             std::to_string(lit_var(aig.po(i)));
    }
  }
  return "";
}

std::string check_egraph(const EGraph& egraph) {
  std::string why;
  if (!egraph.check_invariants(&why)) return why;
  return "";
}

std::string check_choices(const Aig& aig, const AigChoices& choices) {
  return choices.check(aig);
}

std::string check_cuts(const CutManager& cuts) {
  const Aig& aig = cuts.aig();
  const AigChoices* choices = cuts.choices();
  const std::uint32_t n = aig.num_nodes();
  // One simulation of the whole AIG backs every cut's functional check:
  // exhaustive over the PIs up to 2^12 minterms (64 words), deterministic
  // pseudo-random words beyond — still a >= 4096-pattern probabilistic
  // check per cut on large circuits.
  const bool exhaustive = aig.num_pis() <= 12;
  const unsigned num_words = !exhaustive          ? 64u
                             : aig.num_pis() <= 6 ? 1u
                                                  : 1u << (aig.num_pis() - 6);
  const std::vector<std::vector<Tt>> value = simulate(aig, num_words, exhaustive);
  for (Var v = 0; v < n; ++v) {
    const auto& list = cuts.cuts(v);
    if (v == 0) {
      // The constant node carries the single empty cut (function const-0).
      if (list.size() != 1 || list[0].size != 0 || list[0].tt != 0) {
        return "node 0: constant cut list is not the single empty cut";
      }
      continue;
    }
    if (list.empty()) return node_str(v) + ": no cuts enumerated";
    if (!list.back().is_trivial(v)) {
      return node_str(v) + ": trivial cut is not last";
    }
    const bool has_ring = choices != nullptr && choices->has_ring(v);
    for (std::size_t ci = 0; ci < list.size(); ++ci) {
      const Cut& cut = list[ci];
      if (cut.size == 0 || cut.size > cuts.params().cut_size) {
        return node_str(v) + ": cut " + std::to_string(ci) +
               " has illegal size " + std::to_string(cut.size);
      }
      for (unsigned i = 0; i < cut.size; ++i) {
        if (cut.leaves[i] >= n) {
          return node_str(v) + ": cut " + std::to_string(ci) +
                 " leaf out of range";
        }
        if (i > 0 && cut.leaves[i - 1] >= cut.leaves[i]) {
          return node_str(v) + ": cut " + std::to_string(ci) +
                 " leaves not sorted/deduplicated";
        }
      }
      if ((cut.tt & ~tt_mask(cut.size)) != 0) {
        return node_str(v) + ": cut " + std::to_string(ci) +
               " truth table spills past its " +
               std::to_string(1u << cut.size) + " minterms";
      }
      // Exact duplicates (same leaf set appearing twice).
      for (std::size_t cj = 0; cj < ci; ++cj) {
        const Cut& other = list[cj];
        if (other.size != cut.size) continue;
        if (std::equal(other.leaves.begin(), other.leaves.begin() + other.size,
                       cut.leaves.begin())) {
          return node_str(v) + ": cuts " + std::to_string(cj) + " and " +
                 std::to_string(ci) + " share one leaf set (duplicate)";
        }
        // Enumeration keeps each plain list an antichain; ring merging
        // deliberately appends member cuts without cross-variant dominance
        // filtering, so the dominance invariant only binds ring-free nodes.
        if (!has_ring && ci + 1 != list.size() && cj + 1 != list.size()) {
          if (other.subset_of(cut) || cut.subset_of(other)) {
            return node_str(v) + ": cut " + std::to_string(ci) +
                   " dominates/is dominated by cut " + std::to_string(cj);
          }
        }
      }
      // Functional check: evaluating the table on the simulated leaf words
      // must reproduce the node's own simulated word, for every pattern.
      // This is the cut's defining property as a function over the PIs, so
      // it covers choice-merged cuts (whose leaves cut a ring member's
      // cone, not v's) just as well as plain structural ones. The cut
      // machinery trusts the choice annotation rather than re-proving it,
      // so a merged cut is also accepted when it reproduces a ring
      // member's word under the annotated phase — with an honest
      // annotation the member words coincide with the representative's.
      auto matches = [&](Var root, bool compl_out) {
        const Tt flip = compl_out ? ~0ull : 0ull;
        for (unsigned w = 0; w < num_words; ++w) {
          if (eval_cut_word(cut, value, w) != (value[root][w] ^ flip)) {
            return false;
          }
        }
        return true;
      };
      bool matched = matches(v, false);
      if (!matched && has_ring) {
        for (Var m : choices->ring(v)) {
          if (matches(m, lit_is_compl(choices->repr_lit(m)))) {
            matched = true;
            break;
          }
        }
      }
      if (!matched) {
        return node_str(v) + ": cut " + std::to_string(ci) +
               " truth table does not match its cone's simulation";
      }
    }
  }
  return "";
}

std::string check_lut_network(const LutNetwork& network) {
  const std::size_t n = network.num_nets();
  std::vector<std::uint8_t> defined(n, 0);
  for (std::uint32_t net : network.pis()) {
    if (net >= n) return "PI net " + std::to_string(net) + " out of range";
    if (defined[net]) {
      return "net " + std::to_string(net) + " driven twice (PI)";
    }
    defined[net] = 1;
  }
  for (const auto& [net, value] : network.const_nets()) {
    (void)value;
    if (net >= n) {
      return "constant net " + std::to_string(net) + " out of range";
    }
    if (defined[net]) {
      return "net " + std::to_string(net) + " driven twice (constant)";
    }
    defined[net] = 1;
  }
  for (std::size_t i = 0; i < network.luts().size(); ++i) {
    const MappedLut& lut = network.luts()[i];
    if (lut.inputs.empty() || lut.inputs.size() > kMaxCutSize) {
      return "LUT " + std::to_string(i) + ": illegal input count " +
             std::to_string(lut.inputs.size());
    }
    for (std::uint32_t in : lut.inputs) {
      if (in >= n) {
        return "LUT " + std::to_string(i) + ": input net " +
               std::to_string(in) + " out of range";
      }
      if (!defined[in]) {
        return "LUT " + std::to_string(i) + ": input net " +
               std::to_string(in) +
               " used before definition (emission order broken)";
      }
    }
    if ((lut.tt & ~tt_mask(static_cast<unsigned>(lut.inputs.size()))) != 0) {
      return "LUT " + std::to_string(i) +
             ": truth table spills past its inputs' minterms";
    }
    if (lut.output >= n) {
      return "LUT " + std::to_string(i) + ": output net " +
             std::to_string(lut.output) + " out of range";
    }
    if (defined[lut.output]) {
      return "net " + std::to_string(lut.output) + " driven twice (LUT " +
             std::to_string(i) + ")";
    }
    defined[lut.output] = 1;
  }
  for (std::size_t i = 0; i < network.pos().size(); ++i) {
    std::uint32_t net = network.pos()[i];
    if (net >= n || !defined[net]) {
      return "PO " + std::to_string(i) + ": net " + std::to_string(net) +
             " is undefined";
    }
  }
  return "";
}

}  // namespace emorphic::check
