#pragma once
// CheckProbe: the deliberate backdoor into the core structures' private
// state, used ONLY to seed corruption in tests/check/test_validators.cpp so
// every validator of check/validators.hpp can be shown to actually catch the
// defect class it guards against. The public APIs are (by design) unable to
// produce a cyclic AIG, a stale hashcons entry, or an unsorted cut list —
// without this seam the validators' failure paths would be dead code to the
// test suite.
//
// Never include this header from src/ outside the check subsystem.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/choice.hpp"
#include "aig/cut.hpp"
#include "egraph/egraph.hpp"
#include "mapper/lut_mapper.hpp"

namespace emorphic::check {

struct CheckProbe {
  // --- Aig -----------------------------------------------------------------
  /// Overwrite an AND node's fanin literals, bypassing strashing and the
  /// topological-order guarantee (the only way to plant a cycle).
  static void set_and_fanins(Aig& aig, Var v, Lit f0, Lit f1) {
    aig.nodes_[v].fanin0 = f0;
    aig.nodes_[v].fanin1 = f1;
  }
  static std::unordered_map<std::uint64_t, Var>& strash(Aig& aig) {
    return aig.strash_;
  }
  static std::uint32_t& num_ands(Aig& aig) { return aig.num_ands_; }

  // --- EGraph --------------------------------------------------------------
  static HashCons& hashcons(EGraph& egraph) { return egraph.hashcons_; }
  static std::vector<EClassId>& union_find(EGraph& egraph) {
    return egraph.parent_;
  }
  static ArenaSpan<ENode>& class_nodes(EGraph& egraph, EClassId id) {
    return egraph.class_nodes_[id];
  }

  // --- AigChoices ----------------------------------------------------------
  static std::vector<Lit>& repr(AigChoices& choices) { return choices.repr_; }
  static std::unordered_map<Var, std::vector<Var>>& rings(
      AigChoices& choices) {
    return choices.rings_;
  }
  static std::vector<Var>& order(AigChoices& choices) {
    return choices.order_;
  }

  // --- CutManager ----------------------------------------------------------
  static ArenaSpan<Cut>& cuts(CutManager& cuts, Var v) {
    return cuts.arena_->slots[v];
  }
  /// Prepend a copy of node `v`'s first cut (seeds the duplicate-cut defect
  /// the old vector-backed test planted with list.insert; spans grow only
  /// through their store, hence the dedicated seam).
  static void duplicate_front_cut(CutManager& cuts, Var v) {
    ArenaSpan<Cut>& slot = cuts.arena_->slots[v];
    cuts.arena_->store.push_back(slot, slot[0]);
    for (std::size_t i = slot.size() - 1; i > 0; --i) {
      std::swap(slot[i], slot[i - 1]);
    }
  }

  // --- LutNetwork ----------------------------------------------------------
  static std::vector<MappedLut>& luts(LutNetwork& network) {
    return network.luts_;
  }
  static std::vector<std::pair<std::uint32_t, bool>>& const_nets(
      LutNetwork& network) {
    return network.const_nets_;
  }
};

}  // namespace emorphic::check
