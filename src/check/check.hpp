#pragma once
// Tiered invariant checking — the correctness layer under every core
// structure (docs/correctness.md).
//
// Two tiers, mirroring egg's debug_assert layers and ABC's network checkers:
//
//  * EM_ASSERT(cond, msg) — cheap, O(1)-ish preconditions on mutation paths.
//    Compiled in whenever NDEBUG is off (any Debug build) or the
//    EMORPHIC_CHECKS CMake option is on. Throws CheckError instead of
//    aborting, so a daemon survives a poisoned request and tests can assert
//    on the message.
//
//  * EM_CHECK_EXPENSIVE(expr) — full-structure validation at the points
//    where invariants are restored (e-graph rebuild, choice finalize, cut
//    enumeration, AIG rebuilds, LUT emission). `expr` must evaluate to a
//    std::string that is empty when the structure is consistent (the
//    validator convention of check/validators.hpp). Compiled only under
//    EMORPHIC_CHECKS: e-graph corruption manifests many passes downstream,
//    so the sanitizer/check CI matrix runs with it on while release builds
//    pay nothing.
//
// Orthogonally, FlowParams::paranoia re-validates every structure at stage
// boundaries at *runtime* in any build — the validators are always compiled,
// only the internal call sites above are gated.

#include <stdexcept>
#include <string>

namespace emorphic::check {

/// A structural invariant broke: the offending structure and node/class are
/// named in what(). Thrown by EM_ASSERT / EM_CHECK_EXPENSIVE failures and by
/// the pipeline's paranoia validation.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throw a CheckError for a failed check at file:line.
[[noreturn]] void fail(const char* file, int line, const std::string& what);

}  // namespace emorphic::check

#ifndef EMORPHIC_ENABLE_ASSERTS
#if defined(EMORPHIC_CHECKS) || !defined(NDEBUG)
#define EMORPHIC_ENABLE_ASSERTS 1
#else
#define EMORPHIC_ENABLE_ASSERTS 0
#endif
#endif

#if EMORPHIC_ENABLE_ASSERTS
#define EM_ASSERT(cond, msg)                                           \
  do {                                                                 \
    if (!(cond)) ::emorphic::check::fail(__FILE__, __LINE__, (msg));   \
  } while (false)
#else
#define EM_ASSERT(cond, msg) ((void)0)
#endif

#ifdef EMORPHIC_CHECKS
#define EM_CHECK_EXPENSIVE(expr)                                       \
  do {                                                                 \
    std::string em_check_why_ = (expr);                                \
    if (!em_check_why_.empty())                                        \
      ::emorphic::check::fail(__FILE__, __LINE__, em_check_why_);      \
  } while (false)
#else
#define EM_CHECK_EXPENSIVE(expr) ((void)0)
#endif
