#include "extract/sa_extractor.hpp"

#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "aig/signature.hpp"
#include "extract/qor_memo.hpp"
#include "util/timer.hpp"

namespace emorphic {

// The memo of evaluator results keyed by structural signature now lives in
// extract/qor_memo.hpp so callers can share one across runs (WarmCache);
// without an external memo, sa_extract still uses a fresh per-run instance.

namespace {

struct ChainResult {
  Extraction solution;
  Qor qor;
  double cost = kInfCost;
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  ExtractStats stats;
  std::vector<SaTracePoint> trace;
};

/// The paper's cooling schedule (Sec. IV-A). `n` is 1-based; `delta` is the
/// |new_cost - old_cost| observed in the last move of the iteration: the
/// divisor splits into n * 10000 for n = 2, 3 and plain n for the final
/// iteration.
double next_temperature(double t, unsigned n, double delta) {
  if (n <= 1) return t;
  // Degenerate-schedule guard: with no observed move delta — e.g.
  // moves_per_iteration == 0, or the last move left the cost unchanged —
  // there is no cooling signal; keep the temperature instead of collapsing
  // it to the 1e-6 floor.
  if (delta <= 0.0) return t;
  double scaled = delta / (n < 4 ? (static_cast<double>(n) * 10000.0)
                                 : static_cast<double>(n));
  double next = t * scaled;
  // Keep the temperature sane when |delta| is enormous or denormal.
  if (!(next > 0.0)) next = 1e-6;
  return std::min(next, t);
}

ChainResult run_chain(unsigned thread_index, const EGraph& egraph,
                      const std::vector<SerializedRoot>& roots,
                      const std::vector<std::string>& pi_names,
                      const QorEvaluator& evaluator, const SaParams& params,
                      const SaHooks& hooks, std::mutex& hook_mutex,
                      QorMemo* memo) {
  ChainResult result;
  Rng rng(params.seed * 0x9e3779b97f4a7c15ull + thread_index + 1);

  // Initial solution (Fig. 4): greedy depth / greedy size / random,
  // round-robin across threads so chains start from diverse corners. Each
  // chain also explores with the matching proxy cost: depth-seeded chains
  // chase delay structures, size-seeded chains chase sharing-friendly ones
  // — the blended QoR cost arbitrates between them.
  Extraction current(egraph.num_classes_created());
  CostModel proxy = params.proxy_cost;
  switch (thread_index % 3) {
    case 0:
      current = greedy_extract(egraph, CostModel{CostKind::kDepth},
                               &result.stats, params.prune);
      break;
    case 1:
      proxy = CostModel{CostKind::kSize};
      current = dag_refine(egraph,
                           greedy_extract(egraph, CostModel{CostKind::kSize},
                                          &result.stats, params.prune),
                           proxy, roots);
      break;
    default:
      current = random_extract(egraph, rng);
      break;
  }

  bool last_was_hit = false;
  auto evaluate = [&](const Extraction& sol) {
    Aig aig = extraction_to_aig(egraph, sol, roots, pi_names).cleanup();
    last_was_hit = false;
    if (memo != nullptr) {
      std::uint64_t key = structural_signature(aig);
      Qor cached;
      if (memo->lookup(key, &cached)) {
        ++result.cache_hits;
        last_was_hit = true;
        return cached;
      }
      Qor qor = evaluator.evaluate(aig);
      ++result.evaluations;
      ++result.cache_misses;
      memo->insert(key, qor);
      return qor;
    }
    ++result.evaluations;
    return evaluator.evaluate(aig);
  };

  Qor current_qor = evaluate(current);
  double current_cost = evaluator.cost(current_qor);
  result.solution = current;
  result.qor = current_qor;
  result.cost = current_cost;

  double temperature = params.initial_temperature;
  double last_delta = 0.0;

  for (unsigned iter = 1; iter <= params.iterations; ++iter) {
    if (iter > 1) temperature = next_temperature(temperature, iter, last_delta);
    for (unsigned move = 0; move < params.moves_per_iteration; ++move) {
      if (hooks.stop && hooks.stop()) return result;
      BottomUpOptions options;
      options.cost = &proxy;
      options.p_random = params.p_random;
      options.rng = &rng;
      options.prune = params.prune;
      options.warm_start = &current;
      options.stats = &result.stats;
      Extraction candidate = bottom_up_extract(egraph, options);
      if (proxy.kind == CostKind::kSize) {
        // Size-oriented chains fight duplication with marginal-cost
        // refinement (tree costs overcount shared logic).
        candidate = dag_refine(egraph, candidate, proxy, roots, 1);
      }

      Qor qor = evaluate(candidate);
      double cost = evaluator.cost(qor);
      double delta = cost - current_cost;
      last_delta = std::abs(delta);

      bool accept = delta < 0.0;
      if (!accept && temperature > 0.0) {
        // Metropolis rule: occasional uphill moves escape local optima.
        accept = rng.next_double() < std::exp(-delta / temperature);
      }

      SaTracePoint point{thread_index, iter,         move,   temperature,
                         cost,         current_cost, accept, last_was_hit};
      result.trace.push_back(point);
      if (hooks.on_move) {
        std::lock_guard<std::mutex> lock(hook_mutex);
        hooks.on_move(point);
      }
      if (accept) {
        current = std::move(candidate);
        current_qor = qor;
        current_cost = cost;
        if (cost < result.cost ||
            (cost == result.cost && qor.area < result.qor.area)) {
          result.solution = current;
          result.qor = qor;
          result.cost = cost;
        }
      }
    }
  }
  return result;
}

}  // namespace

SaResult sa_extract(const EGraph& egraph,
                    const std::vector<SerializedRoot>& roots,
                    const std::vector<std::string>& pi_names,
                    const QorEvaluator& evaluator, const SaParams& params) {
  return sa_extract(egraph, roots, pi_names, evaluator, params, SaHooks{});
}

SaResult sa_extract(const EGraph& egraph,
                    const std::vector<SerializedRoot>& roots,
                    const std::vector<std::string>& pi_names,
                    const QorEvaluator& evaluator, const SaParams& params,
                    const SaHooks& hooks) {
  Timer timer;
  unsigned num_threads = std::max(1u, params.num_threads);

  // An external memo (hooks.qor_memo) survives this run — that is the
  // cache-warmth seam the batch driver and the synthesis service share.
  QorMemo local_memo;
  QorMemo* memo_ptr = nullptr;
  if (params.memoize_qor) {
    memo_ptr = hooks.qor_memo != nullptr ? hooks.qor_memo : &local_memo;
  }

  std::vector<ChainResult> chains(num_threads);
  {
    std::mutex hook_mutex;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        chains[t] = run_chain(t, egraph, roots, pi_names, evaluator, params,
                              hooks, hook_mutex, memo_ptr);
      });
    }
    for (auto& th : threads) th.join();
  }

  SaResult result;
  result.best_cost = kInfCost;
  for (auto& chain : chains) {
    result.evaluations += chain.evaluations;
    result.qor_cache_hits += chain.cache_hits;
    result.qor_cache_misses += chain.cache_misses;
    result.extract_stats.enodes_visited += chain.stats.enodes_visited;
    result.extract_stats.enodes_skipped += chain.stats.enodes_skipped;
    result.extract_stats.passes += chain.stats.passes;
    for (auto& point : chain.trace) result.trace.push_back(point);
    if (chain.cost < result.best_cost ||
        (chain.cost == result.best_cost &&
         chain.qor.area < result.best_qor.area)) {
      result.best = chain.solution;
      result.best_qor = chain.qor;
      result.best_cost = chain.cost;
    }
  }
  // Final DAG-aware polish of the winner: strictly-validated, adopted only
  // when the evaluator agrees it is no worse.
  Extraction polished =
      dag_refine(egraph, result.best, CostModel{CostKind::kSize}, roots);
  Aig polished_aig =
      extraction_to_aig(egraph, polished, roots, pi_names).cleanup();
  Qor polished_qor;
  if (memo_ptr != nullptr &&
      memo_ptr->lookup(structural_signature(polished_aig), &polished_qor)) {
    ++result.qor_cache_hits;
  } else {
    polished_qor = evaluator.evaluate(polished_aig);
    ++result.evaluations;
    if (memo_ptr != nullptr) ++result.qor_cache_misses;
  }
  double polished_cost = evaluator.cost(polished_qor);
  if (polished_cost < result.best_cost) {
    result.best = std::move(polished);
    result.best_qor = polished_qor;
    result.best_cost = polished_cost;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace emorphic
