#pragma once
// Simulated-annealing e-graph extraction (Sec. III-B, Fig. 4):
//
//   * several annealing chains run in parallel threads, each seeded with a
//     bottom-up initial solution (greedy depth / greedy size / random);
//   * each move generates a neighboring solution with Algorithm 1's
//     randomized bottom-up pass, evaluates its QoR through a pluggable cost
//     model (exact mapper or ML estimate, Sec. III-C), and accepts or
//     rejects by the Metropolis rule;
//   * the temperature follows the paper's schedule (Sec. IV-A): T1 = 2000,
//     then Tn = Tn-1 * |new_cost - old_cost| / (n * 10000) for n = 2, 3 and
//     Tn = Tn-1 * |new_cost - old_cost| / n for the final iteration;
//   * the best mapped solution across all chains wins.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "extract/extractor.hpp"

namespace emorphic {

/// Post-mapping quality of result.
struct Qor {
  double area = 0.0;   // µm²
  double delay = 0.0;  // ps
};

/// Pluggable cost model (Sec. III-C). Implementations must be thread-safe:
/// several SA chains evaluate concurrently.
class QorEvaluator {
 public:
  explicit QorEvaluator(double area_weight = 0.5)
      : area_weight_(area_weight) {}
  virtual ~QorEvaluator() = default;

  /// Evaluate a candidate circuit (typically: quick technology mapping, or
  /// an ML prediction of the mapped delay).
  virtual Qor evaluate(const Aig& candidate) const = 0;

  /// Scalar cost SA minimizes. Delay is the primary metric (the paper
  /// optimizes post-mapping delay); a small area term keeps the delay-
  /// oriented search from drifting into area-bloated structures — this is
  /// how Table II reports area *savings* alongside the delay reduction.
  virtual double cost(const Qor& qor) const {
    return qor.delay + area_weight_ * qor.area;
  }

  double area_weight() const { return area_weight_; }

 private:
  double area_weight_;
};

struct SaParams {
  unsigned iterations = 4;          // paper: annealing exit after 4 iterations
  unsigned moves_per_iteration = 6; // neighbor evaluations per iteration
  double initial_temperature = 2000.0;  // paper: T1 = 2000
  double p_random = 0.15;           // Algorithm 1 random skip probability
  unsigned num_threads = 4;         // paper: 4 (quality) / 6 (ML) threads
  std::uint64_t seed = 1;
  bool prune = true;                // solution-space pruning (Fig. 6)
  /// Memoize evaluator results in a per-run cache keyed by the candidate's
  /// structural signature (aig/signature.hpp), shared across all chains:
  /// re-visited extractions — common near convergence — skip mapping
  /// entirely. Never changes the result (the cached Qor is the evaluator's
  /// own earlier answer); hit/miss counters land in SaResult.
  bool memoize_qor = true;
  /// Proxy cost used by the neighbor-generation pass (depth tracks delay).
  CostModel proxy_cost{CostKind::kDepth};
};

/// One point of the annealing trace (for the Fig. 4 bench / diagnostics).
struct SaTracePoint {
  /// Annealing chain (thread) index.
  unsigned thread = 0;
  /// Iteration of the schedule this move belongs to.
  unsigned iteration = 0;
  /// Move index within the iteration.
  unsigned move = 0;
  /// Temperature at evaluation time.
  double temperature = 0.0;
  /// Scalar cost of the evaluated neighbor.
  double candidate_cost = 0.0;
  /// Scalar cost of the incumbent at evaluation time.
  double current_cost = 0.0;
  /// Metropolis verdict for this move.
  bool accepted = false;
  /// The candidate's Qor came from the per-run memo, not the evaluator.
  bool cache_hit = false;
};

/// Everything a finished SA extraction reports.
struct SaResult {
  /// The best extraction found across all chains.
  Extraction best;
  /// Its evaluated quality of result.
  Qor best_qor;
  /// Its scalar cost (QorEvaluator::cost of best_qor).
  double best_cost = 0.0;
  /// QoR evaluator calls (memo misses).
  std::size_t evaluations = 0;
  /// Qor-memo telemetry (zero when SaParams::memoize_qor is off).
  std::size_t qor_cache_hits = 0;
  std::size_t qor_cache_misses = 0;
  /// Wall clock of the whole extraction.
  double seconds = 0.0;
  /// Neighbor-generation counters, summed over all chains and moves.
  ExtractStats extract_stats;
  /// Per-move trace (see SaTracePoint); chains interleave.
  std::vector<SaTracePoint> trace;
};

class QorMemo;  // extract/qor_memo.hpp

/// Progress callbacks for an extraction run (all optional). The flow
/// pipeline uses them to stream FlowObserver events and to implement
/// cancellation / time budgets across the parallel chains.
struct SaHooks {
  /// Called after every evaluated move. Calls are serialized by an internal
  /// mutex, but chains interleave in nondeterministic order.
  std::function<void(const SaTracePoint&)> on_move;
  /// Polled by every chain before each move; return true to stop all chains
  /// early. Must be thread-safe. The best solution found so far still wins.
  std::function<bool()> stop;
  /// Optional external QoR memo (extract/qor_memo.hpp). When set (and
  /// SaParams::memoize_qor is on), chains consult and extend this shared
  /// memo instead of a fresh per-run one, so repeated structures across
  /// runs skip mapping. Results are unchanged either way: a cached Qor is
  /// the evaluator's own deterministic answer. The memo must belong to the
  /// same evaluator/library configuration as this run (see qor_memo.hpp).
  QorMemo* qor_memo = nullptr;
};

/// Run parallel simulated-annealing extraction over a (rewritten) e-graph.
SaResult sa_extract(const EGraph& egraph,
                    const std::vector<SerializedRoot>& roots,
                    const std::vector<std::string>& pi_names,
                    const QorEvaluator& evaluator, const SaParams& params);

/// Overload with progress hooks.
SaResult sa_extract(const EGraph& egraph,
                    const std::vector<SerializedRoot>& roots,
                    const std::vector<std::string>& pi_names,
                    const QorEvaluator& evaluator, const SaParams& params,
                    const SaHooks& hooks);

}  // namespace emorphic
