#pragma once
// Exact e-graph extraction by exhaustive enumeration — exponential, usable
// only on small graphs, and deliberately so: extraction is NP-hard [18],
// and this oracle exists to *measure* how close the practical extractors
// (greedy, SA) get to the optimum (tests and the extraction-quality
// ablation), not to be used in the flow.

#include <cstdint>
#include <optional>

#include "extract/extractor.hpp"

namespace emorphic {

/// Is `solution` a well-founded (acyclic) selection covering the cone of
/// `roots`?
bool solution_is_well_founded(const EGraph& egraph, const Extraction& solution,
                              const std::vector<SerializedRoot>& roots);

/// Configuration of the exhaustive extraction oracle.
struct ExactParams {
  /// Cost model to minimize.
  CostModel cost{CostKind::kSize};
  /// Give up (return nullopt) when the full assignment space exceeds this.
  std::uint64_t max_combinations = 1u << 22;
};

/// Globally optimal extraction under the cost model, or nullopt when the
/// search space exceeds params.max_combinations.
std::optional<Extraction> exact_extract(const EGraph& egraph,
                                        const std::vector<SerializedRoot>& roots,
                                        const ExactParams& params = {});

}  // namespace emorphic
