#include "extract/exact.hpp"

#include <algorithm>

namespace emorphic {

bool solution_is_well_founded(const EGraph& egraph, const Extraction& solution,
                              const std::vector<SerializedRoot>& roots) {
  enum class State : std::uint8_t { kUnseen, kOpen, kDone };
  std::vector<State> state(egraph.num_classes_created(), State::kUnseen);

  // Iterative DFS with an explicit "children pending" phase; an Open node
  // reached again is a cycle.
  struct Frame {
    EClassId cls;
    unsigned next_child;
  };
  for (const SerializedRoot& r : roots) {
    EClassId root = egraph.find(r.id);
    if (state[root] == State::kDone) continue;
    std::vector<Frame> stack{{root, 0}};
    if (state[root] == State::kOpen) return false;
    state[root] = State::kOpen;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      EClassId c = frame.cls;
      if (!solution.has(c)) return false;
      const ENode& n = egraph.eclass(c).nodes[solution.choice(c)];
      if (frame.next_child >= n.arity()) {
        state[c] = State::kDone;
        stack.pop_back();
        continue;
      }
      EClassId child = egraph.find(n.children[frame.next_child++]);
      if (state[child] == State::kOpen) return false;  // cycle
      if (state[child] == State::kUnseen) {
        state[child] = State::kOpen;
        stack.push_back(Frame{child, 0});
      }
    }
  }
  return true;
}

std::optional<Extraction> exact_extract(const EGraph& egraph,
                                        const std::vector<SerializedRoot>& roots,
                                        const ExactParams& params) {
  // Enumerate assignments only over classes reachable from the roots
  // through *any* e-node (the relevant universe).
  std::vector<EClassId> universe;
  {
    std::vector<bool> seen(egraph.num_classes_created(), false);
    std::vector<EClassId> stack;
    for (const SerializedRoot& r : roots) stack.push_back(egraph.find(r.id));
    while (!stack.empty()) {
      EClassId c = egraph.find(stack.back());
      stack.pop_back();
      if (seen[c]) continue;
      seen[c] = true;
      universe.push_back(c);
      for (const ENode& n : egraph.eclass(c).nodes) {
        for (unsigned k = 0; k < n.arity(); ++k) {
          stack.push_back(egraph.find(n.children[k]));
        }
      }
    }
  }
  std::sort(universe.begin(), universe.end());

  // Bail out if the mixed-radix assignment space is too large.
  double combinations = 1.0;
  for (EClassId c : universe) {
    combinations *= static_cast<double>(egraph.eclass(c).nodes.size());
    if (combinations > static_cast<double>(params.max_combinations)) {
      return std::nullopt;
    }
  }

  std::vector<std::uint32_t> digits(universe.size(), 0);
  std::optional<Extraction> best;
  double best_cost = kInfCost;
  for (;;) {
    Extraction candidate(egraph.num_classes_created());
    for (std::size_t i = 0; i < universe.size(); ++i) {
      candidate.choose(universe[i], digits[i]);
    }
    if (solution_is_well_founded(egraph, candidate, roots)) {
      double cost = solution_cost(egraph, candidate, params.cost, roots);
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(candidate);
      }
    }
    // Increment the mixed-radix counter.
    std::size_t pos = 0;
    while (pos < universe.size()) {
      if (++digits[pos] < egraph.eclass(universe[pos]).nodes.size()) break;
      digits[pos] = 0;
      ++pos;
    }
    if (pos == universe.size()) break;
  }
  return best;
}

}  // namespace emorphic
