#pragma once
// Thread-safe memo of QoR-evaluator results keyed by the candidate AIG's
// structural signature (aig/signature.hpp).
//
// Historically this lived inside sa_extractor.cpp as a per-run cache: SA
// chains revisit each other's neighborhoods near convergence, and a cached
// Qor is bit-identical to a recomputed one (the evaluator is deterministic),
// so memoization never alters the annealing trajectory. Promoting it to a
// public type lets the cache outlive a single extraction: the WarmCache
// substrate (flow/warm_cache.hpp) shares one memo across every flow the
// batch driver or the synthesis service runs, so a repeated circuit's SA
// phase skips technology mapping almost entirely.
//
// Sharing discipline: one memo serves ONE (deterministic) evaluator over ONE
// cell library. The structural signature does not encode either, so mixing
// them in one memo would return wrong answers; WarmCache enforces this by
// construction.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "extract/sa_extractor.hpp"  // Qor

namespace emorphic {

class QorMemo {
 public:
  /// Look `key` up; on hit copy the cached Qor into *out. Counts lifetime
  /// hits/misses for cache-warmth telemetry.
  bool lookup(std::uint64_t key, Qor* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    ++hits_;
    *out = it->second;
    return true;
  }

  void insert(std::uint64_t key, const Qor& qor) {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.emplace(key, qor);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }

  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Qor> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace emorphic
