#include "extract/extractor.hpp"

#include "extract/exact.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>

namespace emorphic {

namespace {

// NOT lowers to a complemented edge (free in an AIG), but a strictly
// positive cost is required so that cost strictly decreases along chosen
// child edges — that is what guarantees extracted solutions are acyclic.
constexpr double kEpsilonCost = 1.0 / 1024.0;

double node_op_cost(const CostModel& cost, Op op) {
  double c = cost.op_cost(op);
  return c > 0.0 ? c : kEpsilonCost;
}

struct NodeCache {
  double cost = kInfCost;
  double child0 = kInfCost;  // child costs at evaluation time
  double child1 = kInfCost;
};

}  // namespace

Extraction bottom_up_extract(const EGraph& egraph, const BottomUpOptions& options,
                             std::vector<double>* out_costs) {
  assert(options.cost != nullptr);
  assert(options.p_random == 0.0 || options.rng != nullptr);
  const CostModel& cost = *options.cost;

  const std::size_t slots = egraph.num_classes_created();
  std::vector<double> costs(slots, kInfCost);  // the paper's Costs_map
  Extraction solution(slots);
  if (options.warm_start != nullptr) {
    for (EClassId c = 0; c < options.warm_start->size() && c < slots; ++c) {
      if (options.warm_start->has(c)) {
        solution.choose(c, options.warm_start->choice(c));
      }
    }
  }

  auto child_cost = [&](const ENode& n, unsigned i) {
    EClassId child = egraph.find(n.children[i]);
    double c = costs[child];
    if (c == kInfCost) return kInfCost;
    // Marginal-cost mode: already-selected classes are free (dag_refine).
    if (options.free_classes != nullptr && (*options.free_classes)[child]) {
      return 0.0;
    }
    return c;
  };
  auto eval_node = [&](const ENode& n) -> double {
    double base = node_op_cost(cost, n.op);
    if (n.arity() == 0) return base;
    double c0 = child_cost(n, 0);
    if (c0 == kInfCost) return kInfCost;
    if (n.arity() == 1) return base + c0;
    double c1 = child_cost(n, 1);
    if (c1 == kInfCost) return kInfCost;
    return cost.kind == CostKind::kSize ? base + c0 + c1
                                        : base + std::max(c0, c1);
  };

  std::vector<EClassId> ids = egraph.class_ids();

  // Algorithm 1's per-e-node update rule (line 15): always adopt the first
  // finite cost; adopt an improvement unless the random skip fires.
  auto try_update = [&](EClassId c, std::uint32_t node_index, double new_cost,
                        bool* improved) {
    double prev = costs[c];
    if (new_cost >= prev) return;
    if (prev != kInfCost && options.p_random > 0.0 &&
        options.rng->next_double() < options.p_random) {
      return;  // exploration: deliberately keep the inferior choice
    }
    solution.choose(c, node_index);
    costs[c] = new_cost;
    *improved = true;
  };

  // Safety valve: on cyclic e-graphs the min-plus relaxation converges, but
  // sum costs over heavily shared structure can cascade for a very long
  // time. Stopping early is sound — every choice made so far is
  // well-founded — it merely leaves some classes at a dearer (still valid)
  // selection.
  const std::size_t max_passes = 1024;
  std::size_t relaxation_budget = 256 * ids.size() + 4096;

  if (!options.prune) {
    // Baseline extraction (Fig. 6, "Original Search Space"): full sweeps over
    // every e-node until a fixpoint.
    bool changed = true;
    std::size_t sweeps = 0;
    while (changed && sweeps++ < max_passes) {
      changed = false;
      if (options.stats != nullptr) ++options.stats->passes;
      for (EClassId c : ids) {
        const auto& nodes = egraph.eclass(c).nodes;
        for (std::uint32_t i = 0; i < nodes.size(); ++i) {
          double value = eval_node(nodes[i]);
          if (options.stats != nullptr) ++options.stats->enodes_visited;
          if (value == kInfCost) continue;
          bool improved = false;
          try_update(c, i, value, &improved);
          changed = changed || improved;
        }
      }
    }
    if (out_costs != nullptr) *out_costs = std::move(costs);
    return solution;
  }

  // Pruned extraction ("Reduced Search Space"): a worklist seeded with the
  // leaf classes; per-e-node memoization skips any node whose children's
  // costs are unchanged since its last evaluation.
  std::vector<std::vector<NodeCache>> cache(slots);
  std::vector<bool> queued(slots, false);
  // FIFO keeps propagation breadth-first (roughly topological), which
  // avoids the exponential recomputation cascades a LIFO order can cause
  // on reconvergent graphs.
  std::deque<EClassId> queue;
  for (EClassId c : ids) {
    for (const ENode& n : egraph.eclass(c).nodes) {
      if (n.arity() == 0) {
        if (!queued[c]) {
          queued[c] = true;
          queue.push_back(c);
        }
        break;
      }
    }
  }

  while (!queue.empty() && relaxation_budget-- > 0) {
    EClassId c = queue.front();
    queue.pop_front();
    queued[c] = false;
    if (options.stats != nullptr) ++options.stats->passes;

    const auto& nodes = egraph.eclass(c).nodes;
    if (cache[c].empty()) cache[c].resize(nodes.size());
    bool improved = false;
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      const ENode& n = nodes[i];
      NodeCache& memo = cache[c][i];
      double c0 = n.arity() >= 1 ? child_cost(n, 0) : kInfCost;
      double c1 = n.arity() >= 2 ? child_cost(n, 1) : kInfCost;
      if (memo.cost != kInfCost && memo.child0 == c0 && memo.child1 == c1) {
        // Children unchanged: this node cannot have gotten cheaper.
        if (options.stats != nullptr) ++options.stats->enodes_skipped;
        continue;
      }
      double value = eval_node(n);
      if (options.stats != nullptr) ++options.stats->enodes_visited;
      memo.child0 = c0;
      memo.child1 = c1;
      memo.cost = value;
      if (value == kInfCost) continue;
      try_update(c, i, value, &improved);
    }
    if (improved) {
      // Line 18: extend the traversal queue with the parents of this class.
      for (const auto& [pnode, pclass] : egraph.eclass(c).parents) {
        (void)pnode;
        EClassId p = egraph.find(pclass);
        if (!queued[p]) {
          queued[p] = true;
          queue.push_back(p);
        }
      }
    }
  }

  if (out_costs != nullptr) *out_costs = std::move(costs);
  return solution;
}

Extraction dag_refine(const EGraph& egraph, const Extraction& base,
                      const CostModel& cost,
                      const std::vector<SerializedRoot>& roots,
                      unsigned passes) {
  Extraction best = base;
  // True DAG cost arbitrates: size semantics count every class once.
  CostModel dag_cost{CostKind::kSize};
  if (!solution_is_well_founded(egraph, best, roots)) return best;
  double best_value = solution_cost(egraph, best, dag_cost, roots);

  for (unsigned pass = 0; pass < passes; ++pass) {
    // Mark the classes the incumbent actually uses below the roots.
    std::vector<bool> used(egraph.num_classes_created(), false);
    std::vector<EClassId> stack;
    for (const SerializedRoot& r : roots) stack.push_back(egraph.find(r.id));
    while (!stack.empty()) {
      EClassId c = egraph.find(stack.back());
      stack.pop_back();
      if (used[c] || !best.has(c)) continue;
      used[c] = true;
      const ENode& n = egraph.eclass(c).nodes[best.choice(c)];
      for (unsigned k = 0; k < n.arity(); ++k) {
        stack.push_back(egraph.find(n.children[k]));
      }
    }

    BottomUpOptions options;
    options.cost = &cost;
    options.free_classes = &used;
    Extraction candidate = bottom_up_extract(egraph, options);
    // Zero-cost contributions void the acyclicity guarantee: validate, and
    // only adopt strict improvements of the true DAG cost.
    if (!solution_is_well_founded(egraph, candidate, roots)) break;
    double value = solution_cost(egraph, candidate, dag_cost, roots);
    if (value >= best_value) break;
    best = std::move(candidate);
    best_value = value;
  }
  return best;
}

Extraction greedy_extract(const EGraph& egraph, const CostModel& cost,
                          ExtractStats* stats, bool prune) {
  BottomUpOptions options;
  options.cost = &cost;
  options.prune = prune;
  options.stats = stats;
  return bottom_up_extract(egraph, options);
}

Extraction random_extract(const EGraph& egraph, Rng& rng) {
  // Well-founded random choice: decide each class by picking uniformly at
  // random among its e-nodes whose children are already decided.
  // Kahn-style worklist (O(edges)): when a class is decided, parent e-nodes
  // lose one pending child; nodes reaching zero make their class decidable.
  const std::size_t slots = egraph.num_classes_created();
  Extraction solution(slots);
  std::vector<bool> decided(slots, false);

  struct NodeRef {
    EClassId cls;
    std::uint32_t index;
  };
  // pending[c][i]: undecided-children count of node i in class c.
  std::vector<std::vector<std::uint32_t>> pending(slots);
  std::vector<std::vector<NodeRef>> users(slots);  // child class -> user nodes
  std::vector<EClassId> queue;

  for (EClassId c : egraph.class_ids()) {
    const auto& nodes = egraph.eclass(c).nodes;
    pending[c].resize(nodes.size(), 0);
    bool has_ready = false;
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      for (unsigned k = 0; k < nodes[i].arity(); ++k) {
        EClassId child = egraph.find(nodes[i].children[k]);
        ++pending[c][i];
        users[child].push_back(NodeRef{c, i});
      }
      if (pending[c][i] == 0) has_ready = true;
    }
    if (has_ready) queue.push_back(c);
  }

  while (!queue.empty()) {
    // Pop a random queue element so tie-breaking order is also randomized.
    std::size_t pick = rng.next_below(queue.size());
    EClassId c = queue[pick];
    queue[pick] = queue.back();
    queue.pop_back();
    if (decided[c]) continue;
    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < pending[c].size(); ++i) {
      if (pending[c][i] == 0) ready.push_back(i);
    }
    if (ready.empty()) continue;  // stale queue entry
    solution.choose(c, ready[rng.next_below(ready.size())]);
    decided[c] = true;
    for (const NodeRef& ref : users[c]) {
      if (decided[ref.cls]) continue;
      if (--pending[ref.cls][ref.index] == 0) queue.push_back(ref.cls);
    }
  }
  return solution;
}

double solution_cost(const EGraph& egraph, const Extraction& solution,
                     const CostModel& cost,
                     const std::vector<SerializedRoot>& roots) {
  // Iterative DFS over chosen nodes; size counts each class once (DAG cost),
  // depth memoizes the longest path.
  enum class State : std::uint8_t { kUnseen, kOpen, kDone };
  const std::size_t slots = egraph.num_classes_created();
  std::vector<State> state(slots, State::kUnseen);
  std::vector<double> depth(slots, 0.0);
  double total_size = 0.0;

  std::vector<EClassId> stack;
  for (const SerializedRoot& r : roots) stack.push_back(egraph.find(r.id));
  while (!stack.empty()) {
    EClassId c = egraph.find(stack.back());
    if (state[c] == State::kDone) {
      stack.pop_back();
      continue;
    }
    assert(solution.has(c));
    const ENode& n = egraph.eclass(c).nodes[solution.choice(c)];
    if (state[c] == State::kUnseen) {
      state[c] = State::kOpen;
      bool pending = false;
      for (unsigned k = 0; k < n.arity(); ++k) {
        EClassId child = egraph.find(n.children[k]);
        if (state[child] != State::kDone) {
          assert(state[child] != State::kOpen && "cyclic extraction");
          stack.push_back(child);
          pending = true;
        }
      }
      if (pending) continue;
    }
    // Children done: finalize.
    double node_cost = cost.op_cost(n.op);
    double child_depth = 0.0;
    for (unsigned k = 0; k < n.arity(); ++k) {
      child_depth = std::max(child_depth, depth[egraph.find(n.children[k])]);
    }
    depth[c] = node_cost + child_depth;
    total_size += node_cost;
    state[c] = State::kDone;
    stack.pop_back();
  }

  if (cost.kind == CostKind::kSize) return total_size;
  double max_depth = 0.0;
  for (const SerializedRoot& r : roots) {
    max_depth = std::max(max_depth, depth[egraph.find(r.id)]);
  }
  return max_depth;
}

Aig extraction_to_aig(const EGraph& egraph, const Extraction& solution,
                      const std::vector<SerializedRoot>& roots,
                      const std::vector<std::string>& pi_names) {
  Aig aig;
  for (const auto& name : pi_names) aig.add_pi(name);

  const std::size_t slots = egraph.num_classes_created();
  std::vector<Lit> built(slots, kLitFalse);
  std::vector<std::uint8_t> done(slots, 0);

  std::vector<EClassId> stack;
  for (const SerializedRoot& r : roots) stack.push_back(egraph.find(r.id));
  while (!stack.empty()) {
    EClassId c = egraph.find(stack.back());
    if (done[c]) {
      stack.pop_back();
      continue;
    }
    assert(solution.has(c) && "extraction does not cover the output cone");
    const ENode& n = egraph.eclass(c).nodes[solution.choice(c)];
    bool pending = false;
    for (unsigned k = 0; k < n.arity(); ++k) {
      EClassId child = egraph.find(n.children[k]);
      if (!done[child]) {
        stack.push_back(child);
        pending = true;
      }
    }
    if (pending) continue;

    Lit lit = kLitFalse;
    switch (n.op) {
      case Op::kConst0:
        lit = kLitFalse;
        break;
      case Op::kConst1:
        lit = kLitTrue;
        break;
      case Op::kVar:
        lit = make_lit(aig.pis()[n.symbol]);
        break;
      case Op::kNot:
        lit = lit_not(built[egraph.find(n.children[0])]);
        break;
      case Op::kAnd:
        lit = aig.make_and(built[egraph.find(n.children[0])],
                           built[egraph.find(n.children[1])]);
        break;
      case Op::kOr:
        lit = aig.make_or(built[egraph.find(n.children[0])],
                          built[egraph.find(n.children[1])]);
        break;
      case Op::kXor:
        lit = aig.make_xor(built[egraph.find(n.children[0])],
                           built[egraph.find(n.children[1])]);
        break;
    }
    built[c] = lit;
    done[c] = 1;
    stack.pop_back();
  }

  for (const SerializedRoot& r : roots) {
    Lit lit = built[egraph.find(r.id)];
    aig.add_po(lit_notcond(lit, r.complemented), r.name);
  }
  return aig;
}

}  // namespace emorphic
