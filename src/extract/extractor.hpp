#pragma once
// E-graph extraction: choosing one e-node per e-class so that the term DAG
// rooted at the circuit outputs is optimized under a cost function.
// Exact extraction is NP-hard [18]; this module provides
//  * the classic greedy bottom-up extractor (sum cost / depth cost),
//  * random extraction (used to seed SA chains and to sample structural
//    variants for the ML dataset),
//  * the paper's Algorithm 1 ("Generate Neighboring Solution"): a bottom-up
//    pass from the leaves with per-class cost caching (`Costs_map`) and
//    solution-space pruning (Fig. 6), optionally randomized so SA can
//    explore.

#include <cstdint>
#include <limits>
#include <vector>

#include "aig/aig.hpp"
#include "egraph/egraph.hpp"
#include "egraph/serialize.hpp"
#include "util/rng.hpp"

namespace emorphic {

/// Cost kinds of Algorithm 1: "sum cost" approximates size, "depth cost"
/// approximates logic depth (the delay proxy).
enum class CostKind { kSize, kDepth };

struct CostModel {
  CostKind kind = CostKind::kSize;

  /// Per-operator cost, in AIG-node units: AND/OR lower to one AIG node,
  /// XOR to three; NOT is a complemented edge and therefore free.
  double op_cost(Op op) const {
    switch (op) {
      case Op::kAnd:
      case Op::kOr:
        return 1.0;
      case Op::kXor:
        return kind == CostKind::kDepth ? 2.0 : 3.0;
      default:
        return 0.0;
    }
  }
};

/// A solution: for every canonical e-class, the index of the chosen e-node
/// within `eclass(id).nodes` (kNoChoice if the class is not selected).
class Extraction {
 public:
  /// Sentinel choice index: the class is not part of the solution.
  static constexpr std::uint32_t kNoChoice = 0xffffffffu;

  /// A solution over `num_class_slots` classes, all initially unchosen.
  explicit Extraction(std::size_t num_class_slots = 0)
      : choice_(num_class_slots, kNoChoice) {}

  /// Has a node been chosen for class `cls`?
  bool has(EClassId cls) const {
    return cls < choice_.size() && choice_[cls] != kNoChoice;
  }
  /// Index of the chosen e-node within `eclass(cls).nodes` (unchecked;
  /// call has() first).
  std::uint32_t choice(EClassId cls) const { return choice_[cls]; }
  /// Select node `node_index` for class `cls` (growing the slot table as
  /// needed).
  void choose(EClassId cls, std::uint32_t node_index) {
    if (cls >= choice_.size()) choice_.resize(cls + 1, kNoChoice);
    choice_[cls] = node_index;
  }
  /// Number of class slots (>= every chosen class id + 1).
  std::size_t size() const { return choice_.size(); }
  /// The raw per-class choice table (kNoChoice for unchosen slots).
  const std::vector<std::uint32_t>& raw() const { return choice_; }

 private:
  std::vector<std::uint32_t> choice_;
};

/// Instrumentation for the Fig. 6 pruning experiment.
struct ExtractStats {
  /// Cost evaluations performed.
  std::size_t enodes_visited = 0;
  /// Evaluations avoided by pruning.
  std::size_t enodes_skipped = 0;
  /// Worklist pops / full passes.
  std::size_t passes = 0;
};

/// "Not yet reachable" cost sentinel of the bottom-up relaxation.
inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// Configuration of one bottom_up_extract run (Algorithm 1).
struct BottomUpOptions {
  /// Cost model to minimize (required).
  const CostModel* cost = nullptr;
  /// Algorithm 1's random skip chance (exploration for SA neighbors).
  double p_random = 0.0;
  /// RNG for the random skips; required when p_random > 0.
  Rng* rng = nullptr;
  /// Solution-space pruning (Fig. 6) on/off.
  bool prune = true;
  /// O_current in Algorithm 1: seed the pass with an existing solution.
  const Extraction* warm_start = nullptr;
  /// Optional instrumentation counters.
  ExtractStats* stats = nullptr;
  /// Classes whose cost contribution is discounted to zero (they are
  /// already paid for elsewhere) — the marginal-cost trick behind
  /// dag_refine(). May make selections cyclic; callers must validate.
  const std::vector<bool>* free_classes = nullptr;
};

/// The bottom-up extraction kernel (Algorithm 1). Returns a complete
/// solution together with the per-class cost map.
Extraction bottom_up_extract(const EGraph& egraph, const BottomUpOptions& options,
                             std::vector<double>* out_costs = nullptr);

/// Greedy bottom-up extraction (no randomness), the paper's baseline
/// extractor and SA initial solution.
Extraction greedy_extract(const EGraph& egraph, const CostModel& cost,
                          ExtractStats* stats = nullptr, bool prune = true);

/// Random extraction: a uniformly random *well-founded* choice per class
/// (children always selected before parents, so the result is acyclic).
Extraction random_extract(const EGraph& egraph, Rng& rng);

/// DAG-aware refinement: tree-cost extraction double-counts shared logic,
/// so greedy solutions duplicate structure. Each refinement pass
/// re-extracts with *marginal* costs — classes the incumbent already uses
/// contribute zero — then keeps the result only if it is well-founded and
/// its true DAG cost improved. Converges in a couple of passes and
/// typically removes much of the duplication (the area half of Table II).
Extraction dag_refine(const EGraph& egraph, const Extraction& base,
                      const CostModel& cost,
                      const std::vector<SerializedRoot>& roots,
                      unsigned passes = 2);

/// DAG-aware cost of a solution restricted to the cone of `roots`:
/// size sums each selected class once; depth takes the longest path.
double solution_cost(const EGraph& egraph, const Extraction& solution,
                     const CostModel& cost,
                     const std::vector<SerializedRoot>& roots);

/// Rebuild an AIG from a solution. `pi_names[symbol]` names each kVar leaf;
/// the roots become POs (with their complement flags and names).
Aig extraction_to_aig(const EGraph& egraph, const Extraction& solution,
                      const std::vector<SerializedRoot>& roots,
                      const std::vector<std::string>& pi_names);

}  // namespace emorphic
