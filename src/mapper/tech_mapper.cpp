#include "mapper/tech_mapper.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "aig/cut.hpp"

namespace emorphic {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct PhaseMatch {
  double arrival = kInf;
  double area_flow = kInf;
  std::int32_t cut = -1;          // cut index at the node
  std::int32_t match = -1;        // index into the matcher's match list
  bool via_inv = false;           // implemented as INV(other phase)
  bool is_const = false;          // node is semantically constant in this phase
};

struct NodeState {
  PhaseMatch phase[2];
};

/// The one match-selection preference, lexicographic on (arrival, area
/// flow). Pass 1 and the inverter phase-closing both use exactly this
/// comparator, so the chosen cover never depends on how a compiler or FP
/// contraction setting resolves an exact `==` tie-break.
bool lex_improves(double arrival, double area_flow, const PhaseMatch& slot) {
  if (arrival != slot.arrival) return arrival < slot.arrival;
  return area_flow < slot.area_flow;
}

struct Want {
  Var v;
  int p;
};

Tt pad4(const Cut& cut) {
  std::array<std::uint8_t, 6> identity{{0, 1, 2, 3, 4, 5}};
  return tt_expand(cut.tt, cut.size, 4, identity);
}

}  // namespace

struct MapperWorkspace::Impl {
  std::vector<NodeState> state;
  std::vector<std::array<double, 2>> required;
  std::vector<std::array<std::uint32_t, 2>> net;
  std::vector<Want> stack;
  CutArena cuts;
};

MapperWorkspace::MapperWorkspace() : impl_(std::make_unique<Impl>()) {}
MapperWorkspace::~MapperWorkspace() = default;
MapperWorkspace::MapperWorkspace(MapperWorkspace&&) noexcept = default;
MapperWorkspace& MapperWorkspace::operator=(MapperWorkspace&&) noexcept =
    default;

MappedNetlist map_to_cells(const Aig& aig, const CellLibrary& library,
                           const MapperParams& params) {
  Matcher matcher(library);
  return map_to_cells(aig, matcher, params, nullptr);
}

MappedNetlist map_to_cells(const Aig& aig, const Matcher& matcher,
                           const MapperParams& params,
                           MapperWorkspace* workspace) {
  return detail::map_with_choices(aig, nullptr, matcher, params, workspace);
}

MappedNetlist map_to_cells(const ChoiceAig& caig, const Matcher& matcher,
                           const MapperParams& params,
                           MapperWorkspace* workspace) {
  return detail::map_with_choices(caig.aig, &caig.choices, matcher, params,
                                  workspace);
}

namespace detail {

// The only choice-specific behavior here is the traversal order of passes
// 1 and 2 (the annotation's schedule instead of index order — a ring
// member may carry a larger index than the representative whose cut list
// it feeds) and the choice-aware cut enumeration itself.
MappedNetlist map_with_choices(const Aig& aig, const AigChoices* choices,
                               const Matcher& matcher,
                               const MapperParams& params,
                               MapperWorkspace* workspace) {
  if (params.cut_size < 2 || params.cut_size > kMaxCellPins) {
    throw std::invalid_argument(
        "map_to_cells: cut_size must be in [2, kMaxCellPins = " +
        std::to_string(kMaxCellPins) +
        "] (matching runs in the 4-variable NPN domain; the wider "
        "kMaxCutSize bound applies to cut enumeration only)");
  }
  std::optional<MapperWorkspace> local;
  if (workspace == nullptr) local.emplace();
  MapperWorkspace::Impl& ws =
      workspace != nullptr ? *workspace->impl_ : *local->impl_;
  const CellLibrary& library = matcher.library();

  CutParams cut_params;
  cut_params.cut_size = params.cut_size;
  cut_params.num_cuts = params.num_cuts;
  std::optional<CutManager> cuts_storage;
  if (choices != nullptr) {
    cuts_storage.emplace(aig, *choices, cut_params, &ws.cuts);
  } else {
    cuts_storage.emplace(aig, cut_params, &ws.cuts);
  }
  CutManager& cuts = *cuts_storage;

  const Cell& inv = library.cell(library.inverter());
  // Area-flow reference estimate: fanout edges inside the PO-reachable
  // cone only. Dead logic never materializes in a cover, so its fanouts
  // must not dilute the flow of shared live nodes — and with choices this
  // is what keeps the estimate identical to plain mapping: alternative
  // cones hang off representatives but carry no PO-reachable fanout, so
  // rings change the available matches, never the refs.
  std::vector<std::uint32_t> fanout(aig.num_nodes(), 0);
  {
    std::vector<std::uint8_t> reachable = aig.po_reachable();
    for (Var v = 1; v < aig.num_nodes(); ++v) {
      if (!reachable[v] || !aig.is_and(v)) continue;
      ++fanout[lit_var(aig.fanin0(v))];
      ++fanout[lit_var(aig.fanin1(v))];
    }
    for (Lit po : aig.pos()) ++fanout[lit_var(po)];
  }
  std::vector<NodeState>& state = ws.state;
  state.assign(aig.num_nodes(), NodeState{});

  // Constant node: both phases available "for free" as tie nets.
  state[0].phase[0] = PhaseMatch{0.0, 0.0, -1, -1, false};
  state[0].phase[1] = PhaseMatch{0.0, 0.0, -1, -1, false};

  auto close_phases = [&](Var v) {
    for (int p = 0; p < 2; ++p) {
      const PhaseMatch& other = state[v].phase[1 - p];
      if (other.arrival == kInf || other.via_inv) continue;
      double arrival = other.arrival + inv.delay;
      double flow = other.area_flow + inv.area;
      PhaseMatch& mine = state[v].phase[p];
      if (lex_improves(arrival, flow, mine)) {
        mine = PhaseMatch{arrival, flow, -1, -1, true};
      }
    }
  };

  // --- Pass 1: delay-optimal matching in topological order ---------------
  // "Topological" means the choice schedule when an annotation is present:
  // a representative's merged cuts reference leaves inside alternative
  // cones, whose state must be final before the representative matches.
  auto pass1_node = [&](Var v) {
    if (aig.is_pi(v)) {
      state[v].phase[0] = PhaseMatch{0.0, 0.0, -1, -1, false};
      close_phases(v);
      return;
    }
    double refs = std::max<double>(1.0, fanout[v]);
    const auto& node_cuts = cuts.cuts(v);
    for (std::int32_t ci = 0; ci < static_cast<std::int32_t>(node_cuts.size());
         ++ci) {
      const Cut& cut = node_cuts[ci];
      if (cut.is_trivial(v)) continue;
      // Structural hashing removes syntactic constants, but a node can
      // still be *semantically* constant (it matches no cell then).
      if ((cut.tt & tt_mask(cut.size)) == 0 ||
          (cut.tt & tt_mask(cut.size)) == tt_mask(cut.size)) {
        int p = (cut.tt & tt_mask(cut.size)) == 0 ? 0 : 1;
        PhaseMatch& slot = state[v].phase[p];
        if (slot.arrival > 0.0) {
          slot = PhaseMatch{0.0, 0.0, -1, -1, false, true};
        }
        continue;
      }
      const auto& matches = matcher.match(pad4(cut), cut.size);
      for (std::int32_t mi = 0; mi < static_cast<std::int32_t>(matches.size());
           ++mi) {
        const CellMatch& m = matches[mi];
        const Cell& cell = library.cell(m.cell);
        double arrival = 0.0;
        double flow = cell.area;
        bool feasible = true;
        for (unsigned j = 0; j < cell.num_inputs; ++j) {
          Var leaf = cut.leaves[m.pin_leaf[j]];
          int ph = (m.pin_compl >> j) & 1;
          const PhaseMatch& lm = state[leaf].phase[ph];
          if (lm.arrival == kInf) {
            feasible = false;
            break;
          }
          arrival = std::max(arrival, lm.arrival);
          flow += lm.area_flow;
        }
        if (!feasible) continue;
        arrival += cell.delay;
        flow /= refs;
        int p = m.output_compl ? 1 : 0;
        PhaseMatch& slot = state[v].phase[p];
        if (lex_improves(arrival, flow, slot)) {
          slot = PhaseMatch{arrival, flow, ci, mi, false};
        }
      }
    }
    close_phases(v);
    if (state[v].phase[0].arrival == kInf &&
        state[v].phase[1].arrival == kInf) {
      throw std::runtime_error(
          "map_to_cells: node has no match; is the library NPN-complete for "
          "2-input ANDs?");
    }
  };
  if (choices != nullptr) {
    for (Var v : choices->order()) {
      if (v != 0) pass1_node(v);
    }
  } else {
    for (Var v = 1; v < aig.num_nodes(); ++v) pass1_node(v);
  }

  // --- Pass 2: required-time-aware area recovery -------------------------
  // Cover of pass 1 defines the delay target; off-critical nodes re-select
  // the cheapest match that still meets their required time.
  std::vector<std::array<double, 2>>& required = ws.required;
  required.assign(aig.num_nodes(), {kInf, kInf});
  double target = 0.0;
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    Lit po = aig.po(i);
    int p = lit_is_compl(po) ? 1 : 0;
    target = std::max(target, state[lit_var(po)].phase[p].arrival);
  }
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    Lit po = aig.po(i);
    int p = lit_is_compl(po) ? 1 : 0;
    auto& req = required[lit_var(po)][p];
    req = std::min(req, target);
  }

  if (params.area_recovery) {
    // Reverse topological order — the reverse of the choice schedule when
    // an annotation is present, so a node's requirement is final before
    // its cut leaves (which may live inside alternative cones) see it.
    auto pass2_node = [&](Var v) {
      if (!aig.is_and(v)) {
        // PI: propagate requirement through the phase-closing inverter.
        if (required[v][1] != kInf) {
          required[v][0] = std::min(required[v][0], required[v][1] - inv.delay);
        }
        return;
      }
      // Inverter-bridged phases first, so a requirement arriving at the
      // derived phase reaches the source phase before it is re-selected.
      for (int p = 0; p < 2; ++p) {
        if (state[v].phase[p].via_inv && required[v][p] != kInf) {
          required[v][1 - p] =
              std::min(required[v][1 - p], required[v][p] - inv.delay);
        }
      }
      for (int p = 0; p < 2; ++p) {
        double req = required[v][p];
        if (req == kInf) continue;  // not in the cover
        PhaseMatch& slot = state[v].phase[p];
        if (slot.via_inv || slot.is_const) continue;
        // Re-select: cheapest (area-flow) match meeting the requirement.
        const auto& node_cuts = cuts.cuts(v);
        double best_flow = slot.area_flow;
        for (std::int32_t ci = 0;
             ci < static_cast<std::int32_t>(node_cuts.size()); ++ci) {
          const Cut& cut = node_cuts[ci];
          if (cut.is_trivial(v)) continue;
          const auto& matches = matcher.match(pad4(cut), cut.size);
          for (std::int32_t mi = 0;
               mi < static_cast<std::int32_t>(matches.size()); ++mi) {
            const CellMatch& m = matches[mi];
            if ((m.output_compl ? 1 : 0) != p) continue;
            const Cell& cell = library.cell(m.cell);
            double arrival = 0.0;
            double flow = cell.area;
            bool feasible = true;
            for (unsigned j = 0; j < cell.num_inputs; ++j) {
              Var leaf = cut.leaves[m.pin_leaf[j]];
              int ph = (m.pin_compl >> j) & 1;
              const PhaseMatch& lm = state[leaf].phase[ph];
              if (lm.arrival == kInf) {
                feasible = false;
                break;
              }
              arrival = std::max(arrival, lm.arrival);
              flow += lm.area_flow;
            }
            if (!feasible) continue;
            arrival += cell.delay;
            if (arrival > req) continue;
            if (flow < best_flow) {
              best_flow = flow;
              slot = PhaseMatch{arrival, flow, ci, mi, false};
            }
          }
        }
        // Propagate requirements to the chosen match's leaves.
        const Cut& cut = node_cuts[slot.cut];
        const auto& matches = matcher.match(pad4(cut), cut.size);
        const CellMatch& m = matches[slot.match];
        const Cell& cell = library.cell(m.cell);
        for (unsigned j = 0; j < cell.num_inputs; ++j) {
          Var leaf = cut.leaves[m.pin_leaf[j]];
          int ph = (m.pin_compl >> j) & 1;
          required[leaf][ph] =
              std::min(required[leaf][ph], req - cell.delay);
        }
      }
    };
    if (choices != nullptr) {
      const std::vector<Var>& order = choices->order();
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (*it != 0) pass2_node(*it);
      }
    } else {
      for (Var v = static_cast<Var>(aig.num_nodes()) - 1; v >= 1; --v) {
        pass2_node(v);
      }
    }
  }

  // --- Pass 3: netlist construction ---------------------------------------
  MappedNetlist netlist(&library);
  constexpr std::uint32_t kNoNet = 0xffffffffu;
  std::vector<std::array<std::uint32_t, 2>>& net = ws.net;
  net.assign(aig.num_nodes(), {kNoNet, kNoNet});
  // Primary-input nets exist up front.
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    Var v = aig.pis()[i];
    net[v][0] = netlist.add_net(aig.pi_name(i));
    netlist.add_pi(net[v][0]);
  }

  // Iterative emission: a (var, phase) is emitted after its inputs.
  std::vector<Want>& stack = ws.stack;
  stack.clear();
  auto need = [&](Var v, int p) {
    if (net[v][p] == kNoNet) stack.push_back(Want{v, p});
  };
  for (Lit po : aig.pos()) need(lit_var(po), lit_is_compl(po) ? 1 : 0);

  auto net_name_for = [&](Var v, int p) {
    std::string name = "n" + std::to_string(v);
    if (p == 1) name += "_b";
    return name;
  };

  while (!stack.empty()) {
    auto [v, p] = stack.back();
    if (net[v][p] != kNoNet) {
      stack.pop_back();
      continue;
    }
    if (aig.is_const0(v)) {
      net[v][p] = netlist.add_net(p == 0 ? "const0" : "const1");
      netlist.set_const_net(net[v][p], p == 1);
      stack.pop_back();
      continue;
    }
    const PhaseMatch& slot = state[v].phase[p];
    assert(slot.arrival != kInf);
    if (slot.is_const) {
      // Semantically constant node: tie the net directly.
      net[v][p] = netlist.add_net(net_name_for(v, p));
      netlist.set_const_net(net[v][p], p == 1);
      stack.pop_back();
      continue;
    }
    if (slot.via_inv || (aig.is_pi(v) && p == 1)) {
      int src = 1 - p;
      if (net[v][src] == kNoNet) {
        stack.push_back(Want{v, src});
        continue;
      }
      std::uint32_t out_net = netlist.add_net(net_name_for(v, p));
      netlist.add_gate(
          MappedGate{library.inverter(), {net[v][src]}, out_net});
      net[v][p] = out_net;
      stack.pop_back();
      continue;
    }
    const Cut& cut = cuts.cuts(v)[slot.cut];
    const auto& matches = matcher.match(pad4(cut), cut.size);
    const CellMatch& m = matches[slot.match];
    const Cell& cell = library.cell(m.cell);
    bool pending = false;
    for (unsigned j = 0; j < cell.num_inputs; ++j) {
      Var leaf = cut.leaves[m.pin_leaf[j]];
      int ph = (m.pin_compl >> j) & 1;
      if (net[leaf][ph] == kNoNet) {
        stack.push_back(Want{leaf, ph});
        pending = true;
      }
    }
    if (pending) continue;
    MappedGate gate;
    gate.cell = m.cell;
    gate.inputs.resize(cell.num_inputs);
    for (unsigned j = 0; j < cell.num_inputs; ++j) {
      Var leaf = cut.leaves[m.pin_leaf[j]];
      int ph = (m.pin_compl >> j) & 1;
      gate.inputs[j] = net[leaf][ph];
    }
    gate.output = netlist.add_net(net_name_for(v, p));
    net[v][p] = gate.output;
    netlist.add_gate(std::move(gate));
    stack.pop_back();
  }

  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    Lit po = aig.po(i);
    int p = lit_is_compl(po) ? 1 : 0;
    netlist.add_po(net[lit_var(po)][p], aig.po_name(i));
  }
  return netlist;
}

}  // namespace detail

MappedQor map_qor(const Aig& aig, const CellLibrary& library,
                  const MapperParams& params) {
  MappedNetlist netlist = map_to_cells(aig, library, params);
  return MappedQor{netlist.area(), netlist.delay()};
}

MappedQor map_qor(const Aig& aig, const Matcher& matcher,
                  const MapperParams& params, MapperWorkspace* workspace) {
  MappedNetlist netlist = map_to_cells(aig, matcher, params, workspace);
  return MappedQor{netlist.area(), netlist.delay()};
}

}  // namespace emorphic
