#include "mapper/matcher.hpp"

#include <cassert>

namespace emorphic {

namespace {

/// Cache key: the padded 16-bit table plus the leaf count. The leaf count
/// is part of the key because the padding-pin validity check depends on it.
std::uint32_t cache_key(Tt tt, unsigned num_leaves) {
  return (static_cast<std::uint32_t>(tt) << 3) | num_leaves;
}

}  // namespace

Matcher::Matcher(const CellLibrary& library) : library_(library) {
  for (std::uint32_t id = 0; id < library_.size(); ++id) {
    const Cell& cell = library_.cell(id);
    if (cell.num_inputs > kMaxCellPins) continue;
    NpnTransform tr;
    Tt canon = npn_canon(cell.tt, &tr);
    canon_cells_[canon].push_back(CellEntry{id, tr});
  }
}

std::vector<CellMatch> Matcher::compute_matches(Tt tt,
                                                unsigned num_leaves) const {
  std::vector<CellMatch> matches;
  NpnTransform cut_transform;
  Tt canon = npn_canon(tt, &cut_transform);
  auto cells = canon_cells_.find(canon);
  if (cells == canon_cells_.end()) return matches;
  for (const CellEntry& ce : cells->second) {
    // canon == apply(cell_tt, Tcell) and canon == apply(cut_tt, Tcut)
    //  =>  cut_tt == apply(cell_tt, compose(inverse(Tcut), Tcell)).
    NpnTransform comb = npn_compose(npn_inverse(cut_transform), ce.transform);
    const Cell& cell = library_.cell(ce.cell);
    assert(npn_apply(cell.tt, comb) == tt && "NPN match must reconstruct");

    CellMatch m;
    m.cell = ce.cell;
    m.output_compl = comb.output_phase;
    bool valid = true;
    for (unsigned j = 0; j < cell.num_inputs; ++j) {
      unsigned leaf = comb.perm[j];
      if (leaf >= num_leaves) {
        // The cell pin would read a padding variable; only possible if the
        // cut function ignores a leaf — skip such degenerate matches.
        valid = false;
        break;
      }
      m.pin_leaf[j] = static_cast<std::uint8_t>(leaf);
      if ((comb.input_phase >> j) & 1u) {
        m.pin_compl |= static_cast<std::uint8_t>(1u << j);
      }
    }
    if (valid) matches.push_back(m);
  }
  return matches;
}

const std::vector<CellMatch>& Matcher::match(Tt tt,
                                             unsigned num_leaves) const {
  tt &= tt_mask(4);
  if (num_leaves > kMaxCellPins) num_leaves = kMaxCellPins;
  const std::uint32_t key = cache_key(tt, num_leaves);
  Shard& shard = shards_[(key * 0x9e3779b9u) >> 28 & (kNumShards - 1)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) return *it->second;
  }
  // Miss: canonize and filter outside the lock; a racing thread computing
  // the same entry loses the emplace and its copy is discarded.
  auto matches = std::make_unique<const std::vector<CellMatch>>(
      compute_matches(tt, num_leaves));
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.entries.emplace(key, std::move(matches));
  (void)inserted;
  return *it->second;
}

std::size_t Matcher::cache_size() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace emorphic
