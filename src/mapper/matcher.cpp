#include "mapper/matcher.hpp"

#include <cassert>

namespace emorphic {

Matcher::Matcher(const CellLibrary& library) : library_(library) {
  for (std::uint32_t id = 0; id < library_.size(); ++id) {
    const Cell& cell = library_.cell(id);
    if (cell.num_inputs > 4) continue;
    NpnTransform tr;
    Tt canon = npn_canon(cell.tt, &tr);
    canon_cells_[canon].push_back(CellEntry{id, tr});
  }
}

Matcher::CanonEntry Matcher::canon_of(Tt tt) {
  auto it = canon_cache_.find(tt);
  if (it != canon_cache_.end()) return it->second;
  CanonEntry entry;
  entry.canon = npn_canon(tt, &entry.transform);
  canon_cache_.emplace(tt, entry);
  return entry;
}

const std::vector<CellMatch>& Matcher::match(Tt tt, unsigned num_leaves) {
  tt &= tt_mask(4);
  auto cached = match_cache_.find(tt);
  if (cached != match_cache_.end()) return cached->second;

  std::vector<CellMatch> matches;
  CanonEntry cut_entry = canon_of(tt);
  auto cells = canon_cells_.find(cut_entry.canon);
  if (cells != canon_cells_.end()) {
    for (const CellEntry& ce : cells->second) {
      // canon == apply(cell_tt, Tcell) and canon == apply(cut_tt, Tcut)
      //  =>  cut_tt == apply(cell_tt, compose(inverse(Tcut), Tcell)).
      NpnTransform comb =
          npn_compose(npn_inverse(cut_entry.transform), ce.transform);
      const Cell& cell = library_.cell(ce.cell);
      assert(npn_apply(cell.tt, comb) == tt && "NPN match must reconstruct");

      CellMatch m;
      m.cell = ce.cell;
      m.output_compl = comb.output_phase;
      bool valid = true;
      for (unsigned j = 0; j < cell.num_inputs; ++j) {
        unsigned leaf = comb.perm[j];
        if (leaf >= num_leaves) {
          // The cell pin would read a padding variable; only possible if the
          // cut function ignores a leaf — skip such degenerate matches.
          valid = false;
          break;
        }
        m.pin_leaf[j] = static_cast<std::uint8_t>(leaf);
        if ((comb.input_phase >> j) & 1u) {
          m.pin_compl |= static_cast<std::uint8_t>(1u << j);
        }
      }
      if (valid) matches.push_back(m);
    }
  }
  auto [it, inserted] = match_cache_.emplace(tt, std::move(matches));
  (void)inserted;
  return it->second;
}

}  // namespace emorphic
