#include "mapper/cell_library.hpp"

// CellLibrary's non-trivial members live in genlib.cpp next to the parser
// (they need the embedded library text). This translation unit exists so the
// header has a home in the build graph even if genlib is stripped out.
