#include "mapper/cell_library.hpp"

#include <stdexcept>

// asap7_like() depends on the genlib subsystem: the built-in library is
// parsed from the embedded genlib text (asap7_like_genlib_text). This is the
// one place CellLibrary reaches outside its own header — strip genlib.cpp
// and everything here except asap7_like() still links.
#include "mapper/genlib.hpp"

namespace emorphic {

const CellLibrary& CellLibrary::asap7_like() {
  // Function-local static: constructed on first use (safe to call from
  // static initializers in any translation unit, e.g. FlowParams' default
  // member initializer) and thread-safe per the C++11 magic-statics rule.
  static const CellLibrary lib = parse_genlib(asap7_like_genlib_text());
  return lib;
}

std::uint32_t CellLibrary::inverter() const {
  const Tt inv_tt = tt_not(tt_var(0, 4), 4);
  std::int32_t best = -1;
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].num_inputs == 1 && cells_[i].tt == inv_tt) {
      if (best < 0 || cells_[i].area < cells_[best].area) {
        best = static_cast<std::int32_t>(i);
      }
    }
  }
  if (best < 0) throw std::runtime_error("cell library has no inverter");
  return static_cast<std::uint32_t>(best);
}

std::int32_t CellLibrary::buffer() const {
  const Tt buf_tt = tt_var(0, 4);
  std::int32_t best = -1;
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].num_inputs == 1 && cells_[i].tt == buf_tt) {
      if (best < 0 || cells_[i].area < cells_[best].area) {
        best = static_cast<std::int32_t>(i);
      }
    }
  }
  return best;
}

std::int32_t CellLibrary::find(const std::string& name) const {
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

}  // namespace emorphic
