#pragma once
// Standard-cell library abstraction. The paper maps with the ASAP7 7 nm
// predictive PDK [21]; this reproduction ships a synthetic library with
// ASAP7-magnitude areas (µm²) and delays (ps), expressed in a genlib-style
// text format (see genlib.hpp) so users can substitute their own.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/truth.hpp"

namespace emorphic {

struct Cell {
  std::string name;
  double area = 0.0;   // µm²
  double delay = 0.0;  // ps, worst pin-to-output (load-independent NLDM stand-in)
  unsigned num_inputs = 0;
  std::vector<std::string> input_names;  // pin order == truth-table variable order
  std::string output_name;
  Tt tt = 0;  // function over the first num_inputs variables (padded to 4)
};

class CellLibrary {
 public:
  void add(Cell cell) { cells_.push_back(std::move(cell)); }

  const std::vector<Cell>& cells() const { return cells_; }
  const Cell& cell(std::uint32_t id) const { return cells_[id]; }
  std::size_t size() const { return cells_.size(); }

  /// Index of the inverter (the cheapest cell computing NOT).
  std::uint32_t inverter() const;
  /// Index of the cheapest cell computing BUF (identity), if any.
  std::int32_t buffer() const;

  /// Find a cell by name; returns -1 when absent.
  std::int32_t find(const std::string& name) const;

  /// The built-in ASAP7-like library (parsed from embedded genlib text).
  static const CellLibrary& asap7_like();

 private:
  std::vector<Cell> cells_;
};

}  // namespace emorphic
