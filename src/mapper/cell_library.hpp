#pragma once
// Standard-cell library abstraction. The paper maps with the ASAP7 7 nm
// predictive PDK [21]; this reproduction ships a synthetic library with
// ASAP7-magnitude areas (µm²) and delays (ps), expressed in a genlib-style
// text format (see genlib.hpp) so users can substitute their own.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/truth.hpp"

namespace emorphic {

/// Maximum number of input pins a library cell may have. This is the one
/// authoritative matching bound: NPN canonicalization (truth.hpp) runs over
/// a 4-variable domain, the matcher's pin arrays are sized with it, the
/// genlib parser rejects wider gates, and `map_to_cells` refuses cut sizes
/// beyond it. It is deliberately smaller than `kMaxCutSize` (aig/cut.hpp):
/// cut *enumeration* supports up to 6 leaves (SOP balancing uses the full
/// width), but only cuts of at most kMaxCellPins leaves can be Boolean-
/// matched against cells.
inline constexpr unsigned kMaxCellPins = 4;

/// One library cell: a named single-output gate with a fixed area and a
/// load-independent worst-case pin-to-output delay.
struct Cell {
  /// Cell name as it appears in the genlib source (and in BLIF output).
  std::string name;
  /// Cell area in µm².
  double area = 0.0;
  /// Worst pin-to-output delay in ps (load-independent NLDM stand-in).
  double delay = 0.0;
  /// Number of input pins; at most kMaxCellPins.
  unsigned num_inputs = 0;
  /// Pin names; pin order == truth-table variable order.
  std::vector<std::string> input_names;
  /// Output pin name.
  std::string output_name;
  /// Cell function over the first num_inputs variables (padded to 4).
  Tt tt = 0;
};

/// An ordered collection of cells; indices into `cells()` are the stable
/// cell ids used by CellMatch and MappedGate.
class CellLibrary {
 public:
  /// Append a cell; its id is the current size().
  void add(Cell cell) { cells_.push_back(std::move(cell)); }

  /// All cells, in id order.
  const std::vector<Cell>& cells() const { return cells_; }
  /// Cell by id (unchecked).
  const Cell& cell(std::uint32_t id) const { return cells_[id]; }
  /// Number of cells.
  std::size_t size() const { return cells_.size(); }

  /// Index of the inverter (the cheapest cell computing NOT).
  std::uint32_t inverter() const;
  /// Index of the cheapest cell computing BUF (identity), if any.
  std::int32_t buffer() const;

  /// Find a cell by name; returns -1 when absent.
  std::int32_t find(const std::string& name) const;

  /// The built-in ASAP7-like library (parsed from embedded genlib text).
  static const CellLibrary& asap7_like();

 private:
  std::vector<Cell> cells_;
};

}  // namespace emorphic
