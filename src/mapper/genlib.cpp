#include "mapper/genlib.hpp"

#include <cctype>
#include <stdexcept>

namespace emorphic {

namespace {

/// Expression parser producing a truth table over the gate's pins (pins are
/// numbered in order of first appearance, in a 4-variable domain).
class GateExprParser {
 public:
  GateExprParser(const std::string& text, Cell& cell)
      : text_(text), cell_(cell) {}

  Tt parse() {
    Tt result = parse_or();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::runtime_error("genlib: trailing characters in expression");
    }
    return result & tt_mask(4);
  }

 private:
  Tt parse_or() {
    Tt acc = parse_xor();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '|')) {
        ++pos_;
        acc |= parse_xor();
      } else {
        return acc;
      }
    }
  }

  Tt parse_xor() {
    Tt acc = parse_and();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '^') {
        ++pos_;
        acc ^= parse_and();
      } else {
        return acc;
      }
    }
  }

  Tt parse_and() {
    Tt acc = parse_factor();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && (text_[pos_] == '*' || text_[pos_] == '&')) {
        ++pos_;
        acc &= parse_factor();
      } else if (pos_ < text_.size() &&
                 (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
                  text_[pos_] == '(' || text_[pos_] == '!')) {
        // Juxtaposition also means AND in genlib (e.g. "A B").
        acc &= parse_factor();
      } else {
        return acc;
      }
    }
  }

  Tt parse_factor() {
    skip_ws();
    if (pos_ >= text_.size()) {
      throw std::runtime_error("genlib: unexpected end of expression");
    }
    char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      return ~parse_factor() & tt_mask(4);
    }
    if (c == '(') {
      ++pos_;
      Tt inner = parse_or();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        throw std::runtime_error("genlib: expected ')'");
      }
      ++pos_;
      return inner;
    }
    std::string name = parse_name();
    if (name == "CONST0") return 0;
    if (name == "CONST1") return tt_mask(4);
    // Pin reference; allow postfix ' for complement.
    unsigned pin = pin_index(name);
    Tt value = tt_var(pin, 4);
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      value = ~value & tt_mask(4);
    }
    return value;
  }

  unsigned pin_index(const std::string& name) {
    for (unsigned i = 0; i < cell_.input_names.size(); ++i) {
      if (cell_.input_names[i] == name) return i;
    }
    if (cell_.input_names.size() >= kMaxCellPins) {
      throw std::runtime_error("genlib: gate " + cell_.name +
                               " has more than " +
                               std::to_string(kMaxCellPins) + " inputs");
    }
    cell_.input_names.push_back(name);
    return static_cast<unsigned>(cell_.input_names.size() - 1);
  }

  std::string parse_name() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw std::runtime_error("genlib: expected pin name at offset " +
                               std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  Cell& cell_;
  std::size_t pos_ = 0;
};

}  // namespace

CellLibrary parse_genlib(const std::string& text) {
  CellLibrary lib;
  std::size_t pos = 0;
  auto skip_ws_and_comments = [&] {
    for (;;) {
      while (pos < text.size() &&
             std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      if (pos < text.size() && text[pos] == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
        continue;
      }
      return;
    }
  };
  auto next_token = [&]() -> std::string {
    skip_ws_and_comments();
    std::size_t start = pos;
    while (pos < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    return text.substr(start, pos - start);
  };

  for (;;) {
    skip_ws_and_comments();
    if (pos >= text.size()) break;
    std::string keyword = next_token();
    if (keyword != "GATE") {
      throw std::runtime_error("genlib: expected GATE, got '" + keyword + "'");
    }
    Cell cell;
    cell.name = next_token();
    std::string area_token = next_token();
    cell.area = std::stod(area_token);

    // Everything up to ';' is "<output>=<expr>".
    std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) {
      throw std::runtime_error("genlib: missing ';' after gate expression");
    }
    std::string assign = text.substr(pos, semi - pos);
    pos = semi + 1;
    std::size_t eq = assign.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("genlib: expected '=' in gate expression");
    }
    // Trim the output name.
    std::string out_name = assign.substr(0, eq);
    out_name.erase(0, out_name.find_first_not_of(" \t\r\n"));
    out_name.erase(out_name.find_last_not_of(" \t\r\n") + 1);
    cell.output_name = out_name;

    std::string expr = assign.substr(eq + 1);
    cell.tt = GateExprParser(expr, cell).parse();
    cell.num_inputs = static_cast<unsigned>(cell.input_names.size());

    // Optional "PIN * <delay>" clause (one worst-case delay for all pins).
    skip_ws_and_comments();
    if (text.compare(pos, 3, "PIN") == 0) {
      next_token();                    // PIN
      next_token();                    // pin name or *
      cell.delay = std::stod(next_token());
    }
    lib.add(std::move(cell));
  }
  return lib;
}

const char* asap7_like_genlib_text() {
  // Synthetic library with ASAP7-magnitude areas (µm²) and delays (ps).
  // One size per function keeps mapping deterministic and readable.
  return R"(
# emorphic ASAP7-like standard cells (synthetic; see DESIGN.md)
GATE INVx1    0.0934 Y=!A;               PIN * 8
GATE BUFx2    0.1401 Y=A;                PIN * 14
GATE NAND2x1  0.1401 Y=!(A*B);           PIN * 12
GATE NOR2x1   0.1401 Y=!(A+B);           PIN * 14
GATE AND2x2   0.1868 Y=A*B;              PIN * 18
GATE OR2x2    0.1868 Y=A+B;              PIN * 20
GATE NAND3x1  0.1868 Y=!(A*B*C);         PIN * 16
GATE NOR3x1   0.1868 Y=!(A+B+C);         PIN * 20
GATE AND3x2   0.2335 Y=A*B*C;            PIN * 21
GATE OR3x2    0.2335 Y=A+B+C;            PIN * 23
GATE NAND4x1  0.2335 Y=!(A*B*C*D);       PIN * 20
GATE NOR4x1   0.2335 Y=!(A+B+C+D);       PIN * 26
GATE AND4x2   0.2802 Y=A*B*C*D;          PIN * 24
GATE OR4x2    0.2802 Y=A+B+C+D;          PIN * 27
GATE AOI21x1  0.1868 Y=!((A*B)+C);       PIN * 16
GATE OAI21x1  0.1868 Y=!((A+B)*C);       PIN * 16
GATE AOI22x1  0.2335 Y=!((A*B)+(C*D));   PIN * 18
GATE OAI22x1  0.2335 Y=!((A+B)*(C+D));   PIN * 18
GATE AOI211x1 0.2335 Y=!((A*B)+C+D);     PIN * 20
GATE OAI211x1 0.2335 Y=!((A+B)*C*D);     PIN * 20
GATE AO21x2   0.2335 Y=(A*B)+C;          PIN * 21
GATE OA21x2   0.2335 Y=(A+B)*C;          PIN * 21
GATE XOR2x1   0.2802 Y=A^B;              PIN * 22
GATE XNOR2x1  0.2802 Y=!(A^B);           PIN * 22
GATE MUX2x1   0.2802 Y=(S*A)+(!S*B);     PIN * 24
GATE MAJ3x1   0.3269 Y=(A*B)+(A*C)+(B*C); PIN * 26
)";
}

}  // namespace emorphic
