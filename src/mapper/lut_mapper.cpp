#include "mapper/lut_mapper.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "check/check.hpp"
#include "check/validators.hpp"
#include "opt/sop.hpp"
#include "util/thread_pool.hpp"

namespace emorphic {

namespace {

constexpr double kInfFlow = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNoReq = 0xffffffffu;
constexpr std::uint32_t kNoNet = 0xffffffffu;

/// Best implementation of one node's positive function (LUTs absorb both
/// input and output polarity into the table, so one polarity suffices —
/// unlike the cell mapper's PhaseMatch pair).
struct LutMatch {
  std::uint32_t depth = kNoReq;  // LUT levels at the node's output
  double area_flow = kInfFlow;
  std::int32_t cut = -1;         // cut index at the node
  bool is_const = false;         // node is semantically constant
  bool const_val = false;        // ... of this value
};

/// The one selection preference, lexicographic on (depth, area flow) —
/// kept as a named helper for the same reason as the cell mapper's
/// lex_improves: pass 1 must not depend on FP tie-break accidents.
bool lex_improves(std::uint32_t depth, double flow, const LutMatch& slot) {
  if (depth != slot.depth) return depth < slot.depth;
  return flow < slot.area_flow;
}

}  // namespace

// --- LutNetwork --------------------------------------------------------------

std::uint32_t LutNetwork::add_net(std::string name) {
  net_names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(net_names_.size() - 1);
}

std::uint32_t LutNetwork::add_lut(MappedLut lut) {
  luts_.push_back(std::move(lut));
  return static_cast<std::uint32_t>(luts_.size() - 1);
}

void LutNetwork::add_po(std::uint32_t net, std::string name) {
  pos_.push_back(net);
  po_names_.push_back(std::move(name));
}

void LutNetwork::set_const_net(std::uint32_t net, bool value) {
  const_nets_.emplace_back(net, value);
}

std::vector<std::uint32_t> LutNetwork::levels() const {
  std::vector<std::uint32_t> level(net_names_.size(), 0);
  // LUTs are appended in topological order by the mapper.
  for (const MappedLut& lut : luts_) {
    std::uint32_t worst = 0;
    for (std::uint32_t in : lut.inputs) worst = std::max(worst, level[in]);
    level[lut.output] = worst + 1;
  }
  return level;
}

std::uint32_t LutNetwork::depth() const {
  std::vector<std::uint32_t> level = levels();
  std::uint32_t worst = 0;
  for (std::uint32_t po : pos_) worst = std::max(worst, level[po]);
  return worst;
}

Aig LutNetwork::to_aig() const {
  Aig aig;
  std::vector<Lit> net_lit(net_names_.size(), kLitFalse);
  std::vector<bool> driven(net_names_.size(), false);
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    net_lit[pis_[i]] = make_lit(aig.add_pi(net_names_[pis_[i]]));
    driven[pis_[i]] = true;
  }
  for (const auto& [net, value] : const_nets_) {
    net_lit[net] = value ? kLitTrue : kLitFalse;
    driven[net] = true;
  }
  for (const MappedLut& lut : luts_) {
    const unsigned k = static_cast<unsigned>(lut.inputs.size());
    std::vector<Lit> leaves(k);
    for (unsigned j = 0; j < k; ++j) {
      assert(driven[lut.inputs[j]] && "LUT netlists must be topological");
      leaves[j] = net_lit[lut.inputs[j]];
    }
    net_lit[lut.output] = build_sop(aig, lut.tt & tt_mask(k), k, leaves);
    driven[lut.output] = true;
  }
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (!driven[pos_[i]]) {
      throw std::runtime_error("LUT network PO net is undriven: " +
                               net_names_[pos_[i]]);
    }
    aig.add_po(net_lit[pos_[i]], po_names_[i]);
  }
  return aig.cleanup();
}

std::string LutNetwork::to_blif(const std::string& model_name) const {
  std::ostringstream out;
  out << ".model " << model_name << "\n.inputs";
  for (std::uint32_t net : pis_) out << ' ' << net_names_[net];
  out << "\n.outputs";
  for (std::size_t i = 0; i < pos_.size(); ++i) out << ' ' << po_names_[i];
  out << "\n";
  for (const auto& [net, value] : const_nets_) {
    out << ".names " << net_names_[net] << "\n";
    if (value) out << "1\n";
  }
  for (const MappedLut& lut : luts_) {
    const unsigned k = static_cast<unsigned>(lut.inputs.size());
    out << ".names";
    for (std::uint32_t in : lut.inputs) out << ' ' << net_names_[in];
    out << ' ' << net_names_[lut.output] << "\n";
    // One cover row per ON-set minterm; row character j is input j.
    const Tt f = lut.tt & tt_mask(k);
    for (unsigned m = 0; m < (1u << k); ++m) {
      if (((f >> m) & 1) == 0) continue;
      for (unsigned j = 0; j < k; ++j) out << (((m >> j) & 1) ? '1' : '0');
      out << " 1\n";
    }
  }
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (net_names_[pos_[i]] != po_names_[i]) {
      out << ".names " << net_names_[pos_[i]] << ' ' << po_names_[i]
          << "\n1 1\n";
    }
  }
  out << ".end\n";
  return out.str();
}

// --- the mapper --------------------------------------------------------------

struct LutWorkspace::Impl {
  std::vector<LutMatch> state;
  std::vector<std::uint32_t> required;
  std::vector<std::uint32_t> net;
  std::vector<std::uint32_t> inv_net;
  std::vector<std::uint32_t> fanout;
  std::vector<Var> stack;
  CutArena cuts;
};

LutWorkspace::LutWorkspace() : impl_(std::make_unique<Impl>()) {}
LutWorkspace::~LutWorkspace() = default;
LutWorkspace::LutWorkspace(LutWorkspace&&) noexcept = default;
LutWorkspace& LutWorkspace::operator=(LutWorkspace&&) noexcept = default;

LutNetwork map_to_luts(const Aig& aig, const LutMapperParams& params,
                       LutWorkspace* workspace, ThreadPool* pool) {
  return detail::map_luts_with_choices(aig, nullptr, params, workspace, pool);
}

LutNetwork map_to_luts(const ChoiceAig& caig, const LutMapperParams& params,
                       LutWorkspace* workspace, ThreadPool* pool) {
  return detail::map_luts_with_choices(caig.aig, &caig.choices, params,
                                       workspace, pool);
}

LutQor lut_qor(const LutNetwork& network) {
  return LutQor{network.area(), network.depth()};
}

namespace detail {

// Structure mirrors the cell mapper's map_with_choices: the choice-specific
// behavior is only the traversal order (the annotation's schedule instead
// of index order) and the choice-aware cut enumeration.
LutNetwork map_luts_with_choices(const Aig& aig, const AigChoices* choices,
                                 const LutMapperParams& params,
                                 LutWorkspace* workspace, ThreadPool* pool) {
  if (params.lut_size < 2 || params.lut_size > kMaxCutSize) {
    throw std::invalid_argument(
        "map_to_luts: lut_size must be in [2, kMaxCutSize = " +
        std::to_string(kMaxCutSize) +
        "] (a LUT configuration is one cut truth table, so the enumeration "
        "bound is the backend bound), got " + std::to_string(params.lut_size));
  }
  std::optional<LutWorkspace> local;
  if (workspace == nullptr) local.emplace();
  LutWorkspace::Impl& ws =
      workspace != nullptr ? *workspace->impl_ : *local->impl_;

  CutParams cut_params;
  cut_params.cut_size = params.lut_size;
  cut_params.num_cuts = params.num_cuts;
  cut_params.num_threads = params.num_threads;
  std::optional<CutManager> cuts_storage;
  if (choices != nullptr) {
    cuts_storage.emplace(aig, *choices, cut_params, &ws.cuts, pool);
  } else {
    cuts_storage.emplace(aig, cut_params, &ws.cuts, pool);
  }
  CutManager& cuts = *cuts_storage;

  // Area-flow reference estimate: fanout edges inside the PO-reachable
  // cone only, exactly as in the cell mapper — dead logic (including
  // choice-ring alternative cones) influences the available cuts but
  // never the flow of shared live nodes.
  std::vector<std::uint32_t>& fanout = ws.fanout;
  fanout.assign(aig.num_nodes(), 0);
  {
    std::vector<std::uint8_t> reachable = aig.po_reachable();
    for (Var v = 1; v < aig.num_nodes(); ++v) {
      if (!reachable[v] || !aig.is_and(v)) continue;
      ++fanout[lit_var(aig.fanin0(v))];
      ++fanout[lit_var(aig.fanin1(v))];
    }
    for (Lit po : aig.pos()) ++fanout[lit_var(po)];
  }

  std::vector<LutMatch>& state = ws.state;
  state.assign(aig.num_nodes(), LutMatch{});

  // --- Pass 1: depth-optimal selection in topological order ---------------
  auto pass1_node = [&](Var v) {
    if (aig.is_pi(v)) {
      state[v] = LutMatch{0, 0.0, -1, false, false};
      return;
    }
    const double refs = std::max<double>(1.0, fanout[v]);
    LutMatch& slot = state[v];
    const auto& node_cuts = cuts.cuts(v);
    for (std::int32_t ci = 0; ci < static_cast<std::int32_t>(node_cuts.size());
         ++ci) {
      const Cut& cut = node_cuts[ci];
      if (cut.is_trivial(v)) continue;
      const Tt f = cut.tt & tt_mask(cut.size);
      if (f == 0 || f == tt_mask(cut.size)) {
        // Semantically constant: a free net beats any LUT; (0, 0.0) also
        // wins every lex comparison so it can never be displaced below.
        if (!slot.is_const) {
          slot = LutMatch{0, 0.0, ci, true, f != 0};
        }
        continue;
      }
      std::uint32_t depth = 0;
      double flow = 1.0;  // unit LUT area
      for (unsigned j = 0; j < cut.size; ++j) {
        const LutMatch& lm = state[cut.leaves[j]];
        depth = std::max(depth, lm.depth);
        flow += lm.area_flow;
      }
      depth += 1;  // unit LUT delay
      flow /= refs;
      if (lex_improves(depth, flow, slot)) {
        slot = LutMatch{depth, flow, ci, false, false};
      }
    }
    // Every AND node has at least the (fanin0, fanin1) 2-leaf cut, so a
    // selection always exists.
    assert(slot.depth != kNoReq);
  };
  if (choices != nullptr) {
    for (Var v : choices->order()) {
      if (v != 0) pass1_node(v);
    }
  } else {
    for (Var v = 1; v < aig.num_nodes(); ++v) pass1_node(v);
  }

  // --- Pass 2: required-depth area recovery -------------------------------
  std::vector<std::uint32_t>& required = ws.required;
  required.assign(aig.num_nodes(), kNoReq);
  std::uint32_t target = 0;
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    const Lit po = aig.po(i);
    const Var r = lit_var(po);
    if (aig.is_and(r) && !state[r].is_const) {
      target = std::max(target, state[r].depth);
    } else if (aig.is_pi(r) && lit_is_compl(po)) {
      target = std::max<std::uint32_t>(target, 1);  // PI inverter LUT
    }
  }
  for (Lit po : aig.pos()) {
    const Var r = lit_var(po);
    required[r] = std::min(required[r], target);
  }

  if (params.area_recovery) {
    // Reverse topological order — the reverse of the choice schedule when
    // an annotation is present, so a node's requirement is final before
    // its cut leaves (which may live inside alternative cones) see it.
    auto pass2_node = [&](Var v) {
      if (!aig.is_and(v)) return;
      LutMatch& slot = state[v];
      const std::uint32_t req = required[v];
      if (req == kNoReq || slot.is_const) return;  // not in the cover / free
      const double refs = std::max<double>(1.0, fanout[v]);
      const auto& node_cuts = cuts.cuts(v);
      double best_flow = slot.area_flow;
      for (std::int32_t ci = 0;
           ci < static_cast<std::int32_t>(node_cuts.size()); ++ci) {
        const Cut& cut = node_cuts[ci];
        if (cut.is_trivial(v)) continue;
        const Tt f = cut.tt & tt_mask(cut.size);
        if (f == 0 || f == tt_mask(cut.size)) continue;  // pass 1 took these
        std::uint32_t depth = 0;
        double flow = 1.0;
        for (unsigned j = 0; j < cut.size; ++j) {
          const LutMatch& lm = state[cut.leaves[j]];
          depth = std::max(depth, lm.depth);
          flow += lm.area_flow;
        }
        depth += 1;
        flow /= refs;
        if (depth > req) continue;
        if (flow < best_flow) {
          best_flow = flow;
          slot = LutMatch{depth, flow, ci, false, false};
        }
      }
      // Propagate requirements to the chosen cut's leaves.
      const Cut& cut = node_cuts[slot.cut];
      for (unsigned j = 0; j < cut.size; ++j) {
        const Var leaf = cut.leaves[j];
        required[leaf] = std::min(required[leaf], req - 1);
      }
    };
    if (choices != nullptr) {
      const std::vector<Var>& order = choices->order();
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (*it != 0) pass2_node(*it);
      }
    } else {
      for (Var v = static_cast<Var>(aig.num_nodes()) - 1; v >= 1; --v) {
        pass2_node(v);
      }
    }
  }

  // --- Pass 3: netlist construction ---------------------------------------
  LutNetwork out;
  std::vector<std::uint32_t>& net = ws.net;
  std::vector<std::uint32_t>& inv_net = ws.inv_net;
  net.assign(aig.num_nodes(), kNoNet);
  inv_net.assign(aig.num_nodes(), kNoNet);
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    const Var v = aig.pis()[i];
    net[v] = out.add_net(aig.pi_name(i));
    out.add_pi(net[v]);
  }

  std::uint32_t const_net[2] = {kNoNet, kNoNet};
  auto ensure_const = [&](bool value) {
    std::uint32_t& slot = const_net[value ? 1 : 0];
    if (slot == kNoNet) {
      slot = out.add_net(value ? "const1" : "const0");
      out.set_const_net(slot, value);
    }
    return slot;
  };
  // Net of a leaf that needs no LUT emission (PI / semantic constant);
  // kNoNet for an AND node that still awaits emission.
  auto leaf_net = [&](Var leaf) -> std::uint32_t {
    if (net[leaf] != kNoNet) return net[leaf];
    if (state[leaf].is_const) {
      net[leaf] = ensure_const(state[leaf].const_val);
      return net[leaf];
    }
    return kNoNet;
  };

  // Demand-driven emission of the positive polarities. A complemented PO
  // does not demand its root's positive LUT — it demands the root's *cut
  // leaves* and gets a dedicated LUT with the negated table afterwards
  // (sharing the positive LUT's leaves), so a root referenced only in one
  // polarity costs exactly one LUT.
  std::vector<Var>& stack = ws.stack;
  stack.clear();
  auto need = [&](Var v) {
    if (aig.is_and(v) && !state[v].is_const && net[v] == kNoNet) {
      stack.push_back(v);
    }
  };
  for (Lit po : aig.pos()) {
    const Var r = lit_var(po);
    if (!aig.is_and(r) || state[r].is_const) continue;
    if (!lit_is_compl(po)) {
      need(r);
    } else {
      const Cut& cut = cuts.cuts(r)[state[r].cut];
      for (unsigned j = 0; j < cut.size; ++j) need(cut.leaves[j]);
    }
  }

  while (!stack.empty()) {
    const Var v = stack.back();
    if (net[v] != kNoNet) {
      stack.pop_back();
      continue;
    }
    const LutMatch& slot = state[v];
    assert(slot.cut >= 0 && !slot.is_const);
    const Cut& cut = cuts.cuts(v)[slot.cut];
    bool pending = false;
    for (unsigned j = 0; j < cut.size; ++j) {
      if (leaf_net(cut.leaves[j]) == kNoNet) {
        stack.push_back(cut.leaves[j]);
        pending = true;
      }
    }
    if (pending) continue;
    MappedLut lut;
    lut.inputs.resize(cut.size);
    for (unsigned j = 0; j < cut.size; ++j) {
      lut.inputs[j] = leaf_net(cut.leaves[j]);
    }
    lut.tt = cut.tt & tt_mask(cut.size);
    lut.output = out.add_net("n" + std::to_string(v));
    net[v] = lut.output;
    out.add_lut(std::move(lut));
    stack.pop_back();
  }

  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    const Lit po = aig.po(i);
    const Var r = lit_var(po);
    const bool compl_po = lit_is_compl(po);
    std::uint32_t po_net;
    if (aig.is_const0(r)) {
      po_net = ensure_const(compl_po);
    } else if (state[r].is_const) {
      po_net = ensure_const(state[r].const_val != compl_po);
    } else if (!compl_po) {
      po_net = net[r];
    } else if (inv_net[r] != kNoNet) {
      po_net = inv_net[r];
    } else if (aig.is_pi(r)) {
      MappedLut inv;
      inv.inputs = {net[r]};
      inv.tt = tt_not(tt_var(0, 1), 1);
      inv.output = out.add_net("n" + std::to_string(r) + "_b");
      inv_net[r] = inv.output;
      out.add_lut(std::move(inv));
      po_net = inv_net[r];
    } else {
      // Complemented root LUT: same leaves, negated table.
      const Cut& cut = cuts.cuts(r)[state[r].cut];
      MappedLut dup;
      dup.inputs.resize(cut.size);
      for (unsigned j = 0; j < cut.size; ++j) {
        dup.inputs[j] = leaf_net(cut.leaves[j]);
        assert(dup.inputs[j] != kNoNet);
      }
      dup.tt = tt_not(cut.tt, cut.size);
      dup.output = out.add_net("n" + std::to_string(r) + "_b");
      inv_net[r] = dup.output;
      out.add_lut(std::move(dup));
      po_net = inv_net[r];
    }
    out.add_po(po_net, aig.po_name(i));
  }
  EM_CHECK_EXPENSIVE(check::check_lut_network(out));
  return out;
}

}  // namespace detail

}  // namespace emorphic
