#pragma once
// Truth-table-driven k-LUT technology mapping — the FPGA backend next to
// the standard-cell mapper (tech_mapper.hpp).
//
// A k-input LUT implements *any* function of up to k inputs, so no cell
// library and no Boolean matching are involved: each priority cut IS a
// match, its truth table (computed during enumeration, complemented AIG
// edges already absorbed) IS the LUT configuration. That removes the
// kMaxCellPins = 4 matching bound — LUT covers run at the full enumeration
// width kMaxCutSize = 6, the `if -K 6` setting of the paper's baseline.
//
// The selection DP is the cell mapper's, specialized to the LUT cost
// model: unit area and unit delay per LUT, so pass 1 is depth-optimal
// (LUT levels, area flow breaking ties) and pass 2 recovers area under
// per-node required depths. No phase bookkeeping is needed — a LUT
// absorbs input and output polarity into its table — so only positive
// polarities are computed; a complemented primary output duplicates its
// root LUT with the negated table (or adds a 1-input inverter LUT when
// the root is a primary input).
//
// The ChoiceAig overload maps choice-aware, exactly like the cell
// mapper's: cut enumeration merges every ring member's cuts into its
// representative (aig/cut.hpp) and the DP then picks the best cut across
// all structural variants. On a ring-free annotation it is bit-identical
// to the plain overload. Cut enumeration itself can run wave-parallel
// (LutMapperParams::num_threads / an external ThreadPool) with
// bit-identical results — see aig/cut.hpp.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/choice.hpp"
#include "aig/cut.hpp"
#include "aig/truth.hpp"

namespace emorphic {

class ThreadPool;

namespace check {
struct CheckProbe;  // corruption-seeding seam for validator tests
}  // namespace check

/// Mapping effort knobs shared by every map_to_luts overload.
struct LutMapperParams {
  /// LUT input cap K; must lie in [2, kMaxCutSize] — one cut truth table
  /// (a 64-bit word) is the whole LUT configuration, so the enumeration
  /// bound is the backend bound. map_to_luts throws std::invalid_argument
  /// outside this range, the same contract as map_to_cells.
  unsigned lut_size = 6;
  /// Priority cuts kept per node (plus the trivial cut).
  unsigned num_cuts = 8;
  /// Run the required-depth area-recovery pass after the depth-optimal
  /// pass.
  bool area_recovery = true;
  /// Worker threads for the wave-parallel cut enumeration; <= 1 is serial.
  /// Ignored when map_to_luts receives an external ThreadPool. Never
  /// changes the mapped network, only its construction speed.
  unsigned num_threads = 1;
};

/// One configured LUT: which nets feed it, and its truth table over them
/// (bit m = output value when input i carries bit i of m).
struct MappedLut {
  std::vector<std::uint32_t> inputs;  // net ids, [0, tt inputs)
  Tt tt = 0;                          // function over `inputs`
  std::uint32_t output = 0;           // output net id
};

/// A combinational k-LUT netlist: the FPGA-flavored counterpart of
/// MappedNetlist. Area is the LUT count, delay the LUT depth (both unit
/// cost, the standard FPGA QoR proxies).
class LutNetwork {
 public:
  /// Create a named net; returns its id.
  std::uint32_t add_net(std::string name);
  /// Append a LUT; returns its index in luts(). Inputs must be existing
  /// nets (the mapper emits in topological order).
  std::uint32_t add_lut(MappedLut lut);
  /// Declare `net` a primary input.
  void add_pi(std::uint32_t net) { pis_.push_back(net); }
  /// Declare `net` a primary output named `name`.
  void add_po(std::uint32_t net, std::string name);
  /// Tie `net` to a constant (no driving LUT).
  void set_const_net(std::uint32_t net, bool value);

  /// All LUTs, in emission order (a LUT's inputs are driven by earlier
  /// LUTs, PIs, or constant nets).
  const std::vector<MappedLut>& luts() const { return luts_; }
  /// Primary-input net ids, in interface order.
  const std::vector<std::uint32_t>& pis() const { return pis_; }
  /// Primary-output net ids, in interface order.
  const std::vector<std::uint32_t>& pos() const { return pos_; }
  /// Name of a net (as written to BLIF).
  const std::string& net_name(std::uint32_t net) const {
    return net_names_[net];
  }
  /// Number of nets (PIs, LUT outputs, and constants included).
  std::size_t num_nets() const { return net_names_.size(); }
  /// Constant-tied nets and their values, in declaration order.
  const std::vector<std::pair<std::uint32_t, bool>>& const_nets() const {
    return const_nets_;
  }
  /// Number of LUTs.
  std::size_t num_luts() const { return luts_.size(); }

  /// Total area under the unit-cost model: the LUT count.
  double area() const { return static_cast<double>(luts_.size()); }
  /// LUT depth: the maximum number of LUTs on any PI-to-PO path.
  std::uint32_t depth() const;
  /// Per-net LUT levels (PIs and constants at level 0).
  std::vector<std::uint32_t> levels() const;

  /// Rebuild an AIG with the same function: each LUT contributes its truth
  /// table as a factored SOP (the re-expression the stage-equivalence gate
  /// proves against the mapper's input).
  Aig to_aig() const;

  /// BLIF dump (LUTs as .names cover tables).
  std::string to_blif(const std::string& model_name) const;

 private:
  friend struct check::CheckProbe;

  std::vector<MappedLut> luts_;
  std::vector<std::string> net_names_;
  std::vector<std::uint32_t> pis_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::string> po_names_;
  std::vector<std::pair<std::uint32_t, bool>> const_nets_;
};

class LutWorkspace;

namespace detail {
/// The shared LUT-mapping kernel behind every map_to_luts overload: plain
/// when `choices` is null, choice-aware otherwise. Not a stable API — call
/// map_to_luts.
LutNetwork map_luts_with_choices(const Aig& aig, const AigChoices* choices,
                                 const LutMapperParams& params,
                                 LutWorkspace* workspace, ThreadPool* pool);
}  // namespace detail

/// Reusable scratch for repeated map_to_luts calls: the per-node DP state,
/// required depths, net ids, emission stack, and the cut arena. Not
/// thread-safe: one workspace per thread.
class LutWorkspace {
 public:
  LutWorkspace();
  ~LutWorkspace();
  LutWorkspace(LutWorkspace&&) noexcept;
  LutWorkspace& operator=(LutWorkspace&&) noexcept;

 private:
  friend LutNetwork detail::map_luts_with_choices(const Aig& aig,
                                                  const AigChoices* choices,
                                                  const LutMapperParams& params,
                                                  LutWorkspace* workspace,
                                                  ThreadPool* pool);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Map an AIG onto k-input LUTs. Throws std::invalid_argument unless
/// 2 <= params.lut_size <= kMaxCutSize.
LutNetwork map_to_luts(const Aig& aig, const LutMapperParams& params = {},
                       LutWorkspace* workspace = nullptr,
                       ThreadPool* pool = nullptr);

/// Choice-aware LUT mapping: select the best cut per node across every
/// structural variant recorded in the choice annotation. The annotation
/// must be finalized and fit the AIG. With no rings this is bit-identical
/// to the plain overload.
LutNetwork map_to_luts(const ChoiceAig& caig,
                       const LutMapperParams& params = {},
                       LutWorkspace* workspace = nullptr,
                       ThreadPool* pool = nullptr);

/// Convenience: {LUT count, LUT depth} of a mapped network.
struct LutQor {
  double area = 0.0;        // LUT count
  std::uint32_t depth = 0;  // LUT levels
};
LutQor lut_qor(const LutNetwork& network);

}  // namespace emorphic
