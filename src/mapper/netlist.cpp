#include "mapper/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "opt/sop.hpp"

namespace emorphic {

std::uint32_t MappedNetlist::add_net(std::string name) {
  net_names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(net_names_.size() - 1);
}

std::uint32_t MappedNetlist::add_gate(MappedGate gate) {
  gates_.push_back(std::move(gate));
  return static_cast<std::uint32_t>(gates_.size() - 1);
}

void MappedNetlist::add_po(std::uint32_t net, std::string name) {
  pos_.push_back(net);
  po_names_.push_back(std::move(name));
}

void MappedNetlist::set_const_net(std::uint32_t net, bool value) {
  const_nets_.emplace_back(net, value);
}

double MappedNetlist::area() const {
  double total = 0.0;
  for (const MappedGate& g : gates_) total += library_->cell(g.cell).area;
  return total;
}

std::vector<double> MappedNetlist::arrival_times() const {
  std::vector<double> arrival(net_names_.size(), 0.0);
  // Gates are appended in topological order by the mapper.
  for (const MappedGate& g : gates_) {
    double worst = 0.0;
    for (std::uint32_t in : g.inputs) worst = std::max(worst, arrival[in]);
    arrival[g.output] = worst + library_->cell(g.cell).delay;
  }
  return arrival;
}

double MappedNetlist::delay() const {
  auto arrival = arrival_times();
  double worst = 0.0;
  for (std::uint32_t po : pos_) worst = std::max(worst, arrival[po]);
  return worst;
}

Aig MappedNetlist::to_aig() const {
  Aig aig;
  std::vector<Lit> net_lit(net_names_.size(), kLitFalse);
  std::vector<bool> driven(net_names_.size(), false);
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    net_lit[pis_[i]] = make_lit(aig.add_pi(net_names_[pis_[i]]));
    driven[pis_[i]] = true;
  }
  for (const auto& [net, value] : const_nets_) {
    net_lit[net] = value ? kLitTrue : kLitFalse;
    driven[net] = true;
  }
  for (const MappedGate& g : gates_) {
    const Cell& cell = library_->cell(g.cell);
    std::vector<Lit> leaves(cell.num_inputs);
    for (unsigned j = 0; j < cell.num_inputs; ++j) {
      assert(driven[g.inputs[j]] && "netlist gates must be topological");
      leaves[j] = net_lit[g.inputs[j]];
    }
    net_lit[g.output] = build_sop(aig, cell.tt & tt_mask(cell.num_inputs),
                                  cell.num_inputs, leaves);
    driven[g.output] = true;
  }
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (!driven[pos_[i]]) {
      throw std::runtime_error("netlist PO net is undriven: " +
                               net_names_[pos_[i]]);
    }
    aig.add_po(net_lit[pos_[i]], po_names_[i]);
  }
  return aig.cleanup();
}

std::string MappedNetlist::to_blif(const std::string& model_name) const {
  std::ostringstream out;
  out << ".model " << model_name << "\n.inputs";
  for (std::uint32_t net : pis_) out << ' ' << net_names_[net];
  out << "\n.outputs";
  for (std::size_t i = 0; i < pos_.size(); ++i) out << ' ' << po_names_[i];
  out << "\n";
  for (const auto& [net, value] : const_nets_) {
    out << ".names " << net_names_[net] << "\n";
    if (value) out << "1\n";
  }
  for (const MappedGate& g : gates_) {
    const Cell& cell = library_->cell(g.cell);
    out << ".gate " << cell.name;
    for (unsigned j = 0; j < cell.num_inputs; ++j) {
      out << ' ' << cell.input_names[j] << '=' << net_names_[g.inputs[j]];
    }
    out << ' ' << cell.output_name << '=' << net_names_[g.output] << "\n";
  }
  // Alias PO names onto their driving nets.
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (net_names_[pos_[i]] != po_names_[i]) {
      out << ".names " << net_names_[pos_[i]] << ' ' << po_names_[i]
          << "\n1 1\n";
    }
  }
  out << ".end\n";
  return out.str();
}

}  // namespace emorphic
