#pragma once
// A mapped (gate-level) netlist: the output of technology mapping and the
// object whose area / delay Table II reports.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "mapper/cell_library.hpp"

namespace emorphic {

struct MappedGate {
  std::uint32_t cell = 0;                // index into the library
  std::vector<std::uint32_t> inputs;     // net ids, in cell pin order
  std::uint32_t output = 0;              // net id
};

/// A combinational mapped netlist over a cell library.
class MappedNetlist {
 public:
  explicit MappedNetlist(const CellLibrary* library) : library_(library) {}

  std::uint32_t add_net(std::string name);
  std::uint32_t add_gate(MappedGate gate);
  void add_pi(std::uint32_t net) { pis_.push_back(net); }
  void add_po(std::uint32_t net, std::string name);
  void set_const_net(std::uint32_t net, bool value);

  const CellLibrary& library() const { return *library_; }
  const std::vector<MappedGate>& gates() const { return gates_; }
  const std::vector<std::uint32_t>& pis() const { return pis_; }
  const std::vector<std::uint32_t>& pos() const { return pos_; }
  const std::string& net_name(std::uint32_t net) const { return net_names_[net]; }
  std::size_t num_nets() const { return net_names_.size(); }
  std::size_t num_gates() const { return gates_.size(); }

  /// Total cell area (µm²).
  double area() const;
  /// Static worst-case arrival at any PO under the fixed-delay model (ps).
  double delay() const;
  /// Per-net arrival times.
  std::vector<double> arrival_times() const;

  /// Rebuild an AIG with the same function (ABC's `st` applied to a mapped
  /// network): each gate contributes its function, built from its tt.
  Aig to_aig() const;

  /// BLIF dump (gates as .gate lines).
  std::string to_blif(const std::string& model_name) const;

 private:
  const CellLibrary* library_;
  std::vector<MappedGate> gates_;
  std::vector<std::string> net_names_;
  std::vector<std::uint32_t> pis_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::string> po_names_;
  std::vector<std::pair<std::uint32_t, bool>> const_nets_;
};

}  // namespace emorphic
