#pragma once
// A mapped (gate-level) netlist: the output of technology mapping and the
// object whose area / delay Table II reports.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "mapper/cell_library.hpp"

namespace emorphic {

/// One instantiated cell: which library cell, driven by which nets.
struct MappedGate {
  /// Library cell id (index into CellLibrary::cells()).
  std::uint32_t cell = 0;
  /// Input net ids, in cell pin order (pin j reads inputs[j]).
  std::vector<std::uint32_t> inputs;
  /// Output net id.
  std::uint32_t output = 0;
};

/// A combinational mapped netlist over a cell library.
class MappedNetlist {
 public:
  /// The library the gate ids refer to; must outlive the netlist.
  explicit MappedNetlist(const CellLibrary* library) : library_(library) {}

  /// Create a named net; returns its id.
  std::uint32_t add_net(std::string name);
  /// Append a gate; returns its index in gates().
  std::uint32_t add_gate(MappedGate gate);
  /// Declare `net` a primary input.
  void add_pi(std::uint32_t net) { pis_.push_back(net); }
  /// Declare `net` a primary output named `name`.
  void add_po(std::uint32_t net, std::string name);
  /// Tie `net` to a constant (no driving gate).
  void set_const_net(std::uint32_t net, bool value);

  /// The cell library gates are instantiated from.
  const CellLibrary& library() const { return *library_; }
  /// All gates, in emission order (a gate's inputs are driven by earlier
  /// gates, PIs, or constant nets).
  const std::vector<MappedGate>& gates() const { return gates_; }
  /// Primary-input net ids, in interface order.
  const std::vector<std::uint32_t>& pis() const { return pis_; }
  /// Primary-output net ids, in interface order.
  const std::vector<std::uint32_t>& pos() const { return pos_; }
  /// Name of a net (as written to BLIF).
  const std::string& net_name(std::uint32_t net) const { return net_names_[net]; }
  /// Number of nets (PIs, gate outputs, and constants included).
  std::size_t num_nets() const { return net_names_.size(); }
  /// Number of instantiated gates.
  std::size_t num_gates() const { return gates_.size(); }

  /// Total cell area (µm²).
  double area() const;
  /// Static worst-case arrival at any PO under the fixed-delay model (ps).
  double delay() const;
  /// Per-net arrival times.
  std::vector<double> arrival_times() const;

  /// Rebuild an AIG with the same function (ABC's `st` applied to a mapped
  /// network): each gate contributes its function, built from its tt.
  Aig to_aig() const;

  /// BLIF dump (gates as .gate lines).
  std::string to_blif(const std::string& model_name) const;

 private:
  const CellLibrary* library_;
  std::vector<MappedGate> gates_;
  std::vector<std::string> net_names_;
  std::vector<std::uint32_t> pis_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::string> po_names_;
  std::vector<std::pair<std::uint32_t, bool>> const_nets_;
};

}  // namespace emorphic
