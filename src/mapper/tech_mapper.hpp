#pragma once
// Standard-cell technology mapping with priority cuts [23]:
//
//  * k-feasible priority cuts per AIG node (cut.hpp),
//  * NPN Boolean matching against the library (matcher.hpp),
//  * phase-aware dynamic programming: every node carries the best
//    implementation of both its positive and its negative polarity,
//    bridged by inverters at cost — complemented AIG edges therefore map
//    without any pre-lowering,
//  * a delay-optimal first pass followed by required-time-aware area
//    recovery (area-flow selection off the critical path),
//  * netlist construction (netlist.hpp) for the chosen cover.
//
// This is both the paper's `map` step and the quality-prioritized cost
// oracle that scores candidate extractions during simulated annealing.

#include "aig/aig.hpp"
#include "mapper/matcher.hpp"
#include "mapper/netlist.hpp"

namespace emorphic {

struct MapperParams {
  unsigned cut_size = 4;   // cells have at most 4 pins
  unsigned num_cuts = 8;   // priority cuts per node
  bool area_recovery = true;
};

/// Map an AIG onto the library; returns the mapped netlist.
MappedNetlist map_to_cells(const Aig& aig, const CellLibrary& library,
                           const MapperParams& params = {});

/// Convenience: map and report {area, delay} only.
struct MappedQor {
  double area = 0.0;
  double delay = 0.0;
};
MappedQor map_qor(const Aig& aig, const CellLibrary& library,
                  const MapperParams& params = {});

}  // namespace emorphic
