#pragma once
// Standard-cell technology mapping with priority cuts [23]:
//
//  * k-feasible priority cuts per AIG node (cut.hpp),
//  * NPN Boolean matching against the library (matcher.hpp),
//  * phase-aware dynamic programming: every node carries the best
//    implementation of both its positive and its negative polarity,
//    bridged by inverters at cost — complemented AIG edges therefore map
//    without any pre-lowering,
//  * a delay-optimal first pass followed by required-time-aware area
//    recovery (area-flow selection off the critical path),
//  * netlist construction (netlist.hpp) for the chosen cover.
//
// The ChoiceAig overload maps *choice-aware* (docs/mapping-internals.md):
// cut enumeration merges the cut sets of every choice-ring member into its
// representative (aig/choice.hpp, aig/cut.hpp), and the same DP then picks
// the best (arrival, area-flow) match across all structural variants of a
// signal — the e-graph's equivalence classes, not just the one extraction
// that was committed to. On an annotation without rings the overload
// reproduces the plain mapper exactly.
//
// This is both the paper's `map` step and the quality-prioritized cost
// oracle that scores candidate extractions during simulated annealing. For
// that hot path, pass a shared `Matcher` (so the NPN canonization tables and
// the match cache survive across evaluations) and a per-thread
// `MapperWorkspace` (so the DP state, required-time, and cut arenas stop
// churning the allocator); the library-only overload keeps the one-shot
// convenience API.

#include <memory>

#include "aig/aig.hpp"
#include "aig/choice.hpp"
#include "mapper/matcher.hpp"
#include "mapper/netlist.hpp"

namespace emorphic {

/// Mapping effort knobs shared by every map_to_cells overload.
struct MapperParams {
  /// Cut width K for matching; must lie in [2, kMaxCellPins] — the NPN
  /// matcher cannot implement wider cuts with a single cell (see
  /// cell_library.hpp for why this bound is 4, not kMaxCutSize).
  unsigned cut_size = 4;
  /// Priority cuts kept per node (plus the trivial cut).
  unsigned num_cuts = 8;
  /// Run the required-time-aware area-recovery pass after the
  /// delay-optimal pass.
  bool area_recovery = true;
};

class MapperWorkspace;

namespace detail {
/// The shared mapping kernel behind every map_to_cells overload: plain when
/// `choices` is null, choice-aware otherwise. Not a stable API — call
/// map_to_cells.
MappedNetlist map_with_choices(const Aig& aig, const AigChoices* choices,
                               const Matcher& matcher,
                               const MapperParams& params,
                               MapperWorkspace* workspace);
}  // namespace detail

/// Reusable scratch for repeated map_to_cells calls: the per-node DP state,
/// required times, net ids, emission stack, and the cut arena. Buffers are
/// resized (keeping capacity) per call, so mapping many same-scale candidate
/// AIGs performs no steady-state allocation. Not thread-safe: one workspace
/// per thread.
class MapperWorkspace {
 public:
  MapperWorkspace();
  ~MapperWorkspace();
  MapperWorkspace(MapperWorkspace&&) noexcept;
  MapperWorkspace& operator=(MapperWorkspace&&) noexcept;

 private:
  friend MappedNetlist detail::map_with_choices(const Aig& aig,
                                                const AigChoices* choices,
                                                const Matcher& matcher,
                                                const MapperParams& params,
                                                MapperWorkspace* workspace);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Map an AIG onto the library; returns the mapped netlist. Builds a fresh
/// Matcher per call — prefer the Matcher overload on hot paths.
MappedNetlist map_to_cells(const Aig& aig, const CellLibrary& library,
                           const MapperParams& params = {});

/// Map with a shared (thread-safe) matcher and an optional reusable
/// workspace. This is the SA evaluation hot path.
MappedNetlist map_to_cells(const Aig& aig, const Matcher& matcher,
                           const MapperParams& params = {},
                           MapperWorkspace* workspace = nullptr);

/// Choice-aware mapping: select the best match per node across every
/// structural variant recorded in the choice annotation (see the header
/// comment). The annotation must be finalized and fit the AIG. With no
/// rings this is bit-identical to the plain overload.
MappedNetlist map_to_cells(const ChoiceAig& caig, const Matcher& matcher,
                           const MapperParams& params = {},
                           MapperWorkspace* workspace = nullptr);

/// Convenience: map and report {area, delay} only.
struct MappedQor {
  double area = 0.0;
  double delay = 0.0;
};
MappedQor map_qor(const Aig& aig, const CellLibrary& library,
                  const MapperParams& params = {});
MappedQor map_qor(const Aig& aig, const Matcher& matcher,
                  const MapperParams& params = {},
                  MapperWorkspace* workspace = nullptr);

}  // namespace emorphic
