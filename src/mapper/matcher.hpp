#pragma once
// Boolean matching of cut functions against library cells via NPN
// canonicalization. Preprocessing canonicalizes every cell once; at mapping
// time each cut's canonical form is computed (with memoization — cut
// functions repeat heavily) and the stored transforms are composed to give,
// for every matching cell, the pin-to-leaf assignment, which leaf phases
// are needed, and whether the gate output implements the complement.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "aig/truth.hpp"
#include "mapper/cell_library.hpp"

namespace emorphic {

/// A concrete way to implement a cut function with a library cell.
struct CellMatch {
  std::uint32_t cell = 0;
  /// pin_leaf[j]: index (into the cut's leaves) feeding cell pin j.
  std::array<std::uint8_t, 4> pin_leaf{{0, 0, 0, 0}};
  /// pin_compl bit j: pin j needs the *complement* of that leaf.
  std::uint8_t pin_compl = 0;
  /// The gate computes the complement of the cut function.
  bool output_compl = false;
};

class Matcher {
 public:
  explicit Matcher(const CellLibrary& library);

  /// All cell implementations of `tt` (a function of `num_leaves` <= 4
  /// variables, padded into the 4-variable domain).
  const std::vector<CellMatch>& match(Tt tt, unsigned num_leaves);

  const CellLibrary& library() const { return library_; }

 private:
  struct CanonEntry {
    Tt canon;
    NpnTransform transform;
  };
  CanonEntry canon_of(Tt tt);

  const CellLibrary& library_;
  /// canonical tt -> matches expressed against the canonical form
  struct CellEntry {
    std::uint32_t cell;
    NpnTransform transform;  // canon == npn_apply(cell_tt, transform)
  };
  std::unordered_map<Tt, std::vector<CellEntry>> canon_cells_;
  std::unordered_map<Tt, CanonEntry> canon_cache_;
  std::unordered_map<Tt, std::vector<CellMatch>> match_cache_;
  const std::vector<CellMatch> empty_;
};

}  // namespace emorphic
