#pragma once
// Boolean matching of cut functions against library cells via NPN
// canonicalization. Preprocessing canonicalizes every cell once; at mapping
// time each cut's canonical form is computed (with memoization — cut
// functions repeat heavily) and the stored transforms are composed to give,
// for every matching cell, the pin-to-leaf assignment, which leaf phases
// are needed, and whether the gate output implements the complement.
//
// One Matcher instance is meant to be shared: the precomputed cell tables
// are immutable after construction and the match cache is striped behind
// per-shard mutexes, so a single matcher serves every SA chain and every
// run_batch worker concurrently instead of being rebuilt per evaluation.
// Cache entries are keyed by (function, leaf count) — match validity
// depends on the leaf count (a cell pin must not read a padding variable),
// so the same padded table queried with different cut sizes yields
// different match lists.

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "aig/truth.hpp"
#include "mapper/cell_library.hpp"

namespace emorphic {

/// A concrete way to implement a cut function with a library cell.
struct CellMatch {
  /// Library cell id (index into CellLibrary::cells()).
  std::uint32_t cell = 0;
  /// pin_leaf[j]: index (into the cut's leaves) feeding cell pin j.
  std::array<std::uint8_t, kMaxCellPins> pin_leaf{{0, 0, 0, 0}};
  /// pin_compl bit j: pin j needs the *complement* of that leaf.
  std::uint8_t pin_compl = 0;
  /// The gate computes the complement of the cut function.
  bool output_compl = false;
};

class Matcher {
 public:
  explicit Matcher(const CellLibrary& library);

  Matcher(const Matcher&) = delete;
  Matcher& operator=(const Matcher&) = delete;

  /// All cell implementations of `tt` (a function of `num_leaves` <=
  /// kMaxCellPins variables, padded into the 4-variable NPN domain).
  /// Thread-safe; the returned reference stays valid for the lifetime of
  /// the matcher.
  const std::vector<CellMatch>& match(Tt tt, unsigned num_leaves) const;

  const CellLibrary& library() const { return library_; }

  /// Number of distinct (function, leaf count) pairs matched so far.
  std::size_t cache_size() const;

 private:
  /// canonical tt -> matches expressed against the canonical form
  struct CellEntry {
    std::uint32_t cell;
    NpnTransform transform;  // canon == npn_apply(cell_tt, transform)
  };

  std::vector<CellMatch> compute_matches(Tt tt, unsigned num_leaves) const;

  const CellLibrary& library_;
  /// Immutable after construction; safe for lock-free concurrent reads.
  std::unordered_map<Tt, std::vector<CellEntry>> canon_cells_;

  // Striped match cache. Values are heap-allocated and never mutated after
  // insertion, so returned references survive rehashing and concurrent
  // inserts into the same shard.
  static constexpr std::size_t kNumShards = 16;
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint32_t,
                       std::unique_ptr<const std::vector<CellMatch>>>
        entries;
  };
  mutable std::array<Shard, kNumShards> shards_;
};

}  // namespace emorphic
