#pragma once
// Parser for a genlib-style cell-library description:
//
//   GATE <name> <area> <output>=<expr>;  PIN * <delay>
//
// where <expr> uses ! (NOT), * or & (AND), + or | (OR), ^ (XOR),
// parentheses, and CONST0/CONST1. Pin order is the order of first
// appearance in the expression, and doubles as the truth-table variable
// order. At most 4 inputs per gate (the Boolean matcher's NPN domain).

#include <string>

#include "mapper/cell_library.hpp"

namespace emorphic {

/// Parse a genlib document; throws std::runtime_error on malformed input.
CellLibrary parse_genlib(const std::string& text);

/// The embedded ASAP7-like genlib source text (also usable as an example).
const char* asap7_like_genlib_text();

}  // namespace emorphic
