#include "opt/resyn.hpp"

#include "opt/balance.hpp"
#include "opt/refactor.hpp"

namespace emorphic {

Aig strash(const Aig& aig) { return aig.cleanup(); }

Aig resyn(const Aig& aig) { return balance(refactor(balance(aig))); }

Aig dch_substitute(const Aig& aig) {
  return balance(refactor(balance(refactor(aig))));
}

}  // namespace emorphic
