#include "opt/refactor.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "aig/cut.hpp"
#include "opt/sop.hpp"

namespace emorphic {

namespace {

/// Number of AND nodes in the cone of `v` above the cut leaves that would
/// actually disappear if `v` were re-expressed: the root plus interior
/// nodes used *only* inside this cone (fanout 1). Shared interior nodes
/// survive for their other users, so counting them would overestimate the
/// benefit and cause net growth.
unsigned exclusive_cone_size(const Aig& aig,
                             const std::vector<std::uint32_t>& fanout, Var v,
                             const Cut& cut) {
  std::vector<Var> stack{v};
  unsigned count = 0;
  auto is_leaf = [&](Var u) {
    for (unsigned i = 0; i < cut.size; ++i) {
      if (cut.leaves[i] == u) return true;
    }
    return false;
  };
  std::vector<bool> seen(aig.num_nodes(), false);
  while (!stack.empty()) {
    Var u = stack.back();
    stack.pop_back();
    if (seen[u] || !aig.is_and(u) || (u != v && is_leaf(u))) continue;
    if (u != v && fanout[u] > 1) continue;  // shared: survives anyway
    seen[u] = true;
    ++count;
    stack.push_back(lit_var(aig.fanin0(u)));
    stack.push_back(lit_var(aig.fanin1(u)));
  }
  return count;
}

/// Estimated AND-node count of a factored form: each m-ary gate costs m-1.
unsigned factored_cost(const FactoredForm& form) {
  unsigned cost = 0;
  for (const auto& node : form.nodes) {
    if (node.kind != FactoredForm::Kind::kLiteral) {
      cost += static_cast<unsigned>(node.children.size()) - 1;
    }
  }
  return cost;
}

struct Plan {
  bool refactored = false;
  Cut cut;
  FactoredForm form;
  bool output_compl = false;  // the factored form implements the complement
};

}  // namespace

Aig refactor(const Aig& aig, const RefactorParams& params) {
  CutParams cut_params;
  cut_params.cut_size = params.cut_size;
  cut_params.num_cuts = params.num_cuts;
  CutManager cuts(aig, cut_params);
  auto fanout = aig.fanout_counts();

  // Decide, per node, whether a factored replacement is worthwhile. Shared
  // interior nodes still get built on demand, so the benefit estimate
  // compares against the exclusive cone only (fanout-1 interior nodes).
  std::vector<Plan> plans(aig.num_nodes());
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    const auto& node_cuts = cuts.cuts(v);
    // Larger cuts first: they swallow more of the cone and give the
    // factoring more room (priority cuts are sorted small-to-large).
    for (auto it = node_cuts.rbegin(); it != node_cuts.rend(); ++it) {
      const Cut& cut = *it;
      if (cut.is_trivial(v) || cut.size < params.min_cut_size) continue;
      unsigned cone = exclusive_cone_size(aig, fanout, v, cut);
      if (cone < 2) continue;

      // Factor the cheaper polarity; a complemented output is free in AIGs.
      Sop sop_pos = isop(cut.tt, cut.size);
      Sop sop_neg = isop(tt_not(cut.tt, cut.size), cut.size);
      FactoredForm form_pos = factor(sop_pos);
      FactoredForm form_neg = factor(sop_neg);
      bool use_neg = factored_cost(form_neg) < factored_cost(form_pos);
      const FactoredForm& form = use_neg ? form_neg : form_pos;

      if (factored_cost(form) < cone) {
        plans[v].refactored = true;
        plans[v].cut = cut;
        plans[v].form = form;
        plans[v].output_compl = use_neg;
        break;  // first profitable cut wins
      }
    }
  }

  // Lazy rebuild from the POs: nodes are only constructed when referenced,
  // so cones swallowed by a factored replacement cost nothing.
  Aig out = Aig::like(aig);
  std::vector<Lit> map(aig.num_nodes(), kLitFalse);
  std::vector<bool> built(aig.num_nodes(), false);
  built[0] = true;
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    map[aig.pis()[i]] = make_lit(out.pis()[i]);
    built[aig.pis()[i]] = true;
  }

  // Iterative DFS (explicit stack) to avoid recursion depth limits.
  auto build = [&](Var root) {
    if (built[root]) return;
    std::vector<Var> stack{root};
    while (!stack.empty()) {
      Var v = stack.back();
      if (built[v]) {
        stack.pop_back();
        continue;
      }
      const Plan& plan = plans[v];
      bool pending = false;
      if (plan.refactored) {
        for (unsigned i = 0; i < plan.cut.size; ++i) {
          if (!built[plan.cut.leaves[i]]) {
            stack.push_back(plan.cut.leaves[i]);
            pending = true;
          }
        }
      } else {
        for (Lit f : {aig.fanin0(v), aig.fanin1(v)}) {
          if (!built[lit_var(f)]) {
            stack.push_back(lit_var(f));
            pending = true;
          }
        }
      }
      if (pending) continue;

      if (plan.refactored) {
        std::vector<Lit> leaves(plan.cut.size);
        std::vector<double> arrivals(plan.cut.size, 0.0);
        for (unsigned i = 0; i < plan.cut.size; ++i) {
          leaves[i] = map[plan.cut.leaves[i]];
        }
        Lit lit = build_factored(out, plan.form, leaves, arrivals);
        map[v] = lit_notcond(lit, plan.output_compl);
      } else {
        Lit a = lit_notcond(map[lit_var(aig.fanin0(v))],
                            lit_is_compl(aig.fanin0(v)));
        Lit b = lit_notcond(map[lit_var(aig.fanin1(v))],
                            lit_is_compl(aig.fanin1(v)));
        map[v] = out.make_and(a, b);
      }
      built[v] = true;
      stack.pop_back();
    }
  };

  for (Lit po : aig.pos()) build(lit_var(po));
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    Lit po = aig.po(i);
    out.set_po(i, lit_notcond(map[lit_var(po)], lit_is_compl(po)));
  }
  Aig cleaned = out.cleanup();
  // Refactoring is greedy; only keep the result when it actually helped.
  return cleaned.num_ands() <= aig.num_ands() ? cleaned : aig;
}

}  // namespace emorphic
