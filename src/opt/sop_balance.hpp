#pragma once
// SOP balancing (ABC's `if -g -K 6 -C 8`, Mishchenko et al. [22]): the
// delay-optimization workhorse of the paper's baseline flow.
//
// The circuit is mapped into K-input LUTs with priority cuts, each selected
// LUT's function is converted to an irredundant SOP, and the SOP is rebuilt
// as a delay-balanced factored AND/OR tree that pairs the earliest-arriving
// inputs first. The result is an AIG with (near-)minimum depth under the
// unit-delay model.

#include "aig/aig.hpp"
#include "aig/cut.hpp"

namespace emorphic {

struct SopBalanceParams {
  unsigned cut_size = 6;  // K
  unsigned num_cuts = 8;  // C
};

/// One round of SOP balancing; returns the rebuilt AIG.
Aig sop_balance(const Aig& aig, const SopBalanceParams& params = {});

}  // namespace emorphic
