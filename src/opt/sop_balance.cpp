#include "opt/sop_balance.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "opt/sop.hpp"

namespace emorphic {

namespace {

struct NodeChoice {
  std::uint32_t cut_index = 0;
  double arrival = 0.0;
};

}  // namespace

Aig sop_balance(const Aig& aig, const SopBalanceParams& params) {
  CutParams cut_params;
  cut_params.cut_size = params.cut_size;
  cut_params.num_cuts = params.num_cuts;
  CutManager cuts(aig, cut_params);

  // Delay-oriented cut selection under the unit LUT-delay model.
  std::vector<NodeChoice> choice(aig.num_nodes());
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    double best_arrival = 0.0;
    std::uint32_t best_cut = 0;
    unsigned best_size = 0;
    bool found = false;
    const auto& node_cuts = cuts.cuts(v);
    for (std::uint32_t ci = 0; ci < node_cuts.size(); ++ci) {
      const Cut& cut = node_cuts[ci];
      if (cut.is_trivial(v)) continue;
      double arrival = 0.0;
      for (unsigned i = 0; i < cut.size; ++i) {
        arrival = std::max(arrival, choice[cut.leaves[i]].arrival);
      }
      arrival += 1.0;
      if (!found || arrival < best_arrival ||
          (arrival == best_arrival && cut.size < best_size)) {
        found = true;
        best_arrival = arrival;
        best_cut = ci;
        best_size = cut.size;
      }
    }
    assert(found && "every AND node has at least its fanin cut");
    choice[v] = {best_cut, best_arrival};
  }

  // Cover selection from the POs.
  std::vector<bool> required(aig.num_nodes(), false);
  std::vector<Var> stack;
  for (Lit po : aig.pos()) {
    Var v = lit_var(po);
    if (aig.is_and(v) && !required[v]) {
      required[v] = true;
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    Var v = stack.back();
    stack.pop_back();
    const Cut& cut = cuts.cuts(v)[choice[v].cut_index];
    for (unsigned i = 0; i < cut.size; ++i) {
      Var leaf = cut.leaves[i];
      if (aig.is_and(leaf) && !required[leaf]) {
        required[leaf] = true;
        stack.push_back(leaf);
      }
    }
  }

  // Rebuild: each required LUT becomes a balanced factored SOP over its
  // leaves, with real arrival times (new-AIG levels) steering the pairing.
  Aig out = Aig::like(aig);
  std::vector<Lit> map(aig.num_nodes(), kLitFalse);
  std::vector<double> new_arrival(aig.num_nodes(), 0.0);
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    map[aig.pis()[i]] = make_lit(out.pis()[i]);
  }

  std::vector<std::uint32_t> out_levels;
  auto level_of = [&](Lit lit) -> double {
    // `out` only grows; recompute lazily when the cached vector is stale.
    if (lit_var(lit) >= out_levels.size()) {
      std::size_t old = out_levels.size();
      out_levels.resize(out.num_nodes(), 0);
      for (Var v = static_cast<Var>(old); v < out.num_nodes(); ++v) {
        if (out.is_and(v)) {
          out_levels[v] = 1 + std::max(out_levels[lit_var(out.fanin0(v))],
                                       out_levels[lit_var(out.fanin1(v))]);
        }
      }
    }
    return static_cast<double>(out_levels[lit_var(lit)]);
  };

  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v) || !required[v]) continue;
    const Cut& cut = cuts.cuts(v)[choice[v].cut_index];
    std::vector<Lit> leaves(cut.size);
    std::vector<double> arrivals(cut.size);
    for (unsigned i = 0; i < cut.size; ++i) {
      leaves[i] = map[cut.leaves[i]];
      arrivals[i] = level_of(leaves[i]);
    }
    Sop sop = isop(cut.tt, cut.size);
    FactoredForm form = factor(sop);
    map[v] = build_factored(out, form, leaves, arrivals);
    new_arrival[v] = level_of(map[v]);
  }

  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    Lit po = aig.po(i);
    out.set_po(i, lit_notcond(map[lit_var(po)], lit_is_compl(po)));
  }
  return out.cleanup();
}

}  // namespace emorphic
