#include "opt/sop.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace emorphic {

unsigned Cube::num_lits() const {
  return static_cast<unsigned>(std::popcount(pos) + std::popcount(neg));
}

unsigned sop_num_lits(const Sop& sop) {
  unsigned total = 0;
  for (const Cube& c : sop) total += c.num_lits();
  return total;
}

Tt sop_to_tt(const Sop& sop, unsigned n) {
  Tt result = 0;
  for (const Cube& c : sop) {
    Tt cube_tt = tt_mask(n);
    for (unsigned i = 0; i < n; ++i) {
      if (c.pos & (1u << i)) cube_tt &= tt_var(i, n);
      if (c.neg & (1u << i)) cube_tt &= tt_not(tt_var(i, n), n);
    }
    result |= cube_tt;
  }
  return result & tt_mask(n);
}

std::string sop_to_string(const Sop& sop, unsigned n) {
  if (sop.empty()) return "0";
  std::string out;
  for (std::size_t k = 0; k < sop.size(); ++k) {
    if (k > 0) out += " + ";
    const Cube& c = sop[k];
    if (c.num_lits() == 0) {
      out += "1";
      continue;
    }
    for (unsigned i = 0; i < n; ++i) {
      if (c.pos & (1u << i)) out += static_cast<char>('a' + i);
      if (c.neg & (1u << i)) {
        out += static_cast<char>('a' + i);
        out += '\'';
      }
    }
  }
  return out;
}

namespace {

/// Minato-Morreale: an irredundant SOP S with L <= tt(S) <= U.
/// `n` is the number of remaining variables to consider (split on n-1).
Sop isop_rec(Tt lower, Tt upper, unsigned n, unsigned domain) {
  assert((lower & ~upper) == 0);
  if (lower == 0) return {};
  if (upper == tt_mask(domain)) return {Cube{}};  // the tautology cube

  // Find the highest variable either bound depends on.
  unsigned var = n;
  while (var > 0 && !tt_depends_on(lower, var - 1, domain) &&
         !tt_depends_on(upper, var - 1, domain)) {
    --var;
  }
  assert(var > 0 && "non-constant function must depend on something");
  unsigned x = var - 1;

  Tt l0 = tt_cofactor0(lower, x, domain), l1 = tt_cofactor1(lower, x, domain);
  Tt u0 = tt_cofactor0(upper, x, domain), u1 = tt_cofactor1(upper, x, domain);

  // Cubes that must contain x' / x.
  Sop s0 = isop_rec(l0 & ~u1 & tt_mask(domain), u0, x, domain);
  Sop s1 = isop_rec(l1 & ~u0 & tt_mask(domain), u1, x, domain);

  Tt t0 = sop_to_tt(s0, domain);
  Tt t1 = sop_to_tt(s1, domain);
  // What remains uncovered may be covered by cubes independent of x.
  Tt l_rest = ((l0 & ~t0) | (l1 & ~t1)) & tt_mask(domain);
  Sop s2 = isop_rec(l_rest, u0 & u1 & tt_mask(domain), x, domain);

  Sop result;
  result.reserve(s0.size() + s1.size() + s2.size());
  for (Cube c : s0) {
    c.neg |= static_cast<std::uint8_t>(1u << x);
    result.push_back(c);
  }
  for (Cube c : s1) {
    c.pos |= static_cast<std::uint8_t>(1u << x);
    result.push_back(c);
  }
  for (const Cube& c : s2) result.push_back(c);
  return result;
}

}  // namespace

Sop isop(Tt t, unsigned n) {
  t &= tt_mask(n);
  return isop_rec(t, t, n, n);
}

// ---------------------------------------------------------------------------
// Factoring
// ---------------------------------------------------------------------------

unsigned FactoredForm::num_lits() const {
  unsigned count = 0;
  for (const Node& node : nodes) {
    if (node.kind == Kind::kLiteral) ++count;
  }
  return count;
}

namespace {

std::uint32_t add_literal(FactoredForm& form, unsigned var, bool complemented) {
  FactoredForm::Node node;
  node.kind = FactoredForm::Kind::kLiteral;
  node.var = static_cast<std::uint8_t>(var);
  node.complemented = complemented;
  form.nodes.push_back(node);
  return static_cast<std::uint32_t>(form.nodes.size() - 1);
}

std::uint32_t add_gate(FactoredForm& form, FactoredForm::Kind kind,
                       std::vector<std::uint32_t> children) {
  if (children.size() == 1) return children[0];
  FactoredForm::Node node;
  node.kind = kind;
  node.children = std::move(children);
  form.nodes.push_back(node);
  return static_cast<std::uint32_t>(form.nodes.size() - 1);
}

std::uint32_t cube_to_form(FactoredForm& form, const Cube& cube) {
  std::vector<std::uint32_t> lits;
  for (unsigned i = 0; i < 6; ++i) {
    if (cube.pos & (1u << i)) lits.push_back(add_literal(form, i, false));
    if (cube.neg & (1u << i)) lits.push_back(add_literal(form, i, true));
  }
  assert(!lits.empty());
  return add_gate(form, FactoredForm::Kind::kAnd, std::move(lits));
}

std::uint32_t factor_rec(FactoredForm& form, const Sop& sop) {
  assert(!sop.empty());
  if (sop.size() == 1) return cube_to_form(form, sop[0]);

  // Most frequent literal across cubes.
  unsigned best_var = 0;
  bool best_neg = false;
  unsigned best_count = 0;
  for (unsigned i = 0; i < 6; ++i) {
    unsigned count_pos = 0, count_neg = 0;
    for (const Cube& c : sop) {
      if (c.pos & (1u << i)) ++count_pos;
      if (c.neg & (1u << i)) ++count_neg;
    }
    if (count_pos > best_count) {
      best_count = count_pos;
      best_var = i;
      best_neg = false;
    }
    if (count_neg > best_count) {
      best_count = count_neg;
      best_var = i;
      best_neg = true;
    }
  }

  if (best_count < 2) {
    // No common factor: a flat OR of cube ANDs.
    std::vector<std::uint32_t> terms;
    terms.reserve(sop.size());
    for (const Cube& c : sop) terms.push_back(cube_to_form(form, c));
    return add_gate(form, FactoredForm::Kind::kOr, std::move(terms));
  }

  std::uint8_t bit = static_cast<std::uint8_t>(1u << best_var);
  Sop quotient, remainder;
  for (Cube c : sop) {
    bool in = best_neg ? (c.neg & bit) != 0 : (c.pos & bit) != 0;
    if (in) {
      if (best_neg) {
        c.neg = static_cast<std::uint8_t>(c.neg & ~bit);
      } else {
        c.pos = static_cast<std::uint8_t>(c.pos & ~bit);
      }
      if (c.num_lits() == 0) {
        // The divisor literal alone is a cube: x + x*Q + R == x + R.
        // Treat as remainder containing the bare literal.
        Cube bare;
        if (best_neg) {
          bare.neg = bit;
        } else {
          bare.pos = bit;
        }
        remainder.push_back(bare);
        continue;
      }
      quotient.push_back(c);
    } else {
      remainder.push_back(c);
    }
  }

  std::uint32_t lit_node = add_literal(form, best_var, best_neg);
  std::uint32_t result;
  if (quotient.empty()) {
    result = lit_node;
  } else {
    std::uint32_t q = factor_rec(form, quotient);
    result = add_gate(form, FactoredForm::Kind::kAnd, {lit_node, q});
  }
  if (!remainder.empty()) {
    std::uint32_t r = factor_rec(form, remainder);
    result = add_gate(form, FactoredForm::Kind::kOr, {result, r});
  }
  return result;
}

}  // namespace

FactoredForm factor(const Sop& sop) {
  FactoredForm form;
  if (sop.empty()) {
    form.const_value = false;
    return form;
  }
  if (sop.size() == 1 && sop[0].num_lits() == 0) {
    form.const_value = true;
    return form;
  }
  form.root = factor_rec(form, sop);
  return form;
}

Lit build_factored(Aig& aig, const FactoredForm& form,
                   const std::vector<Lit>& leaves,
                   const std::vector<double>& arrival) {
  if (form.nodes.empty()) return form.const_value ? kLitTrue : kLitFalse;
  assert(arrival.size() == leaves.size());

  struct Built {
    Lit lit;
    double arrival;
  };
  std::vector<Built> built(form.nodes.size());

  // Nodes were appended children-first by construction, so index order is
  // a valid topological order.
  for (std::uint32_t i = 0; i < form.nodes.size(); ++i) {
    const FactoredForm::Node& node = form.nodes[i];
    if (node.kind == FactoredForm::Kind::kLiteral) {
      Lit leaf = leaves[node.var];
      built[i] = {lit_notcond(leaf, node.complemented), arrival[node.var]};
      continue;
    }
    // Arrival-aware balanced reduction: combine earliest-arriving first.
    std::vector<Built> operands;
    operands.reserve(node.children.size());
    for (std::uint32_t c : node.children) operands.push_back(built[c]);
    std::sort(operands.begin(), operands.end(),
              [](const Built& a, const Built& b) { return a.arrival > b.arrival; });
    bool is_and = node.kind == FactoredForm::Kind::kAnd;
    while (operands.size() > 1) {
      Built x = operands.back();
      operands.pop_back();
      Built y = operands.back();
      operands.pop_back();
      Built z;
      z.lit = is_and ? aig.make_and(x.lit, y.lit) : aig.make_or(x.lit, y.lit);
      z.arrival = std::max(x.arrival, y.arrival) + 1.0;
      auto it = std::lower_bound(
          operands.begin(), operands.end(), z,
          [](const Built& a, const Built& b) { return a.arrival > b.arrival; });
      operands.insert(it, z);
    }
    built[i] = operands[0];
  }
  return built[form.root].lit;
}

Lit build_sop(Aig& aig, Tt t, unsigned n, const std::vector<Lit>& leaves) {
  Sop sop = isop(t, n);
  FactoredForm form = factor(sop);
  std::vector<double> arrival(leaves.size(), 0.0);
  return build_factored(aig, form, leaves, arrival);
}

}  // namespace emorphic
