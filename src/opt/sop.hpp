#pragma once
// Sum-of-products machinery:
//  * irredundant SOP computation from a truth table (Minato-Morreale ISOP),
//  * algebraic factoring of an SOP into a multi-level form,
//  * arrival-aware construction of the factored form as AIG nodes —
//    the core primitive behind both `refactor` and SOP balancing [22].

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/truth.hpp"

namespace emorphic {

/// One product term over up to 6 variables.
struct Cube {
  std::uint8_t pos = 0;  // bit i: variable i appears positively
  std::uint8_t neg = 0;  // bit i: variable i appears negatively

  unsigned num_lits() const;
  bool operator==(const Cube& other) const = default;
};

using Sop = std::vector<Cube>;

/// Minato-Morreale irredundant SOP of `t` (n inputs). The empty SOP is
/// constant 0; a single empty cube is constant 1.
Sop isop(Tt t, unsigned n);

/// Evaluate an SOP back to a truth table (for verification).
Tt sop_to_tt(const Sop& sop, unsigned n);

/// Total literal count (the classic SOP size metric).
unsigned sop_num_lits(const Sop& sop);

/// Human-readable form, e.g. "ab' + c".
std::string sop_to_string(const Sop& sop, unsigned n);

/// A factored form: a tree of AND/OR over literals.
struct FactoredForm {
  enum class Kind : std::uint8_t { kLiteral, kAnd, kOr };
  struct Node {
    Kind kind = Kind::kLiteral;
    std::uint8_t var = 0;       // for literals
    bool complemented = false;  // for literals
    std::vector<std::uint32_t> children;
  };
  std::vector<Node> nodes;
  std::uint32_t root = 0;
  bool const_value = false;  // when nodes is empty: constant 0/1

  unsigned num_lits() const;
};

/// Algebraic factoring (quick_factor-style): repeatedly divide by the most
/// frequent literal. Produces a multi-level form with fewer literals than
/// the flat SOP whenever common factors exist.
FactoredForm factor(const Sop& sop);

/// Build a factored form on top of existing AIG literals, pairing the
/// earliest-arriving operands first ("SOP balancing"): `arrival[i]` is the
/// arrival time of `leaves[i]`. Returns the output literal.
Lit build_factored(Aig& aig, const FactoredForm& form,
                   const std::vector<Lit>& leaves,
                   const std::vector<double>& arrival);

/// Convenience: ISOP -> factor -> build, with unit arrivals.
Lit build_sop(Aig& aig, Tt t, unsigned n, const std::vector<Lit>& leaves);

}  // namespace emorphic
