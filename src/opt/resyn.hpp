#pragma once
// Technology-independent resynthesis scripts composed from the passes in
// this directory, mirroring the ABC operators the paper's flow invokes:
//
//   st   -> strash()          structural hashing + dead-node removal
//   b    -> balance()         delay-oriented AND-tree balancing
//   rf   -> refactor()        cut-based size recovery
//   dch  -> dch_substitute()  see below
//
// `dch` in ABC computes *structural choices* by running rewriting scripts
// and recording intermediate networks for choice-aware mapping. Choices are
// exactly the mechanism E-morphic's e-graph replaces (and generalizes), so
// this reproduction substitutes a strong resynthesis script in its place:
// the baseline stays a competitive delay-oriented flow, and the relative
// comparison of Table II is preserved (see DESIGN.md, Substitutions).

#include "aig/aig.hpp"

namespace emorphic {

/// ABC `st`: re-strash and drop dangling nodes.
Aig strash(const Aig& aig);

/// A light resynthesis script: balance; refactor; balance.
Aig resyn(const Aig& aig);

/// The `dch` substitute used by the flows: refactor; balance; refactor;
/// balance. Strictly function-preserving, size-non-increasing.
Aig dch_substitute(const Aig& aig);

}  // namespace emorphic
