#pragma once
// Cut-based refactoring (ABC's `refactor`): for each node, derive the
// irredundant SOP of a large cut, factor it algebraically, and adopt the
// factored form when it needs fewer AIG nodes than the existing cone.
// This is the size-recovery half of the technology-independent script and
// one ingredient of our `dch` substitute.

#include "aig/aig.hpp"

namespace emorphic {

struct RefactorParams {
  unsigned cut_size = 6;
  unsigned num_cuts = 6;
  /// Only consider replacement when the cut has at least this many leaves.
  unsigned min_cut_size = 3;
};

/// One refactoring pass over the network; returns the rebuilt AIG.
Aig refactor(const Aig& aig, const RefactorParams& params = {});

}  // namespace emorphic
