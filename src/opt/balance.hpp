#pragma once
// AND-tree balancing (ABC's `balance`): rebuilds every maximal
// single-fanout AND tree as a delay-balanced tree, combining the
// lowest-arriving operands first. Never increases depth; typically
// shortens it substantially on chain-shaped logic.

#include "aig/aig.hpp"

namespace emorphic {

/// Return a balanced, cleaned-up copy of `aig`.
Aig balance(const Aig& aig);

}  // namespace emorphic
