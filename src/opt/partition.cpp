#include "opt/partition.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "aig/aig_io.hpp"
#include "aig/signature.hpp"
#include "egraph/snapshot.hpp"
#include "flow/batch.hpp"
#include "flow/pipeline.hpp"

namespace emorphic {

namespace {

/// Windows per checkpoint chunk. Fixed (never configuration-derived): the
/// chunk boundaries define the checkpoint record layout and the per-chunk
/// seed derivation, so changing this constant invalidates old checkpoints
/// (caught by the fingerprint, which folds it in).
constexpr std::size_t kChunkWindows = 16;

constexpr char kCheckpointMagic[4] = {'E', 'M', 'P', 'C'};
constexpr std::uint64_t kCheckpointVersion = 1;

// Window result status codes stored in checkpoint records.
constexpr std::uint8_t kRejectedQor = 0;
constexpr std::uint8_t kAdopted = 1;
constexpr std::uint8_t kRejectedCec = 2;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ splitmix64(v));
}

/// Everything the recorded window results depend on: the circuit, the
/// decomposition, the seeds and the inner optimization effort. A checkpoint
/// whose fingerprint disagrees was taken under a different run and must not
/// be stitched into this one.
std::uint64_t checkpoint_fingerprint(const Aig& input,
                                     const PartitionParams& params,
                                     std::size_t num_windows) {
  std::uint64_t h = structural_signature(input);
  h = fold(h, params.window_size);
  h = fold(h, params.seed);
  h = fold(h, params.rewrite.max_iterations);
  h = fold(h, params.rewrite.max_enodes);
  h = fold(h, params.rewrite.max_matches_per_rule);
  h = fold(h, params.window_fraig ? 1 : 0);
  h = fold(h, params.window_cec.conflict_limit);
  h = fold(h, num_windows);
  h = fold(h, kChunkWindows);
  return h;
}

std::uint64_t chunk_seed(std::uint64_t base_seed, std::size_t chunk) {
  std::uint64_t seed = splitmix64(base_seed ^ splitmix64(chunk + 1));
  if (seed == 0) seed = 0x9e3779b97f4a7c15ull;
  return seed;
}

Pipeline make_window_pipeline(const PartitionParams& params) {
  Pipeline p;
  p.add(std::make_unique<EgraphConversionStage>());   // forward
  p.add(std::make_unique<RewriteStage>());
  p.add(std::make_unique<EgraphConversionStage>());   // backward (greedy)
  if (params.window_fraig) p.add(std::make_unique<FraigStage>());
  return p;
}

FlowParams make_window_params(const PartitionParams& params) {
  FlowParams inner;
  inner.rewrite = params.rewrite;
  // The windows are the parallelism; inner match threads would multiply
  // with the batch workers.
  inner.rewrite.match_threads = 1;
  inner.fraig = params.fraig;
  inner.verify = false;  // the per-window CEC gate below replaces it
  return inner;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void append_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::string checkpoint_header(std::uint64_t fingerprint,
                              std::size_t num_windows) {
  SnapshotWriter w;
  w.magic(kCheckpointMagic);
  w.varint(kCheckpointVersion);
  w.varint(fingerprint);
  w.varint(num_windows);
  return w.take();
}

/// Parse an existing checkpoint file. Returns the number of complete chunk
/// records; fills status/adopted for the windows they cover. A torn tail is
/// truncated away (the file is rewritten to the valid prefix). A header
/// that does not match this run throws SnapshotError.
std::size_t load_checkpoint(const std::string& path, std::uint64_t fingerprint,
                            std::size_t num_windows,
                            std::vector<std::uint8_t>& status,
                            std::vector<Aig>& adopted) {
  std::string data = read_file(path);
  if (data.empty()) {
    write_file(path, checkpoint_header(fingerprint, num_windows));
    return 0;
  }
  SnapshotReader r(data);
  r.expect_magic(kCheckpointMagic, "partition checkpoint");
  std::uint64_t version = r.varint("version");
  if (version != kCheckpointVersion) {
    throw SnapshotError("unsupported partition checkpoint version " +
                        std::to_string(version));
  }
  if (r.varint("fingerprint") != fingerprint) {
    throw SnapshotError(
        "partition checkpoint was taken for a different circuit or "
        "configuration (fingerprint mismatch) — delete it to start over");
  }
  if (r.varint("window count") != num_windows) {
    throw SnapshotError("partition checkpoint window count mismatch");
  }

  const std::size_t num_chunks =
      num_windows == 0 ? 0 : (num_windows + kChunkWindows - 1) / kChunkWindows;
  std::size_t chunks = 0;
  std::size_t valid_prefix = data.size() - r.remaining();
  while (!r.at_end() && chunks < num_chunks) {
    // Parse one whole record into locals; commit only on success so a torn
    // tail never leaves half a chunk applied.
    std::vector<std::pair<std::size_t, std::uint8_t>> rec_status;
    std::vector<std::pair<std::size_t, Aig>> rec_adopted;
    try {
      if (r.varint("chunk index") != chunks) {
        throw SnapshotError("partition checkpoint chunks out of order");
      }
      std::size_t lo = chunks * kChunkWindows;
      std::size_t hi = std::min(lo + kChunkWindows, num_windows);
      if (r.varint("chunk window count") != hi - lo) {
        throw SnapshotError("partition checkpoint chunk size mismatch");
      }
      for (std::size_t i = lo; i < hi; ++i) {
        if (r.varint("window id") != i) {
          throw SnapshotError("partition checkpoint window ids out of order");
        }
        std::uint8_t s = r.u8("window status");
        if (s > kRejectedCec) {
          throw SnapshotError("partition checkpoint has unknown status code " +
                              std::to_string(s));
        }
        rec_status.emplace_back(i, s);
        if (s == kAdopted) {
          std::uint64_t len = r.varint("window byte length");
          rec_adopted.emplace_back(
              i, read_aiger_binary(r.bytes(len, "window circuit")));
        }
      }
    } catch (const std::runtime_error&) {
      break;  // torn tail: keep the chunks parsed so far
    }
    for (auto& [i, s] : rec_status) status[i] = s;
    for (auto& [i, aig] : rec_adopted) adopted[i] = std::move(aig);
    ++chunks;
    valid_prefix = data.size() - r.remaining();
  }
  if (valid_prefix < data.size()) {
    write_file(path, data.substr(0, valid_prefix));
  }
  return chunks;
}

}  // namespace

WindowAssignment assign_windows(const Aig& aig, std::uint32_t window_size) {
  if (window_size == 0) {
    throw std::invalid_argument("assign_windows: window_size must be >= 1");
  }
  WindowAssignment out;
  out.window_of.assign(aig.num_nodes(), kNoWindow);
  std::vector<std::uint32_t> fill;
  std::uint32_t last_open = kNoWindow;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    // Highest window among the AND fanins: joining it keeps fanin cones
    // together, and since fanin windows never exceed it, the fanin-window
    // <= fanout-window invariant holds for every choice below.
    std::uint32_t deepest = kNoWindow;
    for (Lit f : {aig.fanin0(v), aig.fanin1(v)}) {
      std::uint32_t w = out.window_of[lit_var(f)];
      if (w != kNoWindow && (deepest == kNoWindow || w > deepest)) deepest = w;
    }
    std::uint32_t w;
    if (deepest != kNoWindow && fill[deepest] < window_size) {
      w = deepest;
    } else if (last_open != kNoWindow && fill[last_open] < window_size) {
      w = last_open;
    } else {
      w = static_cast<std::uint32_t>(fill.size());
      fill.push_back(0);
      last_open = w;
    }
    out.window_of[v] = w;
    ++fill[w];
  }
  out.num_windows = fill.size();
  return out;
}

std::vector<Window> build_windows(const Aig& aig,
                                  const WindowAssignment& assignment) {
  std::vector<Window> windows(assignment.num_windows);
  std::vector<char> escapes(aig.num_nodes(), 0);
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    std::uint32_t w = assignment.window_of[v];
    if (w == kNoWindow) continue;
    windows[w].members.push_back(v);
    for (Lit f : {aig.fanin0(v), aig.fanin1(v)}) {
      Var fv = lit_var(f);
      std::uint32_t fw = assignment.window_of[fv];
      if (fv != 0 && fw != w) windows[w].inputs.push_back(fv);
      if (fw != kNoWindow && fw != w) escapes[fv] = 1;
    }
  }
  for (Lit po : aig.pos()) {
    Var pv = lit_var(po);
    if (assignment.window_of[pv] != kNoWindow) escapes[pv] = 1;
  }
  for (Window& w : windows) {
    std::sort(w.inputs.begin(), w.inputs.end());
    w.inputs.erase(std::unique(w.inputs.begin(), w.inputs.end()),
                   w.inputs.end());
    for (Var v : w.members) {
      if (escapes[v]) w.outputs.push_back(v);  // members ascending already
    }
  }
  return windows;
}

Aig extract_window(const Aig& aig, const Window& window) {
  Aig sub;
  std::vector<Lit> map(aig.num_nodes(), kLitFalse);
  for (Var in : window.inputs) {
    map[in] = make_lit(sub.add_pi("v" + std::to_string(in)));
  }
  auto translate = [&map](Lit l) {
    return lit_notcond(map[lit_var(l)], lit_is_compl(l));
  };
  for (Var v : window.members) {
    map[v] = sub.make_and(translate(aig.fanin0(v)), translate(aig.fanin1(v)));
  }
  for (Var out : window.outputs) {
    sub.add_po(map[out], "v" + std::to_string(out));
  }
  return sub;
}

namespace {

/// Rebuild the full circuit from per-window results, windows ascending.
/// Rebuild-stitching (rather than Aig::substitute) because an optimized
/// window may introduce variables numerically above the nodes it replaces,
/// which substitute's strictly-smaller contract forbids; rebuilding into a
/// fresh AIG sidesteps the constraint and strashes across window seams for
/// free.
Aig stitch(const Aig& input, const std::vector<Window>& windows,
           const std::vector<std::uint8_t>& status,
           const std::vector<Aig>& adopted) {
  Aig out = Aig::like(input);
  std::vector<Lit> map(input.num_nodes(), kLitFalse);
  for (std::size_t i = 0; i < input.pis().size(); ++i) {
    map[input.pis()[i]] = make_lit(out.pis()[i]);
  }
  auto translate = [&map](Lit l) {
    return lit_notcond(map[lit_var(l)], lit_is_compl(l));
  };
  for (std::size_t w = 0; w < windows.size(); ++w) {
    if (status[w] == kAdopted) {
      const Aig& sub = adopted[w];
      std::vector<Lit> smap(sub.num_nodes(), kLitFalse);
      for (std::size_t j = 0; j < windows[w].inputs.size(); ++j) {
        smap[sub.pis()[j]] = map[windows[w].inputs[j]];
      }
      auto sub_translate = [&smap](Lit l) {
        return lit_notcond(smap[lit_var(l)], lit_is_compl(l));
      };
      for (Var v = 1; v < sub.num_nodes(); ++v) {
        if (!sub.is_and(v)) continue;
        smap[v] = out.make_and(sub_translate(sub.fanin0(v)),
                               sub_translate(sub.fanin1(v)));
      }
      for (std::size_t j = 0; j < windows[w].outputs.size(); ++j) {
        map[windows[w].outputs[j]] = sub_translate(sub.po(j));
      }
    } else {
      for (Var v : windows[w].members) {
        map[v] = out.make_and(translate(input.fanin0(v)),
                              translate(input.fanin1(v)));
      }
    }
  }
  for (std::uint32_t i = 0; i < input.num_pos(); ++i) {
    out.set_po(i, translate(input.po(i)));
  }
  return out;
}

}  // namespace

PartitionResult partition_optimize(const Aig& input,
                                   const PartitionParams& params) {
  PartitionResult out;
  PartitionStats& st = out.stats;
  st.ands_before = input.num_ands();

  WindowAssignment assignment = assign_windows(input, params.window_size);
  std::vector<Window> windows = build_windows(input, assignment);
  st.num_windows = windows.size();
  const std::size_t num_chunks =
      windows.empty() ? 0
                      : (windows.size() + kChunkWindows - 1) / kChunkWindows;
  st.chunks_total = num_chunks;

  std::vector<std::uint8_t> status(windows.size(), kRejectedQor);
  std::vector<Aig> adopted(windows.size());

  const std::uint64_t fingerprint =
      checkpoint_fingerprint(input, params, windows.size());
  std::size_t done_chunks = 0;
  if (!params.checkpoint_path.empty()) {
    done_chunks = load_checkpoint(params.checkpoint_path, fingerprint,
                                  windows.size(), status, adopted);
    st.chunks_resumed = done_chunks;
  }

  const Pipeline window_pipeline = make_window_pipeline(params);
  const FlowParams window_params = make_window_params(params);

  std::size_t fresh_chunks = 0;
  for (std::size_t c = done_chunks; c < num_chunks; ++c) {
    if (params.cancel != nullptr &&
        params.cancel->load(std::memory_order_relaxed)) {
      return out;  // completed stays false; the checkpoint holds progress
    }
    if (params.stop_after_chunks != 0 &&
        fresh_chunks >= params.stop_after_chunks) {
      return out;
    }
    const std::size_t lo = c * kChunkWindows;
    const std::size_t hi = std::min(lo + kChunkWindows, windows.size());
    std::vector<Aig> subs;
    subs.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      subs.push_back(extract_window(input, windows[i]));
    }
    BatchParams batch;
    batch.num_threads = params.num_threads;
    batch.base_seed = chunk_seed(params.seed, c);
    batch.sa_threads = 1;
    batch.cancel = params.cancel;
    batch.warm_cache = params.warm_cache;
    BatchResult br = run_batch(subs, window_pipeline, window_params, batch);
    if (params.cancel != nullptr &&
        params.cancel->load(std::memory_order_relaxed)) {
      return out;  // results may be partial — discard the whole chunk
    }

    SnapshotWriter record;
    record.varint(c);
    record.varint(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      // Normalize through the binary AIGER round trip: a window replayed
      // from the checkpoint is parsed from these bytes, so the fresh path
      // must adopt the exact same structure for resumed and uninterrupted
      // runs to stitch identically.
      std::string bytes = write_aiger_binary(br.results[i - lo].final_aig);
      Aig norm = read_aiger_binary(bytes);
      const Aig& orig = subs[i - lo];
      std::uint8_t s = kRejectedQor;
      bool smaller = norm.num_ands() < orig.num_ands() ||
                     (norm.num_ands() == orig.num_ands() &&
                      norm.num_levels() < orig.num_levels());
      if (smaller) {
        CecParams gate = params.window_cec;
        gate.time_limit_s = 0.0;  // conflict-bounded only: deterministic
        s = cec(orig, norm, gate).status == CecStatus::kEquivalent
                ? kAdopted
                : kRejectedCec;
      }
      status[i] = s;
      record.varint(i);
      record.u8(s);
      if (s == kAdopted) {
        record.varint(bytes.size());
        record.bytes(bytes);
        adopted[i] = std::move(norm);
      }
    }
    if (!params.checkpoint_path.empty()) {
      append_file(params.checkpoint_path, record.str());
    }
    ++fresh_chunks;
  }

  for (std::uint8_t s : status) {
    if (s == kAdopted) ++st.windows_adopted;
    else if (s == kRejectedCec) ++st.windows_rejected_cec;
    else ++st.windows_rejected_qor;
  }
  out.optimized = stitch(input, windows, status, adopted);
  st.ands_after = out.optimized.num_ands();
  st.completed = true;
  return out;
}

}  // namespace emorphic
