#pragma once
// Windowed (partitioned) saturation — the scaling mode for industrial-size
// AIGs (ROADMAP item 4). Whole-circuit equality saturation dies on
// million-gate designs: the e-graph node cap is reached before a single
// rewrite fires. This module decomposes the circuit into bounded fanin-cone
// windows, saturates and extracts each window independently on the batch
// worker pool, stitches the optimized windows back, and gates every adopted
// window with a SAT equivalence check.
//
// Determinism contract: the window assignment is a pure function of the
// circuit and window size; per-window seeds derive from the base seed and
// the window's chunk index (never from worker scheduling); every window
// result is normalized through the binary AIGER round trip before adoption.
// The same circuit, seed and window size therefore produce a bit-identical
// stitched netlist at any thread count — tests/opt/test_partition.cpp holds
// this across {1,2,4,8} workers.
//
// Checkpointing: windows are processed in fixed-size chunks; after each
// chunk, its results are appended to the checkpoint file ("EMPC" format,
// built on the egraph/snapshot.hpp primitives). A resumed run replays the
// recorded chunks byte-for-byte and recomputes only the missing ones, so an
// interrupted and a straight-through run finish with identical netlists. A
// torn tail (partial last record after a crash) is detected and truncated;
// a checkpoint from a different circuit or configuration throws
// SnapshotError (fingerprint mismatch) instead of silently corrupting the
// result.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "cec/cec.hpp"
#include "egraph/runner.hpp"
#include "opt/fraig.hpp"

namespace emorphic {

class WarmCache;  // flow/warm_cache.hpp

/// Sentinel window id for variables that belong to no window (PIs, const0).
constexpr std::uint32_t kNoWindow = 0xffffffffu;

struct PartitionParams {
  /// Maximum AND nodes per window. 1 degenerates to per-node windows;
  /// >= the circuit's AND count degenerates to one whole-circuit window.
  std::uint32_t window_size = 1000;
  /// Base seed; per-chunk batch seeds derive from it deterministically.
  std::uint64_t seed = 1;
  /// Worker threads for the nested run_batch; 0 = hardware concurrency.
  /// Never affects results (the batch driver's determinism contract).
  unsigned num_threads = 0;
  /// Inner per-window saturation caps. match_threads is forced to 1: the
  /// windows themselves are the parallelism.
  RunnerParams rewrite;
  /// Append a SAT sweep to the per-window flow.
  bool window_fraig = false;
  FraigParams fraig;
  /// Per-window equivalence gate. time_limit_s is forced to 0 (the conflict
  /// limit is the only budget) so the adopt/reject decision is deterministic;
  /// an undecided check rejects the window.
  CecParams window_cec;
  /// Checkpoint file ("EMPC" format); empty disables checkpointing.
  std::string checkpoint_path;
  /// Test seam: stop (with stats.completed == false) after freshly
  /// processing this many chunks; 0 = run to completion. Used to exercise
  /// the resume path deterministically.
  unsigned stop_after_chunks = 0;
  /// External cancellation, polled between chunks.
  std::atomic<bool>* cancel = nullptr;
  /// Optional shared warm cache for the nested batch (flow/warm_cache.hpp).
  WarmCache* warm_cache = nullptr;
};

struct PartitionStats {
  std::size_t num_windows = 0;
  std::size_t chunks_total = 0;
  /// Chunks replayed from the checkpoint file instead of recomputed.
  std::size_t chunks_resumed = 0;
  std::size_t windows_adopted = 0;
  /// Optimized window was not smaller (area, then level tiebreak).
  std::size_t windows_rejected_qor = 0;
  /// Optimized window failed (or exhausted) the SAT equivalence gate.
  std::size_t windows_rejected_cec = 0;
  std::size_t ands_before = 0;
  std::size_t ands_after = 0;
  /// False when the run stopped early (cancel flag or stop_after_chunks);
  /// the result AIG is then empty and the checkpoint holds the progress.
  bool completed = false;
};

/// Deterministic window assignment: scan AND nodes in ascending variable
/// order; each node joins the highest-numbered window among its AND fanins
/// if that window has room, else the most recently opened window if it has
/// room, else a fresh window. Every fanin's window id is <= its fanout's,
/// so stitching windows in ascending order is acyclic by construction.
struct WindowAssignment {
  /// Per variable: the window id, or kNoWindow for non-AND nodes.
  std::vector<std::uint32_t> window_of;
  std::size_t num_windows = 0;
};

WindowAssignment assign_windows(const Aig& aig, std::uint32_t window_size);

/// One window's interface: member AND variables, boundary inputs (PIs or
/// ANDs of earlier windows) and outputs (members referenced by later
/// windows or by a PO). All three lists are ascending.
struct Window {
  std::vector<Var> members;
  std::vector<Var> inputs;
  std::vector<Var> outputs;
};

std::vector<Window> build_windows(const Aig& aig,
                                  const WindowAssignment& assignment);

/// Materialize one window as a standalone AIG: one PI per boundary input
/// (named "v<var>"), one PO per boundary output, members replayed in order.
Aig extract_window(const Aig& aig, const Window& window);

struct PartitionResult {
  Aig optimized;
  PartitionStats stats;
};

/// The full windowed flow: assign -> extract -> saturate/extract per window
/// (nested run_batch) -> per-window CEC gate -> stitch. See the file header
/// for the determinism and checkpoint contracts. Throws SnapshotError when
/// an existing checkpoint file does not match this circuit/configuration,
/// std::invalid_argument for window_size == 0.
PartitionResult partition_optimize(const Aig& input,
                                   const PartitionParams& params);

}  // namespace emorphic
