#pragma once
// SAT sweeping ("fraiging", after ABC's fraig): merge functionally
// equivalent AIG nodes that structural hashing — and the e-graph rule set —
// never identify as equal.
//
// The classic recipe (Mishchenko et al., "FRAIGs: A unifying representation
// for logic synthesis and verification"):
//  1. bit-parallel random simulation partitions all nodes into candidate
//     equivalence classes by simulation signature (complement-normalized, so
//     a node and its negation land in the same class);
//  2. candidate pairs are proven or refuted with incremental SAT queries
//     over one shared CNF of the network (two assumption-only calls per
//     pair, no clause churn between queries);
//  3. a refuting SAT assignment is replayed as a simulation pattern — plus
//     random neighbors — splitting every candidate class the counterexample
//     distinguishes, so one refutation prunes many future SAT calls;
//  4. proven nodes merge into their earliest equivalent representative with
//     phase handling, and the network is rebuilt without the dangling cones
//     (Aig::substitute).
//
// This is both an optimization (AND-node count drops wherever redundancy
// exists) and the machinery behind trustworthy equivalence testing: the
// same simulate/refute/prove loop backs `cec` and the stage-equivalence
// test harness.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace emorphic {

struct FraigParams {
  /// Random 64-pattern words in the initial simulation (and per refinement
  /// round). More words mean fewer false candidate pairs but slower setup.
  unsigned sim_words = 8;
  /// Extra random-refinement rounds before SAT sweeping starts. A round
  /// that splits nothing ends refinement early.
  unsigned sim_rounds = 4;
  /// Conflict budget per SAT query; 0 = prove unboundedly. Pairs whose
  /// queries exceed it stay unmerged (counted in FraigStats::undecided).
  std::uint64_t conflict_limit = 10000;
  /// Candidate classes larger than this are skipped outright — oversized
  /// classes are usually simulation artifacts on degenerate inputs and
  /// would cost a quadratic number of queries.
  std::size_t max_class_size = 64;
  /// Worker threads for the random-simulation phases; 1 = serial. The SAT
  /// sweep itself is sequential (one incremental solver).
  unsigned num_threads = 1;
  /// Seed for simulation patterns and counterexample neighbors. With
  /// unbounded proofs (conflict_limit = 0) and no skipped classes the merge
  /// set is proof-derived and seed-independent; a finite conflict budget or
  /// class-size cap can make which pairs prove within budget vary with the
  /// patterns (the result is always functionally equivalent either way).
  std::uint64_t seed = 0x5eedf4a1;
  /// When false, skip simulation entirely and SAT-query all node pairs —
  /// the naive sweeping baseline that bench/micro_fraig measures against.
  bool use_simulation = true;
};

struct FraigStats {
  std::size_t classes = 0;          // candidate classes entering the sweep
  std::size_t candidate_nodes = 0;  // nodes inside those classes
  std::size_t skipped_class_nodes = 0;  // nodes in over-large classes
  std::size_t sat_calls = 0;        // individual solver queries
  std::size_t proved = 0;           // merged pairs (both phases UNSAT)
  std::size_t refuted = 0;          // distinguished pairs (a query was SAT)
  std::size_t undecided = 0;        // pairs abandoned at the conflict limit
  std::size_t cex_replays = 0;      // counterexample words simulated back
  std::size_t sim_words = 0;        // total 64-pattern words simulated
  std::uint32_t ands_before = 0;
  std::uint32_t ands_after = 0;
};

/// SAT-sweep `aig`: returns a functionally equivalent network in which every
/// proven-equivalent AND node is merged into its earliest representative
/// (complement handled via the literal phase) and dangling logic is removed.
/// PI/PO interface and names are preserved.
Aig fraig(const Aig& aig, const FraigParams& params = {},
          FraigStats* stats = nullptr);

}  // namespace emorphic
