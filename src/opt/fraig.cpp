#include "opt/fraig.hpp"

#include <cassert>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "aig/sim.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace emorphic {

namespace {

using sat::SatResult;
using sat::Solver;

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Candidate-equivalence classes over all AIG variables (constant and PIs
/// included — they are valid merge representatives, only AND nodes merge
/// away). Signatures are complement-normalized: `phase[v]` is the node's
/// value under the very first simulation pattern, and every signature word
/// is XORed with that phase before comparison, so a node and its negation
/// share a class with opposite phases.
struct Partition {
  std::vector<std::int32_t> class_of;     // -1 = singleton / merged away
  std::vector<bool> phase;                // complement normalization per var
  std::vector<std::vector<Var>> classes;  // members ascending by var
};

/// Normalized signature row of `v`: w words starting at values[v*w], each
/// XORed with the node's phase mask.
bool rows_equal(const Partition& part, const std::vector<std::uint64_t>& values,
                unsigned w, Var a, Var b) {
  const std::uint64_t* ra = &values[static_cast<std::size_t>(a) * w];
  const std::uint64_t* rb = &values[static_cast<std::size_t>(b) * w];
  std::uint64_t ma = part.phase[a] ? ~0ull : 0ull;
  std::uint64_t mb = part.phase[b] ? ~0ull : 0ull;
  for (unsigned i = 0; i < w; ++i) {
    if ((ra[i] ^ ma) != (rb[i] ^ mb)) return false;
  }
  return true;
}

Partition initial_partition(const Aig& aig,
                            const std::vector<std::uint64_t>& values,
                            unsigned w) {
  const std::size_t n = aig.num_nodes();
  Partition part;
  part.class_of.assign(n, -1);
  part.phase.assign(n, false);
  // Hash buckets resolve to exact class ids by exemplar comparison.
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> buckets;
  buckets.reserve(n);
  for (Var v = 0; v < n; ++v) {
    const std::uint64_t* row = &values[static_cast<std::size_t>(v) * w];
    bool ph = (row[0] & 1) != 0;
    part.phase[v] = ph;
    std::uint64_t mask = ph ? ~0ull : 0ull;
    std::uint64_t h = 0;
    for (unsigned i = 0; i < w; ++i) h = mix(h, row[i] ^ mask);
    std::vector<std::int32_t>& ids = buckets[h];
    std::int32_t found = -1;
    for (std::int32_t id : ids) {
      if (rows_equal(part, values, w, part.classes[id][0], v)) {
        found = id;
        break;
      }
    }
    if (found < 0) {
      found = static_cast<std::int32_t>(part.classes.size());
      part.classes.emplace_back();
      ids.push_back(found);
    }
    part.classes[found].push_back(v);
    part.class_of[v] = found;
  }
  for (std::vector<Var>& members : part.classes) {
    if (members.size() < 2) {
      for (Var v : members) part.class_of[v] = -1;
      members.clear();
    }
  }
  return part;
}

/// Split every class from index `from` on by the normalized signature over
/// `values` (node-major, `w` words per node). The subgroup containing the
/// class minimum keeps the class id; the rest are appended as new classes
/// (or retired when they shrink to singletons). Returns how many classes
/// actually split.
std::size_t refine_classes(Partition& part,
                           const std::vector<std::uint64_t>& values, unsigned w,
                           std::size_t from) {
  std::size_t splits = 0;
  const std::size_t initial = part.classes.size();  // appended ones are split
  for (std::size_t c = from; c < initial; ++c) {
    std::vector<Var>& members = part.classes[c];
    if (members.size() < 2) continue;
    // Group members by normalized row; member order (ascending) is kept, so
    // the first group contains the class minimum.
    std::vector<std::vector<Var>> groups;
    for (Var m : members) {
      std::int32_t found = -1;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (rows_equal(part, values, w, groups[g][0], m)) {
          found = static_cast<std::int32_t>(g);
          break;
        }
      }
      if (found < 0) {
        groups.emplace_back();
        found = static_cast<std::int32_t>(groups.size() - 1);
      }
      groups[static_cast<std::size_t>(found)].push_back(m);
    }
    if (groups.size() == 1) continue;
    ++splits;
    members = std::move(groups[0]);
    if (members.size() < 2) {
      for (Var v : members) part.class_of[v] = -1;
      members.clear();
    }
    for (std::size_t g = 1; g < groups.size(); ++g) {
      if (groups[g].size() < 2) {
        for (Var v : groups[g]) part.class_of[v] = -1;
        continue;
      }
      std::int32_t id = static_cast<std::int32_t>(part.classes.size());
      for (Var v : groups[g]) part.class_of[v] = id;
      part.classes.push_back(std::move(groups[g]));
    }
  }
  return splits;
}

enum class PairVerdict { kProved, kRefuted, kUndecided };

/// Prove or refute `la == lb` on the encoded network with two
/// assumption-only queries: (la & !lb) and (!la & lb) must both be UNSAT.
/// On refutation, `cex` receives the distinguishing PI assignment.
PairVerdict prove_pair(Solver& solver, const std::vector<sat::SatVar>& smap,
                       const Aig& aig, Lit la, Lit lb,
                       const FraigParams& params, std::vector<bool>& cex,
                       FraigStats& stats) {
  sat::SatLit sa = sat::lit_to_sat(smap, la);
  sat::SatLit sb = sat::lit_to_sat(smap, lb);
  auto extract_cex = [&] {
    cex.resize(aig.num_pis());
    for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
      cex[i] = solver.model_value(smap[aig.pis()[i]]);
    }
  };
  ++stats.sat_calls;
  SatResult r = solver.solve({sa, sat::sat_neg(sb)}, params.conflict_limit);
  if (r == SatResult::kUndecided) return PairVerdict::kUndecided;
  if (r == SatResult::kSat) {
    extract_cex();
    return PairVerdict::kRefuted;
  }
  ++stats.sat_calls;
  r = solver.solve({sat::sat_neg(sa), sb}, params.conflict_limit);
  if (r == SatResult::kUndecided) return PairVerdict::kUndecided;
  if (r == SatResult::kSat) {
    extract_cex();
    return PairVerdict::kRefuted;
  }
  return PairVerdict::kProved;
}

std::vector<Lit> identity_replacement(const Aig& aig) {
  std::vector<Lit> replacement(aig.num_nodes());
  for (Var v = 0; v < aig.num_nodes(); ++v) replacement[v] = make_lit(v);
  return replacement;
}

Aig sweep_guided(const Aig& aig, const FraigParams& params, FraigStats& stats) {
  Rng rng(params.seed);
  std::optional<ThreadPool> pool;
  if (params.num_threads > 1) pool.emplace(params.num_threads);
  ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;

  const unsigned w = std::max(1u, params.sim_words);
  auto random_values = [&] {
    std::vector<std::uint64_t> pi_words(
        static_cast<std::size_t>(aig.num_pis()) * w);
    for (std::uint64_t& word : pi_words) word = rng.next();
    stats.sim_words += w;
    return simulate_words_multi(aig, pi_words, w, pool_ptr);
  };

  Partition part = initial_partition(aig, random_values(), w);
  for (unsigned round = 0; round < params.sim_rounds; ++round) {
    if (refine_classes(part, random_values(), w, 0) == 0) break;
  }
  for (const std::vector<Var>& members : part.classes) {
    if (members.size() < 2) continue;
    ++stats.classes;
    stats.candidate_nodes += members.size();
  }

  Solver solver;
  std::vector<sat::SatVar> smap = sat::encode_aig(solver, aig);
  std::vector<Lit> replacement = identity_replacement(aig);
  std::vector<bool> cex;

  for (std::size_t c = 0; c < part.classes.size(); ++c) {
    if (part.classes[c].size() < 2) continue;
    if (part.classes[c].size() > params.max_class_size) {
      stats.skipped_class_nodes += part.classes[c].size();
      continue;
    }
    // Pairs abandoned at the conflict limit: remembered so a replay reset
    // does not re-spend their budget.
    std::unordered_set<Var> undecided;
    std::size_t i = 1;
    while (i < part.classes[c].size()) {
      Var rep = part.classes[c][0];
      Var m = part.classes[c][i];
      if (!aig.is_and(m) || undecided.count(m) != 0) {
        ++i;
        continue;
      }
      bool relphase = part.phase[m] != part.phase[rep];
      PairVerdict verdict =
          prove_pair(solver, smap, aig, make_lit(rep), make_lit(m, relphase),
                     params, cex, stats);
      if (verdict == PairVerdict::kProved) {
        ++stats.proved;
        replacement[m] = make_lit(rep, relphase);
        part.class_of[m] = -1;
        part.classes[c].erase(part.classes[c].begin() +
                              static_cast<std::ptrdiff_t>(i));
      } else if (verdict == PairVerdict::kUndecided) {
        ++stats.undecided;
        undecided.insert(m);
        ++i;
      } else {
        // Replay the counterexample (bit 0 exact, bits 1..63 neighbors):
        // it provably evicts `m` from this class, and splits any other
        // not-yet-processed class it distinguishes.
        ++stats.refuted;
        ++stats.cex_replays;
        ++stats.sim_words;
        std::vector<std::uint64_t> word = expand_pattern(cex, rng);
        std::vector<std::uint64_t> values = simulate_words(aig, word);
        refine_classes(part, values, 1, c);
        i = 1;  // membership changed; `undecided` guards against re-queries
      }
    }
  }
  return aig.substitute(replacement);
}

Aig sweep_naive(const Aig& aig, const FraigParams& params, FraigStats& stats) {
  Solver solver;
  std::vector<sat::SatVar> smap = sat::encode_aig(solver, aig);
  std::vector<Lit> replacement = identity_replacement(aig);
  std::vector<bool> cex;
  for (Var m = 1; m < aig.num_nodes(); ++m) {
    if (!aig.is_and(m)) continue;
    for (Var r = 0; r < m && replacement[m] == make_lit(m); ++r) {
      if (replacement[r] != make_lit(r)) continue;  // merged away already
      for (int phase = 0; phase < 2 && replacement[m] == make_lit(m);
           ++phase) {
        PairVerdict verdict =
            prove_pair(solver, smap, aig, make_lit(r),
                       make_lit(m, phase != 0), params, cex, stats);
        if (verdict == PairVerdict::kProved) {
          ++stats.proved;
          replacement[m] = make_lit(r, phase != 0);
        } else if (verdict == PairVerdict::kUndecided) {
          ++stats.undecided;
        } else {
          ++stats.refuted;
        }
      }
    }
  }
  return aig.substitute(replacement);
}

}  // namespace

Aig fraig(const Aig& aig, const FraigParams& params, FraigStats* stats) {
  FraigStats local;
  FraigStats& s = stats != nullptr ? *stats : local;
  s = FraigStats{};
  s.ands_before = aig.num_ands();
  Aig out = params.use_simulation ? sweep_guided(aig, params, s)
                                  : sweep_naive(aig, params, s);
  s.ands_after = out.num_ands();
  return out;
}

}  // namespace emorphic
