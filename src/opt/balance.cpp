#include "opt/balance.hpp"

#include <algorithm>
#include <vector>

namespace emorphic {

namespace {

/// Collect the leaves of the maximal AND tree rooted at `lit`: expansion
/// stops at PIs, complemented edges, and shared (multi-fanout) nodes —
/// those must remain observable points of the network.
void collect_and_leaves(const Aig& aig, const std::vector<std::uint32_t>& fanout,
                        Lit root, std::vector<Lit>& leaves) {
  std::vector<Lit> stack{root};
  while (!stack.empty()) {
    Lit lit = stack.back();
    stack.pop_back();
    Var v = lit_var(lit);
    bool interior =
        !lit_is_compl(lit) && aig.is_and(v) && (fanout[v] <= 1 || lit == root);
    if (interior) {
      stack.push_back(aig.fanin0(v));
      stack.push_back(aig.fanin1(v));
    } else {
      leaves.push_back(lit);
    }
  }
}

/// Incremental level bookkeeping for a growing AIG.
class LevelTracker {
 public:
  explicit LevelTracker(const Aig& aig) : aig_(aig) {}

  std::uint32_t level(Lit lit) {
    Var v = lit_var(lit);
    if (v >= levels_.size()) refresh();
    return levels_[v];
  }

 private:
  void refresh() {
    std::size_t old_size = levels_.size();
    levels_.resize(aig_.num_nodes(), 0);
    for (Var v = static_cast<Var>(old_size); v < aig_.num_nodes(); ++v) {
      if (aig_.is_and(v)) {
        levels_[v] = 1 + std::max(levels_[lit_var(aig_.fanin0(v))],
                                  levels_[lit_var(aig_.fanin1(v))]);
      }
    }
  }

  const Aig& aig_;
  std::vector<std::uint32_t> levels_;
};

}  // namespace

Aig balance(const Aig& aig) {
  Aig out = Aig::like(aig);
  LevelTracker tracker(out);
  std::vector<Lit> map(aig.num_nodes(), kLitFalse);
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    map[aig.pis()[i]] = make_lit(out.pis()[i]);
  }
  auto fanout = aig.fanout_counts();
  auto translate = [&](Lit old_lit) {
    return lit_notcond(map[lit_var(old_lit)], lit_is_compl(old_lit));
  };

  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    std::vector<Lit> leaves;
    collect_and_leaves(aig, fanout, make_lit(v), leaves);
    std::vector<Lit> new_leaves;
    new_leaves.reserve(leaves.size());
    for (Lit l : leaves) new_leaves.push_back(translate(l));

    // Huffman-style pairing: repeatedly AND the two shallowest operands
    // (kept sorted by level descending; the two cheapest sit at the back).
    std::sort(new_leaves.begin(), new_leaves.end(), [&](Lit a, Lit b) {
      return tracker.level(a) > tracker.level(b);
    });
    while (new_leaves.size() > 1) {
      Lit x = new_leaves.back();
      new_leaves.pop_back();
      Lit y = new_leaves.back();
      new_leaves.pop_back();
      Lit z = out.make_and(x, y);
      // Insert back keeping the descending-by-level order.
      auto it = std::lower_bound(
          new_leaves.begin(), new_leaves.end(), z,
          [&](Lit a, Lit b) { return tracker.level(a) > tracker.level(b); });
      new_leaves.insert(it, z);
    }
    map[v] = new_leaves.empty() ? kLitTrue : new_leaves[0];
  }

  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    out.set_po(i, translate(aig.po(i)));
  }
  return out.cleanup();
}

}  // namespace emorphic
