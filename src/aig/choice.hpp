#pragma once
// Choice-annotated AIGs: the structure that carries *several* functionally
// equivalent implementations of a signal into technology mapping, in the
// spirit of ABC's choice AIGs (`dch`) and of lossless synthesis.
//
// A choice class is a ring of AIG variables that compute the same function
// up to complement. One member — the *representative* — carries all the
// fanout: every fanin edge and every PO referencing the class points at the
// representative. The other members (the *alternatives*) are roots of
// additional structural variants whose cones hang off the same deeper
// representatives; nothing references them, so they are invisible to plain
// evaluation, but a choice-aware cut enumerator merges their cuts into the
// representative's cut set and the mapper then selects the best match
// across all variants (see aig/cut.hpp and mapper/tech_mapper.hpp).
//
// Complements are normalized the way fraig normalizes candidate classes:
// each member stores a representative *literal* whose complement bit says
// whether the member's positive function is the negation of the
// representative's positive function. Cut functions imported from a
// complemented member are negated before they join the representative's
// cut set, so every cut in a representative's list expresses the
// representative's positive polarity.
//
// In E-morphic, choice rings are exported from the saturated e-graph
// (flow/choice_export.hpp): the representative cone is the extraction the
// SA search committed to, and the alternatives are the other e-nodes of
// each e-class — the structures ABC's `dch` choices would never record.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"

namespace emorphic {

namespace check {
struct CheckProbe;  // corruption-seeding seam for validator tests
}  // namespace check

/// Choice annotation over the variables of one Aig. Default-constructed (or
/// sized with no members added) it is the trivial annotation: every
/// variable represents itself and choice-aware consumers behave exactly
/// like their plain counterparts.
class AigChoices {
 public:
  AigChoices() = default;
  /// Trivial annotation over `num_nodes` variables.
  explicit AigChoices(std::size_t num_nodes);

  /// Number of annotated variables (must equal the Aig's num_nodes()).
  std::size_t size() const { return repr_.size(); }

  /// Representative literal of `v`'s choice class. For ordinary variables
  /// and for representatives this is `make_lit(v)`; for an alternative it
  /// is `make_lit(rep, phase)` where `phase` says the alternative's
  /// positive function is the complement of the representative's.
  Lit repr_lit(Var v) const { return repr_[v]; }
  /// Representative variable of `v`'s choice class.
  Var repr(Var v) const { return lit_var(repr_[v]); }
  /// Is `v` an alternative (a ring member that is not the representative)?
  bool is_alt(Var v) const { return lit_var(repr_[v]) != v; }
  /// Does `rep` head a non-empty choice ring?
  bool has_ring(Var rep) const { return rings_.count(rep) != 0; }
  /// The alternatives of representative `rep` (empty for ordinary vars).
  const std::vector<Var>& ring(Var rep) const;

  /// Number of representatives with at least one alternative.
  std::size_t num_rings() const { return rings_.size(); }
  /// Total number of alternatives across all rings.
  std::size_t num_alts() const;

  /// Evaluation order over all variables (var 0 included): a topological
  /// order of the dependency relation "fanins before node, ring members
  /// before their representative". Choice-aware passes (cut enumeration,
  /// the mapper DP) must traverse in this order — plain index order is NOT
  /// sufficient, because an alternative cone may carry larger indices than
  /// the representative it feeds cuts into. Empty until finalize() runs;
  /// equals plain index order when there are no rings.
  const std::vector<Var>& order() const { return order_; }

  // --- construction (used by the e-graph choice export) ---------------------

  /// Record `member` as an alternative of `rep`; `phase` = true when the
  /// member's positive function complements the representative's. The
  /// member must not already be a representative or an alternative
  /// (rings stay disjoint) — enforced by finalize()/check().
  void add_member(Var rep, Var member, bool phase);

  /// Remove a previously added member from its ring (used when
  /// verification rejects it).
  void remove_member(Var rep, Var member);

  /// Compute order() with Kahn's algorithm over fanin and ring edges.
  /// Ring edges can close cycles that plain fanin edges cannot (mutually
  /// referencing alternative cones); any member whose scheduling would
  /// deadlock is dropped from its ring (counted in the return value) so
  /// the order always covers every variable. Call after the last
  /// add_member/remove_member.
  std::size_t finalize(const Aig& aig);

  /// Structural validation: sizes match, rings are disjoint, repr links and
  /// rings agree, order() is a permutation respecting fanin and ring edges.
  /// Returns an empty string when consistent, else a description of the
  /// first violation. O(nodes + edges); used by tests and the export.
  std::string check(const Aig& aig) const;

 private:
  friend struct check::CheckProbe;

  std::vector<Lit> repr_;                          // per var; make_lit(v) if plain
  std::unordered_map<Var, std::vector<Var>> rings_;  // rep -> alternatives
  std::vector<Var> order_;                         // see order()
};

/// An AIG bundled with its choice annotation — the unit that choice-aware
/// technology mapping consumes (map_to_cells overload in tech_mapper.hpp).
struct ChoiceAig {
  Aig aig;
  AigChoices choices;

  /// Wrap a plain AIG with the trivial annotation (no rings): choice-aware
  /// consumers then reproduce their plain counterparts exactly.
  static ChoiceAig from_plain(const Aig& aig);
};

}  // namespace emorphic
