#include "aig/choice.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <string>

#include "check/check.hpp"

namespace emorphic {

AigChoices::AigChoices(std::size_t num_nodes) {
  repr_.resize(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    repr_[v] = make_lit(static_cast<Var>(v));
  }
}

const std::vector<Var>& AigChoices::ring(Var rep) const {
  static const std::vector<Var> kEmpty;
  auto it = rings_.find(rep);
  return it != rings_.end() ? it->second : kEmpty;
}

std::size_t AigChoices::num_alts() const {
  std::size_t total = 0;
  // lint:allow(unordered-iteration) order-independent sum
  for (const auto& [rep, members] : rings_) total += members.size();
  return total;
}

void AigChoices::add_member(Var rep, Var member, bool phase) {
  assert(member < repr_.size() && rep < repr_.size());
  assert(!is_alt(member) && !has_ring(member) && "rings must stay disjoint");
  repr_[member] = make_lit(rep, phase);
  rings_[rep].push_back(member);
}

void AigChoices::remove_member(Var rep, Var member) {
  auto it = rings_.find(rep);
  if (it == rings_.end()) return;
  std::erase(it->second, member);
  if (it->second.empty()) rings_.erase(it);
  repr_[member] = make_lit(member);
}

std::size_t AigChoices::finalize(const Aig& aig) {
  const std::size_t n = aig.num_nodes();
  assert(repr_.size() == n);

  // Dependency edges: fanin -> node for every AND, member -> representative
  // for every ring member. The fanin relation alone is acyclic (AIG node
  // indices are topological); only ring edges can deadlock the schedule.
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<Var>> out(n);
  for (Var v = 1; v < n; ++v) {
    if (!aig.is_and(v)) continue;
    Var f0 = lit_var(aig.fanin0(v));
    Var f1 = lit_var(aig.fanin1(v));
    out[f0].push_back(v);
    ++indegree[v];
    out[f1].push_back(v);
    ++indegree[v];
  }
  // Every variable is a member of at most one ring, so each out[m] receives
  // at most one rep edge: edge lists and indegrees come out identical
  // whatever order the rings are visited in.
  // lint:allow(unordered-iteration) at most one edge per member, order-free
  for (const auto& [rep, members] : rings_) {
    for (Var m : members) {
      out[m].push_back(rep);
      ++indegree[rep];
    }
  }

  // Kahn's algorithm with a min-heap ready set, so the order (and therefore
  // every downstream pass) is deterministic.
  std::priority_queue<Var, std::vector<Var>, std::greater<Var>> ready;
  for (Var v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push(v);
  }

  order_.clear();
  order_.reserve(n);
  std::vector<std::uint8_t> scheduled(n, 0);
  std::size_t dropped = 0;
  while (order_.size() < n) {
    if (ready.empty()) {
      // Deadlock: some ring edge closes a cycle (mutually referencing
      // alternative cones). Drop the unscheduled members of the smallest
      // stuck representative and retry — removing ring edges always
      // unsticks a schedule, because the fanin relation is a DAG.
      bool progressed = false;
      std::vector<Var> stuck_reps;
      // lint:allow(unordered-iteration) collected set is sorted just below
      for (const auto& [rep, members] : rings_) {
        if (!scheduled[rep]) stuck_reps.push_back(rep);
      }
      std::sort(stuck_reps.begin(), stuck_reps.end());
      for (Var rep : stuck_reps) {
        std::vector<Var>& members = rings_.at(rep);
        std::vector<Var> keep;
        for (Var m : members) {
          if (scheduled[m]) {
            keep.push_back(m);
          } else {
            repr_[m] = make_lit(m);
            assert(indegree[rep] > 0);
            --indegree[rep];
            // Retire the edge itself, or m's eventual scheduling would
            // decrement indegree[rep] a second time (one erase: a fanin
            // edge onto the same target must keep its own count).
            auto edge = std::find(out[m].begin(), out[m].end(), rep);
            assert(edge != out[m].end());
            if (edge != out[m].end()) out[m].erase(edge);
            ++dropped;
            progressed = true;
          }
        }
        if (progressed) {
          members = std::move(keep);
          if (members.empty()) rings_.erase(rep);
          if (indegree[rep] == 0) ready.push(rep);
          break;
        }
      }
      assert(progressed && "schedule stuck without any ring edge to drop");
      if (!progressed) break;  // defensive: never reached on a valid AIG
      continue;
    }
    Var v = ready.top();
    ready.pop();
    if (scheduled[v]) continue;
    scheduled[v] = 1;
    order_.push_back(v);
    for (Var w : out[v]) {
      if (--indegree[w] == 0 && !scheduled[w]) ready.push(w);
    }
  }
  EM_CHECK_EXPENSIVE(check(aig));
  return dropped;
}

std::string AigChoices::check(const Aig& aig) const {
  const std::size_t n = aig.num_nodes();
  auto var_str = [](Var v) { return std::to_string(v); };
  if (repr_.size() != n) {
    return "repr covers " + std::to_string(repr_.size()) +
           " variables but the AIG has " + std::to_string(n);
  }
  std::vector<std::uint8_t> role(n, 0);  // 0 plain, 1 rep, 2 alt
  // lint:allow(unordered-iteration) per-variable slot writes; error-path only
  for (const auto& [rep, members] : rings_) {
    if (rep >= n) return "ring representative " + var_str(rep) + " out of range";
    if (members.empty()) return "representative " + var_str(rep) + ": empty ring stored";
    if (role[rep] != 0) {
      return "variable " + var_str(rep) + " plays two ring roles";
    }
    role[rep] = 1;
  }
  // lint:allow(unordered-iteration) per-variable slot writes; error-path only
  for (const auto& [rep, members] : rings_) {
    for (Var m : members) {
      if (m >= n) {
        return "ring member " + var_str(m) + " (representative " +
               var_str(rep) + ") out of range";
      }
      if (role[m] != 0) {
        return "variable " + var_str(m) + " plays two ring roles";
      }
      role[m] = 2;
      if (lit_var(repr_[m]) != rep) {
        return "ring member " + var_str(m) + ": repr literal aims at variable " +
               var_str(lit_var(repr_[m])) + ", not its representative " +
               var_str(rep);
      }
    }
  }
  for (Var v = 0; v < n; ++v) {
    if (role[v] == 2) continue;
    if (repr_[v] != make_lit(v)) {
      return "non-member variable " + var_str(v) +
             " with a non-identity repr literal";
    }
  }
  if (order_.size() != n) {
    return "order schedules " + std::to_string(order_.size()) + " of " +
           std::to_string(n) + " variables (not a permutation)";
  }
  std::vector<std::uint32_t> pos(n, 0);
  std::vector<std::uint8_t> seen(n, 0);
  for (std::uint32_t i = 0; i < order_.size(); ++i) {
    Var v = order_[i];
    if (v >= n || seen[v]) {
      return "order slot " + std::to_string(i) +
             " repeats or overruns with variable " + var_str(v);
    }
    seen[v] = 1;
    pos[v] = i;
  }
  for (Var v = 1; v < n; ++v) {
    if (!aig.is_and(v)) continue;
    if (pos[lit_var(aig.fanin0(v))] >= pos[v] ||
        pos[lit_var(aig.fanin1(v))] >= pos[v]) {
      return "order schedules node " + var_str(v) + " before a fanin";
    }
  }
  // lint:allow(unordered-iteration) error-path only, on corrupt annotations
  for (const auto& [rep, members] : rings_) {
    for (Var m : members) {
      if (pos[m] >= pos[rep]) {
        return "order schedules representative " + var_str(rep) +
               " before its ring member " + var_str(m);
      }
    }
  }
  return "";
}

ChoiceAig ChoiceAig::from_plain(const Aig& aig) {
  ChoiceAig result;
  result.aig = aig;
  result.choices = AigChoices(result.aig.num_nodes());
  result.choices.finalize(result.aig);
  return result;
}

}  // namespace emorphic
