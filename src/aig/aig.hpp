#pragma once
// And-Inverter Graph (AIG): the subject-graph representation used throughout
// E-morphic, mirroring ABC's AIG package.
//
// Conventions (the ABC ones):
//  * a variable `Var` is a node index; variable 0 is the constant-0 node;
//  * a literal `Lit` is 2*var + complement, so literal 0 is constant false
//    and literal 1 is constant true;
//  * AND nodes are created through `make_and`, which performs constant
//    propagation and structural hashing (strashing), so the graph is always
//    structurally canonical;
//  * node indices are topologically ordered by construction: a node's fanins
//    always have smaller indices.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace emorphic {

using Var = std::uint32_t;
using Lit = std::uint32_t;

namespace check {
struct CheckProbe;  // corruption-seeding seam for validator tests
}  // namespace check

inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;

inline constexpr Lit make_lit(Var v, bool complement = false) {
  return (v << 1) | static_cast<Lit>(complement);
}
inline constexpr Var lit_var(Lit l) { return l >> 1; }
inline constexpr bool lit_is_compl(Lit l) { return (l & 1) != 0; }
inline constexpr Lit lit_not(Lit l) { return l ^ 1; }
inline constexpr Lit lit_notcond(Lit l, bool c) {
  return l ^ static_cast<Lit>(c);
}
inline constexpr Lit lit_regular(Lit l) { return l & ~1u; }

/// And-Inverter Graph with structural hashing.
class Aig {
 public:
  enum class NodeType : std::uint8_t { kConst0, kPi, kAnd };

  Aig();

  /// Create a primary input; returns its variable.
  Var add_pi(std::string name = "");

  /// Register a primary output driven by `lit`; returns the PO index.
  std::uint32_t add_po(Lit lit, std::string name = "");

  /// Strashed AND with constant propagation:
  ///   and(0,x)=0, and(1,x)=x, and(x,x)=x, and(x,!x)=0.
  Lit make_and(Lit a, Lit b);

  // Derived connectives, all lowered onto AND/NOT.
  Lit make_or(Lit a, Lit b) { return lit_not(make_and(lit_not(a), lit_not(b))); }
  Lit make_nand(Lit a, Lit b) { return lit_not(make_and(a, b)); }
  Lit make_nor(Lit a, Lit b) { return make_and(lit_not(a), lit_not(b)); }
  Lit make_xor(Lit a, Lit b) {
    return make_or(make_and(a, lit_not(b)), make_and(lit_not(a), b));
  }
  Lit make_xnor(Lit a, Lit b) { return lit_not(make_xor(a, b)); }
  /// if s then t else e
  Lit make_mux(Lit s, Lit t, Lit e) {
    return make_or(make_and(s, t), make_and(lit_not(s), e));
  }
  Lit make_maj(Lit a, Lit b, Lit c) {
    return make_or(make_and(a, b), make_or(make_and(a, c), make_and(b, c)));
  }

  /// Build a conjunction (balanced) over a list of literals. Empty -> true.
  Lit make_and_n(std::vector<Lit> lits);
  /// Build a disjunction (balanced) over a list of literals. Empty -> false.
  Lit make_or_n(std::vector<Lit> lits);

  // --- structure queries -------------------------------------------------
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint32_t num_pis() const {
    return static_cast<std::uint32_t>(pis_.size());
  }
  std::uint32_t num_pos() const {
    return static_cast<std::uint32_t>(pos_.size());
  }
  /// Number of AND nodes — the paper's (and ABC's) "size" metric.
  std::uint32_t num_ands() const { return num_ands_; }

  NodeType type(Var v) const { return nodes_[v].type; }
  bool is_const0(Var v) const { return v == 0; }
  bool is_pi(Var v) const { return nodes_[v].type == NodeType::kPi; }
  bool is_and(Var v) const { return nodes_[v].type == NodeType::kAnd; }

  Lit fanin0(Var v) const { return nodes_[v].fanin0; }
  Lit fanin1(Var v) const { return nodes_[v].fanin1; }

  const std::vector<Var>& pis() const { return pis_; }
  const std::vector<Lit>& pos() const { return pos_; }
  Lit po(std::uint32_t i) const { return pos_[i]; }
  /// Replace the driver of PO `i` (used by optimization passes).
  void set_po(std::uint32_t i, Lit lit) { pos_[i] = lit; }

  const std::string& pi_name(std::uint32_t i) const { return pi_names_[i]; }
  const std::string& po_name(std::uint32_t i) const { return po_names_[i]; }
  /// Index of the PI among pis() for a PI variable.
  std::uint32_t pi_index(Var v) const { return nodes_[v].fanin0; }

  // --- analyses ------------------------------------------------------------
  /// Per-variable logic level: PIs/const at 0, AND = 1 + max(fanins).
  std::vector<std::uint32_t> levels() const;
  /// Depth of the graph: max level over POs ("lev" in Table II).
  std::uint32_t num_levels() const;
  /// Number of fanouts of each variable (POs count as fanouts).
  std::vector<std::uint32_t> fanout_counts() const;

  /// Mark the transitive fanin cone of `root` (root included) in `mark`,
  /// which must be sized num_nodes(); already-marked nodes stop the
  /// descent, so repeated calls accumulate a union of cones cheaply.
  void mark_cone(Var root, std::vector<std::uint8_t>& mark) const;
  /// mark[v] = 1 iff v lies in the transitive fanin cone of some PO —
  /// i.e. v is live logic. Shared by the mapper's area-flow reference
  /// estimate and the choice export's compaction.
  std::vector<std::uint8_t> po_reachable() const;

  /// Variables in topological order (which is just index order).
  /// Provided for readability at call sites.
  std::vector<Var> topo_order() const;

  /// Dead-node elimination: rebuild keeping only the cone of the POs.
  /// Also re-strashes, so it doubles as ABC's `st`(rash) on an AIG.
  Aig cleanup() const;

  /// Rebuild with node substitutions: every use of variable `v` (fanins and
  /// POs, complement carried through) is redirected to `replacement[v]`
  /// whenever that differs from `make_lit(v)`. Each replacement literal must
  /// be over a strictly smaller variable, so chains resolve and the result
  /// stays acyclic — the contract of SAT sweeping, where a node merges into
  /// the earliest proven-equivalent representative (possibly complemented).
  /// Re-strashes and drops nodes that dangle after the redirection.
  Aig substitute(const std::vector<Lit>& replacement) const;

  /// Deep-copy the PI/PO interface (names included) without any logic.
  /// Useful when rebuilding a circuit from an e-graph.
  static Aig like(const Aig& proto);

 private:
  friend struct check::CheckProbe;

  struct Node {
    NodeType type = NodeType::kConst0;
    Lit fanin0 = 0;  // for kPi: index into pis_
    Lit fanin1 = 0;
  };

  static std::uint64_t and_key(Lit a, Lit b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::vector<Node> nodes_;
  std::vector<Var> pis_;
  std::vector<Lit> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<std::uint64_t, Var> strash_;
  std::uint32_t num_ands_ = 0;
};

}  // namespace emorphic
