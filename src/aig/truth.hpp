#pragma once
// Truth-table kernel for small functions (up to 6 inputs in one 64-bit word)
// plus NPN canonicalization for functions of up to 4 inputs.
//
// Truth tables drive three substrates of the reproduction:
//  * k-feasible cut functions (cut.hpp),
//  * ISOP/SOP extraction for refactoring and SOP balancing (opt/sop.hpp),
//  * Boolean matching of cuts against standard cells (mapper/matcher.hpp).
//
// Convention: bit m of the table is the function value on the minterm whose
// i-th input equals bit i of m. `tt_mask(n)` keeps only the 2^n valid bits.

#include <array>
#include <cstdint>
#include <string>

namespace emorphic {

using Tt = std::uint64_t;

/// Bit mask of the valid truth-table bits for an n-input function (n <= 6).
inline constexpr Tt tt_mask(unsigned n) {
  return n >= 6 ? ~0ull : ((1ull << (1u << n)) - 1);
}

/// Projection of input variable `i` within an n-input domain.
Tt tt_var(unsigned i, unsigned n);

inline Tt tt_not(Tt t, unsigned n) { return ~t & tt_mask(n); }

/// Does the function depend on input `i`?
bool tt_depends_on(Tt t, unsigned i, unsigned n);

/// Positive / negative cofactor w.r.t. input `i` (result still n-input).
Tt tt_cofactor1(Tt t, unsigned i, unsigned n);
Tt tt_cofactor0(Tt t, unsigned i, unsigned n);

/// Number of minterms (ones) of an n-input function.
unsigned tt_count_ones(Tt t, unsigned n);

/// Re-express a function of `n_small` inputs over a larger support:
/// `pos[i]` is the position of old input `i` in the new n_big-input domain.
Tt tt_expand(Tt t, unsigned n_small, unsigned n_big, const std::array<std::uint8_t, 6>& pos);

/// Human-readable binary string (most significant minterm first).
std::string tt_to_string(Tt t, unsigned n);

// ---------------------------------------------------------------------------
// NPN canonicalization (n <= 4).
//
// A transform T = (perm, input_phase, output_phase) acts on f as
//   (T.f)(x_0..x_3) = f(z_0..z_3) ^ output_phase,   z_j = x_{perm[j]} ^ phase_j
// i.e. input j of the original function is driven by (possibly complemented)
// new variable perm[j]. Transforms compose and invert; `npn_canon` returns
// the lexicographically smallest table over all 24 * 16 * 2 transforms.
// ---------------------------------------------------------------------------

struct NpnTransform {
  std::array<std::uint8_t, 4> perm{{0, 1, 2, 3}};
  std::uint8_t input_phase = 0;  // bit j: input j of the function complemented
  bool output_phase = false;

  static NpnTransform identity() { return NpnTransform{}; }
};

/// Apply a transform to a 4-input truth table (tables use tt_mask(4)).
Tt npn_apply(Tt t, const NpnTransform& tr);

/// Compose: result acts as `second` after `first` (result.f == second.(first.f)).
NpnTransform npn_compose(const NpnTransform& second, const NpnTransform& first);

/// Inverse transform: npn_apply(npn_apply(t, tr), npn_inverse(tr)) == t.
NpnTransform npn_inverse(const NpnTransform& tr);

/// Canonical representative and the transform that produced it:
/// canon == npn_apply(t, *out_transform).
Tt npn_canon(Tt t, NpnTransform* out_transform = nullptr);

}  // namespace emorphic
