#pragma once
// Bit-parallel random simulation of AIGs: 64 input patterns per word.
//
// Used by the equivalence checker as a cheap refutation front-end before
// SAT (Sec. IV-A verifies every E-morphic output with ABC `cec`; our `cec`
// plays the same role), and by tests as a functional fingerprint.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace emorphic {

/// Simulate with one 64-bit word per PI; returns one word per variable.
std::vector<std::uint64_t> simulate_words(const Aig& aig,
                                          const std::vector<std::uint64_t>& pi_words);

/// Simulate `num_words` random words and return the PO values,
/// laid out as po-major: result[po * num_words + w].
std::vector<std::uint64_t> po_signature(const Aig& aig, Rng& rng,
                                        unsigned num_words);

/// Monte-Carlo equivalence: identical PO signatures on random patterns.
/// A `false` result is a definitive counterexample; `true` is only
/// probabilistic (follow up with SAT-based cec for proof).
bool sim_probably_equal(const Aig& a, const Aig& b, Rng& rng,
                        unsigned num_words = 16);

/// Exhaustive truth table of PO `po` for circuits with <= 6 PIs.
std::uint64_t exhaustive_tt(const Aig& aig, unsigned po);

}  // namespace emorphic
