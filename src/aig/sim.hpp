#pragma once
// Bit-parallel random simulation of AIGs: 64 input patterns per word.
//
// Used by the equivalence checker as a cheap refutation front-end before
// SAT (Sec. IV-A verifies every E-morphic output with ABC `cec`; our `cec`
// plays the same role), and by tests as a functional fingerprint.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace emorphic {

class ThreadPool;

/// Simulate with one 64-bit word per PI; returns one word per variable.
std::vector<std::uint64_t> simulate_words(const Aig& aig,
                                          const std::vector<std::uint64_t>& pi_words);

/// Multi-word simulation, node-major result: value of variable `v` under
/// word `w` is `result[v * num_words + w]`. `pi_words` uses the same layout
/// over PI indices (`pi_words[pi * num_words + w]`). Each 64-pattern word
/// column is independent, so with a `pool` the word range is fanned out
/// across its workers (the fraig engine's parallel random simulation); the
/// result is bit-identical however many workers run.
std::vector<std::uint64_t> simulate_words_multi(
    const Aig& aig, const std::vector<std::uint64_t>& pi_words,
    unsigned num_words, ThreadPool* pool = nullptr);

/// Expand one concrete input assignment into a 64-pattern word per PI:
/// bit 0 replays the assignment exactly, bits 1..63 are random neighbors
/// (each PI flipped with probability `flip_p`). Replaying a refuting SAT
/// assignment through this provably splits the two refuted nodes' simulation
/// signatures (bit 0 distinguishes them), and the neighbor patterns let one
/// counterexample split further near-miss candidate pairs as well.
std::vector<std::uint64_t> expand_pattern(const std::vector<bool>& pattern,
                                          Rng& rng, double flip_p = 0.05);

/// Simulate `num_words` random words and return the PO values,
/// laid out as po-major: result[po * num_words + w].
std::vector<std::uint64_t> po_signature(const Aig& aig, Rng& rng,
                                        unsigned num_words);

/// Monte-Carlo equivalence: identical PO signatures on random patterns.
/// A `false` result is a definitive counterexample; `true` is only
/// probabilistic (follow up with SAT-based cec for proof).
bool sim_probably_equal(const Aig& a, const Aig& b, Rng& rng,
                        unsigned num_words = 16);

/// Exhaustive truth table of PO `po` for circuits with <= 6 PIs.
std::uint64_t exhaustive_tt(const Aig& aig, unsigned po);

}  // namespace emorphic
