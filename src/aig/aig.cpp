#include "aig/aig.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "check/check.hpp"
#include "check/validators.hpp"

namespace emorphic {

Aig::Aig() {
  nodes_.push_back(Node{NodeType::kConst0, 0, 0});  // variable 0
}

Var Aig::add_pi(std::string name) {
  Var v = static_cast<Var>(nodes_.size());
  Node node;
  node.type = NodeType::kPi;
  node.fanin0 = static_cast<Lit>(pis_.size());
  nodes_.push_back(node);
  pis_.push_back(v);
  if (name.empty()) name = "pi" + std::to_string(pis_.size() - 1);
  pi_names_.push_back(std::move(name));
  return v;
}

std::uint32_t Aig::add_po(Lit lit, std::string name) {
  EM_ASSERT(lit_var(lit) < nodes_.size(),
            "add_po: literal over dead variable " +
                std::to_string(lit_var(lit)));
  std::uint32_t index = static_cast<std::uint32_t>(pos_.size());
  pos_.push_back(lit);
  if (name.empty()) name = "po" + std::to_string(index);
  po_names_.push_back(std::move(name));
  return index;
}

Lit Aig::make_and(Lit a, Lit b) {
  EM_ASSERT(lit_var(a) < nodes_.size() && lit_var(b) < nodes_.size(),
            "make_and: fanin literal over dead variable " +
                std::to_string(std::max(lit_var(a), lit_var(b))));
  // Constant propagation.
  if (a == kLitFalse || b == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (b == kLitTrue) return a;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  // Canonical operand order for strashing.
  if (a > b) std::swap(a, b);
  std::uint64_t key = and_key(a, b);
  auto it = strash_.find(key);
  if (it != strash_.end()) return make_lit(it->second);
  Var v = static_cast<Var>(nodes_.size());
  Node node;
  node.type = NodeType::kAnd;
  node.fanin0 = a;
  node.fanin1 = b;
  nodes_.push_back(node);
  strash_.emplace(key, v);
  ++num_ands_;
  return make_lit(v);
}

Lit Aig::make_and_n(std::vector<Lit> lits) {
  if (lits.empty()) return kLitTrue;
  // Balanced reduction keeps depth logarithmic in the operand count.
  while (lits.size() > 1) {
    std::vector<Lit> next;
    next.reserve((lits.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
      next.push_back(make_and(lits[i], lits[i + 1]));
    }
    if (lits.size() % 2 == 1) next.push_back(lits.back());
    lits = std::move(next);
  }
  return lits[0];
}

Lit Aig::make_or_n(std::vector<Lit> lits) {
  for (auto& l : lits) l = lit_not(l);
  return lit_not(make_and_n(std::move(lits)));
}

std::vector<std::uint32_t> Aig::levels() const {
  std::vector<std::uint32_t> level(nodes_.size(), 0);
  for (Var v = 1; v < nodes_.size(); ++v) {
    if (nodes_[v].type != NodeType::kAnd) continue;
    level[v] = 1 + std::max(level[lit_var(nodes_[v].fanin0)],
                            level[lit_var(nodes_[v].fanin1)]);
  }
  return level;
}

std::uint32_t Aig::num_levels() const {
  auto level = levels();
  std::uint32_t depth = 0;
  for (Lit po : pos_) depth = std::max(depth, level[lit_var(po)]);
  return depth;
}

std::vector<std::uint32_t> Aig::fanout_counts() const {
  std::vector<std::uint32_t> count(nodes_.size(), 0);
  for (Var v = 1; v < nodes_.size(); ++v) {
    if (nodes_[v].type != NodeType::kAnd) continue;
    ++count[lit_var(nodes_[v].fanin0)];
    ++count[lit_var(nodes_[v].fanin1)];
  }
  for (Lit po : pos_) ++count[lit_var(po)];
  return count;
}

void Aig::mark_cone(Var root, std::vector<std::uint8_t>& mark) const {
  std::vector<Var> stack{root};
  while (!stack.empty()) {
    Var v = stack.back();
    stack.pop_back();
    if (mark[v]) continue;
    mark[v] = 1;
    if (nodes_[v].type == NodeType::kAnd) {
      stack.push_back(lit_var(nodes_[v].fanin0));
      stack.push_back(lit_var(nodes_[v].fanin1));
    }
  }
}

std::vector<std::uint8_t> Aig::po_reachable() const {
  std::vector<std::uint8_t> mark(nodes_.size(), 0);
  for (Lit po : pos_) mark_cone(lit_var(po), mark);
  return mark;
}

std::vector<Var> Aig::topo_order() const {
  std::vector<Var> order;
  order.reserve(nodes_.size() - 1);
  for (Var v = 1; v < nodes_.size(); ++v) order.push_back(v);
  return order;
}

Aig Aig::cleanup() const {
  Aig out = Aig::like(*this);
  // old variable -> new literal (identity on complementation handled below)
  std::vector<Lit> map(nodes_.size(), kLitFalse);
  map[0] = kLitFalse;
  for (std::uint32_t i = 0; i < pis_.size(); ++i) {
    map[pis_[i]] = make_lit(out.pis()[i]);
  }
  // Mark the cone of the POs.
  std::vector<bool> used(nodes_.size(), false);
  for (Lit po : pos_) used[lit_var(po)] = true;
  for (Var v = static_cast<Var>(nodes_.size()) - 1; v >= 1; --v) {
    if (!used[v] || nodes_[v].type != NodeType::kAnd) continue;
    used[lit_var(nodes_[v].fanin0)] = true;
    used[lit_var(nodes_[v].fanin1)] = true;
  }
  // Rebuild in topological order (re-strashes as it goes).
  for (Var v = 1; v < nodes_.size(); ++v) {
    if (!used[v] || nodes_[v].type != NodeType::kAnd) continue;
    Lit a = map[lit_var(nodes_[v].fanin0)];
    Lit b = map[lit_var(nodes_[v].fanin1)];
    a = lit_notcond(a, lit_is_compl(nodes_[v].fanin0));
    b = lit_notcond(b, lit_is_compl(nodes_[v].fanin1));
    map[v] = out.make_and(a, b);
  }
  for (std::uint32_t i = 0; i < pos_.size(); ++i) {
    Lit po = pos_[i];
    out.set_po(i, lit_notcond(map[lit_var(po)], lit_is_compl(po)));
  }
  EM_CHECK_EXPENSIVE(check::check_aig(out));
  return out;
}

Aig Aig::substitute(const std::vector<Lit>& replacement) const {
  EM_ASSERT(replacement.size() == nodes_.size(),
            "substitute: replacement map covers " +
                std::to_string(replacement.size()) + " of " +
                std::to_string(nodes_.size()) + " variables");
  Aig out = Aig::like(*this);
  // old variable -> literal in `out`, with replacements resolved. A forward
  // pass suffices: replacement literals point at smaller variables, whose
  // map entries are already final.
  std::vector<Lit> map(nodes_.size(), kLitFalse);
  map[0] = kLitFalse;
  auto translate = [&map](Lit l) {
    return lit_notcond(map[lit_var(l)], lit_is_compl(l));
  };
  for (Var v = 1; v < nodes_.size(); ++v) {
    if (replacement[v] != make_lit(v)) {
      EM_ASSERT(lit_var(replacement[v]) < v,
                "substitute: replacement for variable " + std::to_string(v) +
                    " aims at a larger variable (cycle)");
      map[v] = translate(replacement[v]);
      continue;
    }
    if (nodes_[v].type == NodeType::kPi) {
      map[v] = make_lit(out.pis()[nodes_[v].fanin0]);
    } else {
      map[v] = out.make_and(translate(nodes_[v].fanin0),
                            translate(nodes_[v].fanin1));
    }
  }
  for (std::uint32_t i = 0; i < pos_.size(); ++i) {
    out.set_po(i, translate(pos_[i]));
  }
  // The unconditional forward pass rebuilt nodes whose fanouts were all
  // redirected away; drop those dangling cones.
  return out.cleanup();
}

Aig Aig::like(const Aig& proto) {
  Aig out;
  for (std::uint32_t i = 0; i < proto.num_pis(); ++i) {
    out.add_pi(proto.pi_name(i));
  }
  for (std::uint32_t i = 0; i < proto.num_pos(); ++i) {
    out.add_po(kLitFalse, proto.po_name(i));
  }
  return out;
}

}  // namespace emorphic
