#include "aig/aig_io.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace emorphic {

// ---------------------------------------------------------------------------
// Equation format
// ---------------------------------------------------------------------------

std::string write_equations(const Aig& aig) {
  std::ostringstream out;
  out << "INORDER =";
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    out << ' ' << aig.pi_name(i);
  }
  out << ";\n";
  out << "OUTORDER =";
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    out << ' ' << aig.po_name(i);
  }
  out << ";\n";

  auto lit_name = [&](Lit l) -> std::string {
    std::string base;
    Var v = lit_var(l);
    if (aig.is_const0(v)) {
      return lit_is_compl(l) ? "1" : "0";
    }
    if (aig.is_pi(v)) {
      base = aig.pi_name(aig.pi_index(v));
    } else {
      base = "n" + std::to_string(v);
    }
    return lit_is_compl(l) ? "!" + base : base;
  };

  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    out << 'n' << v << " = " << lit_name(aig.fanin0(v)) << " & "
        << lit_name(aig.fanin1(v)) << ";\n";
  }
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    out << aig.po_name(i) << " = " << lit_name(aig.po(i)) << ";\n";
  }
  return out.str();
}

namespace {

// Recursive-descent parser for the expression grammar:
//   expr   := term ( ('|' | '^') term )*
//   term   := factor ( '&' factor )*
//   factor := '!' factor | '(' expr ')' | name | '0' | '1'
class EquationParser {
 public:
  EquationParser(const std::string& text, Aig& aig) : text_(text), aig_(aig) {}

  void run() {
    while (skip_ws(), pos_ < text_.size()) {
      parse_statement();
    }
    // Resolve POs now that every name is defined.
    for (const auto& [name, index] : po_order_) {
      auto it = defs_.find(name);
      if (it == defs_.end()) {
        throw std::runtime_error("equation format: undefined output " + name);
      }
      aig_.set_po(index, it->second);
    }
  }

 private:
  void parse_statement() {
    std::string name = parse_name();
    skip_ws();
    expect('=');
    if (name == "INORDER") {
      while (skip_ws(), peek() != ';') {
        std::string pi = parse_name();
        Var v = aig_.add_pi(pi);
        defs_[pi] = make_lit(v);
      }
      expect(';');
    } else if (name == "OUTORDER") {
      while (skip_ws(), peek() != ';') {
        std::string po = parse_name();
        po_order_.emplace_back(po, aig_.add_po(kLitFalse, po));
      }
      expect(';');
    } else {
      Lit value = parse_expr();
      skip_ws();
      expect(';');
      defs_[name] = value;
    }
  }

  Lit parse_expr() {
    Lit acc = parse_term();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        acc = aig_.make_or(acc, parse_term());
      } else if (pos_ < text_.size() && text_[pos_] == '^') {
        ++pos_;
        acc = aig_.make_xor(acc, parse_term());
      } else {
        return acc;
      }
    }
  }

  Lit parse_term() {
    Lit acc = parse_factor();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '&') {
        ++pos_;
        acc = aig_.make_and(acc, parse_factor());
      } else {
        return acc;
      }
    }
  }

  Lit parse_factor() {
    skip_ws();
    char c = peek();
    if (c == '!') {
      ++pos_;
      return lit_not(parse_factor());
    }
    if (c == '(') {
      ++pos_;
      Lit inner = parse_expr();
      skip_ws();
      expect(')');
      return inner;
    }
    std::string name = parse_name();
    if (name == "0") return kLitFalse;
    if (name == "1") return kLitTrue;
    auto it = defs_.find(name);
    if (it == defs_.end()) {
      throw std::runtime_error("equation format: undefined signal " + name);
    }
    return it->second;
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '[' || c == ']' || c == '.';
  }

  std::string parse_name() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) ++pos_;
    if (pos_ == start) {
      throw std::runtime_error("equation format: expected name at offset " +
                               std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  void skip_ws() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      // '#' comments to end of line
      if (pos_ < text_.size() && text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("equation format: unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("equation format: expected '") + c +
                               "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  const std::string& text_;
  Aig& aig_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, Lit> defs_;
  std::vector<std::pair<std::string, std::uint32_t>> po_order_;
};

}  // namespace

Aig read_equations(const std::string& text) {
  Aig aig;
  EquationParser(text, aig).run();
  return aig;
}

// ---------------------------------------------------------------------------
// ASCII AIGER
// ---------------------------------------------------------------------------

std::string write_aiger(const Aig& aig) {
  // AIGER requires PIs first, then ANDs; our variable numbering already
  // guarantees topological order, but PIs may interleave with ANDs, so remap.
  std::vector<std::uint32_t> var_to_aiger(aig.num_nodes(), 0);
  std::uint32_t next = 1;
  for (Var v : aig.pis()) var_to_aiger[v] = next++;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_and(v)) var_to_aiger[v] = next++;
  }
  auto to_aiger_lit = [&](Lit l) {
    return 2 * var_to_aiger[lit_var(l)] + (lit_is_compl(l) ? 1u : 0u);
  };

  std::ostringstream out;
  std::uint32_t m = aig.num_pis() + aig.num_ands();
  out << "aag " << m << ' ' << aig.num_pis() << " 0 " << aig.num_pos() << ' '
      << aig.num_ands() << "\n";
  for (Var v : aig.pis()) out << 2 * var_to_aiger[v] << "\n";
  for (Lit po : aig.pos()) out << to_aiger_lit(po) << "\n";
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    out << 2 * var_to_aiger[v] << ' ' << to_aiger_lit(aig.fanin0(v)) << ' '
        << to_aiger_lit(aig.fanin1(v)) << "\n";
  }
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    out << 'i' << i << ' ' << aig.pi_name(i) << "\n";
  }
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    out << 'o' << i << ' ' << aig.po_name(i) << "\n";
  }
  return out.str();
}

Aig read_aiger(const std::string& text) {
  // Server-hardened parser: every malformed input — truncated header,
  // non-numeric tokens, out-of-range or odd literals, oversized declared
  // counts, literals used before definition — throws std::runtime_error.
  // One bad client request must never assert, allocate absurdly, or index
  // out of bounds.
  std::istringstream in(text);
  std::string magic;
  if (!(in >> magic)) throw std::runtime_error("aiger: empty input");
  if (magic != "aag") throw std::runtime_error("aiger: expected 'aag' header");
  std::uint64_t m = 0, i = 0, l = 0, o = 0, a = 0;
  if (!(in >> m >> i >> l >> o >> a)) {
    throw std::runtime_error("aiger: truncated or non-numeric header");
  }
  if (l != 0) throw std::runtime_error("aiger: latches not supported");
  if (i + a > m) {
    throw std::runtime_error(
        "aiger: header counts exceed declared maximum index");
  }
  // Every declared variable needs at least two characters of body text
  // ("0\n"), so declared counts beyond the input size are lies — reject
  // them before sizing any allocation off attacker-controlled numbers.
  if (m > text.size() || o > text.size()) {
    throw std::runtime_error("aiger: declared counts exceed input size");
  }

  Aig aig;
  const std::uint64_t max_lit = 2 * m + 1;
  std::vector<Lit> map(2 * (m + 1), kLitFalse);
  std::vector<bool> defined(2 * (m + 1), false);
  map[0] = kLitFalse;
  map[1] = kLitTrue;
  defined[0] = defined[1] = true;

  auto read_lit = [&](const char* section) -> std::uint64_t {
    std::uint64_t lit = 0;
    if (!(in >> lit)) {
      throw std::runtime_error(std::string("aiger: truncated or non-numeric ") +
                               section + " section");
    }
    if (lit > max_lit) {
      throw std::runtime_error("aiger: literal " + std::to_string(lit) +
                               " out of range (max " +
                               std::to_string(max_lit) + ")");
    }
    return lit;
  };

  for (std::uint64_t k = 0; k < i; ++k) {
    std::uint64_t lit = read_lit("input");
    if (lit < 2 || (lit & 1) != 0) {
      throw std::runtime_error("aiger: invalid input literal " +
                               std::to_string(lit));
    }
    if (defined[lit]) {
      throw std::runtime_error("aiger: literal " + std::to_string(lit) +
                               " defined twice");
    }
    Var v = aig.add_pi();
    map[lit] = make_lit(v);
    map[lit ^ 1] = lit_not(make_lit(v));
    defined[lit] = defined[lit ^ 1] = true;
  }

  std::vector<std::uint64_t> po_lits(o);
  for (auto& lit : po_lits) lit = read_lit("output");

  for (std::uint64_t k = 0; k < a; ++k) {
    std::uint64_t out_lit = read_lit("and");
    std::uint64_t in0 = read_lit("and");
    std::uint64_t in1 = read_lit("and");
    if (out_lit < 2 || (out_lit & 1) != 0) {
      throw std::runtime_error("aiger: invalid AND output literal " +
                               std::to_string(out_lit));
    }
    if (defined[out_lit]) {
      throw std::runtime_error("aiger: literal " + std::to_string(out_lit) +
                               " defined twice");
    }
    if (!defined[in0] || !defined[in1]) {
      throw std::runtime_error(
          "aiger: AND fanin used before definition (literal " +
          std::to_string(!defined[in0] ? in0 : in1) + ")");
    }
    Lit f = aig.make_and(map[in0], map[in1]);
    map[out_lit] = f;
    map[out_lit ^ 1] = lit_not(f);
    defined[out_lit] = defined[out_lit ^ 1] = true;
  }
  for (std::uint64_t lit : po_lits) {
    if (!defined[lit]) {
      throw std::runtime_error("aiger: undefined output literal " +
                               std::to_string(lit));
    }
    aig.add_po(map[lit]);
  }
  return aig;
}

// ---------------------------------------------------------------------------
// Binary AIGER
// ---------------------------------------------------------------------------

namespace {

// AIGER's delta encoding is LEB128: 7 payload bits per byte, high bit set
// on every byte but the last.
void put_delta(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

// Strict decimal parse of a whole token: nonempty, digits only, no overflow.
std::uint64_t parse_u64(const std::string& token, const char* what) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || token.empty()) {
    throw std::runtime_error(std::string("aiger binary: malformed ") + what +
                             " '" + token + "'");
  }
  return value;
}

}  // namespace

std::string write_aiger_binary(const Aig& aig) {
  // Same PIs-first remap as write_aiger; in the binary format the remap is
  // mandatory, since variable numbering must be contiguous (inputs 1..I,
  // ANDs I+1..I+A in definition order).
  std::vector<std::uint32_t> var_to_aiger(aig.num_nodes(), 0);
  std::uint32_t next = 1;
  for (Var v : aig.pis()) var_to_aiger[v] = next++;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_and(v)) var_to_aiger[v] = next++;
  }
  auto to_aiger_lit = [&](Lit l) -> std::uint64_t {
    return 2ull * var_to_aiger[lit_var(l)] + (lit_is_compl(l) ? 1u : 0u);
  };

  std::uint64_t m = aig.num_pis() + aig.num_ands();
  std::string out = "aig " + std::to_string(m) + ' ' +
                    std::to_string(aig.num_pis()) + " 0 " +
                    std::to_string(aig.num_pos()) + ' ' +
                    std::to_string(aig.num_ands()) + '\n';
  for (Lit po : aig.pos()) {
    out += std::to_string(to_aiger_lit(po));
    out += '\n';
  }
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    std::uint64_t lhs = 2ull * var_to_aiger[v];
    std::uint64_t rhs0 = to_aiger_lit(aig.fanin0(v));
    std::uint64_t rhs1 = to_aiger_lit(aig.fanin1(v));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);
    // Fanins remap below their AND (PIs <= I, earlier ANDs earlier), so
    // lhs > rhs0 >= rhs1 as the format requires.
    put_delta(out, lhs - rhs0);
    put_delta(out, rhs0 - rhs1);
  }
  for (std::uint32_t k = 0; k < aig.num_pis(); ++k) {
    out += 'i' + std::to_string(k) + ' ' + aig.pi_name(k) + '\n';
  }
  for (std::uint32_t k = 0; k < aig.num_pos(); ++k) {
    out += 'o' + std::to_string(k) + ' ' + aig.po_name(k) + '\n';
  }
  return out;
}

Aig read_aiger_binary(const std::string& bytes) {
  // Hardened to the same standard as read_aiger: truncation, fabricated
  // counts, malformed varints, and out-of-range deltas all throw
  // std::runtime_error before any allocation is sized off them. Unlike
  // read_aiger, the symbol table is parsed and PI/PO names preserved —
  // partition checkpoints rely on names surviving the round trip.
  std::size_t pos = 0;
  auto read_line = [&](const char* section) -> std::string {
    std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      throw std::runtime_error(
          std::string("aiger binary: truncated (no newline) in ") + section);
    }
    std::string line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  // Header: exactly "aig M I L O A".
  {
    std::istringstream hdr(read_line("header"));
    std::string tok;
    std::vector<std::string> tokens;
    while (hdr >> tok) tokens.push_back(tok);
    if (tokens.size() != 6 || tokens[0] != "aig") {
      throw std::runtime_error("aiger binary: expected 'aig M I L O A' header");
    }
    std::uint64_t m = parse_u64(tokens[1], "header count");
    std::uint64_t i = parse_u64(tokens[2], "header count");
    std::uint64_t l = parse_u64(tokens[3], "header count");
    std::uint64_t o = parse_u64(tokens[4], "header count");
    std::uint64_t a = parse_u64(tokens[5], "header count");
    if (l != 0) throw std::runtime_error("aiger binary: latches not supported");
    if (m != i + a) {
      throw std::runtime_error(
          "aiger binary: variable numbering must be contiguous (M == I + A)");
    }
    // Our writer emits a symbol line per PI and every AND takes two delta
    // bytes, so declared counts beyond the input size are fabricated —
    // reject them before sizing any allocation off them.
    if (m > bytes.size() || o > bytes.size()) {
      throw std::runtime_error("aiger binary: declared counts exceed input size");
    }
    if (m >= (1ull << 31)) {
      throw std::runtime_error("aiger binary: variable count out of range");
    }

    Aig aig;
    const std::uint64_t max_lit = 2 * m + 1;
    std::vector<std::uint64_t> po_lits(static_cast<std::size_t>(o));
    for (std::uint64_t k = 0; k < o; ++k) {
      std::uint64_t lit = parse_u64(read_line("output section"), "output literal");
      if (lit > max_lit) {
        throw std::runtime_error("aiger binary: output literal " +
                                 std::to_string(lit) + " out of range (max " +
                                 std::to_string(max_lit) + ")");
      }
      po_lits[static_cast<std::size_t>(k)] = lit;
    }

    auto read_delta = [&](const char* what) -> std::uint64_t {
      std::uint64_t value = 0;
      unsigned shift = 0;
      for (;;) {
        if (pos >= bytes.size()) {
          throw std::runtime_error(std::string("aiger binary: truncated ") +
                                   what);
        }
        std::uint8_t byte = static_cast<std::uint8_t>(bytes[pos++]);
        if (shift == 63 && (byte & 0x7e) != 0) {
          throw std::runtime_error(std::string("aiger binary: ") + what +
                                   " overflows");
        }
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) return value;
        shift += 7;
        if (shift > 63) {
          throw std::runtime_error(std::string("aiger binary: ") + what +
                                   " overflows");
        }
      }
    };

    // AND fanins, decoded before any node is built: the symbol table sits
    // after the binary section, and PIs must carry their names from
    // construction, so structure is staged here and built at the end.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> and_rhs(
        static_cast<std::size_t>(a));
    for (std::uint64_t k = 0; k < a; ++k) {
      std::uint64_t lhs = 2 * (i + 1 + k);
      std::uint64_t delta0 = read_delta("AND delta");
      std::uint64_t delta1 = read_delta("AND delta");
      if (delta0 == 0 || delta0 > lhs || delta1 > lhs - delta0) {
        throw std::runtime_error("aiger binary: AND " + std::to_string(lhs) +
                                 " has out-of-range deltas");
      }
      std::uint64_t rhs0 = lhs - delta0;
      and_rhs[static_cast<std::size_t>(k)] = {rhs0, rhs0 - delta1};
    }

    std::vector<std::string> pi_names(static_cast<std::size_t>(i));
    std::vector<std::string> po_names(static_cast<std::size_t>(o));
    while (pos < bytes.size()) {
      std::string line = read_line("symbol section");
      if (line == "c") break;  // comment section: ignore the rest
      if (line.empty() || (line[0] != 'i' && line[0] != 'o')) {
        throw std::runtime_error("aiger binary: malformed symbol line '" +
                                 line + "'");
      }
      std::size_t space = line.find(' ');
      if (space == std::string::npos) {
        throw std::runtime_error("aiger binary: malformed symbol line '" +
                                 line + "'");
      }
      std::uint64_t index =
          parse_u64(line.substr(1, space - 1), "symbol index");
      std::string name = line.substr(space + 1);
      if (line[0] == 'i') {
        if (index >= i) {
          throw std::runtime_error("aiger binary: input symbol index " +
                                   std::to_string(index) + " out of range");
        }
        pi_names[static_cast<std::size_t>(index)] = std::move(name);
      } else {
        if (index >= o) {
          throw std::runtime_error("aiger binary: output symbol index " +
                                   std::to_string(index) + " out of range");
        }
        po_names[static_cast<std::size_t>(index)] = std::move(name);
      }
    }

    // Build: variables 1..I are the implicit inputs, I+1..I+A the ANDs in
    // definition order. Deltas were range-checked against lhs above, so
    // every fanin variable is already defined when referenced.
    std::vector<Lit> var_lit(static_cast<std::size_t>(m) + 1, kLitFalse);
    for (std::uint64_t k = 0; k < i; ++k) {
      var_lit[static_cast<std::size_t>(k) + 1] =
          make_lit(aig.add_pi(pi_names[static_cast<std::size_t>(k)]));
    }
    auto to_lit = [&](std::uint64_t aiger_lit) -> Lit {
      return lit_notcond(var_lit[static_cast<std::size_t>(aiger_lit >> 1)],
                         (aiger_lit & 1) != 0);
    };
    for (std::uint64_t k = 0; k < a; ++k) {
      const auto& [rhs0, rhs1] = and_rhs[static_cast<std::size_t>(k)];
      var_lit[static_cast<std::size_t>(i + 1 + k)] =
          aig.make_and(to_lit(rhs0), to_lit(rhs1));
    }
    for (std::uint64_t k = 0; k < o; ++k) {
      aig.add_po(to_lit(po_lits[static_cast<std::size_t>(k)]),
                 po_names[static_cast<std::size_t>(k)]);
    }
    return aig;
  }
}

}  // namespace emorphic
