#include "aig/aig_io.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace emorphic {

// ---------------------------------------------------------------------------
// Equation format
// ---------------------------------------------------------------------------

std::string write_equations(const Aig& aig) {
  std::ostringstream out;
  out << "INORDER =";
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    out << ' ' << aig.pi_name(i);
  }
  out << ";\n";
  out << "OUTORDER =";
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    out << ' ' << aig.po_name(i);
  }
  out << ";\n";

  auto lit_name = [&](Lit l) -> std::string {
    std::string base;
    Var v = lit_var(l);
    if (aig.is_const0(v)) {
      return lit_is_compl(l) ? "1" : "0";
    }
    if (aig.is_pi(v)) {
      base = aig.pi_name(aig.pi_index(v));
    } else {
      base = "n" + std::to_string(v);
    }
    return lit_is_compl(l) ? "!" + base : base;
  };

  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    out << 'n' << v << " = " << lit_name(aig.fanin0(v)) << " & "
        << lit_name(aig.fanin1(v)) << ";\n";
  }
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    out << aig.po_name(i) << " = " << lit_name(aig.po(i)) << ";\n";
  }
  return out.str();
}

namespace {

// Recursive-descent parser for the expression grammar:
//   expr   := term ( ('|' | '^') term )*
//   term   := factor ( '&' factor )*
//   factor := '!' factor | '(' expr ')' | name | '0' | '1'
class EquationParser {
 public:
  EquationParser(const std::string& text, Aig& aig) : text_(text), aig_(aig) {}

  void run() {
    while (skip_ws(), pos_ < text_.size()) {
      parse_statement();
    }
    // Resolve POs now that every name is defined.
    for (const auto& [name, index] : po_order_) {
      auto it = defs_.find(name);
      if (it == defs_.end()) {
        throw std::runtime_error("equation format: undefined output " + name);
      }
      aig_.set_po(index, it->second);
    }
  }

 private:
  void parse_statement() {
    std::string name = parse_name();
    skip_ws();
    expect('=');
    if (name == "INORDER") {
      while (skip_ws(), peek() != ';') {
        std::string pi = parse_name();
        Var v = aig_.add_pi(pi);
        defs_[pi] = make_lit(v);
      }
      expect(';');
    } else if (name == "OUTORDER") {
      while (skip_ws(), peek() != ';') {
        std::string po = parse_name();
        po_order_.emplace_back(po, aig_.add_po(kLitFalse, po));
      }
      expect(';');
    } else {
      Lit value = parse_expr();
      skip_ws();
      expect(';');
      defs_[name] = value;
    }
  }

  Lit parse_expr() {
    Lit acc = parse_term();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        acc = aig_.make_or(acc, parse_term());
      } else if (pos_ < text_.size() && text_[pos_] == '^') {
        ++pos_;
        acc = aig_.make_xor(acc, parse_term());
      } else {
        return acc;
      }
    }
  }

  Lit parse_term() {
    Lit acc = parse_factor();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '&') {
        ++pos_;
        acc = aig_.make_and(acc, parse_factor());
      } else {
        return acc;
      }
    }
  }

  Lit parse_factor() {
    skip_ws();
    char c = peek();
    if (c == '!') {
      ++pos_;
      return lit_not(parse_factor());
    }
    if (c == '(') {
      ++pos_;
      Lit inner = parse_expr();
      skip_ws();
      expect(')');
      return inner;
    }
    std::string name = parse_name();
    if (name == "0") return kLitFalse;
    if (name == "1") return kLitTrue;
    auto it = defs_.find(name);
    if (it == defs_.end()) {
      throw std::runtime_error("equation format: undefined signal " + name);
    }
    return it->second;
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '[' || c == ']' || c == '.';
  }

  std::string parse_name() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) ++pos_;
    if (pos_ == start) {
      throw std::runtime_error("equation format: expected name at offset " +
                               std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  void skip_ws() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      // '#' comments to end of line
      if (pos_ < text_.size() && text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("equation format: unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("equation format: expected '") + c +
                               "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  const std::string& text_;
  Aig& aig_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, Lit> defs_;
  std::vector<std::pair<std::string, std::uint32_t>> po_order_;
};

}  // namespace

Aig read_equations(const std::string& text) {
  Aig aig;
  EquationParser(text, aig).run();
  return aig;
}

// ---------------------------------------------------------------------------
// ASCII AIGER
// ---------------------------------------------------------------------------

std::string write_aiger(const Aig& aig) {
  // AIGER requires PIs first, then ANDs; our variable numbering already
  // guarantees topological order, but PIs may interleave with ANDs, so remap.
  std::vector<std::uint32_t> var_to_aiger(aig.num_nodes(), 0);
  std::uint32_t next = 1;
  for (Var v : aig.pis()) var_to_aiger[v] = next++;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_and(v)) var_to_aiger[v] = next++;
  }
  auto to_aiger_lit = [&](Lit l) {
    return 2 * var_to_aiger[lit_var(l)] + (lit_is_compl(l) ? 1u : 0u);
  };

  std::ostringstream out;
  std::uint32_t m = aig.num_pis() + aig.num_ands();
  out << "aag " << m << ' ' << aig.num_pis() << " 0 " << aig.num_pos() << ' '
      << aig.num_ands() << "\n";
  for (Var v : aig.pis()) out << 2 * var_to_aiger[v] << "\n";
  for (Lit po : aig.pos()) out << to_aiger_lit(po) << "\n";
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) continue;
    out << 2 * var_to_aiger[v] << ' ' << to_aiger_lit(aig.fanin0(v)) << ' '
        << to_aiger_lit(aig.fanin1(v)) << "\n";
  }
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    out << 'i' << i << ' ' << aig.pi_name(i) << "\n";
  }
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    out << 'o' << i << ' ' << aig.po_name(i) << "\n";
  }
  return out.str();
}

Aig read_aiger(const std::string& text) {
  // Server-hardened parser: every malformed input — truncated header,
  // non-numeric tokens, out-of-range or odd literals, oversized declared
  // counts, literals used before definition — throws std::runtime_error.
  // One bad client request must never assert, allocate absurdly, or index
  // out of bounds.
  std::istringstream in(text);
  std::string magic;
  if (!(in >> magic)) throw std::runtime_error("aiger: empty input");
  if (magic != "aag") throw std::runtime_error("aiger: expected 'aag' header");
  std::uint64_t m = 0, i = 0, l = 0, o = 0, a = 0;
  if (!(in >> m >> i >> l >> o >> a)) {
    throw std::runtime_error("aiger: truncated or non-numeric header");
  }
  if (l != 0) throw std::runtime_error("aiger: latches not supported");
  if (i + a > m) {
    throw std::runtime_error(
        "aiger: header counts exceed declared maximum index");
  }
  // Every declared variable needs at least two characters of body text
  // ("0\n"), so declared counts beyond the input size are lies — reject
  // them before sizing any allocation off attacker-controlled numbers.
  if (m > text.size() || o > text.size()) {
    throw std::runtime_error("aiger: declared counts exceed input size");
  }

  Aig aig;
  const std::uint64_t max_lit = 2 * m + 1;
  std::vector<Lit> map(2 * (m + 1), kLitFalse);
  std::vector<bool> defined(2 * (m + 1), false);
  map[0] = kLitFalse;
  map[1] = kLitTrue;
  defined[0] = defined[1] = true;

  auto read_lit = [&](const char* section) -> std::uint64_t {
    std::uint64_t lit = 0;
    if (!(in >> lit)) {
      throw std::runtime_error(std::string("aiger: truncated or non-numeric ") +
                               section + " section");
    }
    if (lit > max_lit) {
      throw std::runtime_error("aiger: literal " + std::to_string(lit) +
                               " out of range (max " +
                               std::to_string(max_lit) + ")");
    }
    return lit;
  };

  for (std::uint64_t k = 0; k < i; ++k) {
    std::uint64_t lit = read_lit("input");
    if (lit < 2 || (lit & 1) != 0) {
      throw std::runtime_error("aiger: invalid input literal " +
                               std::to_string(lit));
    }
    if (defined[lit]) {
      throw std::runtime_error("aiger: literal " + std::to_string(lit) +
                               " defined twice");
    }
    Var v = aig.add_pi();
    map[lit] = make_lit(v);
    map[lit ^ 1] = lit_not(make_lit(v));
    defined[lit] = defined[lit ^ 1] = true;
  }

  std::vector<std::uint64_t> po_lits(o);
  for (auto& lit : po_lits) lit = read_lit("output");

  for (std::uint64_t k = 0; k < a; ++k) {
    std::uint64_t out_lit = read_lit("and");
    std::uint64_t in0 = read_lit("and");
    std::uint64_t in1 = read_lit("and");
    if (out_lit < 2 || (out_lit & 1) != 0) {
      throw std::runtime_error("aiger: invalid AND output literal " +
                               std::to_string(out_lit));
    }
    if (defined[out_lit]) {
      throw std::runtime_error("aiger: literal " + std::to_string(out_lit) +
                               " defined twice");
    }
    if (!defined[in0] || !defined[in1]) {
      throw std::runtime_error(
          "aiger: AND fanin used before definition (literal " +
          std::to_string(!defined[in0] ? in0 : in1) + ")");
    }
    Lit f = aig.make_and(map[in0], map[in1]);
    map[out_lit] = f;
    map[out_lit ^ 1] = lit_not(f);
    defined[out_lit] = defined[out_lit ^ 1] = true;
  }
  for (std::uint64_t lit : po_lits) {
    if (!defined[lit]) {
      throw std::runtime_error("aiger: undefined output literal " +
                               std::to_string(lit));
    }
    aig.add_po(map[lit]);
  }
  return aig;
}

}  // namespace emorphic
