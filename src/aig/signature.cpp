#include "aig/signature.hpp"

namespace emorphic {

namespace {

/// splitmix64 finalizer (Vigna): full-avalanche mixing per ingested word.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ v) * 0x2545f4914f6cdd1dull;
}

}  // namespace

std::uint64_t structural_signature(const Aig& aig) {
  std::uint64_t h = 0x517cc1b727220a95ull;
  h = fold(h, aig.num_nodes());
  h = fold(h, aig.num_pis());
  for (Var v = 0; v < aig.num_nodes(); ++v) {
    if (aig.is_and(v)) {
      h = fold(h, (static_cast<std::uint64_t>(aig.fanin0(v)) << 32) |
                      aig.fanin1(v));
    } else {
      // PIs hash by position (fanin0 stores the PI index), constants by tag.
      h = fold(h, aig.is_pi(v) ? 0x100000000ull + aig.pi_index(v) : 0x2ull);
    }
  }
  for (Lit po : aig.pos()) h = fold(h, 0x300000000ull + po);
  return h;
}

}  // namespace emorphic
