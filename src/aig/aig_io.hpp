#pragma once
// Circuit I/O:
//  * the "equation format" the paper's pre/post-processing steps speak
//    (ABC-style: `INORDER`/`OUTORDER` declarations plus one assignment per
//    line over !, &, |, ^ and parentheses);
//  * ASCII AIGER (`aag`), the standard AIG interchange format.

#include <string>

#include "aig/aig.hpp"

namespace emorphic {

/// Serialize to equation format. Every AND node becomes one assignment.
std::string write_equations(const Aig& aig);

/// Parse equation format; throws std::runtime_error on malformed input.
/// Supports nested parentheses, n-ary & | ^, prefix !, constants 0/1.
Aig read_equations(const std::string& text);

/// Serialize to ASCII AIGER ("aag"). Combinational only.
std::string write_aiger(const Aig& aig);

/// Parse ASCII AIGER; throws std::runtime_error on malformed input or latches.
Aig read_aiger(const std::string& text);

}  // namespace emorphic
