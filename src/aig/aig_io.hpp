#pragma once
// Circuit I/O:
//  * the "equation format" the paper's pre/post-processing steps speak
//    (ABC-style: `INORDER`/`OUTORDER` declarations plus one assignment per
//    line over !, &, |, ^ and parentheses);
//  * ASCII AIGER (`aag`), the standard AIG interchange format.

#include <string>

#include "aig/aig.hpp"

namespace emorphic {

/// Serialize to equation format. Every AND node becomes one assignment.
std::string write_equations(const Aig& aig);

/// Parse equation format; throws std::runtime_error on malformed input.
/// Supports nested parentheses, n-ary & | ^, prefix !, constants 0/1.
Aig read_equations(const std::string& text);

/// Serialize to ASCII AIGER ("aag"). Combinational only.
std::string write_aiger(const Aig& aig);

/// Parse ASCII AIGER; throws std::runtime_error on malformed input or latches.
Aig read_aiger(const std::string& text);

/// Serialize to binary AIGER ("aig"): inputs implicit, AND fanins
/// delta-encoded as LEB128 varints — roughly 5-10x smaller than "aag" on
/// large circuits, which is what the partition checkpoints and the scaled
/// benchmarks store. PI/PO names are written to the symbol table (unlike
/// read_aiger, read_aiger_binary preserves them). Combinational only.
///
/// The writer renumbers variables PIs-first then ANDs in ascending index
/// order, so write ∘ read is a fixed point: re-serializing a parsed circuit
/// reproduces the bytes exactly. partition_optimize leans on this to make
/// checkpoint-resumed runs bit-identical to uninterrupted ones.
std::string write_aiger_binary(const Aig& aig);

/// Parse binary AIGER; throws std::runtime_error on malformed input —
/// truncated bytes, wrong magic, bad counts, out-of-range deltas — and
/// never crashes or allocates off unvalidated counts.
Aig read_aiger_binary(const std::string& bytes);

}  // namespace emorphic
