#pragma once
// k-feasible cut enumeration with priority cuts, following Mishchenko et
// al.'s priority-cut mapper [23] that both the paper's baseline flow
// (`if -g -K 6 -C 8`) and the standard-cell mapper (`map`) are built on.
//
// Each cut carries its local function as a truth table over the (sorted)
// leaves, computed incrementally during the merge, so complemented AIG edges
// inside the cone are absorbed into the cut function.
//
// When an AigChoices annotation (aig/choice.hpp) is supplied, enumeration
// is *choice-aware*: nodes are visited in the annotation's evaluation order
// and, at each choice-class representative, the cut sets of all ring
// members are merged (complement-normalized) into the representative's
// list. Cuts therefore cross structural variants — the property ABC's
// `if` mapper gets from `dch` choices — and the mapper picks the best
// match over the whole class (see docs/mapping-internals.md).
//
// Enumeration can run in parallel (CutParams::num_threads > 1, or an
// external ThreadPool): nodes are partitioned into dependency waves —
// topological levels over fanin edges, extended with ring edges when a
// choice annotation is present, so a representative's wave follows every
// ring member's — and each wave is enumerated across the workers with
// per-worker merge scratch. A node's cut list is a pure function of its
// fanin (and ring-member) lists, and every node writes only its own slot,
// so the parallel result is *bit-identical* to the serial pass for any
// thread count (tests/aig/test_cut_parallel.cpp holds this to the letter).

#include <array>
#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/truth.hpp"
#include "util/arena.hpp"

namespace emorphic {

class AigChoices;
class ThreadPool;

namespace check {
struct CheckProbe;  // corruption-seeding seam for validator tests
}  // namespace check

/// Hard upper bound on cut width: the truth table of a cut function must
/// fit one 64-bit word (2^6 minterms). This is the *enumeration* limit —
/// SOP balancing runs at the full K = 6; standard-cell matching is further
/// bounded by kMaxCellPins (mapper/cell_library.hpp), the NPN matcher's
/// 4-variable domain.
inline constexpr unsigned kMaxCutSize = 6;

struct Cut {
  std::array<Var, kMaxCutSize> leaves{};  // sorted ascending, [0, size)
  std::uint8_t size = 0;
  Tt tt = 0;  // function of the root in terms of the leaves

  bool is_trivial(Var v) const { return size == 1 && leaves[0] == v; }

  /// True if every leaf of this cut also appears in `other` (domination).
  bool subset_of(const Cut& other) const;
};

struct CutParams {
  unsigned cut_size = 6;   // K: maximum number of leaves
  unsigned num_cuts = 8;   // C: priority cuts kept per node (plus trivial)
  /// Worker threads for wave-parallel enumeration; <= 1 runs the serial
  /// pass. Ignored when the CutManager constructor receives an external
  /// ThreadPool (its size wins). Any value produces bit-identical cut
  /// lists — this is a throughput knob, never a result knob.
  unsigned num_threads = 1;
};

/// Reusable cut storage. Hot paths (the SA cost evaluator) construct one
/// CutManager per candidate AIG; routing them through a caller-owned arena
/// keeps the storage alive across candidates so repeated enumerations stop
/// churning the allocator. Per-node cut lists are ArenaSpan headers whose
/// elements live in bump-arena SpanStores: every enumeration is one arena
/// epoch (the stores rewind wholesale at construction), so a warmed-up
/// arena re-enumerates with zero mallocs. Not thread-safe across
/// CutManagers: one arena per concurrently-live manager.
struct CutArena {
  std::vector<ArenaSpan<Cut>> slots;     // per-node cut lists (headers)
  /// Element storage for the serial pass (and PI/constant seeding).
  SpanStore<Cut> store;
  /// Per-worker element stores for the wave-parallel pass: each worker
  /// allocates spans only from its own store, so the bump pointers are
  /// race-free. The chunking is deterministic, so after warm-up every
  /// store's epoch is the same size and no store mallocs.
  std::vector<SpanStore<Cut>> worker_stores;
  std::vector<Cut> scratch;              // merge workspace for one node
  std::vector<std::uint32_t> levels;     // cut priority ordering
  /// Per-worker merge workspaces for the wave-parallel pass (one per pool
  /// worker, reused across enumerations like `scratch` is).
  std::vector<std::vector<Cut>> worker_scratch;
  /// Wave schedule scratch (parallel pass only): per-node wave index and
  /// the nodes of each wave, bucketed in traversal order.
  std::vector<std::uint32_t> waves;
  std::vector<std::vector<Var>> wave_nodes;

  /// Start a new enumeration epoch: drop every span header and rewind the
  /// stores, keeping all capacity.
  void reset_epoch() {
    for (ArenaSpan<Cut>& s : slots) s = ArenaSpan<Cut>{};
    store.reset();
    for (SpanStore<Cut>& ws : worker_stores) ws.reset();
  }
};

/// Enumerates priority cuts bottom-up for every node of an AIG.
/// Throws std::invalid_argument unless 2 <= cut_size <= kMaxCutSize.
class CutManager {
 public:
  /// Plain enumeration. With params.num_threads > 1 (or a non-null `pool`)
  /// the waves run across workers — an own pool is spun up when none is
  /// supplied; pass a shared one to amortize thread startup over repeated
  /// enumerations. The cut lists are bit-identical either way.
  CutManager(const Aig& aig, const CutParams& params,
             CutArena* arena = nullptr, ThreadPool* pool = nullptr);

  /// Choice-aware enumeration: traverse in `choices.order()` (which must be
  /// finalized) and merge every ring member's cuts into its
  /// representative's list, complemented as the member's phase dictates.
  /// Every cut of a representative then expresses the representative's
  /// positive function, whatever variant it was enumerated in. Throws
  /// std::invalid_argument when the annotation does not fit the AIG.
  /// Parallelism follows the plain constructor's contract (ring edges join
  /// the wave partial order, so member lists are complete before their
  /// representative merges them).
  CutManager(const Aig& aig, const AigChoices& choices,
             const CutParams& params, CutArena* arena = nullptr,
             ThreadPool* pool = nullptr);

  // arena_ may point at the own_ member, so compiler-generated copies/moves
  // would dangle.
  CutManager(const CutManager&) = delete;
  CutManager& operator=(const CutManager&) = delete;

  /// Cuts of node `v`; the trivial cut is always last. For a choice-class
  /// representative this is the merged, cross-variant list: the plain cuts
  /// first (in their plain priority order, so choice-free behavior is
  /// bit-identical to the plain constructor), then up to `num_cuts`
  /// deduplicated member cuts.
  const ArenaSpan<Cut>& cuts(Var v) const { return arena_->slots[v]; }

  const Aig& aig() const { return aig_; }
  const CutParams& params() const { return params_; }
  /// The choice annotation enumeration merged across, or null for the plain
  /// pass (check::check_cuts keys its per-node invariants off this).
  const AigChoices* choices() const { return choices_; }

 private:
  friend struct check::CheckProbe;

  CutManager(const Aig& aig, const AigChoices* choices,
             const CutParams& params, CutArena* arena, ThreadPool* pool);

  void process_node(Var v, std::vector<Cut>& scratch, SpanStore<Cut>& store);
  void enumerate_serial();
  void enumerate_parallel(ThreadPool* pool);
  void compute(Var v, std::vector<Cut>& scratch, SpanStore<Cut>& store);
  void merge_choice_cuts(Var rep, SpanStore<Cut>& store);
  bool merge(const Cut& a, const Cut& b, bool compl_a, bool compl_b, Cut& out) const;

  const Aig& aig_;
  CutParams params_;
  const AigChoices* choices_;  // null = plain enumeration
  CutArena own_;      // used when no external arena is provided
  CutArena* arena_;   // &own_ or the caller's reusable arena
};

}  // namespace emorphic
