#pragma once
// Structural fingerprinting of an AIG: a 64-bit hash over the node array
// (types and fanin literals), the PI count, and the PO literals. Two AIGs
// built by the same construction order over the same structure hash equally;
// since make_and structurally hashes, a candidate extraction rebuilt from
// the same e-graph choices always reproduces its signature.
//
// This is the key of the SA extractor's per-run QoR memo (sa_extractor.cpp):
// re-visited extractions — common near convergence — skip technology mapping
// entirely. A 64-bit hash makes collisions vanishingly unlikely at per-run
// cache sizes (hundreds of entries); the micro_mapper bench cross-checks
// cached against recomputed QoR end to end.

#include <cstdint>

#include "aig/aig.hpp"

namespace emorphic {

/// 64-bit structural-hash signature of `aig`. Names do not contribute (they
/// cannot affect mapped QoR); node order does, which is canonical for
/// equal construction orders.
std::uint64_t structural_signature(const Aig& aig);

}  // namespace emorphic
