#include "aig/sim.hpp"

#include <algorithm>
#include <cassert>

#include "aig/truth.hpp"
#include "util/thread_pool.hpp"

namespace emorphic {

std::vector<std::uint64_t> simulate_words(
    const Aig& aig, const std::vector<std::uint64_t>& pi_words) {
  assert(pi_words.size() == aig.num_pis());
  std::vector<std::uint64_t> value(aig.num_nodes(), 0);
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_pi(v)) {
      value[v] = pi_words[aig.pi_index(v)];
    } else {
      Lit f0 = aig.fanin0(v);
      Lit f1 = aig.fanin1(v);
      std::uint64_t a = value[lit_var(f0)];
      std::uint64_t b = value[lit_var(f1)];
      if (lit_is_compl(f0)) a = ~a;
      if (lit_is_compl(f1)) b = ~b;
      value[v] = a & b;
    }
  }
  return value;
}

std::vector<std::uint64_t> simulate_words_multi(
    const Aig& aig, const std::vector<std::uint64_t>& pi_words,
    unsigned num_words, ThreadPool* pool) {
  assert(pi_words.size() ==
         static_cast<std::size_t>(aig.num_pis()) * num_words);
  const std::size_t w_total = num_words;
  std::vector<std::uint64_t> value(
      static_cast<std::size_t>(aig.num_nodes()) * w_total, 0);
  auto simulate_range = [&](std::size_t w0, std::size_t w1) {
    for (Var v = 1; v < aig.num_nodes(); ++v) {
      std::uint64_t* out = &value[static_cast<std::size_t>(v) * w_total];
      if (aig.is_pi(v)) {
        const std::uint64_t* in =
            &pi_words[static_cast<std::size_t>(aig.pi_index(v)) * w_total];
        for (std::size_t w = w0; w < w1; ++w) out[w] = in[w];
        continue;
      }
      Lit f0 = aig.fanin0(v);
      Lit f1 = aig.fanin1(v);
      const std::uint64_t* a = &value[static_cast<std::size_t>(lit_var(f0)) * w_total];
      const std::uint64_t* b = &value[static_cast<std::size_t>(lit_var(f1)) * w_total];
      std::uint64_t ma = lit_is_compl(f0) ? ~0ull : 0ull;
      std::uint64_t mb = lit_is_compl(f1) ? ~0ull : 0ull;
      for (std::size_t w = w0; w < w1; ++w) out[w] = (a[w] ^ ma) & (b[w] ^ mb);
    }
  };
  // Chunk in cache-line multiples (8 words = 64 bytes) so concurrent
  // workers never interleave writes within one node's row — finer stripes
  // would false-share every row and can run slower than serial.
  constexpr std::size_t kLineWords = 8;
  if (pool != nullptr && pool->size() > 1 && w_total > kLineWords) {
    std::size_t chunks = std::min<std::size_t>(
        pool->size(), (w_total + kLineWords - 1) / kLineWords);
    std::size_t per_chunk = (w_total + chunks - 1) / chunks;
    per_chunk = (per_chunk + kLineWords - 1) / kLineWords * kLineWords;
    chunks = (w_total + per_chunk - 1) / per_chunk;
    pool->parallel_for(chunks, [&](std::size_t c) {
      std::size_t w0 = c * per_chunk;
      std::size_t w1 = std::min(w_total, w0 + per_chunk);
      if (w0 < w1) simulate_range(w0, w1);
    });
  } else {
    simulate_range(0, w_total);
  }
  return value;
}

std::vector<std::uint64_t> expand_pattern(const std::vector<bool>& pattern,
                                          Rng& rng, double flip_p) {
  std::vector<std::uint64_t> words(pattern.size());
  for (std::size_t pi = 0; pi < pattern.size(); ++pi) {
    std::uint64_t base = pattern[pi] ? ~0ull : 0ull;
    std::uint64_t flips = 0;
    for (unsigned b = 1; b < 64; ++b) {
      if (rng.chance(flip_p)) flips |= 1ull << b;
    }
    words[pi] = base ^ flips;  // bit 0 is always the exact assignment
  }
  return words;
}

std::vector<std::uint64_t> po_signature(const Aig& aig, Rng& rng,
                                        unsigned num_words) {
  std::vector<std::uint64_t> result(
      static_cast<std::size_t>(aig.num_pos()) * num_words, 0);
  std::vector<std::uint64_t> pi_words(aig.num_pis());
  for (unsigned w = 0; w < num_words; ++w) {
    for (auto& word : pi_words) word = rng.next();
    auto value = simulate_words(aig, pi_words);
    for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
      Lit po = aig.po(i);
      std::uint64_t word = value[lit_var(po)];
      if (lit_is_compl(po)) word = ~word;
      result[static_cast<std::size_t>(i) * num_words + w] = word;
    }
  }
  return result;
}

bool sim_probably_equal(const Aig& a, const Aig& b, Rng& rng,
                        unsigned num_words) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  std::vector<std::uint64_t> pi_words(a.num_pis());
  for (unsigned w = 0; w < num_words; ++w) {
    for (auto& word : pi_words) word = rng.next();
    auto va = simulate_words(a, pi_words);
    auto vb = simulate_words(b, pi_words);
    for (std::uint32_t i = 0; i < a.num_pos(); ++i) {
      Lit pa = a.po(i);
      Lit pb = b.po(i);
      std::uint64_t wa = va[lit_var(pa)] ^ (lit_is_compl(pa) ? ~0ull : 0ull);
      std::uint64_t wb = vb[lit_var(pb)] ^ (lit_is_compl(pb) ? ~0ull : 0ull);
      if (wa != wb) return false;
    }
  }
  return true;
}

std::uint64_t exhaustive_tt(const Aig& aig, unsigned po) {
  assert(aig.num_pis() <= 6);
  std::vector<std::uint64_t> pi_words(aig.num_pis());
  for (unsigned i = 0; i < aig.num_pis(); ++i) {
    pi_words[i] = tt_var(i, 6);  // 64 patterns = exhaustive for 6 inputs
  }
  auto value = simulate_words(aig, pi_words);
  Lit p = aig.po(po);
  std::uint64_t word = value[lit_var(p)];
  if (lit_is_compl(p)) word = ~word;
  unsigned n = aig.num_pis();
  return word & tt_mask(n);
}

}  // namespace emorphic
