#include "aig/sim.hpp"

#include <cassert>

#include "aig/truth.hpp"

namespace emorphic {

std::vector<std::uint64_t> simulate_words(
    const Aig& aig, const std::vector<std::uint64_t>& pi_words) {
  assert(pi_words.size() == aig.num_pis());
  std::vector<std::uint64_t> value(aig.num_nodes(), 0);
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_pi(v)) {
      value[v] = pi_words[aig.pi_index(v)];
    } else {
      Lit f0 = aig.fanin0(v);
      Lit f1 = aig.fanin1(v);
      std::uint64_t a = value[lit_var(f0)];
      std::uint64_t b = value[lit_var(f1)];
      if (lit_is_compl(f0)) a = ~a;
      if (lit_is_compl(f1)) b = ~b;
      value[v] = a & b;
    }
  }
  return value;
}

std::vector<std::uint64_t> po_signature(const Aig& aig, Rng& rng,
                                        unsigned num_words) {
  std::vector<std::uint64_t> result(
      static_cast<std::size_t>(aig.num_pos()) * num_words, 0);
  std::vector<std::uint64_t> pi_words(aig.num_pis());
  for (unsigned w = 0; w < num_words; ++w) {
    for (auto& word : pi_words) word = rng.next();
    auto value = simulate_words(aig, pi_words);
    for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
      Lit po = aig.po(i);
      std::uint64_t word = value[lit_var(po)];
      if (lit_is_compl(po)) word = ~word;
      result[static_cast<std::size_t>(i) * num_words + w] = word;
    }
  }
  return result;
}

bool sim_probably_equal(const Aig& a, const Aig& b, Rng& rng,
                        unsigned num_words) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  std::vector<std::uint64_t> pi_words(a.num_pis());
  for (unsigned w = 0; w < num_words; ++w) {
    for (auto& word : pi_words) word = rng.next();
    auto va = simulate_words(a, pi_words);
    auto vb = simulate_words(b, pi_words);
    for (std::uint32_t i = 0; i < a.num_pos(); ++i) {
      Lit pa = a.po(i);
      Lit pb = b.po(i);
      std::uint64_t wa = va[lit_var(pa)] ^ (lit_is_compl(pa) ? ~0ull : 0ull);
      std::uint64_t wb = vb[lit_var(pb)] ^ (lit_is_compl(pb) ? ~0ull : 0ull);
      if (wa != wb) return false;
    }
  }
  return true;
}

std::uint64_t exhaustive_tt(const Aig& aig, unsigned po) {
  assert(aig.num_pis() <= 6);
  std::vector<std::uint64_t> pi_words(aig.num_pis());
  for (unsigned i = 0; i < aig.num_pis(); ++i) {
    pi_words[i] = tt_var(i, 6);  // 64 patterns = exhaustive for 6 inputs
  }
  auto value = simulate_words(aig, pi_words);
  Lit p = aig.po(po);
  std::uint64_t word = value[lit_var(p)];
  if (lit_is_compl(p)) word = ~word;
  unsigned n = aig.num_pis();
  return word & tt_mask(n);
}

}  // namespace emorphic
