#include "aig/cut.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "aig/choice.hpp"
#include "check/check.hpp"
#include "check/validators.hpp"
#include "util/thread_pool.hpp"

namespace emorphic {

namespace {

/// Waves narrower than this run on the calling thread: dispatching a
/// handful of nodes through the pool costs more than computing them.
/// Purely a throughput threshold — the cut lists are identical either way.
constexpr std::size_t kMinParallelWave = 16;

}  // namespace

bool Cut::subset_of(const Cut& other) const {
  unsigned j = 0;
  for (unsigned i = 0; i < size; ++i) {
    while (j < other.size && other.leaves[j] < leaves[i]) ++j;
    if (j >= other.size || other.leaves[j] != leaves[i]) return false;
  }
  return true;
}

CutManager::CutManager(const Aig& aig, const CutParams& params, CutArena* arena,
                       ThreadPool* pool)
    : CutManager(aig, static_cast<const AigChoices*>(nullptr), params, arena,
                 pool) {}

CutManager::CutManager(const Aig& aig, const AigChoices& choices,
                       const CutParams& params, CutArena* arena,
                       ThreadPool* pool)
    : CutManager(aig, &choices, params, arena, pool) {}

CutManager::CutManager(const Aig& aig, const AigChoices* choices,
                       const CutParams& params, CutArena* arena,
                       ThreadPool* pool)
    : aig_(aig),
      params_(params),
      choices_(choices),
      arena_(arena != nullptr ? arena : &own_) {
  // A 1-feasible cut cannot cover an AND node and an oversize cut overflows
  // Cut::leaves; both are hard errors in every build mode, not just asserts.
  if (params_.cut_size < 2 || params_.cut_size > kMaxCutSize) {
    throw std::invalid_argument(
        "CutManager: cut_size must be in [2, " + std::to_string(kMaxCutSize) +
        "], got " + std::to_string(params_.cut_size));
  }
  const std::size_t n = aig_.num_nodes();
  if (choices_ != nullptr &&
      (choices_->size() != n || choices_->order().size() != n)) {
    throw std::invalid_argument(
        "CutManager: choice annotation does not fit the AIG (missing "
        "finalize()?)");
  }
  // Recycle the arena: grow the header vector if needed, then start a new
  // epoch — every header is dropped and the element stores rewind keeping
  // their blocks, so a warmed-up arena enumerates without a single malloc.
  if (arena_->slots.size() < n) arena_->slots.resize(n);
  arena_->reset_epoch();
  arena_->levels.assign(n, 0);
  for (Var v = 1; v < aig_.num_nodes(); ++v) {
    if (!aig_.is_and(v)) continue;
    arena_->levels[v] = 1 + std::max(arena_->levels[lit_var(aig_.fanin0(v))],
                                     arena_->levels[lit_var(aig_.fanin1(v))]);
  }

  // Constant node: a single empty cut whose function is constant 0.
  arena_->store.push_back(arena_->slots[0], Cut{});

  const std::size_t threads =
      pool != nullptr ? pool->size() : params_.num_threads;
  if (threads <= 1) {
    enumerate_serial();
  } else {
    enumerate_parallel(pool);
  }
  EM_CHECK_EXPENSIVE(check::check_cuts(*this));
}

void CutManager::process_node(Var v, std::vector<Cut>& scratch,
                              SpanStore<Cut>& store) {
  if (v == 0) return;
  if (aig_.is_pi(v)) {
    Cut trivial;
    trivial.size = 1;
    trivial.leaves[0] = v;
    trivial.tt = tt_var(0, 1);
    store.push_back(arena_->slots[v], trivial);
    return;
  }
  compute(v, scratch, store);
  if (choices_ != nullptr && choices_->has_ring(v)) {
    merge_choice_cuts(v, store);
  }
}

void CutManager::enumerate_serial() {
  // With choices, a representative's merged list must be complete before
  // any node consumes it, and a ring member can carry a *larger* index
  // than its representative — so the traversal follows the annotation's
  // schedule (members before representative) instead of index order.
  if (choices_ != nullptr) {
    for (Var v : choices_->order()) {
      process_node(v, arena_->scratch, arena_->store);
    }
  } else {
    for (Var v = 1; v < aig_.num_nodes(); ++v) {
      process_node(v, arena_->scratch, arena_->store);
    }
  }
}

void CutManager::enumerate_parallel(ThreadPool* external_pool) {
  const std::size_t n = aig_.num_nodes();

  // Wave index = earliest parallel step at which a node's inputs are all
  // complete: 1 + max over fanin waves, and — for a choice-class
  // representative — over every ring member's wave too, so member cut
  // lists exist before merge_choice_cuts reads them. Computed along the
  // serial traversal order, whose invariant (dependencies first) makes the
  // single forward sweep sufficient.
  std::vector<std::uint32_t>& wave = arena_->waves;
  wave.assign(n, 0);
  std::uint32_t num_waves = 0;
  auto wave_of = [&](Var v) -> std::uint32_t {
    if (v == 0 || !aig_.is_and(v)) return 0;
    std::uint32_t w = 1 + std::max(wave[lit_var(aig_.fanin0(v))],
                                   wave[lit_var(aig_.fanin1(v))]);
    if (choices_ != nullptr && choices_->has_ring(v)) {
      for (Var m : choices_->ring(v)) w = std::max(w, wave[m] + 1);
    }
    return w;
  };

  // PIs (wave 0) are trivial; seed them inline and bucket the AND nodes by
  // wave, preserving the serial traversal order inside each bucket. Each
  // node's result depends only on earlier-wave slots and every node writes
  // only its own slot, so intra-wave order is irrelevant to the outcome —
  // contiguous deterministic slices merely keep the chunking simple.
  std::vector<std::vector<Var>>& buckets = arena_->wave_nodes;
  auto bucket_node = [&](Var v) {
    if (v == 0) return;
    if (aig_.is_pi(v)) {
      process_node(v, arena_->scratch, arena_->store);
      return;
    }
    std::uint32_t w = wave_of(v);
    wave[v] = w;
    num_waves = std::max(num_waves, w + 1);
    if (buckets.size() < num_waves) buckets.resize(num_waves);
    buckets[w - 1].push_back(v);  // wave w >= 1 for AND nodes
  };
  for (std::vector<Var>& b : buckets) b.clear();
  if (choices_ != nullptr) {
    for (Var v : choices_->order()) bucket_node(v);
  } else {
    for (Var v = 1; v < aig_.num_nodes(); ++v) bucket_node(v);
  }

  std::optional<ThreadPool> own_pool;
  if (external_pool == nullptr) own_pool.emplace(params_.num_threads);
  ThreadPool& pool = external_pool != nullptr ? *external_pool : *own_pool;
  const std::size_t workers = std::max<std::size_t>(1, pool.size());
  if (arena_->worker_scratch.size() < workers) {
    arena_->worker_scratch.resize(workers);
  }
  if (arena_->worker_stores.size() < workers) {
    arena_->worker_stores.resize(workers);
  }

  for (std::uint32_t w = 0; w < num_waves; ++w) {
    const std::vector<Var>& nodes = buckets[w];
    if (nodes.empty()) continue;
    if (nodes.size() < kMinParallelWave) {
      for (Var v : nodes) process_node(v, arena_->scratch, arena_->store);
      continue;
    }
    const std::size_t chunks = std::min(workers, nodes.size());
    pool.parallel_for(chunks, [&](std::size_t ci) {
      const std::size_t lo = nodes.size() * ci / chunks;
      const std::size_t hi = nodes.size() * (ci + 1) / chunks;
      // Per-worker scratch AND per-worker span store: each chunk allocates
      // cut storage from its own bump arena, so no bump pointer is shared
      // across threads. Slot headers are written once, by the one worker
      // that owns the node.
      std::vector<Cut>& scratch = arena_->worker_scratch[ci];
      SpanStore<Cut>& store = arena_->worker_stores[ci];
      for (std::size_t i = lo; i < hi; ++i) {
        process_node(nodes[i], scratch, store);
      }
    });
  }
}

void CutManager::merge_choice_cuts(Var rep, SpanStore<Cut>& store) {
  ArenaSpan<Cut>& slot = arena_->slots[rep];
  // One up-front reservation bounds the list at its 2*num_cuts+1 maximum,
  // so the pushes below never grow (and thus never retire arena storage).
  store.reserve(slot, slot.size() + params_.num_cuts);
  // The plain list ends with the trivial cut; member cuts slot in before it
  // so the "trivial cut last" contract survives merging.
  Cut trivial = slot.back();
  slot.pop_back();

  auto already_present = [&](const Cut& cut) {
    for (const Cut& c : slot) {
      if (c.size != cut.size) continue;
      if (std::equal(c.leaves.begin(), c.leaves.begin() + c.size,
                     cut.leaves.begin())) {
        return true;  // same leaves => same function: a true duplicate
      }
    }
    return false;
  };

  // Append up to num_cuts member cuts. Plain cuts keep their positions and
  // are never displaced — on ties the mapper therefore lands on exactly the
  // plain selection, and choice mapping can only match plain mapping or
  // beat it.
  std::size_t budget = params_.num_cuts;
  for (Var m : choices_->ring(rep)) {
    if (budget == 0) break;
    const bool phase = lit_is_compl(choices_->repr_lit(m));
    for (const Cut& member_cut : arena_->slots[m]) {
      if (budget == 0) break;
      if (member_cut.is_trivial(m)) continue;
      Cut adjusted = member_cut;
      if (phase) adjusted.tt = tt_not(adjusted.tt, adjusted.size);
      if (already_present(adjusted)) continue;
      store.push_back(slot, adjusted);
      --budget;
    }
  }
  store.push_back(slot, trivial);
}

bool CutManager::merge(const Cut& a, const Cut& b, bool compl_a, bool compl_b,
                       Cut& out) const {
  // Merge sorted leaf sets, bailing out when exceeding K.
  unsigned i = 0, j = 0, n = 0;
  while (i < a.size || j < b.size) {
    Var next;
    if (j >= b.size || (i < a.size && a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i];
      if (j < b.size && b.leaves[j] == next) ++j;
      ++i;
    } else {
      next = b.leaves[j];
      ++j;
    }
    if (n >= params_.cut_size) return false;
    out.leaves[n++] = next;
  }
  out.size = static_cast<std::uint8_t>(n);

  // Compute the merged truth table: expand each operand function onto the
  // union support, complement per the AIG edge, and conjoin.
  std::array<std::uint8_t, 6> pos_a{}, pos_b{};
  for (unsigned k = 0; k < a.size; ++k) {
    pos_a[k] = static_cast<std::uint8_t>(
        std::lower_bound(out.leaves.begin(), out.leaves.begin() + n, a.leaves[k]) -
        out.leaves.begin());
  }
  for (unsigned k = 0; k < b.size; ++k) {
    pos_b[k] = static_cast<std::uint8_t>(
        std::lower_bound(out.leaves.begin(), out.leaves.begin() + n, b.leaves[k]) -
        out.leaves.begin());
  }
  Tt ta = tt_expand(a.tt, a.size, n, pos_a);
  Tt tb = tt_expand(b.tt, b.size, n, pos_b);
  if (compl_a) ta = tt_not(ta, n);
  if (compl_b) tb = tt_not(tb, n);
  out.tt = ta & tb & tt_mask(n);
  return true;
}

void CutManager::compute(Var v, std::vector<Cut>& scratch,
                         SpanStore<Cut>& store) {
  const Lit f0 = aig_.fanin0(v);
  const Lit f1 = aig_.fanin1(v);
  const auto& cuts0 = arena_->slots[lit_var(f0)];
  const auto& cuts1 = arena_->slots[lit_var(f1)];

  // The caller hands a per-worker scratch vector: in the wave-parallel
  // pass several nodes compute concurrently and must not share one merge
  // workspace. All shared state touched here is read-only (earlier-wave
  // slots, levels) except the node's own slot.
  std::vector<Cut>& result = scratch;
  result.clear();
  result.reserve(params_.num_cuts + 1);

  auto average_leaf_level = [&](const Cut& c) {
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < c.size; ++i) sum += arena_->levels[c.leaves[i]];
    return c.size == 0 ? 0.0 : static_cast<double>(sum) / c.size;
  };

  for (const Cut& a : cuts0) {
    for (const Cut& b : cuts1) {
      Cut merged;
      if (!merge(a, b, lit_is_compl(f0), lit_is_compl(f1), merged)) continue;
      // Domination filtering: skip if an existing cut is a subset.
      bool dominated = false;
      for (const Cut& c : result) {
        if (c.subset_of(merged)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(result, [&](const Cut& c) { return merged.subset_of(c); });
      result.push_back(merged);
    }
  }

  // Priority: smaller cuts first, then cuts whose leaves sit lower in the
  // graph (a proxy for better arrival times, as in the `if` mapper).
  std::sort(result.begin(), result.end(), [&](const Cut& x, const Cut& y) {
    if (x.size != y.size) return x.size < y.size;
    return average_leaf_level(x) < average_leaf_level(y);
  });
  if (result.size() > params_.num_cuts) result.resize(params_.num_cuts);

  // The trivial cut is always kept (last) so mapping can fall back on it.
  Cut trivial;
  trivial.size = 1;
  trivial.leaves[0] = v;
  trivial.tt = tt_var(0, 1);
  result.push_back(trivial);

  // Copy into the node's span (exact-fit arena allocation; the scratch
  // vector never aliases arena storage).
  store.assign(arena_->slots[v], result.data(), result.data() + result.size());
}

}  // namespace emorphic
