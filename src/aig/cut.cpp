#include "aig/cut.hpp"

#include <algorithm>
#include <cassert>

namespace emorphic {

bool Cut::subset_of(const Cut& other) const {
  unsigned j = 0;
  for (unsigned i = 0; i < size; ++i) {
    while (j < other.size && other.leaves[j] < leaves[i]) ++j;
    if (j >= other.size || other.leaves[j] != leaves[i]) return false;
  }
  return true;
}

CutManager::CutManager(const Aig& aig, const CutParams& params)
    : aig_(aig), params_(params) {
  assert(params_.cut_size >= 2 && params_.cut_size <= kMaxCutSize);
  level_ = aig_.levels();
  cuts_.resize(aig_.num_nodes());
  // Constant node: a single empty cut whose function is constant 0.
  cuts_[0].push_back(Cut{});
  for (Var v = 1; v < aig_.num_nodes(); ++v) {
    if (aig_.is_pi(v)) {
      Cut trivial;
      trivial.size = 1;
      trivial.leaves[0] = v;
      trivial.tt = tt_var(0, 1);
      cuts_[v].push_back(trivial);
    } else {
      compute(v);
    }
  }
}

bool CutManager::merge(const Cut& a, const Cut& b, bool compl_a, bool compl_b,
                       Cut& out) const {
  // Merge sorted leaf sets, bailing out when exceeding K.
  unsigned i = 0, j = 0, n = 0;
  while (i < a.size || j < b.size) {
    Var next;
    if (j >= b.size || (i < a.size && a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i];
      if (j < b.size && b.leaves[j] == next) ++j;
      ++i;
    } else {
      next = b.leaves[j];
      ++j;
    }
    if (n >= params_.cut_size) return false;
    out.leaves[n++] = next;
  }
  out.size = static_cast<std::uint8_t>(n);

  // Compute the merged truth table: expand each operand function onto the
  // union support, complement per the AIG edge, and conjoin.
  std::array<std::uint8_t, 6> pos_a{}, pos_b{};
  for (unsigned k = 0; k < a.size; ++k) {
    pos_a[k] = static_cast<std::uint8_t>(
        std::lower_bound(out.leaves.begin(), out.leaves.begin() + n, a.leaves[k]) -
        out.leaves.begin());
  }
  for (unsigned k = 0; k < b.size; ++k) {
    pos_b[k] = static_cast<std::uint8_t>(
        std::lower_bound(out.leaves.begin(), out.leaves.begin() + n, b.leaves[k]) -
        out.leaves.begin());
  }
  Tt ta = tt_expand(a.tt, a.size, n, pos_a);
  Tt tb = tt_expand(b.tt, b.size, n, pos_b);
  if (compl_a) ta = tt_not(ta, n);
  if (compl_b) tb = tt_not(tb, n);
  out.tt = ta & tb & tt_mask(n);
  return true;
}

void CutManager::compute(Var v) {
  const Lit f0 = aig_.fanin0(v);
  const Lit f1 = aig_.fanin1(v);
  const auto& cuts0 = cuts_[lit_var(f0)];
  const auto& cuts1 = cuts_[lit_var(f1)];

  std::vector<Cut> result;
  result.reserve(params_.num_cuts + 1);

  auto average_leaf_level = [&](const Cut& c) {
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < c.size; ++i) sum += level_[c.leaves[i]];
    return c.size == 0 ? 0.0 : static_cast<double>(sum) / c.size;
  };

  for (const Cut& a : cuts0) {
    for (const Cut& b : cuts1) {
      Cut merged;
      if (!merge(a, b, lit_is_compl(f0), lit_is_compl(f1), merged)) continue;
      // Domination filtering: skip if an existing cut is a subset.
      bool dominated = false;
      for (const Cut& c : result) {
        if (c.subset_of(merged)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(result, [&](const Cut& c) { return merged.subset_of(c); });
      result.push_back(merged);
    }
  }

  // Priority: smaller cuts first, then cuts whose leaves sit lower in the
  // graph (a proxy for better arrival times, as in the `if` mapper).
  std::sort(result.begin(), result.end(), [&](const Cut& x, const Cut& y) {
    if (x.size != y.size) return x.size < y.size;
    return average_leaf_level(x) < average_leaf_level(y);
  });
  if (result.size() > params_.num_cuts) result.resize(params_.num_cuts);

  // The trivial cut is always kept (last) so mapping can fall back on it.
  Cut trivial;
  trivial.size = 1;
  trivial.leaves[0] = v;
  trivial.tt = tt_var(0, 1);
  result.push_back(trivial);

  cuts_[v] = std::move(result);
}

}  // namespace emorphic
