#include "aig/truth.hpp"

#include <bit>
#include <cassert>

namespace emorphic {

namespace {
// Standard projection patterns for variables 0..5 in a 6-input domain.
constexpr Tt kProj[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};
}  // namespace

Tt tt_var(unsigned i, unsigned n) {
  assert(i < n && n <= 6);
  return kProj[i] & tt_mask(n);
}

bool tt_depends_on(Tt t, unsigned i, unsigned n) {
  return tt_cofactor0(t, i, n) != tt_cofactor1(t, i, n);
}

Tt tt_cofactor1(Tt t, unsigned i, unsigned n) {
  Tt hi = t & kProj[i];
  unsigned shift = 1u << i;
  return (hi | (hi >> shift)) & tt_mask(n);
}

Tt tt_cofactor0(Tt t, unsigned i, unsigned n) {
  Tt lo = t & ~kProj[i];
  unsigned shift = 1u << i;
  return (lo | (lo << shift)) & tt_mask(n);
}

unsigned tt_count_ones(Tt t, unsigned n) {
  return static_cast<unsigned>(std::popcount(t & tt_mask(n)));
}

Tt tt_expand(Tt t, unsigned n_small, unsigned n_big,
             const std::array<std::uint8_t, 6>& pos) {
  assert(n_small <= n_big && n_big <= 6);
  Tt out = 0;
  unsigned big_size = 1u << n_big;
  for (unsigned m = 0; m < big_size; ++m) {
    unsigned small_m = 0;
    for (unsigned i = 0; i < n_small; ++i) {
      small_m |= ((m >> pos[i]) & 1u) << i;
    }
    out |= ((t >> small_m) & 1ull) << m;
  }
  return out;
}

std::string tt_to_string(Tt t, unsigned n) {
  unsigned size = 1u << n;
  std::string s(size, '0');
  for (unsigned m = 0; m < size; ++m) {
    if ((t >> m) & 1ull) s[size - 1 - m] = '1';
  }
  return s;
}

Tt npn_apply(Tt t, const NpnTransform& tr) {
  Tt out = 0;
  for (unsigned m = 0; m < 16; ++m) {
    unsigned src = 0;  // minterm of the original function
    for (unsigned j = 0; j < 4; ++j) {
      unsigned z = ((m >> tr.perm[j]) & 1u) ^ ((tr.input_phase >> j) & 1u);
      src |= z << j;
    }
    Tt bit = ((t >> src) & 1ull) ^ static_cast<Tt>(tr.output_phase);
    out |= bit << m;
  }
  return out;
}

NpnTransform npn_compose(const NpnTransform& second, const NpnTransform& first) {
  // (second.(first.f))(x) = f(w),
  //   w_k = x_{second.perm[first.perm[k]]}
  //         ^ second.phase[first.perm[k]] ^ first.phase[k]
  NpnTransform out;
  for (unsigned k = 0; k < 4; ++k) {
    out.perm[k] = second.perm[first.perm[k]];
    unsigned phase = ((first.input_phase >> k) & 1u) ^
                     ((second.input_phase >> first.perm[k]) & 1u);
    out.input_phase |= static_cast<std::uint8_t>(phase << k);
  }
  out.output_phase = first.output_phase ^ second.output_phase;
  return out;
}

NpnTransform npn_inverse(const NpnTransform& tr) {
  NpnTransform out;
  for (unsigned j = 0; j < 4; ++j) out.perm[tr.perm[j]] = static_cast<std::uint8_t>(j);
  for (unsigned j = 0; j < 4; ++j) {
    unsigned phase = (tr.input_phase >> out.perm[j]) & 1u;
    out.input_phase |= static_cast<std::uint8_t>(phase << j);
  }
  out.output_phase = tr.output_phase;
  return out;
}

namespace {
constexpr std::uint8_t kPerms[24][4] = {
    {0, 1, 2, 3}, {0, 1, 3, 2}, {0, 2, 1, 3}, {0, 2, 3, 1}, {0, 3, 1, 2},
    {0, 3, 2, 1}, {1, 0, 2, 3}, {1, 0, 3, 2}, {1, 2, 0, 3}, {1, 2, 3, 0},
    {1, 3, 0, 2}, {1, 3, 2, 0}, {2, 0, 1, 3}, {2, 0, 3, 1}, {2, 1, 0, 3},
    {2, 1, 3, 0}, {2, 3, 0, 1}, {2, 3, 1, 0}, {3, 0, 1, 2}, {3, 0, 2, 1},
    {3, 1, 0, 2}, {3, 1, 2, 0}, {3, 2, 0, 1}, {3, 2, 1, 0},
};
}  // namespace

Tt npn_canon(Tt t, NpnTransform* out_transform) {
  t &= tt_mask(4);
  Tt best = ~0ull;
  NpnTransform best_tr;
  for (const auto& perm : kPerms) {
    for (unsigned phase = 0; phase < 16; ++phase) {
      NpnTransform tr;
      tr.perm = {perm[0], perm[1], perm[2], perm[3]};
      tr.input_phase = static_cast<std::uint8_t>(phase);
      for (unsigned out_phase = 0; out_phase < 2; ++out_phase) {
        tr.output_phase = out_phase != 0;
        Tt candidate = npn_apply(t, tr);
        if (candidate < best) {
          best = candidate;
          best_tr = tr;
        }
      }
    }
  }
  if (out_transform != nullptr) *out_transform = best_tr;
  return best;
}

}  // namespace emorphic
