#pragma once
// Workload builders for SAT sweeping: "doubling" a circuit into two
// functionally equal but structurally different copies sharing the PIs.
// Structural hashing cannot merge the copies — a sweeping engine must —
// which makes these the canonical fraig benchmarks and test inputs.

#include "aig/aig.hpp"

namespace emorphic {

/// Combine two circuits with the same number of PIs into one AIG sharing
/// the PI nodes (names from `a`), with `a`'s POs (suffix "_x") followed by
/// `b`'s (suffix "_y").
Aig union_shared_pis(const Aig& a, const Aig& b);

/// `base` unioned with its sop-balanced restructuring: functionally equal
/// PO pairs, structurally distinct cones.
Aig doubled(const Aig& base);

}  // namespace emorphic
