#include "benchgen/arith.hpp"

#include <cassert>

namespace emorphic {

Word add_input_word(Aig& aig, const std::string& name, unsigned bits) {
  Word word(bits);
  for (unsigned i = 0; i < bits; ++i) {
    word[i] = make_lit(aig.add_pi(name + "[" + std::to_string(i) + "]"));
  }
  return word;
}

void add_output_word(Aig& aig, const std::string& name, const Word& word) {
  for (unsigned i = 0; i < word.size(); ++i) {
    aig.add_po(word[i], name + "[" + std::to_string(i) + "]");
  }
}

namespace {

/// Full adder on literals; returns (sum, carry).
std::pair<Lit, Lit> full_adder(Aig& aig, Lit a, Lit b, Lit c) {
  Lit sum = aig.make_xor(aig.make_xor(a, b), c);
  Lit carry = aig.make_maj(a, b, c);
  return {sum, carry};
}

Word zero_word(unsigned bits) { return Word(bits, kLitFalse); }

}  // namespace

Word ripple_add(Aig& aig, const Word& a, const Word& b, Lit carry_in,
                Lit* carry_out) {
  assert(a.size() == b.size());
  Word sum(a.size());
  Lit carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(aig, a[i], b[i], carry);
    sum[i] = s;
    carry = c;
  }
  if (carry_out != nullptr) *carry_out = carry;
  return sum;
}

Word ripple_sub(Aig& aig, const Word& a, const Word& b, Lit* no_borrow) {
  assert(a.size() == b.size());
  Word not_b(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) not_b[i] = lit_not(b[i]);
  Lit carry = kLitTrue;  // a + ~b + 1
  Word diff = ripple_add(aig, a, not_b, carry, &carry);
  if (no_borrow != nullptr) *no_borrow = carry;  // carry==1 <-> a >= b
  return diff;
}

Word array_multiply(Aig& aig, const Word& a, const Word& b) {
  const unsigned n = static_cast<unsigned>(a.size());
  const unsigned m = static_cast<unsigned>(b.size());
  Word acc = zero_word(n + m);
  for (unsigned j = 0; j < m; ++j) {
    // Partial product a * b_j, shifted by j.
    Word pp = zero_word(n + m);
    for (unsigned i = 0; i < n; ++i) {
      pp[i + j] = aig.make_and(a[i], b[j]);
    }
    acc = ripple_add(aig, acc, pp, kLitFalse, nullptr);
  }
  return acc;
}

Word word_mux(Aig& aig, Lit sel, const Word& t, const Word& e) {
  assert(t.size() == e.size());
  Word out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = aig.make_mux(sel, t[i], e[i]);
  }
  return out;
}

Word shift_left(Aig& aig, const Word& a, unsigned amount) {
  (void)aig;
  Word out(a.size(), kLitFalse);
  for (std::size_t i = amount; i < a.size(); ++i) out[i] = a[i - amount];
  return out;
}

Word barrel_shift_left(Aig& aig, const Word& a, const Word& amount) {
  Word cur = a;
  for (unsigned k = 0; k < amount.size(); ++k) {
    unsigned step = 1u << k;
    if (step >= cur.size()) break;
    cur = word_mux(aig, amount[k], shift_left(aig, cur, step), cur);
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

Aig make_adder(unsigned bits) {
  Aig aig;
  Word a = add_input_word(aig, "a", bits);
  Word b = add_input_word(aig, "b", bits);
  Lit carry = kLitFalse;
  Word sum = ripple_add(aig, a, b, kLitFalse, &carry);
  add_output_word(aig, "s", sum);
  aig.add_po(carry, "cout");
  return aig;
}

Aig make_multiplier(unsigned bits) {
  Aig aig;
  Word a = add_input_word(aig, "a", bits);
  Word b = add_input_word(aig, "b", bits);
  Word p = array_multiply(aig, a, b);
  add_output_word(aig, "p", p);
  return aig;
}

Aig make_square(unsigned bits) {
  Aig aig;
  Word x = add_input_word(aig, "x", bits);
  Word p = array_multiply(aig, x, x);
  add_output_word(aig, "sq", p);
  return aig;
}

Aig make_divisor(unsigned bits) {
  Aig aig;
  Word a = add_input_word(aig, "a", bits);  // dividend
  Word b = add_input_word(aig, "b", bits);  // divisor
  // Restoring long division, MSB first. Remainder register is bits+1 wide
  // so the compare-subtract never overflows.
  Word r = zero_word(bits + 1);
  Word bx(bits + 1);
  for (unsigned i = 0; i < bits; ++i) bx[i] = b[i];
  bx[bits] = kLitFalse;

  Word quotient(bits, kLitFalse);
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    // r = (r << 1) | a_i
    Word shifted = shift_left(aig, r, 1);
    shifted[0] = a[i];
    Lit ge = kLitFalse;
    Word diff = ripple_sub(aig, shifted, bx, &ge);
    quotient[i] = ge;
    r = word_mux(aig, ge, diff, shifted);
  }
  add_output_word(aig, "q", quotient);
  Word rem(bits);
  for (unsigned i = 0; i < bits; ++i) rem[i] = r[i];
  add_output_word(aig, "r", rem);
  return aig;
}

Aig make_sqrt(unsigned bits) {
  assert(bits % 2 == 0);
  Aig aig;
  Word x = add_input_word(aig, "x", bits);
  const unsigned half = bits / 2;
  // Digit-recurrence (restoring) square root: one compare-subtract per
  // result bit against the trial value (root << 1 | 1) << (2*i).
  const unsigned w = bits + 2;
  Word rem = zero_word(w);
  for (unsigned i = 0; i < bits; ++i) rem[i] = x[i];
  Word root = zero_word(w);

  for (int i = static_cast<int>(half) - 1; i >= 0; --i) {
    // trial = (root << (i+1)) + (1 << 2i)
    Word trial = shift_left(aig, root, static_cast<unsigned>(i) + 1);
    trial[2 * i] = kLitTrue;  // bit 2i of (root << (i+1)) is provably 0 here
    Lit ge = kLitFalse;
    Word diff = ripple_sub(aig, rem, trial, &ge);
    rem = word_mux(aig, ge, diff, rem);
    root[i] = ge;
  }
  Word result(half);
  for (unsigned i = 0; i < half; ++i) result[i] = root[i];
  add_output_word(aig, "root", result);
  Word rem_out(bits);
  for (unsigned i = 0; i < bits; ++i) rem_out[i] = rem[i];
  add_output_word(aig, "rem", rem_out);
  return aig;
}

Aig make_log2(unsigned bits) {
  Aig aig;
  Word x = add_input_word(aig, "x", bits);
  // Integer part: index of the most significant set bit (priority encoder).
  unsigned ibits = 0;
  while ((1u << ibits) < bits) ++ibits;
  Word ipart(ibits, kLitFalse);
  Lit found = kLitFalse;
  Word msb_onehot(bits, kLitFalse);
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    Lit here = aig.make_and(x[i], lit_not(found));
    msb_onehot[i] = here;
    found = aig.make_or(found, x[i]);
    for (unsigned k = 0; k < ibits; ++k) {
      if ((static_cast<unsigned>(i) >> k) & 1u) {
        ipart[k] = aig.make_or(ipart[k], here);
      }
    }
  }
  // Normalize: shift so the MSB moves to the top — barrel shift by
  // (bits-1 - msb index); amount = ~ipart truncated (for power-of-two bits).
  Word amount(ibits);
  for (unsigned k = 0; k < ibits; ++k) amount[k] = lit_not(ipart[k]);
  Word mantissa = barrel_shift_left(aig, x, amount);

  // Fraction bits by repeated squaring of the normalized mantissa, using a
  // truncated window to keep the width bounded (digit-recurrence log).
  const unsigned mw = bits < 8 ? bits : 8;  // mantissa window
  Word m(mw);
  for (unsigned i = 0; i < mw; ++i) m[i] = mantissa[bits - mw + i];
  const unsigned fbits = 6;
  Word fraction(fbits, kLitFalse);
  for (unsigned fb = 0; fb < fbits; ++fb) {
    Word sq = array_multiply(aig, m, m);  // 2*mw bits
    // If the square's top bit is set, the digit is 1 and we keep the upper
    // half; otherwise shift one more.
    Lit digit = sq[2 * mw - 1];
    fraction[fbits - 1 - fb] = digit;
    Word hi(mw), lo(mw);
    for (unsigned i = 0; i < mw; ++i) {
      hi[i] = sq[mw + i];
      lo[i] = sq[mw + i - 1];
    }
    m = word_mux(aig, digit, hi, lo);
  }
  add_output_word(aig, "ip", ipart);
  add_output_word(aig, "fp", fraction);
  aig.add_po(found, "nonzero");
  return aig;
}

Aig make_sin(unsigned bits) {
  Aig aig;
  Word x = add_input_word(aig, "x", bits);
  // Fixed-point polynomial approximation sin(x) ~ x - x^3/6 on [0, 1):
  // x^3 via two truncated multiplications, division by 6 approximated by
  // (x^3 >> 3) + (x^3 >> 5) + (x^3 >> 7) (1/6 ~ 0.0101010_2).
  Word x2_full = array_multiply(aig, x, x);
  Word x2(bits);
  for (unsigned i = 0; i < bits; ++i) x2[i] = x2_full[bits + i];
  Word x3_full = array_multiply(aig, x2, x);
  Word x3(bits);
  for (unsigned i = 0; i < bits; ++i) x3[i] = x3_full[bits + i];

  auto shr = [&](const Word& w, unsigned k) {
    Word out(w.size(), kLitFalse);
    for (std::size_t i = 0; i + k < w.size(); ++i) out[i] = w[i + k];
    return out;
  };
  Word sixth = ripple_add(aig, shr(x3, 3), shr(x3, 5), kLitFalse, nullptr);
  sixth = ripple_add(aig, sixth, shr(x3, 7), kLitFalse, nullptr);
  Lit borrow_ok = kLitFalse;
  Word result = ripple_sub(aig, x, sixth, &borrow_ok);
  add_output_word(aig, "sin", result);
  return aig;
}

Aig make_hyp(unsigned bits) {
  Aig aig;
  Word a = add_input_word(aig, "a", bits);
  Word b = add_input_word(aig, "b", bits);
  Word a2 = array_multiply(aig, a, a);
  Word b2 = array_multiply(aig, b, b);
  Lit carry = kLitFalse;
  Word sum = ripple_add(aig, a2, b2, kLitFalse, &carry);
  sum.push_back(carry);
  if (sum.size() % 2 != 0) sum.push_back(kLitFalse);

  // Inline integer square root of the 2n(+2)-bit sum.
  const unsigned sbits = static_cast<unsigned>(sum.size());
  const unsigned half = sbits / 2;
  const unsigned w = sbits + 2;
  Word rem(w, kLitFalse);
  for (unsigned i = 0; i < sbits; ++i) rem[i] = sum[i];
  Word root(w, kLitFalse);
  for (int i = static_cast<int>(half) - 1; i >= 0; --i) {
    Word trial = shift_left(aig, root, static_cast<unsigned>(i) + 1);
    trial[2 * i] = kLitTrue;  // bit 2i of (root << (i+1)) is provably 0 here
    Lit ge = kLitFalse;
    Word diff = ripple_sub(aig, rem, trial, &ge);
    rem = word_mux(aig, ge, diff, rem);
    root[i] = ge;
  }
  Word result(half);
  for (unsigned i = 0; i < half; ++i) result[i] = root[i];
  add_output_word(aig, "hyp", result);
  return aig;
}

}  // namespace emorphic
