#include "benchgen/control.hpp"

#include <string>
#include <vector>

#include "benchgen/arith.hpp"

namespace emorphic {

Aig make_arbiter(unsigned clients) {
  Aig aig;
  std::vector<Lit> req(clients);
  for (unsigned i = 0; i < clients; ++i) {
    req[i] = make_lit(aig.add_pi("req[" + std::to_string(i) + "]"));
  }
  // Round-robin pointer, one-hot encoded (extra inputs, as in the EPFL
  // arbiter which carries state from outside the combinational cloud).
  std::vector<Lit> ptr(clients);
  for (unsigned i = 0; i < clients; ++i) {
    ptr[i] = make_lit(aig.add_pi("ptr[" + std::to_string(i) + "]"));
  }

  // For each possible pointer position p, fixed-priority arbitration over
  // the rotated request vector; the grant is the OR over pointer positions
  // of (ptr one-hot at p) & rotated-priority grant.
  std::vector<Lit> grant(clients, kLitFalse);
  for (unsigned p = 0; p < clients; ++p) {
    Lit taken = kLitFalse;
    for (unsigned k = 0; k < clients; ++k) {
      unsigned i = (p + k) % clients;
      Lit here = aig.make_and(req[i], lit_not(taken));
      Lit gated = aig.make_and(here, ptr[p]);
      grant[i] = aig.make_or(grant[i], gated);
      taken = aig.make_or(taken, req[i]);
    }
  }
  Lit busy = kLitFalse;
  for (unsigned i = 0; i < clients; ++i) {
    aig.add_po(grant[i], "grant[" + std::to_string(i) + "]");
    busy = aig.make_or(busy, req[i]);
  }
  aig.add_po(busy, "busy");
  return aig;
}

Aig make_mem_ctrl(const MemCtrlParams& params) {
  Aig aig;
  Word opcode = add_input_word(aig, "op", params.opcode_bits);
  Word addr = add_input_word(aig, "addr", params.address_bits);
  Word refresh_cnt = add_input_word(aig, "rfc", params.address_bits);
  Word refresh_limit = add_input_word(aig, "rfl", params.address_bits);
  std::vector<Lit> req(params.requesters);
  for (unsigned i = 0; i < params.requesters; ++i) {
    req[i] = make_lit(aig.add_pi("mreq[" + std::to_string(i) + "]"));
  }
  std::vector<Lit> bank_busy(params.banks);
  for (unsigned i = 0; i < params.banks; ++i) {
    bank_busy[i] = make_lit(aig.add_pi("busy[" + std::to_string(i) + "]"));
  }

  // Opcode decode: full one-hot decode of the opcode field.
  const unsigned num_cmds = 1u << params.opcode_bits;
  std::vector<Lit> cmd(num_cmds);
  for (unsigned c = 0; c < num_cmds; ++c) {
    std::vector<Lit> lits(params.opcode_bits);
    for (unsigned k = 0; k < params.opcode_bits; ++k) {
      lits[k] = ((c >> k) & 1u) ? opcode[k] : lit_not(opcode[k]);
    }
    cmd[c] = aig.make_and_n(lits);
  }

  // Bank decode from the low address bits; row decode from the high bits.
  unsigned bank_bits = 0;
  while ((1u << bank_bits) < params.banks) ++bank_bits;
  std::vector<Lit> bank_sel(params.banks);
  for (unsigned b = 0; b < params.banks; ++b) {
    std::vector<Lit> lits(bank_bits);
    for (unsigned k = 0; k < bank_bits; ++k) {
      lits[k] = ((b >> k) & 1u) ? addr[k] : lit_not(addr[k]);
    }
    bank_sel[b] = aig.make_and_n(lits);
  }
  const unsigned row_bits = params.address_bits - bank_bits;
  const unsigned num_rows = 1u << (row_bits < 8 ? row_bits : 8);
  std::vector<Lit> row_sel(num_rows);
  for (unsigned r = 0; r < num_rows; ++r) {
    std::vector<Lit> lits;
    for (unsigned k = 0; k < (row_bits < 8 ? row_bits : 8); ++k) {
      lits.push_back(((r >> k) & 1u) ? addr[bank_bits + k]
                                     : lit_not(addr[bank_bits + k]));
    }
    row_sel[r] = aig.make_and_n(lits);
  }

  // Refresh due: refresh counter has reached the programmed limit.
  Lit no_borrow = kLitFalse;
  ripple_sub(aig, refresh_cnt, refresh_limit, &no_borrow);
  Lit refresh_due = no_borrow;

  // Grant logic: fixed priority over requesters, masked by the selected
  // bank being free and no refresh pending.
  Lit bank_free = kLitFalse;
  for (unsigned b = 0; b < params.banks; ++b) {
    bank_free =
        aig.make_or(bank_free, aig.make_and(bank_sel[b], lit_not(bank_busy[b])));
  }
  Lit allow = aig.make_and(bank_free, lit_not(refresh_due));
  Lit taken = kLitFalse;
  for (unsigned i = 0; i < params.requesters; ++i) {
    Lit g = aig.make_and(aig.make_and(req[i], lit_not(taken)), allow);
    aig.add_po(g, "mgrant[" + std::to_string(i) + "]");
    taken = aig.make_or(taken, req[i]);
  }

  // Command strobes: a few representative outputs mixing decode products.
  Lit is_read = cmd[1], is_write = cmd[2], is_act = cmd[3], is_pre = cmd[4];
  for (unsigned b = 0; b < params.banks; ++b) {
    Lit act = aig.make_and(is_act, bank_sel[b]);
    Lit pre = aig.make_and(is_pre, bank_sel[b]);
    Lit rw = aig.make_and(aig.make_or(is_read, is_write), bank_sel[b]);
    aig.add_po(aig.make_and(act, allow), "act[" + std::to_string(b) + "]");
    aig.add_po(aig.make_and(pre, lit_not(refresh_due)),
               "pre[" + std::to_string(b) + "]");
    aig.add_po(aig.make_and(rw, bank_free), "rw[" + std::to_string(b) + "]");
  }
  // Row strobes keyed on command+row decode (bulk of the logic cloud).
  for (unsigned r = 0; r < num_rows; ++r) {
    Lit strobe = aig.make_and(row_sel[r], aig.make_or(is_act, is_read));
    aig.add_po(aig.make_and(strobe, allow), "row[" + std::to_string(r) + "]");
  }
  aig.add_po(refresh_due, "refresh");

  // ECC path: Hamming-style syndrome over a data word, a corrected-data
  // word, and a double-error flag — the datapath-ish half of a real memory
  // controller's combinational cloud.
  const unsigned data_bits = 4 * params.address_bits;
  Word data = add_input_word(aig, "wdata", data_bits);
  Word check = add_input_word(aig, "rcheck", 6);
  std::vector<Lit> syndrome(6, kLitFalse);
  for (unsigned s = 0; s < 6; ++s) {
    Lit acc = kLitFalse;
    for (unsigned i = 0; i < data_bits; ++i) {
      // Bit i participates in syndrome s when bit s of (i+1) is set.
      if (((i + 1) >> s) & 1u) acc = aig.make_xor(acc, data[i]);
    }
    syndrome[s] = aig.make_xor(acc, check[s]);
    aig.add_po(syndrome[s], "synd[" + std::to_string(s) + "]");
  }
  // Single-error correction: flip the bit addressed by the syndrome.
  for (unsigned i = 0; i < data_bits; ++i) {
    std::vector<Lit> match_lits(6);
    for (unsigned s = 0; s < 6; ++s) {
      match_lits[s] = (((i + 1) >> s) & 1u) ? syndrome[s] : lit_not(syndrome[s]);
    }
    Lit flip = aig.make_and_n(match_lits);
    aig.add_po(aig.make_xor(data[i], flip), "cdata[" + std::to_string(i) + "]");
  }
  // Any-error flag gated by the read command.
  Lit any = kLitFalse;
  for (unsigned s = 0; s < 6; ++s) any = aig.make_or(any, syndrome[s]);
  aig.add_po(aig.make_and(any, is_read), "ecc_err");
  return aig;
}

}  // namespace emorphic
