#pragma once
// Control-dominated members of the EPFL-like benchmark family:
// a round-robin priority arbiter and a memory-controller command/decode
// block (both combinational, like the EPFL originals' logic clouds).

#include "aig/aig.hpp"

namespace emorphic {

/// EPFL "arbiter": `clients` request lines, a round-robin pointer (extra
/// PIs), one-hot grants plus a "busy" flag.
Aig make_arbiter(unsigned clients);

struct MemCtrlParams {
  unsigned address_bits = 12;
  unsigned opcode_bits = 4;
  unsigned banks = 8;
  unsigned requesters = 8;
};

/// EPFL "mem_ctrl": opcode decode, bank/row address decode, refresh
/// comparison, ECC syndrome logic and grant logic for several requesters.
Aig make_mem_ctrl(const MemCtrlParams& params = {});

}  // namespace emorphic
