#pragma once
// The EPFL-like benchmark registry: the ten circuits of Tables II/III at
// laptop-scale default widths, with the paper's reference e-node counts for
// side-by-side reporting. Widths are chosen so the full Table II sweep runs
// in minutes; every generator also accepts custom scales via benchgen/arith
// and benchgen/control directly.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace emorphic {

struct EpflSpec {
  std::string name;
  std::uint32_t paper_enodes;  // Table III "# e-node" on the full-size EPFL circuit
  const char* scale_note;      // what the default scaled instance is
};

/// The ten circuits in the paper's size order (largest first).
const std::vector<EpflSpec>& epfl_specs();

/// Generate a benchmark instance by name at the default scaled size.
/// Throws std::invalid_argument for unknown names.
Aig make_epfl(const std::string& name);

/// All names, paper order.
std::vector<std::string> epfl_names();

}  // namespace emorphic
