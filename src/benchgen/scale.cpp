#include "benchgen/scale.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace emorphic {

Aig tile_circuit(const Aig& base, unsigned copies) {
  if (copies == 0) {
    throw std::invalid_argument("tile_circuit: need at least one copy");
  }
  Aig out;
  for (unsigned k = 0; k < copies; ++k) {
    std::string suffix = "_t" + std::to_string(k);
    std::vector<Lit> map(base.num_nodes(), kLitFalse);
    for (std::uint32_t i = 0; i < base.num_pis(); ++i) {
      map[base.pis()[i]] = make_lit(out.add_pi(base.pi_name(i) + suffix));
    }
    auto translate = [&map](Lit l) {
      return lit_notcond(map[lit_var(l)], lit_is_compl(l));
    };
    for (Var v = 1; v < base.num_nodes(); ++v) {
      if (!base.is_and(v)) continue;
      map[v] = out.make_and(translate(base.fanin0(v)),
                            translate(base.fanin1(v)));
    }
    for (std::uint32_t i = 0; i < base.num_pos(); ++i) {
      out.add_po(translate(base.po(i)), base.po_name(i) + suffix);
    }
  }
  return out;
}

Aig tile_to_ands(const Aig& base, std::size_t target_ands) {
  if (base.num_ands() == 0) {
    throw std::invalid_argument("tile_to_ands: base circuit has no AND nodes");
  }
  std::size_t per_copy = base.num_ands();
  std::size_t copies = (target_ands + per_copy - 1) / per_copy;
  if (copies == 0) copies = 1;
  return tile_circuit(base, static_cast<unsigned>(copies));
}

}  // namespace emorphic
