#include "benchgen/epfl.hpp"

#include <stdexcept>

#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"

namespace emorphic {

const std::vector<EpflSpec>& epfl_specs() {
  static const std::vector<EpflSpec> specs = {
      {"hyp", 420897, "12-bit hypotenuse (2 squarers + adder + sqrt)"},
      {"div", 101860, "16-bit restoring divider"},
      {"mem_ctrl", 84701, "8-bit address / 4-bank controller"},
      {"log2", 54532, "16-bit fixed-point log2"},
      {"multiplier", 50761, "12x12 array multiplier"},
      {"sqrt", 41234, "16-bit restoring square root"},
      {"square", 35685, "10-bit squarer"},
      {"arbiter", 23619, "16-client round-robin arbiter"},
      {"sin", 8948, "8-bit polynomial sine"},
      {"adder", 2548, "12-bit ripple-carry adder"},
  };
  return specs;
}

Aig make_epfl(const std::string& name) {
  if (name == "adder") return make_adder(12);
  if (name == "sin") return make_sin(8);
  if (name == "arbiter") return make_arbiter(16);
  if (name == "square") return make_square(10);
  if (name == "sqrt") return make_sqrt(16);
  if (name == "multiplier") return make_multiplier(12);
  if (name == "log2") return make_log2(16);
  if (name == "mem_ctrl") return make_mem_ctrl({});
  if (name == "div") return make_divisor(16);
  if (name == "hyp") return make_hyp(12);
  throw std::invalid_argument("unknown EPFL benchmark: " + name);
}

std::vector<std::string> epfl_names() {
  std::vector<std::string> names;
  for (const auto& spec : epfl_specs()) names.push_back(spec.name);
  return names;
}

}  // namespace emorphic
