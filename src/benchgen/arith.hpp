#pragma once
// Word-level circuit construction helpers and the arithmetic members of the
// EPFL-like benchmark family (adder, multiplier, square, div, sqrt, log2,
// sin, hyp). The real EPFL suite [20] is distribution-restricted input data;
// these generators rebuild circuits of the same character — deep carry
// chains, multiplier arrays, iterative restoring dividers — at laptop-scale
// widths (see DESIGN.md, Substitutions).

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace emorphic {

/// A little-endian word of AIG literals (bit 0 = LSB).
using Word = std::vector<Lit>;

/// Create `bits` fresh PIs named `name[i]`.
Word add_input_word(Aig& aig, const std::string& name, unsigned bits);
/// Register one PO per bit, named `name[i]`.
void add_output_word(Aig& aig, const std::string& name, const Word& word);

// --- combinational word operators -----------------------------------------
/// Ripple-carry addition; returns sum (same width) and sets *carry_out.
Word ripple_add(Aig& aig, const Word& a, const Word& b, Lit carry_in,
                Lit* carry_out);
/// a - b (two's complement); *no_borrow is 1 when a >= b.
Word ripple_sub(Aig& aig, const Word& a, const Word& b, Lit* no_borrow);
/// Array multiplication, full 2n-bit product.
Word array_multiply(Aig& aig, const Word& a, const Word& b);
/// 2:1 word multiplexer: sel ? t : e.
Word word_mux(Aig& aig, Lit sel, const Word& t, const Word& e);
/// Logical left shift by a constant.
Word shift_left(Aig& aig, const Word& a, unsigned amount);
/// Variable left shift (barrel), shift amount is a word.
Word barrel_shift_left(Aig& aig, const Word& a, const Word& amount);

// --- benchmark circuits -----------------------------------------------------
Aig make_adder(unsigned bits);        // EPFL "adder"
Aig make_multiplier(unsigned bits);   // EPFL "multiplier"
Aig make_square(unsigned bits);       // EPFL "square"
Aig make_divisor(unsigned bits);      // EPFL "div" (quotient + remainder)
Aig make_sqrt(unsigned bits);         // EPFL "sqrt" (integer square root)
Aig make_log2(unsigned bits);         // EPFL "log2" (fixed-point log2)
Aig make_sin(unsigned bits);          // EPFL "sin" (polynomial approximation)
Aig make_hyp(unsigned bits);          // EPFL "hyp" (sqrt(x^2 + y^2))

}  // namespace emorphic
