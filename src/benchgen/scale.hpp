#pragma once
// Industrial-scale workload builders for the partitioned flow: tile a
// benchmark circuit into many disjoint copies to reach a target AND count.
// Copies share nothing (fresh PIs/POs per tile), so structural hashing
// cannot collapse them and the node count scales linearly — which is what
// lets bench/micro_scale push the EPFL-like generators past 10^6 AND nodes
// without inventing new circuit families.

#include <cstddef>

#include "aig/aig.hpp"

namespace emorphic {

/// Tile `copies` disjoint instances of `base` into one AIG. Copy k gets its
/// own PIs/POs, names suffixed "_tk". Throws std::invalid_argument for zero
/// copies.
Aig tile_circuit(const Aig& base, unsigned copies);

/// Tile `base` with just enough copies that the result holds at least
/// `target_ands` AND nodes. Throws std::invalid_argument when `base` has no
/// AND nodes to scale.
Aig tile_to_ands(const Aig& base, std::size_t target_ands);

}  // namespace emorphic
