#include "benchgen/doubling.hpp"

#include <stdexcept>
#include <vector>

#include "opt/resyn.hpp"
#include "opt/sop_balance.hpp"

namespace emorphic {

Aig union_shared_pis(const Aig& a, const Aig& b) {
  if (a.num_pis() != b.num_pis()) {
    throw std::invalid_argument("union_shared_pis: PI count mismatch");
  }
  Aig out;
  std::vector<Lit> pi_lits;
  pi_lits.reserve(a.num_pis());
  for (std::uint32_t i = 0; i < a.num_pis(); ++i) {
    pi_lits.push_back(make_lit(out.add_pi(a.pi_name(i))));
  }
  auto append_copy = [&](const Aig& src, const char* suffix) {
    std::vector<Lit> map(src.num_nodes(), kLitFalse);
    for (std::uint32_t i = 0; i < src.num_pis(); ++i) {
      map[src.pis()[i]] = pi_lits[i];
    }
    auto translate = [&map](Lit l) {
      return lit_notcond(map[lit_var(l)], lit_is_compl(l));
    };
    for (Var v = 1; v < src.num_nodes(); ++v) {
      if (!src.is_and(v)) continue;
      map[v] = out.make_and(translate(src.fanin0(v)), translate(src.fanin1(v)));
    }
    for (std::uint32_t i = 0; i < src.num_pos(); ++i) {
      out.add_po(translate(src.po(i)), src.po_name(i) + suffix);
    }
  };
  append_copy(a, "_x");
  append_copy(b, "_y");
  return out;
}

Aig doubled(const Aig& base) {
  return union_shared_pis(base, sop_balance(strash(base)));
}

}  // namespace emorphic
