#include "egraph/pattern.hpp"

#include <gtest/gtest.h>

namespace emorphic {
namespace {

TEST(Pattern, CompileNumbersVariables) {
  Rewrite rw = Rewrite::make("t", Pat::and_(Pat::v("a"), Pat::v("b")),
                             Pat::and_(Pat::v("b"), Pat::v("a")));
  EXPECT_EQ(rw.var_names.size(), 2u);
  EXPECT_EQ(rw.lhs.num_vars(), 2u);
  EXPECT_EQ(rw.rhs.num_vars(), 2u);
}

TEST(Pattern, ToString) {
  std::vector<std::string> names;
  Pattern p = Pattern::compile(
      Pat::or_(Pat::not_(Pat::v("x")), Pat::and_(Pat::v("x"), Pat::v("y"))),
      names);
  EXPECT_EQ(p.to_string(names), "(!x | (x & y))");
}

TEST(Pattern, SimpleMatch) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_and(a, b);

  std::vector<std::string> names;
  Pattern p = Pattern::compile(Pat::and_(Pat::v("x"), Pat::v("y")), names);
  std::vector<Subst> matches;
  match_in_class(eg, p, f, matches, 100);
  // Commutative matching yields both orders.
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_TRUE((matches[0][0] == eg.find(a) && matches[0][1] == eg.find(b)) ||
              (matches[0][0] == eg.find(b) && matches[0][1] == eg.find(a)));
}

TEST(Pattern, NonlinearPatternRequiresSameClass) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId aa = eg.add_and(a, a);
  EClassId ab = eg.add_and(a, b);

  std::vector<std::string> names;
  Pattern p = Pattern::compile(Pat::and_(Pat::v("x"), Pat::v("x")), names);
  std::vector<Subst> matches;
  match_in_class(eg, p, aa, matches, 100);
  // Children are the same class, so the two orders coincide: one match.
  EXPECT_EQ(matches.size(), 1u);
  matches.clear();
  match_in_class(eg, p, ab, matches, 100);
  EXPECT_TRUE(matches.empty());
}

TEST(Pattern, NestedMatch) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId c = eg.add_var(2);
  EClassId bc = eg.add_or(b, c);
  EClassId f = eg.add_and(a, bc);

  std::vector<std::string> names;
  Pattern p = Pattern::compile(
      Pat::and_(Pat::v("x"), Pat::or_(Pat::v("y"), Pat::v("z"))), names);
  std::vector<Subst> matches;
  match_in_class(eg, p, f, matches, 100);
  ASSERT_FALSE(matches.empty());
  bool found = false;
  for (const Subst& s : matches) {
    if (s[names.size() - 3] == eg.find(a)) found = true;  // x bound to a
  }
  EXPECT_TRUE(found);
}

TEST(Pattern, MatchAcrossMergedClasses) {
  // After a merge, patterns see every equivalent form in the class.
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId andnode = eg.add_and(a, b);
  EClassId c = eg.add_var(2);
  eg.merge(andnode, c);  // c is equivalent to a&b
  eg.rebuild();

  std::vector<std::string> names;
  Pattern p = Pattern::compile(Pat::and_(Pat::v("x"), Pat::v("y")), names);
  std::vector<Subst> matches;
  match_in_class(eg, p, eg.find(c), matches, 100);
  EXPECT_FALSE(matches.empty());
}

TEST(Pattern, ConstPatternsMatchOnlyConsts) {
  EGraph eg;
  EClassId zero = eg.add_const0();
  EClassId a = eg.add_var(0);
  EClassId f = eg.add_and(a, zero);

  std::vector<std::string> names;
  Pattern p = Pattern::compile(Pat::and_(Pat::v("x"), Pat::c0()), names);
  std::vector<Subst> matches;
  match_in_class(eg, p, f, matches, 100);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0][0], eg.find(a));
  matches.clear();
  EClassId g = eg.add_and(a, eg.add_var(1));
  match_in_class(eg, p, g, matches, 100);
  EXPECT_TRUE(matches.empty());
}

TEST(Pattern, MatchLimitRespected) {
  EGraph eg;
  // Build a class with many AND forms by merging.
  EClassId root = eg.add_var(0);
  for (std::uint32_t i = 1; i < 10; ++i) {
    EClassId x = eg.add_var(i);
    EClassId y = eg.add_var(i + 100);
    eg.merge(root, eg.add_and(x, y));
  }
  eg.rebuild();
  std::vector<std::string> names;
  Pattern p = Pattern::compile(Pat::and_(Pat::v("x"), Pat::v("y")), names);
  std::vector<Subst> matches;
  match_in_class(eg, p, eg.find(root), matches, 5);
  EXPECT_LE(matches.size(), 5u);
}

TEST(Pattern, InstantiateBuildsRhs) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  Rewrite rw = Rewrite::make("demorgan", Pat::not_(Pat::and_(Pat::v("a"), Pat::v("b"))),
                             Pat::or_(Pat::not_(Pat::v("a")), Pat::not_(Pat::v("b"))));
  Subst s(rw.var_names.size());
  s[0] = a;
  s[1] = b;
  EClassId rhs = instantiate(eg, rw.rhs, s);
  // rhs must be OR(NOT a, NOT b)
  EClassId expect = eg.add_or(eg.add_not(a), eg.add_not(b));
  EXPECT_EQ(eg.find(rhs), eg.find(expect));
}

}  // namespace
}  // namespace emorphic
