#include "egraph/sexpr.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "extract/extractor.hpp"

namespace emorphic {
namespace {

TEST(SExpr, FlattenSmallCircuit) {
  Aig aig;
  Lit a = make_lit(aig.add_pi("a"));
  Lit b = make_lit(aig.add_pi("b"));
  aig.add_po(aig.make_and(a, lit_not(b)), "f");
  std::string text = aig_to_sexpr(aig, SExprLimits{});
  EXPECT_NE(text.find("(and a (not b))"), std::string::npos);
}

TEST(SExpr, RoundTripThroughAig) {
  Rng rng(51);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(5, 2, 15, rng);
    std::string text = aig_to_sexpr(aig, SExprLimits{});
    Aig back = sexpr_to_aig(text, SExprLimits{});
    // PI order may differ (leaves appear in traversal order), so compare
    // only when the interfaces coincide; otherwise at least the PI count.
    EXPECT_EQ(back.num_pos(), aig.num_pos());
    EXPECT_LE(back.num_pis(), aig.num_pis());
  }
}

TEST(SExpr, SharedNodesAreDuplicated) {
  // The E-Syn bottleneck made concrete: a shared node is textually
  // duplicated, so the flattened size grows even though the DAG does not.
  Aig aig;
  Lit a = make_lit(aig.add_pi("a"));
  Lit b = make_lit(aig.add_pi("b"));
  Lit shared = aig.make_and(a, b);
  Lit f = aig.make_and(shared, lit_not(shared));  // strash folds this to 0
  EXPECT_EQ(f, kLitFalse);
  Lit g = aig.make_and(aig.make_and(shared, a), aig.make_and(shared, b));
  aig.add_po(g, "g");
  std::string text = aig_to_sexpr(aig, SExprLimits{});
  // "(and a b)" occurs at least twice in the flattened form.
  std::size_t first = text.find("(and a b)");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(text.find("(and a b)", first + 1), std::string::npos);
}

TEST(SExpr, ExponentialBlowupHitsMemoryGuard) {
  // A ripple-carry adder's flattened form grows ~3^bits; 24 bits must trip
  // the (tiny) memory budget.
  Aig adder = make_adder(24);
  SExprLimits limits;
  limits.max_chars = 1u << 20;  // 1 MiB
  limits.time_limit_s = 30.0;
  try {
    aig_to_sexpr(adder, limits);
    FAIL() << "expected SExprLimitError";
  } catch (const SExprLimitError& e) {
    EXPECT_EQ(e.kind(), SExprLimitError::Kind::kMemory);
  }
}

TEST(SExpr, TimeGuardFires) {
  Aig adder = make_adder(32);
  SExprLimits limits;
  limits.max_chars = ~0ull >> 1;  // effectively no memory bound
  limits.time_limit_s = 0.01;
  try {
    aig_to_sexpr(adder, limits);
    FAIL() << "expected SExprLimitError";
  } catch (const SExprLimitError& e) {
    EXPECT_EQ(e.kind(), SExprLimitError::Kind::kTimeout);
  }
}

TEST(SExpr, SmallAdderSucceeds) {
  // The Table III shape: small, shallow circuits still convert.
  Aig adder = make_adder(8);
  SExprLimits limits;
  limits.max_chars = 1u << 26;
  limits.time_limit_s = 10.0;
  std::string text = aig_to_sexpr(adder, limits);
  EXPECT_FALSE(text.empty());
  SExprEGraph eg = sexpr_to_egraph(text, limits);
  EXPECT_EQ(eg.roots.size(), adder.num_pos());
  EXPECT_GT(eg.egraph.num_enodes(), 0u);
}

TEST(SExpr, EGraphToSExprUsesChoices) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_and(a, b);
  Extraction sol = greedy_extract(eg, CostModel{CostKind::kSize});
  std::vector<std::uint32_t> choice(eg.num_classes_created(), 0);
  for (EClassId c : eg.class_ids()) choice[c] = sol.choice(c);
  std::string text = egraph_to_sexpr(eg, {SerializedRoot{f, false, "f"}},
                                     {"a", "b"}, choice, SExprLimits{});
  EXPECT_EQ(text, "(outputs (f (and a b)))");
}

}  // namespace
}  // namespace emorphic
