#include "egraph/snapshot.hpp"

#include <gtest/gtest.h>

#include <string>

#include "../test_helpers.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/conversion.hpp"

namespace emorphic {
namespace {

// A moderately interesting e-graph: a random circuit pushed through a couple
// of saturation iterations, so classes hold multiple nodes, the union-find
// has real merges, and parent lists are non-trivial.
EGraph rewritten_egraph(std::uint64_t seed, std::size_t iterations = 2) {
  Rng rng(seed);
  Aig aig = testing::random_aig(4, 2, 20, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerParams limits;
  limits.max_iterations = iterations;
  limits.max_enodes = 5000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  return std::move(ce.egraph);
}

TEST(Snapshot, RoundTripSmallGraph) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_or(eg.add_not(a), eg.add_and(a, b));
  (void)f;
  std::string bytes = egraph_to_snapshot(eg);
  EGraph back = snapshot_to_egraph(bytes);
  EXPECT_EQ(back.num_classes(), eg.num_classes());
  EXPECT_EQ(back.num_enodes(), eg.num_enodes());
  std::string why;
  EXPECT_TRUE(back.check_invariants(&why)) << why;
}

TEST(Snapshot, RoundTripIsAByteFixedPoint) {
  // snapshot(restore(snapshot(g))) == snapshot(g): the restored e-graph is
  // observationally identical, so re-serializing it reproduces the bytes.
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    EGraph eg = rewritten_egraph(seed);
    std::string bytes = egraph_to_snapshot(eg);
    EGraph back = snapshot_to_egraph(bytes);
    std::string why;
    ASSERT_TRUE(back.check_invariants(&why)) << why;
    EXPECT_EQ(egraph_to_snapshot(back), bytes) << "seed " << seed;
  }
}

TEST(Snapshot, RestoredGraphContinuesSaturationIdentically) {
  // The whole point of the format: resuming iteration k+1 from a snapshot
  // taken after iteration k must reproduce the uninterrupted run bit for
  // bit. Continue both the original and the restored graph with the same
  // limits and compare final snapshots.
  EGraph original = rewritten_egraph(11, 2);
  std::string mid = egraph_to_snapshot(original);
  EGraph restored = snapshot_to_egraph(mid);

  RunnerParams more;
  more.max_iterations = 2;
  more.max_enodes = 20000;
  const std::vector<Rewrite> rules = make_logic_rules();
  run_rewriting(original, rules, more);
  run_rewriting(restored, rules, more);

  EXPECT_EQ(egraph_to_snapshot(restored), egraph_to_snapshot(original));
}

TEST(Snapshot, DirtyEGraphIsRejected) {
  // Snapshots are only taken between iterations where rebuild() has run;
  // serializing a graph with pending merges would bake in a broken state.
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId ab = eg.add_and(a, b);
  EClassId ba = eg.add_or(a, b);
  eg.merge(ab, ba);  // no rebuild(): eg.is_dirty()
  ASSERT_TRUE(eg.is_dirty());
  EXPECT_THROW(egraph_to_snapshot(eg), SnapshotError);
}

TEST(Snapshot, EmptyInputThrows) {
  EXPECT_THROW(snapshot_to_egraph(""), SnapshotError);
}

TEST(Snapshot, WrongMagicThrows) {
  std::string bytes = egraph_to_snapshot(rewritten_egraph(21));
  bytes[0] = 'X';
  EXPECT_THROW(snapshot_to_egraph(bytes), SnapshotError);
}

TEST(Snapshot, VersionSkewThrows) {
  // A snapshot from a future (or corrupted) version must be refused, not
  // misinterpreted.
  std::string bytes = egraph_to_snapshot(rewritten_egraph(22));
  bytes[4] = static_cast<char>(0x7f);
  EXPECT_THROW(snapshot_to_egraph(bytes), SnapshotError);
}

TEST(Snapshot, TrailingGarbageThrows) {
  std::string bytes = egraph_to_snapshot(rewritten_egraph(23));
  EXPECT_THROW(snapshot_to_egraph(bytes + "x"), SnapshotError);
}

TEST(Snapshot, EveryTruncationThrowsTyped) {
  // Chop the snapshot at every prefix length: each must throw SnapshotError
  // (never crash, never return). This is the crash-safety contract a
  // checkpoint file torn mid-write leans on.
  std::string bytes = egraph_to_snapshot(rewritten_egraph(24));
  ASSERT_GT(bytes.size(), 8u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(snapshot_to_egraph(bytes.substr(0, len)), SnapshotError)
        << "prefix length " << len;
  }
}

TEST(Snapshot, ByteFlipsNeverCrash) {
  // Single-byte corruption anywhere in the payload either throws the typed
  // error or restores to *some* graph — it must never crash, loop, or
  // over-allocate (the sanitizer jobs give this test its teeth). A flip
  // that survives parsing may yield a semantically different graph; that is
  // what the fingerprint gates in the checkpoint formats are for.
  std::string bytes = egraph_to_snapshot(rewritten_egraph(25));
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (unsigned char flip : {0x01, 0x80, 0xff}) {
      std::string bad = bytes;
      bad[pos] = static_cast<char>(bad[pos] ^ flip);
      try {
        EGraph back = snapshot_to_egraph(bad);
        // Walk the result so a structurally broken restore would trip the
        // sanitizers here rather than in a later consumer.
        (void)back.num_classes();
        (void)back.num_enodes();
      } catch (const SnapshotError&) {
        // typed rejection is the expected common case
      }
    }
  }
}

TEST(Snapshot, ReaderPrimitivesGuardOverflow) {
  // A varint longer than 64 bits must be refused by the shared reader the
  // checkpoint formats build on.
  std::string bad(10, static_cast<char>(0xff));
  bad.push_back(static_cast<char>(0x01));
  SnapshotReader reader(bad);
  EXPECT_THROW(reader.varint("field"), SnapshotError);
}

}  // namespace
}  // namespace emorphic
