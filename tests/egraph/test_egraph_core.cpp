// Tests for the e-graph core overhaul: union-find canonicalization under
// long merge chains, the flat hashcons, head-operator-indexed matching as a
// drop-in for full scanning, and deterministic parallel matching.

#include <gtest/gtest.h>

#include "egraph/egraph.hpp"
#include "egraph/hashcons.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "util/rng.hpp"

namespace emorphic {
namespace {

// --- union-find canonicalization --------------------------------------------

TEST(EGraphCore, LongMergeChainCanonicalizes) {
  EGraph eg;
  constexpr std::uint32_t kChain = 4096;
  std::vector<EClassId> vars;
  vars.reserve(kChain);
  for (std::uint32_t i = 0; i < kChain; ++i) vars.push_back(eg.add_var(i));
  // Give every var a parent so congruence repair has real work to do.
  EClassId probe = eg.add_var(kChain + 1);
  for (EClassId v : vars) eg.add_and(v, probe);

  // Merge into one class via a long chain, alternating direction so the
  // union-find sees both deep and shallow attachment orders.
  for (std::uint32_t i = 1; i < kChain; ++i) {
    if (i % 2 == 0) {
      eg.merge(vars[i - 1], vars[i]);
    } else {
      eg.merge(vars[i], vars[i - 1]);
    }
  }
  eg.rebuild();

  // All chain members canonicalize to one root, and every AND(v, probe)
  // parent collapsed into a single congruent class.
  EClassId root = eg.find(vars[0]);
  for (EClassId v : vars) EXPECT_EQ(eg.find(v), root);
  EXPECT_TRUE(eg.is_root(root));
  EXPECT_EQ(eg.lookup(ENode::and_of(root, eg.find(probe))),
            eg.lookup(ENode::and_of(eg.find(probe), root)));

  // check_invariants also verifies full path compression (the canonical-id
  // cache the parallel matcher depends on).
  std::string why;
  EXPECT_TRUE(eg.check_invariants(&why)) << why;
}

TEST(EGraphCore, RepeatedMergeRoundsStayCanonical) {
  EGraph eg;
  Rng rng(99);
  std::vector<EClassId> leaves;
  for (std::uint32_t i = 0; i < 64; ++i) leaves.push_back(eg.add_var(i));
  std::vector<EClassId> nodes = leaves;
  for (int i = 0; i < 500; ++i) {
    EClassId a = nodes[rng.next_below(nodes.size())];
    EClassId b = nodes[rng.next_below(nodes.size())];
    nodes.push_back(rng.chance(0.5) ? eg.add_and(a, b) : eg.add_or(a, b));
  }
  // Several merge/rebuild rounds, exercising repair cascades.
  for (int round = 0; round < 10; ++round) {
    for (int m = 0; m < 8; ++m) {
      EClassId a = eg.find(nodes[rng.next_below(nodes.size())]);
      EClassId b = eg.find(nodes[rng.next_below(nodes.size())]);
      if (a != b) eg.merge(a, b);
    }
    eg.rebuild();
    std::string why;
    ASSERT_TRUE(eg.check_invariants(&why)) << "round " << round << ": " << why;
  }
}

// Regression: merging one child of an e-node, rebuilding, then merging a
// *different* child used to strand the intermediate hash-cons key — repair
// re-inserted AND(a', b) under the new key but only class a' learned it, so
// the later merge of b could not erase it. The stranded key was unreachable
// (it held a non-root child id) but leaked, and broke the hashcons ↔
// live-e-node bijection that check_invariants now enforces.
TEST(EGraphCore, RebuildPurgesStrandedHashconsKeys) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId a2 = eg.add_var(2);
  EClassId b2 = eg.add_var(3);
  eg.add_and(a, b);

  // Round 1: merge child a — repair re-keys AND(a, b) to AND(a', b).
  eg.merge(a, a2);
  eg.rebuild();
  // Round 2: merge child b — the round-1 key must not be stranded.
  eg.merge(b, b2);
  eg.rebuild();

  std::string why;
  EXPECT_TRUE(eg.check_invariants(&why)) << why;
  EXPECT_EQ(eg.lookup(ENode::and_of(eg.find(a), eg.find(b))),
            eg.find(eg.lookup(ENode::and_of(eg.find(a), eg.find(b)))));
}

// --- the flat hashcons -------------------------------------------------------

TEST(EGraphCore, HashConsInsertFindErase) {
  HashCons table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(ENode::var(1)), nullptr);

  // Insert enough to force several growths.
  for (std::uint32_t i = 0; i < 1000; ++i) {
    auto [slot, inserted] = table.try_emplace(ENode::var(i), i);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*slot, i);
  }
  EXPECT_EQ(table.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const EClassId* found = table.find(ENode::var(i));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, i);
  }

  // try_emplace on a present key returns the existing slot.
  auto [slot, inserted] = table.try_emplace(ENode::var(7), 999);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 7u);

  // Erase half, then re-insert over the tombstones.
  for (std::uint32_t i = 0; i < 1000; i += 2) table.erase(ENode::var(i));
  EXPECT_EQ(table.size(), 500u);
  for (std::uint32_t i = 0; i < 1000; i += 2) {
    EXPECT_EQ(table.find(ENode::var(i)), nullptr);
  }
  for (std::uint32_t i = 0; i < 1000; i += 2) {
    EXPECT_TRUE(table.try_emplace(ENode::var(i), i + 1).second);
  }
  EXPECT_EQ(table.size(), 1000u);
  const EClassId* reinserted = table.find(ENode::var(10));
  ASSERT_NE(reinserted, nullptr);
  EXPECT_EQ(*reinserted, 11u);

  // insert() overwrites.
  table.insert(ENode::var(3), 42);
  EXPECT_EQ(*table.find(ENode::var(3)), 42u);
}

// --- rule index vs. full scan ------------------------------------------------

EGraph build_structured_egraph(unsigned vars, unsigned nodes,
                               std::uint64_t seed) {
  Rng rng(seed);
  EGraph eg;
  std::vector<EClassId> pool;
  pool.push_back(eg.add_const0());
  pool.push_back(eg.add_const1());
  for (std::uint32_t i = 0; i < vars; ++i) pool.push_back(eg.add_var(i));
  for (unsigned i = 0; i < nodes; ++i) {
    EClassId a = pool[rng.next_below(pool.size())];
    EClassId b = pool[rng.next_below(pool.size())];
    switch (rng.next_below(4)) {
      case 0:
        pool.push_back(eg.add_and(a, b));
        break;
      case 1:
        pool.push_back(eg.add_or(a, b));
        break;
      case 2:
        pool.push_back(eg.add_xor(a, b));
        break;
      default:
        pool.push_back(eg.add_not(a));
        break;
    }
  }
  return eg;
}

RunnerReport saturate(EGraph& eg, bool use_index, unsigned threads) {
  RunnerParams params;
  params.max_iterations = 3;
  params.max_enodes = 20000;
  params.max_matches_per_rule = 500;  // caps bind, so prefixes must agree too
  params.use_rule_index = use_index;
  params.match_threads = threads;
  return run_rewriting(eg, make_logic_rules(), params);
}

void expect_identical_runs(const RunnerReport& a, const EGraph& ega,
                           const RunnerReport& b, const EGraph& egb) {
  // Identical per-rule match sets imply identical counts per rule...
  EXPECT_EQ(a.rule_matches, b.rule_matches);
  EXPECT_EQ(a.rule_applications, b.rule_applications);
  // ...and identical merges imply the same e-graph trajectory.
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].matches, b.iterations[i].matches) << i;
    EXPECT_EQ(a.iterations[i].applied, b.iterations[i].applied) << i;
    EXPECT_EQ(a.iterations[i].enodes_after, b.iterations[i].enodes_after) << i;
    EXPECT_EQ(a.iterations[i].classes_after, b.iterations[i].classes_after)
        << i;
  }
  EXPECT_EQ(ega.num_classes(), egb.num_classes());
  EXPECT_EQ(ega.num_enodes(), egb.num_enodes());
}

TEST(EGraphCore, IndexedMatchingEqualsFullScan) {
  for (std::uint64_t seed : {3u, 17u, 29u}) {
    EGraph indexed = build_structured_egraph(12, 150, seed);
    EGraph fullscan = build_structured_egraph(12, 150, seed);
    RunnerReport ri = saturate(indexed, /*use_index=*/true, 1);
    RunnerReport rf = saturate(fullscan, /*use_index=*/false, 1);
    expect_identical_runs(ri, indexed, rf, fullscan);
    std::string why;
    EXPECT_TRUE(indexed.check_invariants(&why)) << why;
  }
}

// --- deterministic parallel matching ----------------------------------------

TEST(EGraphCore, ParallelMatchingIsDeterministic) {
  for (std::uint64_t seed : {5u, 23u}) {
    EGraph serial = build_structured_egraph(12, 150, seed);
    EGraph threaded = build_structured_egraph(12, 150, seed);
    RunnerReport rs = saturate(serial, /*use_index=*/true, 1);
    RunnerReport rt = saturate(threaded, /*use_index=*/true, 4);
    expect_identical_runs(rs, serial, rt, threaded);
    std::string why;
    EXPECT_TRUE(threaded.check_invariants(&why)) << why;
  }
}

TEST(EGraphCore, ParallelMatchingRepeatsBitIdentically) {
  // Two threaded runs of the same workload agree with each other (no
  // scheduling nondeterminism leaks into the result).
  EGraph a = build_structured_egraph(10, 120, 77);
  EGraph b = build_structured_egraph(10, 120, 77);
  RunnerReport ra = saturate(a, /*use_index=*/true, 4);
  RunnerReport rb = saturate(b, /*use_index=*/true, 4);
  expect_identical_runs(ra, a, rb, b);
}

}  // namespace
}  // namespace emorphic
