#include "egraph/serialize.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/conversion.hpp"
#include "util/json.hpp"

namespace emorphic {
namespace {

TEST(Serialize, Figure7ShapeIsPresent) {
  // The Fig. 7 document maps class ids to {id, nodes, parents}.
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_and(a, b);
  std::string text =
      egraph_to_dsl(eg, {SerializedRoot{f, false, "f"}}, {"a", "b"});
  Json doc = Json::parse(text);
  ASSERT_TRUE(doc.contains("egraph"));
  const JsonObject& classes = doc.at("egraph").as_object();
  EXPECT_EQ(classes.size(), 3u);
  // Variable class for "a" lists its AND parent.
  const Json& cls_a = doc.at("egraph").at(std::to_string(a));
  EXPECT_EQ(cls_a.at("nodes").as_array()[0].at("Symbol").as_string(), "a");
  EXPECT_EQ(cls_a.at("parents").as_array().size(), 1u);
}

TEST(Serialize, RoundTripPlainGraph) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_or(eg.add_not(a), eg.add_and(a, b));
  std::string text =
      egraph_to_dsl(eg, {SerializedRoot{f, true, "out"}}, {"a", "b"});
  DeserializedEGraph back = dsl_to_egraph(text);
  EXPECT_EQ(back.egraph.num_classes(), eg.num_classes());
  EXPECT_EQ(back.egraph.num_enodes(), eg.num_enodes());
  ASSERT_EQ(back.roots.size(), 1u);
  EXPECT_TRUE(back.roots[0].complemented);
  EXPECT_EQ(back.roots[0].name, "out");
  EXPECT_EQ(back.var_names, (std::vector<std::string>{"a", "b"}));
}

TEST(Serialize, RoundTripPreservesCircuitFunction) {
  Rng rng(41);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(5, 3, 30, rng);
    CircuitEGraph ce = aig_to_egraph(aig);
    CircuitEGraph back = dsl_to_circuit_egraph(ce.to_dsl());
    Aig out = egraph_to_aig_greedy(back);
    EXPECT_TRUE(testing::functionally_equal(aig, out));
  }
}

TEST(Serialize, RoundTripMergedClasses) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId ab = eg.add_and(a, b);
  EClassId ba = eg.add_or(a, b);
  eg.merge(ab, ba);  // artificial, but exercises multi-node classes
  eg.rebuild();
  std::string text =
      egraph_to_dsl(eg, {SerializedRoot{ab, false, "f"}}, {"a", "b"});
  DeserializedEGraph back = dsl_to_egraph(text);
  EXPECT_EQ(back.egraph.num_enodes(), eg.num_enodes());
  EXPECT_EQ(back.egraph.num_classes(), eg.num_classes());
  // The root class still has both forms.
  EXPECT_EQ(back.egraph.eclass(back.roots[0].id).nodes.size(), 2u);
}

TEST(Serialize, RewrittenGraphRoundTrips) {
  // After rewriting, classes hold many nodes and may be cyclic; the DSL
  // keeps at least one acyclic representative per class.
  Rng rng(43);
  Aig aig = testing::random_aig(4, 2, 20, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 3;
  limits.max_enodes = 5000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  CircuitEGraph back = dsl_to_circuit_egraph(ce.to_dsl());
  Aig out = egraph_to_aig_greedy(back);
  EXPECT_TRUE(testing::functionally_equal(aig, out));
}

TEST(Serialize, RejectsUnknownSymbol) {
  const std::string text =
      R"({"egraph":{"0":{"id":0,"nodes":[{"Symbol":"zz"}],"parents":[]}},)"
      R"("roots":[],"inputs":["a"]})";
  EXPECT_THROW(dsl_to_egraph(text), std::runtime_error);
}

TEST(Serialize, RejectsUnknownOperator) {
  const std::string text =
      R"({"egraph":{"0":{"id":0,"nodes":[{"NAND":[0,0]}],"parents":[]}},)"
      R"("roots":[],"inputs":[]})";
  EXPECT_THROW(dsl_to_egraph(text), std::runtime_error);
}

}  // namespace
}  // namespace emorphic
