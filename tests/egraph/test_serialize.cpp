#include "egraph/serialize.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/conversion.hpp"
#include "util/json.hpp"

namespace emorphic {
namespace {

TEST(Serialize, Figure7ShapeIsPresent) {
  // The Fig. 7 document maps class ids to {id, nodes, parents}.
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_and(a, b);
  std::string text =
      egraph_to_dsl(eg, {SerializedRoot{f, false, "f"}}, {"a", "b"});
  Json doc = Json::parse(text);
  ASSERT_TRUE(doc.contains("egraph"));
  const JsonObject& classes = doc.at("egraph").as_object();
  EXPECT_EQ(classes.size(), 3u);
  // Variable class for "a" lists its AND parent.
  const Json& cls_a = doc.at("egraph").at(std::to_string(a));
  EXPECT_EQ(cls_a.at("nodes").as_array()[0].at("Symbol").as_string(), "a");
  EXPECT_EQ(cls_a.at("parents").as_array().size(), 1u);
}

TEST(Serialize, RoundTripPlainGraph) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_or(eg.add_not(a), eg.add_and(a, b));
  std::string text =
      egraph_to_dsl(eg, {SerializedRoot{f, true, "out"}}, {"a", "b"});
  DeserializedEGraph back = dsl_to_egraph(text);
  EXPECT_EQ(back.egraph.num_classes(), eg.num_classes());
  EXPECT_EQ(back.egraph.num_enodes(), eg.num_enodes());
  ASSERT_EQ(back.roots.size(), 1u);
  EXPECT_TRUE(back.roots[0].complemented);
  EXPECT_EQ(back.roots[0].name, "out");
  EXPECT_EQ(back.var_names, (std::vector<std::string>{"a", "b"}));
}

TEST(Serialize, RoundTripPreservesCircuitFunction) {
  Rng rng(41);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(5, 3, 30, rng);
    CircuitEGraph ce = aig_to_egraph(aig);
    CircuitEGraph back = dsl_to_circuit_egraph(ce.to_dsl());
    Aig out = egraph_to_aig_greedy(back);
    EXPECT_TRUE(testing::functionally_equal(aig, out));
  }
}

TEST(Serialize, RoundTripMergedClasses) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId ab = eg.add_and(a, b);
  EClassId ba = eg.add_or(a, b);
  eg.merge(ab, ba);  // artificial, but exercises multi-node classes
  eg.rebuild();
  std::string text =
      egraph_to_dsl(eg, {SerializedRoot{ab, false, "f"}}, {"a", "b"});
  DeserializedEGraph back = dsl_to_egraph(text);
  EXPECT_EQ(back.egraph.num_enodes(), eg.num_enodes());
  EXPECT_EQ(back.egraph.num_classes(), eg.num_classes());
  // The root class still has both forms.
  EXPECT_EQ(back.egraph.eclass(back.roots[0].id).nodes.size(), 2u);
}

TEST(Serialize, RewrittenGraphRoundTrips) {
  // After rewriting, classes hold many nodes and may be cyclic; the DSL
  // keeps at least one acyclic representative per class.
  Rng rng(43);
  Aig aig = testing::random_aig(4, 2, 20, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 3;
  limits.max_enodes = 5000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  CircuitEGraph back = dsl_to_circuit_egraph(ce.to_dsl());
  Aig out = egraph_to_aig_greedy(back);
  EXPECT_TRUE(testing::functionally_equal(aig, out));
}

TEST(Serialize, RenormalizationIsDeterministicAndLossless) {
  // dsl -> egraph -> dsl renumbers classes and reorders parent lists, so
  // the text is not a byte-level fixed point — but the round trip must be
  // deterministic (two independent re-serializations of the same document
  // agree byte for byte) and lossless (class/enode counts and the extracted
  // circuit's function survive any number of passes). Property-checked over
  // random rewritten graphs (multi-node classes, cyclic forms dropped
  // deterministically).
  Rng rng(47);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(4, 2, 20, rng);
    CircuitEGraph ce = aig_to_egraph(aig);
    RunnerLimits limits;
    limits.max_iterations = 2;
    limits.max_enodes = 3000;
    run_rewriting(ce.egraph, make_logic_rules(), limits);
    std::string dsl = ce.to_dsl();
    std::string once_a = dsl_to_circuit_egraph(dsl).to_dsl();
    std::string once_b = dsl_to_circuit_egraph(dsl).to_dsl();
    EXPECT_EQ(once_a, once_b) << "round " << round;
    // Serialization may drop cyclic forms, so compare pass 1 against
    // pass 2 (both post-drop), not against the in-memory graph.
    CircuitEGraph pass1 = dsl_to_circuit_egraph(once_a);
    CircuitEGraph pass2 = dsl_to_circuit_egraph(pass1.to_dsl());
    EXPECT_EQ(pass2.egraph.num_classes(), pass1.egraph.num_classes())
        << "round " << round;
    EXPECT_EQ(pass2.egraph.num_enodes(), pass1.egraph.num_enodes())
        << "round " << round;
    EXPECT_TRUE(testing::functionally_equal(aig, egraph_to_aig_greedy(pass2)))
        << "round " << round;
  }
}

// --- deserializer hardening --------------------------------------------------
// dsl_to_egraph consumes client-supplied text (the service accepts DSL
// payloads); every malformed shape must throw std::runtime_error naming the
// offending location — never crash, never silently coerce or drop.

namespace {
// A structurally valid one-AND document to mutate from.
const char* kGoodDsl =
    R"({"egraph":{)"
    R"("0":{"id":0,"nodes":[{"Symbol":"a"}],"parents":[2]},)"
    R"("1":{"id":1,"nodes":[{"Symbol":"b"}],"parents":[2]},)"
    R"("2":{"id":2,"nodes":[{"AND":[0,1]}],"parents":[]}},)"
    R"("roots":[{"id":2,"compl":false,"name":"f"}],)"
    R"("inputs":["a","b"]})";
}  // namespace

TEST(Serialize, AcceptsTheBaselineDocument) {
  DeserializedEGraph back = dsl_to_egraph(kGoodDsl);
  EXPECT_EQ(back.egraph.num_enodes(), 3u);
  ASSERT_EQ(back.roots.size(), 1u);
}

TEST(Serialize, RejectsDuplicateInputNames) {
  const std::string text =
      R"({"egraph":{},"roots":[],"inputs":["a","a"]})";
  EXPECT_THROW(dsl_to_egraph(text), std::runtime_error);
}

TEST(Serialize, RejectsMalformedClassKeys) {
  for (const char* key : {"x1", "1x", "", "-1", " 1", "999999999999999999999"}) {
    const std::string text = std::string(R"({"egraph":{")") + key +
                             R"(":{"id":0,"nodes":[],"parents":[]}},)" +
                             R"("roots":[],"inputs":[]})";
    EXPECT_THROW(dsl_to_egraph(text), std::runtime_error) << "key " << key;
  }
}

TEST(Serialize, RejectsWrongPayloadTypes) {
  // inputs not an array / input element not a string.
  EXPECT_THROW(dsl_to_egraph(R"({"egraph":{},"roots":[],"inputs":5})"),
               std::runtime_error);
  EXPECT_THROW(dsl_to_egraph(R"({"egraph":{},"roots":[],"inputs":[1]})"),
               std::runtime_error);
  // egraph not an object.
  EXPECT_THROW(dsl_to_egraph(R"({"egraph":[],"roots":[],"inputs":[]})"),
               std::runtime_error);
  // node payload of an operator must be an array of ids.
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,"nodes":[{"AND":"01"}],"parents":[]}},)"
          R"("roots":[],"inputs":[]})"),
      std::runtime_error);
  // Symbol payload must be a string.
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,"nodes":[{"Symbol":7}],"parents":[]}},)"
          R"("roots":[],"inputs":["a"]})"),
      std::runtime_error);
  // node must be a single-operator object.
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,)"
          R"("nodes":[{"Symbol":"a","Const0":[]}],"parents":[]}},)"
          R"("roots":[],"inputs":["a"]})"),
      std::runtime_error);
  // child ids must be non-negative integers.
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,"nodes":[{"AND":[0.5,0]}],"parents":[]}},)"
          R"("roots":[],"inputs":[]})"),
      std::runtime_error);
}

TEST(Serialize, RejectsArityViolations) {
  // Oversized child lists would write past the 2-slot ENode children array.
  for (const char* node :
       {R"({"NOT":[0,0]})", R"({"AND":[0]})", R"({"AND":[0,0,0]})",
        R"({"XOR":[]})", R"({"Const0":[0]})"}) {
    const std::string text =
        std::string(R"({"egraph":{"0":{"id":0,"nodes":[{"Symbol":"a"},)") +
        node + R"(],"parents":[]}},"roots":[],"inputs":["a"]})";
    EXPECT_THROW(dsl_to_egraph(text), std::runtime_error) << "node " << node;
  }
}

TEST(Serialize, RejectsUndefinedClassReferences) {
  // An AND child naming a class the document never declares used to be
  // silently dropped via the cyclic-forms path; it must be a typed error.
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,"nodes":[{"AND":[5,5]}],"parents":[]}},)"
          R"("roots":[],"inputs":[]})"),
      std::runtime_error);
  // Same for a root.
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,"nodes":[{"Symbol":"a"}],"parents":[]}},)"
          R"("roots":[{"id":9,"compl":false,"name":"f"}],"inputs":["a"]})"),
      std::runtime_error);
}

TEST(Serialize, RejectsWrongRootFieldTypes) {
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,"nodes":[{"Symbol":"a"}],"parents":[]}},)"
          R"("roots":[{"id":0,"compl":"no","name":"f"}],"inputs":["a"]})"),
      std::runtime_error);
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,"nodes":[{"Symbol":"a"}],"parents":[]}},)"
          R"("roots":[{"id":0,"compl":false,"name":3}],"inputs":["a"]})"),
      std::runtime_error);
}

TEST(Serialize, RejectsFullyCyclicClass) {
  // A class whose every form depends on itself has no acyclic
  // representative to keep.
  EXPECT_THROW(
      dsl_to_egraph(
          R"({"egraph":{"0":{"id":0,"nodes":[{"NOT":[0]}],"parents":[]}},)"
          R"("roots":[],"inputs":[]})"),
      std::runtime_error);
}

TEST(Serialize, RejectsUnknownSymbol) {
  const std::string text =
      R"({"egraph":{"0":{"id":0,"nodes":[{"Symbol":"zz"}],"parents":[]}},)"
      R"("roots":[],"inputs":["a"]})";
  EXPECT_THROW(dsl_to_egraph(text), std::runtime_error);
}

TEST(Serialize, RejectsUnknownOperator) {
  const std::string text =
      R"({"egraph":{"0":{"id":0,"nodes":[{"NAND":[0,0]}],"parents":[]}},)"
      R"("roots":[],"inputs":[]})";
  EXPECT_THROW(dsl_to_egraph(text), std::runtime_error);
}

}  // namespace
}  // namespace emorphic
