// Randomized stress tests ("fuzzing") of the e-graph core: arbitrary
// interleavings of add / merge / rebuild must always restore the
// congruence and hash-consing invariants, and rewriting over random
// circuits must never change their function.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/conversion.hpp"

namespace emorphic {
namespace {

class EGraphFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EGraphFuzz, RandomOpsPreserveInvariants) {
  Rng rng(7000 + GetParam());
  EGraph eg;
  std::vector<EClassId> ids;
  for (std::uint32_t i = 0; i < 5; ++i) ids.push_back(eg.add_var(i));
  ids.push_back(eg.add_const0());
  ids.push_back(eg.add_const1());

  for (int step = 0; step < 300; ++step) {
    double roll = rng.next_double();
    if (roll < 0.55 || ids.size() < 2) {
      // add a random node over existing classes
      EClassId a = ids[rng.next_below(ids.size())];
      EClassId b = ids[rng.next_below(ids.size())];
      switch (rng.next_below(4)) {
        case 0:
          ids.push_back(eg.add_and(a, b));
          break;
        case 1:
          ids.push_back(eg.add_or(a, b));
          break;
        case 2:
          ids.push_back(eg.add_xor(a, b));
          break;
        default:
          ids.push_back(eg.add_not(a));
          break;
      }
    } else if (roll < 0.8) {
      EClassId a = ids[rng.next_below(ids.size())];
      EClassId b = ids[rng.next_below(ids.size())];
      eg.merge(a, b);
    } else {
      eg.rebuild();
      std::string why;
      ASSERT_TRUE(eg.check_invariants(&why)) << "step " << step << ": " << why;
    }
  }
  eg.rebuild();
  std::string why;
  EXPECT_TRUE(eg.check_invariants(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EGraphFuzz, ::testing::Range(0, 10));

class RewriteFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RewriteFuzz, RewritingNeverChangesFunction) {
  Rng rng(8000 + GetParam());
  unsigned pis = 3 + static_cast<unsigned>(rng.next_below(4));
  unsigned pos = 1 + static_cast<unsigned>(rng.next_below(4));
  unsigned ands = 10 + static_cast<unsigned>(rng.next_below(40));
  Aig aig = testing::random_aig(pis, pos, ands, rng);

  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 1 + rng.next_below(4);
  limits.max_enodes = 2000 + rng.next_below(6000);
  limits.max_matches_per_rule = 200 + rng.next_below(2000);
  run_rewriting(ce.egraph, make_logic_rules(), limits);

  std::string why;
  ASSERT_TRUE(ce.egraph.check_invariants(&why)) << why;

  // Greedy, random, and neighbor extractions all stay equivalent.
  Aig greedy = egraph_to_aig_greedy(ce, rng.chance(0.5) ? CostKind::kSize
                                                        : CostKind::kDepth);
  EXPECT_TRUE(testing::functionally_equal(aig, greedy));
  Extraction rand_sol = random_extract(ce.egraph, rng);
  EXPECT_TRUE(testing::functionally_equal(aig, egraph_to_aig(ce, rand_sol)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteFuzz, ::testing::Range(0, 15));

}  // namespace
}  // namespace emorphic
