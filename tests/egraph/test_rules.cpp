#include "egraph/rules.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace emorphic {
namespace {

/// Property: every rewrite rule is Boolean-sound — LHS and RHS patterns
/// evaluate to the same truth table over their pattern variables.
class RuleSoundness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RuleSoundness, LhsEqualsRhs) {
  const std::vector<Rewrite>& rules = make_logic_rules();
  const Rewrite& rw = rules[GetParam()];
  unsigned n = std::max<unsigned>(1, rw.var_names.size());
  ASSERT_LE(n, 6u);
  Tt lhs = testing::eval_pattern(rw.lhs, n);
  Tt rhs = testing::eval_pattern(rw.rhs, n);
  EXPECT_EQ(lhs, rhs) << "unsound rule: " << rw.name;
}

INSTANTIATE_TEST_SUITE_P(AllRules, RuleSoundness,
                         ::testing::Range<std::size_t>(
                             0, make_logic_rules().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string name =
                               make_logic_rules()[info.param].name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Rules, ReductionRulesAreSubsetAndSound) {
  for (const Rewrite& rw : make_reduction_rules()) {
    unsigned n = std::max<unsigned>(1, rw.var_names.size());
    EXPECT_EQ(testing::eval_pattern(rw.lhs, n), testing::eval_pattern(rw.rhs, n))
        << rw.name;
  }
}

TEST(Rules, RuleClassesCoverTableOne) {
  auto classes = make_rule_classes();
  std::vector<std::string> names;
  for (const auto& cls : classes) names.push_back(cls.class_name);
  EXPECT_NE(std::find(names.begin(), names.end(), "Associativity"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Distributivity"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Consensus"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "De-Morgan"), names.end());
  std::size_t total = 0;
  for (const auto& cls : classes) total += cls.rules.size();
  EXPECT_EQ(total, make_logic_rules().size());
}

TEST(Rules, EveryRuleHasDistinctName) {
  auto rules = make_logic_rules();
  std::set<std::string> names;
  for (const auto& rw : rules) {
    EXPECT_TRUE(names.insert(rw.name).second) << "duplicate: " << rw.name;
  }
}

TEST(Rules, RhsUsesOnlyLhsVariables) {
  // Applying a rule must never require inventing a binding: every RHS
  // pattern variable must occur in the LHS.
  for (const Rewrite& rw : make_logic_rules()) {
    std::vector<bool> in_lhs(rw.var_names.size(), false);
    for (const auto& node : rw.lhs.nodes()) {
      if (node.is_var) in_lhs[node.var] = true;
    }
    for (const auto& node : rw.rhs.nodes()) {
      if (node.is_var) {
        EXPECT_TRUE(in_lhs[node.var])
            << rw.name << " RHS uses unbound " << rw.var_names[node.var];
      }
    }
  }
}

}  // namespace
}  // namespace emorphic
