#include "egraph/runner.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "egraph/rules.hpp"
#include "extract/extractor.hpp"
#include "flow/conversion.hpp"

namespace emorphic {
namespace {

TEST(Runner, SaturatesTinyIdentity) {
  // x & 1 -> x saturates in a couple of iterations.
  EGraph eg;
  EClassId x = eg.add_var(0);
  EClassId one = eg.add_const1();
  EClassId f = eg.add_and(x, one);
  RunnerLimits limits;
  limits.max_iterations = 10;
  RunnerReport report = run_rewriting(eg, make_reduction_rules(), limits);
  EXPECT_EQ(report.stop_reason, StopReason::kSaturated);
  EXPECT_EQ(eg.find(f), eg.find(x));
}

TEST(Runner, DemorganDiscoversOrForm) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId nab = eg.add_not(eg.add_and(a, b));
  RunnerLimits limits;
  limits.max_iterations = 3;
  run_rewriting(eg, make_logic_rules(), limits);
  // !(a&b) must now be equivalent to !a | !b.
  EClassId or_form = eg.add_or(eg.add_not(a), eg.add_not(b));
  EXPECT_EQ(eg.find(nab), eg.find(or_form));
}

TEST(Runner, AbsorptionCollapses) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_and(a, eg.add_or(a, b));  // == a
  RunnerLimits limits;
  limits.max_iterations = 4;
  run_rewriting(eg, make_logic_rules(), limits);
  EXPECT_EQ(eg.find(f), eg.find(a));
}

TEST(Runner, NodeLimitStops) {
  Rng rng(31);
  Aig aig = testing::random_aig(6, 3, 60, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 50;
  limits.max_enodes = 500;
  RunnerReport report = run_rewriting(ce.egraph, make_logic_rules(), limits);
  EXPECT_EQ(report.stop_reason, StopReason::kNodeLimit);
}

TEST(Runner, IterationLimitRespected) {
  Rng rng(32);
  Aig aig = testing::random_aig(6, 3, 40, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 2;
  limits.max_enodes = 1u << 20;
  RunnerReport report = run_rewriting(ce.egraph, make_logic_rules(), limits);
  EXPECT_LE(report.iterations.size(), 2u);
}

TEST(Runner, RewritingPreservesFunction) {
  // The key soundness property end-to-end: rewrite, extract greedily, and
  // compare against the original circuit by simulation.
  Rng rng(33);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(5, 3, 35, rng);
    CircuitEGraph ce = aig_to_egraph(aig);
    RunnerLimits limits;
    limits.max_iterations = 4;
    limits.max_enodes = 20000;
    run_rewriting(ce.egraph, make_logic_rules(), limits);
    Aig out = egraph_to_aig_greedy(ce);
    EXPECT_TRUE(testing::functionally_equal(aig, out)) << "round " << round;
  }
}

TEST(Runner, GrowsEquivalenceClasses) {
  // Insight 1 of the paper: a few iterations multiply the stored choices.
  Rng rng(34);
  Aig aig = testing::random_aig(6, 3, 50, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  std::size_t before = ce.egraph.num_enodes();
  RunnerLimits limits;
  limits.max_iterations = 3;
  limits.max_enodes = 50000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  EXPECT_GT(ce.egraph.num_enodes(), before * 2);
}

TEST(Runner, ReportsPerRuleCounts) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  eg.add_and(a, eg.add_const1());
  auto rules = make_reduction_rules();
  RunnerLimits limits;
  limits.max_iterations = 2;
  RunnerReport report = run_rewriting(eg, rules, limits);
  ASSERT_EQ(report.rule_matches.size(), rules.size());
  std::size_t total = 0;
  for (auto c : report.rule_matches) total += c;
  EXPECT_GT(total, 0u);
}

TEST(Runner, StopReasonNames) {
  EXPECT_STREQ(stop_reason_name(StopReason::kSaturated), "saturated");
  EXPECT_STREQ(stop_reason_name(StopReason::kIterLimit), "iteration-limit");
  EXPECT_STREQ(stop_reason_name(StopReason::kNodeLimit), "node-limit");
  EXPECT_STREQ(stop_reason_name(StopReason::kTimeLimit), "time-limit");
}

}  // namespace
}  // namespace emorphic
