#include "egraph/egraph.hpp"

#include <gtest/gtest.h>

namespace emorphic {
namespace {

TEST(EGraph, HashConsingIsIdempotent) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f1 = eg.add_and(a, b);
  EClassId f2 = eg.add_and(a, b);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(eg.num_classes(), 3u);
  EXPECT_EQ(eg.num_enodes(), 3u);
}

TEST(EGraph, CommutativeCanonicalOrder) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EXPECT_EQ(eg.add_and(a, b), eg.add_and(b, a));
  EXPECT_EQ(eg.add_or(a, b), eg.add_or(b, a));
  EXPECT_EQ(eg.add_xor(a, b), eg.add_xor(b, a));
}

TEST(EGraph, MergeUnionsClasses) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EXPECT_NE(eg.find(a), eg.find(b));
  eg.merge(a, b);
  eg.rebuild();
  EXPECT_EQ(eg.find(a), eg.find(b));
  EXPECT_EQ(eg.num_classes(), 1u);
  EXPECT_EQ(eg.eclass(a).nodes.size(), 2u);
}

TEST(EGraph, CongruenceClosure) {
  // If a == b then f(a) == f(b) after rebuild.
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId fa = eg.add_not(a);
  EClassId fb = eg.add_not(b);
  EXPECT_NE(eg.find(fa), eg.find(fb));
  eg.merge(a, b);
  eg.rebuild();
  EXPECT_EQ(eg.find(fa), eg.find(fb));
}

TEST(EGraph, CongruencePropagatesUpward) {
  // a == b  =>  g(f(a)) == g(f(b)) through two levels.
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId c = eg.add_var(2);
  EClassId fa = eg.add_and(a, c);
  EClassId fb = eg.add_and(b, c);
  EClassId ga = eg.add_not(fa);
  EClassId gb = eg.add_not(fb);
  eg.merge(a, b);
  eg.rebuild();
  EXPECT_EQ(eg.find(ga), eg.find(gb));
}

TEST(EGraph, RebuildDeduplicatesNodes) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId c = eg.add_var(2);
  EClassId ac = eg.add_and(a, c);
  EClassId bc = eg.add_and(b, c);
  eg.merge(a, b);  // now AND(a,c) and AND(b,c) are congruent duplicates
  eg.rebuild();
  EXPECT_EQ(eg.find(ac), eg.find(bc));
  // The merged class keeps a single canonical AND node.
  EXPECT_EQ(eg.eclass(ac).nodes.size(), 1u);
}

TEST(EGraph, LookupFindsCanonicalNodes) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_and(a, b);
  EXPECT_EQ(eg.lookup(ENode::and_of(a, b)), eg.find(f));
  EXPECT_EQ(eg.lookup(ENode::and_of(b, a)), eg.find(f));  // sorted children
  EXPECT_EQ(eg.lookup(ENode::or_of(a, b)), kNoEClass);
}

TEST(EGraph, SelfMergeIsNoOp) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EXPECT_EQ(eg.merge(a, a), eg.find(a));
  EXPECT_FALSE(eg.is_dirty());
}

TEST(EGraph, ClassIdsAreCanonical) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  eg.add_and(a, b);
  eg.merge(a, b);
  eg.rebuild();
  for (EClassId id : eg.class_ids()) {
    EXPECT_EQ(eg.find(id), id);
  }
  EXPECT_EQ(eg.class_ids().size(), eg.num_classes());
}

TEST(EGraph, ChainOfMerges) {
  EGraph eg;
  std::vector<EClassId> vars;
  for (std::uint32_t i = 0; i < 10; ++i) vars.push_back(eg.add_var(i));
  for (std::uint32_t i = 1; i < 10; ++i) eg.merge(vars[0], vars[i]);
  eg.rebuild();
  for (std::uint32_t i = 1; i < 10; ++i) {
    EXPECT_EQ(eg.find(vars[0]), eg.find(vars[i]));
  }
  EXPECT_EQ(eg.num_classes(), 1u);
  EXPECT_EQ(eg.num_enodes(), 10u);
}

TEST(EGraph, DeferredRebuildHandlesCascades) {
  // Merging leaves triggers a cascade of congruences through a ladder.
  EGraph eg;
  EClassId x = eg.add_var(0);
  EClassId y = eg.add_var(1);
  std::vector<EClassId> lx{x}, ly{y};
  for (int i = 0; i < 6; ++i) {
    lx.push_back(eg.add_not(lx.back()));
    ly.push_back(eg.add_not(ly.back()));
  }
  eg.merge(x, y);
  eg.rebuild();
  for (std::size_t i = 0; i < lx.size(); ++i) {
    EXPECT_EQ(eg.find(lx[i]), eg.find(ly[i])) << "ladder level " << i;
  }
}

}  // namespace
}  // namespace emorphic
