#include "extract/extractor.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/conversion.hpp"

namespace emorphic {
namespace {

TEST(Extractor, GreedyPicksCheaperForm) {
  // Class with two forms: x (leaf-only, cheap) vs AND(x, OR(x,y)) (costly).
  EGraph eg;
  EClassId x = eg.add_var(0);
  EClassId y = eg.add_var(1);
  EClassId absorbed = eg.add_and(x, eg.add_or(x, y));
  eg.merge(x, absorbed);
  eg.rebuild();

  Extraction sol = greedy_extract(eg, CostModel{CostKind::kSize});
  EClassId root = eg.find(x);
  const ENode& chosen = eg.eclass(root).nodes[sol.choice(root)];
  EXPECT_EQ(chosen.op, Op::kVar);
}

TEST(Extractor, DepthCostPrefersShallow) {
  // Same function two ways: chain AND(AND(a,b),c) vs balanced... use a
  // 4-term conjunction in chain vs tree shape, merged into one class.
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId c = eg.add_var(2);
  EClassId d = eg.add_var(3);
  EClassId chain = eg.add_and(eg.add_and(eg.add_and(a, b), c), d);
  EClassId tree = eg.add_and(eg.add_and(a, b), eg.add_and(c, d));
  eg.merge(chain, tree);
  eg.rebuild();

  std::vector<double> costs;
  BottomUpOptions opt;
  CostModel depth{CostKind::kDepth};
  opt.cost = &depth;
  Extraction sol = bottom_up_extract(eg, opt, &costs);
  EClassId root = eg.find(chain);
  EXPECT_NEAR(costs[root], 2.0, 0.1);  // balanced tree depth
  const ENode& chosen = eg.eclass(root).nodes[sol.choice(root)];
  // The chosen AND must have two depth-1 children (the tree form).
  for (unsigned i = 0; i < 2; ++i) {
    EXPECT_NEAR(costs[eg.find(chosen.children[i])], 1.0, 0.1);
  }
}

TEST(Extractor, CoversAllReachableClasses) {
  Rng rng(61);
  Aig aig = testing::random_aig(6, 3, 40, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  Extraction sol = greedy_extract(ce.egraph, CostModel{CostKind::kSize});
  for (const SerializedRoot& r : ce.roots) {
    EXPECT_TRUE(sol.has(ce.egraph.find(r.id)));
  }
}

TEST(Extractor, PrunedAndUnprunedAgreeOnGreedyCost) {
  Rng rng(62);
  for (int round = 0; round < 4; ++round) {
    Aig aig = testing::random_aig(5, 3, 30, rng);
    CircuitEGraph ce = aig_to_egraph(aig);
    RunnerLimits limits;
    limits.max_iterations = 3;
    limits.max_enodes = 8000;
    run_rewriting(ce.egraph, make_logic_rules(), limits);

    CostModel cost{CostKind::kDepth};
    ExtractStats pruned_stats, full_stats;
    Extraction pruned = greedy_extract(ce.egraph, cost, &pruned_stats, true);
    Extraction full = greedy_extract(ce.egraph, cost, &full_stats, false);
    double c1 = solution_cost(ce.egraph, pruned, cost, ce.roots);
    double c2 = solution_cost(ce.egraph, full, cost, ce.roots);
    EXPECT_DOUBLE_EQ(c1, c2);
    // Pruning must do strictly less work on a rewritten graph.
    EXPECT_LT(pruned_stats.enodes_visited, full_stats.enodes_visited);
  }
}

TEST(Extractor, RandomExtractionIsWellFormed) {
  Rng rng(63);
  Aig aig = testing::random_aig(5, 2, 25, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 2;
  limits.max_enodes = 4000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  for (int i = 0; i < 5; ++i) {
    Extraction sol = random_extract(ce.egraph, rng);
    Aig out = egraph_to_aig(ce, sol);
    EXPECT_TRUE(testing::functionally_equal(aig, out)) << "draw " << i;
  }
}

TEST(Extractor, NeighborGenerationPreservesFunction) {
  Rng rng(64);
  Aig aig = testing::random_aig(5, 2, 25, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 2;
  limits.max_enodes = 4000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);

  CostModel cost{CostKind::kDepth};
  Extraction current = greedy_extract(ce.egraph, cost);
  for (int i = 0; i < 5; ++i) {
    BottomUpOptions opt;
    opt.cost = &cost;
    opt.p_random = 0.3;
    opt.rng = &rng;
    opt.warm_start = &current;
    Extraction neighbor = bottom_up_extract(ce.egraph, opt);
    Aig out = egraph_to_aig(ce, neighbor);
    EXPECT_TRUE(testing::functionally_equal(aig, out)) << "neighbor " << i;
    current = neighbor;
  }
}

TEST(Extractor, SolutionCostSizeCountsSharedOnce) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId shared = eg.add_and(a, b);
  EClassId f = eg.add_or(shared, eg.add_not(shared));
  Extraction sol = greedy_extract(eg, CostModel{CostKind::kSize});
  double cost = solution_cost(eg, sol, CostModel{CostKind::kSize},
                              {SerializedRoot{f, false, "f"}});
  // shared AND counted once + OR node = 2 (NOT is free).
  EXPECT_DOUBLE_EQ(cost, 2.0);
}

TEST(Extractor, ExtractionToAigLowersAllOps) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId x = eg.add_xor(a, b);
  EClassId o = eg.add_or(x, eg.add_not(a));
  Extraction sol = greedy_extract(eg, CostModel{CostKind::kSize});
  Aig out = extraction_to_aig(eg, sol, {SerializedRoot{o, false, "f"}},
                              {"a", "b"});
  Tt ta = tt_var(0, 2), tb = tt_var(1, 2);
  EXPECT_EQ(exhaustive_tt(out, 0), ((ta ^ tb) | (~ta & tt_mask(2))) & tt_mask(2));
}

TEST(Extractor, ConstantsExtract) {
  EGraph eg;
  EClassId zero = eg.add_const0();
  EClassId one = eg.add_const1();
  Extraction sol = greedy_extract(eg, CostModel{CostKind::kSize});
  Aig out = extraction_to_aig(
      eg, sol,
      {SerializedRoot{zero, false, "z"}, SerializedRoot{one, false, "o"}}, {});
  EXPECT_EQ(out.po(0), kLitFalse);
  EXPECT_EQ(out.po(1), kLitTrue);
}

}  // namespace
}  // namespace emorphic
