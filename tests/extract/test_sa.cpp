#include "extract/sa_extractor.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/conversion.hpp"
#include "flow/pipeline.hpp"

namespace emorphic {
namespace {

/// A deterministic, cheap stand-in QoR evaluator: proxy for the tests so SA
/// runs fast. Cost = depth-like metric + small area term.
class ProxyEvaluator : public QorEvaluator {
 public:
  Qor evaluate(const Aig& candidate) const override {
    return Qor{static_cast<double>(candidate.num_ands()),
               static_cast<double>(candidate.num_levels()) * 10.0};
  }
};

struct SaFixture : public ::testing::Test {
  void SetUp() override {
    Rng rng(71);
    original = testing::random_aig(6, 3, 40, rng);
    ce = aig_to_egraph(original);
    RunnerLimits limits;
    limits.max_iterations = 3;
    limits.max_enodes = 10000;
    run_rewriting(ce.egraph, make_logic_rules(), limits);
  }

  Aig original;
  CircuitEGraph ce;
};

TEST_F(SaFixture, ProducesFunctionallyEquivalentBest) {
  ProxyEvaluator eval;
  SaParams params;
  params.num_threads = 2;
  params.iterations = 2;
  params.moves_per_iteration = 3;
  SaResult result = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  Aig best = egraph_to_aig(ce, result.best);
  EXPECT_TRUE(testing::functionally_equal(original, best));
  EXPECT_GT(result.evaluations, 0u);
}

TEST_F(SaFixture, BestNeverWorseThanGreedyInit) {
  // Thread 0 starts from greedy-depth; SA only replaces the incumbent on
  // accept, and the best-tracker keeps the minimum, so the final cost is
  // <= the greedy initial cost.
  ProxyEvaluator eval;
  Extraction greedy = greedy_extract(ce.egraph, CostModel{CostKind::kDepth});
  Aig greedy_aig = egraph_to_aig(ce, greedy);
  double greedy_cost = eval.cost(eval.evaluate(greedy_aig));

  SaParams params;
  params.num_threads = 1;  // thread 0 = greedy depth init
  params.iterations = 3;
  params.moves_per_iteration = 4;
  SaResult result = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  EXPECT_LE(result.best_cost, greedy_cost + 1e-9);
}

TEST_F(SaFixture, DeterministicForFixedSeed) {
  ProxyEvaluator eval;
  SaParams params;
  params.num_threads = 2;
  params.iterations = 2;
  params.moves_per_iteration = 3;
  params.seed = 99;
  SaResult r1 = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  SaResult r2 = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  EXPECT_DOUBLE_EQ(r1.best_cost, r2.best_cost);
  EXPECT_DOUBLE_EQ(r1.best_qor.area, r2.best_qor.area);
}

TEST_F(SaFixture, TraceRecordsTemperatureSchedule) {
  ProxyEvaluator eval;
  SaParams params;
  params.num_threads = 1;
  params.iterations = 4;
  params.moves_per_iteration = 2;
  SaResult result = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  ASSERT_FALSE(result.trace.empty());
  // Iteration 1 runs at T1 = 2000; later iterations never exceed it.
  for (const SaTracePoint& pt : result.trace) {
    if (pt.iteration == 1) {
      EXPECT_DOUBLE_EQ(pt.temperature, params.initial_temperature);
    } else {
      EXPECT_LE(pt.temperature, params.initial_temperature);
    }
  }
}

TEST_F(SaFixture, MultiThreadBeatsOrMatchesSingleThreadGivenSameBudget) {
  ProxyEvaluator eval;
  SaParams one;
  one.num_threads = 1;
  one.iterations = 2;
  one.moves_per_iteration = 3;
  SaParams four = one;
  four.num_threads = 4;
  double c1 = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, one).best_cost;
  double c4 = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, four).best_cost;
  EXPECT_LE(c4, c1 + 1e-9);  // more chains can only improve the best
}

TEST_F(SaFixture, PruningStatsAccumulate) {
  ProxyEvaluator eval;
  SaParams params;
  params.num_threads = 1;
  params.iterations = 2;
  params.moves_per_iteration = 2;
  SaResult pruned = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  EXPECT_GT(pruned.extract_stats.enodes_visited, 0u);
}

TEST_F(SaFixture, MemoizedQorEqualsRecomputedQor) {
  // The per-run Qor memo must never change the annealing outcome: cached
  // entries are the evaluator's own earlier answers, keyed by the
  // candidate's structural signature.
  ProxyEvaluator eval;
  SaParams params;
  params.num_threads = 2;
  params.iterations = 3;
  params.moves_per_iteration = 6;
  params.seed = 17;

  params.memoize_qor = false;
  SaResult plain = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  EXPECT_EQ(plain.qor_cache_hits, 0u);
  EXPECT_EQ(plain.qor_cache_misses, 0u);

  params.memoize_qor = true;
  SaResult memo = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);

  EXPECT_DOUBLE_EQ(plain.best_cost, memo.best_cost);
  EXPECT_DOUBLE_EQ(plain.best_qor.area, memo.best_qor.area);
  EXPECT_DOUBLE_EQ(plain.best_qor.delay, memo.best_qor.delay);
  EXPECT_EQ(plain.trace.size(), memo.trace.size());
  // Same number of candidates were scored; the memo only changes who
  // answered. Every evaluator call is a memo miss.
  EXPECT_EQ(memo.qor_cache_hits + memo.qor_cache_misses, plain.evaluations);
  EXPECT_EQ(memo.qor_cache_misses, memo.evaluations);
  EXPECT_GT(memo.qor_cache_misses, 0u);
}

TEST(SaMapped, MemoizedQorEqualsRecomputedOnBenchgenCircuit) {
  // End-to-end variant over the real mapping evaluator on a benchgen
  // circuit: cached Qor == recomputed Qor, and a densely-explored small
  // e-graph actually produces hits.
  Aig adder = make_adder(5);
  CircuitEGraph ce = aig_to_egraph(adder);
  RunnerLimits limits;
  limits.max_iterations = 2;
  limits.max_enodes = 2000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);

  MapQorEvaluator eval(CellLibrary::asap7_like());
  SaParams params;
  params.num_threads = 2;
  params.iterations = 3;
  params.moves_per_iteration = 10;
  params.seed = 23;

  params.memoize_qor = false;
  SaResult plain = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  params.memoize_qor = true;
  SaResult memo = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);

  EXPECT_DOUBLE_EQ(plain.best_cost, memo.best_cost);
  EXPECT_DOUBLE_EQ(plain.best_qor.area, memo.best_qor.area);
  EXPECT_DOUBLE_EQ(plain.best_qor.delay, memo.best_qor.delay);
  EXPECT_EQ(memo.qor_cache_hits + memo.qor_cache_misses, plain.evaluations);
  EXPECT_GT(memo.qor_cache_hits, 0u);
  EXPECT_LT(memo.evaluations, plain.evaluations);

  // The memoized winner is still a valid extraction of the input.
  Aig best = egraph_to_aig(ce, memo.best);
  EXPECT_TRUE(testing::functionally_equal(adder, best));
}

TEST_F(SaFixture, ZeroCostDeltaKeepsTemperature) {
  // Degenerate-schedule guard: when no move changes the cost, the paper's
  // Tn = Tn-1 * |delta| / divisor rule has no signal. The temperature used
  // to collapse to the 1e-6 floor; now it holds steady.
  class ConstantEvaluator : public QorEvaluator {
   public:
    Qor evaluate(const Aig&) const override { return Qor{1.0, 1.0}; }
  };
  ConstantEvaluator eval;
  SaParams params;
  params.num_threads = 1;
  params.iterations = 4;
  params.moves_per_iteration = 2;
  SaResult result = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  ASSERT_FALSE(result.trace.empty());
  for (const SaTracePoint& pt : result.trace) {
    EXPECT_DOUBLE_EQ(pt.temperature, params.initial_temperature);
  }
}

TEST_F(SaFixture, ZeroMovesPerIterationIsSafe) {
  // moves_per_iteration == 0 leaves last_delta at 0 forever; the schedule
  // guard must keep the run well-defined (it still evaluates the initial
  // solutions and the final polish).
  ProxyEvaluator eval;
  SaParams params;
  params.num_threads = 2;
  params.iterations = 5;
  params.moves_per_iteration = 0;
  SaResult result = sa_extract(ce.egraph, ce.roots, ce.pi_names, eval, params);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_LT(result.best_cost, kInfCost);
}

}  // namespace
}  // namespace emorphic
