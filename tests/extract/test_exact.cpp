#include "extract/exact.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/conversion.hpp"

namespace emorphic {
namespace {

TEST(Exact, TrivialGraphIsItsOwnOptimum) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_and(a, b);
  auto best = exact_extract(eg, {SerializedRoot{f, false, "f"}});
  ASSERT_TRUE(best.has_value());
  double cost = solution_cost(eg, *best, CostModel{CostKind::kSize},
                              {SerializedRoot{f, false, "f"}});
  EXPECT_DOUBLE_EQ(cost, 1.0);
}

TEST(Exact, PicksCheapestForm) {
  // Class holding both x and a 2-node equivalent: exact picks the leaf.
  EGraph eg;
  EClassId x = eg.add_var(0);
  EClassId y = eg.add_var(1);
  EClassId redundant = eg.add_and(x, eg.add_or(x, y));
  eg.merge(x, redundant);
  eg.rebuild();
  std::vector<SerializedRoot> roots{SerializedRoot{eg.find(x), false, "f"}};
  auto best = exact_extract(eg, roots);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(solution_cost(eg, *best, CostModel{CostKind::kSize}, roots),
                   0.0);
}

TEST(Exact, GivesUpOnHugeSpaces) {
  Rng rng(211);
  Aig aig = testing::random_aig(6, 3, 60, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 3;
  limits.max_enodes = 10000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  ExactParams params;
  params.max_combinations = 1000;
  EXPECT_FALSE(exact_extract(ce.egraph, ce.roots, params).has_value());
}

TEST(Exact, WellFoundednessDetectsCycles) {
  // Build a cyclic selection by hand: class A = {x, AND(B,B)},
  // class B = {y, AND(A,A)}; choosing both ANDs is cyclic.
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId and_b = eg.add_and(b, b);  // placeholder; will merge into a
  EClassId and_a = eg.add_and(a, a);
  eg.merge(a, and_b);
  eg.merge(b, and_a);
  eg.rebuild();

  std::vector<SerializedRoot> roots{SerializedRoot{eg.find(a), false, "f"}};
  // Find the AND node index in each class.
  auto and_index = [&](EClassId c) -> std::uint32_t {
    const auto& nodes = eg.eclass(c).nodes;
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].op == Op::kAnd) return i;
    }
    return Extraction::kNoChoice;
  };
  auto var_index = [&](EClassId c) -> std::uint32_t {
    const auto& nodes = eg.eclass(c).nodes;
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].op == Op::kVar) return i;
    }
    return Extraction::kNoChoice;
  };
  Extraction cyclic(eg.num_classes_created());
  cyclic.choose(eg.find(a), and_index(eg.find(a)));
  cyclic.choose(eg.find(b), and_index(eg.find(b)));
  EXPECT_FALSE(solution_is_well_founded(eg, cyclic, roots));

  Extraction fine(eg.num_classes_created());
  fine.choose(eg.find(a), and_index(eg.find(a)));
  fine.choose(eg.find(b), var_index(eg.find(b)));
  EXPECT_TRUE(solution_is_well_founded(eg, fine, roots));
}

TEST(Exact, IncompleteSolutionIsNotWellFounded) {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId f = eg.add_and(a, b);
  Extraction partial(eg.num_classes_created());
  partial.choose(f, 0);  // children undecided
  EXPECT_FALSE(solution_is_well_founded(
      eg, partial, {SerializedRoot{f, false, "f"}}));
}

/// Property sweep: on small rewritten e-graphs the greedy extractor is never
/// better than the oracle, and stays within a modest factor of it.
class ExactOracle : public ::testing::TestWithParam<int> {};

TEST_P(ExactOracle, GreedyIsBoundedByOptimum) {
  Rng rng(3000 + GetParam());
  Aig aig = testing::random_aig(3, 2, 6, rng);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 2;
  limits.max_enodes = 60;
  limits.max_matches_per_rule = 50;
  run_rewriting(ce.egraph, make_logic_rules(), limits);

  ExactParams params;
  params.cost = CostModel{CostKind::kDepth};
  params.max_combinations = 1u << 20;
  auto best = exact_extract(ce.egraph, ce.roots, params);
  if (!best.has_value()) GTEST_SKIP() << "search space too large";

  double optimal = solution_cost(ce.egraph, *best, params.cost, ce.roots);
  Extraction greedy = greedy_extract(ce.egraph, params.cost);
  double greedy_cost = solution_cost(ce.egraph, greedy, params.cost, ce.roots);
  EXPECT_GE(greedy_cost, optimal - 1e-9);
  // Greedy depth extraction is exact on these tiny graphs in practice;
  // tolerate slack but flag gross regressions.
  EXPECT_LE(greedy_cost, optimal * 2.0 + 1.0);

  // The oracle's solution rebuilds into a functionally equivalent circuit.
  Aig rebuilt = egraph_to_aig(ce, *best);
  EXPECT_TRUE(testing::functionally_equal(aig, rebuilt));
}

INSTANTIATE_TEST_SUITE_P(SmallGraphs, ExactOracle, ::testing::Range(0, 12));

}  // namespace
}  // namespace emorphic
