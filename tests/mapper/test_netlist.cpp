#include "mapper/netlist.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace emorphic {
namespace {

MappedNetlist tiny_netlist(const CellLibrary& lib) {
  MappedNetlist netlist(&lib);
  std::uint32_t a = netlist.add_net("a");
  std::uint32_t b = netlist.add_net("b");
  netlist.add_pi(a);
  netlist.add_pi(b);
  std::uint32_t n1 = netlist.add_net("n1");
  netlist.add_gate(MappedGate{
      static_cast<std::uint32_t>(lib.find("NAND2x1")), {a, b}, n1});
  std::uint32_t n2 = netlist.add_net("n2");
  netlist.add_gate(
      MappedGate{static_cast<std::uint32_t>(lib.find("INVx1")), {n1}, n2});
  netlist.add_po(n2, "f");
  return netlist;
}

TEST(Netlist, AreaIsSumOfCells) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  MappedNetlist netlist = tiny_netlist(lib);
  double expect = lib.cell(lib.find("NAND2x1")).area +
                  lib.cell(lib.find("INVx1")).area;
  EXPECT_DOUBLE_EQ(netlist.area(), expect);
}

TEST(Netlist, DelayIsCriticalPath) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  MappedNetlist netlist = tiny_netlist(lib);
  double expect = lib.cell(lib.find("NAND2x1")).delay +
                  lib.cell(lib.find("INVx1")).delay;
  EXPECT_DOUBLE_EQ(netlist.delay(), expect);
}

TEST(Netlist, ToAigRecoversFunction) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  MappedNetlist netlist = tiny_netlist(lib);
  Aig aig = netlist.to_aig();
  ASSERT_EQ(aig.num_pis(), 2u);
  ASSERT_EQ(aig.num_pos(), 1u);
  // NAND then INV = AND.
  EXPECT_EQ(exhaustive_tt(aig, 0), tt_var(0, 2) & tt_var(1, 2));
}

TEST(Netlist, BlifOutput) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  MappedNetlist netlist = tiny_netlist(lib);
  std::string blif = netlist.to_blif("tiny");
  EXPECT_NE(blif.find(".model tiny"), std::string::npos);
  EXPECT_NE(blif.find(".inputs a b"), std::string::npos);
  EXPECT_NE(blif.find(".outputs f"), std::string::npos);
  EXPECT_NE(blif.find(".gate NAND2x1 A=a B=b Y=n1"), std::string::npos);
  EXPECT_NE(blif.find(".end"), std::string::npos);
}

TEST(Netlist, ConstNets) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  MappedNetlist netlist(&lib);
  std::uint32_t c1 = netlist.add_net("const1");
  netlist.set_const_net(c1, true);
  netlist.add_po(c1, "f");
  Aig aig = netlist.to_aig();
  EXPECT_EQ(aig.po(0), kLitTrue);
  std::string blif = netlist.to_blif("m");
  EXPECT_NE(blif.find(".names const1\n1\n"), std::string::npos);
}

}  // namespace
}  // namespace emorphic
