// The k-LUT mapping backend (mapper/lut_mapper.hpp):
//   * every cover is CEC-proven against the mapper's input (the LUT
//     network re-expressed as an AIG via to_aig) for k in {3..6};
//   * QoR sanity: depth never increases with k, and any real LUT width
//     beats the k = 2 cover on area;
//   * choice-aware mapping of a ring-free annotation is bit-identical to
//     the plain overload, and real rings (e-graph export) stay
//     CEC-equivalent with the gated outcome never worse than plain;
//   * lut_size outside [2, kMaxCutSize] throws std::invalid_argument on
//     both overloads (the map_to_cells contract);
//   * parallel cut enumeration never changes the mapped network;
//   * interface edge cases: complemented / constant / pass-through POs,
//     workspace reuse, BLIF shape.

#include "mapper/lut_mapper.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "cec/cec.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/choice_export.hpp"
#include "util/thread_pool.hpp"

namespace emorphic {
namespace {

bool equivalent(const Aig& input, const LutNetwork& network) {
  return cec(input, network.to_aig()).status == CecStatus::kEquivalent;
}

/// Bit-identical network comparison: same nets, LUTs, tables, interface.
void expect_same_network(const LutNetwork& a, const LutNetwork& b) {
  ASSERT_EQ(a.num_nets(), b.num_nets());
  ASSERT_EQ(a.num_luts(), b.num_luts());
  for (std::size_t i = 0; i < a.num_luts(); ++i) {
    EXPECT_EQ(a.luts()[i].inputs, b.luts()[i].inputs) << "lut " << i;
    EXPECT_EQ(a.luts()[i].tt, b.luts()[i].tt) << "lut " << i;
    EXPECT_EQ(a.luts()[i].output, b.luts()[i].output) << "lut " << i;
  }
  EXPECT_EQ(a.pis(), b.pis());
  EXPECT_EQ(a.pos(), b.pos());
  EXPECT_EQ(a.to_blif("m"), b.to_blif("m"));
}

TEST(LutMapper, SingleAnd) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(aig.make_and(a, b));
  LutNetwork network = map_to_luts(aig);
  EXPECT_EQ(network.num_luts(), 1u);
  EXPECT_EQ(network.depth(), 1u);
  EXPECT_TRUE(equivalent(aig, network));
}

TEST(LutMapper, ComplementedOutputAbsorbedIntoTable) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(lit_not(aig.make_and(a, b)));  // NAND: still one LUT
  LutNetwork network = map_to_luts(aig);
  EXPECT_EQ(network.num_luts(), 1u);
  EXPECT_TRUE(equivalent(aig, network));
}

TEST(LutMapper, PassThroughAndConstantOutputs) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  aig.add_po(a, "pass");
  aig.add_po(lit_not(a), "neg");  // inverter on a PI: one 1-input LUT
  aig.add_po(kLitTrue, "one");
  aig.add_po(kLitFalse, "zero");
  LutNetwork network = map_to_luts(aig);
  EXPECT_TRUE(equivalent(aig, network));
}

TEST(LutMapper, EquivalentAcrossLutSizes) {
  Rng rng(21);
  Aig circuits[] = {make_adder(8), make_multiplier(4),
                    testing::random_aig(7, 4, 90, rng)};
  for (const Aig& aig : circuits) {
    for (unsigned k = 3; k <= kMaxCutSize; ++k) {
      LutMapperParams params;
      params.lut_size = k;
      LutNetwork network = map_to_luts(aig, params);
      EXPECT_TRUE(equivalent(aig, network)) << "k=" << k;
    }
  }
}

TEST(LutMapper, QorSanityAcrossLutSizes) {
  // Wider LUTs never deepen the cover (a k-feasible cut is (k+1)-feasible),
  // and any real width beats the k = 2 cover on area. Area itself is NOT
  // monotone in k — area flow is a heuristic and e.g. k = 5 can beat k = 6
  // — so that is deliberately not asserted.
  Aig aig = make_adder(8);
  LutMapperParams p2;
  p2.lut_size = 2;
  const double area2 = lut_qor(map_to_luts(aig, p2)).area;
  std::uint32_t prev_depth = 0xffffffffu;
  for (unsigned k = 2; k <= kMaxCutSize; ++k) {
    LutMapperParams params;
    params.lut_size = k;
    LutQor qor = lut_qor(map_to_luts(aig, params));
    EXPECT_LE(qor.depth, prev_depth) << "k=" << k;
    if (k >= 3) EXPECT_LT(qor.area, area2) << "k=" << k;
    prev_depth = qor.depth;
  }
}

TEST(LutMapper, RingFreeChoicesMatchPlainBitIdentically) {
  Rng rng(33);
  Aig aig = testing::random_aig(6, 3, 70, rng);
  LutNetwork plain = map_to_luts(aig);
  LutNetwork via_choices = map_to_luts(ChoiceAig::from_plain(aig));
  expect_same_network(plain, via_choices);
}

TEST(LutMapper, ChoiceRingsStayEquivalentAndGatedNoWorse) {
  Aig aig = make_adder(6);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerParams rparams;
  rparams.max_iterations = 3;
  rparams.max_enodes = 20000;
  rparams.max_matches_per_rule = 2000;
  run_rewriting(ce.egraph, make_logic_rules(), rparams);
  Extraction solution = greedy_extract(ce.egraph, CostModel{CostKind::kDepth});
  ChoiceAig caig = egraph_to_choice_aig(ce, solution, {}, nullptr);
  ASSERT_GT(caig.choices.num_rings(), 0u);

  LutNetwork choice = map_to_luts(caig);
  EXPECT_TRUE(equivalent(aig, choice));

  LutChoiceOutcome outcome = map_luts_with_choices_gated(caig);
  EXPECT_TRUE(equivalent(aig, outcome.network));
  LutQor adopted = lut_qor(outcome.network);
  EXPECT_LE(adopted.area, outcome.plain.area);
  EXPECT_LE(adopted.depth, outcome.plain.depth);
}

TEST(LutMapper, InvalidLutSizeThrowsOnBothOverloads) {
  Aig aig = make_adder(3);
  ChoiceAig caig = ChoiceAig::from_plain(aig);
  for (unsigned bad : {0u, 1u, kMaxCutSize + 1}) {
    LutMapperParams params;
    params.lut_size = bad;
    EXPECT_THROW(map_to_luts(aig, params), std::invalid_argument)
        << "lut_size=" << bad;
    EXPECT_THROW(map_to_luts(caig, params), std::invalid_argument)
        << "lut_size=" << bad;
  }
}

TEST(LutMapper, ParallelEnumerationNeverChangesTheNetwork) {
  Rng rng(44);
  Aig aig = testing::random_aig(8, 4, 160, rng);
  LutNetwork serial = map_to_luts(aig);
  LutMapperParams params;
  params.num_threads = 4;
  LutNetwork parallel = map_to_luts(aig, params);
  expect_same_network(serial, parallel);

  ThreadPool pool(4);
  LutNetwork pooled = map_to_luts(aig, LutMapperParams{}, nullptr, &pool);
  expect_same_network(serial, pooled);
}

TEST(LutMapper, WorkspaceReuseAcrossCalls) {
  LutWorkspace workspace;
  Rng rng(55);
  for (int round = 0; round < 3; ++round) {
    Aig aig = testing::random_aig(6 + round, 3, 50 + 25 * round, rng);
    LutNetwork fresh = map_to_luts(aig);
    LutNetwork reused = map_to_luts(aig, LutMapperParams{}, &workspace);
    expect_same_network(fresh, reused);
  }
}

TEST(LutMapper, BlifShape) {
  Aig aig;
  Lit a = make_lit(aig.add_pi("a"));
  Lit b = make_lit(aig.add_pi("b"));
  aig.add_po(aig.make_and(a, lit_not(b)), "f");
  LutNetwork network = map_to_luts(aig);
  std::string blif = network.to_blif("andnot");
  EXPECT_NE(blif.find(".model andnot"), std::string::npos);
  EXPECT_NE(blif.find(".inputs a b"), std::string::npos);
  EXPECT_NE(blif.find(".names"), std::string::npos);
  EXPECT_NE(blif.find(".end"), std::string::npos);
}

}  // namespace
}  // namespace emorphic
