// Property tests for the technology mapper: for random circuits and both
// effort settings, the mapped netlist must (1) be topologically ordered,
// (2) be SAT-provably equivalent to the input AIG, (3) have consistent
// static timing, and (4) respect the library (pin counts, known cells).

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "cec/cec.hpp"
#include "mapper/genlib.hpp"
#include "mapper/tech_mapper.hpp"

namespace emorphic {
namespace {

class MapperProps : public ::testing::TestWithParam<int> {};

TEST_P(MapperProps, NetlistWellFormedAndEquivalent) {
  Rng rng(4000 + GetParam());
  unsigned pis = 4 + static_cast<unsigned>(rng.next_below(5));
  unsigned pos = 1 + static_cast<unsigned>(rng.next_below(5));
  unsigned ands = 20 + static_cast<unsigned>(rng.next_below(120));
  Aig aig = testing::random_aig(pis, pos, ands, rng);

  MapperParams params;
  params.area_recovery = GetParam() % 2 == 0;
  params.num_cuts = 2 + static_cast<unsigned>(rng.next_below(7));
  MappedNetlist netlist = map_to_cells(aig, CellLibrary::asap7_like(), params);

  // (1) Topological: every gate input net is a PI, const, or the output of
  // an earlier gate.
  std::vector<bool> driven(netlist.num_nets(), false);
  for (std::uint32_t pi : netlist.pis()) driven[pi] = true;
  Aig unmapped = netlist.to_aig();  // throws/asserts if non-topological
  for (const MappedGate& g : netlist.gates()) {
    const Cell& cell = netlist.library().cell(g.cell);
    ASSERT_EQ(g.inputs.size(), cell.num_inputs);
    EXPECT_LE(cell.num_inputs, 4u);
    netlist.library().cell(g.cell);  // valid id or throws
  }

  // (2) SAT-provable equivalence (not just simulation).
  CecResult result = cec(aig, unmapped, CecParams{8, 100000, 5, 10.0});
  EXPECT_EQ(result.status, CecStatus::kEquivalent);

  // (3) Static timing consistency: PO arrival equals the recomputed value.
  auto arrival = netlist.arrival_times();
  double max_po = 0.0;
  for (std::uint32_t po : netlist.pos()) max_po = std::max(max_po, arrival[po]);
  EXPECT_DOUBLE_EQ(netlist.delay(), max_po);
  for (const MappedGate& g : netlist.gates()) {
    double worst_in = 0.0;
    for (std::uint32_t in : g.inputs) worst_in = std::max(worst_in, arrival[in]);
    EXPECT_DOUBLE_EQ(arrival[g.output],
                     worst_in + netlist.library().cell(g.cell).delay);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperProps, ::testing::Range(0, 10));

TEST(MapperProps, CustomLibraryRoundTrip) {
  // A minimal NAND+INV library is NPN-complete for AIGs: mapping must
  // still succeed and stay correct.
  CellLibrary lib = parse_genlib(
      "GATE inv 1.0 Y=!A; PIN * 10\nGATE nand2 2.0 Y=!(A*B); PIN * 15\n");
  Rng rng(4321);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(5, 3, 40, rng);
    MappedNetlist netlist = map_to_cells(aig, lib);
    EXPECT_TRUE(testing::functionally_equal(aig, netlist.to_aig()));
  }
}

TEST(MapperProps, RicherLibraryNeverWorse) {
  // Adding cells can only improve (or tie) both area and delay under the
  // same mapping policy... delay is guaranteed; area is heuristic, so test
  // the delay direction only.
  CellLibrary small = parse_genlib(
      "GATE inv 1.0 Y=!A; PIN * 10\nGATE nand2 2.0 Y=!(A*B); PIN * 15\n");
  Rng rng(4322);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(6, 3, 60, rng);
    MappedQor with_small = map_qor(aig, small);
    MappedQor with_full = map_qor(aig, CellLibrary::asap7_like());
    EXPECT_LE(with_full.delay, with_small.delay + 1e-9);
  }
}

}  // namespace
}  // namespace emorphic
