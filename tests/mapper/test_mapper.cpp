#include "mapper/tech_mapper.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "aig/cut.hpp"
#include "benchgen/arith.hpp"
#include "opt/balance.hpp"

namespace emorphic {
namespace {

TEST(Mapper, SingleAnd) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(aig.make_and(a, b));
  MappedNetlist netlist = map_to_cells(aig, CellLibrary::asap7_like());
  EXPECT_GE(netlist.num_gates(), 1u);
  EXPECT_TRUE(testing::functionally_equal(aig, netlist.to_aig()));
}

TEST(Mapper, ComplementedOutput) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(lit_not(aig.make_and(a, b)));  // NAND: one gate, no inverter
  MappedNetlist netlist = map_to_cells(aig, CellLibrary::asap7_like());
  EXPECT_EQ(netlist.num_gates(), 1u);
  EXPECT_TRUE(testing::functionally_equal(aig, netlist.to_aig()));
}

TEST(Mapper, PassThroughAndConstants) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  aig.add_po(a, "pass");
  aig.add_po(lit_not(a), "neg");
  aig.add_po(kLitTrue, "one");
  aig.add_po(kLitFalse, "zero");
  MappedNetlist netlist = map_to_cells(aig, CellLibrary::asap7_like());
  EXPECT_TRUE(testing::functionally_equal(aig, netlist.to_aig()));
}

TEST(Mapper, FunctionPreservedRandom) {
  Rng rng(151);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(6, 4, 50, rng);
    MappedNetlist netlist = map_to_cells(aig, CellLibrary::asap7_like());
    EXPECT_TRUE(testing::functionally_equal(aig, netlist.to_aig())) << round;
    EXPECT_GT(netlist.area(), 0.0);
    EXPECT_GT(netlist.delay(), 0.0);
  }
}

TEST(Mapper, XorUsesXorCell) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(aig.make_xor(a, b));
  MappedNetlist netlist = map_to_cells(aig, CellLibrary::asap7_like());
  bool has_xor = false;
  for (const MappedGate& g : netlist.gates()) {
    const std::string& name = netlist.library().cell(g.cell).name;
    if (name == "XOR2x1" || name == "XNOR2x1") has_xor = true;
  }
  EXPECT_TRUE(has_xor);
  EXPECT_LE(netlist.num_gates(), 2u);
  EXPECT_TRUE(testing::functionally_equal(aig, netlist.to_aig()));
}

TEST(Mapper, MajUsesMajCell) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  aig.add_po(aig.make_maj(a, b, c));
  MappedNetlist netlist = map_to_cells(aig, CellLibrary::asap7_like());
  EXPECT_TRUE(testing::functionally_equal(aig, netlist.to_aig()));
  EXPECT_LE(netlist.num_gates(), 2u);  // MAJ3 (+ possible inverter)
}

TEST(Mapper, AreaRecoveryDoesNotHurtDelay) {
  Rng rng(152);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(8, 4, 120, rng);
    MapperParams with;
    with.area_recovery = true;
    MapperParams without;
    without.area_recovery = false;
    MappedNetlist nw = map_to_cells(aig, CellLibrary::asap7_like(), with);
    MappedNetlist nwo = map_to_cells(aig, CellLibrary::asap7_like(), without);
    // Required times guarantee delay is never degraded; area recovery is a
    // local area-flow heuristic, so allow a small tolerance on area.
    EXPECT_LE(nw.delay(), nwo.delay() + 1e-9);
    EXPECT_LE(nw.area(), nwo.area() * 1.10);
    EXPECT_TRUE(testing::functionally_equal(aig, nw.to_aig()));
  }
}

TEST(Mapper, AdderMapsCorrectly) {
  Aig adder = make_adder(8);
  MappedNetlist netlist = map_to_cells(adder, CellLibrary::asap7_like());
  EXPECT_TRUE(testing::functionally_equal(adder, netlist.to_aig()));
  // MAJ/XOR cells should make the mapped adder cheaper than 5 gates/bit.
  EXPECT_LT(netlist.num_gates(), 8u * 6u);
}

TEST(Mapper, BalancedCircuitMapsFaster) {
  // Depth reduction before mapping must not hurt mapped delay.
  Aig aig;
  std::vector<Lit> pis;
  for (int i = 0; i < 16; ++i) pis.push_back(make_lit(aig.add_pi()));
  Lit acc = pis[0];
  for (int i = 1; i < 16; ++i) acc = aig.make_and(acc, pis[i]);
  aig.add_po(acc);
  MappedQor chain = map_qor(aig, CellLibrary::asap7_like());
  MappedQor tree = map_qor(balance(aig), CellLibrary::asap7_like());
  EXPECT_LE(tree.delay, chain.delay);
}

TEST(Mapper, RejectsOversizeCuts) {
  Aig aig;
  aig.add_po(make_lit(aig.add_pi()));
  MapperParams params;
  params.cut_size = 5;
  EXPECT_THROW(map_to_cells(aig, CellLibrary::asap7_like(), params),
               std::invalid_argument);
}

TEST(Mapper, MatchingBoundIsCellPinsNotCutEnumerationLimit) {
  // Regression for the kMaxCutSize/kMaxCellPins mismatch: cut *enumeration*
  // supports K = 6 (SOP balancing uses it), but Boolean matching runs in
  // the 4-variable NPN domain, so the mapper's bound is kMaxCellPins. The
  // two constants must stay distinct and the mapper must accept exactly
  // [2, kMaxCellPins].
  static_assert(kMaxCellPins == 4);
  static_assert(kMaxCellPins < kMaxCutSize);

  Aig aig = make_adder(3);
  // Enumeration at the full width is fine...
  CutManager wide(aig, CutParams{kMaxCutSize, 8});
  EXPECT_FALSE(wide.cuts(aig.num_nodes() - 1).empty());
  // ...but mapping beyond the matcher's domain must throw, for every width
  // between the two limits.
  Matcher matcher(CellLibrary::asap7_like());
  for (unsigned k = kMaxCellPins + 1; k <= kMaxCutSize; ++k) {
    MapperParams params;
    params.cut_size = k;
    EXPECT_THROW(map_to_cells(aig, matcher, params), std::invalid_argument)
        << "cut_size " << k;
  }
  for (unsigned k = 2; k <= kMaxCellPins; ++k) {
    MapperParams params;
    params.cut_size = k;
    MappedNetlist netlist = map_to_cells(aig, matcher, params);
    EXPECT_TRUE(testing::functionally_equal(aig, netlist.to_aig()))
        << "cut_size " << k;
  }
}

TEST(Mapper, RejectsUndersizeCuts) {
  // cut_size < 2 is as invalid as > 4: it used to slip past the mapper's
  // validation and die on an assert (or UB in release) inside CutManager.
  Aig aig;
  aig.add_po(make_lit(aig.add_pi()));
  MapperParams params;
  params.cut_size = 1;
  EXPECT_THROW(map_to_cells(aig, CellLibrary::asap7_like(), params),
               std::invalid_argument);
  params.cut_size = 0;
  EXPECT_THROW(map_to_cells(aig, CellLibrary::asap7_like(), params),
               std::invalid_argument);
}

TEST(Mapper, SharedMatcherAndWorkspaceReuseMatchFreshMapping) {
  // The SA hot path maps many candidate AIGs through one shared matcher and
  // one reused workspace; every call must agree exactly with a fresh-state
  // mapping of the same circuit.
  Rng rng(153);
  Matcher matcher(CellLibrary::asap7_like());
  MapperWorkspace workspace;
  for (int round = 0; round < 6; ++round) {
    // Vary the circuit size so the workspace shrinks and grows across calls.
    unsigned ands = 30 + 40 * (round % 3);
    Aig aig = testing::random_aig(6, 3, ands, rng);
    MappedNetlist fresh = map_to_cells(aig, CellLibrary::asap7_like());
    MappedNetlist reused = map_to_cells(aig, matcher, {}, &workspace);
    EXPECT_EQ(fresh.num_gates(), reused.num_gates()) << round;
    EXPECT_DOUBLE_EQ(fresh.area(), reused.area()) << round;
    EXPECT_DOUBLE_EQ(fresh.delay(), reused.delay()) << round;
    EXPECT_TRUE(testing::functionally_equal(aig, reused.to_aig())) << round;
  }
}

}  // namespace
}  // namespace emorphic
