#include "mapper/matcher.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace emorphic {
namespace {

/// Check a CellMatch really implements `tt`: evaluate the cell function on
/// the permuted/complemented leaves.
bool match_implements(const CellLibrary& lib, const CellMatch& m, Tt tt,
                      unsigned num_leaves) {
  const Cell& cell = lib.cell(m.cell);
  Tt built = 0;
  for (unsigned minterm = 0; minterm < (1u << num_leaves); ++minterm) {
    unsigned cell_minterm = 0;
    for (unsigned j = 0; j < cell.num_inputs; ++j) {
      unsigned leaf_value = (minterm >> m.pin_leaf[j]) & 1u;
      if ((m.pin_compl >> j) & 1u) leaf_value ^= 1u;
      cell_minterm |= leaf_value << j;
    }
    unsigned value = (cell.tt >> cell_minterm) & 1u;
    if (m.output_compl) value ^= 1u;
    built |= static_cast<Tt>(value) << minterm;
  }
  return built == (tt & tt_mask(num_leaves));
}

TEST(Matcher, FindsDirectAnd) {
  Matcher matcher(CellLibrary::asap7_like());
  Tt and2 = tt_var(0, 4) & tt_var(1, 4);
  const auto& matches = matcher.match(and2, 2);
  ASSERT_FALSE(matches.empty());
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, and2, 2));
  }
}

TEST(Matcher, NandViaOutputPhase) {
  Matcher matcher(CellLibrary::asap7_like());
  Tt nand2 = ~(tt_var(0, 4) & tt_var(1, 4)) & tt_mask(4);
  const auto& matches = matcher.match(nand2, 2);
  ASSERT_FALSE(matches.empty());
  bool direct_nand = false;
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, nand2, 2));
    if (matcher.library().cell(m.cell).name == "NAND2x1" && !m.output_compl) {
      direct_nand = true;
    }
  }
  EXPECT_TRUE(direct_nand);
}

TEST(Matcher, InputPhaseHandling) {
  Matcher matcher(CellLibrary::asap7_like());
  // a & !b has no dedicated cell: matches must use pin complement flags.
  Tt andn = (tt_var(0, 4) & ~tt_var(1, 4)) & tt_mask(4);
  const auto& matches = matcher.match(andn, 2);
  ASSERT_FALSE(matches.empty());
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, andn, 2));
  }
}

TEST(Matcher, Mux3Leaves) {
  Matcher matcher(CellLibrary::asap7_like());
  Tt s = tt_var(0, 4), a = tt_var(1, 4), b = tt_var(2, 4);
  Tt mux = ((s & a) | (~s & b)) & tt_mask(4);
  const auto& matches = matcher.match(mux, 3);
  ASSERT_FALSE(matches.empty());
  bool found_mux_cell = false;
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, mux, 3));
    if (matcher.library().cell(m.cell).name == "MUX2x1") found_mux_cell = true;
  }
  EXPECT_TRUE(found_mux_cell);
}

TEST(Matcher, Aoi22FourLeaves) {
  Matcher matcher(CellLibrary::asap7_like());
  Tt a = tt_var(0, 4), b = tt_var(1, 4), c = tt_var(2, 4), d = tt_var(3, 4);
  Tt aoi = ~((a & b) | (c & d)) & tt_mask(4);
  const auto& matches = matcher.match(aoi, 4);
  ASSERT_FALSE(matches.empty());
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, aoi, 4));
  }
}

TEST(Matcher, NoMatchForUncoveredFunction) {
  // A function guaranteed outside the library: 4-input parity.
  Matcher matcher(CellLibrary::asap7_like());
  Tt parity =
      (tt_var(0, 4) ^ tt_var(1, 4) ^ tt_var(2, 4) ^ tt_var(3, 4)) & tt_mask(4);
  EXPECT_TRUE(matcher.match(parity, 4).empty());
}

TEST(Matcher, RandomPermutedGateFunctionsAlwaysMatch) {
  Matcher matcher(CellLibrary::asap7_like());
  const CellLibrary& lib = matcher.library();
  Rng rng(141);
  for (std::uint32_t cid = 0; cid < lib.size(); ++cid) {
    const Cell& cell = lib.cell(cid);
    if (cell.num_inputs < 2) continue;
    // Apply a random NPN transform to the cell function; it must match.
    NpnTransform tr;
    std::array<std::uint8_t, 4> perm{{0, 1, 2, 3}};
    for (int i = 3; i > 0; --i) {
      std::swap(perm[i], perm[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
    }
    tr.perm = perm;
    tr.input_phase = static_cast<std::uint8_t>(rng.next_below(16));
    tr.output_phase = rng.chance(0.5);
    Tt transformed = npn_apply(cell.tt, tr);
    // Transformed function may move support onto padding vars; evaluate
    // with 4 leaves to stay safe.
    const auto& matches = matcher.match(transformed, 4);
    ASSERT_FALSE(matches.empty()) << cell.name;
    for (const CellMatch& m : matches) {
      EXPECT_TRUE(match_implements(lib, m, transformed, 4)) << cell.name;
    }
  }
}

}  // namespace
}  // namespace emorphic
