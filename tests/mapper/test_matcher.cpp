#include "mapper/matcher.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace emorphic {
namespace {

/// Check a CellMatch really implements `tt`: evaluate the cell function on
/// the permuted/complemented leaves.
bool match_implements(const CellLibrary& lib, const CellMatch& m, Tt tt,
                      unsigned num_leaves) {
  const Cell& cell = lib.cell(m.cell);
  Tt built = 0;
  for (unsigned minterm = 0; minterm < (1u << num_leaves); ++minterm) {
    unsigned cell_minterm = 0;
    for (unsigned j = 0; j < cell.num_inputs; ++j) {
      unsigned leaf_value = (minterm >> m.pin_leaf[j]) & 1u;
      if ((m.pin_compl >> j) & 1u) leaf_value ^= 1u;
      cell_minterm |= leaf_value << j;
    }
    unsigned value = (cell.tt >> cell_minterm) & 1u;
    if (m.output_compl) value ^= 1u;
    built |= static_cast<Tt>(value) << minterm;
  }
  return built == (tt & tt_mask(num_leaves));
}

TEST(Matcher, FindsDirectAnd) {
  Matcher matcher(CellLibrary::asap7_like());
  Tt and2 = tt_var(0, 4) & tt_var(1, 4);
  const auto& matches = matcher.match(and2, 2);
  ASSERT_FALSE(matches.empty());
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, and2, 2));
  }
}

TEST(Matcher, NandViaOutputPhase) {
  Matcher matcher(CellLibrary::asap7_like());
  Tt nand2 = ~(tt_var(0, 4) & tt_var(1, 4)) & tt_mask(4);
  const auto& matches = matcher.match(nand2, 2);
  ASSERT_FALSE(matches.empty());
  bool direct_nand = false;
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, nand2, 2));
    if (matcher.library().cell(m.cell).name == "NAND2x1" && !m.output_compl) {
      direct_nand = true;
    }
  }
  EXPECT_TRUE(direct_nand);
}

TEST(Matcher, InputPhaseHandling) {
  Matcher matcher(CellLibrary::asap7_like());
  // a & !b has no dedicated cell: matches must use pin complement flags.
  Tt andn = (tt_var(0, 4) & ~tt_var(1, 4)) & tt_mask(4);
  const auto& matches = matcher.match(andn, 2);
  ASSERT_FALSE(matches.empty());
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, andn, 2));
  }
}

TEST(Matcher, Mux3Leaves) {
  Matcher matcher(CellLibrary::asap7_like());
  Tt s = tt_var(0, 4), a = tt_var(1, 4), b = tt_var(2, 4);
  Tt mux = ((s & a) | (~s & b)) & tt_mask(4);
  const auto& matches = matcher.match(mux, 3);
  ASSERT_FALSE(matches.empty());
  bool found_mux_cell = false;
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, mux, 3));
    if (matcher.library().cell(m.cell).name == "MUX2x1") found_mux_cell = true;
  }
  EXPECT_TRUE(found_mux_cell);
}

TEST(Matcher, Aoi22FourLeaves) {
  Matcher matcher(CellLibrary::asap7_like());
  Tt a = tt_var(0, 4), b = tt_var(1, 4), c = tt_var(2, 4), d = tt_var(3, 4);
  Tt aoi = ~((a & b) | (c & d)) & tt_mask(4);
  const auto& matches = matcher.match(aoi, 4);
  ASSERT_FALSE(matches.empty());
  for (const CellMatch& m : matches) {
    EXPECT_TRUE(match_implements(matcher.library(), m, aoi, 4));
  }
}

TEST(Matcher, NoMatchForUncoveredFunction) {
  // A function guaranteed outside the library: 4-input parity.
  Matcher matcher(CellLibrary::asap7_like());
  Tt parity =
      (tt_var(0, 4) ^ tt_var(1, 4) ^ tt_var(2, 4) ^ tt_var(3, 4)) & tt_mask(4);
  EXPECT_TRUE(matcher.match(parity, 4).empty());
}

/// A library containing AND2D: a 3-input cell whose function ignores pin 2
/// (tt = x0 & x1). Degenerate pins are how (tt, num_leaves) cache staleness
/// becomes observable: the free pin may legally bind leaf 2 of a 3-leaf cut
/// but no leaf of a 2-leaf cut with the *same padded truth table*.
CellLibrary library_with_degenerate_cell() {
  CellLibrary lib;
  Cell inv;
  inv.name = "INV";
  inv.area = 1.0;
  inv.delay = 1.0;
  inv.num_inputs = 1;
  inv.tt = tt_not(tt_var(0, 4), 4);
  lib.add(inv);
  Cell and2;
  and2.name = "AND2";
  and2.area = 2.0;
  and2.delay = 2.0;
  and2.num_inputs = 2;
  and2.tt = tt_var(0, 4) & tt_var(1, 4);
  lib.add(and2);
  Cell and2d;
  and2d.name = "AND2D";
  and2d.area = 3.0;
  and2d.delay = 3.0;
  and2d.num_inputs = 3;
  and2d.tt = tt_var(0, 4) & tt_var(1, 4);  // pin 2 is ignored
  lib.add(and2d);
  return lib;
}

TEST(Matcher, CacheIsKeyedByLeafCount) {
  // Regression: the match cache used to be keyed by the padded truth table
  // only, but two cuts of different sizes can pad to the same 4-var
  // function — e.g. a 2-leaf cut computing a&b and a 3-leaf cut whose
  // function ignores its third leaf. Their match lists differ (a cell pin
  // must never read a padding variable), so the leaf count belongs in the
  // cache key; the stale entry used to leak a pin bound to leaf >= 2 into
  // the 2-leaf query, making the mapper index cut.leaves out of range.
  CellLibrary lib = library_with_degenerate_cell();
  Tt f = tt_var(0, 4) & tt_var(1, 4);

  // 3-leaf query first (poisons a tt-keyed cache), 2-leaf query second.
  Matcher matcher(lib);
  const auto& three = matcher.match(f, 3);
  bool and2d_with_free_pin = false;
  for (const CellMatch& m : three) {
    for (unsigned j = 0; j < lib.cell(m.cell).num_inputs; ++j) {
      EXPECT_LT(m.pin_leaf[j], 3u);
    }
    if (lib.cell(m.cell).name == "AND2D") and2d_with_free_pin = true;
  }
  EXPECT_TRUE(and2d_with_free_pin);  // free pin legally bound to leaf 2

  const auto& two = matcher.match(f, 2);
  for (const CellMatch& m : two) {
    EXPECT_NE(lib.cell(m.cell).name, "AND2D");
    for (unsigned j = 0; j < lib.cell(m.cell).num_inputs; ++j) {
      EXPECT_LT(m.pin_leaf[j], 2u) << "stale cache leaked a padding pin";
    }
    EXPECT_TRUE(match_implements(lib, m, f, 2));
  }
  ASSERT_FALSE(two.empty());  // AND2 still matches

  // Reverse order on a fresh matcher: the 2-leaf entry must not rob the
  // 3-leaf query of its degenerate match.
  Matcher reversed(lib);
  reversed.match(f, 2);
  bool found = false;
  for (const CellMatch& m : reversed.match(f, 3)) {
    if (lib.cell(m.cell).name == "AND2D") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Matcher, PinLeafAlwaysWithinLeafCount) {
  // Interleaved leaf counts over the standard library: every returned match
  // must respect the leaf count of *its own* query.
  Matcher matcher(CellLibrary::asap7_like());
  Rng rng(53);
  for (int round = 0; round < 200; ++round) {
    Tt tt = rng.next() & tt_mask(4);
    unsigned num_leaves = 2 + static_cast<unsigned>(rng.next_below(3));
    for (const CellMatch& m : matcher.match(tt, num_leaves)) {
      const Cell& cell = matcher.library().cell(m.cell);
      for (unsigned j = 0; j < cell.num_inputs; ++j) {
        EXPECT_LT(m.pin_leaf[j], num_leaves);
      }
    }
  }
}

TEST(Matcher, ConcurrentMatchIsConsistent) {
  // One shared matcher hammered from several threads must return the same
  // match lists a cold serial matcher does (and not crash or race).
  Matcher shared(CellLibrary::asap7_like());
  std::vector<Tt> tts;
  Rng rng(97);
  for (int i = 0; i < 64; ++i) tts.push_back(rng.next() & tt_mask(4));

  std::vector<std::thread> threads;
  std::vector<std::size_t> totals(4, 0);
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::size_t sum = 0;
      for (int round = 0; round < 50; ++round) {
        for (Tt tt : tts) {
          sum += shared.match(tt, 2 + (round + t) % 3).size();
        }
      }
      totals[t] = sum;
    });
  }
  for (auto& th : threads) th.join();

  Matcher serial(CellLibrary::asap7_like());
  for (unsigned t = 0; t < 4; ++t) {
    std::size_t sum = 0;
    for (int round = 0; round < 50; ++round) {
      for (Tt tt : tts) sum += serial.match(tt, 2 + (round + t) % 3).size();
    }
    EXPECT_EQ(totals[t], sum);
  }
}

TEST(Matcher, RandomPermutedGateFunctionsAlwaysMatch) {
  Matcher matcher(CellLibrary::asap7_like());
  const CellLibrary& lib = matcher.library();
  Rng rng(141);
  for (std::uint32_t cid = 0; cid < lib.size(); ++cid) {
    const Cell& cell = lib.cell(cid);
    if (cell.num_inputs < 2) continue;
    // Apply a random NPN transform to the cell function; it must match.
    NpnTransform tr;
    std::array<std::uint8_t, 4> perm{{0, 1, 2, 3}};
    for (int i = 3; i > 0; --i) {
      std::swap(perm[i], perm[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
    }
    tr.perm = perm;
    tr.input_phase = static_cast<std::uint8_t>(rng.next_below(16));
    tr.output_phase = rng.chance(0.5);
    Tt transformed = npn_apply(cell.tt, tr);
    // Transformed function may move support onto padding vars; evaluate
    // with 4 leaves to stay safe.
    const auto& matches = matcher.match(transformed, 4);
    ASSERT_FALSE(matches.empty()) << cell.name;
    for (const CellMatch& m : matches) {
      EXPECT_TRUE(match_implements(lib, m, transformed, 4)) << cell.name;
    }
  }
}

}  // namespace
}  // namespace emorphic
