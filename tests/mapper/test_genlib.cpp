#include "mapper/genlib.hpp"

#include <gtest/gtest.h>

namespace emorphic {
namespace {

TEST(Genlib, ParsesEmbeddedLibrary) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  EXPECT_GE(lib.size(), 20u);
  std::int32_t inv = lib.find("INVx1");
  ASSERT_GE(inv, 0);
  EXPECT_EQ(lib.cell(inv).num_inputs, 1u);
  EXPECT_EQ(lib.cell(inv).tt, tt_not(tt_var(0, 4), 4));
  EXPECT_EQ(lib.inverter(), static_cast<std::uint32_t>(inv));
}

TEST(Genlib, GateFunctions) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  Tt a = tt_var(0, 4), b = tt_var(1, 4), c = tt_var(2, 4), d = tt_var(3, 4);
  EXPECT_EQ(lib.cell(lib.find("NAND2x1")).tt, ~(a & b) & tt_mask(4));
  EXPECT_EQ(lib.cell(lib.find("NOR2x1")).tt, ~(a | b) & tt_mask(4));
  EXPECT_EQ(lib.cell(lib.find("XOR2x1")).tt, (a ^ b) & tt_mask(4));
  EXPECT_EQ(lib.cell(lib.find("AOI21x1")).tt, ~((a & b) | c) & tt_mask(4));
  EXPECT_EQ(lib.cell(lib.find("OAI22x1")).tt,
            ~((a | b) & (c | d)) & tt_mask(4));
  EXPECT_EQ(lib.cell(lib.find("MAJ3x1")).tt,
            ((a & b) | (a & c) | (b & c)) & tt_mask(4));
}

TEST(Genlib, PinOrderFollowsExpression) {
  CellLibrary lib = parse_genlib("GATE g 1.0 Y=(B*A)+C; PIN * 5\n");
  const Cell& cell = lib.cell(0);
  ASSERT_EQ(cell.num_inputs, 3u);
  EXPECT_EQ(cell.input_names[0], "B");
  EXPECT_EQ(cell.input_names[1], "A");
  EXPECT_EQ(cell.input_names[2], "C");
  EXPECT_DOUBLE_EQ(cell.delay, 5.0);
  EXPECT_DOUBLE_EQ(cell.area, 1.0);
}

TEST(Genlib, ParsesConstGates) {
  CellLibrary lib = parse_genlib(
      "GATE tie0 0.1 Y=CONST0;\nGATE tie1 0.1 Y=CONST1;\n");
  EXPECT_EQ(lib.cell(0).tt, 0ull);
  EXPECT_EQ(lib.cell(1).tt, tt_mask(4));
  EXPECT_EQ(lib.cell(0).num_inputs, 0u);
}

TEST(Genlib, PostfixComplement) {
  CellLibrary lib = parse_genlib("GATE andn 1.0 Y=A*B'; PIN * 2\n");
  Tt a = tt_var(0, 4), b = tt_var(1, 4);
  EXPECT_EQ(lib.cell(0).tt, (a & ~b) & tt_mask(4));
}

TEST(Genlib, RejectsMalformedInput) {
  EXPECT_THROW(parse_genlib("NOTAGATE x"), std::runtime_error);
  EXPECT_THROW(parse_genlib("GATE g 1.0 Y=A*B"), std::runtime_error);  // no ';'
  EXPECT_THROW(parse_genlib("GATE g 1.0 YAB;\n"), std::runtime_error); // no '='
  EXPECT_THROW(parse_genlib("GATE g 1.0 Y=A*B*C*D*E;\n"), std::runtime_error);
}

TEST(Genlib, BufferLookup) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  std::int32_t buf = lib.buffer();
  ASSERT_GE(buf, 0);
  EXPECT_EQ(lib.cell(buf).tt, tt_var(0, 4));
}

}  // namespace
}  // namespace emorphic
