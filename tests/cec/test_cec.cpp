#include "cec/cec.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "aig/sim.hpp"
#include "benchgen/arith.hpp"
#include "opt/balance.hpp"
#include "opt/resyn.hpp"

namespace emorphic {
namespace {

TEST(Cec, IdenticalCircuits) {
  Rng rng(171);
  Aig aig = testing::random_aig(6, 3, 40, rng);
  CecResult result = cec(aig, aig);
  EXPECT_EQ(result.status, CecStatus::kEquivalent);
}

TEST(Cec, OptimizedCircuitsAreEquivalent) {
  Rng rng(172);
  for (int round = 0; round < 4; ++round) {
    Aig aig = testing::random_aig(6, 3, 50, rng);
    EXPECT_EQ(cec(aig, balance(aig)).status, CecStatus::kEquivalent);
    EXPECT_EQ(cec(aig, resyn(aig)).status, CecStatus::kEquivalent);
  }
}

TEST(Cec, SimulationCatchesEasyDifference) {
  Aig x;
  Lit a = make_lit(x.add_pi());
  Lit b = make_lit(x.add_pi());
  x.add_po(x.make_and(a, b));
  Aig y;
  Lit c = make_lit(y.add_pi());
  Lit d = make_lit(y.add_pi());
  y.add_po(y.make_or(c, d));
  CecResult result = cec(x, y);
  ASSERT_EQ(result.status, CecStatus::kNotEquivalent);
  ASSERT_EQ(result.counterexample.size(), 2u);
  bool va = result.counterexample[0], vb = result.counterexample[1];
  EXPECT_NE(va && vb, va || vb);
  EXPECT_EQ(result.sat_conflicts, 0u);  // refuted by simulation alone
}

TEST(Cec, SatCatchesRareDifference) {
  // Two circuits differing on exactly one input pattern: random simulation
  // (16 words = 1024 patterns over 16 inputs) is unlikely to catch it, but
  // SAT must.
  const unsigned n = 16;
  Aig x;
  std::vector<Lit> xin;
  for (unsigned i = 0; i < n; ++i) xin.push_back(make_lit(x.add_pi()));
  x.add_po(x.make_and_n(xin));  // 1 only on the all-ones pattern
  Aig y;
  for (unsigned i = 0; i < n; ++i) y.add_pi();
  y.add_po(kLitFalse);  // constant 0
  CecParams params;
  params.sim_words = 2;
  CecResult result = cec(x, y, params);
  ASSERT_EQ(result.status, CecStatus::kNotEquivalent);
  for (bool bit : result.counterexample) EXPECT_TRUE(bit);
}

TEST(Cec, InterfaceMismatch) {
  Aig x;
  x.add_pi();
  x.add_po(kLitTrue);
  Aig y;
  y.add_pi();
  y.add_pi();
  y.add_po(kLitTrue);
  EXPECT_EQ(cec(x, y).status, CecStatus::kNotEquivalent);
}

TEST(Cec, AdderCommutes) {
  // a+b == b+a: a nontrivial arithmetic equivalence proved by SAT.
  Aig ab = make_adder(8);
  Aig ba;
  {
    Word b = add_input_word(ba, "x", 8);
    Word a = add_input_word(ba, "y", 8);
    // swap roles: feed (y,x) into the adder structure built as (x+y)... To
    // change structure, add via reversed argument order:
    Lit carry = kLitFalse;
    Word sum = ripple_add(ba, a, b, kLitFalse, &carry);
    add_output_word(ba, "s", sum);
    ba.add_po(carry, "cout");
  }
  // Same function bit-for-bit (addition commutes; PIs line up positionally).
  EXPECT_EQ(cec(ab, ba).status, CecStatus::kEquivalent);
}

TEST(Cec, ConflictLimitGivesUndecided) {
  // A hard miter with an absurdly low conflict budget: multiplier output
  // bit against a structurally different implementation.
  Aig m1 = make_multiplier(6);
  Aig m2 = resyn(make_multiplier(6));
  CecParams params;
  params.sim_words = 0;       // skip simulation entirely
  params.conflict_limit = 1;  // give up almost immediately
  CecResult result = cec(m1, m2, params);
  EXPECT_NE(result.status, CecStatus::kNotEquivalent);
}

TEST(Cec, StatusNames) {
  EXPECT_STREQ(cec_status_name(CecStatus::kEquivalent), "equivalent");
  EXPECT_STREQ(cec_status_name(CecStatus::kNotEquivalent), "NOT-equivalent");
  EXPECT_STREQ(cec_status_name(CecStatus::kUndecided), "undecided");
}

}  // namespace
}  // namespace emorphic
