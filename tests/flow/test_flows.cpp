#include "flow/flows.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"

namespace emorphic {
namespace {

FlowParams quick_params() {
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  params.rewrite.time_limit_s = 5.0;
  params.sa.num_threads = 2;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.cec_params.conflict_limit = 50000;
  return params;
}

TEST(Flows, BaselineProducesValidMapping) {
  Aig adder = make_adder(8);
  BaselineResult result = baseline_flow(adder, quick_params());
  EXPECT_GT(result.qor.area, 0.0);
  EXPECT_GT(result.qor.delay, 0.0);
  EXPECT_GT(result.qor.lev, 0u);
  ASSERT_TRUE(result.netlist.has_value());
  EXPECT_TRUE(testing::functionally_equal(adder, result.netlist->to_aig()));
  EXPECT_EQ(cec(adder, result.final_aig).status, CecStatus::kEquivalent);
}

TEST(Flows, BaselineImprovesDelayOverDirectMap) {
  Aig mult = make_multiplier(8);
  FlowParams params = quick_params();
  MappedQor direct = map_qor(mult, *params.library, params.mapping);
  BaselineResult optimized = baseline_flow(mult, params);
  EXPECT_LT(optimized.qor.delay, direct.delay);
}

TEST(Flows, EmorphicResultIsEquivalentAndComplete) {
  Aig arbiter = make_arbiter(8);
  FlowParams params = quick_params();
  params.verify = true;
  EmorphicResult result = emorphic_flow(arbiter, params);
  EXPECT_EQ(result.verify_status, CecStatus::kEquivalent);
  EXPECT_GT(result.qor.area, 0.0);
  EXPECT_GT(result.qor.delay, 0.0);
  // Breakdown must cover all stages (Fig. 9 inputs).
  EXPECT_GT(result.breakdown.flow_seconds, 0.0);
  EXPECT_GT(result.breakdown.conversion_seconds, 0.0);
  EXPECT_GT(result.breakdown.rewrite_seconds, 0.0);
  EXPECT_GT(result.breakdown.sa_seconds, 0.0);
  // Rewriting must have multiplied the e-graph.
  EXPECT_GT(result.egraph_enodes, result.initial_enodes);
}

TEST(Flows, EmorphicNeverMuchWorseThanBaselineOnDelay) {
  // SA is stochastic, but the e-graph contains (at least) the baseline
  // structure, so with the exact cost model the final mapped delay should
  // stay in the baseline's neighborhood.
  Aig sqrt_c = make_sqrt(8);
  FlowParams params = quick_params();
  params.verify = false;
  BaselineResult base = baseline_flow(sqrt_c, params);
  EmorphicResult em = emorphic_flow(sqrt_c, params);
  EXPECT_LT(em.qor.delay, base.qor.delay * 1.25);
}

TEST(Flows, RuntimeBreakdownSumsToTotal) {
  Aig sin_c = make_sin(6);
  FlowParams params = quick_params();
  params.verify = false;
  EmorphicResult result = emorphic_flow(sin_c, params);
  double sum = result.breakdown.flow_seconds +
               result.breakdown.conversion_seconds +
               result.breakdown.rewrite_seconds + result.breakdown.sa_seconds;
  EXPECT_NEAR(sum, result.qor.seconds, 0.25 * result.qor.seconds + 0.05);
}

TEST(Flows, MapEvaluatorCostIsDelayPlusWeightedArea) {
  MapQorEvaluator eval(CellLibrary::asap7_like(), 0.25);
  Aig adder = make_adder(6);
  Qor qor = eval.evaluate(adder);
  EXPECT_GT(qor.area, 0.0);
  EXPECT_DOUBLE_EQ(eval.cost(qor), qor.delay + 0.25 * qor.area);
  // Zero weight degenerates to the pure-delay objective.
  MapQorEvaluator delay_only(CellLibrary::asap7_like(), 0.0);
  EXPECT_DOUBLE_EQ(delay_only.cost(qor), qor.delay);
}

}  // namespace
}  // namespace emorphic
