// Choice export (flow/choice_export.hpp) and the "choicemap" stage:
//  * exporting a rewritten e-graph yields a check()-clean annotation with
//    real rings, and mapping across it preserves the circuit function;
//  * a ring member that is NOT equivalent to its representative (injected
//    through an unsound e-graph merge) must be rejected by the export's
//    SAT verification;
//  * choice-aware mapping of a choice-free AIG reproduces plain
//    map_to_cells exactly (bit-identical netlist);
//  * the registered stage slots into pipelines and the prebuilt
//    use_choicemap flow stays cec-equivalent end to end.

#include "flow/choice_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "cec/cec.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/batch.hpp"
#include "flow/pipeline.hpp"

namespace emorphic {
namespace {

/// A small rewritten e-graph with real structural diversity per class.
CircuitEGraph rewritten_egraph(const Aig& aig) {
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerParams params;
  params.max_iterations = 3;
  params.max_enodes = 20000;
  params.max_matches_per_rule = 2000;
  run_rewriting(ce.egraph, make_logic_rules(), params);
  return ce;
}

TEST(ChoiceExport, RewrittenAdderExportsVerifiedRings) {
  Aig aig = make_adder(6);
  CircuitEGraph ce = rewritten_egraph(aig);
  Extraction solution = greedy_extract(ce.egraph, CostModel{CostKind::kDepth});

  ChoiceExportStats stats;
  ChoiceAig caig = egraph_to_choice_aig(ce, solution, {}, &stats);
  EXPECT_EQ(caig.choices.check(caig.aig), "");
  EXPECT_GT(stats.cone_classes, 0u);
  // Saturation on an adder produces real alternatives (XOR/OR variants).
  EXPECT_GT(stats.alts_kept, 0u);
  EXPECT_EQ(stats.alts_kept, caig.choices.num_alts());
  EXPECT_EQ(stats.classes_with_choices, caig.choices.num_rings());

  // The exported PO cones are the plain extraction (same function).
  Aig plain = egraph_to_aig(ce, solution);
  EXPECT_EQ(cec(aig, plain).status, CecStatus::kEquivalent);
  EXPECT_EQ(cec(aig, caig.aig).status, CecStatus::kEquivalent);

  // Mapping across the variants preserves the function.
  Matcher matcher(CellLibrary::asap7_like());
  MappedNetlist netlist = map_to_cells(caig, matcher);
  EXPECT_EQ(cec(aig, netlist.to_aig()).status, CecStatus::kEquivalent);
}

TEST(ChoiceExport, InequivalentRingMemberIsRejected) {
  // An unsound merge puts or(a,b) into the and(a,b) class. The chosen
  // extraction lowers one member; the other becomes a candidate ring
  // member that is NOT equivalent — verification must reject it.
  EGraph egraph;
  EClassId a = egraph.add_var(0);
  EClassId b = egraph.add_var(1);
  EClassId and_ab = egraph.add_and(a, b);
  EClassId or_ab = egraph.add_or(a, b);
  egraph.merge(and_ab, or_ab);
  egraph.rebuild();

  CircuitEGraph ce;
  ce.egraph = std::move(egraph);
  ce.pi_names = {"a", "b"};
  SerializedRoot root;
  root.id = and_ab;
  root.name = "f";
  ce.roots.push_back(root);

  Extraction solution = greedy_extract(ce.egraph, CostModel{CostKind::kSize});

  ChoiceExportStats stats;
  ChoiceAig verified = egraph_to_choice_aig(ce, solution, {}, &stats);
  EXPECT_GE(stats.alts_rejected, 1u);
  EXPECT_EQ(stats.alts_kept, 0u);
  EXPECT_EQ(verified.choices.num_rings(), 0u);

  // Contrast: with verification off the bogus member would have slipped
  // into a ring — proving the rejection above came from the SAT check.
  ChoiceExportParams unsafe;
  unsafe.verify = false;
  ChoiceExportStats unsafe_stats;
  ChoiceAig unverified = egraph_to_choice_aig(ce, solution, unsafe,
                                              &unsafe_stats);
  EXPECT_EQ(unsafe_stats.alts_rejected, 0u);
  EXPECT_GE(unsafe_stats.alts_kept, 1u);
  EXPECT_GE(unverified.choices.num_rings(), 1u);
}

TEST(ChoiceExport, ChoiceFreeMappingReproducesPlainMappingExactly) {
  // On an annotation without rings the choice-aware overload must be
  // bit-identical to plain map_to_cells — same gates, same nets, same
  // names — not merely QoR-equal.
  Matcher matcher(CellLibrary::asap7_like());
  Rng rng(321);
  for (const Aig& aig :
       {make_adder(8), make_multiplier(4), testing::random_aig(7, 4, 80, rng)}) {
    MappedNetlist plain = map_to_cells(aig, matcher);
    MappedNetlist via_choices = map_to_cells(ChoiceAig::from_plain(aig), matcher);
    EXPECT_EQ(plain.to_blif("m"), via_choices.to_blif("m"));
    EXPECT_EQ(plain.area(), via_choices.area());
    EXPECT_EQ(plain.delay(), via_choices.delay());
  }
}

TEST(ChoicemapStage, RegisteredAndRunsInAPipeline) {
  std::vector<std::string> registered = registered_stage_names();
  EXPECT_NE(std::find(registered.begin(), registered.end(), "choicemap"),
            registered.end());

  Pipeline p;
  p.add("EgraphConversion").add("Rewrite").add("SaExtract").add("choicemap");

  FlowParams params;
  params.verify = false;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  params.sa.num_threads = 1;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 4;

  Aig aig = make_adder(5);
  FlowResult result = p.run(aig, params);
  EXPECT_EQ(cec(aig, result.final_aig).status, CecStatus::kEquivalent);
  ASSERT_TRUE(result.netlist.has_value());
  EXPECT_EQ(cec(aig, result.netlist->to_aig()).status, CecStatus::kEquivalent);
  EXPECT_GT(result.qor.area, 0.0);
  EXPECT_GT(result.qor.delay, 0.0);
  EXPECT_GT(result.choice_stats.cone_classes, 0u);
}

TEST(ChoicemapStage, StageWithoutEgraphThrows) {
  Pipeline p;
  p.add("choicemap");
  FlowParams params;
  EXPECT_THROW(p.run(make_adder(3), params), std::runtime_error);
}

TEST(ChoicemapStage, EmorphicFlowWithChoicemapVerifies) {
  FlowParams params;
  params.use_choicemap = true;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  params.sa.num_threads = 1;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 4;

  Pipeline pipeline = Pipeline::emorphic(params);
  std::vector<std::string> names = pipeline.stage_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "choicemap"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "TechMap"), names.end());

  Aig aig = make_adder(5);
  FlowResult result = pipeline.run(aig, params);
  EXPECT_EQ(result.verify_status, CecStatus::kEquivalent);
  ASSERT_TRUE(result.netlist.has_value());
  EXPECT_EQ(cec(aig, result.netlist->to_aig()).status, CecStatus::kEquivalent);
}

TEST(ChoicemapStage, BatchInheritsChoicemapDeterministically) {
  FlowParams params;
  params.use_choicemap = true;
  params.verify = false;
  params.rounds = 1;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 6000;
  params.sa.num_threads = 1;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 3;

  std::vector<Aig> circuits;
  circuits.push_back(make_adder(4));
  circuits.push_back(make_multiplier(3));

  BatchParams batch;
  batch.num_threads = 2;
  BatchResult first = run_batch(circuits, Pipeline::emorphic(params), params,
                                batch);
  batch.num_threads = 1;
  BatchResult second = run_batch(circuits, Pipeline::emorphic(params), params,
                                 batch);
  ASSERT_EQ(first.results.size(), 2u);
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EXPECT_EQ(cec(circuits[i], first.results[i].final_aig).status,
              CecStatus::kEquivalent);
    EXPECT_EQ(first.results[i].qor.area, second.results[i].qor.area);
    EXPECT_EQ(first.results[i].qor.delay, second.results[i].qor.delay);
  }
}

}  // namespace
}  // namespace emorphic
