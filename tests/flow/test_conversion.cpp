#include "flow/conversion.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "util/timer.hpp"

namespace emorphic {
namespace {

TEST(Conversion, ForwardIsOneToOne) {
  // Every AND node becomes exactly one AND e-node; NOTs only materialize
  // for complemented edges.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit f = aig.make_and(a, lit_not(b));
  aig.add_po(f);
  CircuitEGraph ce = aig_to_egraph(aig);
  // classes: const0, a, b, NOT(b), AND -> 5
  EXPECT_EQ(ce.egraph.num_classes(), 5u);
  EXPECT_EQ(ce.egraph.num_enodes(), 5u);
}

TEST(Conversion, RoundTripPreservesFunction) {
  Rng rng(191);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(6, 4, 60, rng);
    CircuitEGraph ce = aig_to_egraph(aig);
    Aig back = egraph_to_aig_greedy(ce);
    EXPECT_TRUE(testing::functionally_equal(aig, back)) << round;
  }
}

TEST(Conversion, RoundTripPreservesInterface) {
  Aig adder = make_adder(8);
  CircuitEGraph ce = aig_to_egraph(adder);
  Aig back = egraph_to_aig_greedy(ce);
  ASSERT_EQ(back.num_pis(), adder.num_pis());
  ASSERT_EQ(back.num_pos(), adder.num_pos());
  for (std::uint32_t i = 0; i < adder.num_pis(); ++i) {
    EXPECT_EQ(back.pi_name(i), adder.pi_name(i));
  }
  for (std::uint32_t i = 0; i < adder.num_pos(); ++i) {
    EXPECT_EQ(back.po_name(i), adder.po_name(i));
  }
}

TEST(Conversion, RoundTripWithoutRewritingIsNearIdentity) {
  // Greedy size extraction of an unrewritten e-graph reproduces the input
  // node count (no structural information is lost in conversion).
  Aig adder = make_adder(12);
  CircuitEGraph ce = aig_to_egraph(adder);
  Aig back = egraph_to_aig_greedy(ce, CostKind::kSize);
  EXPECT_EQ(back.num_ands(), adder.num_ands());
}

TEST(Conversion, LinearScaling) {
  // Table III's claim in miniature: forward conversion time grows roughly
  // linearly, so quadrupling the circuit must not blow up the runtime.
  Aig small = make_multiplier(8);
  Aig large = make_multiplier(16);  // ~4x the nodes
  Timer t1;
  CircuitEGraph ce_small = aig_to_egraph(small);
  double small_time = t1.seconds();
  Timer t2;
  CircuitEGraph ce_large = aig_to_egraph(large);
  double large_time = t2.seconds();
  // Allow generous noise: must stay within ~40x for a 4x size growth.
  EXPECT_LT(large_time, std::max(small_time * 40.0, 0.25));
  EXPECT_GT(ce_large.egraph.num_enodes(), ce_small.egraph.num_enodes());
}

TEST(Conversion, DslRoundTrip) {
  Aig sqrt_circuit = make_sqrt(8);
  CircuitEGraph ce = aig_to_egraph(sqrt_circuit);
  CircuitEGraph back = dsl_to_circuit_egraph(ce.to_dsl());
  EXPECT_EQ(back.egraph.num_enodes(), ce.egraph.num_enodes());
  Aig out = egraph_to_aig_greedy(back);
  EXPECT_TRUE(testing::functionally_equal(sqrt_circuit, out));
}

TEST(Conversion, ComplementedPoIsFlagNotNode) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(lit_not(aig.make_and(a, b)));
  CircuitEGraph ce = aig_to_egraph(aig);
  EXPECT_TRUE(ce.roots[0].complemented);
  // Only const0, a, b, AND — no NOT node for the PO.
  EXPECT_EQ(ce.egraph.num_enodes(), 4u);
}

}  // namespace
}  // namespace emorphic
