// Tests for the composable Pipeline API: stage registry, stage ordering and
// context threading, observer event counts, cancellation (between stages and
// mid-SA), time budgets, and run_batch determinism.

#include "flow/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string_view>
#include <thread>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "core/emorphic.hpp"  // optimize() facade
#include "flow/batch.hpp"
#include "flow/flows.hpp"  // EmorphicBreakdown / breakdown_from

namespace emorphic {
namespace {

FlowParams quick_params() {
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  // Generous time limits: the determinism tests need limit-free runs.
  params.rewrite.time_limit_s = 1e9;
  params.sa.num_threads = 2;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.verify = false;
  params.cec_params.conflict_limit = 50000;
  return params;
}

/// Counts every observer event and records the stage sequence.
class CountingObserver : public FlowObserver {
 public:
  void on_flow_begin(const FlowContext&) override { ++flow_begin; }
  void on_flow_end(const FlowContext&) override { ++flow_end; }
  void on_stage_begin(const Stage& stage, const FlowContext&) override {
    ++stage_begin;
    order.emplace_back(stage.name());
  }
  void on_stage_end(const Stage&, const StageTelemetry& telemetry,
                    const FlowContext&) override {
    ++stage_end;
    telemetry_seconds += telemetry.seconds;
  }
  void on_rewrite_iteration(const IterationStats&,
                            const FlowContext&) override {
    ++rewrite_iterations;
  }
  void on_sa_move(const SaTracePoint&, const FlowContext&) override {
    ++sa_moves;
  }

  int flow_begin = 0, flow_end = 0, stage_begin = 0, stage_end = 0;
  int rewrite_iterations = 0, sa_moves = 0;
  double telemetry_seconds = 0.0;
  std::vector<std::string> order;
};

TEST(Pipeline, RegistryKnowsBuiltinStages) {
  std::vector<std::string> names = registered_stage_names();
  for (const char* expected : {"ResynRounds", "EgraphConversion", "Rewrite",
                               "SaExtract", "TechMap", "Cec", "fraig"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing built-in stage " << expected;
  }
  StagePtr stage = make_stage("Rewrite");
  ASSERT_NE(stage, nullptr);
  EXPECT_STREQ(stage->name(), "Rewrite");
  EXPECT_THROW(make_stage("NoSuchStage"), std::invalid_argument);
}

TEST(Pipeline, RegistryAcceptsCustomStages) {
  class NopStage : public Stage {
   public:
    const char* name() const override { return "Nop"; }
    void run(FlowContext&) const override {}
  };
  register_stage("TestNop", [] { return StagePtr(new NopStage()); });
  Pipeline pipeline;
  pipeline.add("TestNop").add("TechMap");
  FlowResult result = pipeline.run(make_adder(4), quick_params());
  EXPECT_GT(result.qor.area, 0.0);
}

TEST(Pipeline, StageOrderingAndContextThreading) {
  // A hand-assembled pipeline without ResynRounds or SaExtract: conversion
  // forward, rewriting, conversion backward (greedy fallback), mapping.
  Pipeline pipeline;
  pipeline.add("EgraphConversion")
      .add("Rewrite")
      .add("EgraphConversion")
      .add("TechMap");
  EXPECT_EQ(pipeline.size(), 4u);

  Aig adder = make_adder(6);
  CountingObserver observer;
  FlowResult result = pipeline.run(adder, quick_params(), &observer);

  std::vector<std::string> expected{"EgraphConversion", "Rewrite",
                                    "EgraphConversion", "TechMap"};
  EXPECT_EQ(observer.order, expected);
  ASSERT_EQ(result.telemetry.stages.size(), 4u);
  EXPECT_EQ(result.telemetry.stages[1].name, "Rewrite");
  EXPECT_EQ(result.telemetry.stages[1].index, 1u);

  // Context threading: the forward conversion fed the rewriter, the
  // backward conversion fed the mapper, and the function was preserved.
  EXPECT_GT(result.initial_enodes, 0u);
  EXPECT_GE(result.egraph_enodes, result.initial_enodes);
  EXPECT_GT(result.qor.area, 0.0);
  ASSERT_TRUE(result.netlist.has_value());
  EXPECT_TRUE(testing::functionally_equal(adder, result.final_aig));
  EXPECT_FALSE(result.cancelled);
}

TEST(Pipeline, StagesValidateTheirInputs) {
  // Rewrite and SaExtract need an e-graph in the context.
  FlowParams params = quick_params();
  Aig adder = make_adder(4);
  EXPECT_THROW(Pipeline().add("Rewrite").run(adder, params),
               std::runtime_error);
  EXPECT_THROW(Pipeline().add("SaExtract").run(adder, params),
               std::runtime_error);
}

TEST(Pipeline, ObserverEventCounts) {
  CountingObserver observer;
  FlowResult result =
      Pipeline::emorphic().run(make_arbiter(6), quick_params(), &observer);

  EXPECT_EQ(observer.flow_begin, 1);
  EXPECT_EQ(observer.flow_end, 1);
  // The emorphic pipeline has 7 stages (EgraphConversion appears twice).
  EXPECT_EQ(observer.stage_begin, 7);
  EXPECT_EQ(observer.stage_end, 7);
  EXPECT_EQ(observer.rewrite_iterations,
            static_cast<int>(result.rewrite_report.iterations.size()));
  EXPECT_EQ(observer.sa_moves, static_cast<int>(result.sa.trace.size()));
  EXPECT_GT(observer.sa_moves, 0);
  // Observer-visible stage telemetry covers the optimization time.
  EXPECT_GE(observer.telemetry_seconds, result.qor.seconds);
}

TEST(Pipeline, TelemetryMatchesBreakdownBuckets) {
  FlowResult result = Pipeline::emorphic().run(make_adder(6), quick_params());
  EmorphicBreakdown breakdown = breakdown_from(result.telemetry);
  EXPECT_GT(breakdown.flow_seconds, 0.0);
  EXPECT_GT(breakdown.conversion_seconds, 0.0);
  EXPECT_GT(breakdown.rewrite_seconds, 0.0);
  EXPECT_GT(breakdown.sa_seconds, 0.0);
  double sum = breakdown.flow_seconds + breakdown.conversion_seconds +
               breakdown.rewrite_seconds + breakdown.sa_seconds;
  EXPECT_DOUBLE_EQ(sum, result.qor.seconds);
}

TEST(Pipeline, CancellationBetweenStages) {
  // Cancel as soon as the Rewrite stage finishes: SA, mapping, and CEC must
  // never run.
  class CancelAfterRewrite : public CountingObserver {
   public:
    explicit CancelAfterRewrite(std::atomic<bool>* flag) : flag_(flag) {}
    void on_stage_end(const Stage& stage, const StageTelemetry& telemetry,
                      const FlowContext& ctx) override {
      CountingObserver::on_stage_end(stage, telemetry, ctx);
      if (std::string_view(stage.name()) == "Rewrite") flag_->store(true);
    }

   private:
    std::atomic<bool>* flag_;
  };

  std::atomic<bool> cancel{false};
  CancelAfterRewrite observer(&cancel);
  FlowContext ctx;
  ctx.params = quick_params();
  ctx.input = make_adder(6);
  ctx.observer = &observer;
  ctx.cancel = &cancel;
  FlowResult result = Pipeline::emorphic().run(ctx);

  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.stop_reason, FlowStopReason::kCancelled);
  EXPECT_EQ(observer.stage_begin, 3);  // ResynRounds, EgraphConversion, Rewrite
  EXPECT_TRUE(result.sa.trace.empty());
  EXPECT_EQ(result.qor.area, 0.0);  // TechMap never ran
  EXPECT_EQ(observer.flow_end, 1);  // the flow still ends cleanly
}

TEST(Pipeline, CancellationMidSaExtract) {
  // Cancel from inside the SA stage: every chain stops at its next move.
  class CancelOnFirstMove : public FlowObserver {
   public:
    explicit CancelOnFirstMove(std::atomic<bool>* flag) : flag_(flag) {}
    void on_sa_move(const SaTracePoint&, const FlowContext&) override {
      flag_->store(true);
    }

   private:
    std::atomic<bool>* flag_;
  };

  FlowParams params = quick_params();
  params.sa.num_threads = 2;
  params.sa.iterations = 4;
  params.sa.moves_per_iteration = 4;
  const int full_moves = 2 * 4 * 4;

  std::atomic<bool> cancel{false};
  CancelOnFirstMove observer(&cancel);
  FlowContext ctx;
  ctx.params = params;
  ctx.input = make_arbiter(6);
  ctx.observer = &observer;
  ctx.cancel = &cancel;
  FlowResult result = Pipeline::emorphic().run(ctx);

  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.stop_reason, FlowStopReason::kCancelled);
  EXPECT_LT(static_cast<int>(result.sa.trace.size()), full_moves);
  // A cancelled SA still reports its best-so-far solution.
  EXPECT_GT(result.sa.evaluations, 0u);
}

TEST(Pipeline, TimeBudgetStopsImmediately) {
  FlowContext ctx;
  ctx.params = quick_params();
  ctx.input = make_adder(6);
  ctx.time_budget_s = 1e-9;
  FlowResult result = Pipeline::emorphic().run(ctx);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.stop_reason, FlowStopReason::kDeadline);
  EXPECT_TRUE(result.telemetry.stages.empty());
}

TEST(Pipeline, BudgetExpiryDuringFinalStageReportsDeadline) {
  // Regression: a budget that fires *inside the last stage* used to be
  // indistinguishable from a clean completion — no stage is skipped, so
  // `cancelled` stays false. stop_reason must still say kDeadline.
  class PollUntilStopped : public Stage {
   public:
    const char* name() const override { return "PollUntilStopped"; }
    void run(FlowContext& ctx) const override {
      for (int i = 0; i < 5000; ++i) {
        if (ctx.should_stop()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };

  Pipeline pipeline;
  pipeline.add(std::make_unique<PollUntilStopped>());
  FlowContext ctx;
  ctx.params = quick_params();
  ctx.input = make_adder(4);
  ctx.time_budget_s = 0.05;  // fires while the single (= final) stage runs
  FlowResult result = pipeline.run(ctx);

  EXPECT_FALSE(result.cancelled);  // every stage executed
  EXPECT_EQ(result.stop_reason, FlowStopReason::kDeadline);
  EXPECT_EQ(result.telemetry.stages.size(), 1u);
}

TEST(Pipeline, StopReasonResetsBetweenRuns) {
  // A context that was cancelled once must not leak the stale reason into
  // its next, untroubled run.
  std::atomic<bool> cancel{true};
  FlowContext ctx;
  ctx.params = quick_params();
  ctx.input = make_adder(4);
  ctx.cancel = &cancel;
  FlowResult stopped = Pipeline::emorphic().run(ctx);
  EXPECT_TRUE(stopped.cancelled);
  EXPECT_EQ(stopped.stop_reason, FlowStopReason::kCancelled);

  cancel.store(false);
  FlowResult clean = Pipeline::emorphic().run(ctx);
  EXPECT_FALSE(clean.cancelled);
  EXPECT_EQ(clean.stop_reason, FlowStopReason::kNone);
  EXPECT_STREQ(to_string(clean.stop_reason), "none");
}

TEST(Pipeline, ContextIsReusableAcrossRuns) {
  // take_result moves the results out, but run() re-initializes all working
  // state, so one configured context can drive several runs.
  FlowContext ctx;
  ctx.params = quick_params();
  ctx.input = make_adder(5);
  Pipeline pipeline = Pipeline::emorphic();
  FlowResult first = pipeline.run(ctx);
  FlowResult second = pipeline.run(ctx);
  EXPECT_GT(second.qor.area, 0.0);
  EXPECT_DOUBLE_EQ(first.qor.area, second.qor.area);
  EXPECT_DOUBLE_EQ(first.qor.delay, second.qor.delay);
  EXPECT_TRUE(testing::functionally_equal(ctx.input, second.final_aig));
  EXPECT_FALSE(second.cancelled);
}

TEST(Pipeline, BaselinePipelineMatchesLegacyShape) {
  Aig mult = make_multiplier(6);
  FlowResult result = Pipeline::baseline().run(mult, quick_params());
  EXPECT_GT(result.qor.area, 0.0);
  EXPECT_GT(result.qor.delay, 0.0);
  ASSERT_TRUE(result.netlist.has_value());
  EXPECT_TRUE(testing::functionally_equal(mult, result.netlist->to_aig()));
  // The baseline pipeline never touches the e-graph machinery.
  EXPECT_EQ(result.initial_enodes, 0u);
  EXPECT_TRUE(result.sa.trace.empty());
}

TEST(RunBatch, DeterministicAcrossRunsAndWorkerCounts) {
  std::vector<Aig> circuits;
  circuits.push_back(make_adder(4));
  circuits.push_back(make_arbiter(4));
  circuits.push_back(make_adder(6));

  FlowParams params = quick_params();
  Pipeline pipeline = Pipeline::emorphic();

  BatchParams two_workers;
  two_workers.base_seed = 7;
  two_workers.num_threads = 2;
  two_workers.sa_threads = 1;
  BatchResult first = run_batch(circuits, pipeline, params, two_workers);
  BatchResult second = run_batch(circuits, pipeline, params, two_workers);
  BatchParams one_worker = two_workers;
  one_worker.num_threads = 1;
  BatchResult serial = run_batch(circuits, pipeline, params, one_worker);

  ASSERT_EQ(first.results.size(), circuits.size());
  ASSERT_EQ(second.results.size(), circuits.size());
  ASSERT_EQ(serial.results.size(), circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EXPECT_GT(first.results[i].qor.area, 0.0);
    EXPECT_DOUBLE_EQ(first.results[i].qor.area, second.results[i].qor.area);
    EXPECT_DOUBLE_EQ(first.results[i].qor.delay, second.results[i].qor.delay);
    // Same seeds win regardless of how many workers fan the batch out.
    EXPECT_DOUBLE_EQ(first.results[i].qor.area, serial.results[i].qor.area);
    EXPECT_DOUBLE_EQ(first.results[i].qor.delay, serial.results[i].qor.delay);
    EXPECT_TRUE(testing::functionally_equal(circuits[i],
                                            first.results[i].final_aig));
  }
}

TEST(RunBatch, SeedsDifferPerCircuit) {
  // Two copies of the same circuit get different seeds — the batch driver
  // must not run every circuit with an identical RNG stream.
  std::vector<Aig> circuits;
  circuits.push_back(make_adder(6));
  circuits.push_back(make_adder(6));

  FlowParams params = quick_params();
  BatchParams batch;
  batch.base_seed = 3;
  batch.sa_threads = 1;
  BatchResult result = run_batch(circuits, Pipeline::emorphic(), params, batch);
  ASSERT_EQ(result.results.size(), 2u);
  // The SA traces of the two runs should diverge (same circuit, different
  // seed). Cost sequences are a robust fingerprint of the RNG stream.
  const auto& a = result.results[0].sa.trace;
  const auto& b = result.results[1].sa.trace;
  ASSERT_FALSE(a.empty());
  bool diverged = a.size() != b.size();
  for (std::size_t i = 0; !diverged && i < a.size(); ++i) {
    diverged = a[i].candidate_cost != b[i].candidate_cost;
  }
  EXPECT_TRUE(diverged);
}

TEST(RunBatch, ObserverSeesAllCircuits) {
  class BatchObserver : public FlowObserver {
   public:
    void on_flow_end(const FlowContext& ctx) override {
      std::lock_guard<std::mutex> lock(mutex);
      indices.push_back(ctx.batch_index);
    }
    std::mutex mutex;
    std::vector<std::size_t> indices;
  };

  std::vector<Aig> circuits;
  circuits.push_back(make_adder(4));
  circuits.push_back(make_adder(5));
  BatchObserver observer;
  BatchParams batch;
  batch.num_threads = 2;
  batch.sa_threads = 1;
  run_batch(circuits, Pipeline::baseline(), quick_params(), batch, &observer);
  std::sort(observer.indices.begin(), observer.indices.end());
  EXPECT_EQ(observer.indices, (std::vector<std::size_t>{0, 1}));
}

TEST(Optimize, RuntimePrioritizedHonorsConfiguredSaThreads) {
  // A minimally-trained model: the facade only needs evaluate() to work.
  std::vector<FeatureVector> features;
  std::vector<double> delays, areas;
  for (unsigned bits : {3u, 4u, 5u}) {
    features.push_back(extract_features(make_adder(bits)));
    delays.push_back(10.0 * bits);
    areas.push_back(1.0 * bits);
  }
  MlpParams mp;
  mp.epochs = 2;
  MlCostModel model(mp);
  model.train(features, delays, areas);

  EmorphicOptions options;
  options.mode = CostModelMode::kRuntimePrioritized;
  options.ml_model = &model;
  options.flow = quick_params();
  options.flow.sa.num_threads = 2;

  // Default: flow.sa.num_threads is honored (no silent bump to 6).
  EmorphicResult honored = optimize(make_adder(5), options);
  unsigned max_thread = 0;
  ASSERT_FALSE(honored.sa.trace.empty());
  for (const SaTracePoint& pt : honored.sa.trace) {
    max_thread = std::max(max_thread, pt.thread);
  }
  EXPECT_LT(max_thread, 2u);

  // The paper's bump is an explicit knob now.
  options.runtime_sa_threads = 3;
  EmorphicResult bumped = optimize(make_adder(5), options);
  max_thread = 0;
  for (const SaTracePoint& pt : bumped.sa.trace) {
    max_thread = std::max(max_thread, pt.thread);
  }
  EXPECT_EQ(max_thread, 2u);  // chains 0..2 ran
}

TEST(RunBatch, SharedCancellationFlag) {
  std::vector<Aig> circuits;
  for (int i = 0; i < 4; ++i) circuits.push_back(make_adder(6));
  std::atomic<bool> cancel{true};  // cancelled before the batch even starts
  BatchParams batch;
  batch.cancel = &cancel;
  batch.num_threads = 2;
  BatchResult result =
      run_batch(circuits, Pipeline::emorphic(), quick_params(), batch);
  for (const FlowResult& r : result.results) {
    EXPECT_TRUE(r.cancelled);
    EXPECT_TRUE(r.telemetry.stages.empty());
  }
}

}  // namespace
}  // namespace emorphic
