// Mid-saturation checkpoint/restore ("EMCK") and the partition stage as a
// flow citizen: kill a run mid-rewrite, resume it from the checkpoint file,
// and require the final netlist to be bit-identical to an uninterrupted run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

#include "../test_helpers.hpp"
#include "aig/aig_io.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "egraph/snapshot.hpp"
#include "flow/pipeline.hpp"

namespace emorphic {
namespace {

FlowParams checkpoint_params() {
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 3;
  params.rewrite.max_enodes = 8000;
  // Checkpoint-resume identity only holds when no wall-clock limit can fire.
  params.rewrite.time_limit_s = 1e9;
  params.sa.num_threads = 2;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.verify = false;
  params.cec_params.conflict_limit = 50000;
  return params;
}

std::string temp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + "emorphic_" + name + ".emck";
  std::remove(path.c_str());
  return path;
}

/// Sets the shared cancel flag once `stop_after` rewrite iterations ran.
class CancelAfterIterations : public FlowObserver {
 public:
  CancelAfterIterations(std::atomic<bool>* flag, int stop_after)
      : flag_(flag), stop_after_(stop_after) {}
  void on_rewrite_iteration(const IterationStats&,
                            const FlowContext&) override {
    if (++iterations_ >= stop_after_) flag_->store(true);
  }

 private:
  std::atomic<bool>* flag_;
  int stop_after_;
  int iterations_ = 0;
};

TEST(RewriteCheckpoint, ResumeMatchesUninterruptedRun) {
  Aig input = make_adder(6);
  FlowParams params = checkpoint_params();

  // Reference: straight through, no checkpointing.
  FlowResult straight = Pipeline::emorphic().run(input, params);
  ASSERT_FALSE(straight.cancelled);
  std::string want = write_aiger(straight.final_aig);

  // Interrupted: kill after the first saturation iteration. The hook wrote
  // the iteration-1 snapshot before the cancel poll saw the flag.
  std::string path = temp_path("resume");
  params.checkpoint_path = path;
  std::atomic<bool> cancel{false};
  CancelAfterIterations observer(&cancel, 1);
  FlowContext ctx;
  ctx.params = params;
  ctx.input = input;
  ctx.observer = &observer;
  ctx.cancel = &cancel;
  FlowResult killed = Pipeline::emorphic().run(ctx);
  EXPECT_TRUE(killed.cancelled);
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "no checkpoint was written";
  }

  // Resumed: same circuit and params, fresh context, no cancellation. The
  // Rewrite stage restores the snapshot and runs only the remaining
  // iterations; everything downstream is a deterministic function of the
  // e-graph, so the final netlist must be byte-identical.
  FlowResult resumed = Pipeline::emorphic().run(input, params);
  ASSERT_FALSE(resumed.cancelled);
  EXPECT_EQ(write_aiger(resumed.final_aig), want);
  EXPECT_DOUBLE_EQ(resumed.qor.area, straight.qor.area);
  EXPECT_DOUBLE_EQ(resumed.qor.delay, straight.qor.delay);
  std::remove(path.c_str());
}

TEST(RewriteCheckpoint, CompletedCheckpointRestoresWithoutIterating) {
  Aig input = make_adder(5);
  FlowParams params = checkpoint_params();
  std::string path = temp_path("complete");
  params.checkpoint_path = path;

  FlowResult first = Pipeline::emorphic().run(input, params);
  ASSERT_FALSE(first.cancelled);
  // Second run restores the final snapshot and re-runs at most one
  // (no-op, if the first run saturated early) iteration — same answer.
  FlowResult second = Pipeline::emorphic().run(input, params);
  EXPECT_EQ(write_aiger(second.final_aig), write_aiger(first.final_aig));
  EXPECT_LE(second.rewrite_report.iterations.size(),
            first.rewrite_report.iterations.size());
  std::remove(path.c_str());
}

TEST(RewriteCheckpoint, FingerprintMismatchThrows) {
  std::string path = temp_path("fingerprint");
  FlowParams params = checkpoint_params();
  params.checkpoint_path = path;
  ASSERT_FALSE(Pipeline::emorphic().run(make_adder(6), params).cancelled);
  // A different circuit under the same checkpoint path must be refused.
  EXPECT_THROW(Pipeline::emorphic().run(make_arbiter(6), params),
               SnapshotError);
  // So must the same circuit under different saturation limits.
  FlowParams other = params;
  other.rewrite.max_enodes += 1;
  EXPECT_THROW(Pipeline::emorphic().run(make_adder(6), other), SnapshotError);
  std::remove(path.c_str());
}

// --- the partition stage inside the flow -------------------------------------

TEST(PartitionFlow, EmorphicPartitionPipelinePreservesFunction) {
  Aig input = make_multiplier(6);
  FlowParams params = checkpoint_params();
  params.partition = true;
  params.window_size = 40;
  params.verify = true;  // end-to-end Cec gate over the stitched circuit
  FlowResult result = Pipeline::emorphic(params).run(input, params);
  ASSERT_FALSE(result.cancelled);
  ASSERT_TRUE(result.partition_stats.completed);
  EXPECT_GT(result.partition_stats.num_windows, 1u);
  EXPECT_EQ(result.partition_stats.ands_before, input.num_ands());
  EXPECT_EQ(result.verify_status, CecStatus::kEquivalent);
  EXPECT_TRUE(testing::functionally_equal(input, result.final_aig));
}

TEST(PartitionFlow, PartitionOwnsTheCheckpointFile) {
  // With partition mode on, FlowParams::checkpoint_path is the window-level
  // "EMPC" checkpoint; the Rewrite-stage "EMCK" machinery must keep its
  // hands off even though the inner window flows run Rewrite stages.
  Aig input = make_adder(6);
  FlowParams params = checkpoint_params();
  params.partition = true;
  params.window_size = 20;
  std::string path = temp_path("empc_owner");
  params.checkpoint_path = path;
  FlowResult result = Pipeline::emorphic(params).run(input, params);
  ASSERT_TRUE(result.partition_stats.completed);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  char magic[4] = {};
  in.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "EMPC");
  std::remove(path.c_str());
}

TEST(PartitionFlow, CancelledPartitionReportsCancelled) {
  Aig input = make_adder(6);
  FlowParams params = checkpoint_params();
  params.partition = true;
  params.window_size = 20;
  std::atomic<bool> cancel{true};
  FlowContext ctx;
  ctx.params = params;
  ctx.input = input;
  ctx.cancel = &cancel;
  FlowResult result = Pipeline::emorphic(params).run(ctx);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.stop_reason, FlowStopReason::kCancelled);
  EXPECT_FALSE(result.partition_stats.completed);
}

}  // namespace
}  // namespace emorphic
