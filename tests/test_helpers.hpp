#pragma once
// Shared helpers for the test suite: random AIG generation, pattern
// evaluation over truth tables, functional fingerprints.

#include <vector>

#include "aig/aig.hpp"
#include "aig/sim.hpp"
#include "aig/truth.hpp"
#include "egraph/pattern.hpp"
#include "util/rng.hpp"

namespace emorphic::testing {

/// Random structurally-hashed AIG with `num_pis` inputs, `num_pos` outputs
/// and roughly `num_ands` AND nodes (combining random earlier literals).
inline Aig random_aig(unsigned num_pis, unsigned num_pos, unsigned num_ands,
                      Rng& rng) {
  Aig aig;
  std::vector<Lit> pool;
  for (unsigned i = 0; i < num_pis; ++i) pool.push_back(make_lit(aig.add_pi()));
  for (unsigned k = 0; k < num_ands; ++k) {
    Lit a = pool[rng.next_below(pool.size())];
    Lit b = pool[rng.next_below(pool.size())];
    if (rng.chance(0.5)) a = lit_not(a);
    if (rng.chance(0.5)) b = lit_not(b);
    Lit f = aig.make_and(a, b);
    pool.push_back(f);
  }
  for (unsigned i = 0; i < num_pos; ++i) {
    Lit po = pool[pool.size() - 1 - rng.next_below(std::min<std::size_t>(
                                        pool.size(), num_ands ? num_ands : 1))];
    if (rng.chance(0.3)) po = lit_not(po);
    aig.add_po(po);
  }
  return aig;
}

/// Evaluate a Pattern as a truth table over `n`-variable assignments where
/// pattern variable i is input variable i (requires num_vars <= n <= 6).
inline Tt eval_pattern(const Pattern& pattern, unsigned n) {
  std::vector<Tt> value(pattern.nodes().size(), 0);
  for (std::size_t i = 0; i < pattern.nodes().size(); ++i) {
    const Pattern::Node& node = pattern.nodes()[i];
    if (node.is_var) {
      value[i] = tt_var(node.var, n);
      continue;
    }
    switch (node.op) {
      case Op::kConst0:
        value[i] = 0;
        break;
      case Op::kConst1:
        value[i] = tt_mask(n);
        break;
      case Op::kNot:
        value[i] = tt_not(value[node.children[0]], n);
        break;
      case Op::kAnd:
        value[i] = value[node.children[0]] & value[node.children[1]];
        break;
      case Op::kOr:
        value[i] = value[node.children[0]] | value[node.children[1]];
        break;
      case Op::kXor:
        value[i] = value[node.children[0]] ^ value[node.children[1]];
        break;
      case Op::kVar:
        break;  // unreachable: pattern leaves are pattern vars
    }
  }
  return value[pattern.root()] & tt_mask(n);
}

/// Strong probabilistic equivalence fingerprint.
inline bool functionally_equal(const Aig& a, const Aig& b,
                               std::uint64_t seed = 42,
                               unsigned words = 32) {
  Rng rng(seed);
  return sim_probably_equal(a, b, rng, words);
}

}  // namespace emorphic::testing
