#include "aig/truth.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace emorphic {
namespace {

TEST(Truth, MasksAndVars) {
  EXPECT_EQ(tt_mask(0), 1ull);
  EXPECT_EQ(tt_mask(1), 3ull);
  EXPECT_EQ(tt_mask(2), 0xfull);
  EXPECT_EQ(tt_mask(6), ~0ull);
  EXPECT_EQ(tt_var(0, 2), 0xaull);
  EXPECT_EQ(tt_var(1, 2), 0xcull);
}

TEST(Truth, CofactorsAndDependence) {
  unsigned n = 3;
  Tt f = tt_var(0, n) & tt_var(1, n);  // a & b
  EXPECT_TRUE(tt_depends_on(f, 0, n));
  EXPECT_TRUE(tt_depends_on(f, 1, n));
  EXPECT_FALSE(tt_depends_on(f, 2, n));
  EXPECT_EQ(tt_cofactor1(f, 0, n), tt_var(1, n));
  EXPECT_EQ(tt_cofactor0(f, 0, n), 0ull);
}

TEST(Truth, CountOnes) {
  EXPECT_EQ(tt_count_ones(tt_var(0, 3), 3), 4u);
  EXPECT_EQ(tt_count_ones(tt_mask(3), 3), 8u);
  EXPECT_EQ(tt_count_ones(0, 3), 0u);
}

TEST(Truth, ExpandPreservesFunction) {
  // f(a, b) = a & !b over 2 vars, re-expressed over 4 vars at slots 1, 3.
  Tt f = tt_var(0, 2) & tt_not(tt_var(1, 2), 2);
  std::array<std::uint8_t, 6> pos{{1, 3, 0, 0, 0, 0}};
  Tt g = tt_expand(f, 2, 4, pos);
  EXPECT_EQ(g, tt_var(1, 4) & tt_not(tt_var(3, 4), 4));
}

TEST(Truth, ToString) {
  EXPECT_EQ(tt_to_string(0x8ull, 2), "1000");
  EXPECT_EQ(tt_to_string(tt_var(0, 1), 1), "10");
}

TEST(Npn, IdentityTransform) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Tt t = rng.next() & tt_mask(4);
    EXPECT_EQ(npn_apply(t, NpnTransform::identity()), t);
  }
}

TEST(Npn, InverseRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Tt t = rng.next() & tt_mask(4);
    NpnTransform tr;
    tr.perm = {1, 3, 0, 2};
    tr.input_phase = static_cast<std::uint8_t>(rng.next_below(16));
    tr.output_phase = rng.chance(0.5);
    Tt applied = npn_apply(t, tr);
    EXPECT_EQ(npn_apply(applied, npn_inverse(tr)), t);
  }
}

TEST(Npn, ComposeMatchesSequentialApplication) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Tt t = rng.next() & tt_mask(4);
    NpnTransform t1, t2;
    t1.perm = {2, 0, 3, 1};
    t1.input_phase = static_cast<std::uint8_t>(rng.next_below(16));
    t1.output_phase = rng.chance(0.5);
    t2.perm = {3, 1, 0, 2};
    t2.input_phase = static_cast<std::uint8_t>(rng.next_below(16));
    t2.output_phase = rng.chance(0.5);
    Tt sequential = npn_apply(npn_apply(t, t1), t2);
    Tt composed = npn_apply(t, npn_compose(t2, t1));
    EXPECT_EQ(sequential, composed);
  }
}

TEST(Npn, CanonReconstruction) {
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    Tt t = rng.next() & tt_mask(4);
    NpnTransform tr;
    Tt canon = npn_canon(t, &tr);
    EXPECT_EQ(npn_apply(t, tr), canon);
  }
}

TEST(Npn, NpnEquivalentFunctionsShareCanon) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    Tt t = rng.next() & tt_mask(4);
    NpnTransform tr;
    tr.perm = {3, 2, 1, 0};
    tr.input_phase = static_cast<std::uint8_t>(rng.next_below(16));
    tr.output_phase = rng.chance(0.5);
    Tt other = npn_apply(t, tr);
    EXPECT_EQ(npn_canon(t), npn_canon(other));
  }
}

TEST(Npn, TwoInputNpnClasses) {
  // All non-degenerate 2-input functions fall into two NPN classes:
  // AND-like and XOR-like.
  Tt a = tt_var(0, 4), b = tt_var(1, 4);
  Tt and2 = a & b;
  Tt nand2 = ~(a & b) & tt_mask(4);
  Tt nor2 = ~(a | b) & tt_mask(4);
  Tt andn = a & ~b;
  EXPECT_EQ(npn_canon(and2), npn_canon(nand2));
  EXPECT_EQ(npn_canon(and2), npn_canon(nor2));
  EXPECT_EQ(npn_canon(and2), npn_canon(andn & tt_mask(4)));
  Tt xor2 = (a ^ b) & tt_mask(4);
  Tt xnor2 = ~(a ^ b) & tt_mask(4);
  EXPECT_EQ(npn_canon(xor2), npn_canon(xnor2));
  EXPECT_NE(npn_canon(and2), npn_canon(xor2));
}

// Parameterized sweep: canon is a true invariant for every single-swap
// permutation applied to a set of structured functions.
class NpnSweep : public ::testing::TestWithParam<int> {};

TEST_P(NpnSweep, CanonInvariantUnderRandomTransforms) {
  Rng rng(1000 + GetParam());
  Tt t = rng.next() & tt_mask(4);
  Tt canon = npn_canon(t);
  for (int k = 0; k < 24; ++k) {
    NpnTransform tr;
    // random permutation via Fisher-Yates
    std::array<std::uint8_t, 4> perm{{0, 1, 2, 3}};
    for (int i = 3; i > 0; --i) {
      std::swap(perm[i], perm[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
    }
    tr.perm = perm;
    tr.input_phase = static_cast<std::uint8_t>(rng.next_below(16));
    tr.output_phase = rng.chance(0.5);
    EXPECT_EQ(npn_canon(npn_apply(t, tr)), canon);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFunctions, NpnSweep, ::testing::Range(0, 20));

}  // namespace
}  // namespace emorphic
