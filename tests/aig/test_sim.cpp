#include "aig/sim.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace emorphic {
namespace {

TEST(Sim, AndOfWords) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit f = aig.make_and(a, lit_not(b));
  aig.add_po(f);
  auto value = simulate_words(aig, {0b1100, 0b1010});
  EXPECT_EQ(value[lit_var(f)], 0b0100ull);
}

TEST(Sim, ExhaustiveTtMatchesConstruction) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  aig.add_po(aig.make_or(aig.make_and(a, b), lit_not(c)));
  Tt expect = ((tt_var(0, 3) & tt_var(1, 3)) | tt_not(tt_var(2, 3), 3)) &
              tt_mask(3);
  EXPECT_EQ(exhaustive_tt(aig, 0), expect);
}

TEST(Sim, EqualCircuitsCompareEqual) {
  Rng rng(3);
  Aig aig = testing::random_aig(5, 3, 30, rng);
  Rng check(99);
  EXPECT_TRUE(sim_probably_equal(aig, aig, check));
  EXPECT_TRUE(sim_probably_equal(aig, aig.cleanup(), check));
}

TEST(Sim, DifferentCircuitsCompareUnequal) {
  Aig a;
  Lit x = make_lit(a.add_pi());
  Lit y = make_lit(a.add_pi());
  a.add_po(a.make_and(x, y));
  Aig b;
  Lit u = make_lit(b.add_pi());
  Lit v = make_lit(b.add_pi());
  b.add_po(b.make_or(u, v));
  Rng rng(4);
  EXPECT_FALSE(sim_probably_equal(a, b, rng));
}

TEST(Sim, InterfaceMismatchIsUnequal) {
  Aig a;
  a.add_pi();
  a.add_po(kLitTrue);
  Aig b;
  b.add_pi();
  b.add_pi();
  b.add_po(kLitTrue);
  Rng rng(5);
  EXPECT_FALSE(sim_probably_equal(a, b, rng));
}

TEST(Sim, PoSignatureComplementHandling) {
  Aig a;
  Lit x = make_lit(a.add_pi());
  a.add_po(x);
  a.add_po(lit_not(x));
  Rng rng(6);
  auto sig = po_signature(a, rng, 4);
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(sig[0 * 4 + w], ~sig[1 * 4 + w]);
  }
}

TEST(Sim, MultiWordMatchesPerWordSimulation) {
  Rng rng(7);
  Aig aig = testing::random_aig(8, 4, 60, rng);
  const unsigned w = 5;
  std::vector<std::uint64_t> pi_words(
      static_cast<std::size_t>(aig.num_pis()) * w);
  for (auto& word : pi_words) word = rng.next();
  auto multi = simulate_words_multi(aig, pi_words, w);
  for (unsigned k = 0; k < w; ++k) {
    std::vector<std::uint64_t> column(aig.num_pis());
    for (std::uint32_t pi = 0; pi < aig.num_pis(); ++pi) {
      column[pi] = pi_words[static_cast<std::size_t>(pi) * w + k];
    }
    auto single = simulate_words(aig, column);
    for (Var v = 0; v < aig.num_nodes(); ++v) {
      ASSERT_EQ(multi[static_cast<std::size_t>(v) * w + k], single[v]);
    }
  }
}

TEST(Sim, MultiWordParallelEqualsSerial) {
  Rng rng(8);
  Aig aig = testing::random_aig(10, 4, 120, rng);
  const unsigned w = 13;
  std::vector<std::uint64_t> pi_words(
      static_cast<std::size_t>(aig.num_pis()) * w);
  for (auto& word : pi_words) word = rng.next();
  auto serial = simulate_words_multi(aig, pi_words, w);
  ThreadPool pool(4);
  auto parallel = simulate_words_multi(aig, pi_words, w, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(Sim, ExpandPatternReplaysExactAssignmentInBitZero) {
  Rng rng(9);
  std::vector<bool> pattern{true, false, true, true, false};
  auto words = expand_pattern(pattern, rng, /*flip_p=*/0.5);
  ASSERT_EQ(words.size(), pattern.size());
  for (std::size_t pi = 0; pi < pattern.size(); ++pi) {
    EXPECT_EQ((words[pi] & 1) != 0, pattern[pi]);
  }
  // flip_p = 0 reproduces the assignment in every bit.
  auto pure = expand_pattern(pattern, rng, /*flip_p=*/0.0);
  for (std::size_t pi = 0; pi < pattern.size(); ++pi) {
    EXPECT_EQ(pure[pi], pattern[pi] ? ~0ull : 0ull);
  }
}

TEST(Sim, CounterexampleReplaySplitsSignatures) {
  // f = a & b and g = a agree on every pattern with b = 1 — simulate with
  // such patterns and their signatures collide. Replaying the refuting
  // assignment {a=1, b=0} (what a SAT counterexample hands back) must split
  // them: bit 0 of the replay word distinguishes f from g by construction.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit f = aig.make_and(a, b);
  aig.add_po(f);
  aig.add_po(a);

  // Patterns where b is all-ones: f and g are indistinguishable.
  std::vector<std::uint64_t> collide{0b0110ull, ~0ull};
  auto before = simulate_words(aig, collide);
  ASSERT_EQ(before[lit_var(f)], before[lit_var(a)]);

  // The counterexample, amplified with random neighbors.
  Rng rng(10);
  std::vector<bool> cex{true, false};
  auto replay = expand_pattern(cex, rng);
  auto after = simulate_words(aig, replay);
  EXPECT_NE(after[lit_var(f)], after[lit_var(a)]);
  EXPECT_NE(after[lit_var(f)] & 1, after[lit_var(a)] & 1)
      << "bit 0 must replay the exact refuting assignment";
}

}  // namespace
}  // namespace emorphic
