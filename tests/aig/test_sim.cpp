#include "aig/sim.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace emorphic {
namespace {

TEST(Sim, AndOfWords) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit f = aig.make_and(a, lit_not(b));
  aig.add_po(f);
  auto value = simulate_words(aig, {0b1100, 0b1010});
  EXPECT_EQ(value[lit_var(f)], 0b0100ull);
}

TEST(Sim, ExhaustiveTtMatchesConstruction) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  aig.add_po(aig.make_or(aig.make_and(a, b), lit_not(c)));
  Tt expect = ((tt_var(0, 3) & tt_var(1, 3)) | tt_not(tt_var(2, 3), 3)) &
              tt_mask(3);
  EXPECT_EQ(exhaustive_tt(aig, 0), expect);
}

TEST(Sim, EqualCircuitsCompareEqual) {
  Rng rng(3);
  Aig aig = testing::random_aig(5, 3, 30, rng);
  Rng check(99);
  EXPECT_TRUE(sim_probably_equal(aig, aig, check));
  EXPECT_TRUE(sim_probably_equal(aig, aig.cleanup(), check));
}

TEST(Sim, DifferentCircuitsCompareUnequal) {
  Aig a;
  Lit x = make_lit(a.add_pi());
  Lit y = make_lit(a.add_pi());
  a.add_po(a.make_and(x, y));
  Aig b;
  Lit u = make_lit(b.add_pi());
  Lit v = make_lit(b.add_pi());
  b.add_po(b.make_or(u, v));
  Rng rng(4);
  EXPECT_FALSE(sim_probably_equal(a, b, rng));
}

TEST(Sim, InterfaceMismatchIsUnequal) {
  Aig a;
  a.add_pi();
  a.add_po(kLitTrue);
  Aig b;
  b.add_pi();
  b.add_pi();
  b.add_po(kLitTrue);
  Rng rng(5);
  EXPECT_FALSE(sim_probably_equal(a, b, rng));
}

TEST(Sim, PoSignatureComplementHandling) {
  Aig a;
  Lit x = make_lit(a.add_pi());
  a.add_po(x);
  a.add_po(lit_not(x));
  Rng rng(6);
  auto sig = po_signature(a, rng, 4);
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(sig[0 * 4 + w], ~sig[1 * 4 + w]);
  }
}

}  // namespace
}  // namespace emorphic
