// Choice-annotated AIGs (aig/choice.hpp) and choice-aware cut enumeration
// (aig/cut.hpp): ring bookkeeping, the member-before-representative
// evaluation schedule (including cycle dropping), and the merging of
// phase-normalized member cuts into the representative's cut list.

#include "aig/choice.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_helpers.hpp"
#include "aig/cut.hpp"

namespace emorphic {
namespace {

/// f = (a & b) & c twice: the representative association and, built later,
/// the a & (b & c) alternative whose cone carries larger indices.
struct TwoVariants {
  Aig aig;
  Var a, b, c;
  Var rep;     // (a & b) & c
  Var alt;     // a & (b & c)
  Var n_bc;    // the alternative's inner node
};

TwoVariants build_two_variants() {
  TwoVariants t;
  t.a = t.aig.add_pi("a");
  t.b = t.aig.add_pi("b");
  t.c = t.aig.add_pi("c");
  Lit ab = t.aig.make_and(make_lit(t.a), make_lit(t.b));
  Lit rep = t.aig.make_and(ab, make_lit(t.c));
  t.rep = lit_var(rep);
  Lit bc = t.aig.make_and(make_lit(t.b), make_lit(t.c));
  t.n_bc = lit_var(bc);
  Lit alt = t.aig.make_and(make_lit(t.a), bc);
  t.alt = lit_var(alt);
  t.aig.add_po(rep, "f");
  return t;
}

TEST(AigChoices, RingBookkeeping) {
  TwoVariants t = build_two_variants();
  AigChoices choices(t.aig.num_nodes());
  EXPECT_EQ(choices.num_rings(), 0u);
  EXPECT_FALSE(choices.is_alt(t.alt));

  choices.add_member(t.rep, t.alt, /*phase=*/false);
  EXPECT_TRUE(choices.is_alt(t.alt));
  EXPECT_EQ(choices.repr(t.alt), t.rep);
  EXPECT_EQ(choices.repr_lit(t.alt), make_lit(t.rep));
  EXPECT_TRUE(choices.has_ring(t.rep));
  ASSERT_EQ(choices.ring(t.rep).size(), 1u);
  EXPECT_EQ(choices.ring(t.rep)[0], t.alt);
  EXPECT_EQ(choices.num_alts(), 1u);

  choices.remove_member(t.rep, t.alt);
  EXPECT_FALSE(choices.is_alt(t.alt));
  EXPECT_FALSE(choices.has_ring(t.rep));
}

TEST(AigChoices, ScheduleOrdersMembersBeforeRepresentative) {
  TwoVariants t = build_two_variants();
  AigChoices choices(t.aig.num_nodes());
  choices.add_member(t.rep, t.alt, false);
  EXPECT_EQ(choices.finalize(t.aig), 0u);
  EXPECT_EQ(choices.check(t.aig), "");

  // The alternative (and its whole cone) carries larger node indices than
  // the representative, yet must be scheduled before it.
  ASSERT_GT(t.alt, t.rep);
  const std::vector<Var>& order = choices.order();
  ASSERT_EQ(order.size(), t.aig.num_nodes());
  std::vector<std::uint32_t> pos(t.aig.num_nodes());
  for (std::uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[t.alt], pos[t.rep]);
  EXPECT_LT(pos[t.n_bc], pos[t.alt]);
}

TEST(AigChoices, FinalizeDropsCyclicMembers) {
  // A "member" whose cone passes through its own representative closes a
  // cycle with the ring edge; finalize must drop it and still produce a
  // complete schedule.
  Aig aig;
  Lit a = make_lit(aig.add_pi("a"));
  Lit b = make_lit(aig.add_pi("b"));
  Lit c = make_lit(aig.add_pi("c"));
  Lit rep = aig.make_and(a, b);
  Lit alt = aig.make_and(rep, c);  // references its own representative
  aig.add_po(rep);
  AigChoices choices(aig.num_nodes());
  choices.add_member(lit_var(rep), lit_var(alt), false);
  EXPECT_EQ(choices.finalize(aig), 1u);
  EXPECT_FALSE(choices.has_ring(lit_var(rep)));
  EXPECT_EQ(choices.check(aig), "");
  EXPECT_EQ(choices.order().size(), aig.num_nodes());
}

TEST(AigChoices, CheckRejectsIndexOrderWhenRingNeedsDeferral) {
  TwoVariants t = build_two_variants();
  AigChoices identity(t.aig.num_nodes());
  identity.finalize(t.aig);
  EXPECT_EQ(identity.check(t.aig), "");
  // Same schedule, but with a ring whose member has a larger index than
  // the representative: plain index order violates the ring edge.
  identity.add_member(t.rep, t.alt, false);
  EXPECT_NE(identity.check(t.aig), "");
}

TEST(ChoiceCut, MergesMemberCutsIntoRepresentative) {
  TwoVariants t = build_two_variants();
  AigChoices choices(t.aig.num_nodes());
  choices.add_member(t.rep, t.alt, false);
  ASSERT_EQ(choices.finalize(t.aig), 0u);

  CutManager cuts(t.aig, choices, CutParams{2, 8});
  // With K = 2 the representative's own cuts can only see {n_ab, c}; the
  // {a, n_bc} decomposition exists solely in the alternative's cone.
  bool found_alt_cut = false;
  for (const Cut& cut : cuts.cuts(t.rep)) {
    if (cut.size == 2 && cut.leaves[0] == t.a && cut.leaves[1] == t.n_bc) {
      found_alt_cut = true;
      EXPECT_EQ(cut.tt, tt_var(0, 2) & tt_var(1, 2));
    }
  }
  EXPECT_TRUE(found_alt_cut);
  // The contract survives merging: the trivial cut stays last.
  EXPECT_TRUE(cuts.cuts(t.rep).back().is_trivial(t.rep));

  // A plain CutManager must not see the alternative's decomposition.
  CutManager plain(t.aig, CutParams{2, 8});
  for (const Cut& cut : plain.cuts(t.rep)) {
    EXPECT_FALSE(cut.size == 2 && cut.leaves[0] == t.a &&
                 cut.leaves[1] == t.n_bc);
  }
}

TEST(ChoiceCut, ComplementedMemberCutsAreNormalized) {
  // Synthetic phase check (the functions are deliberately unrelated — the
  // cut machinery trusts the annotation): a phase-1 ring member's cut
  // function must arrive complemented in the representative's list, so
  // every cut there expresses the representative's positive polarity.
  Aig aig;
  Var a = aig.add_pi("a");
  Var b = aig.add_pi("b");
  Var c = aig.add_pi("c");
  Lit rep = aig.make_and(make_lit(a), make_lit(c));
  Lit alt = aig.make_and(make_lit(a), make_lit(b));
  aig.add_po(rep);
  AigChoices choices(aig.num_nodes());
  choices.add_member(lit_var(rep), lit_var(alt), /*phase=*/true);
  ASSERT_EQ(choices.finalize(aig), 0u);

  CutManager cuts(aig, choices, CutParams{2, 8});
  bool found = false;
  for (const Cut& cut : cuts.cuts(lit_var(rep))) {
    if (cut.size == 2 && cut.leaves[0] == a && cut.leaves[1] == b) {
      found = true;
      EXPECT_EQ(cut.tt, tt_not(tt_var(0, 2) & tt_var(1, 2), 2));
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChoiceCut, TrivialAnnotationMatchesPlainEnumeration) {
  Rng rng(77);
  Aig aig = testing::random_aig(6, 3, 60, rng);
  ChoiceAig caig = ChoiceAig::from_plain(aig);
  CutManager plain(aig, CutParams{4, 8});
  CutManager with_choices(caig.aig, caig.choices, CutParams{4, 8});
  for (Var v = 0; v < aig.num_nodes(); ++v) {
    const auto& p = plain.cuts(v);
    const auto& q = with_choices.cuts(v);
    ASSERT_EQ(p.size(), q.size()) << "node " << v;
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(p[i].size, q[i].size);
      EXPECT_EQ(p[i].tt, q[i].tt);
      EXPECT_TRUE(std::equal(p[i].leaves.begin(),
                             p[i].leaves.begin() + p[i].size,
                             q[i].leaves.begin()));
    }
  }
}

}  // namespace
}  // namespace emorphic
