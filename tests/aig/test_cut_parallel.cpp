// Determinism battery for wave-parallel cut enumeration (aig/cut.hpp):
// the parallel pass must be *bit-identical* to the serial pass — same
// cuts, same leaves, same truth tables, same order — for every thread
// count, cut size, and input shape. The property holds by construction
// (each node's cut list is a pure function of earlier-wave slots, and
// every node writes only its own slot); these tests hold it to the
// letter across:
//   * thread counts {1, 2, 4, 8}, via CutParams::num_threads and via an
//     external shared ThreadPool;
//   * cut sizes {2..6};
//   * plain AIGs (arith benchgen + randomized circuits over seeds) and
//     choice-annotated AIGs (a hand-built ring and real rings exported
//     from a rewritten e-graph);
//   * arena reuse across repeated parallel enumerations.

#include "aig/cut.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "aig/choice.hpp"
#include "benchgen/arith.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/choice_export.hpp"
#include "util/thread_pool.hpp"

namespace emorphic {
namespace {

/// Strict equality of two enumerations over all `n` nodes: list lengths,
/// and per-cut (size, leaves, tt) in order. Returns the first mismatch as
/// text ("" = identical) so a failure names the node.
std::string cuts_diff(const CutManager& lhs, const CutManager& rhs,
                      std::size_t n) {
  for (Var v = 0; v < n; ++v) {
    const auto& a = lhs.cuts(v);
    const auto& b = rhs.cuts(v);
    if (a.size() != b.size()) {
      return "node " + std::to_string(v) + ": " + std::to_string(a.size()) +
             " vs " + std::to_string(b.size()) + " cuts";
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].size != b[i].size || a[i].tt != b[i].tt ||
          a[i].leaves != b[i].leaves) {
        return "node " + std::to_string(v) + ": cut " + std::to_string(i) +
               " differs";
      }
    }
  }
  return "";
}

/// f = (a & b) & c with the a & (b & c) alternative ringed onto it.
struct ChoiceFixture {
  Aig aig;
  AigChoices choices{0};
};

ChoiceFixture build_choice_fixture() {
  ChoiceFixture f;
  Var a = f.aig.add_pi("a");
  Var b = f.aig.add_pi("b");
  Var c = f.aig.add_pi("c");
  Lit ab = f.aig.make_and(make_lit(a), make_lit(b));
  Lit rep = f.aig.make_and(ab, make_lit(c));
  Lit bc = f.aig.make_and(make_lit(b), make_lit(c));
  Lit alt = f.aig.make_and(make_lit(a), bc);
  f.aig.add_po(rep, "f");
  f.choices = AigChoices(f.aig.num_nodes());
  f.choices.add_member(lit_var(rep), lit_var(alt), false);
  EXPECT_EQ(f.choices.finalize(f.aig), 0u);
  EXPECT_EQ(f.choices.check(f.aig), "");
  return f;
}

/// Real rings: rewrite the AIG's e-graph and export with SAT-verified
/// alternatives (flow/choice_export.hpp).
ChoiceAig exported_choices(const Aig& aig) {
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerParams params;
  params.max_iterations = 3;
  params.max_enodes = 20000;
  params.max_matches_per_rule = 2000;
  run_rewriting(ce.egraph, make_logic_rules(), params);
  Extraction solution = greedy_extract(ce.egraph, CostModel{CostKind::kDepth});
  ChoiceAig caig = egraph_to_choice_aig(ce, solution, {}, nullptr);
  EXPECT_EQ(caig.choices.check(caig.aig), "");
  return caig;
}

const unsigned kThreadCounts[] = {1, 2, 4, 8};

TEST(CutParallel, PlainBitIdenticalAcrossThreadsAndCutSizes) {
  Aig circuits[] = {make_adder(6), make_multiplier(4)};
  for (const Aig& aig : circuits) {
    for (unsigned k = 2; k <= kMaxCutSize; ++k) {
      CutManager serial(aig, CutParams{k, 8});
      for (unsigned threads : kThreadCounts) {
        CutManager parallel(aig, CutParams{k, 8, threads});
        EXPECT_EQ(cuts_diff(serial, parallel, aig.num_nodes()), "")
            << "k=" << k << " threads=" << threads;
      }
    }
  }
}

TEST(CutParallel, RandomCircuitsOverSeeds) {
  for (std::uint64_t seed : {3u, 17u, 91u, 222u}) {
    Rng rng(seed);
    Aig aig = testing::random_aig(8, 4, 150, rng);
    for (unsigned k : {2u, 4u, 6u}) {
      CutManager serial(aig, CutParams{k, 8});
      for (unsigned threads : kThreadCounts) {
        CutManager parallel(aig, CutParams{k, 8, threads});
        EXPECT_EQ(cuts_diff(serial, parallel, aig.num_nodes()), "")
            << "seed=" << seed << " k=" << k << " threads=" << threads;
      }
    }
  }
}

TEST(CutParallel, ChoiceFixtureBitIdentical) {
  ChoiceFixture f = build_choice_fixture();
  for (unsigned k = 2; k <= kMaxCutSize; ++k) {
    CutManager serial(f.aig, f.choices, CutParams{k, 8});
    for (unsigned threads : kThreadCounts) {
      CutManager parallel(f.aig, f.choices, CutParams{k, 8, threads});
      EXPECT_EQ(cuts_diff(serial, parallel, f.aig.num_nodes()), "")
          << "k=" << k << " threads=" << threads;
    }
  }
}

TEST(CutParallel, ExportedRingsBitIdentical) {
  ChoiceAig caig = exported_choices(make_adder(6));
  ASSERT_GT(caig.choices.num_rings(), 0u)
      << "fixture must exercise real rings";
  for (unsigned k : {4u, 6u}) {
    CutManager serial(caig.aig, caig.choices, CutParams{k, 8});
    for (unsigned threads : kThreadCounts) {
      CutManager parallel(caig.aig, caig.choices, CutParams{k, 8, threads});
      EXPECT_EQ(cuts_diff(serial, parallel, caig.aig.num_nodes()), "")
          << "k=" << k << " threads=" << threads;
    }
  }
}

TEST(CutParallel, ExternalPoolMatchesOwnPool) {
  // A shared pool must behave exactly like a per-call pool of the same
  // size — and its size wins over params.num_threads.
  Rng rng(12);
  Aig aig = testing::random_aig(7, 3, 120, rng);
  CutManager serial(aig, CutParams{6, 8});
  ThreadPool pool(4);
  CutParams params{6, 8};
  params.num_threads = 1;  // ignored: the external pool's size wins
  CutManager parallel(aig, params, nullptr, &pool);
  EXPECT_EQ(cuts_diff(serial, parallel, aig.num_nodes()), "");

  ChoiceAig caig = exported_choices(make_adder(5));
  CutManager cserial(caig.aig, caig.choices, CutParams{6, 8});
  CutManager cparallel(caig.aig, caig.choices, params, nullptr, &pool);
  EXPECT_EQ(cuts_diff(cserial, cparallel, caig.aig.num_nodes()), "");
}

TEST(CutParallel, ArenaReuseAcrossEnumerations) {
  // A caller-owned arena reused across parallel enumerations (the SA
  // hot-path pattern) must not leak one circuit's schedule or scratch
  // into the next circuit's cuts.
  CutArena arena;
  ThreadPool pool(4);
  Rng rng(77);
  for (int round = 0; round < 4; ++round) {
    Aig aig = testing::random_aig(6 + round, 3, 60 + 30 * round, rng);
    CutManager serial(aig, CutParams{5, 8});
    CutManager parallel(aig, CutParams{5, 8}, &arena, &pool);
    EXPECT_EQ(cuts_diff(serial, parallel, aig.num_nodes()), "")
        << "round " << round;
  }
}

TEST(CutParallel, NumThreadsIsNotAResultKnob) {
  // Oversubscription far beyond the node count must still be identical
  // (degenerate slices, empty chunks).
  Aig aig = make_adder(3);
  CutManager serial(aig, CutParams{4, 8});
  CutManager wide(aig, CutParams{4, 8, 32});
  EXPECT_EQ(cuts_diff(serial, wide, aig.num_nodes()), "");
}

}  // namespace
}  // namespace emorphic
