#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "aig/sim.hpp"

namespace emorphic {
namespace {

TEST(Aig, LiteralHelpers) {
  EXPECT_EQ(make_lit(3), 6u);
  EXPECT_EQ(make_lit(3, true), 7u);
  EXPECT_EQ(lit_var(7u), 3u);
  EXPECT_TRUE(lit_is_compl(7u));
  EXPECT_FALSE(lit_is_compl(6u));
  EXPECT_EQ(lit_not(6u), 7u);
  EXPECT_EQ(lit_regular(7u), 6u);
  EXPECT_EQ(lit_notcond(6u, true), 7u);
  EXPECT_EQ(lit_notcond(6u, false), 6u);
}

TEST(Aig, ConstantPropagation) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  EXPECT_EQ(aig.make_and(a, kLitFalse), kLitFalse);
  EXPECT_EQ(aig.make_and(kLitFalse, a), kLitFalse);
  EXPECT_EQ(aig.make_and(a, kLitTrue), a);
  EXPECT_EQ(aig.make_and(a, a), a);
  EXPECT_EQ(aig.make_and(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(aig.num_ands(), 0u);
}

TEST(Aig, StructuralHashing) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit f1 = aig.make_and(a, b);
  Lit f2 = aig.make_and(b, a);  // commuted operands hash identically
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(aig.num_ands(), 1u);
  Lit f3 = aig.make_and(lit_not(a), b);
  EXPECT_NE(f1, f3);
  EXPECT_EQ(aig.num_ands(), 2u);
}

TEST(Aig, DerivedConnectivesAreCorrect) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit s = make_lit(aig.add_pi());
  aig.add_po(aig.make_or(a, b));
  aig.add_po(aig.make_xor(a, b));
  aig.add_po(aig.make_mux(s, a, b));
  aig.add_po(aig.make_maj(a, b, s));
  // exhaustive over 3 inputs
  EXPECT_EQ(exhaustive_tt(aig, 0) & tt_mask(2), (tt_var(0, 2) | tt_var(1, 2)));
  EXPECT_EQ(exhaustive_tt(aig, 1) & tt_mask(2), (tt_var(0, 2) ^ tt_var(1, 2)));
  Tt va = tt_var(0, 3), vb = tt_var(1, 3), vs = tt_var(2, 3);
  EXPECT_EQ(exhaustive_tt(aig, 2), ((vs & va) | (~vs & vb)) & tt_mask(3));
  EXPECT_EQ(exhaustive_tt(aig, 3), ((va & vb) | (va & vs) | (vb & vs)));
}

TEST(Aig, LevelsAndDepth) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  Lit ab = aig.make_and(a, b);
  Lit abc = aig.make_and(ab, c);
  aig.add_po(abc);
  auto levels = aig.levels();
  EXPECT_EQ(levels[lit_var(ab)], 1u);
  EXPECT_EQ(levels[lit_var(abc)], 2u);
  EXPECT_EQ(aig.num_levels(), 2u);
}

TEST(Aig, BalancedConjunctionIsLogDepth) {
  Aig aig;
  std::vector<Lit> lits;
  for (int i = 0; i < 16; ++i) lits.push_back(make_lit(aig.add_pi()));
  aig.add_po(aig.make_and_n(lits));
  EXPECT_EQ(aig.num_levels(), 4u);
  EXPECT_EQ(aig.num_ands(), 15u);
}

TEST(Aig, MakeAndNEmptyIsTrue) {
  Aig aig;
  EXPECT_EQ(aig.make_and_n({}), kLitTrue);
  EXPECT_EQ(aig.make_or_n({}), kLitFalse);
}

TEST(Aig, FanoutCounts) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit ab = aig.make_and(a, b);
  Lit f = aig.make_and(ab, lit_not(a));
  aig.add_po(f);
  aig.add_po(ab);
  auto fanout = aig.fanout_counts();
  EXPECT_EQ(fanout[lit_var(a)], 2u);   // ab and f
  EXPECT_EQ(fanout[lit_var(ab)], 2u);  // f and PO
  EXPECT_EQ(fanout[lit_var(f)], 1u);   // PO
}

TEST(Aig, CleanupDropsDeadNodes) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit used = aig.make_and(a, b);
  aig.make_and(lit_not(a), lit_not(b));  // dead
  aig.add_po(used);
  EXPECT_EQ(aig.num_ands(), 2u);
  Aig cleaned = aig.cleanup();
  EXPECT_EQ(cleaned.num_ands(), 1u);
  EXPECT_TRUE(testing::functionally_equal(aig, cleaned));
}

TEST(Aig, CleanupPreservesFunctionRandom) {
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    Aig aig = testing::random_aig(6, 4, 60, rng);
    Aig cleaned = aig.cleanup();
    EXPECT_TRUE(testing::functionally_equal(aig, cleaned));
    EXPECT_LE(cleaned.num_ands(), aig.num_ands());
  }
}

TEST(Aig, NamesPreserved) {
  Aig aig;
  aig.add_pi("alpha");
  aig.add_po(kLitTrue, "omega");
  EXPECT_EQ(aig.pi_name(0), "alpha");
  EXPECT_EQ(aig.po_name(0), "omega");
  Aig like = Aig::like(aig);
  EXPECT_EQ(like.pi_name(0), "alpha");
  EXPECT_EQ(like.po_name(0), "omega");
}

TEST(Aig, ConstantPoSurvivesCleanup) {
  Aig aig;
  aig.add_pi();
  aig.add_po(kLitTrue, "one");
  aig.add_po(kLitFalse, "zero");
  Aig cleaned = aig.cleanup();
  EXPECT_EQ(cleaned.po(0), kLitTrue);
  EXPECT_EQ(cleaned.po(1), kLitFalse);
}

}  // namespace
}  // namespace emorphic
