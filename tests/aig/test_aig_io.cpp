#include "aig/aig_io.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace emorphic {
namespace {

TEST(AigIo, EquationRoundTrip) {
  Rng rng(21);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(6, 4, 50, rng);
    std::string text = write_equations(aig);
    Aig back = read_equations(text);
    EXPECT_EQ(back.num_pis(), aig.num_pis());
    EXPECT_EQ(back.num_pos(), aig.num_pos());
    EXPECT_TRUE(testing::functionally_equal(aig, back));
  }
}

TEST(AigIo, EquationParserOperators) {
  const std::string text =
      "INORDER = a b c;\n"
      "OUTORDER = f g h;\n"
      "f = a & b | !c;\n"
      "g = (a | b) & (a ^ c);\n"
      "h = 1 & a | 0;\n";
  Aig aig = read_equations(text);
  EXPECT_EQ(aig.num_pis(), 3u);
  EXPECT_EQ(aig.num_pos(), 3u);
  Tt a = tt_var(0, 3), b = tt_var(1, 3), c = tt_var(2, 3);
  EXPECT_EQ(exhaustive_tt(aig, 0), ((a & b) | (~c & tt_mask(3))) & tt_mask(3));
  EXPECT_EQ(exhaustive_tt(aig, 1), ((a | b) & (a ^ c)) & tt_mask(3));
  EXPECT_EQ(exhaustive_tt(aig, 2), a);
}

TEST(AigIo, EquationParserComments) {
  const std::string text =
      "# a comment\nINORDER = x;\nOUTORDER = y;\n# more\ny = !x;\n";
  Aig aig = read_equations(text);
  EXPECT_EQ(exhaustive_tt(aig, 0), tt_not(tt_var(0, 1), 1));
}

TEST(AigIo, EquationErrors) {
  EXPECT_THROW(read_equations("INORDER = a;\nOUTORDER = f;\nf = b;\n"),
               std::runtime_error);  // undefined signal
  EXPECT_THROW(read_equations("INORDER = a;\nOUTORDER = f;\n"),
               std::runtime_error);  // undefined output
  EXPECT_THROW(read_equations("INORDER = a\n"), std::runtime_error);
}

TEST(AigIo, AigerRoundTrip) {
  Rng rng(23);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(5, 3, 40, rng);
    std::string text = write_aiger(aig);
    Aig back = read_aiger(text);
    EXPECT_EQ(back.num_pis(), aig.num_pis());
    EXPECT_EQ(back.num_pos(), aig.num_pos());
    EXPECT_TRUE(testing::functionally_equal(aig, back));
  }
}

TEST(AigIo, AigerHeaderValidation) {
  EXPECT_THROW(read_aiger("aig 1 1 0 0 0\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 2 1 1 0 0\n2\n"), std::runtime_error);  // latch
}

// --- server-hardening negative suite ----------------------------------------
// The synthesis daemon feeds client-supplied text straight into read_aiger;
// every malformed shape below must throw std::runtime_error (never assert,
// never read out of bounds, never allocate off attacker-declared counts).

TEST(AigIo, AigerRejectsTruncatedHeader) {
  EXPECT_THROW(read_aiger(""), std::runtime_error);
  EXPECT_THROW(read_aiger("aag"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1"), std::runtime_error);
}

TEST(AigIo, AigerRejectsNonNumericTokens) {
  EXPECT_THROW(read_aiger("aag x 2 0 1 1\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\nfoo\n4\n6\n6 2 4\n"),
               std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 two 4\n"),
               std::runtime_error);
}

TEST(AigIo, AigerRejectsOutOfRangeLiterals) {
  // PI literal 99 exceeds 2m+1 = 7.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n99\n4\n6\n6 2 4\n"),
               std::runtime_error);
  // AND output literal out of range.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n88 2 4\n"),
               std::runtime_error);
  // PO literal out of range.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n99\n6 2 4\n"),
               std::runtime_error);
}

TEST(AigIo, AigerRejectsOversizedDeclaredCounts) {
  // Counts that could never fit in the input must be rejected before any
  // allocation is sized from them.
  EXPECT_THROW(read_aiger("aag 4000000000 4000000000 0 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(read_aiger("aag 4000000000 1 0 4000000000 0\n2\n"),
               std::runtime_error);
  EXPECT_THROW(read_aiger("aag 18446744073709551615 1 0 1 0\n2\n2\n"),
               std::runtime_error);
  // Header arithmetic: i + a may not exceed m.
  EXPECT_THROW(read_aiger("aag 2 2 0 0 2\n2\n4\n"), std::runtime_error);
}

TEST(AigIo, AigerRejectsMalformedDefinitions) {
  // Odd (complemented) PI literal.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n3\n4\n6\n6 2 4\n"),
               std::runtime_error);
  // Constant literal declared as PI.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n0\n4\n6\n6 2 4\n"),
               std::runtime_error);
  // Duplicate definition (PI literal repeated).
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n2\n6\n6 2 4\n"),
               std::runtime_error);
  // AND redefines a PI literal.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n2 2 4\n"),
               std::runtime_error);
  // Odd AND output literal.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n7 2 4\n"),
               std::runtime_error);
}

TEST(AigIo, AigerRejectsUseBeforeDefinition) {
  // The AND at literal 6 references literal 8, defined only later — the
  // reader requires topological order (matching write_aiger's output).
  EXPECT_THROW(
      read_aiger("aag 4 1 0 1 3\n2\n6\n6 8 2\n8 2 2\n4 2 2\n"),
      std::runtime_error);
  // PO references a never-defined literal inside range.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 0\n2\n4\n6\n"), std::runtime_error);
}

TEST(AigIo, AigerRejectsTruncatedSections) {
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 2\n"),
               std::runtime_error);
}

TEST(AigIo, AigerAcceptsMinimalValidCircuit) {
  // The happy path of the shapes above: 2 PIs, one AND, one PO.
  Aig aig = read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n");
  EXPECT_EQ(aig.num_pis(), 2u);
  EXPECT_EQ(aig.num_pos(), 1u);
  EXPECT_EQ(aig.num_ands(), 1u);
  EXPECT_EQ(exhaustive_tt(aig, 0), tt_var(0, 2) & tt_var(1, 2));
}

TEST(AigIo, AigerConstantOutputs) {
  Aig aig;
  aig.add_pi();
  aig.add_po(kLitTrue, "t");
  aig.add_po(kLitFalse, "f");
  Aig back = read_aiger(write_aiger(aig));
  EXPECT_EQ(back.po(0), kLitTrue);
  EXPECT_EQ(back.po(1), kLitFalse);
}

TEST(AigIo, EquationConstantOutputs) {
  Aig aig;
  aig.add_pi("a");
  aig.add_po(kLitTrue, "t");
  Aig back = read_equations(write_equations(aig));
  EXPECT_EQ(back.po(0), kLitTrue);
}

}  // namespace
}  // namespace emorphic
